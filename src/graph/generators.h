#ifndef GQC_GRAPH_GENERATORS_H_
#define GQC_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/vocabulary.h"

namespace gqc {

/// Deterministic graph generators used by tests and benchmarks.

/// Directed path v0 -> v1 -> ... -> v_{n-1}, all edges labelled `role_id`.
Graph PathGraph(std::size_t n, uint32_t role_id);

/// Directed cycle of n nodes, all edges labelled `role_id`.
Graph CycleGraph(std::size_t n, uint32_t role_id);

/// Complete `branching`-ary tree of the given depth; edges labelled
/// `role_id`, all edges pointing away from the root (node 0).
Graph BalancedTree(std::size_t depth, std::size_t branching, uint32_t role_id);

/// Options for random graph generation.
struct RandomGraphOptions {
  std::size_t nodes = 16;
  /// Per ordered node pair and role: probability of an edge.
  double edge_probability = 0.1;
  /// Per node and concept: probability of carrying the label.
  double label_probability = 0.3;
  std::vector<uint32_t> roles;
  std::vector<uint32_t> concepts;
  uint64_t seed = 1;
};

/// Erdős–Rényi-style random multigraph (per-role independent edges).
Graph RandomGraph(const RandomGraphOptions& options);

}  // namespace gqc

#endif  // GQC_GRAPH_GENERATORS_H_
