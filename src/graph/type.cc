#include "src/graph/type.h"

#include <algorithm>

#include "src/util/hash.h"

namespace gqc {

std::vector<uint32_t> LabelSet::ToIds() const {
  std::vector<uint32_t> out;
  for (std::size_t i : bits_.ToIndices()) out.push_back(static_cast<uint32_t>(i));
  return out;
}

bool LabelSet::operator==(const LabelSet& other) const {
  // Sizes may differ because of lazy growth; compare as sets.
  const LabelSet& small = bits_.size() <= other.bits_.size() ? *this : other;
  const LabelSet& big = bits_.size() <= other.bits_.size() ? other : *this;
  for (uint32_t id : big.ToIds()) {
    if (!small.Has(id)) return false;
  }
  for (uint32_t id : small.ToIds()) {
    if (!big.Has(id)) return false;
  }
  return true;
}

std::size_t LabelSet::Hash() const {
  // Must be growth-insensitive: hash the sorted id list.
  std::size_t h = 0;
  for (uint32_t id : ToIds()) HashCombine(&h, id);
  return h;
}

std::string LabelSet::ToString(const Vocabulary& vocab) const {
  std::string s = "{";
  bool first = true;
  for (uint32_t id : ToIds()) {
    if (!first) s += ", ";
    first = false;
    s += vocab.ConceptName(id);
  }
  s += "}";
  return s;
}

bool Type::AddLiteral(Literal l) {
  if (l.is_negative()) {
    if (positive_.Has(l.concept_id())) return false;
    negative_.Add(l.concept_id());
  } else {
    if (negative_.Has(l.concept_id())) return false;
    positive_.Add(l.concept_id());
  }
  return true;
}

bool Type::HasLiteral(Literal l) const {
  return l.is_negative() ? negative_.Has(l.concept_id()) : positive_.Has(l.concept_id());
}

std::vector<Literal> Type::Literals() const {
  std::vector<Literal> out;
  for (uint32_t id : positive_.ToIds()) out.push_back(Literal::Positive(id));
  for (uint32_t id : negative_.ToIds()) out.push_back(Literal::Negative(id));
  return out;
}

bool Type::Contains(const Type& other) const {
  for (uint32_t id : other.positive_.ToIds()) {
    if (!positive_.Has(id)) return false;
  }
  for (uint32_t id : other.negative_.ToIds()) {
    if (!negative_.Has(id)) return false;
  }
  return true;
}

bool Type::ConsistentWith(const Type& other) const {
  for (uint32_t id : positive_.ToIds()) {
    if (other.negative_.Has(id)) return false;
  }
  for (uint32_t id : negative_.ToIds()) {
    if (other.positive_.Has(id)) return false;
  }
  return true;
}

std::size_t Type::Hash() const {
  std::size_t h = positive_.Hash();
  HashCombine(&h, negative_.Hash());
  return h;
}

std::string Type::ToString(const Vocabulary& vocab) const {
  std::string s = "{";
  bool first = true;
  for (Literal l : Literals()) {
    if (!first) s += ", ";
    first = false;
    s += vocab.LiteralString(l);
  }
  s += "}";
  return s;
}

TypeSpace::TypeSpace(std::vector<uint32_t> support) : support_(std::move(support)) {
  std::sort(support_.begin(), support_.end());
  support_.erase(std::unique(support_.begin(), support_.end()), support_.end());
}

std::size_t TypeSpace::PositionOf(uint32_t concept_id) const {
  auto it = std::lower_bound(support_.begin(), support_.end(), concept_id);
  if (it == support_.end() || *it != concept_id) return npos;
  return static_cast<std::size_t>(it - support_.begin());
}

Type TypeSpace::MaterializeType(uint64_t mask) const {
  Type t;
  for (std::size_t i = 0; i < support_.size(); ++i) {
    if (mask & (uint64_t{1} << i)) {
      t.AddLiteral(Literal::Positive(support_[i]));
    } else {
      t.AddLiteral(Literal::Negative(support_[i]));
    }
  }
  return t;
}

uint64_t TypeSpace::MaskOf(const Type& type) const {
  uint64_t mask = 0;
  for (std::size_t i = 0; i < support_.size(); ++i) {
    if (type.HasPositive(support_[i])) mask |= uint64_t{1} << i;
  }
  return mask;
}

bool TypeSpace::MaskContains(uint64_t mask, const Type& type) const {
  for (Literal l : type.Literals()) {
    std::size_t pos = PositionOf(l.concept_id());
    if (pos == npos) return false;
    bool set = (mask >> pos) & 1;
    if (l.is_negative() ? set : !set) return false;
  }
  return true;
}

}  // namespace gqc
