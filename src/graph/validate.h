#ifndef GQC_GRAPH_VALIDATE_H_
#define GQC_GRAPH_VALIDATE_H_

#include "src/graph/coil.h"
#include "src/graph/graph.h"
#include "src/graph/type.h"
#include "src/util/invariant.h"

namespace gqc {

/// Structural well-formedness of a graph: every edge endpoint is a live node,
/// the out-/in-adjacency mirrors agree edge for edge, no duplicate
/// (from, role, to) triples (edge-set semantics, §2), and the cached edge
/// count matches the adjacency lists.
AuditResult ValidateGraph(const Graph& g);

/// ValidateGraph plus vocabulary bounds: node labels are interned concept
/// ids, edge roles are interned role ids.
AuditResult ValidateGraph(const Graph& g, const Vocabulary& vocab);

/// The distinguished node is a live node of a well-formed graph.
AuditResult ValidatePointedGraph(const PointedGraph& pg);

/// Label/complement consistency of a type: at most one of A and Ā per
/// concept name (§2).
AuditResult ValidateType(const Type& t);

/// Coil(G, n) output against its base graph (§4 / Property 1): aligned
/// node-indexed vectors, level arithmetic ℓ' ≡ ℓ+1 (mod n+1) on every edge,
/// labels inherited from the path's last node, every path a genuine ≤n-path
/// ending at its base node, and h_G (base_node) a homomorphism onto base
/// edges with the n-suffix extension discipline.
AuditResult ValidateCoil(const Graph& base, const CoilResult& coil);

}  // namespace gqc

#endif  // GQC_GRAPH_VALIDATE_H_
