#include "src/graph/dot.h"

namespace gqc {

std::string ToDot(const Graph& g, const Vocabulary& vocab, const std::string& name) {
  std::string out = "digraph " + name + " {\n";
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    out += "  n" + std::to_string(v) + " [label=\"" + std::to_string(v) + " ";
    bool first = true;
    for (uint32_t id : g.Labels(v).ToIds()) {
      if (!first) out += ",";
      first = false;
      out += vocab.ConceptName(id);
    }
    out += "\"];\n";
  }
  g.ForEachEdge([&](const Edge& e) {
    out += "  n" + std::to_string(e.from) + " -> n" + std::to_string(e.to) +
           " [label=\"" + vocab.RoleName(e.role) + "\"];\n";
  });
  out += "}\n";
  return out;
}

}  // namespace gqc
