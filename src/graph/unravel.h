#ifndef GQC_GRAPH_UNRAVEL_H_
#define GQC_GRAPH_UNRAVEL_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace gqc {

/// A directed path in a graph: nodes v0, v1, ..., vk and the role labels of
/// the traversed edges (paths need not be simple; length-0 paths are single
/// nodes). §4 uses paths as the nodes of unravelings and coils.
struct GraphPath {
  std::vector<NodeId> nodes;   // k + 1 entries
  std::vector<uint32_t> roles; // k entries

  std::size_t Length() const { return roles.size(); }
  NodeId Last() const { return nodes.back(); }

  /// Extension of this path by edge (Last(), role, to).
  GraphPath Extend(uint32_t role, NodeId to) const;
  /// The n-suffix: the suffix of length n, or the whole path if shorter (§4).
  GraphPath Suffix(std::size_t n) const;

  bool operator==(const GraphPath&) const = default;
};

/// Paths(G, n): all directed paths of length at most n in g, including all
/// length-0 paths. Order: by length, then lexicographic by construction.
std::vector<GraphPath> PathsUpTo(const Graph& g, std::size_t n);

/// Paths(G, n, v): the subset of Paths(G, n) originating in v.
std::vector<GraphPath> PathsFrom(const Graph& g, std::size_t n, NodeId v);

/// Result of an unraveling: the tree plus the homomorphism back to the base
/// graph (each tree node maps to the last node of its path).
struct UnravelResult {
  Graph tree;
  NodeId root = 0;
  /// tree node -> base graph node (last node of the path).
  std::vector<NodeId> base_node;
  /// tree node -> the path it represents.
  std::vector<GraphPath> paths;
};

/// Unravel(G, n, v) (§4): the tree whose nodes are Paths(G, n, v), with an
/// edge π -> π' whenever π' extends π by one edge. Labels are inherited from
/// the last node / last edge of the path.
UnravelResult Unravel(const Graph& g, std::size_t n, NodeId v);

}  // namespace gqc

#endif  // GQC_GRAPH_UNRAVEL_H_
