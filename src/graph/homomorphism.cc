#include "src/graph/homomorphism.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "src/util/hash.h"

namespace gqc {

namespace {

/// Backtracking homomorphism search shared by plain and locally-injective
/// variants. Nodes are assigned in a connectivity-friendly order; edge
/// consistency with already-assigned neighbours is checked incrementally.
class HomSearch {
 public:
  HomSearch(const Graph& g, const Graph& target, bool locally_injective)
      : g_(g), target_(target), locally_injective_(locally_injective) {}

  std::optional<NodeMapping> Run() {
    const std::size_t n = g_.NodeCount();
    mapping_.assign(n, kNoNode);
    // Precompute candidate sets: label sets must match exactly.
    candidates_.resize(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < target_.NodeCount(); ++v) {
        if (g_.Labels(u) == target_.Labels(v)) candidates_[u].push_back(v);
      }
      if (candidates_[u].empty()) return std::nullopt;
    }
    order_ = ConnectivityOrder();
    if (Assign(0)) return mapping_;
    return std::nullopt;
  }

 private:
  /// BFS-ish order so each node (after the first of its component) has an
  /// already-assigned neighbour, making edge checks prune early.
  std::vector<NodeId> ConnectivityOrder() const {
    const std::size_t n = g_.NodeCount();
    std::vector<NodeId> order;
    std::vector<bool> seen(n, false);
    for (NodeId start = 0; start < n; ++start) {
      if (seen[start]) continue;
      std::vector<NodeId> queue{start};
      seen[start] = true;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        NodeId u = queue[i];
        order.push_back(u);
        for (const auto& [r, v] : g_.OutEdges(u)) {
          if (!seen[v]) {
            seen[v] = true;
            queue.push_back(v);
          }
        }
        for (const auto& [r, v] : g_.InEdges(u)) {
          if (!seen[v]) {
            seen[v] = true;
            queue.push_back(v);
          }
        }
      }
    }
    return order;
  }

  bool ConsistentAt(NodeId u, NodeId image) const {
    for (const auto& [r, v] : g_.OutEdges(u)) {
      if (mapping_[v] != kNoNode && !target_.HasEdge(image, r, mapping_[v])) {
        return false;
      }
    }
    for (const auto& [r, v] : g_.InEdges(u)) {
      if (mapping_[v] != kNoNode && !target_.HasEdge(mapping_[v], r, image)) {
        return false;
      }
    }
    if (locally_injective_ && !LocallyInjectiveAt(u, image)) return false;
    return true;
  }

  /// Checks that mapping u to `image` keeps the map injective on the
  /// r-neighbourhoods (both directions) of every assigned neighbour of u.
  bool LocallyInjectiveAt(NodeId u, NodeId image) const {
    // For each assigned node w adjacent to u, u is an r-successor (or
    // r-inverse-successor) of w; no sibling successor may share the image.
    auto check_siblings = [&](NodeId w, Role r) {
      for (NodeId sibling : g_.Successors(w, r)) {
        if (sibling != u && mapping_[sibling] == image) return false;
      }
      return true;
    };
    for (const auto& [r, w] : g_.InEdges(u)) {
      // u is a forward-r successor of w.
      if (mapping_[w] != kNoNode && !check_siblings(w, Role::Forward(r))) return false;
    }
    for (const auto& [r, w] : g_.OutEdges(u)) {
      // u is an r-inverse successor of w.
      if (mapping_[w] != kNoNode && !check_siblings(w, Role::Inverse(r))) return false;
    }
    return true;
  }

  bool Assign(std::size_t idx) {
    if (idx == order_.size()) return true;
    NodeId u = order_[idx];
    for (NodeId image : candidates_[u]) {
      if (!ConsistentAt(u, image)) continue;
      mapping_[u] = image;
      if (Assign(idx + 1)) return true;
      mapping_[u] = kNoNode;
    }
    return false;
  }

  const Graph& g_;
  const Graph& target_;
  const bool locally_injective_;
  NodeMapping mapping_;
  std::vector<std::vector<NodeId>> candidates_;
  std::vector<NodeId> order_;
};

}  // namespace

std::optional<NodeMapping> FindHomomorphism(const Graph& g, const Graph& target) {
  return HomSearch(g, target, /*locally_injective=*/false).Run();
}

bool IsHomomorphism(const Graph& g, const Graph& target, const NodeMapping& h) {
  if (h.size() != g.NodeCount()) return false;
  for (NodeId u = 0; u < g.NodeCount(); ++u) {
    if (h[u] >= target.NodeCount()) return false;
    if (!(g.Labels(u) == target.Labels(h[u]))) return false;
  }
  bool ok = true;
  g.ForEachEdge([&](const Edge& e) {
    if (!target.HasEdge(h[e.from], e.role, h[e.to])) ok = false;
  });
  return ok;
}

bool IsLocalEmbedding(const Graph& g, const Graph& target, const NodeMapping& h) {
  if (!IsHomomorphism(g, target, h)) return false;
  for (NodeId u = 0; u < g.NodeCount(); ++u) {
    for (bool inverse : {false, true}) {
      // Group successors by role and check image-injectivity.
      std::map<uint32_t, std::vector<NodeId>> by_role;
      const auto& adj = inverse ? g.InEdges(u) : g.OutEdges(u);
      for (const auto& [r, v] : adj) by_role[r].push_back(v);
      for (const auto& [r, succ] : by_role) {
        std::vector<NodeId> images;
        for (NodeId v : succ) images.push_back(h[v]);
        std::sort(images.begin(), images.end());
        if (std::adjacent_find(images.begin(), images.end()) != images.end()) {
          return false;
        }
      }
    }
  }
  return true;
}

std::optional<NodeMapping> FindLocalEmbedding(const Graph& g, const Graph& target) {
  return HomSearch(g, target, /*locally_injective=*/true).Run();
}

namespace {

/// One round of 1-WL colour refinement; returns per-node colour ids.
/// Colour ids are assigned in sorted signature order so that isomorphic
/// graphs receive identical colourings regardless of node numbering.
std::vector<uint64_t> RefineColours(const Graph& g, const std::vector<uint64_t>& in) {
  std::vector<std::vector<uint64_t>> sigs(g.NodeCount());
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    std::vector<uint64_t>& sig = sigs[v];
    sig.push_back(in[v]);
    std::vector<uint64_t> neigh;
    for (const auto& [r, w] : g.OutEdges(v)) {
      neigh.push_back((uint64_t{r} << 33) | (in[w] << 1));
    }
    for (const auto& [r, w] : g.InEdges(v)) {
      neigh.push_back((uint64_t{r} << 33) | (in[w] << 1) | 1);
    }
    std::sort(neigh.begin(), neigh.end());
    sig.insert(sig.end(), neigh.begin(), neigh.end());
  }
  std::map<std::vector<uint64_t>, uint64_t> signature_ids;
  for (const auto& sig : sigs) signature_ids.emplace(sig, 0);
  uint64_t next = 0;
  for (auto& [sig, id] : signature_ids) id = next++;
  std::vector<uint64_t> out(g.NodeCount());
  for (NodeId v = 0; v < g.NodeCount(); ++v) out[v] = signature_ids[sigs[v]];
  return out;
}

}  // namespace

std::string PointedFingerprint(const PointedGraph& pg) {
  const Graph& g = pg.graph;
  // Initial colours: node label sets (plus a marker for the point), with ids
  // assigned in sorted key order for numbering-independence.
  std::map<std::pair<std::size_t, bool>, uint64_t> init_ids;
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    init_ids.emplace(std::make_pair(g.Labels(v).Hash(), v == pg.point), 0);
  }
  uint64_t next_init = 0;
  for (auto& [key, id] : init_ids) id = next_init++;
  std::vector<uint64_t> colour(g.NodeCount());
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    colour[v] = init_ids[std::make_pair(g.Labels(v).Hash(), v == pg.point)];
  }
  for (std::size_t round = 0; round < g.NodeCount(); ++round) {
    auto next = RefineColours(g, colour);
    if (next == colour) break;
    colour = next;
  }
  // Serialize the colour multiset plus point colour plus sizes.
  std::vector<uint64_t> sorted = colour;
  std::sort(sorted.begin(), sorted.end());
  std::string out = std::to_string(g.NodeCount()) + ":" + std::to_string(g.EdgeCount()) +
                    ":" + (g.NodeCount() ? std::to_string(colour[pg.point]) : "-") + ":";
  for (uint64_t c : sorted) out += std::to_string(c) + ",";
  return out;
}

bool ArePointedIsomorphic(const PointedGraph& a, const PointedGraph& b) {
  const Graph& ga = a.graph;
  const Graph& gb = b.graph;
  if (ga.NodeCount() != gb.NodeCount() || ga.EdgeCount() != gb.EdgeCount()) return false;
  if (ga.NodeCount() == 0) return true;
  if (!(ga.Labels(a.point) == gb.Labels(b.point))) return false;

  // Backtracking injective homomorphism a -> b with point pinned; since edge
  // counts match and edges map injectively, a full assignment is an iso.
  std::vector<NodeId> mapping(ga.NodeCount(), kNoNode);
  std::vector<bool> used(gb.NodeCount(), false);

  // Assignment order: point first, then BFS.
  std::vector<NodeId> order;
  std::vector<bool> seen(ga.NodeCount(), false);
  std::vector<NodeId> queue{a.point};
  seen[a.point] = true;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    NodeId u = queue[i];
    order.push_back(u);
    for (const auto& [r, v] : ga.OutEdges(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
    for (const auto& [r, v] : ga.InEdges(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  for (NodeId v = 0; v < ga.NodeCount(); ++v) {
    if (!seen[v]) order.push_back(v);
  }

  std::function<bool(std::size_t)> assign = [&](std::size_t idx) -> bool {
    if (idx == order.size()) return true;
    NodeId u = order[idx];
    for (NodeId image = 0; image < gb.NodeCount(); ++image) {
      if (used[image]) continue;
      if ((u == a.point) != (image == b.point)) continue;
      if (!(ga.Labels(u) == gb.Labels(image))) continue;
      if (ga.Degree(u) != gb.Degree(image)) continue;
      bool ok = true;
      for (const auto& [r, v] : ga.OutEdges(u)) {
        if (mapping[v] != kNoNode && !gb.HasEdge(image, r, mapping[v])) ok = false;
      }
      for (const auto& [r, v] : ga.InEdges(u)) {
        if (mapping[v] != kNoNode && !gb.HasEdge(mapping[v], r, image)) ok = false;
      }
      if (!ok) continue;
      mapping[u] = image;
      used[image] = true;
      if (assign(idx + 1)) return true;
      mapping[u] = kNoNode;
      used[image] = false;
    }
    return false;
  };
  return assign(0);
}

}  // namespace gqc
