#include "src/graph/graph.h"

#include <algorithm>

namespace gqc {

NodeId Graph::AddNode(LabelSet labels) {
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(std::move(labels));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

bool Graph::HasType(NodeId v, const Type& t) const {
  for (Literal l : t.Literals()) {
    if (!SatisfiesLiteral(v, l)) return false;
  }
  return true;
}

bool Graph::AddEdge(NodeId u, uint32_t role_id, NodeId v) {
  if (HasEdge(u, role_id, v)) return false;
  out_[u].emplace_back(role_id, v);
  in_[v].emplace_back(role_id, u);
  ++edge_count_;
  return true;
}

bool Graph::HasEdge(NodeId u, uint32_t role_id, NodeId v) const {
  for (const auto& [r, t] : out_[u]) {
    if (r == role_id && t == v) return true;
  }
  return false;
}

bool Graph::RemoveEdge(NodeId u, uint32_t role_id, NodeId v) {
  auto out_it = std::find(out_[u].begin(), out_[u].end(), std::make_pair(role_id, v));
  if (out_it == out_[u].end()) return false;
  out_[u].erase(out_it);
  auto in_it = std::find(in_[v].begin(), in_[v].end(), std::make_pair(role_id, u));
  in_[v].erase(in_it);
  --edge_count_;
  return true;
}

std::vector<NodeId> Graph::Successors(NodeId u, Role r) const {
  std::vector<NodeId> out;
  const auto& adj = r.is_inverse() ? in_[u] : out_[u];
  for (const auto& [role, w] : adj) {
    if (role == r.name_id()) out.push_back(w);
  }
  return out;
}

void Graph::ForEachEdge(const std::function<void(const Edge&)>& fn) const {
  for (NodeId u = 0; u < out_.size(); ++u) {
    for (const auto& [role, v] : out_[u]) fn(Edge{u, role, v});
  }
}

std::vector<Edge> Graph::AllEdges() const {
  std::vector<Edge> edges;
  edges.reserve(edge_count_);
  ForEachEdge([&](const Edge& e) { edges.push_back(e); });
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.from, a.role, a.to) < std::tie(b.from, b.role, b.to);
  });
  return edges;
}

NodeId Graph::DisjointUnion(const Graph& other) {
  NodeId offset = static_cast<NodeId>(NodeCount());
  for (NodeId v = 0; v < other.NodeCount(); ++v) {
    AddNode(other.Labels(v));
  }
  other.ForEachEdge(
      [&](const Edge& e) { AddEdge(offset + e.from, e.role, offset + e.to); });
  return offset;
}

Graph Graph::InducedSubgraph(const std::vector<NodeId>& nodes,
                             std::vector<NodeId>* old_to_new) const {
  Graph g;
  std::vector<NodeId> mapping(NodeCount(), kNoNode);
  for (NodeId v : nodes) {
    mapping[v] = g.AddNode(labels_[v]);
  }
  ForEachEdge([&](const Edge& e) {
    if (mapping[e.from] != kNoNode && mapping[e.to] != kNoNode) {
      g.AddEdge(mapping[e.from], e.role, mapping[e.to]);
    }
  });
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return g;
}

Graph Graph::WithoutRole(uint32_t role_id) const {
  Graph g;
  for (NodeId v = 0; v < NodeCount(); ++v) g.AddNode(labels_[v]);
  ForEachEdge([&](const Edge& e) {
    if (e.role != role_id) g.AddEdge(e.from, e.role, e.to);
  });
  return g;
}

void Graph::AddLabelEverywhere(uint32_t concept_id) {
  for (auto& ls : labels_) ls.Add(concept_id);
}

bool Graph::operator==(const Graph& other) const {
  if (NodeCount() != other.NodeCount() || EdgeCount() != other.EdgeCount()) return false;
  for (NodeId v = 0; v < NodeCount(); ++v) {
    if (!(labels_[v] == other.labels_[v])) return false;
  }
  return AllEdges() == other.AllEdges();
}

}  // namespace gqc
