#ifndef GQC_GRAPH_ALGORITHMS_H_
#define GQC_GRAPH_ALGORITHMS_H_

#include <vector>

#include "src/graph/graph.h"

namespace gqc {

/// True if the graph is connected when edge directions are ignored.
/// The empty graph counts as connected.
bool IsConnected(const Graph& g);

/// Connected components (edge directions ignored); returns per-node component
/// ids, dense from 0 in first-seen order.
std::vector<uint32_t> ConnectedComponents(const Graph& g, std::size_t* count = nullptr);

/// Strongly connected components (Tarjan); returns per-node SCC ids.
/// Ids are dense from 0 and in reverse topological order of the condensation.
std::vector<uint32_t> StronglyConnectedComponents(const Graph& g,
                                                  std::size_t* count = nullptr);

/// A finite connected graph with n nodes and m edges is c-sparse if
/// m <= n + c (§3, after Lee & Streinu). Requires IsConnected(g).
bool IsCSparse(const Graph& g, int64_t c);

/// True if the graph is a tree when edge directions are ignored
/// (connected and m = n - 1). The empty graph is not a tree.
bool IsUndirectedTree(const Graph& g);

/// BFS distances from `source` ignoring edge directions; unreachable nodes
/// get SIZE_MAX.
std::vector<std::size_t> UndirectedDistances(const Graph& g, NodeId source);

/// BFS distances from `source` following edge directions.
std::vector<std::size_t> DirectedDistances(const Graph& g, NodeId source);

/// Nodes reachable from `source` by directed paths (including source).
std::vector<NodeId> ReachableFrom(const Graph& g, NodeId source);

}  // namespace gqc

#endif  // GQC_GRAPH_ALGORITHMS_H_
