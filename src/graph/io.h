#ifndef GQC_GRAPH_IO_H_
#define GQC_GRAPH_IO_H_

#include <map>
#include <string>
#include <string_view>

#include "src/graph/graph.h"
#include "src/util/result.h"

namespace gqc {

/// A parsed graph together with its node-name table.
struct NamedGraph {
  Graph graph;
  std::map<std::string, NodeId> nodes;

  /// Node id for `name`, or kNoNode.
  NodeId Find(const std::string& name) const;
};

/// Parses the line-based graph (ABox) format:
///
///   # comment
///   node alice Customer Premium     -- node <name> [label ...]
///   edge alice owns visa            -- edge <src> <role> <dst>
///
/// Nodes referenced by `edge` before their `node` line are created
/// implicitly (without labels). Names are interned into `vocab`.
Result<NamedGraph> ParseGraph(std::string_view text, Vocabulary* vocab);

/// Serializes a graph in the same format (node names n0, n1, ... unless a
/// name table is provided).
std::string WriteGraph(const Graph& g, const Vocabulary& vocab,
                       const std::map<std::string, NodeId>* names = nullptr);

}  // namespace gqc

#endif  // GQC_GRAPH_IO_H_
