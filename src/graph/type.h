#ifndef GQC_GRAPH_TYPE_H_
#define GQC_GRAPH_TYPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/vocabulary.h"
#include "src/util/bitset.h"

namespace gqc {

/// A set of node labels (concept ids). Auto-grows as ids are added, so it is
/// safe to keep adding labels interned later.
class LabelSet {
 public:
  LabelSet() = default;

  bool Has(uint32_t concept_id) const {
    return concept_id < bits_.size() && bits_.Test(concept_id);
  }
  void Add(uint32_t concept_id) {
    EnsureSize(concept_id + 1);
    bits_.Set(concept_id);
  }
  void Remove(uint32_t concept_id) {
    if (concept_id < bits_.size()) bits_.Reset(concept_id);
  }

  std::size_t Count() const { return bits_.Count(); }
  bool Empty() const { return bits_.None(); }

  std::vector<uint32_t> ToIds() const;

  /// Set equality ignoring trailing absent ids.
  bool operator==(const LabelSet& other) const;

  std::size_t Hash() const;

  std::string ToString(const Vocabulary& vocab) const;

 private:
  void EnsureSize(std::size_t n) {
    if (bits_.size() < n) bits_.Resize(n);
  }

  DynamicBitset bits_;
};

/// A type in the paper's sense: a subset of Γ± containing at most one of
/// A and Ā per concept name A. Positive literals assert label presence,
/// negative literals assert absence; unmentioned labels are unconstrained.
class Type {
 public:
  Type() = default;

  /// Adds a literal; returns false (and leaves the type unchanged) if the
  /// complementary literal is already present.
  bool AddLiteral(Literal l);
  bool HasLiteral(Literal l) const;

  /// All literals, positives then negatives, ascending by concept id.
  std::vector<Literal> Literals() const;

  bool HasPositive(uint32_t concept_id) const { return positive_.Has(concept_id); }
  bool HasNegative(uint32_t concept_id) const { return negative_.Has(concept_id); }

  std::size_t Size() const { return positive_.Count() + negative_.Count(); }

  /// σ.Contains(τ): every literal of τ is a literal of σ (σ ⊇ τ).
  bool Contains(const Type& other) const;

  /// True if no concept name appears both positively here and negatively in
  /// `other` or vice versa (the union is still a type).
  bool ConsistentWith(const Type& other) const;

  /// True if this type mentions (positively or negatively) `concept_id`.
  bool Mentions(uint32_t concept_id) const {
    return HasPositive(concept_id) || HasNegative(concept_id);
  }

  bool operator==(const Type& other) const = default;
  std::size_t Hash() const;

  std::string ToString(const Vocabulary& vocab) const;

  const LabelSet& positives() const { return positive_; }
  const LabelSet& negatives() const { return negative_; }

 private:
  LabelSet positive_;
  LabelSet negative_;
};

/// Maximal types over a fixed, small support Γ₀ (a list of concept ids),
/// represented as bitmasks over positions in the support. The entailment
/// engines' fixpoints iterate over these.
class TypeSpace {
 public:
  /// `support` lists the concept ids of Γ₀ (order fixes bit positions).
  explicit TypeSpace(std::vector<uint32_t> support);

  std::size_t arity() const { return support_.size(); }
  uint64_t mask_count() const { return uint64_t{1} << support_.size(); }
  const std::vector<uint32_t>& support() const { return support_; }

  /// Position of `concept_id` in the support, or npos.
  std::size_t PositionOf(uint32_t concept_id) const;
  static constexpr std::size_t npos = SIZE_MAX;

  /// Expands a mask into a maximal Type over the support: bit set => positive
  /// literal, bit clear => negative literal.
  Type MaterializeType(uint64_t mask) const;

  /// Projects a full Type to a mask; requires the type to decide every
  /// support concept (maximal over the support). Positive bits only.
  uint64_t MaskOf(const Type& type) const;

  /// True if maximal type `mask` contains (extends) the partial `type`:
  /// every positive literal of `type` is set, every negative one clear.
  /// Literals outside the support make the answer false.
  bool MaskContains(uint64_t mask, const Type& type) const;

 private:
  std::vector<uint32_t> support_;
};

}  // namespace gqc

template <>
struct std::hash<gqc::LabelSet> {
  std::size_t operator()(const gqc::LabelSet& s) const { return s.Hash(); }
};

template <>
struct std::hash<gqc::Type> {
  std::size_t operator()(const gqc::Type& t) const { return t.Hash(); }
};

#endif  // GQC_GRAPH_TYPE_H_
