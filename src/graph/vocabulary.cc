#include "src/graph/vocabulary.h"

namespace gqc {

uint32_t Vocabulary::FreshConcept(std::string_view base) {
  while (true) {
    std::string candidate = std::string(base) + "#" + std::to_string(fresh_counter_++);
    if (concepts_.Find(candidate) == Interner::kNotFound) {
      return concepts_.Intern(candidate);
    }
  }
}

}  // namespace gqc
