#ifndef GQC_GRAPH_VOCABULARY_H_
#define GQC_GRAPH_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/interner.h"

namespace gqc {

/// A role occurrence: a role name from Σ, traversed forward or backward.
///
/// The paper works over Σ± = Σ ∪ Σ⁻; Role packs (name id, direction) into one
/// word so it can be used as a cheap map key and automaton alphabet symbol.
class Role {
 public:
  Role() : code_(0) {}

  static Role Forward(uint32_t name_id) { return Role(name_id << 1); }
  static Role Inverse(uint32_t name_id) { return Role((name_id << 1) | 1); }

  uint32_t name_id() const { return code_ >> 1; }
  bool is_inverse() const { return code_ & 1; }

  /// r ↦ r⁻ and r⁻ ↦ r.
  Role Reversed() const { return Role(code_ ^ 1); }

  /// Dense code usable as an array index (2 * name + direction bit).
  uint32_t code() const { return code_; }
  static Role FromCode(uint32_t code) { return Role(code); }

  bool operator==(const Role&) const = default;
  auto operator<=>(const Role&) const = default;

 private:
  explicit Role(uint32_t code) : code_(code) {}
  uint32_t code_;
};

/// A node-label literal: a concept name from Γ, positive or complemented.
///
/// The paper's queries and normalized TBoxes range over Γ± = Γ ∪ Γ̄; a node
/// "has label Ā" iff it does not have label A.
class Literal {
 public:
  Literal() : code_(0) {}

  static Literal Positive(uint32_t concept_id) { return Literal(concept_id << 1); }
  static Literal Negative(uint32_t concept_id) { return Literal((concept_id << 1) | 1); }

  uint32_t concept_id() const { return code_ >> 1; }
  bool is_negative() const { return code_ & 1; }

  /// A ↦ Ā and Ā ↦ A.
  Literal Complemented() const { return Literal(code_ ^ 1); }

  uint32_t code() const { return code_; }
  static Literal FromCode(uint32_t code) { return Literal(code); }

  bool operator==(const Literal&) const = default;
  auto operator<=>(const Literal&) const = default;

 private:
  explicit Literal(uint32_t code) : code_(code) {}
  uint32_t code_;
};

/// Shared name spaces for concept names (node labels, Γ) and role names
/// (edge labels, Σ).
///
/// All graphs, queries, and TBoxes in one reasoning task must share a
/// Vocabulary; structures store only the dense ids.
class Vocabulary {
 public:
  /// Interns a concept name and returns its id.
  uint32_t ConceptId(std::string_view name) { return concepts_.Intern(name); }
  /// Interns a role name and returns its id.
  uint32_t RoleId(std::string_view name) { return roles_.Intern(name); }

  /// Looks up without interning; Interner::kNotFound if absent.
  uint32_t FindConcept(std::string_view name) const { return concepts_.Find(name); }
  uint32_t FindRole(std::string_view name) const { return roles_.Find(name); }

  const std::string& ConceptName(uint32_t id) const { return concepts_.NameOf(id); }
  const std::string& RoleName(uint32_t id) const { return roles_.NameOf(id); }

  std::size_t concept_count() const { return concepts_.size(); }
  std::size_t role_count() const { return roles_.size(); }

  /// Renders "name" / "name-" for forward / inverse roles.
  std::string RoleString(Role r) const {
    return RoleName(r.name_id()) + (r.is_inverse() ? "-" : "");
  }
  /// Renders "A" / "!A" for positive / complemented literals.
  std::string LiteralString(Literal l) const {
    return (l.is_negative() ? "!" : "") + ConceptName(l.concept_id());
  }

  /// Interns a fresh concept name based on `base`, guaranteed not to collide
  /// with any existing concept name. Used for factorization labels (the
  /// paper's C_{p,y} permissions, C→, C_{n,r,D}, C_r).
  uint32_t FreshConcept(std::string_view base);

 private:
  Interner concepts_;
  Interner roles_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace gqc

template <>
struct std::hash<gqc::Role> {
  std::size_t operator()(const gqc::Role& r) const {
    return std::hash<uint32_t>{}(r.code());
  }
};

template <>
struct std::hash<gqc::Literal> {
  std::size_t operator()(const gqc::Literal& l) const {
    return std::hash<uint32_t>{}(l.code());
  }
};

#endif  // GQC_GRAPH_VOCABULARY_H_
