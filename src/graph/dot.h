#ifndef GQC_GRAPH_DOT_H_
#define GQC_GRAPH_DOT_H_

#include <string>

#include "src/graph/graph.h"
#include "src/graph/vocabulary.h"

namespace gqc {

/// Renders a graph in Graphviz DOT syntax, with node-label sets and role
/// names resolved through `vocab`. Useful for inspecting countermodels.
std::string ToDot(const Graph& g, const Vocabulary& vocab,
                  const std::string& name = "G");

}  // namespace gqc

#endif  // GQC_GRAPH_DOT_H_
