#include "src/graph/coil.h"

#include <unordered_map>

#include "src/graph/validate.h"
#include "src/util/hash.h"
#include "src/util/invariant.h"

namespace gqc {

namespace {

struct PathKey {
  std::vector<uint64_t> packed;

  explicit PathKey(const GraphPath& p) {
    packed.reserve(p.nodes.size() + p.roles.size());
    for (NodeId v : p.nodes) packed.push_back((uint64_t{v} << 1) | 0);
    for (uint32_t r : p.roles) packed.push_back((uint64_t{r} << 1) | 1);
  }
  bool operator==(const PathKey&) const = default;
};

struct PathKeyHash {
  std::size_t operator()(const PathKey& k) const { return VectorHash{}(k.packed); }
};

}  // namespace

Result<CoilResult> Coil(const Graph& g, std::size_t n, ResourceGuard* guard) {
  if (n == 0) {
    return Result<CoilResult>::Error("coil: window size n must be positive");
  }
  CoilResult result;
  result.n = n;

  std::vector<GraphPath> paths = PathsUpTo(g, n);
  // The coil has |Paths(G, n)| * (n + 1) nodes; charge the whole construction
  // up front so a trip never leaves a partial coil behind.
  if (guard != nullptr &&
      guard->Charge(GuardPhase::kFrames, paths.size() * (n + 1))) {
    return Result<CoilResult>::Error("coil: resource budget exhausted");
  }
  std::unordered_map<PathKey, std::size_t, PathKeyHash> path_index;
  path_index.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    path_index.emplace(PathKey(paths[i]), i);
  }

  const std::size_t levels = n + 1;
  // Node id of (path i, level ℓ) = i * (n+1) + ℓ.
  for (const GraphPath& p : paths) {
    for (std::size_t l = 0; l < levels; ++l) {
      result.graph.AddNode(g.Labels(p.Last()));
      result.base_node.push_back(p.Last());
      result.level.push_back(static_cast<uint32_t>(l));
      result.paths.push_back(p);
    }
  }

  for (std::size_t i = 0; i < paths.size(); ++i) {
    const GraphPath& p = paths[i];
    for (const auto& [role, to] : g.OutEdges(p.Last())) {
      GraphPath suffix = p.Extend(role, to).Suffix(n);
      auto it = path_index.find(PathKey(suffix));
      GQC_DCHECK(it != path_index.end());
      std::size_t j = it->second;
      for (std::size_t l = 0; l < levels; ++l) {
        std::size_t l2 = (l + 1) % levels;
        result.graph.AddEdge(static_cast<NodeId>(i * levels + l), role,
                             static_cast<NodeId>(j * levels + l2));
      }
    }
  }
  GQC_AUDIT(ValidateCoil(g, result));
  return result;
}

}  // namespace gqc
