#include "src/graph/io.h"

#include <sstream>
#include <vector>

#include "src/graph/validate.h"
#include "src/util/invariant.h"

namespace gqc {

NodeId NamedGraph::Find(const std::string& name) const {
  auto it = nodes.find(name);
  return it == nodes.end() ? kNoNode : it->second;
}

Result<NamedGraph> ParseGraph(std::string_view text, Vocabulary* vocab) {
  NamedGraph out;
  auto node_of = [&](const std::string& name) {
    auto it = out.nodes.find(name);
    if (it != out.nodes.end()) return it->second;
    NodeId id = out.graph.AddNode();
    out.nodes.emplace(name, id);
    return id;
  };

  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;
    if (keyword == "node") {
      std::string name;
      if (!(ls >> name)) {
        return Result<NamedGraph>::Error("graph: 'node' needs a name (line " +
                                         std::to_string(line_no) + ")");
      }
      NodeId v = node_of(name);
      std::string label;
      while (ls >> label) {
        if (label[0] == '#') break;
        out.graph.AddLabel(v, vocab->ConceptId(label));
      }
    } else if (keyword == "edge") {
      std::string src, role, dst;
      if (!(ls >> src >> role >> dst)) {
        return Result<NamedGraph>::Error(
            "graph: 'edge' needs <src> <role> <dst> (line " +
            std::to_string(line_no) + ")");
      }
      out.graph.AddEdge(node_of(src), vocab->RoleId(role), node_of(dst));
    } else {
      return Result<NamedGraph>::Error("graph: unknown keyword '" + keyword +
                                       "' (line " + std::to_string(line_no) + ")");
    }
  }
  // Parser-output boundary: whatever the surface text said, the graph handed
  // to the reasoning engines must be structurally well-formed.
  GQC_AUDIT(ValidateGraph(out.graph, *vocab));
  return out;
}

std::string WriteGraph(const Graph& g, const Vocabulary& vocab,
                       const std::map<std::string, NodeId>* names) {
  std::vector<std::string> name_of(g.NodeCount());
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    name_of[v] = "n";
    name_of[v] += std::to_string(v);
  }
  if (names != nullptr) {
    for (const auto& [name, v] : *names) {
      if (v < g.NodeCount()) name_of[v] = name;
    }
  }
  std::string out;
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    out += "node " + name_of[v];
    for (uint32_t id : g.Labels(v).ToIds()) {
      out += " " + vocab.ConceptName(id);
    }
    out += "\n";
  }
  g.ForEachEdge([&](const Edge& e) {
    out += "edge " + name_of[e.from] + " " + vocab.RoleName(e.role) + " " +
           name_of[e.to] + "\n";
  });
  return out;
}

}  // namespace gqc
