#ifndef GQC_GRAPH_COIL_H_
#define GQC_GRAPH_COIL_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/unravel.h"
#include "src/util/guard.h"
#include "src/util/result.h"

namespace gqc {

/// Result of the coil construction (§4). Coil(G, n) has nodes
/// Paths(G, n) × {0, ..., n} and an edge ((π, ℓ), (π', ℓ')) whenever
/// ℓ' ≡ ℓ+1 (mod n+1) and π' is the n-suffix of a one-edge extension of π.
/// Labels are inherited from the last node / edge of the path.
struct CoilResult {
  Graph graph;
  /// coil node -> base graph node (last node of the path); this is the
  /// mapping h_G of Property 1, a surjective homomorphism.
  std::vector<NodeId> base_node;
  /// coil node -> level ℓ in {0, ..., n}.
  std::vector<uint32_t> level;
  /// coil node -> the path π it represents.
  std::vector<GraphPath> paths;
  /// The window size n.
  std::size_t n = 0;
};

/// Builds Coil(G, n). Errors when n = 0 (the construction needs a positive
/// window). The number of coil nodes is |Paths(G, n)| * (n + 1), which grows
/// quickly with n; callers control n. An optional `guard` (billed under
/// kFrames) bounds the construction: a trip yields an error, never a partial
/// coil.
Result<CoilResult> Coil(const Graph& g, std::size_t n,
                        ResourceGuard* guard = nullptr);

}  // namespace gqc

#endif  // GQC_GRAPH_COIL_H_
