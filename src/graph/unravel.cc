#include "src/graph/unravel.h"

namespace gqc {

GraphPath GraphPath::Extend(uint32_t role, NodeId to) const {
  GraphPath p = *this;
  p.roles.push_back(role);
  p.nodes.push_back(to);
  return p;
}

GraphPath GraphPath::Suffix(std::size_t n) const {
  if (Length() <= n) return *this;
  GraphPath p;
  std::size_t drop = Length() - n;
  p.nodes.assign(nodes.begin() + static_cast<std::ptrdiff_t>(drop), nodes.end());
  p.roles.assign(roles.begin() + static_cast<std::ptrdiff_t>(drop), roles.end());
  return p;
}

namespace {

std::vector<GraphPath> ExpandPaths(const Graph& g, std::size_t n,
                                   std::vector<GraphPath> frontier) {
  std::vector<GraphPath> all = frontier;
  for (std::size_t len = 1; len <= n; ++len) {
    std::vector<GraphPath> next;
    for (const GraphPath& p : frontier) {
      for (const auto& [role, to] : g.OutEdges(p.Last())) {
        next.push_back(p.Extend(role, to));
      }
    }
    all.insert(all.end(), next.begin(), next.end());
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return all;
}

}  // namespace

std::vector<GraphPath> PathsUpTo(const Graph& g, std::size_t n) {
  std::vector<GraphPath> seeds;
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    seeds.push_back(GraphPath{{v}, {}});
  }
  return ExpandPaths(g, n, std::move(seeds));
}

std::vector<GraphPath> PathsFrom(const Graph& g, std::size_t n, NodeId v) {
  return ExpandPaths(g, n, {GraphPath{{v}, {}}});
}

UnravelResult Unravel(const Graph& g, std::size_t n, NodeId v) {
  UnravelResult result;
  // BFS construction so each path's parent already exists.
  struct Item {
    GraphPath path;
    NodeId tree_node;
  };
  std::vector<Item> frontier;
  NodeId root = result.tree.AddNode(g.Labels(v));
  result.root = root;
  result.base_node.push_back(v);
  result.paths.push_back(GraphPath{{v}, {}});
  frontier.push_back({GraphPath{{v}, {}}, root});

  for (std::size_t len = 1; len <= n && !frontier.empty(); ++len) {
    std::vector<Item> next;
    for (const Item& item : frontier) {
      for (const auto& [role, to] : g.OutEdges(item.path.Last())) {
        GraphPath extended = item.path.Extend(role, to);
        NodeId child = result.tree.AddNode(g.Labels(to));
        result.base_node.push_back(to);
        result.paths.push_back(extended);
        result.tree.AddEdge(item.tree_node, role, child);
        next.push_back({std::move(extended), child});
      }
    }
    frontier = std::move(next);
  }
  return result;
}

}  // namespace gqc
