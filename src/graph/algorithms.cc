#include "src/graph/algorithms.h"

#include <algorithm>
#include <deque>

namespace gqc {

namespace {

/// Visits the undirected neighbourhood of `u` (both edge directions).
template <typename Fn>
void ForEachUndirectedNeighbour(const Graph& g, NodeId u, Fn fn) {
  for (const auto& [role, v] : g.OutEdges(u)) fn(v);
  for (const auto& [role, v] : g.InEdges(u)) fn(v);
}

}  // namespace

bool IsConnected(const Graph& g) {
  std::size_t count = 0;
  ConnectedComponents(g, &count);
  return count <= 1;
}

std::vector<uint32_t> ConnectedComponents(const Graph& g, std::size_t* count) {
  std::vector<uint32_t> comp(g.NodeCount(), UINT32_MAX);
  uint32_t next = 0;
  std::deque<NodeId> queue;
  for (NodeId start = 0; start < g.NodeCount(); ++start) {
    if (comp[start] != UINT32_MAX) continue;
    comp[start] = next;
    queue.push_back(start);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      ForEachUndirectedNeighbour(g, u, [&](NodeId v) {
        if (comp[v] == UINT32_MAX) {
          comp[v] = next;
          queue.push_back(v);
        }
      });
    }
    ++next;
  }
  if (count != nullptr) *count = next;
  return comp;
}

std::vector<uint32_t> StronglyConnectedComponents(const Graph& g, std::size_t* count) {
  // Iterative Tarjan.
  const std::size_t n = g.NodeCount();
  std::vector<uint32_t> index(n, UINT32_MAX), lowlink(n, 0), scc(n, UINT32_MAX);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  uint32_t next_index = 0, next_scc = 0;

  struct Frame {
    NodeId v;
    std::size_t edge;
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != UINT32_MAX) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      NodeId v = frame.v;
      const auto& edges = g.OutEdges(v);
      if (frame.edge < edges.size()) {
        NodeId w = edges[frame.edge].second;
        ++frame.edge;
        if (index[w] == UINT32_MAX) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        call_stack.pop_back();
        if (!call_stack.empty()) {
          NodeId parent = call_stack.back().v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          while (true) {
            NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc[w] = next_scc;
            if (w == v) break;
          }
          ++next_scc;
        }
      }
    }
  }
  if (count != nullptr) *count = next_scc;
  return scc;
}

bool IsCSparse(const Graph& g, int64_t c) {
  return static_cast<int64_t>(g.EdgeCount()) <=
         static_cast<int64_t>(g.NodeCount()) + c;
}

bool IsUndirectedTree(const Graph& g) {
  if (g.NodeCount() == 0) return false;
  return IsConnected(g) && g.EdgeCount() == g.NodeCount() - 1;
}

std::vector<std::size_t> UndirectedDistances(const Graph& g, NodeId source) {
  std::vector<std::size_t> dist(g.NodeCount(), SIZE_MAX);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    ForEachUndirectedNeighbour(g, u, [&](NodeId v) {
      if (dist[v] == SIZE_MAX) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    });
  }
  return dist;
}

std::vector<std::size_t> DirectedDistances(const Graph& g, NodeId source) {
  std::vector<std::size_t> dist(g.NodeCount(), SIZE_MAX);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (const auto& [role, v] : g.OutEdges(u)) {
      if (dist[v] == SIZE_MAX) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> ReachableFrom(const Graph& g, NodeId source) {
  std::vector<NodeId> out;
  auto dist = DirectedDistances(g, source);
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    if (dist[v] != SIZE_MAX) out.push_back(v);
  }
  return out;
}

}  // namespace gqc
