#ifndef GQC_GRAPH_HOMOMORPHISM_H_
#define GQC_GRAPH_HOMOMORPHISM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace gqc {

/// A node mapping from a source graph into a target graph.
using NodeMapping = std::vector<NodeId>;

/// Finds a homomorphism h : g -> h_target in the paper's sense (§2):
/// node label sets must match exactly (homomorphisms preserve the absence of
/// node labels), and every edge (u, r, v) of g must map to an edge
/// (h(u), r, h(v)) of the target. Returns std::nullopt if none exists.
std::optional<NodeMapping> FindHomomorphism(const Graph& g, const Graph& target);

/// Verifies that `h` is a homomorphism g -> target (paper semantics).
bool IsHomomorphism(const Graph& g, const Graph& target, const NodeMapping& h);

/// Verifies the local-embedding condition (§3): `h` is a homomorphism and for
/// every r in Σ± and distinct r-successors v1 != v2 of any node u,
/// h(v1) != h(v2).
bool IsLocalEmbedding(const Graph& g, const Graph& target, const NodeMapping& h);

/// Finds a local embedding g -> target, or std::nullopt.
std::optional<NodeMapping> FindLocalEmbedding(const Graph& g, const Graph& target);

/// Tests isomorphism of pointed graphs (graph isomorphism preserving the
/// distinguished node). Exact backtracking; intended for the small component
/// and connector graphs that frames are built from.
bool ArePointedIsomorphic(const PointedGraph& a, const PointedGraph& b);

/// A 1-WL (colour refinement) fingerprint of a pointed graph. Isomorphic
/// pointed graphs have equal fingerprints; equal fingerprints are confirmed
/// with ArePointedIsomorphic by callers that need exactness.
std::string PointedFingerprint(const PointedGraph& g);

}  // namespace gqc

#endif  // GQC_GRAPH_HOMOMORPHISM_H_
