#include "src/graph/validate.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gqc {
namespace {

std::string NodeStr(NodeId v) { return std::to_string(v); }

}  // namespace

AuditResult ValidateGraph(const Graph& g) {
  const std::size_t n = g.NodeCount();
  std::size_t out_total = 0;
  for (NodeId u = 0; u < n; ++u) {
    std::set<std::pair<uint32_t, NodeId>> seen;
    for (const auto& [role, v] : g.OutEdges(u)) {
      if (v >= n) {
        return AuditViolation("out-edge (" + NodeStr(u) + ", r" +
                              std::to_string(role) + ", " + NodeStr(v) +
                              ") targets a node out of bounds (node count " +
                              std::to_string(n) + ")");
      }
      if (!seen.insert({role, v}).second) {
        return AuditViolation("duplicate edge (" + NodeStr(u) + ", r" +
                              std::to_string(role) + ", " + NodeStr(v) +
                              ") violates edge-set semantics");
      }
      const auto& mirror = g.InEdges(v);
      if (std::find(mirror.begin(), mirror.end(),
                    std::make_pair(role, u)) == mirror.end()) {
        return AuditViolation("edge (" + NodeStr(u) + ", r" +
                              std::to_string(role) + ", " + NodeStr(v) +
                              ") missing from the in-adjacency mirror");
      }
      ++out_total;
    }
  }
  std::size_t in_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (const auto& [role, u] : g.InEdges(v)) {
      if (u >= n) {
        return AuditViolation("in-edge (" + NodeStr(u) + ", r" +
                              std::to_string(role) + ", " + NodeStr(v) +
                              ") sources a node out of bounds");
      }
      const auto& mirror = g.OutEdges(u);
      if (std::find(mirror.begin(), mirror.end(),
                    std::make_pair(role, v)) == mirror.end()) {
        return AuditViolation("in-edge (" + NodeStr(u) + ", r" +
                              std::to_string(role) + ", " + NodeStr(v) +
                              ") missing from the out-adjacency mirror");
      }
      ++in_total;
    }
  }
  if (out_total != in_total || out_total != g.EdgeCount()) {
    return AuditViolation(
        "edge count mismatch: " + std::to_string(out_total) + " out-edges, " +
        std::to_string(in_total) + " in-edges, cached count " +
        std::to_string(g.EdgeCount()));
  }
  return std::nullopt;
}

AuditResult ValidateGraph(const Graph& g, const Vocabulary& vocab) {
  if (auto v = ValidateGraph(g)) return v;
  for (NodeId u = 0; u < g.NodeCount(); ++u) {
    for (uint32_t id : g.Labels(u).ToIds()) {
      if (id >= vocab.concept_count()) {
        return AuditViolation("node " + NodeStr(u) + " carries label id " +
                              std::to_string(id) +
                              " not interned in the vocabulary (" +
                              std::to_string(vocab.concept_count()) +
                              " concepts)");
      }
    }
    for (const auto& [role, v] : g.OutEdges(u)) {
      (void)v;
      if (role >= vocab.role_count()) {
        return AuditViolation("edge out of node " + NodeStr(u) +
                              " carries role id " + std::to_string(role) +
                              " not interned in the vocabulary (" +
                              std::to_string(vocab.role_count()) + " roles)");
      }
    }
  }
  return std::nullopt;
}

AuditResult ValidatePointedGraph(const PointedGraph& pg) {
  if (auto v = ValidateGraph(pg.graph)) return v;
  if (pg.graph.NodeCount() == 0) {
    return AuditViolation("pointed graph has no nodes");
  }
  if (pg.point >= pg.graph.NodeCount()) {
    return AuditViolation("distinguished node " + NodeStr(pg.point) +
                          " out of bounds (node count " +
                          std::to_string(pg.graph.NodeCount()) + ")");
  }
  return std::nullopt;
}

AuditResult ValidateType(const Type& t) {
  for (Literal l : t.Literals()) {
    if (t.HasPositive(l.concept_id()) && t.HasNegative(l.concept_id())) {
      return AuditViolation("type contains both a concept and its complement "
                            "(concept id " +
                            std::to_string(l.concept_id()) + ")");
    }
  }
  return std::nullopt;
}

AuditResult ValidateCoil(const Graph& base, const CoilResult& coil) {
  if (auto v = ValidateGraph(coil.graph)) return v;
  const std::size_t nodes = coil.graph.NodeCount();
  if (coil.base_node.size() != nodes || coil.level.size() != nodes ||
      coil.paths.size() != nodes) {
    return AuditViolation(
        "coil vectors misaligned: " + std::to_string(nodes) + " nodes, " +
        std::to_string(coil.base_node.size()) + " base_node entries, " +
        std::to_string(coil.level.size()) + " levels, " +
        std::to_string(coil.paths.size()) + " paths");
  }
  if (coil.n == 0) return AuditViolation("coil window n must be positive");
  for (NodeId v = 0; v < nodes; ++v) {
    if (coil.base_node[v] >= base.NodeCount()) {
      return AuditViolation("coil node " + NodeStr(v) +
                            " maps to base node out of bounds");
    }
    if (coil.level[v] > coil.n) {
      return AuditViolation("coil node " + NodeStr(v) + " has level " +
                            std::to_string(coil.level[v]) +
                            " exceeding the window n = " +
                            std::to_string(coil.n));
    }
    const GraphPath& path = coil.paths[v];
    if (path.nodes.empty() || path.nodes.size() != path.roles.size() + 1) {
      return AuditViolation("coil node " + NodeStr(v) +
                            " holds a malformed path");
    }
    if (path.Length() > coil.n) {
      return AuditViolation("coil node " + NodeStr(v) +
                            " holds a path longer than the window");
    }
    if (path.Last() != coil.base_node[v]) {
      return AuditViolation("coil node " + NodeStr(v) +
                            " path does not end at its base node");
    }
    for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      if (!base.HasEdge(path.nodes[i], path.roles[i], path.nodes[i + 1])) {
        return AuditViolation("coil node " + NodeStr(v) +
                              " path steps over a non-edge of the base graph");
      }
    }
    if (!(coil.graph.Labels(v) == base.Labels(coil.base_node[v]))) {
      return AuditViolation("coil node " + NodeStr(v) +
                            " labels differ from its base node's labels");
    }
  }
  // h_G is a homomorphism and edges respect level arithmetic + the n-suffix
  // extension discipline (Property 1).
  AuditResult violation;
  coil.graph.ForEachEdge([&](const Edge& e) {
    if (violation) return;
    if (coil.level[e.to] != (coil.level[e.from] + 1) % (coil.n + 1)) {
      violation = AuditViolation(
          "coil edge (" + NodeStr(e.from) + " -> " + NodeStr(e.to) +
          ") breaks level arithmetic mod n+1");
      return;
    }
    if (!base.HasEdge(coil.base_node[e.from], e.role, coil.base_node[e.to])) {
      violation = AuditViolation(
          "coil edge (" + NodeStr(e.from) + " -> " + NodeStr(e.to) +
          ") does not project to a base edge under h_G");
      return;
    }
    GraphPath expect =
        coil.paths[e.from].Extend(e.role, coil.base_node[e.to]).Suffix(coil.n);
    if (!(coil.paths[e.to] == expect)) {
      violation = AuditViolation(
          "coil edge (" + NodeStr(e.from) + " -> " + NodeStr(e.to) +
          ") target path is not the n-suffix of the one-edge extension");
    }
  });
  return violation;
}

}  // namespace gqc
