#ifndef GQC_GRAPH_GRAPH_H_
#define GQC_GRAPH_GRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/type.h"
#include "src/graph/vocabulary.h"

namespace gqc {

using NodeId = uint32_t;
constexpr NodeId kNoNode = UINT32_MAX;

/// A directed edge: from --role--> to, with `role` a forward role-name id.
struct Edge {
  NodeId from;
  uint32_t role;
  NodeId to;

  bool operator==(const Edge&) const = default;
};

/// A finite graph database in the paper's sense (§2): nodes carry sets of
/// labels from Γ, edges carry exactly one label from Σ, parallel edges are
/// allowed only with distinct labels (edge set semantics).
class Graph {
 public:
  Graph() = default;

  /// Adds an unlabelled node; returns its id (dense from 0).
  NodeId AddNode() { return AddNode(LabelSet{}); }
  NodeId AddNode(LabelSet labels);

  std::size_t NodeCount() const { return labels_.size(); }
  std::size_t EdgeCount() const { return edge_count_; }

  const LabelSet& Labels(NodeId v) const { return labels_[v]; }
  LabelSet& MutableLabels(NodeId v) { return labels_[v]; }

  bool HasLabel(NodeId v, uint32_t concept_id) const { return labels_[v].Has(concept_id); }
  void AddLabel(NodeId v, uint32_t concept_id) { labels_[v].Add(concept_id); }
  void RemoveLabel(NodeId v, uint32_t concept_id) { labels_[v].Remove(concept_id); }

  /// True if node `v` satisfies literal `l` (complement labels per §2).
  bool SatisfiesLiteral(NodeId v, Literal l) const {
    bool has = HasLabel(v, l.concept_id());
    return l.is_negative() ? !has : has;
  }

  /// True if node `v` is of type `t` (satisfies all literals of `t`).
  bool HasType(NodeId v, const Type& t) const;

  /// Adds edge u --role--> v (idempotent). Returns true if newly added.
  bool AddEdge(NodeId u, uint32_t role_id, NodeId v);
  /// Adds an edge in the direction given by `r` (inverse roles flip u/v).
  bool AddEdge(NodeId u, Role r, NodeId v) {
    return r.is_inverse() ? AddEdge(v, r.name_id(), u) : AddEdge(u, r.name_id(), v);
  }

  bool HasEdge(NodeId u, uint32_t role_id, NodeId v) const;
  bool HasEdge(NodeId u, Role r, NodeId v) const {
    return r.is_inverse() ? HasEdge(v, r.name_id(), u) : HasEdge(u, r.name_id(), v);
  }

  /// Removes edge u --role--> v if present; returns true if removed.
  bool RemoveEdge(NodeId u, uint32_t role_id, NodeId v);

  /// Successors of `u` along `r`: forward roles follow out-edges, inverse
  /// roles follow in-edges. Pairs are (role-name id of the edge, neighbour);
  /// only edges whose name matches r.name_id() are returned.
  std::vector<NodeId> Successors(NodeId u, Role r) const;

  /// All out-edges of `u` as (role id, target).
  const std::vector<std::pair<uint32_t, NodeId>>& OutEdges(NodeId u) const {
    return out_[u];
  }
  /// All in-edges of `u` as (role id, source).
  const std::vector<std::pair<uint32_t, NodeId>>& InEdges(NodeId u) const {
    return in_[u];
  }

  /// Total degree (in + out) of `u`.
  std::size_t Degree(NodeId u) const { return out_[u].size() + in_[u].size(); }

  /// Invokes `fn(edge)` for every edge.
  void ForEachEdge(const std::function<void(const Edge&)>& fn) const;
  /// All edges, in insertion-independent (from, role, to) order.
  std::vector<Edge> AllEdges() const;

  /// Appends a disjoint copy of `other`; returns the id offset (node v of
  /// `other` becomes offset + v here).
  NodeId DisjointUnion(const Graph& other);

  /// Subgraph induced by `nodes`; `old_to_new` (optional) receives the node
  /// renaming (kNoNode for dropped nodes).
  Graph InducedSubgraph(const std::vector<NodeId>& nodes,
                        std::vector<NodeId>* old_to_new = nullptr) const;

  /// Copy of this graph with every edge labelled `role_id` removed.
  Graph WithoutRole(uint32_t role_id) const;

  /// Adds `concept_id` to every node's label set.
  void AddLabelEverywhere(uint32_t concept_id);

  bool operator==(const Graph& other) const;

 private:
  std::vector<LabelSet> labels_;
  std::vector<std::vector<std::pair<uint32_t, NodeId>>> out_;
  std::vector<std::vector<std::pair<uint32_t, NodeId>>> in_;
  std::size_t edge_count_ = 0;
};

/// A graph with a distinguished node (§4).
struct PointedGraph {
  Graph graph;
  NodeId point = 0;
};

}  // namespace gqc

#endif  // GQC_GRAPH_GRAPH_H_
