#include "src/graph/generators.h"

#include <random>

namespace gqc {

Graph PathGraph(std::size_t n, uint32_t role_id) {
  Graph g;
  for (std::size_t i = 0; i < n; ++i) g.AddNode();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.AddEdge(static_cast<NodeId>(i), role_id, static_cast<NodeId>(i + 1));
  }
  return g;
}

Graph CycleGraph(std::size_t n, uint32_t role_id) {
  Graph g = PathGraph(n, role_id);
  if (n > 1) g.AddEdge(static_cast<NodeId>(n - 1), role_id, 0);
  if (n == 1) g.AddEdge(0, role_id, 0);
  return g;
}

Graph BalancedTree(std::size_t depth, std::size_t branching, uint32_t role_id) {
  Graph g;
  g.AddNode();
  std::vector<NodeId> frontier{0};
  for (std::size_t d = 0; d < depth; ++d) {
    std::vector<NodeId> next;
    for (NodeId parent : frontier) {
      for (std::size_t b = 0; b < branching; ++b) {
        NodeId child = g.AddNode();
        g.AddEdge(parent, role_id, child);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return g;
}

Graph RandomGraph(const RandomGraphOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Graph g;
  for (std::size_t i = 0; i < options.nodes; ++i) {
    LabelSet labels;
    for (uint32_t c : options.concepts) {
      if (coin(rng) < options.label_probability) labels.Add(c);
    }
    g.AddNode(std::move(labels));
  }
  for (NodeId u = 0; u < options.nodes; ++u) {
    for (NodeId v = 0; v < options.nodes; ++v) {
      for (uint32_t r : options.roles) {
        if (coin(rng) < options.edge_probability) g.AddEdge(u, r, v);
      }
    }
  }
  return g;
}

}  // namespace gqc
