#ifndef GQC_ENTAILMENT_ENTAILMENT_H_
#define GQC_ENTAILMENT_ENTAILMENT_H_

#include <optional>
#include <string>

#include "src/entailment/common.h"
#include "src/query/factorize.h"

namespace gqc {

/// Which decision path answered a request (reported for transparency).
enum class EnginePath {
  kNoRoles,       // B.1 base case
  kAlcqSimple,    // §6 engine (exact)
  kAlciOneway,    // §5 engine (productivity via bounded search)
  kBoundedSearch  // bounded witness search only
};

const char* EnginePathName(EnginePath p);

struct EntailmentResult {
  EngineAnswer answer = EngineAnswer::kUnknown;
  EnginePath path = EnginePath::kBoundedSearch;
  /// For type-realization kYes via bounded search: the witness graph.
  std::optional<Graph> witness;
  std::string note;
};

struct EntailmentOptions {
  EngineLimits limits;
  FactorizeOptions factorize;
};

/// Type-realization variant of finite entailment (§3): is `tau` realized in
/// some finite graph that satisfies `tbox` and refutes `q`? Dispatches:
///   - simple connected UC2RPQ + ALCQ (no inverses)  -> §6 engine,
///   - simple connected one-way UCRPQ + ALCI         -> §5 engine,
///   - anything else                                 -> bounded search.
/// `tbox` must be normalized; `q` is the query to avoid (not factorized —
/// factorization happens inside).
EntailmentResult TypeRealizable(const Type& tau, const NormalTBox& tbox,
                                const Ucrpq& q, Vocabulary* vocab,
                                const EntailmentOptions& options = {});

/// Finite entailment proper: G, T ⊨_fin Q — does every finite extension of
/// `g` satisfying `tbox` match `q`? Decided by searching for a finite
/// counter-extension with the bounded witness search (kYes/kNo exact when no
/// cap is hit; the witness of non-entailment is returned).
EntailmentResult FiniteEntails(const Graph& g, const NormalTBox& tbox, const Ucrpq& q,
                               Vocabulary* vocab, const EntailmentOptions& options = {});

}  // namespace gqc

#endif  // GQC_ENTAILMENT_ENTAILMENT_H_
