#include "src/entailment/witness_search.h"

#include <algorithm>
#include <memory>

#include "src/dl/model_check.h"
#include "src/entailment/compile_memo.h"
#include "src/query/eval.h"
#include "src/util/flat_map.h"

namespace gqc {

namespace {

class WitnessSearch {
 public:
  WitnessSearch(const WitnessProblem& problem, const EngineLimits& limits)
      : p_(problem), limits_(limits), space_(*problem.space) {}

  WitnessResult Run() {
    if (space_.arity() > limits_.max_support_bits) {
      return {EngineAnswer::kUnknown, std::nullopt};
    }
    roles_ = p_.roles.empty() ? p_.tbox->RoleIds() : p_.roles;

    // Enumerate admissible masks once. This scan is 2^arity work, so it is
    // charged in bulk up front; the Boolean CIs and Θ are compiled to word
    // masks once instead of being re-walked per enumerated mask.
    if (GuardCharge(limits_, space_.mask_count())) {
      return {EngineAnswer::kUnknown, std::nullopt};
    }
    std::shared_ptr<const CompiledBooleanCis> boolean_cis;
    std::shared_ptr<const CompiledTheta> theta;
    if (limits_.compile_memo != nullptr) {
      boolean_cis = limits_.compile_memo->GetBooleanCis(space_, *p_.tbox);
      theta = limits_.compile_memo->GetTheta(space_, p_.theta);
    } else {
      boolean_cis = std::make_shared<const CompiledBooleanCis>(space_, *p_.tbox);
      theta = std::make_shared<const CompiledTheta>(space_, p_.theta);
    }
    // lint: bounded(the 2^arity scan is billed in bulk just above)
    for (uint64_t mask = 0; mask < space_.mask_count(); ++mask) {
      if (!boolean_cis->Satisfies(mask)) continue;
      if (!theta->Respects(mask)) continue;
      masks_.push_back(mask);
    }
    if (masks_.empty()) return {EngineAnswer::kNo, std::nullopt};

    // Edge-admissibility guards (forall/at-most CIs) with their lhs
    // conjunctions compiled to word masks, hoisted out of the search.
    // lint: bounded(linear in the TBox CIs)
    for (const auto& ci : p_.tbox->Cis()) {
      if (ci.kind != NormalCi::Kind::kForall && ci.kind != NormalCi::Kind::kAtMost) {
        continue;
      }
      guards_.push_back({&ci, CompiledLiterals(space_, ci.lhs),
                         space_.PositionOf(ci.rhs_lit.concept_id()),
                         ci.rhs_lit.is_negative()});
    }
    if (p_.deferral.has_value() && p_.deferral->allowed_masks != nullptr) {
      deferred_masks_.Reserve(p_.deferral->allowed_masks->size());
      // lint: bounded(linear in the allowed stub masks)
      for (uint64_t m : *p_.deferral->allowed_masks) deferred_masks_.Insert(m);
    }

    // Initial states: either completions of the seed or a single tau-node.
    if (p_.seed != nullptr) {
      Graph g;
      std::vector<uint64_t> node_masks;
      if (SeedStates(&g, &node_masks, 0)) {
        return {EngineAnswer::kYes, std::move(found_)};
      }
    } else {
      for (uint64_t mask : masks_) {
        if (!space_.MaskContains(mask, p_.tau)) continue;
        Graph g = MaterializeNode(space_, mask);
        std::vector<uint64_t> node_masks{mask};
        if (Search(g, node_masks)) return {EngineAnswer::kYes, std::move(found_)};
        if (OutOfBudget()) break;
      }
    }
    return {hit_cap_ ? EngineAnswer::kUnknown : EngineAnswer::kNo, std::nullopt};
  }

 private:
  bool OutOfBudget() {
    if (steps_ > limits_.max_search_steps || GuardExhausted(limits_)) {
      hit_cap_ = true;
      return true;
    }
    return false;
  }

  /// Recursively completes the seed's node labels to full masks, then runs
  /// the main search on each completion.
  bool SeedStates(Graph* g, std::vector<uint64_t>* node_masks, NodeId v) {
    const Graph& seed = *p_.seed;
    if (v == seed.NodeCount()) {
      Graph completed;
      // lint: bounded(linear in the seed nodes)
      for (NodeId u = 0; u < seed.NodeCount(); ++u) {
        AddMaskNode(&completed, space_, (*node_masks)[u]);
      }
      seed.ForEachEdge([&](const Edge& e) {
        completed.AddEdge(e.from, e.role, e.to);
      });
      std::vector<uint64_t> masks_copy = *node_masks;
      return Search(completed, masks_copy);
    }
    for (uint64_t mask : masks_) {
      bool covers = true;
      // lint: bounded(labels of a single node)
      for (uint32_t id : seed.Labels(v).ToIds()) {
        std::size_t pos = space_.PositionOf(id);
        if (pos == TypeSpace::npos || !((mask >> pos) & 1)) {
          covers = false;
          break;
        }
      }
      if (!covers) continue;
      node_masks->push_back(mask);
      if (SeedStates(g, node_masks, v + 1)) return true;
      node_masks->pop_back();
      if (OutOfBudget()) return false;
    }
    return false;
  }

  /// True iff adding edge (u, role, w) keeps all forall/at-most CIs intact.
  /// Uses the precompiled guards: lhs applicability and the rhs literal are
  /// word tests against the node masks instead of per-literal binary
  /// searches.
  bool EdgeAdmissible(const Graph& g, const std::vector<uint64_t>& node_masks,
                      NodeId u, uint32_t role, NodeId w) {
    if (g.HasEdge(u, role, w)) return false;
    auto rhs_holds = [&](NodeId v, const GuardCi& gc) {
      if (gc.rhs_pos == TypeSpace::npos) return gc.rhs_negative;
      bool set = (node_masks[v] >> gc.rhs_pos) & 1;
      return gc.rhs_negative ? !set : set;
    };
    // lint: bounded(linear in the TBox CIs)
    for (const GuardCi& gc : guards_) {
      const NormalCi& ci = *gc.ci;
      if (ci.kind == NormalCi::Kind::kForall) {
        // The new edge is an r-edge u->w, i.e. a Forward(role) successor of u
        // and an Inverse(role) successor of w.
        if (ci.role == Role::Forward(role) && gc.lhs.Holds(node_masks[u]) &&
            !rhs_holds(w, gc)) {
          return false;
        }
        if (ci.role == Role::Inverse(role) && gc.lhs.Holds(node_masks[w]) &&
            !rhs_holds(u, gc)) {
          return false;
        }
      } else {  // kAtMost
        auto violates = [&](NodeId src, NodeId dst, Role r) {
          if (!(ci.role == r) || !gc.lhs.Holds(node_masks[src])) return false;
          if (!rhs_holds(dst, gc)) return false;
          return CountSuccessors(g, src, r, ci.rhs_lit) + 1 > ci.n;
        };
        if (violates(u, w, Role::Forward(role))) return false;
        if (violates(w, u, Role::Inverse(role))) return false;
      }
    }
    return true;
  }

  /// True if node `v` currently qualifies as a deferred shared stub
  /// (Lemma 3.5): allowed mask, exactly one incident edge, and no outgoing
  /// edges when the policy forbids them.
  bool IsDeferred(const Graph& g, const std::vector<uint64_t>& node_masks,
                  NodeId v) const {
    if (!p_.deferral.has_value()) return false;
    const auto& policy = *p_.deferral;
    if (!deferred_masks_.Contains(node_masks[v])) return false;
    if (g.Degree(v) != 1) return false;
    if (policy.forbid_outgoing && !g.OutEdges(v).empty()) return false;
    return true;
  }

  /// Finds the first at-least violation, or nullopt if the graph satisfies
  /// the TBox (forall/at-most hold by edge-addition discipline; Boolean by
  /// mask choice; seeds are re-checked here too). At-least violations at
  /// deferred stubs are skipped.
  struct Obligation {
    NodeId node;
    std::size_t ci_index;
  };
  std::optional<Obligation> FirstObligation(const Graph& g,
                                            const std::vector<uint64_t>& node_masks) {
    // lint: bounded(linear in the TBox CIs)
    for (std::size_t i = 0; i < p_.tbox->Cis().size(); ++i) {
      bool at_least = p_.tbox->Cis()[i].kind == NormalCi::Kind::kAtLeast;
      // lint: bounded(linear in the graph nodes)
      for (NodeId v = 0; v < g.NodeCount(); ++v) {
        if (NodeSatisfiesCi(g, v, p_.tbox->Cis()[i])) continue;
        if (at_least && IsDeferred(g, node_masks, v)) continue;
        return Obligation{v, i};
      }
    }
    return std::nullopt;
  }

  bool Search(Graph& g, std::vector<uint64_t>& node_masks) {
    if (OutOfBudget()) return false;
    ++steps_;
    if (GuardCharge(limits_)) {
      hit_cap_ = true;
      return false;
    }
    if (p_.forbid != nullptr && Matches(g, *p_.forbid)) return false;

    // Memoize visited states (approximate canonical form).
    std::vector<uint64_t> key;
    key.reserve(g.NodeCount() * 3);
    // lint: bounded(linear in the graph nodes)
    for (NodeId v = 0; v < g.NodeCount(); ++v) key.push_back(node_masks[v]);
    // lint: bounded(linear in the graph edges)
    for (const Edge& e : g.AllEdges()) {
      key.push_back((uint64_t{e.from} << 40) | (uint64_t{e.role} << 20) | e.to);
    }
    const std::size_t key_words = key.size();
    if (!visited_.Insert(std::move(key))) return false;
    // The memo set is the one structure that grows without bound with the
    // search; its keys carry the memory estimate.
    if (limits_.guard != nullptr &&
        limits_.guard->ChargeMemory(limits_.guard_phase,
                                    key_words * sizeof(uint64_t))) {
      hit_cap_ = true;
      return false;
    }

    auto obligation = FirstObligation(g, node_masks);
    if (!obligation.has_value()) {
      if (p_.require != nullptr && !Matches(g, *p_.require)) return false;
      if (!p_.tau.Literals().empty()) {
        bool realized = false;
        // lint: bounded(linear in the graph nodes)
        for (NodeId v = 0; v < g.NodeCount(); ++v) {
          if (space_.MaskContains(node_masks[v], p_.tau)) realized = true;
        }
        if (!realized) return false;
      }
      found_ = g;
      return true;
    }

    const NormalCi& ci = p_.tbox->Cis()[obligation->ci_index];
    if (ci.kind != NormalCi::Kind::kAtLeast) {
      // A forall/at-most/Boolean violation in a seeded start (edges given to
      // us rather than added by the discipline): dead state.
      return false;
    }
    NodeId v = obligation->node;

    // Repair: add one more r-successor with the filler literal, either by
    // linking to an existing node or by creating a fresh one.
    for (NodeId w = 0; w < g.NodeCount(); ++w) {
      if (!TryEdgeRepair(g, node_masks, v, ci, w)) continue;
      if (Search(g, node_masks)) return true;
      UndoEdge(g, v, ci, w);
      if (OutOfBudget()) return false;
    }
    if (g.NodeCount() < limits_.max_witness_nodes) {
      for (uint64_t mask : masks_) {
        if (!MaskHasLiteral(mask, ci.rhs_lit)) continue;
        NodeId w = AddMaskNode(&g, space_, mask);
        node_masks.push_back(mask);
        if (TryEdgeRepair(g, node_masks, v, ci, w)) {
          if (Search(g, node_masks)) return true;
          UndoEdge(g, v, ci, w);
        }
        RemoveLastNode(&g, &node_masks);
        if (OutOfBudget()) return false;
      }
    } else {
      hit_cap_ = true;
    }
    return false;
  }

  bool MaskHasLiteral(uint64_t mask, Literal l) {
    std::size_t pos = space_.PositionOf(l.concept_id());
    if (pos == TypeSpace::npos) return l.is_negative();
    bool set = (mask >> pos) & 1;
    return l.is_negative() ? !set : set;
  }

  bool TryEdgeRepair(Graph& g, const std::vector<uint64_t>& node_masks, NodeId v,
                     const NormalCi& ci, NodeId w) {
    if (!MaskHasLiteral(node_masks[w], ci.rhs_lit)) return false;
    NodeId from = ci.role.is_inverse() ? w : v;
    NodeId to = ci.role.is_inverse() ? v : w;
    if (!EdgeAdmissible(g, node_masks, from, ci.role.name_id(), to)) return false;
    g.AddEdge(from, ci.role.name_id(), to);
    return true;
  }

  void UndoEdge(Graph& g, NodeId v, const NormalCi& ci, NodeId w) {
    NodeId from = ci.role.is_inverse() ? w : v;
    NodeId to = ci.role.is_inverse() ? v : w;
    g.RemoveEdge(from, ci.role.name_id(), to);
  }

  void RemoveLastNode(Graph* g, std::vector<uint64_t>* node_masks) {
    // Nodes are only removed right after creation, with no incident edges
    // left (edges added during the repair were undone). Rebuild without the
    // last node.
    Graph rebuilt;
    // lint: bounded(linear in the graph nodes)
    for (NodeId v = 0; v + 1 < g->NodeCount(); ++v) {
      rebuilt.AddNode(g->Labels(v));
    }
    g->ForEachEdge([&](const Edge& e) {
      if (e.from + 1 < g->NodeCount() && e.to + 1 < g->NodeCount()) {
        rebuilt.AddEdge(e.from, e.role, e.to);
      }
    });
    *g = std::move(rebuilt);
    node_masks->pop_back();
  }

  struct GuardCi {
    const NormalCi* ci = nullptr;
    CompiledLiterals lhs;
    std::size_t rhs_pos = TypeSpace::npos;
    bool rhs_negative = false;
  };

  const WitnessProblem& p_;
  const EngineLimits& limits_;
  const TypeSpace& space_;
  std::vector<uint32_t> roles_;
  std::vector<uint64_t> masks_;
  std::vector<GuardCi> guards_;
  FlatSet<uint64_t> deferred_masks_;
  /// Visited search states (approximate canonical forms). The flat set
  /// probes by hash — one word compare per probe step — instead of
  /// lexicographically comparing key vectors down a red-black tree.
  FlatSet<std::vector<uint64_t>> visited_;
  std::size_t steps_ = 0;
  bool hit_cap_ = false;
  std::optional<Graph> found_;
};

}  // namespace

WitnessResult FindWitness(const WitnessProblem& problem, const EngineLimits& limits) {
  WitnessResult result = WitnessSearch(problem, limits).Run();
  // Definite witnesses are re-verified against the exact checkers. With a
  // deferral policy the witness is only the central part of a star-like
  // countermodel, so at-least CIs are exempt from the re-check (the stubs'
  // needs are met by peripheral parts).
  if (result.answer == EngineAnswer::kYes && result.witness.has_value()) {
    bool ok = true;
    if (problem.deferral.has_value()) {
      NormalTBox without_at_least;
      // lint: bounded(linear in the TBox CIs)
      for (const auto& ci : problem.tbox->Cis()) {
        if (ci.kind != NormalCi::Kind::kAtLeast) without_at_least.Add(ci);
      }
      ok = Satisfies(*result.witness, without_at_least);
    } else {
      ok = Satisfies(*result.witness, *problem.tbox);
    }
    if (problem.forbid != nullptr) ok = ok && !Matches(*result.witness, *problem.forbid);
    if (problem.require != nullptr) ok = ok && Matches(*result.witness, *problem.require);
    if (!ok) result.answer = EngineAnswer::kUnknown;  // should not happen
  }
  return result;
}

}  // namespace gqc
