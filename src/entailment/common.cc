#include "src/entailment/common.h"

#include "src/query/eval.h"

namespace gqc {

const char* EngineAnswerName(EngineAnswer a) {
  switch (a) {
    case EngineAnswer::kYes:
      return "yes";
    case EngineAnswer::kNo:
      return "no";
    case EngineAnswer::kUnknown:
      return "unknown";
  }
  return "?";
}

NodeId AddMaskNode(Graph* g, const TypeSpace& space, uint64_t mask) {
  LabelSet labels;
  // lint: bounded(linear in the support arity)
  for (std::size_t i = 0; i < space.arity(); ++i) {
    if ((mask >> i) & 1) labels.Add(space.support()[i]);
  }
  return g->AddNode(std::move(labels));
}

Graph MaterializeNode(const TypeSpace& space, uint64_t mask) {
  Graph g;
  AddMaskNode(&g, space, mask);
  return g;
}

bool MaskRespectsTheta(const TypeSpace& space, uint64_t mask,
                       const std::vector<Type>& theta) {
  // lint: bounded(linear in the theta types)
  for (const Type& t : theta) {
    if (space.MaskContains(mask, t)) return true;
  }
  return theta.empty();
}

CompiledTheta::CompiledTheta(const TypeSpace& space,
                             const std::vector<Type>& theta) {
  unconstrained_ = theta.empty();
  // lint: bounded(linear in the theta types)
  for (const Type& t : theta) {
    bool in_support = true;
    // lint: bounded(literals of a single type)
    for (Literal l : t.Literals()) {
      if (space.PositionOf(l.concept_id()) == TypeSpace::npos) {
        in_support = false;
        break;
      }
    }
    // MaskContains semantics: a type with any out-of-support literal is
    // never contained, so it contributes nothing to the disjunction.
    if (!in_support) continue;
    types_.emplace_back(space, t);
  }
}

void SingleNodeMatchMemo::Bind(const TypeSpace& space, const Ucrpq* q,
                               std::size_t* queries, std::size_t* hits) {
  space_ = &space;
  q_ = q;
  queries_ = queries;
  hits_ = hits;
  relevant_ = 0;
  memo_.Clear();
  // lint: bounded(mentioned concepts of the query, linear in query size)
  for (uint32_t id : q->MentionedConcepts()) {
    std::size_t pos = space.PositionOf(id);
    if (pos != TypeSpace::npos) relevant_ |= uint64_t{1} << pos;
  }
}

bool SingleNodeMatchMemo::Matches(uint64_t mask) {
  if (queries_ != nullptr) ++*queries_;
  uint64_t key = mask & relevant_;
  auto [slot, inserted] = memo_.TryEmplace(key);
  if (!inserted) {
    if (hits_ != nullptr) ++*hits_;
    return *slot;
  }
  *slot = gqc::Matches(MaterializeNode(*space_, key), *q_);
  return *slot;
}

}  // namespace gqc
