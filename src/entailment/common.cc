#include "src/entailment/common.h"

namespace gqc {

const char* EngineAnswerName(EngineAnswer a) {
  switch (a) {
    case EngineAnswer::kYes:
      return "yes";
    case EngineAnswer::kNo:
      return "no";
    case EngineAnswer::kUnknown:
      return "unknown";
  }
  return "?";
}

NodeId AddMaskNode(Graph* g, const TypeSpace& space, uint64_t mask) {
  LabelSet labels;
  // lint: bounded(linear in the support arity)
  for (std::size_t i = 0; i < space.arity(); ++i) {
    if ((mask >> i) & 1) labels.Add(space.support()[i]);
  }
  return g->AddNode(std::move(labels));
}

Graph MaterializeNode(const TypeSpace& space, uint64_t mask) {
  Graph g;
  AddMaskNode(&g, space, mask);
  return g;
}

bool MaskRespectsTheta(const TypeSpace& space, uint64_t mask,
                       const std::vector<Type>& theta) {
  // lint: bounded(linear in the theta types)
  for (const Type& t : theta) {
    if (space.MaskContains(mask, t)) return true;
  }
  return theta.empty();
}

}  // namespace gqc
