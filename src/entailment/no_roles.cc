#include "src/entailment/no_roles.h"

#include <memory>

#include "src/entailment/compile_memo.h"
#include "src/query/eval.h"

namespace gqc {

EngineAnswer RealizableNoRoles(const TypeSpace& space, const Type& tau,
                               const NormalTBox& tbox, const std::vector<Type>& theta,
                               const Ucrpq& q_hat_mod,
                               const EngineLimits& limits) {
  if (space.arity() > 28) return EngineAnswer::kUnknown;
  // Bill the whole 2^arity scan up front: each candidate is a cheap
  // isolated-node check, so bulk-charging beats a per-iteration poll.
  if (GuardCharge(limits, space.mask_count())) return EngineAnswer::kUnknown;
  // Compile every per-mask condition to word masks once, outside the scan:
  // tau containment and at-least applicability use the strict MaskContains
  // semantics (CompiledTheta over a single type), local consistency uses the
  // compiled Boolean CIs.
  std::shared_ptr<const CompiledTheta> tau_check;
  std::shared_ptr<const CompiledTheta> theta_check;
  std::shared_ptr<const CompiledBooleanCis> boolean_cis;
  if (limits.compile_memo != nullptr) {
    tau_check = limits.compile_memo->GetTheta(space, std::vector<Type>{tau});
    theta_check = limits.compile_memo->GetTheta(space, theta);
    boolean_cis = limits.compile_memo->GetBooleanCis(space, tbox);
  } else {
    tau_check = std::make_shared<const CompiledTheta>(space,
                                                      std::vector<Type>{tau});
    theta_check = std::make_shared<const CompiledTheta>(space, theta);
    boolean_cis = std::make_shared<const CompiledBooleanCis>(space, tbox);
  }
  std::vector<CompiledTheta> at_least_lhs;
  // lint: bounded(linear in the TBox CIs)
  for (const auto& ci : tbox.Cis()) {
    if (ci.kind != NormalCi::Kind::kAtLeast) continue;
    Type t;
    // lint: bounded(literals of one CI lhs)
    for (Literal l : ci.lhs) t.AddLiteral(l);
    at_least_lhs.emplace_back(space, std::vector<Type>{std::move(t)});
  }
  // lint: bounded(the 2^arity scan is billed in bulk to the guard just above)
  for (uint64_t mask = 0; mask < space.mask_count(); ++mask) {
    if (!tau_check->Respects(mask)) continue;
    if (!theta_check->Respects(mask)) continue;
    if (!boolean_cis->Satisfies(mask)) continue;
    // Restriction CIs with an at-least obligation cannot be met by an
    // isolated node; at-most and forall hold vacuously.
    bool restriction_ok = true;
    // lint: bounded(linear in the at-least CIs)
    for (const CompiledTheta& lhs : at_least_lhs) {
      if (lhs.Respects(mask)) {
        restriction_ok = false;
        break;
      }
    }
    if (!restriction_ok) continue;
    Graph g = MaterializeNode(space, mask);
    if (!Matches(g, q_hat_mod)) return EngineAnswer::kYes;
  }
  return EngineAnswer::kNo;
}

}  // namespace gqc
