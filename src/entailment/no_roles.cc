#include "src/entailment/no_roles.h"

#include "src/query/eval.h"

namespace gqc {

EngineAnswer RealizableNoRoles(const TypeSpace& space, const Type& tau,
                               const NormalTBox& tbox, const std::vector<Type>& theta,
                               const Ucrpq& q_hat_mod,
                               const EngineLimits& limits) {
  if (space.arity() > 28) return EngineAnswer::kUnknown;
  // Bill the whole 2^arity scan up front: each candidate is a cheap
  // isolated-node check, so bulk-charging beats a per-iteration poll.
  if (GuardCharge(limits, space.mask_count())) return EngineAnswer::kUnknown;
  // lint: bounded(the 2^arity scan is billed in bulk to the guard just above)
  for (uint64_t mask = 0; mask < space.mask_count(); ++mask) {
    if (!space.MaskContains(mask, tau)) continue;
    if (!MaskRespectsTheta(space, mask, theta)) continue;
    if (!MaskSatisfiesBooleanCis(space, mask, tbox)) continue;
    // Restriction CIs with an at-least obligation cannot be met by an
    // isolated node; at-most and forall hold vacuously.
    bool restriction_ok = true;
    // lint: bounded(linear in the TBox CIs)
    for (const auto& ci : tbox.Cis()) {
      if (ci.kind != NormalCi::Kind::kAtLeast) continue;
      bool applicable = true;
      // lint: bounded(literals of one CI lhs)
      for (Literal l : ci.lhs) {
        if (!space.MaskContains(mask, [&] {
              Type t;
              t.AddLiteral(l);
              return t;
            }())) {
          applicable = false;
          break;
        }
      }
      if (applicable) {
        restriction_ok = false;
        break;
      }
    }
    if (!restriction_ok) continue;
    Graph g = MaterializeNode(space, mask);
    if (!Matches(g, q_hat_mod)) return EngineAnswer::kYes;
  }
  return EngineAnswer::kNo;
}

}  // namespace gqc
