#include "src/entailment/no_roles.h"

#include "src/query/eval.h"

namespace gqc {

EngineAnswer RealizableNoRoles(const TypeSpace& space, const Type& tau,
                               const NormalTBox& tbox, const std::vector<Type>& theta,
                               const Ucrpq& q_hat_mod) {
  if (space.arity() > 28) return EngineAnswer::kUnknown;
  for (uint64_t mask = 0; mask < space.mask_count(); ++mask) {
    if (!space.MaskContains(mask, tau)) continue;
    if (!MaskRespectsTheta(space, mask, theta)) continue;
    if (!MaskSatisfiesBooleanCis(space, mask, tbox)) continue;
    // Restriction CIs with an at-least obligation cannot be met by an
    // isolated node; at-most and forall hold vacuously.
    bool restriction_ok = true;
    for (const auto& ci : tbox.Cis()) {
      if (ci.kind != NormalCi::Kind::kAtLeast) continue;
      bool applicable = true;
      for (Literal l : ci.lhs) {
        if (!space.MaskContains(mask, [&] {
              Type t;
              t.AddLiteral(l);
              return t;
            }())) {
          applicable = false;
          break;
        }
      }
      if (applicable) {
        restriction_ok = false;
        break;
      }
    }
    if (!restriction_ok) continue;
    Graph g = MaterializeNode(space, mask);
    if (!Matches(g, q_hat_mod)) return EngineAnswer::kYes;
  }
  return EngineAnswer::kNo;
}

}  // namespace gqc
