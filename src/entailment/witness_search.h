#ifndef GQC_ENTAILMENT_WITNESS_SEARCH_H_
#define GQC_ENTAILMENT_WITNESS_SEARCH_H_

#include <optional>

#include "src/entailment/common.h"

namespace gqc {

/// A bounded model-construction problem: find a finite graph that
///  - has its node labels drawn from `space` (every node carries a full
///    maximal type over the support),
///  - satisfies the normalized TBox,
///  - has every node's type containing some member of `theta` (if nonempty),
///  - realizes `tau` at some node (if nonempty),
///  - does not match `forbid` (if provided),
///  - matches `require` (if provided), and
///  - optionally extends `seed` (nodes keep at least their seed labels).
struct WitnessProblem {
  const TypeSpace* space = nullptr;
  const NormalTBox* tbox = nullptr;
  Type tau;
  std::vector<Type> theta;
  const Ucrpq* forbid = nullptr;
  const Ucrpq* require = nullptr;
  const Graph* seed = nullptr;
  /// Role name ids edges may use; defaults to the TBox roles if empty.
  std::vector<uint32_t> roles;

  /// Participation deferral (§3, Lemma 3.5): at-least violations are ignored
  /// at nodes that qualify as *shared stubs* — their full mask is in
  /// `allowed_masks`, they have exactly one incident edge, and (ALCQ case)
  /// no outgoing edges. Used by the containment reduction to search for the
  /// central part H0 of a star-like countermodel.
  struct Deferral {
    /// Sorted ascending, over `space`. The search indexes it into a flat
    /// hash set once up front.
    const std::vector<uint64_t>* allowed_masks = nullptr;
    bool forbid_outgoing = true;
  };
  std::optional<Deferral> deferral;
};

struct WitnessResult {
  EngineAnswer answer = EngineAnswer::kUnknown;
  std::optional<Graph> witness;
};

/// Chase/tableau-style backtracking search with a node budget: repairs
/// at-least violations by reusing or creating nodes, never adds an edge that
/// breaks a universal or at-most constraint, and rejects states matching
/// `forbid`. kYes answers carry a verified witness; kNo means the bounded
/// space was exhausted without hitting any cap (exact for problems whose
/// minimal witnesses fit the budget); kUnknown means a cap was hit.
///
/// This is the engineering substitute (DESIGN.md, substitution 1) for the
/// worst-case-optimal automata constructions the paper cites for component
/// productivity.
WitnessResult FindWitness(const WitnessProblem& problem, const EngineLimits& limits);

}  // namespace gqc

#endif  // GQC_ENTAILMENT_WITNESS_SEARCH_H_
