#ifndef GQC_ENTAILMENT_ALCQ_SIMPLE_H_
#define GQC_ENTAILMENT_ALCQ_SIMPLE_H_

#include "src/entailment/common.h"
#include "src/query/factorize.h"

namespace gqc {

/// The §6 engine: finite entailment of simple UC2RPQs in ALCQ
/// (Theorem 6.1), in the type-realization form used by the containment
/// reduction: decide whether a type τ is realized in some finite graph that
/// satisfies the TBox, respects Θ, and refutes Q (i.e. avoids Q̂) modulo
/// Σ0-reachability.
///
/// Structure (App. B):
///  - Step A (Lemma 6.3): decompose along strongly connected components into
///    tree-shaped frames; a least fixpoint computes the feasible distinguished
///    types, with connectors satisfying the counting pinning T_n and
///    components carrying the promise-split TBox T_e (checked recursively).
///  - Step B (Lemma 6.5): role-alternating frames; a greatest fixpoint over
///    marker-labelled types, whose component productivity recurses into Step
///    A with one role fewer.
///  - Base case (B.1): no roles — single-node witnesses.
///
/// The counting labels C_{i,r,D} record, for each node, how many r-successors
/// with filler D it has across *frame* edges (its connector); T_n pins them at
/// connectors and T_e splits each counting CI between in-component structure
/// and the promised connector counts. This follows the paper's §6 scheme with
/// the label bookkeeping made explicit (DESIGN.md).
class AlcqSimpleEngine {
 public:
  /// `factorization` must come from FactorizeSimpleUcrpq on the query to
  /// avoid; `vocab` mints the per-level counting labels and role markers.
  AlcqSimpleEngine(const SimpleFactorization* factorization, Vocabulary* vocab,
                   const EngineLimits& limits = {})
      : f_(factorization), vocab_(vocab), limits_(limits) {}

  /// Top-level query: is `tau` realized in a finite graph satisfying `tbox`
  /// (normalized ALCQ, no inverse roles; foralls are converted internally)
  /// and refuting the factorized query? Θ starts unconstrained.
  EngineAnswer TypeRealizable(const Type& tau, const NormalTBox& tbox);

  /// The recursive form (exposed for tests): refute Q̂ modulo
  /// Σ0-reachability, with Σ0 ⊇ roles(tbox).
  EngineAnswer Solve(const Type& tau, const NormalTBox& tbox,
                     const std::vector<Type>& theta,
                     const std::vector<uint32_t>& sigma0, std::size_t depth = 0);

  /// All realizable maximal types at once (the paper's Tp(T, Q̂) computation
  /// in §3): the masks over `space` whose single realization decides every
  /// per-type query. Much cheaper than per-type TypeRealizable calls.
  struct RealizableSet {
    TypeSpace space{std::vector<uint32_t>{}};
    std::vector<uint64_t> masks;
  };
  RealizableSet RealizableTypes(const NormalTBox& tbox);

  /// True if any resource cap was hit during the last call (in which case
  /// the answer was already reported as kUnknown).
  bool hit_cap() const { return hit_cap_; }

  /// Work counters from the last call (diagnostics / benchmarks).
  struct Stats {
    std::size_t fixpoint_iterations = 0;  // step-A rounds + step-B sweeps
    std::size_t connector_searches = 0;
    std::size_t types_enumerated = 0;
    std::size_t recursive_calls = 0;
    std::size_t max_support_bits = 0;
    // Hot-path counters (see DESIGN.md §11). Each counts a constant-time
    // fast-path operation that replaced a scan or tree lookup:
    //  - next_role_lookups: step-B successor-role steps, now a modular
    //    increment over role indices (was a std::find over the role list).
    //  - marker_word_tests: step-B member screening via one word-AND against
    //    the hoisted marker bit mask (was a per-role std::map lookup plus a
    //    PositionOf binary search per candidate mask).
    //  - single_node_match_queries/hits: memoized single-node query matches
    //    (hits skip a full query evaluation).
    std::size_t next_role_lookups = 0;
    std::size_t marker_word_tests = 0;
    std::size_t single_node_match_queries = 0;
    std::size_t single_node_match_hits = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  const SimpleFactorization* f_;
  Vocabulary* vocab_;
  EngineLimits limits_;
  bool hit_cap_ = false;
  Stats stats_;
};

}  // namespace gqc

#endif  // GQC_ENTAILMENT_ALCQ_SIMPLE_H_
