#ifndef GQC_ENTAILMENT_NO_ROLES_H_
#define GQC_ENTAILMENT_NO_ROLES_H_

#include "src/entailment/common.h"

namespace gqc {

/// Base case of the §6 recursion (App. B.1): the TBox mentions no roles, so
/// it suffices to look for a single isolated node. Decides whether some
/// maximal type over `space` (already filtered to the Boolean CIs of `tbox`
/// by the caller or not — this function re-checks) contains `tau`, contains
/// some type of `theta`, and whose one-node graph does not satisfy
/// `q_hat_mod` (the factorized query with Σ0-reachability atoms dropped).
///
/// The 2^arity scan is billed in bulk against `limits` before it starts;
/// a tripped guard yields kUnknown, never a wrong definite answer.
EngineAnswer RealizableNoRoles(const TypeSpace& space, const Type& tau,
                               const NormalTBox& tbox, const std::vector<Type>& theta,
                               const Ucrpq& q_hat_mod,
                               const EngineLimits& limits = {});

}  // namespace gqc

#endif  // GQC_ENTAILMENT_NO_ROLES_H_
