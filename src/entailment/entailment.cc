#include "src/entailment/entailment.h"

#include "src/dl/transforms.h"
#include "src/entailment/alci_oneway.h"
#include "src/entailment/alcq_simple.h"
#include "src/entailment/witness_search.h"

namespace gqc {

const char* EnginePathName(EnginePath p) {
  switch (p) {
    case EnginePath::kNoRoles:
      return "no-roles";
    case EnginePath::kAlcqSimple:
      return "alcq-simple";
    case EnginePath::kAlciOneway:
      return "alci-oneway";
    case EnginePath::kBoundedSearch:
      return "bounded-search";
  }
  return "?";
}

namespace {

EntailmentResult RealizeByBoundedSearch(const Type& tau, const NormalTBox& tbox,
                                        const Ucrpq& q, Vocabulary* vocab,
                                        const EntailmentOptions& options) {
  (void)vocab;
  EntailmentResult result;
  result.path = EnginePath::kBoundedSearch;
  std::vector<uint32_t> ids = tbox.ConceptIds();
  // lint: bounded(literals of a single type)
  for (Literal l : tau.Literals()) ids.push_back(l.concept_id());
  // lint: bounded(mentioned concepts of q, linear in query size)
  for (uint32_t id : q.MentionedConcepts()) ids.push_back(id);
  TypeSpace space{std::move(ids)};
  WitnessProblem problem;
  problem.space = &space;
  problem.tbox = &tbox;
  problem.tau = tau;
  problem.forbid = &q;
  WitnessResult w = FindWitness(problem, options.limits);
  result.answer = w.answer;
  result.witness = std::move(w.witness);
  return result;
}

}  // namespace

EntailmentResult TypeRealizable(const Type& tau, const NormalTBox& tbox,
                                const Ucrpq& q, Vocabulary* vocab,
                                const EntailmentOptions& options) {
  const bool simple = q.IsSimple() && q.IsConnected();
  if (simple) {
    auto factorization = FactorizeSimpleUcrpq(q, vocab, options.factorize);
    if (factorization.ok()) {
      if (!tbox.UsesInverse()) {
        EntailmentResult result;
        result.path = EnginePath::kAlcqSimple;
        AlcqSimpleEngine engine(&factorization.value(), vocab, options.limits);
        result.answer = engine.TypeRealizable(tau, tbox);
        return result;
      }
      if (!tbox.UsesCounting() && q.IsOneWay()) {
        EntailmentResult result;
        result.path = EnginePath::kAlciOneway;
        AlciOnewayEngine engine(&factorization.value(), vocab, options.limits);
        result.answer = engine.TypeRealizable(tau, tbox);
        return result;
      }
    }
  }
  EntailmentResult result = RealizeByBoundedSearch(tau, tbox, q, vocab, options);
  result.note = "combination outside the exact engines; bounded search used";
  return result;
}

EntailmentResult FiniteEntails(const Graph& g, const NormalTBox& tbox, const Ucrpq& q,
                               Vocabulary* vocab, const EntailmentOptions& options) {
  (void)vocab;
  EntailmentResult result;
  result.path = EnginePath::kBoundedSearch;
  std::vector<uint32_t> ids = tbox.ConceptIds();
  // lint: bounded(mentioned concepts of q, linear in query size)
  for (uint32_t id : q.MentionedConcepts()) ids.push_back(id);
  // lint: bounded(linear in the graph nodes)
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    // lint: bounded(labels of a single node)
    for (uint32_t id : g.Labels(v).ToIds()) ids.push_back(id);
  }
  TypeSpace space{std::move(ids)};
  WitnessProblem problem;
  problem.space = &space;
  problem.tbox = &tbox;
  problem.forbid = &q;
  problem.seed = &g;
  WitnessResult w = FindWitness(problem, options.limits);
  // A counter-extension exists  <=>  Q is NOT finitely entailed.
  switch (w.answer) {
    case EngineAnswer::kYes:
      result.answer = EngineAnswer::kNo;
      result.witness = std::move(w.witness);
      break;
    case EngineAnswer::kNo:
      result.answer = EngineAnswer::kYes;
      break;
    case EngineAnswer::kUnknown:
      result.answer = EngineAnswer::kUnknown;
      break;
  }
  return result;
}

}  // namespace gqc
