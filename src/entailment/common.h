#ifndef GQC_ENTAILMENT_COMMON_H_
#define GQC_ENTAILMENT_COMMON_H_

#include <cstdint>
#include <vector>

#include "src/dl/tbox.h"
#include "src/dl/types.h"
#include "src/graph/graph.h"
#include "src/graph/type.h"
#include "src/query/ucrpq.h"
#include "src/util/guard.h"

namespace gqc {

/// Tri-state answer of the bounded/exact decision procedures. Definite
/// answers are exact; kUnknown means a configured resource cap was hit.
enum class EngineAnswer { kYes, kNo, kUnknown };

const char* EngineAnswerName(EngineAnswer a);

/// Shared resource limits for the entailment engines.
struct EngineLimits {
  /// Maximum number of bits in any type-space support Γ₀ (the fixpoints
  /// enumerate up to 2^bits maximal types).
  std::size_t max_support_bits = 22;
  /// Maximum number of children tried when searching for a connector.
  std::size_t max_connector_children = 12;
  /// Node budget for the bounded witness search.
  std::size_t max_witness_nodes = 10;
  /// Global step budget shared by a search (backtracking nodes expanded).
  std::size_t max_search_steps = 200000;
  /// Recursion depth guard.
  std::size_t max_depth = 16;
  /// Optional resource guard (deadline / step budget / memory estimate /
  /// cancellation) shared with the surrounding decision. Null = ungoverned.
  /// When the guard trips, searches unwind with kUnknown exactly as if a
  /// structural cap above had been hit — never with a wrong definite answer.
  ResourceGuard* guard = nullptr;
  /// Phase the guarded work is attributed to (set by the caller that owns
  /// the pipeline phase, e.g. kDirect for the countermodel search and
  /// kEntailment for the Tp fixpoints).
  GuardPhase guard_phase = GuardPhase::kDirect;
};

/// True iff `limits.guard` exists and has tripped (or trips right now after
/// charging `steps`). The helper keeps per-step instrumentation one-liners.
inline bool GuardCharge(const EngineLimits& limits, uint64_t steps = 1) {
  return limits.guard != nullptr && limits.guard->Charge(limits.guard_phase, steps);
}

inline bool GuardExhausted(const EngineLimits& limits) {
  return limits.guard != nullptr && limits.guard->exhausted();
}

/// Materializes a single node whose labels are the positive bits of `mask`
/// over `space`.
Graph MaterializeNode(const TypeSpace& space, uint64_t mask);

/// Adds a node with the positive labels of `mask` to `g`.
NodeId AddMaskNode(Graph* g, const TypeSpace& space, uint64_t mask);

/// True if the maximal type `mask` contains some type of `theta`
/// (the "respects Θ" condition on node types).
bool MaskRespectsTheta(const TypeSpace& space, uint64_t mask,
                       const std::vector<Type>& theta);

}  // namespace gqc

#endif  // GQC_ENTAILMENT_COMMON_H_
