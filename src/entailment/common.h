#ifndef GQC_ENTAILMENT_COMMON_H_
#define GQC_ENTAILMENT_COMMON_H_

#include <cstdint>
#include <vector>

#include "src/dl/tbox.h"
#include "src/dl/types.h"
#include "src/graph/graph.h"
#include "src/graph/type.h"
#include "src/query/ucrpq.h"
#include "src/util/flat_map.h"
#include "src/util/guard.h"

namespace gqc {

/// Tri-state answer of the bounded/exact decision procedures. Definite
/// answers are exact; kUnknown means a configured resource cap was hit.
enum class EngineAnswer { kYes, kNo, kUnknown };

const char* EngineAnswerName(EngineAnswer a);

class CompiledScopeMemo;

/// Shared resource limits for the entailment engines.
struct EngineLimits {
  /// Maximum number of bits in any type-space support Γ₀ (the fixpoints
  /// enumerate up to 2^bits maximal types).
  std::size_t max_support_bits = 22;
  /// Maximum number of children tried when searching for a connector.
  std::size_t max_connector_children = 12;
  /// Node budget for the bounded witness search.
  std::size_t max_witness_nodes = 10;
  /// Global step budget shared by a search (backtracking nodes expanded).
  std::size_t max_search_steps = 200000;
  /// Recursion depth guard.
  std::size_t max_depth = 16;
  /// Optional resource guard (deadline / step budget / memory estimate /
  /// cancellation) shared with the surrounding decision. Null = ungoverned.
  /// When the guard trips, searches unwind with kUnknown exactly as if a
  /// structural cap above had been hit — never with a wrong definite answer.
  ResourceGuard* guard = nullptr;
  /// Phase the guarded work is attributed to (set by the caller that owns
  /// the pipeline phase, e.g. kDirect for the countermodel search and
  /// kEntailment for the Tp fixpoints).
  GuardPhase guard_phase = GuardPhase::kDirect;
  /// Optional memo for the per-solve word-mask compilations
  /// (src/entailment/compile_memo.h). Null = compile inline every call.
  /// Purely a performance hook: compiled artifacts are exact functions of
  /// (space, TBox/Θ), so answers are identical with or without it.
  CompiledScopeMemo* compile_memo = nullptr;
};

/// True iff `limits.guard` exists and has tripped (or trips right now after
/// charging `steps`). The helper keeps per-step instrumentation one-liners.
inline bool GuardCharge(const EngineLimits& limits, uint64_t steps = 1) {
  return limits.guard != nullptr && limits.guard->Charge(limits.guard_phase, steps);
}

inline bool GuardExhausted(const EngineLimits& limits) {
  return limits.guard != nullptr && limits.guard->exhausted();
}

/// Materializes a single node whose labels are the positive bits of `mask`
/// over `space`.
Graph MaterializeNode(const TypeSpace& space, uint64_t mask);

/// Adds a node with the positive labels of `mask` to `g`.
NodeId AddMaskNode(Graph* g, const TypeSpace& space, uint64_t mask);

/// True if the maximal type `mask` contains some type of `theta`
/// (the "respects Θ" condition on node types).
bool MaskRespectsTheta(const TypeSpace& space, uint64_t mask,
                       const std::vector<Type>& theta);

/// Θ precompiled against one TypeSpace so the per-mask "respects Θ" test in
/// the enumeration scans is a couple of word operations per Θ type instead of
/// per-literal binary searches. Matches MaskRespectsTheta exactly, including
/// its strict out-of-support semantics: a Θ type mentioning any concept
/// outside the support (either polarity) can never be contained, and an
/// empty Θ is unconstrained.
class CompiledTheta {
 public:
  CompiledTheta() = default;  // unconstrained
  CompiledTheta(const TypeSpace& space, const std::vector<Type>& theta);

  bool Respects(uint64_t mask) const {
    if (unconstrained_) return true;
    // lint: bounded(linear in the theta types)
    for (const CompiledLiterals& t : types_) {
      if (t.Holds(mask)) return true;
    }
    return false;
  }

 private:
  bool unconstrained_ = true;
  std::vector<CompiledLiterals> types_;
};

/// Memoized single-node query matching, keyed by the projection of the mask
/// onto the query's mentioned concepts.
///
/// An edge-free single-node graph can only satisfy unary atoms and concept
/// tests inside path regexes, so Matches(MaterializeNode(space, mask), q)
/// depends only on the bits of `mask` at the in-support positions of
/// q.MentionedConcepts() (out-of-support mentioned concepts are constantly
/// absent). The §6 fixpoints evaluate exactly this per enumerated candidate
/// and per zero-promise connector, with heavy projection overlap — the memo
/// turns repeats into one FlatMap probe.
class SingleNodeMatchMemo {
 public:
  /// Binds the memo to one (space, query) pair and drops earlier entries.
  /// Both referents must outlive the memo; counters may be null.
  void Bind(const TypeSpace& space, const Ucrpq* q, std::size_t* queries,
            std::size_t* hits);

  /// Matches(MaterializeNode(space, mask), *q), memoized.
  bool Matches(uint64_t mask);

  /// True if the memo is bound to exactly this query object (DCHECK helper).
  bool BoundTo(const Ucrpq* q) const { return q_ == q; }

 private:
  const TypeSpace* space_ = nullptr;
  const Ucrpq* q_ = nullptr;
  uint64_t relevant_ = 0;  // in-space bit positions of mentioned concepts
  FlatMap<uint64_t, bool> memo_;
  std::size_t* queries_ = nullptr;
  std::size_t* hits_ = nullptr;
};

}  // namespace gqc

#endif  // GQC_ENTAILMENT_COMMON_H_
