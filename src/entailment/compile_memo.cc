#include "src/entailment/compile_memo.h"

#include <chrono>
#include <string>
#include <utility>

namespace gqc {

namespace {

/// Appends the support of `space` at the id level. Support order fixes bit
/// positions, so two spaces serialize equal iff their compiled artifacts are
/// interchangeable.
void AppendSpacePart(std::string* out, const TypeSpace& space) {
  // lint: bounded(linear in the support, <= 64 ids)
  for (uint32_t id : space.support()) {
    out->append(std::to_string(id));
    out->push_back(',');
  }
}

/// Appends one normalized CI at the id level: kind tag, lhs/rhs literal
/// codes, restriction payload. Codes already encode polarity/direction, so
/// the serialization is exact — two TBoxes serialize equal iff their CIs are
/// structurally identical over the same ids.
void AppendCiPart(std::string* out, const NormalCi& ci) {
  out->push_back("bfan"[static_cast<std::size_t>(ci.kind)]);
  // lint: bounded(literals of one CI lhs)
  for (Literal l : ci.lhs) {
    out->append(std::to_string(l.code()));
    out->push_back(',');
  }
  out->push_back('|');
  // lint: bounded(literals of one CI rhs)
  for (Literal l : ci.rhs) {
    out->append(std::to_string(l.code()));
    out->push_back(',');
  }
  out->push_back('|');
  out->append(std::to_string(ci.rhs_lit.code()));
  out->push_back(':');
  out->append(std::to_string(ci.role.code()));
  out->push_back(':');
  out->append(std::to_string(ci.n));
  out->push_back(';');
}

std::string BooleanCisKey(const TypeSpace& space, const NormalTBox& tbox) {
  std::string key;
  key.reserve(16 + 16 * tbox.size());
  key.append("cis:");
  AppendSpacePart(&key, space);
  key.push_back('/');
  // Only Boolean CIs feed CompiledBooleanCis, but restriction CIs are
  // serialized too: the key stays a plain serialization of (support, TBox)
  // with no per-kind filtering logic to keep in sync with the compiler.
  // lint: bounded(linear in the TBox CIs)
  for (const NormalCi& ci : tbox.Cis()) AppendCiPart(&key, ci);
  return key;
}

std::string ThetaKey(const TypeSpace& space, const std::vector<Type>& theta) {
  std::string key;
  key.reserve(16 + 16 * theta.size());
  key.append("theta:");
  AppendSpacePart(&key, space);
  key.push_back('/');
  // lint: bounded(linear in the theta types)
  for (const Type& t : theta) {
    // Literals() is canonical (positives then negatives, ascending), so
    // equal types serialize equal.
    // lint: bounded(literals of one type)
    for (Literal l : t.Literals()) {
      key.append(std::to_string(l.code()));
      key.push_back(',');
    }
    key.push_back(';');
  }
  return key;
}

uint64_t BuildCostNs(std::chrono::steady_clock::time_point start) {
  auto elapsed = std::chrono::steady_clock::now() - start;
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  return ns <= 0 ? 1 : static_cast<uint64_t>(ns);
}

}  // namespace

std::shared_ptr<const CompiledBooleanCis> CompiledScopeMemo::GetBooleanCis(
    const TypeSpace& space, const NormalTBox& tbox) {
  FpKey key(BooleanCisKey(space, tbox));
  {
    MutexLock lock(&mu_);
    ++tick_;
    if (auto* hit = boolean_.Find(key)) {
      hit->meta.touch = tick_;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return hit->value;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto start = std::chrono::steady_clock::now();
  auto built = std::make_shared<const CompiledBooleanCis>(space, tbox);
  uint64_t cost = BuildCostNs(start);
  std::size_t bytes = key.text().size() + 32 * tbox.size() + 64;
  MutexLock lock(&mu_);
  auto [slot, inserted] = boolean_.TryEmplace(std::move(key));
  if (!inserted) return slot->value;
  slot->value = built;
  slot->meta = {tick_, cost, bytes};
  // Enforcement may evict this very entry and rehash the table; `slot` is
  // dead after the call, so return the local ref.
  EnforceBudgetLocked();
  return built;
}

std::shared_ptr<const CompiledTheta> CompiledScopeMemo::GetTheta(
    const TypeSpace& space, const std::vector<Type>& theta) {
  FpKey key(ThetaKey(space, theta));
  {
    MutexLock lock(&mu_);
    ++tick_;
    if (auto* hit = theta_.Find(key)) {
      hit->meta.touch = tick_;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return hit->value;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto start = std::chrono::steady_clock::now();
  auto built = std::make_shared<const CompiledTheta>(space, theta);
  uint64_t cost = BuildCostNs(start);
  std::size_t bytes = key.text().size() + 24 * theta.size() + 64;
  MutexLock lock(&mu_);
  auto [slot, inserted] = theta_.TryEmplace(std::move(key));
  if (!inserted) return slot->value;
  slot->value = built;
  slot->meta = {tick_, cost, bytes};
  // Enforcement may evict this very entry and rehash; `slot` is dead after.
  EnforceBudgetLocked();
  return built;
}

void CompiledScopeMemo::SetBudget(const CacheBudget& budget) {
  MutexLock lock(&mu_);
  budget_ = budget;
  EnforceBudgetLocked();
}

std::size_t CompiledScopeMemo::EnforceBudgetLocked() {
  if (!budget_.bounded()) return 0;
  // The entry budget is shared by both tables; split eviction pro rata.
  std::size_t entries = boolean_.size() + theta_.size();
  std::size_t bytes = RetainedBytes(boolean_) + RetainedBytes(theta_);
  std::size_t drop = OverBudgetDropCount(budget_, entries, bytes);
  if (drop == 0) return 0;
  std::size_t drop_boolean = entries == 0 ? 0 : drop * boolean_.size() / entries;
  std::size_t freed = 0;
  freed += EvictLowestScore(&boolean_, tick_, drop_boolean);
  freed += EvictLowestScore(&theta_, tick_, drop - drop_boolean);
  evictions_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

std::size_t CompiledScopeMemo::Evict(double pressure) {
  MutexLock lock(&mu_);
  std::size_t freed = 0;
  freed += EvictLowestScore(&boolean_, tick_,
                            EvictionCount(boolean_.size(), pressure));
  freed += EvictLowestScore(&theta_, tick_,
                            EvictionCount(theta_.size(), pressure));
  evictions_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

void CompiledScopeMemo::Clear() {
  MutexLock lock(&mu_);
  boolean_.Clear();
  theta_.Clear();
  tick_ = 0;
}

std::size_t CompiledScopeMemo::size() const {
  MutexLock lock(&mu_);
  return boolean_.size() + theta_.size();
}

std::size_t CompiledScopeMemo::retained_bytes() const {
  MutexLock lock(&mu_);
  return RetainedBytes(boolean_) + RetainedBytes(theta_);
}

}  // namespace gqc
