#include "src/entailment/alci_oneway.h"

#include <algorithm>
#include <functional>

#include "src/dl/model_check.h"
#include "src/dl/transforms.h"
#include "src/entailment/witness_search.h"
#include "src/query/eval.h"

namespace gqc {

EngineAnswer AlciOnewayEngine::TypeRealizable(const Type& tau, const NormalTBox& tbox) {
  RealizableSet set = RealizableTypes(tbox);
  // τ-literals over concepts outside the support are unconstrained by T and
  // Q̂, so any witness can be relabelled to satisfy them; only the in-support
  // part needs to be matched against the realizable masks.
  Type in_support;
  // lint: bounded(literals of a single type)
  for (Literal l : tau.Literals()) {
    if (set.space.PositionOf(l.concept_id()) != TypeSpace::npos) {
      in_support.AddLiteral(l);
    }
  }
  // lint: bounded(masks were enumerated under the guarded fixpoint)
  for (uint64_t mask : set.masks) {
    if (set.space.MaskContains(mask, in_support)) return EngineAnswer::kYes;
  }
  return hit_cap_ ? EngineAnswer::kUnknown : EngineAnswer::kNo;
}

AlciOnewayEngine::RealizableSet AlciOnewayEngine::RealizableTypes(
    const NormalTBox& tbox) {
  hit_cap_ = false;
  if (tbox.UsesCounting()) {
    hit_cap_ = true;  // not this engine's case
    return {};
  }

  uint32_t c_fwd = vocab_->FreshConcept("fwd_marker");

  NormalTBox t_fwd = ForwardRestriction(tbox);
  NormalTBox t_bwd = BackwardRestriction(tbox);

  // Support Γ₀: T, Q̂, marker.
  std::vector<uint32_t> ids = tbox.ConceptIds();
  // lint: bounded(mentioned concepts of Q-hat, linear in query size)
  for (uint32_t id : f_->q_hat.MentionedConcepts()) ids.push_back(id);
  ids.push_back(c_fwd);
  TypeSpace space{std::move(ids)};
  if (space.arity() > limits_.max_support_bits ||
      GuardCharge(limits_, space.mask_count())) {
    hit_cap_ = true;
    return {};
  }

  std::vector<uint64_t> members = EnumerateLocallyConsistentTypes(space, tbox);
  std::vector<bool> alive(members.size(), true);
  std::size_t fwd_pos = space.PositionOf(c_fwd);
  auto is_forward = [&](uint64_t mask) { return (mask >> fwd_pos) & 1; };

  // Participation constraints of each direction, with lhs applicability and
  // the rhs filler compiled to word masks once — the fixpoint's connector
  // checks re-test these per member per sweep.
  struct AtLeastOb {
    const NormalCi* ci = nullptr;
    CompiledLiterals lhs;
    std::size_t rhs_pos = TypeSpace::npos;
    bool rhs_negative = false;
  };
  auto compile_at_least = [&](const NormalTBox& t) {
    std::vector<AtLeastOb> out;
    // lint: bounded(linear in the TBox CIs)
    for (const auto& ci : t.Cis()) {
      if (ci.kind != NormalCi::Kind::kAtLeast) continue;
      out.push_back({&ci, CompiledLiterals(space, ci.lhs),
                     space.PositionOf(ci.rhs_lit.concept_id()),
                     ci.rhs_lit.is_negative()});
    }
    return out;
  };
  std::vector<AtLeastOb> fwd_at_least = compile_at_least(t_fwd);
  std::vector<AtLeastOb> bwd_at_least = compile_at_least(t_bwd);
  auto rhs_holds = [](const AtLeastOb& ob, uint64_t mask) {
    if (ob.rhs_pos == TypeSpace::npos) return ob.rhs_negative;
    bool set = (mask >> ob.rhs_pos) & 1;
    return ob.rhs_negative ? !set : set;
  };

  // Connector check: for σ of direction d, every participation constraint of
  // the opposite-direction TBox applicable at σ picks one child of the
  // opposite direction; the assembled star must satisfy the opposite TBox at
  // the distinguished node and refute Q̂. ALCI cannot detect duplicated
  // witnesses, so one child per constraint is enough (Lemma 3.5 remark).
  auto connector_ok = [&](uint64_t sigma, const std::vector<uint64_t>& opposite) {
    bool forward = is_forward(sigma);
    const NormalTBox& t_opp = forward ? t_bwd : t_fwd;
    // Collect applicable participation constraints (precompiled lhs masks).
    std::vector<const AtLeastOb*> obligations;
    // lint: bounded(linear in the TBox CIs)
    for (const AtLeastOb& ob : forward ? bwd_at_least : fwd_at_least) {
      if (ob.lhs.Holds(sigma)) obligations.push_back(&ob);
    }
    if (obligations.size() > limits_.max_connector_children) {
      hit_cap_ = true;
      return false;
    }
    // Per-obligation candidates.
    std::vector<std::vector<uint64_t>> candidates(obligations.size());
    // lint: bounded(one pass per at-least obligation, at most the TBox size)
    for (std::size_t i = 0; i < obligations.size(); ++i) {
      // lint: bounded(scans the opposite-direction member masks)
      for (uint64_t child : opposite) {
        if (rhs_holds(*obligations[i], child)) {
          candidates[i].push_back(child);
        }
      }
      if (candidates[i].empty()) return false;
    }
    // Enumerate combinations; verify on the materialized star.
    std::size_t steps = 0;
    std::vector<uint64_t> picks(obligations.size());
    std::function<bool(std::size_t)> choose = [&](std::size_t i) -> bool {
      if (++steps > limits_.max_search_steps || GuardCharge(limits_)) {
        hit_cap_ = true;
        return false;
      }
      if (i == obligations.size()) {
        Graph star = MaterializeNode(space, sigma);
        // lint: bounded(linear in picks, at most one per obligation)
        for (std::size_t k = 0; k < picks.size(); ++k) {
          NodeId w = AddMaskNode(&star, space, picks[k]);
          // Directed connectors: edges run from backward to forward nodes.
          Role role = obligations[k]->ci->role;
          if (role.is_inverse()) {
            star.AddEdge(w, role.name_id(), 0);
          } else {
            star.AddEdge(0, role.name_id(), w);
          }
        }
        if (!NodeSatisfies(star, 0, t_opp)) return false;
        if (Matches(star, f_->q_hat)) return false;
        return true;
      }
      // lint: bounded(each choose recursion polls the guard at entry)
      for (uint64_t child : candidates[i]) {
        picks[i] = child;
        if (choose(i + 1)) return true;
      }
      return false;
    };
    return choose(0);
  };

  // Component productivity via bounded witness search (the DESIGN.md
  // substitution for the [28] oracle).
  auto component_ok = [&](uint64_t sigma, const std::vector<uint64_t>& same_dir) {
    bool forward = is_forward(sigma);
    const NormalTBox& t_dir = forward ? t_fwd : t_bwd;
    std::vector<Type> theta;
    theta.reserve(same_dir.size());
    // lint: bounded(linear in the same-direction member masks)
    for (uint64_t m : same_dir) theta.push_back(space.MaterializeType(m));
    WitnessProblem problem;
    problem.space = &space;
    problem.tbox = &t_dir;
    problem.tau = space.MaterializeType(sigma);
    problem.theta = std::move(theta);
    problem.forbid = &f_->q_hat;
    WitnessResult result = FindWitness(problem, limits_);
    if (result.answer == EngineAnswer::kUnknown) hit_cap_ = true;
    return result.answer == EngineAnswer::kYes;
  };

  bool changed = true;
  while (changed) {
    // A tripped guard must not surface the partially-eliminated member set
    // (an over-approximation would allow a wrong definite kYes); unwind with
    // the empty set and let hit_cap_ turn kNo into kUnknown.
    if (GuardCharge(limits_)) {
      hit_cap_ = true;
      RealizableSet empty;
      empty.space = space;
      return empty;
    }
    changed = false;
    std::vector<uint64_t> fwd_alive, bwd_alive;
    // lint: bounded(linear scan over members)
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!alive[i]) continue;
      (is_forward(members[i]) ? fwd_alive : bwd_alive).push_back(members[i]);
    }
    // lint: bounded(per-member elimination scan; the inner connector search polls per step)
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!alive[i]) continue;
      uint64_t sigma = members[i];
      bool forward = is_forward(sigma);
      const std::vector<uint64_t>& same = forward ? fwd_alive : bwd_alive;
      const std::vector<uint64_t>& opp = forward ? bwd_alive : fwd_alive;
      if (!connector_ok(sigma, opp) || !component_ok(sigma, same)) {
        alive[i] = false;
        changed = true;
      }
    }
  }

  RealizableSet out;
  out.space = space;
  // lint: bounded(linear scan over members)
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (alive[i]) out.masks.push_back(members[i]);
  }
  return out;
}

}  // namespace gqc
