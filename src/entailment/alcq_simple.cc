#include "src/entailment/alcq_simple.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "src/dl/transforms.h"
#include "src/query/eval.h"
#include "src/util/invariant.h"

namespace gqc {

namespace {

/// Θ given as maximal-type masks over a (parent) space. A mask over a child
/// space respects it iff its projection onto the parent support is listed.
/// An empty `space` means unconstrained.
struct MaskTheta {
  const TypeSpace* space = nullptr;
  std::vector<uint64_t> masks;  // sorted
};

/// Positions of `parent` support concepts inside `child` (child ⊇ parent).
std::vector<std::size_t> ProjectionPositions(const TypeSpace& parent,
                                             const TypeSpace& child) {
  std::vector<std::size_t> out;
  out.reserve(parent.arity());
  // lint: bounded(linear in the parent support)
  for (uint32_t id : parent.support()) {
    std::size_t pos = child.PositionOf(id);
    GQC_DCHECK(pos != TypeSpace::npos);
    out.push_back(pos);
  }
  return out;
}

uint64_t Project(uint64_t mask, const std::vector<std::size_t>& positions) {
  uint64_t out = 0;
  // lint: bounded(linear in the projection positions)
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if ((mask >> positions[i]) & 1) out |= uint64_t{1} << i;
  }
  return out;
}

TypeSpace MakeLevelSupport(const Type& tau, const NormalTBox& tbox,
                           const MaskTheta& theta, const Ucrpq& q_hat,
                           const std::vector<uint32_t>& extra) {
  std::vector<uint32_t> ids = tbox.ConceptIds();
  // lint: bounded(literals of a single type)
  for (Literal l : tau.Literals()) ids.push_back(l.concept_id());
  if (theta.space != nullptr) {
    const auto& sup = theta.space->support();
    ids.insert(ids.end(), sup.begin(), sup.end());
  }
  // lint: bounded(mentioned concepts of Q-hat, linear in query size)
  for (uint32_t id : q_hat.MentionedConcepts()) ids.push_back(id);
  ids.insert(ids.end(), extra.begin(), extra.end());
  return TypeSpace(std::move(ids));
}

/// Per-recursion-level bookkeeping: the type space Γ₀, the counting
/// vocabulary, and the promise-split TBox.
struct Level {
  TypeSpace space{std::vector<uint32_t>{}};
  CountingVocabulary cv;
  NormalTBox te;

  uint32_t Promise(uint64_t sigma, std::size_t pair_idx) const {
    const CountedPair& pair = cv.pairs[pair_idx];
    uint32_t m = 0;
    // lint: bounded(labels of one counted pair)
    for (uint32_t i = 0; i < pair.labels.size(); ++i) {
      std::size_t pos = space.PositionOf(pair.labels[i]);
      if (pos != TypeSpace::npos && ((sigma >> pos) & 1)) m = i;
    }
    return m;
  }

  bool MaskHasLiteral(uint64_t mask, Literal l) const {
    std::size_t pos = space.PositionOf(l.concept_id());
    if (pos == TypeSpace::npos) return l.is_negative();
    bool set = (mask >> pos) & 1;
    return l.is_negative() ? !set : set;
  }
};

// ---------------------------------------------------------------------------
// Implementation class holding the recursion; the public engine forwards.
// ---------------------------------------------------------------------------

class AlcqSimpleEngineImpl {
 public:
  AlcqSimpleEngineImpl(const SimpleFactorization* f, Vocabulary* vocab,
                       const EngineLimits& limits)
      : f_(f), vocab_(vocab), limits_(limits) {}

  bool hit_cap_ = false;
  AlcqSimpleEngine::Stats stats_;

  /// Step A (Lemma 6.3). Returns the realizable distinguished masks over the
  /// level's own space, along with the space itself (via out parameters).
  std::vector<uint64_t> SolveSet(const NormalTBox& tbox, const MaskTheta& theta,
                                 const std::vector<uint32_t>& sigma0,
                                 std::size_t depth, TypeSpace* out_space) {
    if (depth > limits_.max_depth || GuardCharge(limits_)) {
      hit_cap_ = true;
      *out_space = TypeSpace({});
      return {};
    }
    ++stats_.recursive_calls;
    std::vector<uint32_t> roles = tbox.RoleIds();
    Ucrpq q_mod_sigma0 = DropReachabilityAtoms(f_->q_hat, sigma0);

    if (roles.empty()) {
      return BaseCaseSet(tbox, theta, q_mod_sigma0, out_space);
    }

    Level level;
    level.cv = MakeCountingVocabulary(tbox, vocab_);
    level.te = MakeTeNormal(tbox, level.cv);
    level.space =
        MakeLevelSupport(Type{}, level.te, theta, f_->q_hat, level.cv.AllLabelIds());
    *out_space = level.space;
    if (level.space.arity() > limits_.max_support_bits) {
      hit_cap_ = true;
      return {};
    }

    Ucrpq q_mod_sigma_t = DropReachabilityAtoms(f_->q_hat, roles);
    std::vector<uint64_t> candidates =
        FilterCandidates(level, theta, q_mod_sigma_t);

    std::vector<std::size_t> all_pairs(level.cv.pairs.size());
    // lint: bounded(index initialization, linear in the counted pairs)
    for (std::size_t i = 0; i < all_pairs.size(); ++i) all_pairs[i] = i;

    std::vector<uint64_t> psi;
    for (std::size_t iteration = 0; iteration < 64; ++iteration) {
      ++stats_.fixpoint_iterations;
      // Guard trips return the empty (under-approximating) set: a definite
      // kYes needs membership, so under-approximation plus hit_cap_ (which
      // turns kNo into kUnknown) can never yield a wrong definite answer.
      if (GuardCharge(limits_)) {
        hit_cap_ = true;
        return {};
      }
      // Connector-feasible candidates over the current psi.
      std::vector<uint64_t> feasible;
      // lint: bounded(candidates come from the guarded enumeration; ConnectorExists polls per step)
      for (uint64_t sigma : candidates) {
        if (ConnectorExists(level, sigma, psi, q_mod_sigma0, all_pairs)) {
          feasible.push_back(sigma);
        }
      }
      if (feasible.empty()) return {};
      // Productivity: one recursive set computation for all of them.
      MaskTheta component_theta{&level.space, feasible};
      TypeSpace child_space({});
      std::vector<uint64_t> realizable = SolveSetStepB(
          level.te, component_theta, roles, depth + 1, &child_space);
      std::vector<uint64_t> productive =
          ProjectSet(realizable, level.space, child_space);
      // Keep only feasible ones (projection may include types outside).
      std::vector<uint64_t> next;
      std::set_intersection(feasible.begin(), feasible.end(), productive.begin(),
                            productive.end(), std::back_inserter(next));
      if (next == psi) return psi;
      psi = std::move(next);
    }
    hit_cap_ = true;
    return psi;
  }

  /// Step B (Lemma 6.5): role-alternating frames, greatest fixpoint.
  std::vector<uint64_t> SolveSetStepB(const NormalTBox& tbox, const MaskTheta& theta,
                                      const std::vector<uint32_t>& sigma_mod,
                                      std::size_t depth, TypeSpace* out_space) {
    if (depth > limits_.max_depth || GuardCharge(limits_)) {
      hit_cap_ = true;
      *out_space = TypeSpace({});
      return {};
    }
    std::vector<uint32_t> roles = tbox.RoleIds();
    if (roles.empty()) {
      return BaseCaseSet(tbox, theta, DropReachabilityAtoms(f_->q_hat, sigma_mod),
                         out_space);
    }

    Level level;
    level.cv = MakeCountingVocabulary(tbox, vocab_);
    level.te = MakeTeNormal(tbox, level.cv);
    std::map<uint32_t, uint32_t> marker;
    std::vector<uint32_t> extra = level.cv.AllLabelIds();
    // lint: bounded(one fresh marker per role)
    for (uint32_t r : roles) {
      marker[r] = vocab_->FreshConcept("role_marker");
      extra.push_back(marker[r]);
    }
    level.space = MakeLevelSupport(Type{}, level.te, theta, f_->q_hat, extra);
    *out_space = level.space;
    if (level.space.arity() > limits_.max_support_bits) {
      hit_cap_ = true;
      return {};
    }

    Ucrpq q_mod = DropReachabilityAtoms(f_->q_hat, sigma_mod);
    std::vector<uint64_t> base = FilterCandidates(level, theta, q_mod);

    struct Member {
      uint64_t mask;
      uint32_t banned;
    };
    std::vector<Member> members;
    // lint: bounded(one pass over the enumerated base masks)
    for (uint64_t mask : base) {
      uint32_t banned = UINT32_MAX;
      bool exactly_one = true;
      // lint: bounded(linear in the role set)
      for (uint32_t r : roles) {
        std::size_t pos = level.space.PositionOf(marker[r]);
        if ((mask >> pos) & 1) {
          if (banned != UINT32_MAX) {
            exactly_one = false;
            break;
          }
          banned = r;
        }
      }
      if (!exactly_one || banned == UINT32_MAX) continue;
      if (!ZeroPromisesForOtherRoles(level, mask, banned)) continue;
      if (!BannedRoleResiduesHold(level, tbox, mask, banned)) continue;
      members.push_back({mask, banned});
    }

    auto next_role = [&](uint32_t r) {
      auto it = std::find(roles.begin(), roles.end(), r);
      ++it;
      return it == roles.end() ? roles.front() : *it;
    };

    std::vector<bool> alive(members.size(), true);
    bool changed = true;
    std::size_t sweeps = 0;
    while (changed) {
      ++stats_.fixpoint_iterations;
      // Guard trips must not surface the partially-eliminated (i.e.
      // over-approximating) member set — return empty, as in SolveSet.
      if (GuardCharge(limits_)) {
        hit_cap_ = true;
        return {};
      }
      if (++sweeps > 64) {
        hit_cap_ = true;
        break;
      }
      changed = false;
      // Component productivity, one recursive set per banned role.
      std::map<uint32_t, std::set<uint64_t>> productive;
      // lint: bounded(one recursive-set computation per role; the recursion polls at entry)
      for (uint32_t r : roles) {
        std::vector<uint64_t> theta_masks;
        // lint: bounded(linear scan over members)
        for (std::size_t j = 0; j < members.size(); ++j) {
          if (alive[j] && members[j].banned == r) theta_masks.push_back(members[j].mask);
        }
        if (theta_masks.empty()) continue;
        std::sort(theta_masks.begin(), theta_masks.end());
        NormalTBox component_tbox;
        // lint: bounded(linear in the TBox CIs)
        for (const auto& ci : tbox.Cis()) {
          if (ci.kind == NormalCi::Kind::kBoolean || ci.role.name_id() != r) {
            component_tbox.Add(ci);
          }
        }
        MaskTheta component_theta{&level.space, theta_masks};
        TypeSpace child_space({});
        std::vector<uint64_t> realizable =
            SolveSet(component_tbox, component_theta, sigma_mod, depth + 1,
                     &child_space);
        auto projected = ProjectSet(realizable, level.space, child_space);
        productive[r] = std::set<uint64_t>(projected.begin(), projected.end());
      }
      // lint: bounded(per-member elimination scan within the guarded sweep)
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (!alive[i]) continue;
        uint32_t banned = members[i].banned;
        if (productive[banned].find(members[i].mask) == productive[banned].end()) {
          alive[i] = false;
          changed = true;
          continue;
        }
        uint32_t succ = next_role(banned);
        std::vector<uint64_t> children;
        // lint: bounded(linear scan over members)
        for (std::size_t j = 0; j < members.size(); ++j) {
          if (alive[j] && members[j].banned == succ) children.push_back(members[j].mask);
        }
        std::vector<std::size_t> pairs;
        // lint: bounded(linear in the counted pairs)
        for (std::size_t p = 0; p < level.cv.pairs.size(); ++p) {
          if (level.cv.pairs[p].role.name_id() == banned) pairs.push_back(p);
        }
        if (!ConnectorExists(level, members[i].mask, children, q_mod, pairs)) {
          alive[i] = false;
          changed = true;
        }
      }
    }

    std::vector<uint64_t> result;
    // lint: bounded(linear scan over members)
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (alive[i]) result.push_back(members[i].mask);
    }
    std::sort(result.begin(), result.end());
    return result;
  }

 private:
  /// No-roles base case (B.1): single isolated nodes.
  std::vector<uint64_t> BaseCaseSet(const NormalTBox& tbox, const MaskTheta& theta,
                                    const Ucrpq& q_mod, TypeSpace* out_space) {
    TypeSpace space = MakeLevelSupport(Type{}, tbox, theta, f_->q_hat, {});
    *out_space = space;
    if (space.arity() > limits_.max_support_bits ||
        GuardCharge(limits_, space.mask_count())) {
      hit_cap_ = true;
      return {};
    }
    std::vector<uint64_t> out;
    Level level;
    level.space = space;
    // lint: bounded(the 2^arity enumeration is billed in bulk to the guard just above)
    for (uint64_t mask : EnumerateLocallyConsistentTypes(space, tbox)) {
      if (!RespectsTheta(level, mask, theta)) continue;
      if (HasAtLeastObligation(tbox, level, mask)) continue;
      Graph g = MaterializeNode(space, mask);
      if (!Matches(g, q_mod)) out.push_back(mask);
    }
    return out;
  }

  bool RespectsTheta(const Level& level, uint64_t mask, const MaskTheta& theta) {
    if (theta.space == nullptr) return true;
    auto positions = ProjectionPositions(*theta.space, level.space);
    uint64_t projected = Project(mask, positions);
    return std::binary_search(theta.masks.begin(), theta.masks.end(), projected);
  }

  bool HasAtLeastObligation(const NormalTBox& tbox, const Level& level,
                            uint64_t mask) {
    // lint: bounded(linear in the TBox CIs)
    for (const auto& ci : tbox.Cis()) {
      if (ci.kind != NormalCi::Kind::kAtLeast) continue;
      bool applicable = std::all_of(ci.lhs.begin(), ci.lhs.end(), [&](Literal l) {
        return level.MaskHasLiteral(mask, l);
      });
      if (applicable) return true;
    }
    return false;
  }

  /// Locally consistent, Θ-respecting masks whose single-node graph already
  /// refutes the component-level query (a node matching a one-variable
  /// disjunct can never appear in a countermodel).
  std::vector<uint64_t> FilterCandidates(const Level& level, const MaskTheta& theta,
                                         const Ucrpq& q_component) {
    stats_.types_enumerated += level.space.mask_count();
    stats_.max_support_bits = std::max(stats_.max_support_bits, level.space.arity());
    // Enumerating the level's type space is 2^arity work; charge it in bulk.
    if (GuardCharge(limits_, level.space.mask_count())) {
      hit_cap_ = true;
      return {};
    }
    std::vector<uint64_t> out;
    std::vector<std::size_t> positions;
    if (theta.space != nullptr) {
      positions = ProjectionPositions(*theta.space, level.space);
    }
    // lint: bounded(the 2^arity enumeration is billed in bulk to the guard just above)
    for (uint64_t mask : EnumerateLocallyConsistentTypes(level.space, level.te)) {
      if (theta.space != nullptr &&
          !std::binary_search(theta.masks.begin(), theta.masks.end(),
                              Project(mask, positions))) {
        continue;
      }
      Graph g = MaterializeNode(level.space, mask);
      if (Matches(g, q_component)) continue;
      out.push_back(mask);
    }
    return out;
  }

  std::vector<uint64_t> ProjectSet(const std::vector<uint64_t>& masks,
                                   const TypeSpace& parent, const TypeSpace& child) {
    if (child.arity() == 0) return {};
    auto positions = ProjectionPositions(parent, child);
    std::set<uint64_t> out;
    // lint: bounded(one projection per mask)
    for (uint64_t m : masks) out.insert(Project(m, positions));
    return std::vector<uint64_t>(out.begin(), out.end());
  }

  bool ZeroPromisesForOtherRoles(const Level& level, uint64_t mask, uint32_t banned) {
    // lint: bounded(linear in the counted pairs)
    for (std::size_t i = 0; i < level.cv.pairs.size(); ++i) {
      if (level.cv.pairs[i].role.name_id() != banned && level.Promise(mask, i) != 0) {
        return false;
      }
    }
    return true;
  }

  bool BannedRoleResiduesHold(const Level& level, const NormalTBox& tbox,
                              uint64_t mask, uint32_t banned) {
    // lint: bounded(linear in the TBox CIs)
    for (const auto& ci : tbox.Cis()) {
      if (ci.kind != NormalCi::Kind::kAtLeast && ci.kind != NormalCi::Kind::kAtMost) {
        continue;
      }
      if (ci.role.name_id() != banned) continue;
      bool applicable = std::all_of(ci.lhs.begin(), ci.lhs.end(), [&](Literal l) {
        return level.MaskHasLiteral(mask, l);
      });
      if (!applicable) continue;
      std::size_t pair = level.cv.PairIndex(ci.role, ci.rhs_lit);
      GQC_DCHECK(pair != CountingVocabulary::npos);
      uint32_t m = level.Promise(mask, pair);
      bool saturated = m == level.cv.big_n;
      if (ci.kind == NormalCi::Kind::kAtLeast) {
        if (m < ci.n && !(saturated && level.cv.big_n >= ci.n)) return false;
      } else {
        if (saturated || m > ci.n) return false;
      }
    }
    return true;
  }

 public:
  bool ConnectorExists(const Level& level, uint64_t sigma,
                       const std::vector<uint64_t>& child_masks, const Ucrpq& q_mod,
                       const std::vector<std::size_t>& relevant_pairs) {
    ++stats_.connector_searches;
    std::vector<uint32_t> needed;
    std::size_t total_needed = 0;
    // lint: bounded(linear in the relevant pairs)
    for (std::size_t p : relevant_pairs) {
      uint32_t m = level.Promise(sigma, p);
      needed.push_back(m);
      total_needed += m;
    }
    if (total_needed == 0) {
      Graph star = MaterializeNode(level.space, sigma);
      return !Matches(star, q_mod);
    }
    if (total_needed > limits_.max_connector_children) {
      hit_cap_ = true;
      return false;
    }

    std::set<uint32_t> role_set;
    // lint: bounded(linear in the relevant pairs)
    for (std::size_t p : relevant_pairs) {
      role_set.insert(level.cv.pairs[p].role.name_id());
    }
    std::vector<uint32_t> roles(role_set.begin(), role_set.end());

    struct ChildChoice {
      uint32_t role;
      uint64_t mask;
    };
    std::vector<ChildChoice> picks;
    std::size_t steps = 0;
    std::function<bool(std::size_t, std::size_t)> search =
        [&](std::size_t role_idx, std::size_t min_mask_idx) -> bool {
      if (++steps > limits_.max_search_steps || GuardCharge(limits_)) {
        hit_cap_ = true;
        return false;
      }
      if (role_idx == roles.size()) {
        Graph star = MaterializeNode(level.space, sigma);
        // lint: bounded(linear in picks)
        for (const ChildChoice& c : picks) {
          NodeId w = AddMaskNode(&star, level.space, c.mask);
          star.AddEdge(0, c.role, w);
        }
        return !Matches(star, q_mod);
      }
      uint32_t role = roles[role_idx];
      bool role_done = true;
      // lint: bounded(linear in the relevant pairs)
      for (std::size_t k = 0; k < relevant_pairs.size(); ++k) {
        if (level.cv.pairs[relevant_pairs[k]].role.name_id() == role &&
            needed[k] > 0) {
          role_done = false;
        }
      }
      if (role_done) return search(role_idx + 1, 0);

      // lint: bounded(each recursive search call polls the guard at entry)
      for (std::size_t m = min_mask_idx; m < child_masks.size(); ++m) {
        uint64_t child = child_masks[m];
        std::vector<std::size_t> hits;
        bool overshoot = false;
        // lint: bounded(linear in the relevant pairs)
        for (std::size_t k = 0; k < relevant_pairs.size(); ++k) {
          const CountedPair& pair = level.cv.pairs[relevant_pairs[k]];
          if (pair.role.name_id() != role) continue;
          if (level.MaskHasLiteral(child, pair.filler)) {
            if (needed[k] == 0) {
              overshoot = true;
              break;
            }
            hits.push_back(k);
          }
        }
        if (overshoot || hits.empty()) continue;
        // lint: bounded(linear in hits)
        for (std::size_t k : hits) --needed[k];
        picks.push_back({role, child});
        if (search(role_idx, m)) return true;
        picks.pop_back();
        // lint: bounded(linear in hits)
        for (std::size_t k : hits) ++needed[k];
      }
      return false;
    };
    return search(0, 0);
  }

  const SimpleFactorization* f_;
  Vocabulary* vocab_;
  EngineLimits limits_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public wrappers.
// ---------------------------------------------------------------------------

EngineAnswer AlcqSimpleEngine::TypeRealizable(const Type& tau, const NormalTBox& tbox) {
  hit_cap_ = false;
  NormalTBox prepared = ForallsToAtMost(tbox);
  std::vector<uint32_t> sigma0 = prepared.RoleIds();
  sigma0.push_back(vocab_->RoleId("#fresh"));
  return Solve(tau, prepared, {}, sigma0, 0);
}

AlcqSimpleEngine::RealizableSet AlcqSimpleEngine::RealizableTypes(
    const NormalTBox& tbox) {
  hit_cap_ = false;
  NormalTBox prepared = ForallsToAtMost(tbox);
  std::vector<uint32_t> sigma0 = prepared.RoleIds();
  sigma0.push_back(vocab_->RoleId("#fresh"));
  AlcqSimpleEngineImpl impl(f_, vocab_, limits_);
  MaskTheta unconstrained;
  RealizableSet out;
  out.masks = impl.SolveSet(prepared, unconstrained, sigma0, 0, &out.space);
  hit_cap_ = impl.hit_cap_;
  stats_ = impl.stats_;
  return out;
}

EngineAnswer AlcqSimpleEngine::Solve(const Type& tau, const NormalTBox& tbox,
                                     const std::vector<Type>& theta,
                                     const std::vector<uint32_t>& sigma0,
                                     std::size_t depth) {
  AlcqSimpleEngineImpl impl(f_, vocab_, limits_);
  // Encode tau's concepts into the support via theta of a trivial space; the
  // realizability check below uses MaskContains directly.
  MaskTheta unconstrained;
  std::vector<Type> all_theta = theta;
  // Theta as explicit types: convert to a mask theta over their own support.
  TypeSpace theta_space({});
  if (!theta.empty()) {
    std::vector<uint32_t> ids;
    // lint: bounded(literals of the theta types)
    for (const Type& t : theta) {
      // lint: bounded(literals of a single type)
      for (Literal l : t.Literals()) ids.push_back(l.concept_id());
    }
    theta_space = TypeSpace(std::move(ids));
    std::set<uint64_t> masks;
    // lint: bounded(one mask per theta type)
    for (const Type& t : theta) masks.insert(theta_space.MaskOf(t));
    unconstrained.space = &theta_space;
    unconstrained.masks.assign(masks.begin(), masks.end());
  }
  // Make sure tau's concepts are in the level support by adding them to a
  // widened tbox copy via a vacuous Boolean CI.
  NormalTBox widened = tbox;
  // lint: bounded(literals of a single type)
  for (Literal l : tau.Literals()) {
    NormalCi vac;
    vac.kind = NormalCi::Kind::kBoolean;
    vac.lhs = {l, l.Complemented()};  // unsatisfiable lhs: vacuously true CI
    widened.Add(std::move(vac));
  }
  TypeSpace space({});
  std::vector<uint64_t> realizable =
      impl.SolveSet(widened, unconstrained, sigma0, depth, &space);
  hit_cap_ = impl.hit_cap_;
  stats_ = impl.stats_;
  // lint: bounded(linear in the realizable masks)
  for (uint64_t mask : realizable) {
    if (space.MaskContains(mask, tau)) return EngineAnswer::kYes;
  }
  return hit_cap_ ? EngineAnswer::kUnknown : EngineAnswer::kNo;
}

}  // namespace gqc
