#include "src/entailment/alcq_simple.h"

#include <algorithm>
#include <bit>
#include <functional>

#include "src/dl/transforms.h"
#include "src/query/eval.h"
#include "src/util/bitset.h"
#include "src/util/flat_map.h"
#include "src/util/invariant.h"

namespace gqc {

namespace {

/// Θ given as maximal-type masks over a (parent) space. A mask over a child
/// space respects it iff its projection onto the parent support is listed.
/// An empty `space` means unconstrained.
struct MaskTheta {
  const TypeSpace* space = nullptr;
  std::vector<uint64_t> masks;  // sorted
};

/// Positions of `parent` support concepts inside `child` (child ⊇ parent).
std::vector<std::size_t> ProjectionPositions(const TypeSpace& parent,
                                             const TypeSpace& child) {
  std::vector<std::size_t> out;
  out.reserve(parent.arity());
  // lint: bounded(linear in the parent support)
  for (uint32_t id : parent.support()) {
    std::size_t pos = child.PositionOf(id);
    GQC_DCHECK(pos != TypeSpace::npos);
    out.push_back(pos);
  }
  return out;
}

uint64_t Project(uint64_t mask, const std::vector<std::size_t>& positions) {
  uint64_t out = 0;
  // lint: bounded(linear in the projection positions)
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if ((mask >> positions[i]) & 1) out |= uint64_t{1} << i;
  }
  return out;
}

TypeSpace MakeLevelSupport(const Type& tau, const NormalTBox& tbox,
                           const MaskTheta& theta, const Ucrpq& q_hat,
                           const std::vector<uint32_t>& extra) {
  std::vector<uint32_t> ids = tbox.ConceptIds();
  // lint: bounded(literals of a single type)
  for (Literal l : tau.Literals()) ids.push_back(l.concept_id());
  if (theta.space != nullptr) {
    const auto& sup = theta.space->support();
    ids.insert(ids.end(), sup.begin(), sup.end());
  }
  // lint: bounded(mentioned concepts of Q-hat, linear in query size)
  for (uint32_t id : q_hat.MentionedConcepts()) ids.push_back(id);
  ids.insert(ids.end(), extra.begin(), extra.end());
  return TypeSpace(std::move(ids));
}

/// Per-recursion-level bookkeeping: the type space Γ₀, the counting
/// vocabulary, the promise-split TBox, and the hot-path precomputation over
/// the space — per-pair label bits (so Promise is a handful of word ANDs
/// instead of per-label binary searches) and projection-keyed single-node
/// match memos for the level's component and connector queries.
struct Level {
  TypeSpace space{std::vector<uint32_t>{}};
  CountingVocabulary cv;
  NormalTBox te;

  struct PairInfo {
    uint32_t role_id = 0;
    /// label_bits[i] is the space bit of C_{i,r,D}, or 0 if out of support.
    std::vector<uint64_t> label_bits;
    /// OR of label_bits[1..]: a promise is nonzero iff a mask hits this.
    uint64_t nonzero_bits = 0;
    std::size_t filler_pos = TypeSpace::npos;
    bool filler_negative = false;
  };
  std::vector<PairInfo> pair_info;

  mutable SingleNodeMatchMemo filter_memo;     // the level's component query
  mutable SingleNodeMatchMemo connector_memo;  // the level's connector query

  /// Must run after `space` and `cv` are final.
  void PrecomputePairs() {
    pair_info.clear();
    pair_info.reserve(cv.pairs.size());
    // lint: bounded(linear in the counted pairs)
    for (const CountedPair& pair : cv.pairs) {
      PairInfo info;
      info.role_id = pair.role.name_id();
      info.label_bits.reserve(pair.labels.size());
      // lint: bounded(labels of one counted pair)
      for (std::size_t i = 0; i < pair.labels.size(); ++i) {
        std::size_t pos = space.PositionOf(pair.labels[i]);
        uint64_t bit = pos == TypeSpace::npos ? 0 : uint64_t{1} << pos;
        info.label_bits.push_back(bit);
        if (i > 0) info.nonzero_bits |= bit;
      }
      info.filler_pos = space.PositionOf(pair.filler.concept_id());
      info.filler_negative = pair.filler.is_negative();
      pair_info.push_back(std::move(info));
    }
  }

  /// Largest i such that sigma carries C_{i,r,D} (0 if none).
  uint32_t Promise(uint64_t sigma, std::size_t pair_idx) const {
    const PairInfo& info = pair_info[pair_idx];
    // lint: bounded(labels of one counted pair)
    for (std::size_t i = info.label_bits.size(); i-- > 1;) {
      if (sigma & info.label_bits[i]) return static_cast<uint32_t>(i);
    }
    return 0;
  }

  /// MaskHasLiteral(mask, pair.filler), with the position hoisted.
  bool FillerHolds(uint64_t mask, std::size_t pair_idx) const {
    const PairInfo& info = pair_info[pair_idx];
    if (info.filler_pos == TypeSpace::npos) return info.filler_negative;
    bool set = (mask >> info.filler_pos) & 1;
    return info.filler_negative ? !set : set;
  }
};

// ---------------------------------------------------------------------------
// Implementation class holding the recursion; the public engine forwards.
// ---------------------------------------------------------------------------

class AlcqSimpleEngineImpl {
 public:
  AlcqSimpleEngineImpl(const SimpleFactorization* f, Vocabulary* vocab,
                       const EngineLimits& limits)
      : f_(f), vocab_(vocab), limits_(limits) {}

  bool hit_cap_ = false;
  AlcqSimpleEngine::Stats stats_;

  /// Step A (Lemma 6.3). Returns the realizable distinguished masks over the
  /// level's own space, along with the space itself (via out parameters).
  std::vector<uint64_t> SolveSet(const NormalTBox& tbox, const MaskTheta& theta,
                                 const std::vector<uint32_t>& sigma0,
                                 std::size_t depth, TypeSpace* out_space) {
    if (depth > limits_.max_depth || GuardCharge(limits_)) {
      hit_cap_ = true;
      *out_space = TypeSpace({});
      return {};
    }
    ++stats_.recursive_calls;
    std::vector<uint32_t> roles = tbox.RoleIds();
    Ucrpq q_mod_sigma0 = DropReachabilityAtoms(f_->q_hat, sigma0);

    if (roles.empty()) {
      return BaseCaseSet(tbox, theta, q_mod_sigma0, out_space);
    }

    Level level;
    level.cv = MakeCountingVocabulary(tbox, vocab_);
    level.te = MakeTeNormal(tbox, level.cv);
    level.space =
        MakeLevelSupport(Type{}, level.te, theta, f_->q_hat, level.cv.AllLabelIds());
    *out_space = level.space;
    if (level.space.arity() > limits_.max_support_bits) {
      hit_cap_ = true;
      return {};
    }
    level.PrecomputePairs();

    Ucrpq q_mod_sigma_t = DropReachabilityAtoms(f_->q_hat, roles);
    level.filter_memo.Bind(level.space, &q_mod_sigma_t,
                           &stats_.single_node_match_queries,
                           &stats_.single_node_match_hits);
    level.connector_memo.Bind(level.space, &q_mod_sigma0,
                              &stats_.single_node_match_queries,
                              &stats_.single_node_match_hits);

    // Candidates get dense indices; the fixpoint's frontier and per-round
    // feasible/productive sets are bitsets over those indices, so the
    // frontier comparison and the feasible∩productive step are word-parallel.
    MaskIndex candidates(FilterCandidates(level, theta));
    const std::size_t n = candidates.size();

    std::vector<std::size_t> all_pairs(level.cv.pairs.size());
    // lint: bounded(index initialization, linear in the counted pairs)
    for (std::size_t i = 0; i < all_pairs.size(); ++i) all_pairs[i] = i;

    DynamicBitset psi(n);
    std::vector<uint64_t> psi_masks;  // masks of psi's set bits, ascending
    for (std::size_t iteration = 0; iteration < 64; ++iteration) {
      ++stats_.fixpoint_iterations;
      // Guard trips return the empty (under-approximating) set: a definite
      // kYes needs membership, so under-approximation plus hit_cap_ (which
      // turns kNo into kUnknown) can never yield a wrong definite answer.
      if (GuardCharge(limits_)) {
        hit_cap_ = true;
        return {};
      }
      // Connector-feasible candidates over the current psi.
      DynamicBitset feasible(n);
      std::vector<uint64_t> feasible_masks;
      // lint: bounded(candidates come from the guarded enumeration; ConnectorExists polls per step)
      for (std::size_t i = 0; i < n; ++i) {
        if (ConnectorExists(level, candidates.MaskAt(i), psi_masks,
                            q_mod_sigma0, all_pairs)) {
          feasible.Set(i);
          feasible_masks.push_back(candidates.MaskAt(i));
        }
      }
      if (feasible_masks.empty()) return {};
      // Productivity: one recursive set computation for all of them.
      MaskTheta component_theta{&level.space, std::move(feasible_masks)};
      TypeSpace child_space({});
      std::vector<uint64_t> realizable = SolveSetStepB(
          level.te, component_theta, roles, depth + 1, &child_space);
      // next = feasible ∩ (projection of the realizable set), as index bits.
      DynamicBitset next(n);
      if (child_space.arity() != 0) {
        auto positions = ProjectionPositions(level.space, child_space);
        // lint: bounded(one projection per realizable mask)
        for (uint64_t m : realizable) {
          std::size_t idx = candidates.IndexOf(Project(m, positions));
          if (idx != MaskIndex::npos && feasible.Test(idx)) next.Set(idx);
        }
      }
      if (next == psi) return psi_masks;
      psi = std::move(next);
      psi_masks.clear();
      // lint: bounded(set bits of the frontier)
      for (std::size_t i = psi.FindFirst(); i < n; i = psi.FindNext(i + 1)) {
        psi_masks.push_back(candidates.MaskAt(i));
      }
    }
    hit_cap_ = true;
    return psi_masks;
  }

  /// Step B (Lemma 6.5): role-alternating frames, greatest fixpoint.
  std::vector<uint64_t> SolveSetStepB(const NormalTBox& tbox, const MaskTheta& theta,
                                      const std::vector<uint32_t>& sigma_mod,
                                      std::size_t depth, TypeSpace* out_space) {
    if (depth > limits_.max_depth || GuardCharge(limits_)) {
      hit_cap_ = true;
      *out_space = TypeSpace({});
      return {};
    }
    std::vector<uint32_t> roles = tbox.RoleIds();
    if (roles.empty()) {
      return BaseCaseSet(tbox, theta, DropReachabilityAtoms(f_->q_hat, sigma_mod),
                         out_space);
    }

    Level level;
    level.cv = MakeCountingVocabulary(tbox, vocab_);
    level.te = MakeTeNormal(tbox, level.cv);
    std::vector<uint32_t> marker_ids(roles.size());
    std::vector<uint32_t> extra = level.cv.AllLabelIds();
    // lint: bounded(one fresh marker per role)
    for (std::size_t k = 0; k < roles.size(); ++k) {
      marker_ids[k] = vocab_->FreshConcept("role_marker");
      extra.push_back(marker_ids[k]);
    }
    level.space = MakeLevelSupport(Type{}, level.te, theta, f_->q_hat, extra);
    *out_space = level.space;
    if (level.space.arity() > limits_.max_support_bits) {
      hit_cap_ = true;
      return {};
    }
    level.PrecomputePairs();

    // Marker positions hoisted out of the member scan: screening a candidate
    // is one AND against `marker_all` plus a popcount, instead of a per-role
    // std::map lookup and PositionOf binary search.
    std::vector<std::size_t> marker_pos(roles.size());
    uint64_t marker_all = 0;
    // lint: bounded(one position per role marker)
    for (std::size_t k = 0; k < roles.size(); ++k) {
      std::size_t pos = level.space.PositionOf(marker_ids[k]);
      GQC_DCHECK(pos != TypeSpace::npos);
      marker_pos[k] = pos;
      marker_all |= uint64_t{1} << pos;
    }

    Ucrpq q_mod = DropReachabilityAtoms(f_->q_hat, sigma_mod);
    level.filter_memo.Bind(level.space, &q_mod,
                           &stats_.single_node_match_queries,
                           &stats_.single_node_match_hits);
    level.connector_memo.Bind(level.space, &q_mod,
                              &stats_.single_node_match_queries,
                              &stats_.single_node_match_hits);
    std::vector<uint64_t> base = FilterCandidates(level, theta);

    // Per-role eliminators, compiled once per level:
    //  - other_nonzero[k]: label bits whose presence means a nonzero promise
    //    for a pair over some role other than roles[k] (ZeroPromises test).
    //  - residues[k]: the at-least/at-most CIs over roles[k], with their lhs
    //    conjunctions compiled to word masks.
    //  - pairs_by_role[k]: counted-pair indices over roles[k] (the relevant
    //    pairs of a member's connector search).
    std::vector<uint64_t> other_nonzero(roles.size(), 0);
    std::vector<std::vector<std::size_t>> pairs_by_role(roles.size());
    // lint: bounded(roles times counted pairs, both linear in the TBox)
    for (std::size_t k = 0; k < roles.size(); ++k) {
      // lint: bounded(linear in the counted pairs)
      for (std::size_t p = 0; p < level.pair_info.size(); ++p) {
        if (level.pair_info[p].role_id != roles[k]) {
          other_nonzero[k] |= level.pair_info[p].nonzero_bits;
        } else {
          pairs_by_role[k].push_back(p);
        }
      }
    }
    struct ResidueCi {
      bool at_least = false;
      CompiledLiterals lhs;
      std::size_t pair = 0;
      uint32_t n = 0;
    };
    std::vector<std::vector<ResidueCi>> residues(roles.size());
    // lint: bounded(linear in the TBox CIs)
    for (const auto& ci : tbox.Cis()) {
      if (ci.kind != NormalCi::Kind::kAtLeast && ci.kind != NormalCi::Kind::kAtMost) {
        continue;
      }
      std::size_t k = RoleIndexOf(roles, ci.role.name_id());
      GQC_DCHECK(k != SIZE_MAX);
      std::size_t pair = level.cv.PairIndex(ci.role, ci.rhs_lit);
      GQC_DCHECK(pair != CountingVocabulary::npos);
      residues[k].push_back(
          {ci.kind == NormalCi::Kind::kAtLeast,
           CompiledLiterals(level.space, ci.lhs), pair, ci.n});
    }

    struct Member {
      uint64_t mask;
      uint32_t banned;  // index into `roles`
    };
    std::vector<Member> members;
    // lint: bounded(one pass over the enumerated base masks)
    for (uint64_t mask : base) {
      ++stats_.marker_word_tests;
      if (std::popcount(mask & marker_all) != 1) continue;
      uint32_t banned = 0;
      // lint: bounded(linear in the role set)
      for (std::size_t k = 0; k < roles.size(); ++k) {
        if ((mask >> marker_pos[k]) & 1) banned = static_cast<uint32_t>(k);
      }
      if ((mask & other_nonzero[banned]) != 0) continue;  // nonzero promise
      if (!ResiduesHold(level, residues[banned], mask)) continue;
      members.push_back({mask, banned});
    }

    // Members are an ascending subsequence of the base enumeration with
    // unique masks, so the alive/productive sets of the greatest fixpoint
    // are bitsets over member indices.
    std::vector<uint64_t> member_masks;
    member_masks.reserve(members.size());
    // lint: bounded(linear scan over members)
    for (const Member& m : members) member_masks.push_back(m.mask);
    MaskIndex member_index(std::move(member_masks));
    const std::size_t mcount = members.size();

    DynamicBitset alive(mcount);
    // lint: bounded(linear scan over members)
    for (std::size_t i = 0; i < mcount; ++i) alive.Set(i);
    bool changed = true;
    std::size_t sweeps = 0;
    while (changed) {
      ++stats_.fixpoint_iterations;
      // Guard trips must not surface the partially-eliminated (i.e.
      // over-approximating) member set — return empty, as in SolveSet.
      if (GuardCharge(limits_)) {
        hit_cap_ = true;
        return {};
      }
      if (++sweeps > 64) {
        hit_cap_ = true;
        break;
      }
      changed = false;
      // Component productivity, one recursive set per banned role.
      DynamicBitset productive(mcount);
      // lint: bounded(one recursive-set computation per role; the recursion polls at entry)
      for (std::size_t k = 0; k < roles.size(); ++k) {
        std::vector<uint64_t> theta_masks;
        // lint: bounded(linear scan over members)
        for (std::size_t j = 0; j < mcount; ++j) {
          if (alive.Test(j) && members[j].banned == k) {
            theta_masks.push_back(members[j].mask);
          }
        }
        if (theta_masks.empty()) continue;
        NormalTBox component_tbox;
        // lint: bounded(linear in the TBox CIs)
        for (const auto& ci : tbox.Cis()) {
          if (ci.kind == NormalCi::Kind::kBoolean || ci.role.name_id() != roles[k]) {
            component_tbox.Add(ci);
          }
        }
        MaskTheta component_theta{&level.space, std::move(theta_masks)};
        TypeSpace child_space({});
        std::vector<uint64_t> realizable =
            SolveSet(component_tbox, component_theta, sigma_mod, depth + 1,
                     &child_space);
        if (child_space.arity() == 0) continue;
        auto positions = ProjectionPositions(level.space, child_space);
        // lint: bounded(one projection per realizable mask)
        for (uint64_t m : realizable) {
          std::size_t idx = member_index.IndexOf(Project(m, positions));
          if (idx != MaskIndex::npos && members[idx].banned == k) {
            productive.Set(idx);
          }
        }
      }
      // lint: bounded(per-member elimination scan within the guarded sweep)
      for (std::size_t i = 0; i < mcount; ++i) {
        if (!alive.Test(i)) continue;
        if (!productive.Test(i)) {
          alive.Reset(i);
          changed = true;
          continue;
        }
        // Successor role in frame order: a modular increment over role
        // indices (banned roles are stored as indices into `roles`).
        ++stats_.next_role_lookups;
        uint32_t succ = (members[i].banned + 1) % roles.size();
        std::vector<uint64_t> children;
        // lint: bounded(linear scan over members)
        for (std::size_t j = 0; j < mcount; ++j) {
          if (alive.Test(j) && members[j].banned == succ) {
            children.push_back(members[j].mask);
          }
        }
        if (!ConnectorExists(level, members[i].mask, children, q_mod,
                             pairs_by_role[members[i].banned])) {
          alive.Reset(i);
          changed = true;
        }
      }
    }

    std::vector<uint64_t> result;
    // lint: bounded(set bits of the surviving members)
    for (std::size_t i = alive.FindFirst(); i < mcount; i = alive.FindNext(i + 1)) {
      result.push_back(members[i].mask);
    }
    return result;  // ascending: members follow the base enumeration order
  }

 private:
  static std::size_t RoleIndexOf(const std::vector<uint32_t>& roles, uint32_t r) {
    // The fixpoint's successor steps use the precomputed indices instead.
    // lint: bounded(linear in the role set, setup only)
    for (std::size_t k = 0; k < roles.size(); ++k) {
      if (roles[k] == r) return k;
    }
    return SIZE_MAX;
  }

  /// Counting residues of the banned role, with lhs applicability compiled
  /// to word masks (ResidueCi is local to SolveSetStepB, hence the template).
  template <typename ResidueList>
  bool ResiduesHold(const Level& level, const ResidueList& list, uint64_t mask) {
    // lint: bounded(linear in the banned role's counting CIs)
    for (const auto& rc : list) {
      if (!rc.lhs.Holds(mask)) continue;
      uint32_t m = level.Promise(mask, rc.pair);
      bool saturated = m == level.cv.big_n;
      if (rc.at_least) {
        if (m < rc.n && !(saturated && level.cv.big_n >= rc.n)) return false;
      } else {
        if (saturated || m > rc.n) return false;
      }
    }
    return true;
  }

  /// No-roles base case (B.1): single isolated nodes.
  std::vector<uint64_t> BaseCaseSet(const NormalTBox& tbox, const MaskTheta& theta,
                                    const Ucrpq& q_mod, TypeSpace* out_space) {
    TypeSpace space = MakeLevelSupport(Type{}, tbox, theta, f_->q_hat, {});
    *out_space = space;
    if (space.arity() > limits_.max_support_bits ||
        GuardCharge(limits_, space.mask_count())) {
      hit_cap_ = true;
      return {};
    }
    Level level;
    level.space = space;
    level.filter_memo.Bind(level.space, &q_mod,
                           &stats_.single_node_match_queries,
                           &stats_.single_node_match_hits);
    // Θ probe: project and look up in a flat hash set (one word-mix probe
    // per mask, versus a binary search over the theta masks).
    std::vector<std::size_t> positions;
    FlatSet<uint64_t> theta_set;
    if (theta.space != nullptr) {
      positions = ProjectionPositions(*theta.space, level.space);
      theta_set.Reserve(theta.masks.size());
      // lint: bounded(linear in the theta masks)
      for (uint64_t m : theta.masks) theta_set.Insert(m);
    }
    // At-least applicability compiled to word masks, hoisted out of the scan.
    std::vector<CompiledLiterals> at_least_lhs;
    // lint: bounded(linear in the TBox CIs)
    for (const auto& ci : tbox.Cis()) {
      if (ci.kind == NormalCi::Kind::kAtLeast) {
        at_least_lhs.emplace_back(level.space, ci.lhs);
      }
    }
    std::vector<uint64_t> out;
    // lint: bounded(the 2^arity enumeration is billed in bulk to the guard just above)
    for (uint64_t mask : EnumerateLocallyConsistentTypes(level.space, tbox)) {
      if (theta.space != nullptr && !theta_set.Contains(Project(mask, positions))) {
        continue;
      }
      bool obligated = false;
      // lint: bounded(linear in the at-least CIs)
      for (const CompiledLiterals& lhs : at_least_lhs) {
        if (lhs.Holds(mask)) {
          obligated = true;
          break;
        }
      }
      if (obligated) continue;
      if (!level.filter_memo.Matches(mask)) out.push_back(mask);
    }
    return out;
  }

  /// Locally consistent, Θ-respecting masks whose single-node graph already
  /// refutes the component-level query (a node matching a one-variable
  /// disjunct can never appear in a countermodel). Uses the level's bound
  /// filter_memo; the result is ascending and can seed a MaskIndex.
  std::vector<uint64_t> FilterCandidates(Level& level, const MaskTheta& theta) {
    stats_.types_enumerated += level.space.mask_count();
    stats_.max_support_bits = std::max(stats_.max_support_bits, level.space.arity());
    // Enumerating the level's type space is 2^arity work; charge it in bulk.
    if (GuardCharge(limits_, level.space.mask_count())) {
      hit_cap_ = true;
      return {};
    }
    std::vector<uint64_t> out;
    std::vector<std::size_t> positions;
    FlatSet<uint64_t> theta_set;
    if (theta.space != nullptr) {
      positions = ProjectionPositions(*theta.space, level.space);
      theta_set.Reserve(theta.masks.size());
      // lint: bounded(linear in the theta masks)
      for (uint64_t m : theta.masks) theta_set.Insert(m);
    }
    // lint: bounded(the 2^arity enumeration is billed in bulk to the guard just above)
    for (uint64_t mask : EnumerateLocallyConsistentTypes(level.space, level.te)) {
      if (theta.space != nullptr && !theta_set.Contains(Project(mask, positions))) {
        continue;
      }
      if (level.filter_memo.Matches(mask)) continue;
      out.push_back(mask);
    }
    return out;
  }

 public:
  bool ConnectorExists(const Level& level, uint64_t sigma,
                       const std::vector<uint64_t>& child_masks, const Ucrpq& q_mod,
                       const std::vector<std::size_t>& relevant_pairs) {
    ++stats_.connector_searches;
    std::vector<uint32_t> needed;
    std::size_t total_needed = 0;
    // lint: bounded(linear in the relevant pairs)
    for (std::size_t p : relevant_pairs) {
      uint32_t m = level.Promise(sigma, p);
      needed.push_back(m);
      total_needed += m;
    }
    if (total_needed == 0) {
      GQC_DCHECK(level.connector_memo.BoundTo(&q_mod));
      return !level.connector_memo.Matches(sigma);
    }
    if (total_needed > limits_.max_connector_children) {
      hit_cap_ = true;
      return false;
    }

    std::vector<uint32_t> roles;
    // lint: bounded(linear in the relevant pairs)
    for (std::size_t p : relevant_pairs) {
      roles.push_back(level.pair_info[p].role_id);
    }
    std::sort(roles.begin(), roles.end());
    roles.erase(std::unique(roles.begin(), roles.end()), roles.end());

    struct ChildChoice {
      uint32_t role;
      uint64_t mask;
    };
    std::vector<ChildChoice> picks;
    std::size_t steps = 0;
    std::function<bool(std::size_t, std::size_t)> search =
        [&](std::size_t role_idx, std::size_t min_mask_idx) -> bool {
      if (++steps > limits_.max_search_steps || GuardCharge(limits_)) {
        hit_cap_ = true;
        return false;
      }
      if (role_idx == roles.size()) {
        Graph star = MaterializeNode(level.space, sigma);
        // lint: bounded(linear in picks)
        for (const ChildChoice& c : picks) {
          NodeId w = AddMaskNode(&star, level.space, c.mask);
          star.AddEdge(0, c.role, w);
        }
        return !Matches(star, q_mod);
      }
      uint32_t role = roles[role_idx];
      bool role_done = true;
      // lint: bounded(linear in the relevant pairs)
      for (std::size_t k = 0; k < relevant_pairs.size(); ++k) {
        if (level.pair_info[relevant_pairs[k]].role_id == role && needed[k] > 0) {
          role_done = false;
        }
      }
      if (role_done) return search(role_idx + 1, 0);

      // lint: bounded(each recursive search call polls the guard at entry)
      for (std::size_t m = min_mask_idx; m < child_masks.size(); ++m) {
        uint64_t child = child_masks[m];
        std::vector<std::size_t> hits;
        bool overshoot = false;
        // lint: bounded(linear in the relevant pairs)
        for (std::size_t k = 0; k < relevant_pairs.size(); ++k) {
          if (level.pair_info[relevant_pairs[k]].role_id != role) continue;
          if (level.FillerHolds(child, relevant_pairs[k])) {
            if (needed[k] == 0) {
              overshoot = true;
              break;
            }
            hits.push_back(k);
          }
        }
        if (overshoot || hits.empty()) continue;
        // lint: bounded(linear in hits)
        for (std::size_t k : hits) --needed[k];
        picks.push_back({role, child});
        if (search(role_idx, m)) return true;
        picks.pop_back();
        // lint: bounded(linear in hits)
        for (std::size_t k : hits) ++needed[k];
      }
      return false;
    };
    return search(0, 0);
  }

  const SimpleFactorization* f_;
  Vocabulary* vocab_;
  EngineLimits limits_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public wrappers.
// ---------------------------------------------------------------------------

EngineAnswer AlcqSimpleEngine::TypeRealizable(const Type& tau, const NormalTBox& tbox) {
  hit_cap_ = false;
  NormalTBox prepared = ForallsToAtMost(tbox);
  std::vector<uint32_t> sigma0 = prepared.RoleIds();
  sigma0.push_back(vocab_->RoleId("#fresh"));
  return Solve(tau, prepared, {}, sigma0, 0);
}

AlcqSimpleEngine::RealizableSet AlcqSimpleEngine::RealizableTypes(
    const NormalTBox& tbox) {
  hit_cap_ = false;
  NormalTBox prepared = ForallsToAtMost(tbox);
  std::vector<uint32_t> sigma0 = prepared.RoleIds();
  sigma0.push_back(vocab_->RoleId("#fresh"));
  AlcqSimpleEngineImpl impl(f_, vocab_, limits_);
  MaskTheta unconstrained;
  RealizableSet out;
  out.masks = impl.SolveSet(prepared, unconstrained, sigma0, 0, &out.space);
  hit_cap_ = impl.hit_cap_;
  stats_ = impl.stats_;
  return out;
}

EngineAnswer AlcqSimpleEngine::Solve(const Type& tau, const NormalTBox& tbox,
                                     const std::vector<Type>& theta,
                                     const std::vector<uint32_t>& sigma0,
                                     std::size_t depth) {
  AlcqSimpleEngineImpl impl(f_, vocab_, limits_);
  // Encode tau's concepts into the support via theta of a trivial space; the
  // realizability check below uses MaskContains directly.
  MaskTheta unconstrained;
  std::vector<Type> all_theta = theta;
  // Theta as explicit types: convert to a mask theta over their own support.
  TypeSpace theta_space({});
  if (!theta.empty()) {
    std::vector<uint32_t> ids;
    // lint: bounded(literals of the theta types)
    for (const Type& t : theta) {
      // lint: bounded(literals of a single type)
      for (Literal l : t.Literals()) ids.push_back(l.concept_id());
    }
    theta_space = TypeSpace(std::move(ids));
    std::vector<uint64_t> masks;
    // lint: bounded(one mask per theta type)
    for (const Type& t : theta) masks.push_back(theta_space.MaskOf(t));
    std::sort(masks.begin(), masks.end());
    masks.erase(std::unique(masks.begin(), masks.end()), masks.end());
    unconstrained.space = &theta_space;
    unconstrained.masks = std::move(masks);
  }
  // Make sure tau's concepts are in the level support by adding them to a
  // widened tbox copy via a vacuous Boolean CI.
  NormalTBox widened = tbox;
  // lint: bounded(literals of a single type)
  for (Literal l : tau.Literals()) {
    NormalCi vac;
    vac.kind = NormalCi::Kind::kBoolean;
    vac.lhs = {l, l.Complemented()};  // unsatisfiable lhs: vacuously true CI
    widened.Add(std::move(vac));
  }
  TypeSpace space({});
  std::vector<uint64_t> realizable =
      impl.SolveSet(widened, unconstrained, sigma0, depth, &space);
  hit_cap_ = impl.hit_cap_;
  stats_ = impl.stats_;
  // lint: bounded(linear in the realizable masks)
  for (uint64_t mask : realizable) {
    if (space.MaskContains(mask, tau)) return EngineAnswer::kYes;
  }
  return hit_cap_ ? EngineAnswer::kUnknown : EngineAnswer::kNo;
}

}  // namespace gqc
