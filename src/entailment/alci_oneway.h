#ifndef GQC_ENTAILMENT_ALCI_ONEWAY_H_
#define GQC_ENTAILMENT_ALCI_ONEWAY_H_

#include "src/entailment/common.h"
#include "src/query/factorize.h"

namespace gqc {

/// The §5 engine: finite entailment of one-way UCRPQs in ALCI
/// (Theorem 5.1), in type-realization form. Countermodels decompose into
/// *alternating frames*: components where every node is forward (marker C→)
/// or every node is backward (C← = ¬C→), connected by directed connectors
/// whose edges run from backward to forward nodes. Forward components reason
/// with T→ (inverse participation dropped, inverse foralls flipped) and get
/// their backward witnesses from connectors, and symmetrically.
///
/// The greatest fixpoint over maximal types (App. A.2) is implemented
/// exactly; per the DESIGN.md substitution, component productivity uses the
/// bounded witness search instead of the cited [28] automata construction,
/// so "no" answers degrade to kUnknown when a budget is hit.
///
/// Scope: the factorization this engine consumes is exact for *simple*
/// queries; arbitrary one-way UCRPQs fall back to bounded search in the
/// public API (src/entailment/entailment.h).
class AlciOnewayEngine {
 public:
  AlciOnewayEngine(const SimpleFactorization* factorization, Vocabulary* vocab,
                   const EngineLimits& limits = {})
      : f_(factorization), vocab_(vocab), limits_(limits) {}

  /// Is `tau` realized in a finite graph satisfying `tbox` (normalized ALCI:
  /// Boolean, forall, and exists CIs; no counting) and refuting the query?
  EngineAnswer TypeRealizable(const Type& tau, const NormalTBox& tbox);

  /// All realizable maximal types at once (Tp(T, Q̂), §3).
  struct RealizableSet {
    TypeSpace space{std::vector<uint32_t>{}};
    std::vector<uint64_t> masks;
  };
  RealizableSet RealizableTypes(const NormalTBox& tbox);

  bool hit_cap() const { return hit_cap_; }

 private:
  const SimpleFactorization* f_;
  Vocabulary* vocab_;
  EngineLimits limits_;
  bool hit_cap_ = false;
};

}  // namespace gqc

#endif  // GQC_ENTAILMENT_ALCI_ONEWAY_H_
