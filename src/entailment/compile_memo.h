#ifndef GQC_ENTAILMENT_COMPILE_MEMO_H_
#define GQC_ENTAILMENT_COMPILE_MEMO_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/lifecycle.h"
#include "src/dl/tbox.h"
#include "src/dl/types.h"
#include "src/entailment/common.h"
#include "src/graph/type.h"
#include "src/util/fingerprint.h"
#include "src/util/flat_map.h"
#include "src/util/sync.h"

namespace gqc {

/// Memoizes the per-solve word-mask compilations (CompiledBooleanCis,
/// CompiledTheta) that every FindWitness / RealizableNoRoles call used to
/// rebuild from scratch. One containment solve calls FindWitness once per
/// (expansion × seed) with the SAME (TypeSpace, NormalTBox) — on the
/// microsecond-scale rows of bench_containment the recompilation was a
/// visible fraction of the solve (ROADMAP "few-µs per-solve compile
/// overhead"). The memo turns repeats into one FlatMap probe.
///
/// Keys are exact id-level serializations of (support, TBox CIs) and
/// (support, Θ types) carried as FpKeys — never hashes alone — so the cache
/// key discipline of the shared caches (exact canonical serializations,
/// fingerprint-then-verify) holds here too. Compiled artifacts are pure
/// functions of their keys, so memoization can never change a verdict.
///
/// Thread-safe: probes are mutex-protected (kLockRankCompileMemo — above
/// every other cache rank, so a probe is legal no matter which cache lock a
/// caller's caller holds), values are computed outside the lock, first
/// insert wins. Hit/miss counters are internal atomics because the probing
/// call sites (EngineLimits consumers) carry no PipelineStats; the owner
/// exports them.
class CompiledScopeMemo {
 public:
  /// The compiled Boolean CIs of `tbox` over `space`, memoized.
  std::shared_ptr<const CompiledBooleanCis> GetBooleanCis(
      const TypeSpace& space, const NormalTBox& tbox);

  /// CompiledTheta(space, theta), memoized.
  std::shared_ptr<const CompiledTheta> GetTheta(const TypeSpace& space,
                                                const std::vector<Type>& theta);

  /// Lifecycle: bound the memo (0 = unbounded); over-budget inserts evict
  /// lowest retain-score entries (recency × recompute-cost).
  void SetBudget(const CacheBudget& budget);
  /// Drops ceil(size * pressure) lowest-scoring entries; returns the count.
  std::size_t Evict(double pressure);
  void Clear();

  std::size_t size() const;
  std::size_t retained_bytes() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t EnforceBudgetLocked() GQC_REQUIRES(mu_);

  mutable Mutex mu_{kLockRankCompileMemo, "compile-memo"};
  CacheBudget budget_ GQC_GUARDED_BY(mu_);
  uint64_t tick_ GQC_GUARDED_BY(mu_) = 0;
  FlatMap<FpKey, Retained<std::shared_ptr<const CompiledBooleanCis>>, FpKeyHash>
      boolean_ GQC_GUARDED_BY(mu_);
  FlatMap<FpKey, Retained<std::shared_ptr<const CompiledTheta>>, FpKeyHash>
      theta_ GQC_GUARDED_BY(mu_);
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace gqc

#endif  // GQC_ENTAILMENT_COMPILE_MEMO_H_
