#include "src/dl/validate.h"

#include <string>

namespace gqc {
namespace {

const char* KindName(NormalCi::Kind k) {
  switch (k) {
    case NormalCi::Kind::kBoolean: return "boolean";
    case NormalCi::Kind::kForall: return "forall";
    case NormalCi::Kind::kAtLeast: return "at-least";
    case NormalCi::Kind::kAtMost: return "at-most";
  }
  return "?";
}

}  // namespace

AuditResult ValidateNormalCi(const NormalCi& ci) {
  switch (ci.kind) {
    case NormalCi::Kind::kBoolean:
      if (ci.n != 0) {
        return AuditViolation(
            "boolean CI carries a number restriction (n = " +
            std::to_string(ci.n) + "): not a §2 normal form");
      }
      break;
    case NormalCi::Kind::kForall:
      if (!ci.rhs.empty()) {
        return AuditViolation("forall CI carries a literal disjunction rhs");
      }
      if (ci.n != 0) {
        return AuditViolation("forall CI carries a number restriction (n = " +
                              std::to_string(ci.n) + ")");
      }
      break;
    case NormalCi::Kind::kAtLeast:
      if (!ci.rhs.empty()) {
        return AuditViolation("at-least CI carries a literal disjunction rhs");
      }
      if (ci.n < 1) {
        return AuditViolation(
            "at-least CI has n = 0: ∃^{≥0} is trivially true and must not "
            "survive normalization");
      }
      break;
    case NormalCi::Kind::kAtMost:
      if (!ci.rhs.empty()) {
        return AuditViolation("at-most CI carries a literal disjunction rhs");
      }
      break;
    default:
      return AuditViolation("CI kind " +
                            std::to_string(static_cast<int>(ci.kind)) +
                            " is not one of the four allowed axiom forms");
  }
  return std::nullopt;
}

AuditResult ValidateNormalTBox(const NormalTBox& tbox) {
  for (std::size_t i = 0; i < tbox.Cis().size(); ++i) {
    if (auto v = ValidateNormalCi(tbox.Cis()[i])) {
      return AuditViolation("CI #" + std::to_string(i) + " (" +
                            KindName(tbox.Cis()[i].kind) + "): " + *v);
    }
  }
  return std::nullopt;
}

AuditResult ValidateNormalTBox(const NormalTBox& tbox,
                               const Vocabulary& vocab) {
  if (auto v = ValidateNormalTBox(tbox)) return v;
  for (std::size_t i = 0; i < tbox.Cis().size(); ++i) {
    const NormalCi& ci = tbox.Cis()[i];
    for (Literal l : ci.lhs) {
      if (l.concept_id() >= vocab.concept_count()) {
        return AuditViolation("CI #" + std::to_string(i) +
                              " lhs literal uses un-interned concept id " +
                              std::to_string(l.concept_id()));
      }
    }
    for (Literal l : ci.rhs) {
      if (l.concept_id() >= vocab.concept_count()) {
        return AuditViolation("CI #" + std::to_string(i) +
                              " rhs literal uses un-interned concept id " +
                              std::to_string(l.concept_id()));
      }
    }
    if (ci.kind != NormalCi::Kind::kBoolean) {
      if (ci.rhs_lit.concept_id() >= vocab.concept_count()) {
        return AuditViolation("CI #" + std::to_string(i) +
                              " restriction literal uses un-interned concept "
                              "id " +
                              std::to_string(ci.rhs_lit.concept_id()));
      }
      if (ci.role.name_id() >= vocab.role_count()) {
        return AuditViolation("CI #" + std::to_string(i) +
                              " restriction uses un-interned role id " +
                              std::to_string(ci.role.name_id()));
      }
    }
  }
  return std::nullopt;
}

}  // namespace gqc
