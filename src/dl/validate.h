#ifndef GQC_DL_VALIDATE_H_
#define GQC_DL_VALIDATE_H_

#include "src/dl/tbox.h"
#include "src/util/invariant.h"

namespace gqc {

/// Shape audit of one normal-form concept inclusion (§2 normal forms, tbox.h):
/// only the four allowed axiom forms, with unused fields at their defaults —
///   kBoolean  uses lhs/rhs only (n stays 0),
///   kForall   uses lhs/role/rhs_lit (rhs empty, n stays 0),
///   kAtLeast  uses lhs/role/rhs_lit/n with n >= 1 (rhs empty),
///   kAtMost   uses lhs/role/rhs_lit/n (rhs empty).
AuditResult ValidateNormalCi(const NormalCi& ci);

/// Post-`Normalize` audit: every CI passes ValidateNormalCi. A TBox that
/// fails this escaped normalization (or was corrupted after), and no
/// reasoning engine may trust it.
AuditResult ValidateNormalTBox(const NormalTBox& tbox);

/// ValidateNormalTBox plus vocabulary bounds: every concept / role id
/// mentioned anywhere is interned.
AuditResult ValidateNormalTBox(const NormalTBox& tbox, const Vocabulary& vocab);

}  // namespace gqc

#endif  // GQC_DL_VALIDATE_H_
