#include "src/dl/transforms.h"

#include <algorithm>
#include <set>

#include "src/util/invariant.h"

namespace gqc {

NormalTBox DropParticipationConstraints(const NormalTBox& t) {
  NormalTBox out;
  for (const auto& ci : t.Cis()) {
    if (ci.kind != NormalCi::Kind::kAtLeast) out.Add(ci);
  }
  return out;
}

namespace {

NormalCi FlipForall(const NormalCi& ci) {
  // l ⊑ ∀r.l'  ≡  ¬l' ⊑ ∀r⁻.¬l.
  // The Normalize() pass always emits restrictions with exactly one literal
  // on the left (a ⊤ left-hand side gets a defined name), so the flip stays
  // within the normal form.
  GQC_DCHECK(ci.lhs.size() == 1 && "flip requires a single-literal lhs");
  NormalCi flipped;
  flipped.kind = NormalCi::Kind::kForall;
  flipped.lhs = {ci.rhs_lit.Complemented()};
  flipped.role = ci.role.Reversed();
  flipped.rhs_lit = ci.lhs[0].Complemented();
  return flipped;
}

NormalTBox DirectionalRestriction(const NormalTBox& t, bool keep_forward) {
  NormalTBox out;
  for (const auto& ci : t.Cis()) {
    switch (ci.kind) {
      case NormalCi::Kind::kBoolean:
        out.Add(ci);
        break;
      case NormalCi::Kind::kAtLeast:
        // Participation constraints over the wrong direction are dropped
        // (their witnesses are provided by the other side of the frame).
        if (ci.role.is_inverse() != keep_forward) out.Add(ci);
        break;
      case NormalCi::Kind::kForall:
        // Universal restrictions are kept, flipping those over roles of the
        // wrong direction to their contrapositive.
        if (ci.role.is_inverse() != keep_forward) {
          out.Add(ci);
        } else {
          out.Add(FlipForall(ci));
        }
        break;
      case NormalCi::Kind::kAtMost:
        GQC_DCHECK(false && "T→/T← are defined for ALCI TBoxes (no counting)");
        break;
    }
  }
  return out;
}

}  // namespace

NormalTBox ForwardRestriction(const NormalTBox& t) {
  return DirectionalRestriction(t, /*keep_forward=*/true);
}

NormalTBox BackwardRestriction(const NormalTBox& t) {
  return DirectionalRestriction(t, /*keep_forward=*/false);
}

NormalTBox ForallsToAtMost(const NormalTBox& t) {
  NormalTBox out;
  for (const auto& ci : t.Cis()) {
    if (ci.kind == NormalCi::Kind::kForall) {
      NormalCi atmost;
      atmost.kind = NormalCi::Kind::kAtMost;
      atmost.lhs = ci.lhs;
      atmost.role = ci.role;
      atmost.n = 0;
      atmost.rhs_lit = ci.rhs_lit.Complemented();
      out.Add(std::move(atmost));
    } else {
      out.Add(ci);
    }
  }
  return out;
}

std::size_t CountingVocabulary::PairIndex(Role role, Literal filler) const {
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].role == role && pairs[i].filler == filler) return i;
  }
  return npos;
}

std::vector<uint32_t> CountingVocabulary::AllLabelIds() const {
  std::vector<uint32_t> out;
  for (const auto& p : pairs) {
    out.insert(out.end(), p.labels.begin(), p.labels.end());
  }
  return out;
}

CountingVocabulary MakeCountingVocabulary(const NormalTBox& t, Vocabulary* vocab) {
  CountingVocabulary cv;
  cv.big_n = t.MaxNumber() + 1;
  std::set<std::pair<uint32_t, uint32_t>> seen;  // (role code, literal code)
  for (const auto& ci : t.Cis()) {
    if (ci.kind != NormalCi::Kind::kAtLeast && ci.kind != NormalCi::Kind::kAtMost) {
      continue;
    }
    if (!seen.emplace(ci.role.code(), ci.rhs_lit.code()).second) continue;
    CountedPair pair;
    pair.role = ci.role;
    pair.filler = ci.rhs_lit;
    for (uint32_t i = 0; i <= cv.big_n; ++i) {
      pair.labels.push_back(vocab->FreshConcept("cnt"));
    }
    cv.pairs.push_back(std::move(pair));
  }
  return cv;
}

NormalTBox MakeTn(const CountingVocabulary& cv) {
  NormalTBox out;
  for (const auto& pair : cv.pairs) {
    // ⊤ ⊑ C_0.
    NormalCi base;
    base.kind = NormalCi::Kind::kBoolean;
    base.rhs = {Literal::Positive(pair.labels[0])};
    out.Add(std::move(base));
    for (uint32_t i = 1; i < pair.labels.size(); ++i) {
      NormalCi lower;
      lower.kind = NormalCi::Kind::kAtLeast;
      lower.lhs = {Literal::Positive(pair.labels[i])};
      lower.role = pair.role;
      lower.n = i;
      lower.rhs_lit = pair.filler;
      out.Add(std::move(lower));

      NormalCi upper;
      upper.kind = NormalCi::Kind::kAtMost;
      upper.lhs = {Literal::Negative(pair.labels[i])};
      upper.role = pair.role;
      upper.n = i - 1;
      upper.rhs_lit = pair.filler;
      out.Add(std::move(upper));
    }
  }
  return out;
}

namespace {

ConceptPtr LiteralConcept(Literal l) { return ConceptNode::FromLiteral(l); }

ConceptPtr LhsConcept(const NormalCi& ci) {
  std::vector<ConceptPtr> parts;
  for (Literal l : ci.lhs) parts.push_back(LiteralConcept(l));
  return ConceptNode::And(std::move(parts));
}

}  // namespace

TBox MakeTe(const NormalTBox& t, const CountingVocabulary& cv) {
  TBox out;
  for (const auto& ci : t.Cis()) {
    switch (ci.kind) {
      case NormalCi::Kind::kBoolean: {
        std::vector<ConceptPtr> lhs, rhs;
        for (Literal l : ci.lhs) lhs.push_back(LiteralConcept(l));
        for (Literal l : ci.rhs) rhs.push_back(LiteralConcept(l));
        out.Add(ConceptNode::And(std::move(lhs)), ConceptNode::Or(std::move(rhs)));
        break;
      }
      case NormalCi::Kind::kForall:
        GQC_DCHECK(false && "run ForallsToAtMost before MakeTe");
        break;
      case NormalCi::Kind::kAtLeast: {
        std::size_t idx = cv.PairIndex(ci.role, ci.rhs_lit);
        GQC_DCHECK(idx != CountingVocabulary::npos);
        const CountedPair& pair = cv.pairs[idx];
        std::vector<ConceptPtr> options;
        for (uint32_t i = 0; i < pair.labels.size(); ++i) {
          ConceptPtr label = ConceptNode::Name(pair.labels[i]);
          if (i >= ci.n) {
            options.push_back(label);  // the connector alone provides ≥ n
          } else {
            options.push_back(ConceptNode::And(
                {label, ConceptNode::AtLeast(ci.n - i, ci.role,
                                             LiteralConcept(ci.rhs_lit))}));
          }
        }
        out.Add(LhsConcept(ci), ConceptNode::Or(std::move(options)));
        break;
      }
      case NormalCi::Kind::kAtMost: {
        std::size_t idx = cv.PairIndex(ci.role, ci.rhs_lit);
        GQC_DCHECK(idx != CountingVocabulary::npos);
        const CountedPair& pair = cv.pairs[idx];
        std::vector<ConceptPtr> conjuncts;
        for (uint32_t i = 0; i < pair.labels.size(); ++i) {
          ConceptPtr not_label = ConceptNode::Not(ConceptNode::Name(pair.labels[i]));
          if (i > ci.n) {
            conjuncts.push_back(not_label);  // connector count already exceeds n
          } else {
            conjuncts.push_back(ConceptNode::Or(
                {not_label, ConceptNode::AtMost(ci.n - i, ci.role,
                                                LiteralConcept(ci.rhs_lit))}));
          }
        }
        out.Add(LhsConcept(ci), ConceptNode::And(std::move(conjuncts)));
        break;
      }
    }
  }
  return out;
}

NormalTBox CountingMonotonicity(const CountingVocabulary& cv) {
  NormalTBox out;
  for (const auto& pair : cv.pairs) {
    for (std::size_t i = 0; i + 1 < pair.labels.size(); ++i) {
      NormalCi mono;
      mono.kind = NormalCi::Kind::kBoolean;
      mono.lhs = {Literal::Positive(pair.labels[i + 1])};
      mono.rhs = {Literal::Positive(pair.labels[i])};
      out.Add(std::move(mono));
    }
    // C_0 is unconditionally true.
    NormalCi base;
    base.kind = NormalCi::Kind::kBoolean;
    base.rhs = {Literal::Positive(pair.labels[0])};
    out.Add(std::move(base));
  }
  return out;
}

NormalTBox MakeTeNormal(const NormalTBox& t, const CountingVocabulary& cv) {
  NormalTBox out = CountingMonotonicity(cv);
  const uint32_t big_n = cv.big_n;
  for (const auto& ci : t.Cis()) {
    switch (ci.kind) {
      case NormalCi::Kind::kBoolean:
        out.Add(ci);
        break;
      case NormalCi::Kind::kForall:
        GQC_DCHECK(false && "run ForallsToAtMost before MakeTeNormal");
        break;
      case NormalCi::Kind::kAtLeast: {
        std::size_t idx = cv.PairIndex(ci.role, ci.rhs_lit);
        GQC_DCHECK(idx != CountingVocabulary::npos);
        const CountedPair& pair = cv.pairs[idx];
        for (uint32_t i = 0; i < ci.n; ++i) {
          NormalCi split = ci;
          split.lhs.push_back(Literal::Positive(pair.labels[i]));
          if (i + 1 <= big_n) {
            split.lhs.push_back(Literal::Negative(pair.labels[i + 1]));
          }
          split.n = ci.n - i;
          out.Add(std::move(split));
        }
        // Promise >= n: nothing required in the component (i >= n cases).
        break;
      }
      case NormalCi::Kind::kAtMost: {
        std::size_t idx = cv.PairIndex(ci.role, ci.rhs_lit);
        GQC_DCHECK(idx != CountingVocabulary::npos);
        const CountedPair& pair = cv.pairs[idx];
        for (uint32_t i = 0; i <= ci.n && i <= big_n; ++i) {
          NormalCi split = ci;
          split.lhs.push_back(Literal::Positive(pair.labels[i]));
          if (i + 1 <= big_n) {
            split.lhs.push_back(Literal::Negative(pair.labels[i + 1]));
          }
          split.n = ci.n - i;
          out.Add(std::move(split));
        }
        if (ci.n + 1 <= big_n) {
          NormalCi forbid;
          forbid.kind = NormalCi::Kind::kBoolean;
          forbid.lhs = ci.lhs;
          forbid.lhs.push_back(Literal::Positive(pair.labels[ci.n + 1]));
          // Empty rhs = ⊥.
          out.Add(std::move(forbid));
        }
        break;
      }
    }
  }
  return out;
}

namespace {

bool SameLiteralSet(std::vector<Literal> a, std::vector<Literal> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

bool SameCi(const NormalCi& a, const NormalCi& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == NormalCi::Kind::kBoolean) {
    return SameLiteralSet(a.lhs, b.lhs) && SameLiteralSet(a.rhs, b.rhs);
  }
  return SameLiteralSet(a.lhs, b.lhs) && a.rhs_lit == b.rhs_lit && a.role == b.role &&
         a.n == b.n;
}

}  // namespace

bool SyntacticallyEntails(const NormalTBox& t1, const NormalTBox& t2) {
  for (const auto& ci2 : t2.Cis()) {
    bool found = std::any_of(t1.Cis().begin(), t1.Cis().end(),
                             [&](const NormalCi& ci1) { return SameCi(ci1, ci2); });
    if (!found) return false;
  }
  return true;
}

}  // namespace gqc
