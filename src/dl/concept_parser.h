#ifndef GQC_DL_CONCEPT_PARSER_H_
#define GQC_DL_CONCEPT_PARSER_H_

#include <string_view>

#include "src/dl/tbox.h"
#include "src/util/result.h"

namespace gqc {

/// Parses the textual concept syntax used by examples and tests:
///
///   concept := and_expr ('or' and_expr)*
///   and     := unary ('and' unary)*
///   unary   := 'not' unary
///            | 'exists'  role '.' unary
///            | 'forall'  role '.' unary
///            | 'atleast' N role '.' unary
///            | 'atmost'  N role '.' unary
///            | 'top' | 'bottom' | NAME | '(' concept ')'
///   role    := IDENT '-'?                        -- '-' marks an inverse role
Result<ConceptPtr> ParseConcept(std::string_view text, Vocabulary* vocab);

/// Parses a TBox: one CI per non-empty line (or ';'-separated), each of the
/// form `concept <= concept`. Lines starting with '#' are comments.
Result<TBox> ParseTBox(std::string_view text, Vocabulary* vocab);

}  // namespace gqc

#endif  // GQC_DL_CONCEPT_PARSER_H_
