#ifndef GQC_DL_MODEL_CHECK_H_
#define GQC_DL_MODEL_CHECK_H_

#include <optional>
#include <string>
#include <vector>

#include "src/dl/tbox.h"
#include "src/graph/graph.h"
#include "src/util/bitset.h"

namespace gqc {

/// Extension C^G of a concept over a finite graph (§2 interpretation).
DynamicBitset ConceptExtension(const Graph& g, const ConceptPtr& c);

/// G ⊨ T for a full TBox.
bool Satisfies(const Graph& g, const TBox& tbox);

/// G ⊨ T for a normalized TBox.
bool Satisfies(const Graph& g, const NormalTBox& tbox);

/// A violation: node `node` is in the lhs but not the rhs of CI `ci_index`.
struct Violation {
  NodeId node;
  std::size_t ci_index;
};

/// All violations of a normalized TBox (empty iff G ⊨ T).
std::vector<Violation> FindViolations(const Graph& g, const NormalTBox& tbox);

/// Whether node `v` satisfies CI `ci` (i.e. is not a counterexample to it).
bool NodeSatisfiesCi(const Graph& g, NodeId v, const NormalCi& ci);

/// Whether node `v` satisfies every CI of `tbox`. Used for the per-node
/// conditions on distinguished connector nodes (§5, §6).
bool NodeSatisfies(const Graph& g, NodeId v, const NormalTBox& tbox);

/// Number of r-successors of v carrying literal `l`.
std::size_t CountSuccessors(const Graph& g, NodeId v, Role r, Literal l);

}  // namespace gqc

#endif  // GQC_DL_MODEL_CHECK_H_
