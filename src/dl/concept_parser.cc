#include "src/dl/concept_parser.h"

#include <cctype>

#include "src/util/parse_num.h"

namespace gqc {

namespace {

class ConceptParser {
 public:
  ConceptParser(std::string_view text, Vocabulary* vocab) : text_(text), vocab_(vocab) {}

  Result<ConceptPtr> ParseFull() {
    auto c = ParseOr();
    if (!c.ok()) return c;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Result<ConceptPtr>::Error("concept: trailing input at position " +
                                       std::to_string(pos_));
    }
    return c;
  }

  Result<ConceptPtr> ParseOr() {
    auto first = ParseAnd();
    if (!first.ok()) return first;
    std::vector<ConceptPtr> parts{first.value()};
    while (ConsumeWord("or")) {
      auto next = ParseAnd();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    return ConceptNode::Or(std::move(parts));
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Consumes keyword `word` only if it is a whole identifier at the cursor.
  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_).substr(0, word.size()) != word) return false;
    std::size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) || text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  Result<std::string> ParseIdent() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Result<std::string>::Error("concept: expected identifier at position " +
                                        std::to_string(start));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Role> ParseRole() {
    auto name = ParseIdent();
    if (!name.ok()) return Result<Role>::Error(name.error());
    uint32_t id = vocab_->RoleId(name.value());
    bool inverse = pos_ < text_.size() && text_[pos_] == '-';
    if (inverse) ++pos_;
    return inverse ? Role::Inverse(id) : Role::Forward(id);
  }

  Result<uint32_t> ParseNumber() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Result<uint32_t>::Error("concept: expected number at position " +
                                     std::to_string(start));
    }
    std::optional<uint32_t> n = ParseUint32(text_.substr(start, pos_ - start));
    if (!n.has_value()) {
      return Result<uint32_t>::Error("concept: number out of range at position " +
                                     std::to_string(start));
    }
    return *n;
  }

  Result<ConceptPtr> ParseAnd() {
    auto first = ParseUnary();
    if (!first.ok()) return first;
    std::vector<ConceptPtr> parts{first.value()};
    while (ConsumeWord("and")) {
      auto next = ParseUnary();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    return ConceptNode::And(std::move(parts));
  }

  Result<ConceptPtr> ParseUnary() {
    if (ConsumeWord("not")) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner;
      return ConceptNode::Not(inner.value());
    }
    return ParseRestOrAtom();
  }

  Result<ConceptPtr> ParseRestOrAtom() {
    using R = Result<ConceptPtr>;
    for (const char* kw : {"exists", "forall", "atleast", "atmost"}) {
      if (!ConsumeWord(kw)) continue;
      uint32_t n = 0;
      std::string key = kw;
      if (key == "atleast" || key == "atmost") {
        auto num = ParseNumber();
        if (!num.ok()) return R::Error(num.error());
        n = num.value();
      }
      auto role = ParseRole();
      if (!role.ok()) return R::Error(role.error());
      if (!Consume('.')) return R::Error("concept: expected '.' after role");
      auto inner = ParseUnary();
      if (!inner.ok()) return inner;
      if (key == "exists") return ConceptNode::Exists(role.value(), inner.value());
      if (key == "forall") return ConceptNode::Forall(role.value(), inner.value());
      if (key == "atleast") return ConceptNode::AtLeast(n, role.value(), inner.value());
      return ConceptNode::AtMost(n, role.value(), inner.value());
    }
    if (ConsumeWord("top")) return ConceptNode::Top();
    if (ConsumeWord("bottom")) return ConceptNode::Bottom();
    if (Consume('(')) {
      auto inner = ParseOr();
      if (!inner.ok()) return inner;
      if (!Consume(')')) return R::Error("concept: expected ')'");
      return inner;
    }
    auto name = ParseIdent();
    if (!name.ok()) return R::Error(name.error());
    return ConceptNode::Name(vocab_->ConceptId(name.value()));
  }

  std::string_view text_;
  Vocabulary* vocab_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<ConceptPtr> ParseConcept(std::string_view text, Vocabulary* vocab) {
  return ConceptParser(text, vocab).ParseFull();
}

Result<TBox> ParseTBox(std::string_view text, Vocabulary* vocab) {
  TBox tbox;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find_first_of(";\n", start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    // Trim and skip blanks/comments.
    std::size_t a = line.find_first_not_of(" \t\r");
    if (a == std::string_view::npos || line[a] == '#') {
      if (end == text.size()) break;
      continue;
    }
    std::size_t arrow = line.find("<=");
    if (arrow == std::string_view::npos) {
      return Result<TBox>::Error("tbox: missing '<=' in line: " + std::string(line));
    }
    auto lhs = ParseConcept(line.substr(0, arrow), vocab);
    if (!lhs.ok()) return Result<TBox>::Error(lhs.error());
    auto rhs = ParseConcept(line.substr(arrow + 2), vocab);
    if (!rhs.ok()) return Result<TBox>::Error(rhs.error());
    tbox.Add(lhs.value(), rhs.value());
    if (end == text.size()) break;
  }
  return tbox;
}

}  // namespace gqc
