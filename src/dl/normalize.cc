#include "src/dl/normalize.h"

#include "src/dl/validate.h"
#include "src/util/invariant.h"

namespace gqc {

namespace {

/// Structural transformation. Define(c, lower=true) returns a literal L with
/// L ⊑ c entailed by the emitted clauses (a "lower bound" definition);
/// Define(c, lower=false) returns L with c ⊑ L entailed. Both are exact under
/// the canonical expansion of a model, which is what makes the normalization
/// a conservative extension.
class Normalizer {
 public:
  Normalizer(Vocabulary* vocab, NormalTBox* out) : vocab_(vocab), out_(out) {}

  void AddCi(const ConceptInclusion& ci) {
    ConceptPtr lhs = ToNnf(ci.lhs);
    ConceptPtr rhs = ToNnf(ci.rhs);

    // Fast paths that avoid fresh names for CIs already in (or close to)
    // normal form. This keeps the type spaces of the entailment engines
    // small, so it matters beyond aesthetics.
    std::vector<Literal> lhs_lits, rhs_lits;
    bool lhs_conj = AsLiteralConjunction(lhs, &lhs_lits);
    if (lhs_conj && AsLiteralDisjunction(rhs, &rhs_lits)) {
      EmitBoolean(std::move(lhs_lits), std::move(rhs_lits));
      return;
    }
    if (lhs_conj && lhs_lits.size() <= 1) {
      Literal l = lhs_lits.empty() ? Define(ConceptNode::Top(), /*lower=*/false)
                                   : lhs_lits[0];
      Literal filler;
      switch (rhs->kind) {
        case ConceptKind::kForall:
          if (AsSingleLiteral(rhs->children[0], &filler)) {
            EmitRestriction(NormalCi::Kind::kForall, l, rhs->role, 0, filler);
            return;
          }
          break;
        case ConceptKind::kAtLeast:
          if (rhs->n >= 1 && AsSingleLiteral(rhs->children[0], &filler)) {
            EmitRestriction(NormalCi::Kind::kAtLeast, l, rhs->role, rhs->n, filler);
            return;
          }
          break;
        case ConceptKind::kAtMost:
          if (AsSingleLiteral(rhs->children[0], &filler)) {
            EmitRestriction(NormalCi::Kind::kAtMost, l, rhs->role, rhs->n, filler);
            return;
          }
          break;
        default:
          break;
      }
    }

    Literal upper = Define(lhs, /*lower=*/false);  // lhs ⊑ upper
    Literal low = Define(rhs, /*lower=*/true);     // low ⊑ rhs
    NormalCi clause;
    clause.kind = NormalCi::Kind::kBoolean;
    clause.lhs = {upper};
    clause.rhs = {low};
    out_->Add(std::move(clause));
  }

 private:
  static bool AsSingleLiteral(const ConceptPtr& c, Literal* out) {
    if (c->kind == ConceptKind::kName) {
      *out = Literal::Positive(c->concept_id);
      return true;
    }
    if (c->kind == ConceptKind::kNot && c->children[0]->kind == ConceptKind::kName) {
      *out = Literal::Negative(c->children[0]->concept_id);
      return true;
    }
    return false;
  }

  /// ⊤ is the empty conjunction; a literal is a singleton.
  static bool AsLiteralConjunction(const ConceptPtr& c, std::vector<Literal>* out) {
    if (c->kind == ConceptKind::kTop) return true;
    Literal l;
    if (AsSingleLiteral(c, &l)) {
      out->push_back(l);
      return true;
    }
    if (c->kind != ConceptKind::kAnd) return false;
    for (const auto& child : c->children) {
      if (!AsLiteralConjunction(child, out)) return false;
    }
    return true;
  }

  /// ⊥ is the empty disjunction; a literal is a singleton.
  static bool AsLiteralDisjunction(const ConceptPtr& c, std::vector<Literal>* out) {
    if (c->kind == ConceptKind::kBottom) return true;
    Literal l;
    if (AsSingleLiteral(c, &l)) {
      out->push_back(l);
      return true;
    }
    if (c->kind != ConceptKind::kOr) return false;
    for (const auto& child : c->children) {
      if (!AsLiteralDisjunction(child, out)) return false;
    }
    return true;
  }

  Literal Fresh(const char* base) {
    return Literal::Positive(vocab_->FreshConcept(base));
  }

  void EmitBoolean(std::vector<Literal> lhs, std::vector<Literal> rhs) {
    NormalCi ci;
    ci.kind = NormalCi::Kind::kBoolean;
    ci.lhs = std::move(lhs);
    ci.rhs = std::move(rhs);
    out_->Add(std::move(ci));
  }

  void EmitRestriction(NormalCi::Kind kind, Literal lhs, Role r, uint32_t n,
                       Literal rhs) {
    NormalCi ci;
    ci.kind = kind;
    ci.lhs = {lhs};
    ci.role = r;
    ci.n = n;
    ci.rhs_lit = rhs;
    out_->Add(std::move(ci));
  }

  /// lower=true:  returns L with L ⊑ c.
  /// lower=false: returns L with c ⊑ L.
  Literal Define(const ConceptPtr& c, bool lower) {
    switch (c->kind) {
      case ConceptKind::kName:
        return Literal::Positive(c->concept_id);
      case ConceptKind::kNot:
        // NNF: the child is a name.
        GQC_DCHECK(c->children[0]->kind == ConceptKind::kName);
        return Literal::Negative(c->children[0]->concept_id);
      case ConceptKind::kBottom: {
        Literal a = Fresh("nf_bot");
        if (lower) {
          // a ⊑ ⊥.
          EmitBoolean({a}, {});
        }
        // For the upper direction ⊥ ⊑ a holds for any a; emit nothing.
        return a;
      }
      case ConceptKind::kTop: {
        Literal a = Fresh("nf_top");
        if (!lower) {
          // ⊤ ⊑ a.
          EmitBoolean({}, {a});
        }
        return a;
      }
      case ConceptKind::kAnd: {
        Literal a = Fresh("nf_and");
        std::vector<Literal> parts;
        for (const auto& child : c->children) parts.push_back(Define(child, lower));
        if (lower) {
          // a ⊑ Li for each i, so a ⊑ ⨅ Li ⊑ ⨅ Ci.
          for (Literal l : parts) EmitBoolean({a}, {l});
        } else {
          // ⨅ Li ⊑ a, so ⨅ Ci ⊑ ⨅ Li ⊑ a.
          EmitBoolean(parts, {a});
        }
        return a;
      }
      case ConceptKind::kOr: {
        Literal a = Fresh("nf_or");
        std::vector<Literal> parts;
        for (const auto& child : c->children) parts.push_back(Define(child, lower));
        if (lower) {
          // a ⊑ ⨆ Li ⊑ ⨆ Ci.
          EmitBoolean({a}, parts);
        } else {
          // Li ⊑ a for each i, so ⨆ Ci ⊑ a.
          for (Literal l : parts) EmitBoolean({l}, {a});
        }
        return a;
      }
      case ConceptKind::kForall: {
        Literal a = Fresh("nf_all");
        if (lower) {
          // a ⊑ ∀r.L with L ⊑ C.
          Literal l = Define(c->children[0], /*lower=*/true);
          EmitRestriction(NormalCi::Kind::kForall, a, c->role, 0, l);
        } else {
          // ∀r.C ⊑ a  ⟺  ¬a ⊑ ∃r.¬C; need a lower witness for ¬C, i.e. an
          // upper bound U ⊒ C and use ¬U ⊑ ¬C.
          Literal u = Define(c->children[0], /*lower=*/false);
          EmitRestriction(NormalCi::Kind::kAtLeast, a.Complemented(), c->role, 1,
                          u.Complemented());
        }
        return a;
      }
      case ConceptKind::kExists:
      case ConceptKind::kAtLeast: {
        Literal a = Fresh("nf_ge");
        uint32_t n = c->kind == ConceptKind::kExists ? 1 : c->n;
        if (n == 0) {
          // ≥0 r.C = ⊤.
          return Define(ConceptNode::Top(), lower);
        }
        if (lower) {
          // a ⊑ ≥n r.L with L ⊑ C.
          Literal l = Define(c->children[0], /*lower=*/true);
          EmitRestriction(NormalCi::Kind::kAtLeast, a, c->role, n, l);
        } else {
          // ≥n r.C ⊑ a  ⟺  ¬a ⊑ ≤n-1 r.C; sound with U ⊒ C.
          Literal u = Define(c->children[0], /*lower=*/false);
          EmitRestriction(NormalCi::Kind::kAtMost, a.Complemented(), c->role, n - 1, u);
        }
        return a;
      }
      case ConceptKind::kAtMost: {
        Literal a = Fresh("nf_le");
        if (lower) {
          // a ⊑ ≤n r.C; sound with U ⊒ C: a ⊑ ≤n r.U ⊑ ≤n r.C.
          Literal u = Define(c->children[0], /*lower=*/false);
          EmitRestriction(NormalCi::Kind::kAtMost, a, c->role, c->n, u);
        } else {
          // ≤n r.C ⊑ a  ⟺  ¬a ⊑ ≥n+1 r.C; sound with L ⊑ C.
          Literal l = Define(c->children[0], /*lower=*/true);
          EmitRestriction(NormalCi::Kind::kAtLeast, a.Complemented(), c->role, c->n + 1,
                          l);
        }
        return a;
      }
    }
    GQC_DCHECK(false && "unreachable concept kind");
    return Literal::Positive(0);
  }

  Vocabulary* vocab_;
  NormalTBox* out_;
};

}  // namespace

NormalTBox Normalize(const TBox& tbox, Vocabulary* vocab) {
  NormalTBox out;
  Normalizer normalizer(vocab, &out);
  for (const auto& ci : tbox.Cis()) normalizer.AddCi(ci);
  // Post-normalize shape audit: only the four allowed axiom forms survive,
  // with every mentioned id interned (the reasoning engines trust both).
  GQC_AUDIT(ValidateNormalTBox(out, *vocab));
  return out;
}

}  // namespace gqc
