#ifndef GQC_DL_NORMALIZE_H_
#define GQC_DL_NORMALIZE_H_

#include "src/dl/tbox.h"

namespace gqc {

/// Normalizes a TBox into the §2 normal form (Boolean clauses over literals,
/// l ⊑ ∀r.l', l ⊑ ∃^{≥n} r.l', l ⊑ ∃^{≤n} r.l') by structural transformation
/// with fresh concept names interned into `vocab`.
///
/// The result is a conservative extension: every model of the input extends
/// (uniquely, by evaluating the defining expressions) to a model of the
/// output, and every model of the output satisfies the input.
NormalTBox Normalize(const TBox& tbox, Vocabulary* vocab);

}  // namespace gqc

#endif  // GQC_DL_NORMALIZE_H_
