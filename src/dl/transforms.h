#ifndef GQC_DL_TRANSFORMS_H_
#define GQC_DL_TRANSFORMS_H_

#include <vector>

#include "src/dl/tbox.h"

namespace gqc {

/// T0: the TBox with all participation constraints (at-least CIs) dropped
/// (§3, the warm-up case and TBox factorization).
NormalTBox DropParticipationConstraints(const NormalTBox& t);

/// T→ (§5): for an ALCI TBox, drops participation constraints over inverse
/// roles and flips universal restrictions over inverse roles to their
/// forward contrapositive (A ⊑ ∀r⁻.B becomes B̄ ⊑ ∀r.Ā). The result mentions
/// only forward roles.
NormalTBox ForwardRestriction(const NormalTBox& t);

/// T← (§5): the symmetric transform; the result mentions only inverse roles.
NormalTBox BackwardRestriction(const NormalTBox& t);

/// Converts every kForall CI into the equivalent at-most form
/// (l ⊑ ∀r.l' becomes l ⊑ ∃^{≤0} r.l̄'), so ALCQ TBoxes consist of Boolean,
/// at-least, and at-most CIs only. Used by the §6 engine.
NormalTBox ForallsToAtMost(const NormalTBox& t);

/// The §6 counting vocabulary Γ_T: for each (role, filler literal) pair in an
/// at-least/at-most restriction of T, fresh labels C_{0,r,D} .. C_{N,r,D}
/// where N is one plus the maximal number in T. Label C_{i,r,D} on a node
/// asserts it has at least i r-successors satisfying D among its *frame*
/// successors (the connector side of the decomposition).
struct CountedPair {
  Role role;
  Literal filler;
  /// labels[i] is the concept id of C_{i,role,filler}, i = 0..N.
  std::vector<uint32_t> labels;
};

struct CountingVocabulary {
  std::vector<CountedPair> pairs;
  uint32_t big_n = 0;  // N

  /// Index of the pair for (role, filler), or npos.
  std::size_t PairIndex(Role role, Literal filler) const;
  static constexpr std::size_t npos = SIZE_MAX;

  /// All label ids, across pairs and counts.
  std::vector<uint32_t> AllLabelIds() const;
};

CountingVocabulary MakeCountingVocabulary(const NormalTBox& t, Vocabulary* vocab);

/// T_n (§6): the definitional TBox pinning the counting labels to actual
/// successor counts: ⊤ ⊑ C_0, C_i ⊑ ∃^{≥i} r.D, C̄_i ⊑ ∃^{≤i-1} r.D.
/// In our frame decomposition it is checked at the distinguished node of each
/// connector (whose successors are exactly the frame successors).
NormalTBox MakeTn(const CountingVocabulary& cv);

/// T_e (§6): T with every counting CI split between in-component successors
/// and the connector counts promised by the labels:
///   C ⊑ ∃^{≥n} r.D   ~>  C ⊑ ⨆_{i=0..N} (C_i ⊓ ∃^{≥ n-i} r.D)
///   C ⊑ ∃^{≤n} r.D   ~>  C ⊑ ⨅_{i=0..N} (C̄_i ⊔ ∃^{≤ n-i} r.D)
/// where ∃^{≥k} with k <= 0 is ⊤ and ∃^{≤k} with k < 0 is ⊥. Boolean CIs are
/// kept. Requires ForallsToAtMost first. The result is a general TBox
/// (normalize before feeding it to engines).
TBox MakeTe(const NormalTBox& t, const CountingVocabulary& cv);

/// T_e in normal form without fresh names, exploiting the conjunctive
/// left-hand sides of NormalCi. For every counting CI and every possible
/// connector promise i (determined by the labels C_i, with monotonicity
/// C_{i+1} ⊑ C_i added as Boolean CIs):
///   C ⊑ ∃^{≥n} r.D  ~>  {C, C_i, C̄_{i+1}} ⊑ ∃^{≥ n-i} r.D   for i < n
///   C ⊑ ∃^{≤n} r.D  ~>  {C, C_i, C̄_{i+1}} ⊑ ∃^{≤ n-i} r.D   for i <= n
///                        {C, C_{n+1}} ⊑ ⊥
/// (i = N has no C_{N+1} guard). Per-type, this is exactly the general
/// MakeTe; the §6 engine recursion uses this form.
NormalTBox MakeTeNormal(const NormalTBox& t, const CountingVocabulary& cv);

/// Monotonicity Boolean CIs C_{i+1,r,D} ⊑ C_{i,r,D} alone (part of both T_n
/// and MakeTeNormal; exposed for tests).
NormalTBox CountingMonotonicity(const CountingVocabulary& cv);

/// "T1 entails T2" check used by abstract frames, implemented syntactically:
/// every CI of t2 occurs in t1 (up to literal-set equality). Sufficient for
/// the frames our engines build, which share CIs by construction.
bool SyntacticallyEntails(const NormalTBox& t1, const NormalTBox& t2);

}  // namespace gqc

#endif  // GQC_DL_TRANSFORMS_H_
