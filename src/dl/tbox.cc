#include "src/dl/tbox.h"

#include <algorithm>
#include <set>

namespace gqc {

const char* DlFragmentName(DlFragment f) {
  switch (f) {
    case DlFragment::kAlc:
      return "ALC";
    case DlFragment::kAlci:
      return "ALCI";
    case DlFragment::kAlcq:
      return "ALCQ";
    case DlFragment::kAlcqi:
      return "ALCQI";
  }
  return "?";
}

bool TBox::UsesInverse() const {
  return std::any_of(cis_.begin(), cis_.end(), [](const ConceptInclusion& ci) {
    return ConceptUsesInverse(ci.lhs) || ConceptUsesInverse(ci.rhs);
  });
}

bool TBox::UsesCounting() const {
  // Counting on the left of ⊑ behaves dually under the ⊤ ⊑ ¬C ⊔ D reading;
  // check the NNF of the whole implication.
  return std::any_of(cis_.begin(), cis_.end(), [](const ConceptInclusion& ci) {
    ConceptPtr impl = ConceptNode::Or({ConceptNode::Not(ci.lhs), ci.rhs});
    return ConceptUsesCounting(ToNnf(impl));
  });
}

DlFragment TBox::Fragment() const {
  bool inv = UsesInverse();
  bool cnt = UsesCounting();
  if (inv && cnt) return DlFragment::kAlcqi;
  if (inv) return DlFragment::kAlci;
  if (cnt) return DlFragment::kAlcq;
  return DlFragment::kAlc;
}

std::vector<uint32_t> TBox::ConceptIds() const {
  std::vector<uint32_t> out;
  for (const auto& ci : cis_) {
    CollectConceptIds(ci.lhs, &out);
    CollectConceptIds(ci.rhs, &out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<uint32_t> TBox::RoleIds() const {
  std::vector<uint32_t> out;
  for (const auto& ci : cis_) {
    CollectRoleIds(ci.lhs, &out);
    CollectRoleIds(ci.rhs, &out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string TBox::ToString(const Vocabulary& vocab) const {
  std::string out;
  for (const auto& ci : cis_) {
    out += ConceptToString(ci.lhs, vocab) + " <= " + ConceptToString(ci.rhs, vocab) +
           "\n";
  }
  return out;
}

std::string NormalCi::ToString(const Vocabulary& vocab) const {
  auto literals = [&vocab](const std::vector<Literal>& ls, const char* sep,
                           const char* empty) {
    if (ls.empty()) return std::string(empty);
    std::string out;
    for (std::size_t i = 0; i < ls.size(); ++i) {
      if (i) out += sep;
      out += vocab.LiteralString(ls[i]);
    }
    return out;
  };
  std::string left = literals(lhs, " and ", "top");
  switch (kind) {
    case Kind::kBoolean:
      return left + " <= " + literals(rhs, " or ", "bottom");
    case Kind::kForall:
      return left + " <= forall " + vocab.RoleString(role) + "." +
             vocab.LiteralString(rhs_lit);
    case Kind::kAtLeast:
      return left + " <= atleast " + std::to_string(n) + " " + vocab.RoleString(role) +
             "." + vocab.LiteralString(rhs_lit);
    case Kind::kAtMost:
      return left + " <= atmost " + std::to_string(n) + " " + vocab.RoleString(role) +
             "." + vocab.LiteralString(rhs_lit);
  }
  return "?";
}

bool NormalTBox::UsesInverse() const {
  return std::any_of(cis_.begin(), cis_.end(), [](const NormalCi& ci) {
    return ci.kind != NormalCi::Kind::kBoolean && ci.role.is_inverse();
  });
}

bool NormalTBox::UsesCounting() const {
  return std::any_of(cis_.begin(), cis_.end(), [](const NormalCi& ci) {
    return (ci.kind == NormalCi::Kind::kAtLeast && ci.n >= 2) ||
           ci.kind == NormalCi::Kind::kAtMost;
  });
}

DlFragment NormalTBox::Fragment() const {
  bool inv = UsesInverse();
  bool cnt = UsesCounting();
  if (inv && cnt) return DlFragment::kAlcqi;
  if (inv) return DlFragment::kAlci;
  if (cnt) return DlFragment::kAlcq;
  return DlFragment::kAlc;
}

bool NormalTBox::HasParticipationConstraints() const {
  return std::any_of(cis_.begin(), cis_.end(), [](const NormalCi& ci) {
    return ci.kind == NormalCi::Kind::kAtLeast;
  });
}

std::vector<uint32_t> NormalTBox::RoleIds() const {
  std::set<uint32_t> ids;
  for (const auto& ci : cis_) {
    if (ci.kind != NormalCi::Kind::kBoolean) ids.insert(ci.role.name_id());
  }
  return std::vector<uint32_t>(ids.begin(), ids.end());
}

std::vector<uint32_t> NormalTBox::ConceptIds() const {
  std::set<uint32_t> ids;
  for (const auto& ci : cis_) {
    for (Literal l : ci.lhs) ids.insert(l.concept_id());
    for (Literal l : ci.rhs) ids.insert(l.concept_id());
    if (ci.kind != NormalCi::Kind::kBoolean) ids.insert(ci.rhs_lit.concept_id());
  }
  return std::vector<uint32_t>(ids.begin(), ids.end());
}

uint32_t NormalTBox::MaxNumber() const {
  uint32_t max_n = 0;
  for (const auto& ci : cis_) {
    if (ci.kind == NormalCi::Kind::kAtLeast || ci.kind == NormalCi::Kind::kAtMost) {
      max_n = std::max(max_n, ci.n);
    }
  }
  return max_n;
}

std::string NormalTBox::ToString(const Vocabulary& vocab) const {
  std::string out;
  for (const auto& ci : cis_) out += ci.ToString(vocab) + "\n";
  return out;
}

}  // namespace gqc
