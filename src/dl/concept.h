#ifndef GQC_DL_CONCEPT_H_
#define GQC_DL_CONCEPT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/vocabulary.h"

namespace gqc {

/// ALCQI concept constructors (§2). The core grammar is
///   C ::= ⊥ | A | C ⊓ C | ¬C | ∃^{≥n} r.C
/// with ⊤, ⊔, ∀r.C, ∃r.C, ∃^{≤n} r.C kept as explicit kinds for readability
/// (they are eliminated by normalization).
enum class ConceptKind {
  kBottom,
  kTop,
  kName,     // concept name A
  kNot,      // ¬C
  kAnd,      // C1 ⊓ ... ⊓ Ck
  kOr,       // C1 ⊔ ... ⊔ Ck
  kExists,   // ∃r.C  (= ∃^{≥1})
  kForall,   // ∀r.C
  kAtLeast,  // ∃^{≥n} r.C
  kAtMost,   // ∃^{≤n} r.C
};

struct ConceptNode;
using ConceptPtr = std::shared_ptr<const ConceptNode>;

/// Immutable shared concept AST node.
struct ConceptNode {
  ConceptKind kind = ConceptKind::kBottom;
  uint32_t concept_id = 0;          // kName
  Role role;                        // restriction kinds
  uint32_t n = 0;                   // kAtLeast / kAtMost
  std::vector<ConceptPtr> children; // kNot: 1; kAnd/kOr: >= 1; restrictions: 1

  static ConceptPtr Bottom();
  static ConceptPtr Top();
  static ConceptPtr Name(uint32_t concept_id);
  static ConceptPtr FromLiteral(Literal l);
  static ConceptPtr Not(ConceptPtr c);
  static ConceptPtr And(std::vector<ConceptPtr> cs);
  static ConceptPtr Or(std::vector<ConceptPtr> cs);
  static ConceptPtr Exists(Role r, ConceptPtr c);
  static ConceptPtr Forall(Role r, ConceptPtr c);
  static ConceptPtr AtLeast(uint32_t n, Role r, ConceptPtr c);
  static ConceptPtr AtMost(uint32_t n, Role r, ConceptPtr c);
};

std::string ConceptToString(const ConceptPtr& c, const Vocabulary& vocab);

/// Negation normal form: negation only on names; ∃/∀ rewritten to ≥/≤ when
/// negated. ¬≥n becomes ≤n-1, ¬≤n becomes ≥n+1, ¬∀r.C becomes ≥1 r.¬C.
ConceptPtr ToNnf(const ConceptPtr& c);

/// True if the concept (or any subconcept) uses an inverse role.
bool ConceptUsesInverse(const ConceptPtr& c);
/// True if the concept uses genuine counting: ≥n with n >= 2, or ≤n.
bool ConceptUsesCounting(const ConceptPtr& c);

/// Collects concept names / role names used.
void CollectConceptIds(const ConceptPtr& c, std::vector<uint32_t>* out);
void CollectRoleIds(const ConceptPtr& c, std::vector<uint32_t>* out);

}  // namespace gqc

#endif  // GQC_DL_CONCEPT_H_
