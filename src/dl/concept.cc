#include "src/dl/concept.h"

#include <algorithm>

namespace gqc {

namespace {

ConceptPtr Make(ConceptNode node) {
  return std::make_shared<ConceptNode>(std::move(node));
}

}  // namespace

ConceptPtr ConceptNode::Bottom() {
  ConceptNode node;
  node.kind = ConceptKind::kBottom;
  return Make(std::move(node));
}
ConceptPtr ConceptNode::Top() {
  ConceptNode node;
  node.kind = ConceptKind::kTop;
  return Make(std::move(node));
}

ConceptPtr ConceptNode::Name(uint32_t concept_id) {
  ConceptNode node;
  node.kind = ConceptKind::kName;
  node.concept_id = concept_id;
  return Make(std::move(node));
}

ConceptPtr ConceptNode::FromLiteral(Literal l) {
  ConceptPtr name = Name(l.concept_id());
  return l.is_negative() ? Not(name) : name;
}

ConceptPtr ConceptNode::Not(ConceptPtr c) {
  ConceptNode node;
  node.kind = ConceptKind::kNot;
  node.children.push_back(std::move(c));
  return Make(std::move(node));
}

ConceptPtr ConceptNode::And(std::vector<ConceptPtr> cs) {
  if (cs.size() == 1) return cs[0];
  if (cs.empty()) return Top();
  ConceptNode node;
  node.kind = ConceptKind::kAnd;
  node.children = std::move(cs);
  return Make(std::move(node));
}

ConceptPtr ConceptNode::Or(std::vector<ConceptPtr> cs) {
  if (cs.size() == 1) return cs[0];
  if (cs.empty()) return Bottom();
  ConceptNode node;
  node.kind = ConceptKind::kOr;
  node.children = std::move(cs);
  return Make(std::move(node));
}

ConceptPtr ConceptNode::Exists(Role r, ConceptPtr c) {
  ConceptNode node;
  node.kind = ConceptKind::kExists;
  node.role = r;
  node.n = 1;
  node.children.push_back(std::move(c));
  return Make(std::move(node));
}

ConceptPtr ConceptNode::Forall(Role r, ConceptPtr c) {
  ConceptNode node;
  node.kind = ConceptKind::kForall;
  node.role = r;
  node.children.push_back(std::move(c));
  return Make(std::move(node));
}

ConceptPtr ConceptNode::AtLeast(uint32_t n, Role r, ConceptPtr c) {
  ConceptNode node;
  node.kind = ConceptKind::kAtLeast;
  node.role = r;
  node.n = n;
  node.children.push_back(std::move(c));
  return Make(std::move(node));
}

ConceptPtr ConceptNode::AtMost(uint32_t n, Role r, ConceptPtr c) {
  ConceptNode node;
  node.kind = ConceptKind::kAtMost;
  node.role = r;
  node.n = n;
  node.children.push_back(std::move(c));
  return Make(std::move(node));
}

std::string ConceptToString(const ConceptPtr& c, const Vocabulary& vocab) {
  switch (c->kind) {
    case ConceptKind::kBottom:
      return "bottom";
    case ConceptKind::kTop:
      return "top";
    case ConceptKind::kName:
      return vocab.ConceptName(c->concept_id);
    case ConceptKind::kNot:
      return "not " + ConceptToString(c->children[0], vocab);
    case ConceptKind::kAnd:
    case ConceptKind::kOr: {
      std::string op = c->kind == ConceptKind::kAnd ? " and " : " or ";
      std::string out = "(";
      for (std::size_t i = 0; i < c->children.size(); ++i) {
        if (i) out += op;
        out += ConceptToString(c->children[i], vocab);
      }
      return out + ")";
    }
    case ConceptKind::kExists:
      return "exists " + vocab.RoleString(c->role) + "." +
             ConceptToString(c->children[0], vocab);
    case ConceptKind::kForall:
      return "forall " + vocab.RoleString(c->role) + "." +
             ConceptToString(c->children[0], vocab);
    case ConceptKind::kAtLeast:
      return "atleast " + std::to_string(c->n) + " " + vocab.RoleString(c->role) + "." +
             ConceptToString(c->children[0], vocab);
    case ConceptKind::kAtMost:
      return "atmost " + std::to_string(c->n) + " " + vocab.RoleString(c->role) + "." +
             ConceptToString(c->children[0], vocab);
  }
  return "?";
}

namespace {

ConceptPtr Nnf(const ConceptPtr& c, bool negated) {
  switch (c->kind) {
    case ConceptKind::kBottom:
      return negated ? ConceptNode::Top() : ConceptNode::Bottom();
    case ConceptKind::kTop:
      return negated ? ConceptNode::Bottom() : ConceptNode::Top();
    case ConceptKind::kName:
      return negated ? ConceptNode::Not(c) : c;
    case ConceptKind::kNot:
      return Nnf(c->children[0], !negated);
    case ConceptKind::kAnd:
    case ConceptKind::kOr: {
      bool is_and = (c->kind == ConceptKind::kAnd) != negated;
      std::vector<ConceptPtr> children;
      children.reserve(c->children.size());
      for (const auto& child : c->children) children.push_back(Nnf(child, negated));
      return is_and ? ConceptNode::And(std::move(children))
                    : ConceptNode::Or(std::move(children));
    }
    case ConceptKind::kExists:
      // ∃r.C = ≥1 r.C; ¬∃r.C = ∀r.¬C (stays within ALC, unlike ≤0 r.C).
      return negated ? ConceptNode::Forall(c->role, Nnf(c->children[0], true))
                     : ConceptNode::AtLeast(1, c->role, Nnf(c->children[0], false));
    case ConceptKind::kForall:
      // ¬∀r.C = ≥1 r.¬C.
      return negated ? ConceptNode::AtLeast(1, c->role, Nnf(c->children[0], true))
                     : ConceptNode::Forall(c->role, Nnf(c->children[0], false));
    case ConceptKind::kAtLeast:
      if (!negated) return ConceptNode::AtLeast(c->n, c->role, Nnf(c->children[0], false));
      // ¬≥n r.C = ≤n-1 r.C; ¬≥0 is unsatisfiable.
      if (c->n == 0) return ConceptNode::Bottom();
      return ConceptNode::AtMost(c->n - 1, c->role, Nnf(c->children[0], false));
    case ConceptKind::kAtMost:
      if (!negated) return ConceptNode::AtMost(c->n, c->role, Nnf(c->children[0], false));
      // ¬≤n r.C = ≥n+1 r.C.
      return ConceptNode::AtLeast(c->n + 1, c->role, Nnf(c->children[0], false));
  }
  return c;
}

}  // namespace

ConceptPtr ToNnf(const ConceptPtr& c) { return Nnf(c, false); }

bool ConceptUsesInverse(const ConceptPtr& c) {
  switch (c->kind) {
    case ConceptKind::kExists:
    case ConceptKind::kForall:
    case ConceptKind::kAtLeast:
    case ConceptKind::kAtMost:
      if (c->role.is_inverse()) return true;
      break;
    default:
      break;
  }
  return std::any_of(c->children.begin(), c->children.end(), ConceptUsesInverse);
}

bool ConceptUsesCounting(const ConceptPtr& c) {
  if (c->kind == ConceptKind::kAtLeast && c->n >= 2) return true;
  if (c->kind == ConceptKind::kAtMost) return true;
  return std::any_of(c->children.begin(), c->children.end(), ConceptUsesCounting);
}

void CollectConceptIds(const ConceptPtr& c, std::vector<uint32_t>* out) {
  if (c->kind == ConceptKind::kName) out->push_back(c->concept_id);
  for (const auto& child : c->children) CollectConceptIds(child, out);
}

void CollectRoleIds(const ConceptPtr& c, std::vector<uint32_t>* out) {
  switch (c->kind) {
    case ConceptKind::kExists:
    case ConceptKind::kForall:
    case ConceptKind::kAtLeast:
    case ConceptKind::kAtMost:
      out->push_back(c->role.name_id());
      break;
    default:
      break;
  }
  for (const auto& child : c->children) CollectRoleIds(child, out);
}

}  // namespace gqc
