#include "src/dl/model_check.h"

namespace gqc {

DynamicBitset ConceptExtension(const Graph& g, const ConceptPtr& c) {
  const std::size_t n = g.NodeCount();
  DynamicBitset out(n);
  switch (c->kind) {
    case ConceptKind::kBottom:
      break;
    case ConceptKind::kTop:
      for (std::size_t v = 0; v < n; ++v) out.Set(v);
      break;
    case ConceptKind::kName:
      for (std::size_t v = 0; v < n; ++v) {
        if (g.HasLabel(static_cast<NodeId>(v), c->concept_id)) out.Set(v);
      }
      break;
    case ConceptKind::kNot: {
      DynamicBitset inner = ConceptExtension(g, c->children[0]);
      for (std::size_t v = 0; v < n; ++v) {
        if (!inner.Test(v)) out.Set(v);
      }
      break;
    }
    case ConceptKind::kAnd: {
      for (std::size_t v = 0; v < n; ++v) out.Set(v);
      for (const auto& child : c->children) out &= ConceptExtension(g, child);
      break;
    }
    case ConceptKind::kOr: {
      for (const auto& child : c->children) out |= ConceptExtension(g, child);
      break;
    }
    case ConceptKind::kExists:
    case ConceptKind::kForall:
    case ConceptKind::kAtLeast:
    case ConceptKind::kAtMost: {
      DynamicBitset inner = ConceptExtension(g, c->children[0]);
      for (std::size_t v = 0; v < n; ++v) {
        std::size_t count = 0;
        for (NodeId w : g.Successors(static_cast<NodeId>(v), c->role)) {
          if (inner.Test(w)) ++count;
        }
        bool holds = false;
        switch (c->kind) {
          case ConceptKind::kExists:
            holds = count >= 1;
            break;
          case ConceptKind::kForall:
            holds = count == g.Successors(static_cast<NodeId>(v), c->role).size();
            break;
          case ConceptKind::kAtLeast:
            holds = count >= c->n;
            break;
          case ConceptKind::kAtMost:
            holds = count <= c->n;
            break;
          default:
            break;
        }
        if (holds) out.Set(v);
      }
      break;
    }
  }
  return out;
}

bool Satisfies(const Graph& g, const TBox& tbox) {
  for (const auto& ci : tbox.Cis()) {
    DynamicBitset lhs = ConceptExtension(g, ci.lhs);
    DynamicBitset rhs = ConceptExtension(g, ci.rhs);
    if (!lhs.IsSubsetOf(rhs)) return false;
  }
  return true;
}

std::size_t CountSuccessors(const Graph& g, NodeId v, Role r, Literal l) {
  std::size_t count = 0;
  for (NodeId w : g.Successors(v, r)) {
    if (g.SatisfiesLiteral(w, l)) ++count;
  }
  return count;
}

bool NodeSatisfiesCi(const Graph& g, NodeId v, const NormalCi& ci) {
  for (Literal l : ci.lhs) {
    if (!g.SatisfiesLiteral(v, l)) return true;  // lhs not applicable
  }
  switch (ci.kind) {
    case NormalCi::Kind::kBoolean: {
      for (Literal l : ci.rhs) {
        if (g.SatisfiesLiteral(v, l)) return true;
      }
      return false;
    }
    case NormalCi::Kind::kForall: {
      for (NodeId w : g.Successors(v, ci.role)) {
        if (!g.SatisfiesLiteral(w, ci.rhs_lit)) return false;
      }
      return true;
    }
    case NormalCi::Kind::kAtLeast:
      return CountSuccessors(g, v, ci.role, ci.rhs_lit) >= ci.n;
    case NormalCi::Kind::kAtMost:
      return CountSuccessors(g, v, ci.role, ci.rhs_lit) <= ci.n;
  }
  return true;
}

std::vector<Violation> FindViolations(const Graph& g, const NormalTBox& tbox) {
  std::vector<Violation> out;
  for (std::size_t i = 0; i < tbox.Cis().size(); ++i) {
    for (NodeId v = 0; v < g.NodeCount(); ++v) {
      if (!NodeSatisfiesCi(g, v, tbox.Cis()[i])) out.push_back({v, i});
    }
  }
  return out;
}

bool Satisfies(const Graph& g, const NormalTBox& tbox) {
  for (const auto& ci : tbox.Cis()) {
    for (NodeId v = 0; v < g.NodeCount(); ++v) {
      if (!NodeSatisfiesCi(g, v, ci)) return false;
    }
  }
  return true;
}

bool NodeSatisfies(const Graph& g, NodeId v, const NormalTBox& tbox) {
  for (const auto& ci : tbox.Cis()) {
    if (!NodeSatisfiesCi(g, v, ci)) return false;
  }
  return true;
}

}  // namespace gqc
