#include "src/dl/types.h"

#include "src/util/invariant.h"

namespace gqc {

bool MaskSatisfiesBooleanCis(const TypeSpace& space, uint64_t mask,
                             const NormalTBox& tbox) {
  for (const auto& ci : tbox.Cis()) {
    if (ci.kind != NormalCi::Kind::kBoolean) continue;
    bool lhs_holds = true;
    for (Literal l : ci.lhs) {
      std::size_t pos = space.PositionOf(l.concept_id());
      GQC_DCHECK(pos != TypeSpace::npos && "support must cover the TBox concepts");
      bool set = (mask >> pos) & 1;
      if (l.is_negative() ? set : !set) {
        lhs_holds = false;
        break;
      }
    }
    if (!lhs_holds) continue;
    bool rhs_holds = false;
    for (Literal l : ci.rhs) {
      std::size_t pos = space.PositionOf(l.concept_id());
      GQC_DCHECK(pos != TypeSpace::npos && "support must cover the TBox concepts");
      bool set = (mask >> pos) & 1;
      if (l.is_negative() ? !set : set) {
        rhs_holds = true;
        break;
      }
    }
    if (!rhs_holds) return false;
  }
  return true;
}

std::vector<uint64_t> EnumerateLocallyConsistentTypes(const TypeSpace& space,
                                                      const NormalTBox& tbox) {
  GQC_DCHECK(space.arity() <= 28 && "type space too large to enumerate");
  std::vector<uint64_t> out;
  for (uint64_t mask = 0; mask < space.mask_count(); ++mask) {
    if (MaskSatisfiesBooleanCis(space, mask, tbox)) out.push_back(mask);
  }
  return out;
}

TypeSpace MakeSupport(const std::vector<std::vector<uint32_t>>& groups) {
  std::vector<uint32_t> all;
  for (const auto& g : groups) all.insert(all.end(), g.begin(), g.end());
  return TypeSpace(std::move(all));
}

}  // namespace gqc
