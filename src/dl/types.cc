#include "src/dl/types.h"

#include <algorithm>

#include "src/util/invariant.h"

namespace gqc {

bool MaskSatisfiesBooleanCis(const TypeSpace& space, uint64_t mask,
                             const NormalTBox& tbox) {
  return CompiledBooleanCis(space, tbox).Satisfies(mask);
}

std::vector<uint64_t> EnumerateLocallyConsistentTypes(const TypeSpace& space,
                                                      const NormalTBox& tbox) {
  GQC_DCHECK(space.arity() <= 28 && "type space too large to enumerate");
  CompiledBooleanCis compiled(space, tbox);
  std::vector<uint64_t> out;
  for (uint64_t mask = 0; mask < space.mask_count(); ++mask) {
    if (compiled.Satisfies(mask)) out.push_back(mask);
  }
  return out;
}

TypeSpace MakeSupport(const std::vector<std::vector<uint32_t>>& groups) {
  std::vector<uint32_t> all;
  for (const auto& g : groups) all.insert(all.end(), g.begin(), g.end());
  return TypeSpace(std::move(all));
}

CompiledLiterals::CompiledLiterals(const TypeSpace& space,
                                   const std::vector<Literal>& literals) {
  for (Literal l : literals) Add(space, l);
}

CompiledLiterals::CompiledLiterals(const TypeSpace& space, const Type& type) {
  for (Literal l : type.Literals()) Add(space, l);
}

void CompiledLiterals::Add(const TypeSpace& space, Literal l) {
  std::size_t pos = space.PositionOf(l.concept_id());
  if (pos == TypeSpace::npos) {
    // Maximal types over the space never carry out-of-support labels: a
    // positive literal is unsatisfiable, a negative one vacuous.
    if (!l.is_negative()) satisfiable_ = false;
    return;
  }
  uint64_t bit = uint64_t{1} << pos;
  if (l.is_negative()) {
    neg_ |= bit;
  } else {
    pos_ |= bit;
  }
  if ((pos_ & neg_) != 0) satisfiable_ = false;
}

CompiledBooleanCis::CompiledBooleanCis(const TypeSpace& space,
                                       const NormalTBox& tbox) {
  for (const auto& ci : tbox.Cis()) {
    if (ci.kind != NormalCi::Kind::kBoolean) continue;
    Ci compiled;
    bool lhs_satisfiable = true;
    for (Literal l : ci.lhs) {
      std::size_t pos = space.PositionOf(l.concept_id());
      GQC_DCHECK(pos != TypeSpace::npos && "support must cover the TBox concepts");
      if (pos == TypeSpace::npos) {
        if (!l.is_negative()) lhs_satisfiable = false;
        continue;
      }
      uint64_t bit = uint64_t{1} << pos;
      if (l.is_negative()) {
        compiled.lhs_neg |= bit;
      } else {
        compiled.lhs_pos |= bit;
      }
    }
    // An unsatisfiable lhs (including complementary-literal pairs, used by
    // the engines as vacuous support-widening CIs) never applies.
    if (!lhs_satisfiable || (compiled.lhs_pos & compiled.lhs_neg) != 0) continue;
    for (Literal l : ci.rhs) {
      std::size_t pos = space.PositionOf(l.concept_id());
      GQC_DCHECK(pos != TypeSpace::npos && "support must cover the TBox concepts");
      if (pos == TypeSpace::npos) continue;
      uint64_t bit = uint64_t{1} << pos;
      if (l.is_negative()) {
        compiled.rhs_neg |= bit;
      } else {
        compiled.rhs_pos |= bit;
      }
    }
    cis_.push_back(compiled);
  }
}

MaskIndex::MaskIndex(std::vector<uint64_t> masks) : masks_(std::move(masks)) {
  GQC_DCHECK(std::is_sorted(masks_.begin(), masks_.end()));
}

std::size_t MaskIndex::IndexOf(uint64_t mask) const {
  auto it = std::lower_bound(masks_.begin(), masks_.end(), mask);
  if (it == masks_.end() || *it != mask) return npos;
  return static_cast<std::size_t>(it - masks_.begin());
}

}  // namespace gqc
