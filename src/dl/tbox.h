#ifndef GQC_DL_TBOX_H_
#define GQC_DL_TBOX_H_

#include <string>
#include <vector>

#include "src/dl/concept.h"

namespace gqc {

/// A concept inclusion C ⊑ D.
struct ConceptInclusion {
  ConceptPtr lhs;
  ConceptPtr rhs;
};

/// The description-logic fragments the paper distinguishes (§2): ALC plus
/// inverses (I) and/or qualified number restrictions (Q).
enum class DlFragment { kAlc, kAlci, kAlcq, kAlcqi };

const char* DlFragmentName(DlFragment f);

/// A TBox: a finite set of concept inclusions. This is the schema formalism;
/// the PG-Schema front-end (src/schema) compiles to it.
class TBox {
 public:
  void Add(ConceptPtr lhs, ConceptPtr rhs) { cis_.push_back({std::move(lhs), std::move(rhs)}); }
  void Add(ConceptInclusion ci) { cis_.push_back(std::move(ci)); }

  const std::vector<ConceptInclusion>& Cis() const { return cis_; }
  std::size_t size() const { return cis_.size(); }

  bool UsesInverse() const;
  bool UsesCounting() const;
  DlFragment Fragment() const;

  std::vector<uint32_t> ConceptIds() const;
  std::vector<uint32_t> RoleIds() const;

  std::string ToString(const Vocabulary& vocab) const;

 private:
  std::vector<ConceptInclusion> cis_;
};

/// Normal-form concept inclusions (§2's normalized TBoxes, with literal
/// conjunctions allowed on the left, which the §6 counting factorization
/// needs):
///   kBoolean: l1 ⊓ ... ⊓ lk ⊑ l'1 ⊔ ... ⊔ l'm    (all literals)
///   kForall:  l1 ⊓ ... ⊓ lk ⊑ ∀r.l'
///   kAtLeast: l1 ⊓ ... ⊓ lk ⊑ ∃^{≥n} r.l'   (n >= 1; n = 1 is ∃r.l', a
///                                            participation constraint)
///   kAtMost:  l1 ⊓ ... ⊓ lk ⊑ ∃^{≤n} r.l'
struct NormalCi {
  enum class Kind { kBoolean, kForall, kAtLeast, kAtMost };
  Kind kind = Kind::kBoolean;
  // All kinds: conjunction of literals on the left; empty lhs means ⊤.
  std::vector<Literal> lhs;
  // kBoolean only: disjunction of literals; empty rhs means ⊥.
  std::vector<Literal> rhs;
  // Restriction forms.
  Literal rhs_lit;
  Role role;
  uint32_t n = 0;

  std::string ToString(const Vocabulary& vocab) const;
};

/// A TBox in normal form. All reasoning engines operate on this.
class NormalTBox {
 public:
  void Add(NormalCi ci) { cis_.push_back(std::move(ci)); }
  const std::vector<NormalCi>& Cis() const { return cis_; }
  std::size_t size() const { return cis_.size(); }

  bool UsesInverse() const;
  bool UsesCounting() const;
  DlFragment Fragment() const;

  /// Participation constraints: at-least CIs (§3). Their presence forces the
  /// entailment-based decision path.
  bool HasParticipationConstraints() const;

  /// Role name ids used in restriction CIs (the paper's Σ_T).
  std::vector<uint32_t> RoleIds() const;
  /// Concept ids used anywhere.
  std::vector<uint32_t> ConceptIds() const;

  /// Largest n in any at-least/at-most CI (0 if none).
  uint32_t MaxNumber() const;

  std::string ToString(const Vocabulary& vocab) const;

 private:
  std::vector<NormalCi> cis_;
};

}  // namespace gqc

#endif  // GQC_DL_TBOX_H_
