#ifndef GQC_DL_TYPES_H_
#define GQC_DL_TYPES_H_

#include <vector>

#include "src/dl/tbox.h"
#include "src/graph/type.h"

namespace gqc {

/// Checks whether the maximal type `mask` (over `space`) satisfies every
/// Boolean CI of `tbox`. The support must cover every concept mentioned in a
/// Boolean CI of the TBox (asserted).
bool MaskSatisfiesBooleanCis(const TypeSpace& space, uint64_t mask,
                             const NormalTBox& tbox);

/// Enumerates all maximal types over the support of `space` that satisfy the
/// Boolean CIs of `tbox` (restriction CIs are ignored here — they are handled
/// by the engines' fixpoints). Requires space.arity() <= 28. The result is
/// ascending (and therefore deduplicated), so it can seed a MaskIndex.
std::vector<uint64_t> EnumerateLocallyConsistentTypes(const TypeSpace& space,
                                                      const NormalTBox& tbox);

/// Builds the support Γ₀ as the union of the given concept-id groups,
/// deduplicated.
TypeSpace MakeSupport(const std::vector<std::vector<uint32_t>>& groups);

/// A conjunction of literals precompiled to word masks over a TypeSpace:
/// `pos` bits must be set, `neg` bits must be clear. A positive literal whose
/// concept is outside the support can never hold on a maximal type over the
/// space (satisfiable_ = false); a negative literal outside the support
/// always holds and compiles away. Holds() is then two ANDs and two compares
/// instead of a per-literal binary search — the innermost test of every
/// type-elimination kernel.
class CompiledLiterals {
 public:
  CompiledLiterals() = default;
  CompiledLiterals(const TypeSpace& space, const std::vector<Literal>& literals);
  /// Convenience: compile the literals of a (partial) type.
  CompiledLiterals(const TypeSpace& space, const Type& type);

  bool Holds(uint64_t mask) const {
    return satisfiable_ && (mask & pos_) == pos_ && (mask & neg_) == 0;
  }
  /// True if some mask over the space can satisfy the conjunction.
  bool satisfiable() const { return satisfiable_; }

 private:
  void Add(const TypeSpace& space, Literal l);

  uint64_t pos_ = 0;
  uint64_t neg_ = 0;
  bool satisfiable_ = true;
};

/// The Boolean CIs of a TBox precompiled against one TypeSpace, so the
/// 2^arity local-consistency scans test each mask with a handful of word
/// operations. The support must cover every concept mentioned in a Boolean
/// CI (asserted at compile time, matching MaskSatisfiesBooleanCis).
class CompiledBooleanCis {
 public:
  CompiledBooleanCis(const TypeSpace& space, const NormalTBox& tbox);

  bool Satisfies(uint64_t mask) const {
    for (const Ci& ci : cis_) {
      if ((mask & ci.lhs_pos) != ci.lhs_pos || (mask & ci.lhs_neg) != 0) {
        continue;  // lhs does not apply
      }
      if ((mask & ci.rhs_pos) != 0 || (ci.rhs_neg & ~mask) != 0) {
        continue;  // some rhs disjunct holds
      }
      return false;
    }
    return true;
  }

 private:
  struct Ci {
    uint64_t lhs_pos = 0;  // bits that must be set for the lhs to apply
    uint64_t lhs_neg = 0;  // bits that must be clear for the lhs to apply
    uint64_t rhs_pos = 0;  // rhs holds if any of these bits is set
    uint64_t rhs_neg = 0;  // rhs holds if any of these bits is clear
  };
  std::vector<Ci> cis_;
};

/// Dense index over an enumerated ascending list of maximal-type masks.
///
/// The §6/App-B fixpoints quotient their work by *enumerated type*, so giving
/// each enumerated mask a dense index lets frontiers, feasible/productive
/// sets, and Θ constraints live in DynamicBitsets over type indices —
/// intersection, union, and equality become word-parallel instead of
/// red-black-tree walks.
class MaskIndex {
 public:
  MaskIndex() = default;
  /// `masks` must be strictly ascending (EnumerateLocallyConsistentTypes
  /// output qualifies).
  explicit MaskIndex(std::vector<uint64_t> masks);

  std::size_t size() const { return masks_.size(); }
  uint64_t MaskAt(std::size_t index) const { return masks_[index]; }
  const std::vector<uint64_t>& masks() const { return masks_; }

  /// Dense index of `mask`, or npos if it was not enumerated.
  std::size_t IndexOf(uint64_t mask) const;
  static constexpr std::size_t npos = SIZE_MAX;

 private:
  std::vector<uint64_t> masks_;
};

}  // namespace gqc

#endif  // GQC_DL_TYPES_H_
