#ifndef GQC_DL_TYPES_H_
#define GQC_DL_TYPES_H_

#include <vector>

#include "src/dl/tbox.h"
#include "src/graph/type.h"

namespace gqc {

/// Checks whether the maximal type `mask` (over `space`) satisfies every
/// Boolean CI of `tbox`. The support must cover every concept mentioned in a
/// Boolean CI of the TBox (asserted).
bool MaskSatisfiesBooleanCis(const TypeSpace& space, uint64_t mask,
                             const NormalTBox& tbox);

/// Enumerates all maximal types over the support of `space` that satisfy the
/// Boolean CIs of `tbox` (restriction CIs are ignored here — they are handled
/// by the engines' fixpoints). Requires space.arity() <= 28.
std::vector<uint64_t> EnumerateLocallyConsistentTypes(const TypeSpace& space,
                                                      const NormalTBox& tbox);

/// Builds the support Γ₀ as the union of the given concept-id groups,
/// deduplicated.
TypeSpace MakeSupport(const std::vector<std::vector<uint32_t>>& groups);

}  // namespace gqc

#endif  // GQC_DL_TYPES_H_
