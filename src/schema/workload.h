#ifndef GQC_SCHEMA_WORKLOAD_H_
#define GQC_SCHEMA_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dl/tbox.h"
#include "src/query/ucrpq.h"

namespace gqc {

/// Deterministic generator of schema + query-pair workloads, used by the
/// randomized benchmarks and cross-validation suites. Instances are built
/// from a small pool of node types and roles so that the exact engines'
/// type-space budgets are exercised but not always exceeded.
struct WorkloadOptions {
  uint64_t seed = 1;
  std::size_t node_types = 3;
  std::size_t roles = 2;
  std::size_t schema_constraints = 3;
  /// Atom budget per generated query.
  std::size_t query_atoms = 2;
  /// Generate only simple queries (single roles and role-set stars).
  bool simple_queries = true;
  /// Allow inverse roles in schema constraints.
  bool allow_inverse = false;
  /// Allow counting (at-least/at-most n >= 2) in schema constraints.
  bool allow_counting = true;
};

struct WorkloadInstance {
  std::string schema_text;  // concept syntax, ParseTBox-compatible
  std::string p_text;       // UC2RPQ syntax
  std::string q_text;
};

/// Generates `count` instances; instance i uses seed options.seed + i.
std::vector<WorkloadInstance> GenerateWorkload(const WorkloadOptions& options,
                                               std::size_t count);

/// One instance for a specific seed (deterministic).
WorkloadInstance GenerateInstance(const WorkloadOptions& options, uint64_t seed);

}  // namespace gqc

#endif  // GQC_SCHEMA_WORKLOAD_H_
