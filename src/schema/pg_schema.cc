#include "src/schema/pg_schema.h"

namespace gqc {

uint32_t PgSchema::NodeType(const std::string& label) {
  return vocab_->ConceptId(label);
}

void PgSchema::Subtype(const std::string& sub, const std::string& super) {
  subtypes_.emplace_back(NodeType(sub), NodeType(super));
}

void PgSchema::Disjoint(const std::string& a, const std::string& b) {
  disjoint_.emplace_back(NodeType(a), NodeType(b));
}

void PgSchema::EdgeType(const std::string& role, const std::string& src,
                        const std::string& dst) {
  edges_.push_back({vocab_->RoleId(role), NodeType(src), NodeType(dst)});
}

void PgSchema::Participation(const std::string& src, const std::string& role,
                             const std::string& dst, uint32_t min) {
  counts_.push_back(
      {NodeType(src), Role::Forward(vocab_->RoleId(role)), NodeType(dst), min, true});
}

void PgSchema::Cardinality(const std::string& src, const std::string& role,
                           const std::string& dst, uint32_t max) {
  counts_.push_back(
      {NodeType(src), Role::Forward(vocab_->RoleId(role)), NodeType(dst), max, false});
}

void PgSchema::Key(const std::string& src, const std::string& role,
                   const std::string& dst) {
  // Each Dst is the r-target of at most one Src: Dst ⊑ ∃^{≤1} r⁻.Src.
  counts_.push_back(
      {NodeType(dst), Role::Inverse(vocab_->RoleId(role)), NodeType(src), 1, false});
}

TBox PgSchema::Compile() const {
  TBox tbox;
  for (const auto& [sub, super] : subtypes_) {
    tbox.Add(ConceptNode::Name(sub), ConceptNode::Name(super));
  }
  for (const auto& [a, b] : disjoint_) {
    tbox.Add(ConceptNode::And({ConceptNode::Name(a), ConceptNode::Name(b)}),
             ConceptNode::Bottom());
  }
  for (const auto& e : edges_) {
    // ⊤ ⊑ ∀r.Dst: every r-target is a Dst.
    tbox.Add(ConceptNode::Top(),
             ConceptNode::Forall(Role::Forward(e.role), ConceptNode::Name(e.dst)));
    if (avoid_inverse_) {
      // ⊤ ⊑ ∀r⁻.Src flipped: ¬Src ⊑ ∀r.⊥ — non-sources have no r-edges.
      tbox.Add(ConceptNode::Not(ConceptNode::Name(e.src)),
               ConceptNode::Forall(Role::Forward(e.role), ConceptNode::Bottom()));
    } else {
      tbox.Add(ConceptNode::Top(),
               ConceptNode::Forall(Role::Inverse(e.role), ConceptNode::Name(e.src)));
    }
  }
  for (const auto& c : counts_) {
    ConceptPtr restriction =
        c.at_least ? ConceptNode::AtLeast(c.n, c.role, ConceptNode::Name(c.dst))
                   : ConceptNode::AtMost(c.n, c.role, ConceptNode::Name(c.dst));
    tbox.Add(ConceptNode::Name(c.src), std::move(restriction));
  }
  return tbox;
}

TBox CreditCardSchema(Vocabulary* vocab, bool avoid_inverse) {
  PgSchema schema(vocab);
  schema.set_avoid_inverse(avoid_inverse);
  schema.Subtype("PremCC", "CredCard");
  schema.Subtype("RetailCompany", "Company");
  schema.Disjoint("Customer", "CredCard");
  schema.Disjoint("RwrdProg", "Company");
  schema.Disjoint("Customer", "RwrdProg");
  schema.Disjoint("Customer", "Company");
  schema.Disjoint("CredCard", "Company");
  schema.Disjoint("CredCard", "RwrdProg");
  schema.EdgeType("owns", "Customer", "CredCard");
  schema.EdgeType("earns", "PremCC", "RwrdProg");
  schema.EdgeType("partner", "RwrdProg", "RetailCompany");
  schema.EdgeType("partof", "Company", "Company");
  // Each customer owns at least one credit card.
  schema.Participation("Customer", "owns", "CredCard");
  // Each premier card participates in at most 3 reward programs.
  schema.Cardinality("PremCC", "earns", "RwrdProg", 3);
  return schema.Compile();
}

}  // namespace gqc
