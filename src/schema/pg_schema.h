#ifndef GQC_SCHEMA_PG_SCHEMA_H_
#define GQC_SCHEMA_PG_SCHEMA_H_

#include <string>
#include <vector>

#include "src/dl/tbox.h"

namespace gqc {

/// A PG-Schema-flavoured surface schema for property graphs with single
/// labels on edges, compiled into an ALCQI TBox (§1–2: over such graphs,
/// ALCQI captures PG-Types and the practically relevant subset of PG-Keys —
/// participation, cardinality, and unary key constraints).
///
/// Compilation rules:
///  - node type hierarchy:        Sub ⊑ Super
///  - disjoint node types:        A ⊓ B ⊑ ⊥
///  - edge typing r: Src -> Dst:  ⊤ ⊑ ∀r.Dst and ⊤ ⊑ ∀r⁻.Src
///    (with `avoid_inverse`, the second becomes ¬Src ⊑ ∀r.¬AnyNode plus
///    ⊤ ⊑ AnyNode, the flipped contrapositive over a universal name)
///  - participation:              Src ⊑ ∃r.Dst        (min = 1)
///                                Src ⊑ ∃^{≥n} r.Dst  (min = n)
///  - cardinality (max n):        Src ⊑ ∃^{≤n} r.Dst
///  - unary key (at most one Src r-links to each Dst):
///                                Dst ⊑ ∃^{≤1} r⁻.Src
class PgSchema {
 public:
  explicit PgSchema(Vocabulary* vocab) : vocab_(vocab) {}

  /// Declares a node type; returns its concept id.
  uint32_t NodeType(const std::string& label);
  /// Declares Sub as a subtype of Super (generalization).
  void Subtype(const std::string& sub, const std::string& super);
  /// Declares two node types as disjoint.
  void Disjoint(const std::string& a, const std::string& b);

  /// Declares an edge type r with endpoint label constraints.
  void EdgeType(const std::string& role, const std::string& src,
                const std::string& dst);

  /// Participation: every Src has at least `min` r-edges to Dst nodes.
  void Participation(const std::string& src, const std::string& role,
                     const std::string& dst, uint32_t min = 1);
  /// Cardinality: every Src has at most `max` r-edges to Dst nodes.
  void Cardinality(const std::string& src, const std::string& role,
                   const std::string& dst, uint32_t max);
  /// Unary key: each Dst is the r-target of at most one Src.
  void Key(const std::string& src, const std::string& role, const std::string& dst);

  /// When true, edge-typing constraints avoid inverse roles (the §1 remark
  /// that backward constraints can be flipped to the contrapositive).
  void set_avoid_inverse(bool v) { avoid_inverse_ = v; }

  /// Compiles the accumulated declarations to a TBox.
  TBox Compile() const;

 private:
  struct EdgeDecl {
    uint32_t role;
    uint32_t src;
    uint32_t dst;
  };
  struct CountDecl {
    uint32_t src;
    Role role;
    uint32_t dst;
    uint32_t n;
    bool at_least;
  };

  Vocabulary* vocab_;
  bool avoid_inverse_ = false;
  std::vector<std::pair<uint32_t, uint32_t>> subtypes_;
  std::vector<std::pair<uint32_t, uint32_t>> disjoint_;
  std::vector<EdgeDecl> edges_;
  std::vector<CountDecl> counts_;
};

/// The paper's running example (Fig. 1 / Example 1.1): customers own credit
/// cards; premier cards earn rewards from partner retail companies and their
/// subsidiaries; each premier card participates in at most 3 reward programs.
/// Returns the compiled TBox.
TBox CreditCardSchema(Vocabulary* vocab, bool avoid_inverse = false);

}  // namespace gqc

#endif  // GQC_SCHEMA_PG_SCHEMA_H_
