#include "src/schema/workload.h"

#include <random>

namespace gqc {

namespace {

class InstanceBuilder {
 public:
  InstanceBuilder(const WorkloadOptions& options, uint64_t seed)
      : options_(options), rng_(seed) {}

  WorkloadInstance Build() {
    WorkloadInstance out;
    for (std::size_t i = 0; i < options_.schema_constraints; ++i) {
      out.schema_text += Constraint() + "\n";
    }
    out.p_text = Query();
    out.q_text = Query();
    return out;
  }

 private:
  std::string Concept() {
    std::string s = "T";
    s += std::to_string(rng_() % options_.node_types);
    return s;
  }
  std::string RoleName() {
    std::string s = "r";
    s += std::to_string(rng_() % options_.roles);
    return s;
  }
  std::string RoleRef() {
    std::string r = RoleName();
    if (options_.allow_inverse && rng_() % 4 == 0) r += "-";
    return r;
  }

  std::string Constraint() {
    switch (rng_() % 5) {
      case 0:  // hierarchy
        return Concept() + " <= " + Concept();
      case 1:  // disjointness
        return Concept() + " and " + Concept() + " <= bottom";
      case 2:  // edge typing
        return "top <= forall " + RoleRef() + "." + Concept();
      case 3:  // participation
        return Concept() + " <= exists " + RoleRef() + "." + Concept();
      default: {  // counting
        if (!options_.allow_counting) return Concept() + " <= " + Concept();
        std::string kind = rng_() % 2 ? "atleast" : "atmost";
        uint32_t n = 1 + static_cast<uint32_t>(rng_() % 2);
        return Concept() + " <= " + kind + " " + std::to_string(n) + " " +
               RoleRef() + "." + Concept();
      }
    }
  }

  std::string Var(std::size_t i) {
    std::string s = "x";
    s += std::to_string(i);
    return s;
  }

  std::string Query() {
    // A connected chain of binary atoms with sprinkled unary atoms.
    std::string out = Concept() + "(" + Var(0) + ")";
    for (std::size_t i = 0; i < options_.query_atoms; ++i) {
      if (options_.simple_queries && rng_() % 3 == 0) {
        // Star over a role set.
        std::string roles = RoleName();
        if (options_.roles > 1 && rng_() % 2 == 0) roles += " + " + RoleName();
        out += ", ((" + roles + ")*)(" + Var(i) + ", " + Var(i + 1) + ")";
      } else if (!options_.simple_queries && rng_() % 3 == 0) {
        out += ", (" + RoleName() + " . " + RoleName() + ")(" + Var(i) + ", " +
               Var(i + 1) + ")";
      } else {
        out += ", " + RoleName() + "(" + Var(i) + ", " + Var(i + 1) + ")";
      }
      if (rng_() % 2 == 0) {
        out += ", " + Concept() + "(" + Var(i + 1) + ")";
      }
    }
    return out;
  }

  const WorkloadOptions& options_;
  std::mt19937_64 rng_;
};

}  // namespace

WorkloadInstance GenerateInstance(const WorkloadOptions& options, uint64_t seed) {
  return InstanceBuilder(options, seed).Build();
}

std::vector<WorkloadInstance> GenerateWorkload(const WorkloadOptions& options,
                                               std::size_t count) {
  std::vector<WorkloadInstance> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(GenerateInstance(options, options.seed + i));
  }
  return out;
}

}  // namespace gqc
