#include "src/schema/schema_parser.h"

#include <sstream>

namespace gqc {

namespace {

Result<TBox> Error(const std::string& message, std::size_t line) {
  return Result<TBox>::Error("schema: " + message + " (line " +
                             std::to_string(line) + ")");
}

}  // namespace

Result<TBox> ParseSchema(std::string_view text, Vocabulary* vocab) {
  PgSchema schema(vocab);
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;
    if (keyword == "node") {
      std::string label;
      if (!(ls >> label)) return Error("'node' needs a label", line_no);
      schema.NodeType(label);
    } else if (keyword == "subtype") {
      std::string sub, super;
      if (!(ls >> sub >> super)) return Error("'subtype' needs two labels", line_no);
      schema.Subtype(sub, super);
    } else if (keyword == "disjoint") {
      std::string a, b;
      if (!(ls >> a >> b)) return Error("'disjoint' needs two labels", line_no);
      schema.Disjoint(a, b);
    } else if (keyword == "edge" || keyword == "key") {
      std::string role, src, arrow, dst;
      if (!(ls >> role >> src >> arrow >> dst) || arrow != "->") {
        return Error("'" + keyword + "' needs <role> <src> -> <dst>", line_no);
      }
      if (keyword == "edge") {
        schema.EdgeType(role, src, dst);
      } else {
        schema.Key(src, role, dst);
      }
    } else if (keyword == "participation" || keyword == "cardinality") {
      std::string src, role, dst, bound_kw;
      uint32_t n = 0;
      if (!(ls >> src >> role >> dst >> bound_kw >> n)) {
        return Error("'" + keyword + "' needs <src> <role> <dst> min|max <n>",
                     line_no);
      }
      if (keyword == "participation") {
        if (bound_kw != "min") return Error("participation uses 'min'", line_no);
        schema.Participation(src, role, dst, n);
      } else {
        if (bound_kw != "max") return Error("cardinality uses 'max'", line_no);
        schema.Cardinality(src, role, dst, n);
      }
    } else if (keyword == "option") {
      std::string opt;
      if (!(ls >> opt)) return Error("'option' needs a name", line_no);
      if (opt == "avoid_inverse") {
        schema.set_avoid_inverse(true);
      } else {
        return Error("unknown option '" + opt + "'", line_no);
      }
    } else {
      return Error("unknown keyword '" + keyword + "'", line_no);
    }
  }
  return schema.Compile();
}

}  // namespace gqc
