#ifndef GQC_SCHEMA_SCHEMA_PARSER_H_
#define GQC_SCHEMA_SCHEMA_PARSER_H_

#include <string_view>

#include "src/schema/pg_schema.h"
#include "src/util/result.h"

namespace gqc {

/// Parses the line-based PG-Schema-flavoured surface syntax and compiles it
/// to a TBox:
///
///   # comment
///   node Customer                         -- declare a node type
///   subtype PremCC CredCard               -- PremCC ⊑ CredCard
///   disjoint Customer CredCard            -- Customer ⊓ CredCard ⊑ ⊥
///   edge owns Customer -> CredCard        -- edge typing
///   participation Customer owns CredCard min 1
///   cardinality PremCC earns RwrdProg max 3
///   key owns Customer -> CredCard         -- each CredCard has ≤1 owner
///   option avoid_inverse                  -- flip backward typing CIs
Result<TBox> ParseSchema(std::string_view text, Vocabulary* vocab);

}  // namespace gqc

#endif  // GQC_SCHEMA_SCHEMA_PARSER_H_
