#include "src/automata/product.h"

#include <deque>

namespace gqc {

DynamicBitset AtomTargets(const Graph& g, const Semiautomaton& a, uint32_t s,
                          uint32_t t, bool allow_empty, NodeId u) {
  const std::size_t states = a.StateCount();
  const std::size_t nodes = g.NodeCount();
  DynamicBitset targets(nodes);
  DynamicBitset visited(nodes * states);

  auto idx = [states](NodeId v, uint32_t q) { return std::size_t{v} * states + q; };

  std::deque<std::pair<NodeId, uint32_t>> queue;
  queue.emplace_back(u, s);
  visited.Set(idx(u, s));
  if (s == t || allow_empty) targets.Set(u);

  while (!queue.empty()) {
    auto [v, q] = queue.front();
    queue.pop_front();
    for (const auto& [sym, q2] : a.Out(q)) {
      if (sym.is_test()) {
        if (g.SatisfiesLiteral(v, sym.literal()) && !visited.Test(idx(v, q2))) {
          visited.Set(idx(v, q2));
          if (q2 == t) targets.Set(v);
          queue.emplace_back(v, q2);
        }
      } else {
        for (NodeId w : g.Successors(v, sym.role())) {
          if (!visited.Test(idx(w, q2))) {
            visited.Set(idx(w, q2));
            if (q2 == t) targets.Set(w);
            queue.emplace_back(w, q2);
          }
        }
      }
    }
  }
  return targets;
}

std::vector<DynamicBitset> AtomRelation(const Graph& g, const Semiautomaton& a,
                                        uint32_t s, uint32_t t, bool allow_empty) {
  std::vector<DynamicBitset> relation;
  relation.reserve(g.NodeCount());
  for (NodeId u = 0; u < g.NodeCount(); ++u) {
    relation.push_back(AtomTargets(g, a, s, t, allow_empty, u));
  }
  return relation;
}

bool AtomHolds(const Graph& g, const Semiautomaton& a, uint32_t s, uint32_t t,
               bool allow_empty, NodeId u, NodeId v) {
  return AtomTargets(g, a, s, t, allow_empty, u).Test(v);
}

}  // namespace gqc
