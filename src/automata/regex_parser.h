#ifndef GQC_AUTOMATA_REGEX_PARSER_H_
#define GQC_AUTOMATA_REGEX_PARSER_H_

#include <string_view>

#include "src/automata/regex.h"
#include "src/util/result.h"

namespace gqc {

/// Parses the textual regular-expression syntax used throughout examples and
/// tests. Grammar:
///
///   expr    := term ('+' term)*               -- union
///   term    := factor ('.' factor)*           -- concatenation
///   factor  := atom ('*' | '^+')*             -- Kleene star / plus
///   atom    := 'eps'                          -- empty word
///            | IDENT                          -- forward role, e.g. owns
///            | IDENT '-'                      -- inverse role, e.g. owns-
///            | '[' '!'? IDENT ']'             -- node-label test, e.g. [A], [!A]
///            | '(' expr ')'
///
/// Role and concept names are interned into `vocab`.
Result<RegexPtr> ParseRegex(std::string_view text, Vocabulary* vocab);

}  // namespace gqc

#endif  // GQC_AUTOMATA_REGEX_PARSER_H_
