#include "src/automata/semiautomaton.h"

#include <algorithm>
#include <deque>
#include <set>

#include "src/automata/validate.h"
#include "src/util/invariant.h"

namespace gqc {

uint32_t Semiautomaton::AddState() {
  uint32_t id = static_cast<uint32_t>(out_.size());
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

void Semiautomaton::AddTransition(uint32_t from, Symbol symbol, uint32_t to) {
  auto entry = std::make_pair(symbol, to);
  if (std::find(out_[from].begin(), out_[from].end(), entry) != out_[from].end()) {
    return;
  }
  out_[from].emplace_back(symbol, to);
  in_[to].emplace_back(symbol, from);
  ++transition_count_;
}

uint32_t Semiautomaton::DisjointUnion(const Semiautomaton& other) {
  uint32_t offset = static_cast<uint32_t>(StateCount());
  for (uint32_t s = 0; s < other.StateCount(); ++s) AddState();
  for (uint32_t s = 0; s < other.StateCount(); ++s) {
    for (const auto& [sym, t] : other.Out(s)) {
      AddTransition(offset + s, sym, offset + t);
    }
  }
  return offset;
}

Semiautomaton Semiautomaton::Reversed() const {
  Semiautomaton rev;
  for (uint32_t s = 0; s < StateCount(); ++s) rev.AddState();
  for (uint32_t s = 0; s < StateCount(); ++s) {
    for (const auto& [sym, t] : Out(s)) rev.AddTransition(t, sym, s);
  }
  return rev;
}

std::vector<Symbol> Semiautomaton::Alphabet() const {
  std::set<Symbol> symbols;
  for (uint32_t s = 0; s < StateCount(); ++s) {
    for (const auto& [sym, t] : Out(s)) symbols.insert(sym);
  }
  return std::vector<Symbol>(symbols.begin(), symbols.end());
}

std::vector<bool> Semiautomaton::ReachableStates(uint32_t from) const {
  std::vector<bool> seen(StateCount(), false);
  std::deque<uint32_t> queue{from};
  seen[from] = true;
  while (!queue.empty()) {
    uint32_t s = queue.front();
    queue.pop_front();
    for (const auto& [sym, t] : Out(s)) {
      if (!seen[t]) {
        seen[t] = true;
        queue.push_back(t);
      }
    }
  }
  return seen;
}

std::vector<bool> Semiautomaton::CoReachableStates(uint32_t to) const {
  std::vector<bool> seen(StateCount(), false);
  std::deque<uint32_t> queue{to};
  seen[to] = true;
  while (!queue.empty()) {
    uint32_t s = queue.front();
    queue.pop_front();
    for (const auto& [sym, t] : In(s)) {
      if (!seen[t]) {
        seen[t] = true;
        queue.push_back(t);
      }
    }
  }
  return seen;
}

namespace {

/// Thompson construction scratch automaton with explicit epsilon edges.
struct EpsNfa {
  struct Trans {
    uint32_t to;
    bool eps;
    Symbol symbol;
  };
  std::vector<std::vector<Trans>> out;

  uint32_t AddState() {
    out.emplace_back();
    return static_cast<uint32_t>(out.size() - 1);
  }
  void AddEps(uint32_t a, uint32_t b) { out[a].push_back({b, true, {}}); }
  void AddSym(uint32_t a, Symbol s, uint32_t b) { out[a].push_back({b, false, s}); }
};

struct Fragment {
  uint32_t start;
  uint32_t end;
};

Fragment BuildThompson(const RegexPtr& r, EpsNfa* nfa) {
  switch (r->kind) {
    case RegexKind::kEpsilon: {
      uint32_t s = nfa->AddState();
      uint32_t e = nfa->AddState();
      nfa->AddEps(s, e);
      return {s, e};
    }
    case RegexKind::kSymbol: {
      uint32_t s = nfa->AddState();
      uint32_t e = nfa->AddState();
      nfa->AddSym(s, r->symbol, e);
      return {s, e};
    }
    case RegexKind::kConcat: {
      Fragment acc = BuildThompson(r->children[0], nfa);
      for (std::size_t i = 1; i < r->children.size(); ++i) {
        Fragment next = BuildThompson(r->children[i], nfa);
        nfa->AddEps(acc.end, next.start);
        acc.end = next.end;
      }
      return acc;
    }
    case RegexKind::kUnion: {
      uint32_t s = nfa->AddState();
      uint32_t e = nfa->AddState();
      for (const auto& c : r->children) {
        Fragment f = BuildThompson(c, nfa);
        nfa->AddEps(s, f.start);
        nfa->AddEps(f.end, e);
      }
      return {s, e};
    }
    case RegexKind::kStar: {
      uint32_t s = nfa->AddState();
      uint32_t e = nfa->AddState();
      Fragment f = BuildThompson(r->children[0], nfa);
      nfa->AddEps(s, e);
      nfa->AddEps(s, f.start);
      nfa->AddEps(f.end, f.start);
      nfa->AddEps(f.end, e);
      return {s, e};
    }
  }
  return {0, 0};
}

std::vector<std::vector<bool>> EpsilonClosure(const EpsNfa& nfa) {
  const std::size_t n = nfa.out.size();
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  for (uint32_t s = 0; s < n; ++s) {
    std::deque<uint32_t> queue{s};
    closure[s][s] = true;
    while (!queue.empty()) {
      uint32_t u = queue.front();
      queue.pop_front();
      for (const auto& t : nfa.out[u]) {
        if (t.eps && !closure[s][t.to]) {
          closure[s][t.to] = true;
          queue.push_back(t.to);
        }
      }
    }
  }
  return closure;
}

}  // namespace

CompiledRegex CompileRegex(const RegexPtr& regex) {
  CompiledRegex result;
  CompiledRef ref = CompileRegexInto(regex, &result.automaton);
  result.start = ref.start;
  result.end = ref.end;
  result.nullable = ref.nullable;
  GQC_AUDIT(ValidateCompiledRegex(result));
  return result;
}

CompiledRef CompileRegexInto(const RegexPtr& regex, Semiautomaton* target) {
  EpsNfa eps;
  Fragment frag = BuildThompson(regex, &eps);
  auto closure = EpsilonClosure(eps);

  uint32_t offset = static_cast<uint32_t>(target->StateCount());
  for (std::size_t s = 0; s < eps.out.size(); ++s) target->AddState();

  // Two-sided epsilon elimination: (p, a, q) whenever p =eps*=> p',
  // p' --a--> q', q' =eps*=> q. A non-empty word then runs start -> end
  // exactly when the Thompson automaton accepts it.
  const std::size_t n = eps.out.size();
  for (uint32_t p = 0; p < n; ++p) {
    for (uint32_t mid = 0; mid < n; ++mid) {
      if (!closure[p][mid]) continue;
      for (const auto& t : eps.out[mid]) {
        if (t.eps) continue;
        for (uint32_t q = 0; q < n; ++q) {
          if (closure[t.to][q]) {
            target->AddTransition(offset + p, t.symbol, offset + q);
          }
        }
      }
    }
  }
  return CompiledRef{offset + frag.start, offset + frag.end, IsNullable(regex)};
}

}  // namespace gqc
