#ifndef GQC_AUTOMATA_SEMIAUTOMATON_H_
#define GQC_AUTOMATA_SEMIAUTOMATON_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/automata/regex.h"
#include "src/automata/symbol.h"

namespace gqc {

/// A (nondeterministic) semiautomaton (§2, after [26]): states and a
/// transition relation over Γ± ∪ Σ±, with no initial/final states. 2RPQ atoms
/// pick out state pairs (s, s'); a run may begin in any state.
///
/// There are no epsilon transitions: a length-0 run begins and ends in the
/// same state, so an atom A_{s,s} matches the empty word by definition, and
/// nullable regexes additionally record an `allow_empty` flag on their atom.
class Semiautomaton {
 public:
  uint32_t AddState();
  std::size_t StateCount() const { return out_.size(); }

  /// Adds transition from --symbol--> to (idempotent).
  void AddTransition(uint32_t from, Symbol symbol, uint32_t to);

  const std::vector<std::pair<Symbol, uint32_t>>& Out(uint32_t s) const {
    return out_[s];
  }
  const std::vector<std::pair<Symbol, uint32_t>>& In(uint32_t s) const { return in_[s]; }

  std::size_t TransitionCount() const { return transition_count_; }

  /// Appends a disjoint copy of `other`; returns the state-id offset.
  uint32_t DisjointUnion(const Semiautomaton& other);

  /// The reversed semiautomaton: transition (s, a, t) becomes (t, a, s).
  /// Used in App. A.2 when flipping between forward and backward reasoning.
  Semiautomaton Reversed() const;

  /// All distinct symbols on transitions.
  std::vector<Symbol> Alphabet() const;

  /// States reachable from `from` (inclusive) via any transitions.
  std::vector<bool> ReachableStates(uint32_t from) const;
  /// States that can reach `to` (inclusive).
  std::vector<bool> CoReachableStates(uint32_t to) const;

 private:
  std::vector<std::vector<std::pair<Symbol, uint32_t>>> out_;
  std::vector<std::vector<std::pair<Symbol, uint32_t>>> in_;
  std::size_t transition_count_ = 0;
};

/// A regex compiled to semiautomaton form: matching words are exactly the
/// non-empty words with a run from `start` to `end`, plus the empty word iff
/// `nullable` (the atom then also matches with both variables at one node).
struct CompiledRegex {
  Semiautomaton automaton;
  uint32_t start = 0;
  uint32_t end = 0;
  bool nullable = false;
};

/// Compiles a regex via Thompson construction followed by two-sided
/// epsilon-elimination, so the result has no epsilon transitions and is
/// linear in |regex| states.
CompiledRegex CompileRegex(const RegexPtr& regex);

/// Compiles `regex` into `target` (disjoint union); returns (start, end,
/// nullable) with state ids relative to `target`.
struct CompiledRef {
  uint32_t start = 0;
  uint32_t end = 0;
  bool nullable = false;
};
CompiledRef CompileRegexInto(const RegexPtr& regex, Semiautomaton* target);

}  // namespace gqc

#endif  // GQC_AUTOMATA_SEMIAUTOMATON_H_
