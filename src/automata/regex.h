#ifndef GQC_AUTOMATA_REGEX_H_
#define GQC_AUTOMATA_REGEX_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/automata/symbol.h"

namespace gqc {

enum class RegexKind { kEpsilon, kSymbol, kConcat, kUnion, kStar };

struct Regex;
using RegexPtr = std::shared_ptr<const Regex>;

/// Regular expressions over Γ± ∪ Σ± using concatenation, union, and Kleene
/// star (§2). Immutable shared AST nodes.
struct Regex {
  RegexKind kind;
  Symbol symbol;                  // kSymbol only
  std::vector<RegexPtr> children; // kConcat/kUnion: >= 2; kStar: exactly 1

  static RegexPtr Epsilon();
  static RegexPtr Sym(Symbol s);
  static RegexPtr RoleSym(Role r) { return Sym(Symbol::FromRole(r)); }
  static RegexPtr TestSym(Literal l) { return Sym(Symbol::FromTest(l)); }
  static RegexPtr Concat(std::vector<RegexPtr> parts);
  static RegexPtr Union(std::vector<RegexPtr> parts);
  static RegexPtr Star(RegexPtr inner);
  /// r+ = r . r*.
  static RegexPtr Plus(RegexPtr inner);
};

/// Number of symbol occurrences (the natural size measure |φ|).
std::size_t RegexSize(const RegexPtr& r);

/// True if the empty word belongs to the language.
bool IsNullable(const RegexPtr& r);

/// True if no inverse role occurs (one-way / CRPQ condition).
bool IsOneWay(const RegexPtr& r);

/// True if no node-label test occurs (test-free condition).
bool IsTestFree(const RegexPtr& r);

/// The paper's "simple" shapes: a single role r, or (r1 + ... + rn)* with all
/// ri in Σ±. If the regex is simple, returns the role set and whether it is
/// starred; otherwise std::nullopt.
struct SimpleShape {
  bool starred = false;
  std::vector<Role> roles;  // singleton when !starred
};
std::optional<SimpleShape> GetSimpleShape(const RegexPtr& r);

/// All symbols occurring in the regex (with duplicates removed).
std::vector<Symbol> RegexSymbols(const RegexPtr& r);

std::string RegexToString(const RegexPtr& r, const Vocabulary& vocab);

}  // namespace gqc

#endif  // GQC_AUTOMATA_REGEX_H_
