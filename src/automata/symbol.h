#ifndef GQC_AUTOMATA_SYMBOL_H_
#define GQC_AUTOMATA_SYMBOL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/graph/vocabulary.h"

namespace gqc {

/// One letter of the alphabet Γ± ∪ Σ± that regular expressions and
/// semiautomata range over (§2): either a role (edge traversal, possibly
/// inverse) or a node-label test (positive or complemented literal).
class Symbol {
 public:
  Symbol() : code_(0) {}

  static Symbol FromRole(Role r) { return Symbol((r.code() << 1) | 0); }
  static Symbol FromTest(Literal l) { return Symbol((l.code() << 1) | 1); }

  bool is_test() const { return code_ & 1; }
  bool is_role() const { return !is_test(); }

  Role role() const { return Role::FromCode(code_ >> 1); }
  Literal literal() const { return Literal::FromCode(code_ >> 1); }

  uint32_t code() const { return code_; }

  bool operator==(const Symbol&) const = default;
  auto operator<=>(const Symbol&) const = default;

  std::string ToString(const Vocabulary& vocab) const {
    return is_test() ? "[" + vocab.LiteralString(literal()) + "]"
                     : vocab.RoleString(role());
  }

 private:
  explicit Symbol(uint32_t code) : code_(code) {}
  uint32_t code_;
};

}  // namespace gqc

template <>
struct std::hash<gqc::Symbol> {
  std::size_t operator()(const gqc::Symbol& s) const {
    return std::hash<uint32_t>{}(s.code());
  }
};

#endif  // GQC_AUTOMATA_SYMBOL_H_
