#include "src/automata/regex_parser.h"

#include <cctype>

namespace gqc {

namespace {

class RegexParser {
 public:
  RegexParser(std::string_view text, Vocabulary* vocab) : text_(text), vocab_(vocab) {}

  Result<RegexPtr> Parse() {
    auto r = ParseExpr();
    if (!r.ok()) return r;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Result<RegexPtr>::Error("regex: trailing input at position " +
                                     std::to_string(pos_));
    }
    return r;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<RegexPtr> ParseExpr() {
    auto first = ParseTerm();
    if (!first.ok()) return first;
    std::vector<RegexPtr> parts{first.value()};
    while (Consume('+')) {
      auto next = ParseTerm();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    return Regex::Union(std::move(parts));
  }

  Result<RegexPtr> ParseTerm() {
    auto first = ParseFactor();
    if (!first.ok()) return first;
    std::vector<RegexPtr> parts{first.value()};
    while (Consume('.')) {
      auto next = ParseFactor();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    return Regex::Concat(std::move(parts));
  }

  Result<RegexPtr> ParseFactor() {
    auto atom = ParseAtom();
    if (!atom.ok()) return atom;
    RegexPtr r = atom.value();
    while (true) {
      if (Consume('*')) {
        r = Regex::Star(r);
      } else if (Peek('^')) {
        ++pos_;
        if (!Consume('+')) {
          return Result<RegexPtr>::Error("regex: expected '+' after '^'");
        }
        r = Regex::Plus(r);
      } else {
        break;
      }
    }
    return r;
  }

  Result<RegexPtr> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Result<RegexPtr>::Error("regex: unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      auto inner = ParseExpr();
      if (!inner.ok()) return inner;
      if (!Consume(')')) {
        return Result<RegexPtr>::Error("regex: expected ')'");
      }
      return inner;
    }
    if (c == '[') {
      ++pos_;
      SkipSpace();
      bool negated = Consume('!');
      auto name = ParseIdent();
      if (!name.ok()) return Result<RegexPtr>::Error(name.error());
      if (!Consume(']')) {
        return Result<RegexPtr>::Error("regex: expected ']'");
      }
      uint32_t id = vocab_->ConceptId(name.value());
      return Regex::TestSym(negated ? Literal::Negative(id) : Literal::Positive(id));
    }
    auto name = ParseIdent();
    if (!name.ok()) return Result<RegexPtr>::Error(name.error());
    if (name.value() == "eps") return Regex::Epsilon();
    bool inverse = Consume('-');
    uint32_t id = vocab_->RoleId(name.value());
    return Regex::RoleSym(inverse ? Role::Inverse(id) : Role::Forward(id));
  }

  Result<std::string> ParseIdent() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Result<std::string>::Error("regex: expected identifier at position " +
                                        std::to_string(start));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  Vocabulary* vocab_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<RegexPtr> ParseRegex(std::string_view text, Vocabulary* vocab) {
  return RegexParser(text, vocab).Parse();
}

}  // namespace gqc
