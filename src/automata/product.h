#ifndef GQC_AUTOMATA_PRODUCT_H_
#define GQC_AUTOMATA_PRODUCT_H_

#include <vector>

#include "src/automata/semiautomaton.h"
#include "src/graph/graph.h"
#include "src/util/bitset.h"

namespace gqc {

/// Computes the binary relation defined by the 2RPQ atom (a, s, t) over `g`
/// via product reachability: pair (u, v) is in the relation iff there is a
/// path witnessing a run of `a` from state `s` to state `t` starting at u and
/// ending at v (§2, match condition 3'). A length-0 run exists iff s == t;
/// `allow_empty` additionally admits (u, u) pairs for nullable regexes whose
/// compiled start/end states differ.
///
/// Returns one bitset of targets per source node.
std::vector<DynamicBitset> AtomRelation(const Graph& g, const Semiautomaton& a,
                                        uint32_t s, uint32_t t, bool allow_empty);

/// Targets reachable from the single source `u` (same semantics).
DynamicBitset AtomTargets(const Graph& g, const Semiautomaton& a, uint32_t s,
                          uint32_t t, bool allow_empty, NodeId u);

/// True if the specific pair (u, v) is in the atom relation.
bool AtomHolds(const Graph& g, const Semiautomaton& a, uint32_t s, uint32_t t,
               bool allow_empty, NodeId u, NodeId v);

}  // namespace gqc

#endif  // GQC_AUTOMATA_PRODUCT_H_
