#ifndef GQC_AUTOMATA_COMPILE_CACHE_H_
#define GQC_AUTOMATA_COMPILE_CACHE_H_

#include <memory>
#include <string>

#include "src/automata/semiautomaton.h"
#include "src/core/lifecycle.h"
#include "src/core/stats.h"
#include "src/util/fingerprint.h"
#include "src/util/flat_map.h"
#include "src/util/sync.h"

namespace gqc {

/// Memoizes regex -> semiautomaton compilation (Thompson construction plus
/// epsilon elimination). Queries in a workload reuse a small set of path
/// expressions, and every parse recompiles them from scratch; the cache
/// compiles each distinct regex once as a standalone CompiledRegex and
/// splices cached copies into per-query automata via DisjointUnion, which
/// preserves state order and per-state transition order — the resulting
/// automaton is structurally identical to a fresh compilation.
///
/// Keys are structural serializations at the symbol-code level. Symbol codes
/// are vocabulary-relative, so a cache must only be shared across
/// vocabularies that agree on the ids they share (the batch engine's
/// vocabulary layering guarantees this); colliding ids would in any case map
/// to code-identical regexes, which compile to the same code-level automaton.
///
/// Thread-safe; all mutable state is behind one mutex (compilation of a
/// missed entry runs outside the lock).
class RegexCompileCache {
 public:
  /// Compiles `regex` into `target` (disjoint union), like CompileRegexInto,
  /// reusing a cached standalone compilation when one exists. Records
  /// regex_hits / regex_misses on `stats` when non-null.
  CompiledRef CompileInto(const RegexPtr& regex, Semiautomaton* target,
                          PipelineStats* stats = nullptr);

  /// Bounds the cache (entries and/or estimated bytes; 0 = unbounded).
  /// Applies immediately and to every later insert.
  void SetBudget(const CacheBudget& budget);

  /// Drops ceil(size * pressure) lowest retain-score entries and shrinks the
  /// backing arrays; returns entries dropped. Dropping is lifecycle only —
  /// the regex recompiles identically on the next miss.
  std::size_t Evict(double pressure, PipelineStats* stats = nullptr);

  /// Summed resident-size estimates of the retained compilations.
  std::size_t retained_bytes() const;

  void Clear();
  std::size_t size() const;

 private:
  std::size_t EnforceBudgetLocked() GQC_REQUIRES(mu_);

  mutable Mutex mu_{kLockRankRegexCache, "regex-cache"};
  CacheBudget budget_ GQC_GUARDED_BY(mu_);
  uint64_t tick_ GQC_GUARDED_BY(mu_) = 0;
  /// Keyed by the structural serialization as an FpKey: probes compare the
  /// precomputed fingerprint first and the exact key text only on a match.
  FlatMap<FpKey, Retained<std::shared_ptr<const CompiledRegex>>, FpKeyHash>
      cache_ GQC_GUARDED_BY(mu_);
};

/// The cache key: a prefix encoding of the regex AST over symbol codes.
/// Exposed for tests.
std::string RegexStructuralKey(const RegexPtr& regex);

}  // namespace gqc

#endif  // GQC_AUTOMATA_COMPILE_CACHE_H_
