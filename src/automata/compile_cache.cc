#include "src/automata/compile_cache.h"

#include <chrono>

namespace gqc {

namespace {

void AppendKey(const RegexPtr& r, std::string* out) {
  if (r == nullptr) {
    out->push_back('0');
    return;
  }
  switch (r->kind) {
    case RegexKind::kEpsilon:
      out->push_back('e');
      return;
    case RegexKind::kSymbol:
      out->push_back('s');
      out->append(std::to_string(r->symbol.code()));
      out->push_back(';');
      return;
    case RegexKind::kConcat:
      out->push_back('c');
      break;
    case RegexKind::kUnion:
      out->push_back('u');
      break;
    case RegexKind::kStar:
      out->push_back('*');
      break;
  }
  out->append(std::to_string(r->children.size()));
  out->push_back('(');
  for (const RegexPtr& child : r->children) AppendKey(child, out);
  out->push_back(')');
}

}  // namespace

std::string RegexStructuralKey(const RegexPtr& regex) {
  std::string key;
  key.reserve(32);
  AppendKey(regex, &key);
  return key;
}

CompiledRef RegexCompileCache::CompileInto(const RegexPtr& regex,
                                           Semiautomaton* target,
                                           PipelineStats* stats) {
  FpKey key(RegexStructuralKey(regex));
  std::shared_ptr<const CompiledRegex> compiled;
  {
    MutexLock lock(&mu_);
    ++tick_;
    if (auto* hit = cache_.Find(key)) {
      hit->meta.touch = tick_;
      compiled = hit->value;
    }
  }
  if (compiled != nullptr) {
    if (stats) stats->regex_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (stats) stats->regex_misses.fetch_add(1, std::memory_order_relaxed);
    auto start = std::chrono::steady_clock::now();
    compiled = std::make_shared<const CompiledRegex>(CompileRegex(regex));
    auto elapsed = std::chrono::steady_clock::now() - start;
    auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    // States + transitions dominate the resident size of a compilation.
    std::size_t bytes = key.text().size() +
                        32 * compiled->automaton.StateCount() +
                        16 * compiled->automaton.TransitionCount() + 64;
    MutexLock lock(&mu_);
    auto [slot, inserted] = cache_.TryEmplace(std::move(key));
    if (inserted) {
      slot->value = compiled;
      slot->meta = {tick_, ns <= 0 ? 1 : static_cast<uint64_t>(ns), bytes};
      // Enforcement may evict this very entry and rehash; keep the local
      // ref, `slot` is dead after the call.
      EnforceBudgetLocked();
    } else {
      compiled = slot->value;
    }
  }
  uint32_t offset = target->DisjointUnion(compiled->automaton);
  CompiledRef ref;
  ref.start = compiled->start + offset;
  ref.end = compiled->end + offset;
  ref.nullable = compiled->nullable;
  return ref;
}

void RegexCompileCache::SetBudget(const CacheBudget& budget) {
  MutexLock lock(&mu_);
  budget_ = budget;
  EnforceBudgetLocked();
}

std::size_t RegexCompileCache::EnforceBudgetLocked() {
  if (!budget_.bounded()) return 0;
  std::size_t drop =
      OverBudgetDropCount(budget_, cache_.size(), RetainedBytes(cache_));
  return EvictLowestScore(&cache_, tick_, drop);
}

std::size_t RegexCompileCache::Evict(double pressure, PipelineStats* stats) {
  std::size_t bytes_freed = 0;
  std::size_t freed = 0;
  {
    MutexLock lock(&mu_);
    freed = EvictLowestScore(&cache_, tick_,
                             EvictionCount(cache_.size(), pressure),
                             &bytes_freed);
  }
  if (stats != nullptr && freed > 0) {
    stats->cache_evictions.fetch_add(freed, std::memory_order_relaxed);
    stats->cache_evicted_bytes.fetch_add(bytes_freed, std::memory_order_relaxed);
  }
  return freed;
}

std::size_t RegexCompileCache::retained_bytes() const {
  MutexLock lock(&mu_);
  return RetainedBytes(cache_);
}

void RegexCompileCache::Clear() {
  MutexLock lock(&mu_);
  cache_.Clear();
  tick_ = 0;
}

std::size_t RegexCompileCache::size() const {
  MutexLock lock(&mu_);
  return cache_.size();
}

}  // namespace gqc
