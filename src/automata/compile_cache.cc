#include "src/automata/compile_cache.h"

namespace gqc {

namespace {

void AppendKey(const RegexPtr& r, std::string* out) {
  if (r == nullptr) {
    out->push_back('0');
    return;
  }
  switch (r->kind) {
    case RegexKind::kEpsilon:
      out->push_back('e');
      return;
    case RegexKind::kSymbol:
      out->push_back('s');
      out->append(std::to_string(r->symbol.code()));
      out->push_back(';');
      return;
    case RegexKind::kConcat:
      out->push_back('c');
      break;
    case RegexKind::kUnion:
      out->push_back('u');
      break;
    case RegexKind::kStar:
      out->push_back('*');
      break;
  }
  out->append(std::to_string(r->children.size()));
  out->push_back('(');
  for (const RegexPtr& child : r->children) AppendKey(child, out);
  out->push_back(')');
}

}  // namespace

std::string RegexStructuralKey(const RegexPtr& regex) {
  std::string key;
  key.reserve(32);
  AppendKey(regex, &key);
  return key;
}

CompiledRef RegexCompileCache::CompileInto(const RegexPtr& regex,
                                           Semiautomaton* target,
                                           PipelineStats* stats) {
  FpKey key(RegexStructuralKey(regex));
  std::shared_ptr<const CompiledRegex> compiled;
  {
    MutexLock lock(&mu_);
    if (const auto* hit = cache_.Find(key)) compiled = *hit;
  }
  if (compiled != nullptr) {
    if (stats) stats->regex_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (stats) stats->regex_misses.fetch_add(1, std::memory_order_relaxed);
    compiled = std::make_shared<const CompiledRegex>(CompileRegex(regex));
    MutexLock lock(&mu_);
    auto [slot, inserted] = cache_.TryEmplace(std::move(key));
    if (inserted) *slot = std::move(compiled);
    compiled = *slot;
  }
  uint32_t offset = target->DisjointUnion(compiled->automaton);
  CompiledRef ref;
  ref.start = compiled->start + offset;
  ref.end = compiled->end + offset;
  ref.nullable = compiled->nullable;
  return ref;
}

void RegexCompileCache::Clear() {
  MutexLock lock(&mu_);
  cache_.Clear();
}

std::size_t RegexCompileCache::size() const {
  MutexLock lock(&mu_);
  return cache_.size();
}

}  // namespace gqc
