#include "src/automata/regex.h"

#include <algorithm>
#include <set>

namespace gqc {

RegexPtr Regex::Epsilon() {
  return std::make_shared<Regex>(Regex{RegexKind::kEpsilon, {}, {}});
}

RegexPtr Regex::Sym(Symbol s) {
  return std::make_shared<Regex>(Regex{RegexKind::kSymbol, s, {}});
}

RegexPtr Regex::Concat(std::vector<RegexPtr> parts) {
  if (parts.empty()) return Epsilon();
  if (parts.size() == 1) return parts[0];
  return std::make_shared<Regex>(Regex{RegexKind::kConcat, {}, std::move(parts)});
}

RegexPtr Regex::Union(std::vector<RegexPtr> parts) {
  if (parts.size() == 1) return parts[0];
  return std::make_shared<Regex>(Regex{RegexKind::kUnion, {}, std::move(parts)});
}

RegexPtr Regex::Star(RegexPtr inner) {
  return std::make_shared<Regex>(Regex{RegexKind::kStar, {}, {std::move(inner)}});
}

RegexPtr Regex::Plus(RegexPtr inner) {
  return Concat({inner, Star(inner)});
}

std::size_t RegexSize(const RegexPtr& r) {
  switch (r->kind) {
    case RegexKind::kEpsilon:
      return 0;
    case RegexKind::kSymbol:
      return 1;
    default: {
      std::size_t n = 0;
      for (const auto& c : r->children) n += RegexSize(c);
      return n;
    }
  }
}

bool IsNullable(const RegexPtr& r) {
  switch (r->kind) {
    case RegexKind::kEpsilon:
    case RegexKind::kStar:
      return true;
    case RegexKind::kSymbol:
      return false;
    case RegexKind::kConcat:
      return std::all_of(r->children.begin(), r->children.end(),
                         [](const RegexPtr& c) { return IsNullable(c); });
    case RegexKind::kUnion:
      return std::any_of(r->children.begin(), r->children.end(),
                         [](const RegexPtr& c) { return IsNullable(c); });
  }
  return false;
}

namespace {

template <typename Pred>
bool AllSymbols(const RegexPtr& r, Pred pred) {
  if (r->kind == RegexKind::kSymbol) return pred(r->symbol);
  for (const auto& c : r->children) {
    if (!AllSymbols(c, pred)) return false;
  }
  return true;
}

}  // namespace

bool IsOneWay(const RegexPtr& r) {
  return AllSymbols(r, [](Symbol s) { return s.is_test() || !s.role().is_inverse(); });
}

bool IsTestFree(const RegexPtr& r) {
  return AllSymbols(r, [](Symbol s) { return s.is_role(); });
}

std::optional<SimpleShape> GetSimpleShape(const RegexPtr& r) {
  if (r->kind == RegexKind::kSymbol && r->symbol.is_role()) {
    return SimpleShape{false, {r->symbol.role()}};
  }
  if (r->kind == RegexKind::kStar) {
    const RegexPtr& inner = r->children[0];
    std::vector<Role> roles;
    if (inner->kind == RegexKind::kSymbol && inner->symbol.is_role()) {
      roles.push_back(inner->symbol.role());
    } else if (inner->kind == RegexKind::kUnion) {
      for (const auto& c : inner->children) {
        if (c->kind != RegexKind::kSymbol || !c->symbol.is_role()) return std::nullopt;
        roles.push_back(c->symbol.role());
      }
    } else {
      return std::nullopt;
    }
    std::sort(roles.begin(), roles.end());
    roles.erase(std::unique(roles.begin(), roles.end()), roles.end());
    return SimpleShape{true, std::move(roles)};
  }
  return std::nullopt;
}

std::vector<Symbol> RegexSymbols(const RegexPtr& r) {
  std::set<Symbol> seen;
  std::function<void(const RegexPtr&)> visit = [&](const RegexPtr& node) {
    if (node->kind == RegexKind::kSymbol) seen.insert(node->symbol);
    for (const auto& c : node->children) visit(c);
  };
  visit(r);
  return std::vector<Symbol>(seen.begin(), seen.end());
}

std::string RegexToString(const RegexPtr& r, const Vocabulary& vocab) {
  switch (r->kind) {
    case RegexKind::kEpsilon:
      return "eps";
    case RegexKind::kSymbol:
      return r->symbol.ToString(vocab);
    case RegexKind::kStar: {
      return "(" + RegexToString(r->children[0], vocab) + ")*";
    }
    case RegexKind::kConcat: {
      std::string out;
      for (std::size_t i = 0; i < r->children.size(); ++i) {
        if (i) out += ".";
        out += RegexToString(r->children[i], vocab);
      }
      return out;
    }
    case RegexKind::kUnion: {
      std::string out = "(";
      for (std::size_t i = 0; i < r->children.size(); ++i) {
        if (i) out += " + ";
        out += RegexToString(r->children[i], vocab);
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace gqc
