#include "src/automata/validate.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

namespace gqc {

AuditResult ValidateSemiautomaton(const Semiautomaton& a) {
  const std::size_t n = a.StateCount();
  std::size_t out_total = 0;
  for (uint32_t s = 0; s < n; ++s) {
    std::set<std::pair<uint32_t, uint32_t>> seen;  // (symbol code, target)
    for (const auto& [symbol, t] : a.Out(s)) {
      if (t >= n) {
        return AuditViolation("transition (" + std::to_string(s) + ", " +
                              std::to_string(symbol.code()) + ", " +
                              std::to_string(t) +
                              ") targets a dangling state (state count " +
                              std::to_string(n) + ")");
      }
      if (!seen.insert({symbol.code(), t}).second) {
        return AuditViolation("duplicate transition out of state " +
                              std::to_string(s));
      }
      const auto& mirror = a.In(t);
      if (std::find(mirror.begin(), mirror.end(),
                    std::make_pair(symbol, s)) == mirror.end()) {
        return AuditViolation("transition (" + std::to_string(s) + " -> " +
                              std::to_string(t) +
                              ") missing from the in-transition mirror");
      }
      ++out_total;
    }
  }
  std::size_t in_total = 0;
  for (uint32_t t = 0; t < n; ++t) {
    for (const auto& [symbol, s] : a.In(t)) {
      if (s >= n) {
        return AuditViolation("in-transition of state " + std::to_string(t) +
                              " sources a dangling state");
      }
      const auto& mirror = a.Out(s);
      if (std::find(mirror.begin(), mirror.end(),
                    std::make_pair(symbol, t)) == mirror.end()) {
        return AuditViolation("in-transition (" + std::to_string(s) + " -> " +
                              std::to_string(t) +
                              ") missing from the out-transition mirror");
      }
      ++in_total;
    }
  }
  if (out_total != in_total || out_total != a.TransitionCount()) {
    return AuditViolation(
        "transition count mismatch: " + std::to_string(out_total) +
        " out-transitions, " + std::to_string(in_total) +
        " in-transitions, cached count " +
        std::to_string(a.TransitionCount()));
  }
  return std::nullopt;
}

AuditResult ValidateSemiautomaton(const Semiautomaton& a,
                                  const std::vector<Symbol>& alphabet) {
  if (auto v = ValidateSemiautomaton(a)) return v;
  std::set<uint32_t> allowed;
  for (Symbol s : alphabet) allowed.insert(s.code());
  for (uint32_t s = 0; s < a.StateCount(); ++s) {
    for (const auto& [symbol, t] : a.Out(s)) {
      (void)t;
      if (allowed.find(symbol.code()) == allowed.end()) {
        return AuditViolation("transition out of state " + std::to_string(s) +
                              " uses symbol code " +
                              std::to_string(symbol.code()) +
                              " outside the declared alphabet");
      }
    }
  }
  return std::nullopt;
}

AuditResult ValidateSemiautomaton(const Semiautomaton& a,
                                  const Vocabulary& vocab) {
  if (auto v = ValidateSemiautomaton(a)) return v;
  for (uint32_t s = 0; s < a.StateCount(); ++s) {
    for (const auto& [symbol, t] : a.Out(s)) {
      (void)t;
      if (symbol.is_role()) {
        if (symbol.role().name_id() >= vocab.role_count()) {
          return AuditViolation("transition uses role id " +
                                std::to_string(symbol.role().name_id()) +
                                " not interned in the vocabulary");
        }
      } else if (symbol.literal().concept_id() >= vocab.concept_count()) {
        return AuditViolation("transition test uses concept id " +
                              std::to_string(symbol.literal().concept_id()) +
                              " not interned in the vocabulary");
      }
    }
  }
  return std::nullopt;
}

AuditResult ValidateCompiledRegex(const CompiledRegex& cr) {
  if (auto v = ValidateSemiautomaton(cr.automaton)) return v;
  if (cr.automaton.StateCount() == 0) {
    return AuditViolation("compiled regex has no states");
  }
  if (cr.start >= cr.automaton.StateCount() ||
      cr.end >= cr.automaton.StateCount()) {
    return AuditViolation("compiled regex start/end state out of bounds");
  }
  return std::nullopt;
}

}  // namespace gqc
