#ifndef GQC_AUTOMATA_VALIDATE_H_
#define GQC_AUTOMATA_VALIDATE_H_

#include <vector>

#include "src/automata/semiautomaton.h"
#include "src/automata/symbol.h"
#include "src/util/invariant.h"

namespace gqc {

/// Structural sanity of a semiautomaton: every transition endpoint is a live
/// state (no dangling states), the out-/in-transition mirrors agree, no
/// duplicate transitions, and the cached transition count matches.
AuditResult ValidateSemiautomaton(const Semiautomaton& a);

/// ValidateSemiautomaton plus an alphabet bound: every transition symbol is
/// drawn from `alphabet` (the paper's Γ± ∪ Σ± for the task at hand).
AuditResult ValidateSemiautomaton(const Semiautomaton& a,
                                  const std::vector<Symbol>& alphabet);

/// ValidateSemiautomaton plus vocabulary bounds: every transition symbol's
/// role / concept id is interned.
AuditResult ValidateSemiautomaton(const Semiautomaton& a,
                                  const Vocabulary& vocab);

/// CompileRegex output: well-formed automaton with live start/end states.
AuditResult ValidateCompiledRegex(const CompiledRegex& cr);

}  // namespace gqc

#endif  // GQC_AUTOMATA_VALIDATE_H_
