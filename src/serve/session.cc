#include "src/serve/session.h"

#include <utility>

namespace gqc {
namespace serve {

std::shared_ptr<Session> SessionRegistry::Open(std::string peer) {
  auto session = std::make_shared<Session>();
  session->peer = std::move(peer);
  MutexLock lock(&mu_);
  session->id = next_id_++;
  ++opened_total_;
  *sessions_.TryEmplace(session->id).first = session;
  return session;
}

void SessionRegistry::Close(uint64_t id) {
  MutexLock lock(&mu_);
  sessions_.Erase(id);
}

std::size_t SessionRegistry::active() const {
  MutexLock lock(&mu_);
  return sessions_.size();
}

uint64_t SessionRegistry::opened_total() const {
  MutexLock lock(&mu_);
  return opened_total_;
}

std::vector<std::shared_ptr<Session>> SessionRegistry::Snapshot() const {
  std::vector<std::shared_ptr<Session>> out;
  MutexLock lock(&mu_);
  out.reserve(sessions_.size());
  sessions_.ForEach([&](const uint64_t&, const std::shared_ptr<Session>& s) {
    out.push_back(s);
  });
  return out;
}

}  // namespace serve
}  // namespace gqc
