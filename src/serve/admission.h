#ifndef GQC_SERVE_ADMISSION_H_
#define GQC_SERVE_ADMISSION_H_

#include <cstddef>

#include "src/util/sync.h"

namespace gqc {
namespace serve {

/// Admission bounds for the serving front end.
struct AdmissionOptions {
  /// Decide requests processed concurrently across all sessions. The engine
  /// pool parallelizes *inside* a pair; this caps how many pairs are in
  /// flight at once so a burst cannot oversubscribe the pool.
  std::size_t max_in_flight = 4;
  /// Requests allowed to wait for an in-flight slot. Beyond this the request
  /// is shed immediately (answered kUnknown, never silently dropped).
  std::size_t max_queue = 16;
};

/// Why Enter() returned without admitting.
enum class Admission {
  kAdmitted,  ///< caller holds an in-flight slot; must call Leave()
  kShed,      ///< queue full — answer kUnknown("shed") without deciding
  kDraining,  ///< server draining — answer kUnknown("draining"), no new work
};

/// Counting admission gate: at most max_in_flight concurrent holders, at
/// most max_queue blocked waiters, fail-fast beyond that. Shedding is
/// *sound* by construction — a shed request is answered kUnknown, which the
/// tri-state verdict contract already reserves for "not decided", so
/// admission control can never flip a verdict.
///
/// Rank note: kLockRankServeAdmission (40) sits below every engine rank, so
/// a thread may enter the gate and then run the full decision path (which
/// acquires engine/cache locks) without inverting the hierarchy — but the
/// gate is never acquired while holding an engine lock.
class AdmissionGate {
 public:
  explicit AdmissionGate(AdmissionOptions options) : options_(options) {}

  /// Blocks until a slot frees (queue permitting). On kAdmitted the caller
  /// MUST call Leave() when the request finishes.
  Admission Enter() GQC_EXCLUDES(mu_);
  void Leave() GQC_EXCLUDES(mu_);

  /// Flips to draining: queued waiters wake and report kDraining, later
  /// Enter() calls fail fast. In-flight holders are unaffected (graceful
  /// drain waits for them via Leave()).
  void BeginDrain() GQC_EXCLUDES(mu_);
  bool draining() const GQC_EXCLUDES(mu_);

  std::size_t in_flight() const GQC_EXCLUDES(mu_);
  std::size_t queued() const GQC_EXCLUDES(mu_);

 private:
  const AdmissionOptions options_;
  mutable Mutex mu_{kLockRankServeAdmission, "serve-admission"};
  CondVar cv_;
  std::size_t in_flight_ GQC_GUARDED_BY(mu_) = 0;
  std::size_t queued_ GQC_GUARDED_BY(mu_) = 0;
  bool draining_ GQC_GUARDED_BY(mu_) = false;
};

}  // namespace serve
}  // namespace gqc

#endif  // GQC_SERVE_ADMISSION_H_
