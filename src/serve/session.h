#ifndef GQC_SERVE_SESSION_H_
#define GQC_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/flat_map.h"
#include "src/util/sync.h"

namespace gqc {
namespace serve {

/// Per-client connection state. Counters are atomics so the stats exporter
/// can read them while the connection thread is mid-request.
struct Session {
  uint64_t id = 0;
  std::string peer;
  std::atomic<uint64_t> requests{0};  ///< lines received (any verb)
  std::atomic<uint64_t> decided{0};   ///< decide requests answered
  std::atomic<uint64_t> shed{0};      ///< decide requests shed/drained
  std::atomic<uint64_t> errors{0};    ///< malformed requests
};

/// Registry of live sessions: one per accepted connection, plus one
/// "inproc" session per in-process caller (tests, benches). Rank
/// kLockRankServeSessions sits below the engine ranks, so handlers may hold
/// nothing while deciding and the registry is only touched at connection
/// open/close and stats export.
class SessionRegistry {
 public:
  std::shared_ptr<Session> Open(std::string peer) GQC_EXCLUDES(mu_);
  void Close(uint64_t id) GQC_EXCLUDES(mu_);

  std::size_t active() const GQC_EXCLUDES(mu_);
  uint64_t opened_total() const GQC_EXCLUDES(mu_);

  /// Snapshot of the live sessions (for the stats verb).
  std::vector<std::shared_ptr<Session>> Snapshot() const GQC_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{kLockRankServeSessions, "serve-sessions"};
  uint64_t next_id_ GQC_GUARDED_BY(mu_) = 1;
  uint64_t opened_total_ GQC_GUARDED_BY(mu_) = 0;
  FlatMap<uint64_t, std::shared_ptr<Session>> sessions_ GQC_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace gqc

#endif  // GQC_SERVE_SESSION_H_
