#ifndef GQC_SERVE_SERVER_H_
#define GQC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/result.h"
#include "src/engine/engine_core.h"
#include "src/serve/admission.h"
#include "src/serve/session.h"
#include "src/util/json.h"

namespace gqc {
namespace serve {

/// Options for the serving front end.
struct ServeOptions {
  /// Engine configuration (threads, strategies, portfolio, budgets). The
  /// engine-level batch_timeout_ms acts as the request deadline fallback.
  EngineOptions engine;
  AdmissionOptions admission;
  /// Default wall-clock budget per decide request (ms). A request's own
  /// "deadline_ms" field overrides; 0 falls back to engine.batch_timeout_ms.
  double request_deadline_ms = 0;
  /// Budget applied to every engine cache table (0/0 = unbounded).
  CacheBudget cache_budget;
  /// Warm-start snapshot: loaded (if present and valid) at construction,
  /// saved on graceful drain. Empty = persistence off.
  std::string snapshot_path;
  /// TCP port to listen on (loopback only); 0 = ephemeral, read port().
  uint16_t port = 0;
};

/// JSON-lines serving front end over EngineCore (DESIGN.md §12).
///
/// Protocol: one flat JSON object per line in, one per line out.
///   {"op":"decide","id":"r1","schema":"...","p":"...","q":"...",
///    "deadline_ms":"250"}            -> a BatchOutcome line ("op" optional;
///                                       any line with "p"/"q" decides)
///   {"op":"stats"}                   -> serve + engine stats object
///   {"op":"ping"}                    -> {"ok":true,"pong":true}
///   {"op":"evict","pressure":"0.5"}  -> {"ok":true,"evicted":N,...}
///   {"op":"snapshot"}                -> saves the warm-start snapshot
///
/// Soundness: admission control can only *shed* a request, answered as a
/// well-formed kUnknown outcome (reason "shed" or "draining"); it never
/// drops a line or alters a decided verdict. Decide requests run the exact
/// EngineCore::DecidePair path the batch engine runs, under a per-request
/// control registered with CancelAll, so per-request deadlines reuse the
/// batch preemption machinery unchanged.
///
/// Threading: one handler thread per connection; the AdmissionGate caps how
/// many of them decide concurrently (the engine pool parallelizes inside a
/// pair). HandleRequestLine is also callable in-process (tests, benches)
/// with a session from OpenSession — the socket loop is a thin transport.
class Server {
 public:
  explicit Server(ServeOptions options);

  /// In-process session (tests/benches); Close when done.
  std::shared_ptr<Session> OpenSession(std::string peer) {
    return sessions_.Open(std::move(peer));
  }
  void CloseSession(uint64_t id) { sessions_.Close(id); }

  /// Handles one protocol line and returns the response line (no trailing
  /// newline). Never throws; malformed input yields {"ok":false,...}.
  std::string HandleRequestLine(std::string_view line, Session* session);

  /// Binds the loopback listener; port() is valid afterwards.
  Result<bool> Listen();
  uint16_t port() const { return port_; }

  /// Accept/serve loop: runs until RequestDrain(), then drains — stops
  /// accepting, wakes queued waiters (answered "draining"), joins every
  /// connection handler after its in-flight request finishes, saves the
  /// snapshot (if configured), and returns.
  void Run();

  /// Flags the drain. Async-signal-safe (one atomic store); the Run loop
  /// notices within its 100ms poll tick.
  void RequestDrain() {
    drain_requested_.store(true, std::memory_order_release);
  }
  bool drain_requested() const {
    return drain_requested_.load(std::memory_order_acquire);
  }

  EngineCore& core() { return core_; }
  AdmissionGate& admission() { return admission_; }
  SessionRegistry& sessions() { return sessions_; }
  /// Contexts rebuilt from the snapshot at construction (0 = none/invalid).
  uint64_t warmstart_loaded() const { return warmstart_loaded_; }

 private:
  std::string HandleDecide(const std::vector<JsonField>& fields,
                           Session* session);
  std::string StatsResponse();
  void HandleConnection(int fd, std::string peer);

  ServeOptions options_;
  EngineCore core_;
  AdmissionGate admission_;
  SessionRegistry sessions_;
  uint64_t warmstart_loaded_ = 0;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> drain_requested_{false};
};

}  // namespace serve
}  // namespace gqc

#endif  // GQC_SERVE_SERVER_H_
