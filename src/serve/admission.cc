#include "src/serve/admission.h"

namespace gqc {
namespace serve {

Admission AdmissionGate::Enter() {
  MutexLock lock(&mu_);
  if (draining_) return Admission::kDraining;
  if (in_flight_ < options_.max_in_flight) {
    ++in_flight_;
    return Admission::kAdmitted;
  }
  if (queued_ >= options_.max_queue) return Admission::kShed;
  ++queued_;
  // lint: bounded(wakes on Leave/BeginDrain; standard condvar loop)
  while (in_flight_ >= options_.max_in_flight && !draining_) cv_.Wait(mu_);
  --queued_;
  if (draining_) return Admission::kDraining;
  ++in_flight_;
  return Admission::kAdmitted;
}

void AdmissionGate::Leave() {
  MutexLock lock(&mu_);
  --in_flight_;
  cv_.NotifyOne();
}

void AdmissionGate::BeginDrain() {
  MutexLock lock(&mu_);
  draining_ = true;
  cv_.NotifyAll();
}

bool AdmissionGate::draining() const {
  MutexLock lock(&mu_);
  return draining_;
}

std::size_t AdmissionGate::in_flight() const {
  MutexLock lock(&mu_);
  return in_flight_;
}

std::size_t AdmissionGate::queued() const {
  MutexLock lock(&mu_);
  return queued_;
}

}  // namespace serve
}  // namespace gqc
