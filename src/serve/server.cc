#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include "src/engine/snapshot.h"

namespace gqc {
namespace serve {

namespace {

std::string ErrorJson(std::string_view message) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(false);
  w.Key("error").String(message);
  w.EndObject();
  return w.Take();
}

/// Builds the well-formed kUnknown outcome a shed/drained request gets: the
/// same BatchOutcome surface a decided request has, so clients need one
/// parser, and kUnknown keeps shedding sound (it is the tri-state's
/// "not decided", never a wrong definite answer).
BatchOutcome ShedOutcome(std::string id, bool draining) {
  BatchOutcome out;
  out.id = std::move(id);
  out.ok = true;
  out.verdict = Verdict::kUnknown;
  out.attr.unknown.emplace();
  out.attr.unknown->reason = draining ? "draining" : "shed";
  out.attr.unknown->phase = "admission";
  out.attr.note = draining ? "shed: server draining, no new work admitted"
                           : "shed: admission queue full";
  return out;
}

double ParsePositiveMs(const std::string& text) {
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || v < 0 || v != v) return 0;
  return v;
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      core_(options_.engine),
      admission_(options_.admission) {
  if (options_.cache_budget.bounded()) {
    core_.SetCacheBudget(options_.cache_budget);
  }
  if (!options_.snapshot_path.empty()) {
    // Best-effort warm start: a missing or corrupt snapshot serves cold
    // (rejection is counted on stats().warmstart_rejected by LoadSnapshot;
    // a *missing* file is not a rejection).
    std::ifstream probe(options_.snapshot_path, std::ios::binary);
    if (probe) {
      probe.close();
      auto loaded = LoadSnapshot(&core_, options_.snapshot_path);
      if (loaded.ok()) warmstart_loaded_ = loaded.value();
    }
  }
}

std::string Server::HandleRequestLine(std::string_view line, Session* session) {
  session->requests.fetch_add(1, std::memory_order_relaxed);
  auto fields = ParseFlatJsonObject(line);
  if (!fields.ok()) {
    session->errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorJson("request: " + fields.error());
  }
  std::string op;
  bool has_pq = false;
  for (const JsonField& f : fields.value()) {
    if (f.key == "op") op = f.value;
    if (f.key == "p" || f.key == "q") has_pq = true;
  }
  if (op.empty()) op = has_pq ? "decide" : "ping";

  if (op == "decide") return HandleDecide(fields.value(), session);
  if (op == "ping") {
    JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("pong").Bool(true);
    w.EndObject();
    return w.Take();
  }
  if (op == "stats") return StatsResponse();
  if (op == "evict") {
    double pressure = 0.5;
    for (const JsonField& f : fields.value()) {
      if (f.key == "pressure") pressure = ParsePositiveMs(f.value);
    }
    std::size_t evicted = core_.Evict(pressure);
    JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("evicted").UInt(evicted);
    w.Key("retained_bytes").UInt(core_.retained_bytes());
    w.EndObject();
    return w.Take();
  }
  if (op == "snapshot") {
    if (options_.snapshot_path.empty()) {
      session->errors.fetch_add(1, std::memory_order_relaxed);
      return ErrorJson("snapshot: no --snapshot path configured");
    }
    auto saved = SaveSnapshot(core_, options_.snapshot_path);
    if (!saved.ok()) {
      session->errors.fetch_add(1, std::memory_order_relaxed);
      return ErrorJson(saved.error());
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("saved").Bool(true);
    w.EndObject();
    return w.Take();
  }
  session->errors.fetch_add(1, std::memory_order_relaxed);
  return ErrorJson("request: unknown op \"" + op + "\"");
}

std::string Server::HandleDecide(const std::vector<JsonField>& fields,
                                 Session* session) {
  BatchItem item;
  double deadline_ms = options_.request_deadline_ms;
  bool have_p = false;
  bool have_q = false;
  for (const JsonField& f : fields) {
    if (f.key == "op") {
      continue;
    } else if (f.key == "id") {
      item.id = f.value;
    } else if (f.key == "schema") {
      item.schema_text = f.value;
    } else if (f.key == "p") {
      item.p_text = f.value;
      have_p = true;
    } else if (f.key == "q") {
      item.q_text = f.value;
      have_q = true;
    } else if (f.key == "deadline_ms") {
      deadline_ms = ParsePositiveMs(f.value);
    } else {
      session->errors.fetch_add(1, std::memory_order_relaxed);
      return ErrorJson("decide: unknown field \"" + f.key + "\"");
    }
  }
  if (!have_p || !have_q) {
    session->errors.fetch_add(1, std::memory_order_relaxed);
    return ErrorJson("decide: fields \"p\" and \"q\" are required");
  }

  Admission admitted = admission_.Enter();
  if (admitted != Admission::kAdmitted) {
    session->shed.fetch_add(1, std::memory_order_relaxed);
    core_.stats().requests_shed.fetch_add(1, std::memory_order_relaxed);
    return OutcomeToJson(
        ShedOutcome(item.id, admitted == Admission::kDraining));
  }
  EngineCore::ControlHandle handle;
  EngineCore::BatchControl control = core_.StartControl(deadline_ms, &handle);
  BatchOutcome outcome = core_.DecidePair(item, control);
  core_.FinishControl(handle);
  admission_.Leave();
  session->decided.fetch_add(1, std::memory_order_relaxed);
  return OutcomeToJson(outcome);
}

std::string Server::StatsResponse() {
  uint64_t session_requests = 0;
  uint64_t session_decided = 0;
  uint64_t session_shed = 0;
  uint64_t session_errors = 0;
  for (const auto& s : sessions_.Snapshot()) {
    session_requests += s->requests.load(std::memory_order_relaxed);
    session_decided += s->decided.load(std::memory_order_relaxed);
    session_shed += s->shed.load(std::memory_order_relaxed);
    session_errors += s->errors.load(std::memory_order_relaxed);
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(true);
  w.Key("serve").BeginObject();
  w.Key("sessions_active").UInt(sessions_.active());
  w.Key("sessions_total").UInt(sessions_.opened_total());
  w.Key("in_flight").UInt(admission_.in_flight());
  w.Key("queued").UInt(admission_.queued());
  w.Key("draining").Bool(admission_.draining());
  w.Key("requests").UInt(session_requests);
  w.Key("decided").UInt(session_decided);
  w.Key("shed").UInt(session_shed);
  w.Key("errors").UInt(session_errors);
  w.Key("warmstart_loaded").UInt(warmstart_loaded_);
  w.EndObject();
  w.EndObject();
  std::string head = w.Take();
  // Splice the engine stats object in as a raw sub-document: the exporter
  // already emits one well-formed object.
  head.pop_back();  // trailing '}'
  head += ",\"engine\":";
  head += core_.StatsJson();
  head += "}";
  return head;
}

Result<bool> Server::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Result<bool>::Error("serve: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Result<bool>::Error(std::string("serve: bind() failed: ") +
                               std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Result<bool>::Error(std::string("serve: listen() failed: ") +
                               std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  return true;
}

void Server::HandleConnection(int fd, std::string peer) {
  std::shared_ptr<Session> session = sessions_.Open(std::move(peer));
  std::string buf;
  char chunk[4096];
  // lint: bounded(runs until client EOF or drain; each iteration is one poll tick)
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    int ready = ::poll(&p, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      // Idle tick: a draining server closes idle connections (any request
      // that was in flight has already been answered above).
      if (drain_requested()) break;
      continue;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    // lint: bounded(one iteration per complete line in the receive buffer)
    while ((pos = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      if (line.empty() || line == "\r") continue;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::string response = HandleRequestLine(line, session.get());
      response.push_back('\n');
      std::size_t sent = 0;
      // lint: bounded(short writes on a blocking socket; sends until done)
      while (sent < response.size()) {
        ssize_t wrote = ::send(fd, response.data() + sent,
                               response.size() - sent, MSG_NOSIGNAL);
        if (wrote <= 0) break;
        sent += static_cast<std::size_t>(wrote);
      }
      if (sent < response.size()) break;  // client went away mid-response
    }
  }
  ::close(fd);
  sessions_.Close(session->id);
}

void Server::Run() {
  std::vector<std::thread> handlers;
  // lint: bounded(one iteration per 100ms poll tick until drain)
  while (!drain_requested()) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    int ready = ::poll(&p, 1, 100);
    if (ready <= 0) continue;
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) continue;
    char ip[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    std::string peer_name = std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port));
    handlers.emplace_back(
        [this, fd, peer_name] { HandleConnection(fd, peer_name); });
  }
  // Graceful drain: wake queued waiters (they answer "draining"), let every
  // in-flight decision finish, then join the handlers — no request is ever
  // abandoned without a response on its own connection.
  admission_.BeginDrain();
  for (std::thread& t : handlers) t.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.snapshot_path.empty()) {
    (void)SaveSnapshot(core_, options_.snapshot_path);
  }
}

}  // namespace serve
}  // namespace gqc
