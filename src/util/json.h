#ifndef GQC_UTIL_JSON_H_
#define GQC_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/result.h"

namespace gqc {

/// Minimal JSON emission + flat-object parsing for the batch engine's
/// JSON-lines protocol and the stats report. No external dependencies; the
/// writer produces deterministic field order (insertion order).

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
void AppendJsonString(std::string* out, std::string_view s);

/// Builder for one JSON value tree; keeps nesting explicit so the emitted
/// text is always well-formed.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Object key (must be followed by exactly one value).
  JsonWriter& Key(std::string_view k);
  JsonWriter& String(std::string_view v);
  JsonWriter& Int(int64_t v);
  JsonWriter& UInt(uint64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Comma();
  std::string out_;
  /// Per nesting level: whether a first element was already written.
  std::vector<bool> has_element_{false};
  bool after_key_ = false;
};

/// One parsed field of a flat JSON object; values of non-string scalar types
/// (numbers, booleans, null) are returned as their literal text.
struct JsonField {
  std::string key;
  std::string value;
  bool was_string = false;
};

/// Parses a single flat JSON object — string/number/bool/null fields only,
/// no nesting — which is all the batch JSONL input format needs. Full string
/// escape handling (\", \\, \/, \b, \f, \n, \r, \t, \uXXXX with surrogate
/// pairs encoded as UTF-8).
Result<std::vector<JsonField>> ParseFlatJsonObject(std::string_view text);

}  // namespace gqc

#endif  // GQC_UTIL_JSON_H_
