#include "src/util/guard.h"

namespace gqc {

const char* GuardPhaseName(GuardPhase p) {
  switch (p) {
    case GuardPhase::kSetup:
      return "setup";
    case GuardPhase::kScreen:
      return "screen";
    case GuardPhase::kDirect:
      return "direct-search";
    case GuardPhase::kEntailment:
      return "entailment";
    case GuardPhase::kReduction:
      return "reduction";
    case GuardPhase::kFactorize:
      return "factorize";
    case GuardPhase::kFrames:
      return "frames";
  }
  return "?";
}

const char* GuardResourceName(GuardResource r) {
  switch (r) {
    case GuardResource::kNone:
      return "none";
    case GuardResource::kDeadline:
      return "deadline";
    case GuardResource::kSteps:
      return "steps";
    case GuardResource::kMemory:
      return "memory";
    case GuardResource::kCancelled:
      return "cancelled";
  }
  return "?";
}

ResourceGuard::ResourceGuard(const ResourceBudget& budget)
    : ResourceGuard(budget, budget.deadline_ms > 0,
                    budget.deadline_ms > 0
                        ? std::chrono::steady_clock::now() +
                              std::chrono::duration_cast<
                                  std::chrono::steady_clock::duration>(
                                  std::chrono::duration<double, std::milli>(
                                      budget.deadline_ms))
                        : std::chrono::steady_clock::time_point{}) {}

ResourceGuard::ResourceGuard(const ResourceBudget& budget, bool has_deadline,
                             std::chrono::steady_clock::time_point deadline)
    : has_deadline_(has_deadline),
      deadline_(deadline),
      max_steps_(budget.max_steps),
      max_memory_(budget.max_memory_bytes),
      cancel_(budget.cancel) {}

void ResourceGuard::Trip(GuardResource r, GuardPhase p) {
  // First trip wins; later trips (other threads, other resources) are noise.
  // Reason and phase are published in one CAS so no reader interleaving can
  // tear them apart.
  uint16_t packed = static_cast<uint16_t>(
      (static_cast<uint16_t>(p) << 8) | static_cast<uint16_t>(r));
  uint16_t expected = 0;
  trip_.compare_exchange_strong(expected, packed, std::memory_order_acq_rel,
                                std::memory_order_acquire);
}

bool ResourceGuard::CheckClockAndToken(GuardPhase phase) {
  if (cancel_.cancelled() ||
      (has_extra_cancel_ && extra_cancel_.cancelled())) {
    Trip(GuardResource::kCancelled, phase);
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
    Trip(GuardResource::kDeadline, phase);
    return true;
  }
  return false;
}

bool ResourceGuard::Charge(GuardPhase phase, uint64_t steps) {
  if (exhausted()) return true;
  uint64_t prev = steps_.fetch_add(steps, std::memory_order_relaxed);
  phase_steps_[static_cast<std::size_t>(phase)].fetch_add(
      steps, std::memory_order_relaxed);
  if (max_steps_ != 0 && prev + steps > max_steps_) {
    Trip(GuardResource::kSteps, phase);
    return true;
  }
  // Amortized clock/token poll: whenever the total crosses a stride boundary
  // (always true for bulk charges of at least one stride).
  if ((prev / kClockStride) != ((prev + steps) / kClockStride)) {
    return CheckClockAndToken(phase);
  }
  return false;
}

bool ResourceGuard::ChargeMemory(GuardPhase phase, uint64_t bytes) {
  if (exhausted()) return true;
  uint64_t prev = memory_.fetch_add(bytes, std::memory_order_relaxed);
  if (max_memory_ != 0 && prev + bytes > max_memory_) {
    Trip(GuardResource::kMemory, phase);
    return true;
  }
  return false;
}

bool ResourceGuard::Recheck(GuardPhase phase) {
  if (exhausted()) return true;
  return CheckClockAndToken(phase);
}

std::string ResourceGuard::Describe() const {
  GuardResource r = reason();
  if (r == GuardResource::kNone) return "";
  std::string out;
  switch (r) {
    case GuardResource::kDeadline:
      out = "deadline exceeded";
      break;
    case GuardResource::kSteps:
      out = "step budget exhausted";
      break;
    case GuardResource::kMemory:
      out = "memory budget exhausted";
      break;
    case GuardResource::kCancelled:
      out = "cancelled";
      break;
    case GuardResource::kNone:
      break;
  }
  out += " in ";
  out += GuardPhaseName(trip_phase());
  out += " after " + std::to_string(steps_spent()) + " steps";
  return out;
}

}  // namespace gqc
