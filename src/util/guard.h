#ifndef GQC_UTIL_GUARD_H_
#define GQC_UTIL_GUARD_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

namespace gqc {

/// Cooperative cancellation handle: a copyable reference to a shared flag.
/// Cancel() is sticky — once set, every copy observes it. All operations are
/// wait-free and safe from any thread.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The potentially-exponential phases of the containment pipeline; a
/// ResourceGuard attributes every charged step to the phase that spent it,
/// so exhaustion reports (and the PipelineStats spend histograms) say where
/// the budget went.
enum class GuardPhase : uint8_t {
  kSetup = 0,       // parsing / context assembly before any search
  kScreen,          // cheap exact screens (classical containment)
  kDirect,          // direct bounded countermodel search
  kEntailment,      // Tp(T, Q̂) type-elimination fixpoints
  kReduction,       // §3 reduction H0 search
  kFactorize,       // query factorization closure
  kFrames,          // frame factorization / coil construction
};
inline constexpr std::size_t kGuardPhaseCount = 7;

const char* GuardPhaseName(GuardPhase p);

/// Which resource tripped a guard. kNone means the guard is still live.
enum class GuardResource : uint8_t {
  kNone = 0,
  kDeadline,   // wall-clock deadline passed
  kSteps,      // step budget exhausted
  kMemory,     // memory estimate exceeded the budget
  kCancelled,  // cooperative cancellation requested
};

const char* GuardResourceName(GuardResource r);

/// Resource limits for one decision. Zero means "unlimited" for every
/// numeric field; a default-constructed budget never trips (beyond explicit
/// cancellation through `cancel`).
///
/// Granularity: the step and memory budgets apply to one *disjunct decision*
/// (the unit of parallelism), which keeps budget-exhaustion verdicts a pure
/// function of (input, budget) at any thread count. The deadline and the
/// cancellation token span the whole pair (or batch): deadline-driven
/// verdicts are wall-clock dependent and therefore not reproducible, which
/// is why the adversarial tests pin step budgets instead.
struct ResourceBudget {
  /// Wall-clock deadline relative to guard construction (0 = none).
  double deadline_ms = 0;
  /// Total search steps a guard may charge (0 = unlimited).
  uint64_t max_steps = 0;
  /// Estimated bytes of search state a guard may charge (0 = unlimited).
  uint64_t max_memory_bytes = 0;
  /// Cooperative cancellation; shared by every guard built from this budget.
  CancellationToken cancel;

  bool unlimited() const {
    return deadline_ms <= 0 && max_steps == 0 && max_memory_bytes == 0;
  }
};

/// Deadline + step budget + memory estimate + cancellation, threaded through
/// every potentially-exponential phase of the pipeline. Exhausting a budget
/// never aborts and never produces a wrong definite verdict: search code
/// polls Charge()/Recheck() and unwinds to a three-valued Unknown outcome
/// when the guard trips.
///
/// One guard may be polled by several threads at once (the engine's
/// disjunct-level parallelism); every counter is atomic and Charge() is
/// wait-free. The first trip wins: reason/phase record where the budget ran
/// out and are immutable afterwards.
///
/// Cost discipline: with no deadline, Charge() is one relaxed fetch_add plus
/// one relaxed load; the clock is only read every kClockStride charged steps
/// (and on Recheck), so instrumenting per-step hot loops is affordable.
class ResourceGuard {
 public:
  /// Unlimited guard (still cancellable through its own token).
  ResourceGuard() : ResourceGuard(ResourceBudget{}) {}

  /// Pins `budget.deadline_ms` relative to now.
  explicit ResourceGuard(const ResourceBudget& budget);

  /// Same budget, but with an externally pinned absolute deadline (the pair
  /// deadline, computed once, shared by every disjunct guard of the pair).
  /// `deadline` is ignored unless `has_deadline`.
  ResourceGuard(const ResourceBudget& budget, bool has_deadline,
                std::chrono::steady_clock::time_point deadline);

  /// Adds a second cancellation token polled alongside the budget's own.
  /// The portfolio runner uses this for race cancellation: every strategy
  /// racing one disjunct shares a race token, the first definite verdict
  /// cancels it, and the losers unwind at their next poll while the outer
  /// (batch-level) token in the budget keeps working independently.
  ///
  /// Thread-compatibility contract: the extra-token fields are plain (not
  /// atomic), so AddCancellation must happen-before the guard is shared with
  /// other threads — call it during guard setup, never while polls may be in
  /// flight. The portfolio runner wires the token before handing the guard
  /// to the pool, and the pool's queue handoff publishes the write.
  void AddCancellation(CancellationToken token) {
    extra_cancel_ = std::move(token);
    has_extra_cancel_ = true;
  }

  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;

  /// Charges `steps` to `phase` and returns true iff the guard has tripped
  /// (now or earlier). Search loops call this once per expanded state.
  [[nodiscard]] bool Charge(GuardPhase phase, uint64_t steps = 1);

  /// Charges an estimate of allocated search state. Returns true iff tripped.
  [[nodiscard]] bool ChargeMemory(GuardPhase phase, uint64_t bytes);

  /// Checks deadline and cancellation without charging steps (entry points,
  /// loop boundaries). Returns true iff tripped.
  [[nodiscard]] bool Recheck(GuardPhase phase);

  /// True iff some budget ran out (sticky).
  [[nodiscard]] bool exhausted() const {
    return trip_.load(std::memory_order_acquire) != 0;
  }

  /// Which resource tripped first (kNone if live).
  GuardResource reason() const {
    return static_cast<GuardResource>(trip_.load(std::memory_order_acquire) &
                                      0xffu);
  }

  /// The phase that charged the tripping step (meaningless if live).
  GuardPhase trip_phase() const {
    return static_cast<GuardPhase>(trip_.load(std::memory_order_acquire) >> 8);
  }

  uint64_t steps_spent() const { return steps_.load(std::memory_order_relaxed); }
  uint64_t steps_spent(GuardPhase phase) const {
    return phase_steps_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
  }
  uint64_t memory_charged() const {
    return memory_.load(std::memory_order_relaxed);
  }

  /// Human-readable exhaustion summary, e.g.
  /// "step budget exhausted in direct-search after 200000 steps".
  /// Empty when the guard is live.
  std::string Describe() const;

 private:
  // Clock reads are amortized: only when the total step counter crosses a
  // multiple of this stride (must be a power of two).
  static constexpr uint64_t kClockStride = 1024;

  void Trip(GuardResource r, GuardPhase p);
  bool CheckClockAndToken(GuardPhase phase);

  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  uint64_t max_steps_ = 0;
  uint64_t max_memory_ = 0;
  CancellationToken cancel_;
  CancellationToken extra_cancel_;
  bool has_extra_cancel_ = false;

  std::atomic<uint64_t> steps_{0};
  std::atomic<uint64_t> memory_{0};
  std::array<std::atomic<uint64_t>, kGuardPhaseCount> phase_steps_{};
  /// Trip record, packed (phase << 8) | reason; 0 = live. One atomic so a
  /// concurrent reader can never observe a tripped reason paired with a
  /// stale phase (two separate atomics allowed exactly that skew).
  std::atomic<uint16_t> trip_{0};
};

}  // namespace gqc

#endif  // GQC_UTIL_GUARD_H_
