#ifndef GQC_UTIL_HASH_H_
#define GQC_UTIL_HASH_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace gqc {

/// Mixes `value`'s hash into the running hash `*seed` (boost-style combiner).
template <typename T>
void HashCombine(std::size_t* seed, const T& value) {
  std::size_t h = std::hash<T>{}(value);
  *seed ^= h + 0x9e3779b97f4a7c15ull + (*seed << 6) + (*seed >> 2);
}

/// Hash for std::pair, usable as a map key hasher.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t h = 0;
    HashCombine(&h, p.first);
    HashCombine(&h, p.second);
    return h;
  }
};

/// Hash for std::vector of hashable elements.
struct VectorHash {
  template <typename T>
  std::size_t operator()(const std::vector<T>& v) const {
    std::size_t h = v.size();
    for (const auto& x : v) HashCombine(&h, x);
    return h;
  }
};

}  // namespace gqc

#endif  // GQC_UTIL_HASH_H_
