#include "src/util/fingerprint.h"

namespace gqc {

namespace {
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;
}  // namespace

uint64_t Fnv1a64(std::string_view bytes) { return Fnv1a64Extend(kFnvOffset, bytes); }

uint64_t Fnv1a64Extend(uint64_t seed, std::string_view bytes) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t Fnv1a64ExtendInt(uint64_t seed, uint64_t value) {
  uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

namespace {
void AppendPart(std::string* out, std::string_view part) {
  out->append(std::to_string(part.size()));
  out->push_back(':');
  out->append(part);
}
}  // namespace

std::string JoinKeyParts(std::string_view a, std::string_view b) {
  std::string out;
  out.reserve(a.size() + b.size() + 16);
  AppendPart(&out, a);
  AppendPart(&out, b);
  return out;
}

std::string JoinKeyParts(std::string_view a, std::string_view b, std::string_view c) {
  std::string out;
  out.reserve(a.size() + b.size() + c.size() + 24);
  AppendPart(&out, a);
  AppendPart(&out, b);
  AppendPart(&out, c);
  return out;
}

std::optional<std::vector<std::string>> SplitKeyParts(std::string_view key) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos < key.size()) {
    std::size_t len = 0;
    std::size_t digits = 0;
    while (pos < key.size() && key[pos] >= '0' && key[pos] <= '9') {
      // Reject lengths that could not have come from std::to_string (the
      // whole key is bounded by memory anyway; 15 digits keeps len exact).
      if (digits >= 15) return std::nullopt;
      len = len * 10 + static_cast<std::size_t>(key[pos] - '0');
      ++pos;
      ++digits;
    }
    if (digits == 0 || pos >= key.size() || key[pos] != ':') {
      return std::nullopt;
    }
    ++pos;  // ':'
    if (len > key.size() - pos) return std::nullopt;
    parts.emplace_back(key.substr(pos, len));
    pos += len;
  }
  return parts;
}

std::string FingerprintHex(uint64_t fp) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[fp & 0xf];
    fp >>= 4;
  }
  return out;
}

}  // namespace gqc
