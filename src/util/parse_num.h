#ifndef GQC_UTIL_PARSE_NUM_H_
#define GQC_UTIL_PARSE_NUM_H_

#include <charconv>
#include <cstdint>
#include <optional>
#include <string_view>

namespace gqc {

/// Sanctioned numeric parsing helper (see tools/lint rule `raw-sto`).
///
/// `std::sto*` is banned in this codebase: it throws on overflow, consults
/// the locale, and silently accepts trailing garbage — all wrong for parser
/// input that fuzzers feed us. ParseUint32 is total: nullopt on empty input,
/// non-digit characters, or overflow past uint32_t.
inline std::optional<uint32_t> ParseUint32(std::string_view text) {
  uint32_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

}  // namespace gqc

#endif  // GQC_UTIL_PARSE_NUM_H_
