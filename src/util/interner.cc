#include "src/util/interner.h"

namespace gqc {

Interner::Interner(const Interner& other) : names_(other.names_) {
  RebuildIndex();
}

Interner& Interner::operator=(const Interner& other) {
  if (this == &other) return *this;
  names_ = other.names_;
  RebuildIndex();
  return *this;
}

void Interner::RebuildIndex() {
  arena_.Clear();
  ids_.Clear();
  ids_.Reserve(names_.size());
  for (uint32_t id = 0; id < names_.size(); ++id) {
    ids_.TryEmplace(arena_.Intern(names_[id]), id);
  }
}

uint32_t Interner::Intern(std::string_view name) {
  if (const uint32_t* id = ids_.Find(name)) return *id;
  uint32_t id = static_cast<uint32_t>(names_.size());
  // Arena-intern only on a genuine miss so repeated lookups stay
  // allocation-free and the arena holds each name exactly once.
  ids_.TryEmplace(arena_.Intern(name), id);
  names_.emplace_back(name);
  return id;
}

uint32_t Interner::Find(std::string_view name) const {
  const uint32_t* id = ids_.Find(name);
  return id == nullptr ? kNotFound : *id;
}

}  // namespace gqc
