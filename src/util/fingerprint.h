#ifndef GQC_UTIL_FINGERPRINT_H_
#define GQC_UTIL_FINGERPRINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gqc {

/// Stable 64-bit content fingerprints for cache keys and stats reporting.
///
/// The shared caches (normalized TBoxes, Tp closures, compiled regexes) key
/// on *canonical serializations* so equality is exact; the fingerprint is the
/// compact digest reported alongside (JSON stats, logs). FNV-1a is stable
/// across platforms and runs — unlike std::hash, which may be seeded.
uint64_t Fnv1a64(std::string_view bytes);

/// Incrementally extends a fingerprint with more bytes (order-sensitive).
uint64_t Fnv1a64Extend(uint64_t seed, std::string_view bytes);

/// Mixes a raw integer into a fingerprint (order-sensitive).
uint64_t Fnv1a64ExtendInt(uint64_t seed, uint64_t value);

/// Joins two serialized cache-key parts unambiguously (length-prefixed), so
/// ("ab", "c") and ("a", "bc") never collide as composite keys.
std::string JoinKeyParts(std::string_view a, std::string_view b);
std::string JoinKeyParts(std::string_view a, std::string_view b, std::string_view c);

/// Exact inverse of JoinKeyParts: decodes a composite key back into its
/// parts, or nullopt if `key` is not a valid encoding. The cache-key audits
/// (src/core/validate.h) use this to prove round-tripping — a key that does
/// not decode to exactly the parts it was built from could alias two
/// distinct cache inputs.
std::optional<std::vector<std::string>> SplitKeyParts(std::string_view key);

/// Renders a fingerprint as fixed-width lowercase hex (for stable report
/// output).
std::string FingerprintHex(uint64_t fp);

/// A canonical cache key carrying its 64-bit FNV-1a fingerprint, computed
/// once at construction. The shared caches probe on the fingerprint (an
/// 8-byte compare per probe step) and fall back to the exact canonical text
/// only on a fingerprint match, so the "no fingerprint collision can alias
/// two inputs" guarantee is preserved: equality is fingerprint-then-verify.
class FpKey {
 public:
  FpKey() = default;
  explicit FpKey(std::string text)
      : text_(std::move(text)), fp_(Fnv1a64(text_)) {}

  const std::string& text() const { return text_; }
  uint64_t fingerprint() const { return fp_; }
  bool empty() const { return text_.empty(); }

  friend bool operator==(const FpKey& a, const FpKey& b) {
    return a.fp_ == b.fp_ && a.text_ == b.text_;
  }

 private:
  std::string text_;
  uint64_t fp_ = 0xcbf29ce484222325ull;  // Fnv1a64("")
};

/// FlatMap/FlatSet hasher for FpKey: the stored hash IS the fingerprint, so
/// cache probes never rehash the canonical serialization.
struct FpKeyHash {
  uint64_t operator()(const FpKey& k) const { return k.fingerprint(); }
};

}  // namespace gqc

#endif  // GQC_UTIL_FINGERPRINT_H_
