#ifndef GQC_UTIL_FINGERPRINT_H_
#define GQC_UTIL_FINGERPRINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gqc {

/// Stable 64-bit content fingerprints for cache keys and stats reporting.
///
/// The shared caches (normalized TBoxes, Tp closures, compiled regexes) key
/// on *canonical serializations* so equality is exact; the fingerprint is the
/// compact digest reported alongside (JSON stats, logs). FNV-1a is stable
/// across platforms and runs — unlike std::hash, which may be seeded.
uint64_t Fnv1a64(std::string_view bytes);

/// Incrementally extends a fingerprint with more bytes (order-sensitive).
uint64_t Fnv1a64Extend(uint64_t seed, std::string_view bytes);

/// Mixes a raw integer into a fingerprint (order-sensitive).
uint64_t Fnv1a64ExtendInt(uint64_t seed, uint64_t value);

/// Joins two serialized cache-key parts unambiguously (length-prefixed), so
/// ("ab", "c") and ("a", "bc") never collide as composite keys.
std::string JoinKeyParts(std::string_view a, std::string_view b);
std::string JoinKeyParts(std::string_view a, std::string_view b, std::string_view c);

/// Exact inverse of JoinKeyParts: decodes a composite key back into its
/// parts, or nullopt if `key` is not a valid encoding. The cache-key audits
/// (src/core/validate.h) use this to prove round-tripping — a key that does
/// not decode to exactly the parts it was built from could alias two
/// distinct cache inputs.
std::optional<std::vector<std::string>> SplitKeyParts(std::string_view key);

/// Renders a fingerprint as fixed-width lowercase hex (for stable report
/// output).
std::string FingerprintHex(uint64_t fp);

}  // namespace gqc

#endif  // GQC_UTIL_FINGERPRINT_H_
