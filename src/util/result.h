#ifndef GQC_UTIL_RESULT_H_
#define GQC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gqc {

/// Error-or-value return type used on API boundaries (parsers, compilers).
///
/// The library does not throw on user-input errors; fallible entry points
/// return Result<T> and callers branch on ok(). Internal invariant violations
/// use assert.
template <typename T>
class Result {
 public:
  /// Implicit success construction.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Builds a failed Result carrying a human-readable message.
  static Result Error(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Error message; empty when ok().
  const std::string& error() const { return error_; }

 private:
  Result() = default;

  std::optional<T> value_;
  std::string error_;
};

}  // namespace gqc

#endif  // GQC_UTIL_RESULT_H_
