#ifndef GQC_UTIL_RESULT_H_
#define GQC_UTIL_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/invariant.h"

namespace gqc {

/// Error-or-value return type used on API boundaries (parsers, compilers).
///
/// The library does not throw on user-input errors; fallible entry points
/// return Result<T> and callers branch on ok(). Internal invariant violations
/// use GQC_DCHECK (src/util/invariant.h), active under the audit preset.
///
/// [[nodiscard]]: dropping a Result on the floor silently discards both the
/// value and the error — every caller must branch on ok().
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit success construction.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Builds a failed Result carrying a human-readable message.
  static Result Error(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    GQC_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    GQC_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    GQC_DCHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Error message; empty when ok().
  const std::string& error() const { return error_; }

 private:
  Result() = default;

  std::optional<T> value_;
  std::string error_;
};

}  // namespace gqc

#endif  // GQC_UTIL_RESULT_H_
