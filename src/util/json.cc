#include "src/util/json.h"

#include <cstdio>

#include "src/util/invariant.h"

namespace gqc {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::Comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (has_element_.back()) out_.push_back(',');
  has_element_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_.push_back('{');
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  GQC_DCHECK(has_element_.size() > 1);
  has_element_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_.push_back('[');
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  GQC_DCHECK(has_element_.size() > 1);
  has_element_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  Comma();
  AppendJsonString(&out_, k);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  Comma();
  AppendJsonString(&out_, v);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  Comma();
  out_.append(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t v) {
  Comma();
  out_.append(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  Comma();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  Comma();
  out_.append(v ? "true" : "false");
  return *this;
}

namespace {

class FlatParser {
 public:
  explicit FlatParser(std::string_view text) : text_(text) {}

  Result<std::vector<JsonField>> Parse() {
    using R = Result<std::vector<JsonField>>;
    SkipSpace();
    if (!Consume('{')) return R::Error("json: expected '{'");
    std::vector<JsonField> fields;
    SkipSpace();
    if (Consume('}')) {
      SkipSpace();
      return TrailOk() ? R(std::move(fields)) : R::Error("json: trailing data");
    }
    while (true) {
      SkipSpace();
      JsonField f;
      auto key = ParseString();
      if (!key.ok()) return R::Error(key.error());
      f.key = key.value();
      SkipSpace();
      if (!Consume(':')) return R::Error("json: expected ':'");
      SkipSpace();
      if (Peek() == '"') {
        auto v = ParseString();
        if (!v.ok()) return R::Error(v.error());
        f.value = v.value();
        f.was_string = true;
      } else if (Peek() == '{' || Peek() == '[') {
        return R::Error("json: nested values are not supported here");
      } else {
        auto v = ParseScalarToken();
        if (!v.ok()) return R::Error(v.error());
        f.value = v.value();
      }
      fields.push_back(std::move(f));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return R::Error("json: expected ',' or '}'");
    }
    SkipSpace();
    return TrailOk() ? R(std::move(fields)) : R::Error("json: trailing data");
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool TrailOk() const { return pos_ == text_.size(); }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  Result<uint32_t> ParseHex4() {
    using R = Result<uint32_t>;
    if (pos_ + 4 > text_.size()) return R::Error("json: truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return R::Error("json: bad \\u escape");
    }
    return v;
  }

  Result<std::string> ParseString() {
    using R = Result<std::string>;
    if (!Consume('"')) return R::Error("json: expected '\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return R::Error("json: unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return R::Error("json: dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          auto cp = ParseHex4();
          if (!cp.ok()) return R::Error(cp.error());
          uint32_t code = cp.value();
          // Surrogate pair?
          if (code >= 0xd800 && code <= 0xdbff && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            auto lo = ParseHex4();
            if (!lo.ok()) return R::Error(lo.error());
            if (lo.value() >= 0xdc00 && lo.value() <= 0xdfff) {
              code = 0x10000 + ((code - 0xd800) << 10) + (lo.value() - 0xdc00);
            } else {
              return R::Error("json: bad surrogate pair");
            }
          }
          AppendUtf8(&out, code);
          break;
        }
        default:
          return R::Error("json: unknown escape");
      }
    }
  }

  Result<std::string> ParseScalarToken() {
    using R = Result<std::string>;
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ',' || c == '}' || c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        break;
      }
      ++pos_;
    }
    if (pos_ == start) return R::Error("json: expected a value");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<std::vector<JsonField>> ParseFlatJsonObject(std::string_view text) {
  return FlatParser(text).Parse();
}

}  // namespace gqc
