#include "src/util/thread_pool.h"

#include <atomic>

namespace gqc {

namespace {
/// Index of the current thread's own deque, or SIZE_MAX for non-pool threads.
/// thread_local so nested ParallelFor calls from a worker keep pushing to the
/// worker's deque.
thread_local std::size_t tls_worker_index = SIZE_MAX;
}  // namespace

ThreadPool::ThreadPool(std::size_t concurrency) {
  if (concurrency == 0) concurrency = std::thread::hardware_concurrency();
  if (concurrency == 0) concurrency = 1;
  std::size_t worker_count = concurrency - 1;
  queues_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&wake_mu_);
    stop_ = true;
  }
  wake_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();
    return;
  }
  std::size_t target = tls_worker_index;
  if (target >= queues_.size()) {
    MutexLock lock(&wake_mu_);
    target = rr_++ % queues_.size();
  }
  {
    WorkerQueue& q = *queues_[target];
    MutexLock lock(&q.mu);
    q.items.push_back(std::move(fn));
  }
  // Notify under the wake mutex. A worker that found every deque empty holds
  // wake_mu_ from its re-scan until wait() releases it; taking the mutex here
  // serializes this notify against that window, so the push above is either
  // seen by the re-scan or the notify lands after the worker started waiting.
  // A bare notify could fire inside the window and be lost — with every
  // worker asleep, a fire-and-forget task would strand until the next Submit.
  {
    MutexLock lock(&wake_mu_);
    wake_cv_.NotifyOne();
  }
}

bool ThreadPool::PopFrom(std::size_t queue, bool lifo,
                         std::function<void()>* out) {
  WorkerQueue& q = *queues_[queue];
  MutexLock lock(&q.mu);
  if (q.items.empty()) return false;
  if (lifo) {
    *out = std::move(q.items.back());
    q.items.pop_back();
  } else {
    *out = std::move(q.items.front());
    q.items.pop_front();
  }
  return true;
}

bool ThreadPool::RunOneTask(std::size_t home) {
  if (queues_.empty()) return false;
  std::function<void()> task;
  std::size_t n = queues_.size();
  std::size_t start = home < n ? home : 0;
  // Own deque LIFO first (recent = cache-hot), then steal FIFO from siblings.
  if (home < n && PopFrom(home, /*lifo=*/true, &task)) {
    task();
    return true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t victim = (start + i) % n;
    if (victim == home) continue;
    if (PopFrom(victim, /*lifo=*/false, &task)) {
      task();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(std::size_t self) {
  tls_worker_index = self;
  while (true) {
    if (RunOneTask(self)) continue;
    MutexLock lock(&wake_mu_);
    if (stop_) return;
    // Re-check under the wake lock: Submit notifies while holding it, so a
    // push racing this scan either shows up below or its notify is delivered
    // after Wait() starts — never lost in between.
    bool any = false;
    for (std::size_t i = 0; i < queues_.size() && !any; ++i) {
      WorkerQueue& q = *queues_[i];
      MutexLock qlock(&q.mu);
      any = !q.items.empty();
    }
    if (any) continue;
    wake_cv_.Wait(wake_mu_);
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> exited{0};
  };
  auto state = std::make_shared<State>();
  auto runner = [state, n, &fn] {
    std::size_t i;
    while ((i = state->next.fetch_add(1, std::memory_order_relaxed)) < n) {
      fn(i);
      state->done.fetch_add(1, std::memory_order_release);
    }
  };

  std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    Submit([state, runner] {
      runner();
      state->exited.fetch_add(1, std::memory_order_release);
    });
  }

  runner();  // the caller participates

  // Wait for all iterations AND all helper tasks to finish (a helper may
  // still hold a reference to `fn` until it exits). While waiting, help run
  // other pool tasks so nested ParallelFor calls cannot deadlock.
  std::size_t home = tls_worker_index;
  while (state->done.load(std::memory_order_acquire) < n ||
         state->exited.load(std::memory_order_acquire) < helpers) {
    if (!RunOneTask(home)) std::this_thread::yield();
  }
}

}  // namespace gqc
