#include "src/util/bitset.h"

#include <bit>

#include "src/util/hash.h"

namespace gqc {

void DynamicBitset::Resize(std::size_t size) {
  size_ = size;
  words_.resize(WordCount(size), 0);
  // Clear any stale bits beyond the new size in the last word.
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (size_ % 64)) - 1;
  }
}

void DynamicBitset::Clear() {
  for (auto& w : words_) w = 0;
}

std::size_t DynamicBitset::Count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool DynamicBitset::Any() const {
  for (auto w : words_) {
    if (w != 0) return true;
  }
  return false;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

bool DynamicBitset::IsDisjointWith(const DynamicBitset& other) const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return false;
  }
  return true;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

std::size_t DynamicBitset::FindNext(std::size_t from) const {
  if (from >= size_) return size_;
  std::size_t word = from >> 6;
  uint64_t w = words_[word] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (w != 0) {
      std::size_t bit = (word << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return bit < size_ ? bit : size_;
    }
    if (++word >= words_.size()) return size_;
    w = words_[word];
  }
}

std::vector<std::size_t> DynamicBitset::ToIndices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = FindFirst(); i < size_; i = FindNext(i + 1)) out.push_back(i);
  return out;
}

std::string DynamicBitset::ToString() const {
  std::string s = "{";
  bool first = true;
  for (std::size_t i : ToIndices()) {
    if (!first) s += ", ";
    first = false;
    s += std::to_string(i);
  }
  s += "}";
  return s;
}

std::size_t DynamicBitset::Hash() const {
  std::size_t h = size_;
  for (auto w : words_) HashCombine(&h, w);
  return h;
}

}  // namespace gqc
