#ifndef GQC_UTIL_INTERNER_H_
#define GQC_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/arena.h"
#include "src/util/flat_map.h"

namespace gqc {

/// Bidirectional string <-> dense-id interner.
///
/// Used by Vocabulary to map concept and role names to small integers so that
/// label sets and types can be bitsets. Lookups are allocation-free: the id
/// index is a FlatMap keyed by string_views into an arena, so Intern/Find on
/// a hot path (fresh marker and counting-label minting in the entailment
/// fixpoints) never builds a temporary std::string.
class Interner {
 public:
  Interner() = default;
  /// Copies rebuild the id index into a fresh arena (the FlatMap keys are
  /// views into the owning interner's arena, so they cannot be shared).
  Interner(const Interner& other);
  Interner& operator=(const Interner& other);
  Interner(Interner&&) = default;
  Interner& operator=(Interner&&) = default;

  /// Returns the id of `name`, interning it if new. Ids are dense from 0.
  uint32_t Intern(std::string_view name);

  /// Returns the id of `name` or kNotFound if it was never interned.
  uint32_t Find(std::string_view name) const;

  /// Name for an interned id.
  const std::string& NameOf(uint32_t id) const { return names_[id]; }

  std::size_t size() const { return names_.size(); }

  static constexpr uint32_t kNotFound = UINT32_MAX;

 private:
  void RebuildIndex();

  StringArena arena_;
  FlatMap<std::string_view, uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace gqc

#endif  // GQC_UTIL_INTERNER_H_
