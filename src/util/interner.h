#ifndef GQC_UTIL_INTERNER_H_
#define GQC_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gqc {

/// Bidirectional string <-> dense-id interner.
///
/// Used by Vocabulary to map concept and role names to small integers so that
/// label sets and types can be bitsets.
class Interner {
 public:
  /// Returns the id of `name`, interning it if new. Ids are dense from 0.
  uint32_t Intern(std::string_view name);

  /// Returns the id of `name` or kNotFound if it was never interned.
  uint32_t Find(std::string_view name) const;

  /// Name for an interned id.
  const std::string& NameOf(uint32_t id) const { return names_[id]; }

  std::size_t size() const { return names_.size(); }

  static constexpr uint32_t kNotFound = UINT32_MAX;

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace gqc

#endif  // GQC_UTIL_INTERNER_H_
