#include "src/util/invariant.h"

#include <cstdio>
#include <cstdlib>

namespace gqc {

void InvariantFailure(const char* file, int line, const char* expr,
                      const std::string& message) {
  std::fprintf(stderr, "gqc: invariant violated at %s:%d\n  check:  %s\n", file,
               line, expr);
  if (!message.empty()) {
    std::fprintf(stderr, "  detail: %s\n", message.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace gqc
