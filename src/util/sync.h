#ifndef GQC_UTIL_SYNC_H_
#define GQC_UTIL_SYNC_H_

// Concurrency contracts for gqc (DESIGN.md §10).
//
// Every mutex in the codebase is a gqc::Mutex and every piece of
// mutex-protected state carries GQC_GUARDED_BY(mu). Two independent checkers
// cross-validate the contracts:
//
//  - statically, Clang's Thread Safety Analysis (-Wthread-safety, an error in
//    CI) proves over *all* executions that guarded state is only touched with
//    its capability held — the annotations below map 1:1 onto Clang's
//    capability attributes and degrade to no-ops on non-Clang compilers;
//  - dynamically, a GQC_AUDIT-gated lock-order checker enforces the global
//    rank hierarchy on every acquisition (a rank inversion is a potential
//    deadlock cycle even if no execution has deadlocked yet), mirroring the
//    invariant-audit pattern of src/util/invariant.h: the rank-check logic is
//    an always-compiled pure function (unit-testable in every build flavor),
//    only the per-acquisition call sites are build-gated.
//
// The domain lint (tools/lint/gqc_lint.py, rule raw-sync-primitive) bans raw
// std::mutex / std::lock_guard / std::condition_variable outside this header,
// so new concurrent code cannot silently opt out of either checker.

#include <cstddef>
#include <cstdint>

// lint: raw-sync(the annotated wrappers are built on the std primitives)
#include <condition_variable>
#include <mutex>
#include <vector>

#include "src/util/invariant.h"

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros.
//
// GQC_GUARDED_BY(mu)   member is only read/written with `mu` held
// GQC_PT_GUARDED_BY(mu) pointee is only dereferenced with `mu` held
// GQC_REQUIRES(mu)     caller must hold `mu` (condvar waits, locked helpers)
// GQC_EXCLUDES(mu)     caller must NOT hold `mu` (non-reentrant entry points)
// GQC_ACQUIRE/RELEASE  function acquires/releases the capability
// GQC_TRY_ACQUIRE(b)   function acquires iff it returns `b`
// GQC_CAPABILITY       the class IS a capability (Mutex)
// GQC_SCOPED_CAPABILITY RAII class acquiring in ctor, releasing in dtor
// GQC_NO_THREAD_SAFETY_ANALYSIS escape hatch; every use needs a comment

#if defined(__clang__)
#define GQC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GQC_THREAD_ANNOTATION(x)
#endif

#define GQC_CAPABILITY(x) GQC_THREAD_ANNOTATION(capability(x))
#define GQC_SCOPED_CAPABILITY GQC_THREAD_ANNOTATION(scoped_lockable)
#define GQC_GUARDED_BY(x) GQC_THREAD_ANNOTATION(guarded_by(x))
#define GQC_PT_GUARDED_BY(x) GQC_THREAD_ANNOTATION(pt_guarded_by(x))
#define GQC_REQUIRES(...) GQC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GQC_EXCLUDES(...) GQC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GQC_ACQUIRE(...) GQC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GQC_RELEASE(...) GQC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GQC_TRY_ACQUIRE(...) \
  GQC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GQC_NO_THREAD_SAFETY_ANALYSIS \
  GQC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gqc {

// ---------------------------------------------------------------------------
// The global lock-rank hierarchy (DESIGN.md §10 has the rationale per edge).
//
// Invariant enforced by the audit checker: a thread may only acquire a mutex
// whose rank is STRICTLY greater than every rank it already holds. Ranks are
// spaced so new locks can slot between existing levels without renumbering.
//
// The only deliberate nesting today is pool-wake -> pool-queue (a worker
// re-scans the queues under the wake mutex before sleeping); every other
// mutex is a leaf in practice, but the ranks pin the order future code must
// follow if it ever nests them.

inline constexpr uint32_t kLockRankServeAdmission = 40;  // serve::AdmissionGate
inline constexpr uint32_t kLockRankServeSessions = 60;   // serve::SessionRegistry
inline constexpr uint32_t kLockRankEngineCancel = 100;   // EngineCore::cancel_mu_
inline constexpr uint32_t kLockRankEngineContext = 200;  // EngineCore::ctx_mu_
inline constexpr uint32_t kLockRankPoolWake = 300;       // ThreadPool::wake_mu_
inline constexpr uint32_t kLockRankPoolQueue = 400;      // per-worker deques
inline constexpr uint32_t kLockRankNormalizeCache = 500; // ContainmentCaches
inline constexpr uint32_t kLockRankRegexCache = 510;     // RegexCompileCache
inline constexpr uint32_t kLockRankFactBoard = 520;      // SharedFactBoard
inline constexpr uint32_t kLockRankCompileMemo = 530;    // CompiledScopeMemo
inline constexpr uint32_t kLockRankRaceWinner = 600;     // portfolio winner
/// Default for unranked mutexes: may be acquired while holding anything,
/// but nothing (not even another leaf) may be acquired while holding one.
inline constexpr uint32_t kLockRankLeaf = 1000;

namespace lock_audit {

/// One entry of a thread's held-lock stack, in acquisition order.
struct HeldLock {
  const void* mu = nullptr;
  uint32_t rank = 0;
  const char* name = "";
};

/// Pure rank check (always compiled, unit-tested in every build flavor):
/// nullopt iff acquiring a mutex of `rank` is legal while holding `held`.
/// `name`/`held[i].name` only feed the violation message.
AuditResult CheckAcquire(const std::vector<HeldLock>& held, uint32_t rank,
                         const char* name);

/// GQC_AUDIT-gated bookkeeping, called by Mutex on every acquisition edge.
/// OnAcquire aborts via InvariantFailure on a rank violation (before
/// blocking on the raw mutex, so an inversion reports instead of
/// deadlocking); `checked=false` records without the rank check (try-locks,
/// which cannot contribute to a deadlock cycle because they never block).
void OnAcquire(const void* mu, uint32_t rank, const char* name,
               bool checked = true);
void OnRelease(const void* mu);

/// Locks the calling thread currently holds (audit builds; 0 otherwise).
std::size_t HeldCount();

}  // namespace lock_audit

/// A std::mutex wearing the Clang capability attribute plus an audit-build
/// lock rank. Prefer MutexLock over calling Lock()/Unlock() directly.
class GQC_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(uint32_t rank = kLockRankLeaf, const char* name = "mutex")
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GQC_ACQUIRE() {
#ifdef GQC_AUDIT_ENABLED
    lock_audit::OnAcquire(this, rank_, name_);
#endif
    raw_.lock();
  }

  void Unlock() GQC_RELEASE() {
    raw_.unlock();
#ifdef GQC_AUDIT_ENABLED
    lock_audit::OnRelease(this);
#endif
  }

  /// Never blocks, so it is exempt from the rank check (recorded only).
  [[nodiscard]] bool TryLock() GQC_TRY_ACQUIRE(true) {
    if (!raw_.try_lock()) return false;
#ifdef GQC_AUDIT_ENABLED
    lock_audit::OnAcquire(this, rank_, name_, /*checked=*/false);
#endif
    return true;
  }

  uint32_t rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex raw_;
  uint32_t rank_;
  const char* name_;
};

/// RAII lock for a gqc::Mutex. [[nodiscard]] on the constructor makes the
/// classic `MutexLock(&mu_);` temporary-that-unlocks-immediately a warning.
class GQC_SCOPED_CAPABILITY MutexLock {
 public:
  [[nodiscard]] explicit MutexLock(Mutex* mu) GQC_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() GQC_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable over gqc::Mutex. Wait() requires the mutex held (the
/// static analysis enforces this at every call site) and atomically releases
/// it while blocked — the audit checker's held-stack mirrors that, so a wait
/// never wedges the rank hierarchy for the sleeping thread.
///
/// As with std::condition_variable, wakeups may be spurious: always wait in
/// a loop that re-checks the predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) GQC_REQUIRES(mu) {
#ifdef GQC_AUDIT_ENABLED
    lock_audit::OnRelease(&mu);
#endif
    {
      std::unique_lock<std::mutex> raw(mu.raw_, std::adopt_lock);
      cv_.wait(raw);
      raw.release();  // ownership returns to the caller's MutexLock
    }
#ifdef GQC_AUDIT_ENABLED
    lock_audit::OnAcquire(&mu, mu.rank_, mu.name_);
#endif
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gqc

#endif  // GQC_UTIL_SYNC_H_
