#include "src/util/sync.h"

#include <string>

namespace gqc {
namespace lock_audit {

namespace {

/// The calling thread's held-lock stack, in acquisition order. thread_local
/// so the checker needs no synchronization of its own (it must not — it runs
/// inside every Lock()).
std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> held;
  return held;
}

}  // namespace

AuditResult CheckAcquire(const std::vector<HeldLock>& held, uint32_t rank,
                         const char* name) {
  for (const HeldLock& h : held) {
    if (h.rank >= rank) {
      return AuditViolation(
          "lock-order violation: acquiring \"" + std::string(name) +
          "\" (rank " + std::to_string(rank) + ") while holding \"" +
          std::string(h.name) + "\" (rank " + std::to_string(h.rank) +
          "); ranks must strictly increase along every acquisition chain "
          "(see the hierarchy in src/util/sync.h)");
    }
  }
  return std::nullopt;
}

void OnAcquire(const void* mu, uint32_t rank, const char* name, bool checked) {
  std::vector<HeldLock>& held = HeldStack();
  if (checked) {
    AuditResult violation = CheckAcquire(held, rank, name);
    if (violation.has_value()) {
      InvariantFailure("src/util/sync.h", 0, "LockOrder", *violation);
    }
  }
  held.push_back(HeldLock{mu, rank, name});
}

void OnRelease(const void* mu) {
  std::vector<HeldLock>& held = HeldStack();
  // Release is usually LIFO (RAII guards), but a condvar wait releases from
  // mid-stack legally; search from the top.
  for (std::size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].mu == mu) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i) - 1);
      return;
    }
  }
  InvariantFailure("src/util/sync.h", 0, "LockOrder",
                   "releasing a mutex this thread does not hold");
}

std::size_t HeldCount() { return HeldStack().size(); }

}  // namespace lock_audit
}  // namespace gqc
