#ifndef GQC_UTIL_ARENA_H_
#define GQC_UTIL_ARENA_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace gqc {

/// Append-only byte arena handing out stable string_views.
///
/// Canonical cache keys and interned vocabulary names are written once and
/// read many times; storing each in its own std::string pays one heap
/// allocation per string and scatters them across the heap. The arena packs
/// them into large blocks: one allocation per ~64 KiB of key text, and the
/// returned views stay valid until Clear() (blocks are never reallocated or
/// shrunk).
class StringArena {
 public:
  StringArena() = default;
  StringArena(StringArena&&) = default;
  StringArena& operator=(StringArena&&) = default;

  /// Copies `s` into the arena; the returned view is stable until Clear().
  std::string_view Intern(std::string_view s);

  /// Drops every block. Invalidates all previously returned views.
  void Clear();

  /// Total bytes interned (not counting block slack).
  std::size_t bytes() const { return bytes_; }

 private:
  static constexpr std::size_t kBlockSize = 64 * 1024;

  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  std::vector<Block> blocks_;
  std::size_t bytes_ = 0;
};

}  // namespace gqc

#endif  // GQC_UTIL_ARENA_H_
