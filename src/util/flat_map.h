#ifndef GQC_UTIL_FLAT_MAP_H_
#define GQC_UTIL_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/fingerprint.h"
#include "src/util/invariant.h"

namespace gqc {

/// Open-addressing hash containers for the reasoning hot paths.
///
/// FlatMap/FlatSet replace std::unordered_map/set where probe cost matters:
/// one contiguous slot array (power-of-two capacity, linear probing) plus a
/// parallel array of 64-bit hashes, so a probe compares 8 bytes per step and
/// touches the key itself only on a hash match. With fingerprinted keys
/// (FpKey) the stored hash IS the precomputed content fingerprint — lookups
/// never rehash the key bytes, and the exact-equality fallback preserves the
/// "no fingerprint collision can alias" guarantee of the shared caches.
///
/// Erase uses backward-shift deletion (no tombstones), so probe chains never
/// degrade under churn. Requirements: Key and Value default-constructible and
/// move-assignable. NOT thread-safe — callers guard with their own Mutex
/// (ContainmentCaches, SharedFactBoard, RegexCompileCache all do).

inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Default hasher: stable, well-mixed 64-bit hashes. Integers go through
/// SplitMix64; strings through FNV-1a; integer vectors through a mix chain.
template <typename T, typename Enable = void>
struct FlatHash;

template <typename T>
struct FlatHash<T, std::enable_if_t<std::is_integral_v<T> || std::is_enum_v<T>>> {
  uint64_t operator()(const T& v) const {
    return SplitMix64(static_cast<uint64_t>(v));
  }
};

template <>
struct FlatHash<std::string> {
  uint64_t operator()(std::string_view v) const { return Fnv1a64(v); }
};

template <>
struct FlatHash<std::string_view> {
  uint64_t operator()(std::string_view v) const { return Fnv1a64(v); }
};

template <typename T>
struct FlatHash<std::vector<T>, std::enable_if_t<std::is_integral_v<T>>> {
  uint64_t operator()(const std::vector<T>& v) const {
    uint64_t h = SplitMix64(v.size());
    for (const T& x : v) {
      h = SplitMix64(h ^ static_cast<uint64_t>(x));
    }
    return h;
  }
};

template <typename Key, typename Value, typename Hash = FlatHash<Key>>
class FlatMap {
 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slot-array capacity (0 before the first insert). Stays put across
  /// Clear()/Erase(); only ShrinkToFit() gives memory back.
  std::size_t capacity() const { return hashes_.size(); }

  void Clear() {
    hashes_.clear();
    slots_.clear();
    size_ = 0;
  }

  /// Releases slot memory a shrinking map retains: rehashes down to the
  /// smallest power-of-two capacity holding the current entries within the
  /// load-factor bound, or frees everything when empty. Clear()/Erase()
  /// deliberately keep capacity (steady-state workloads re-fill); a
  /// long-lived process calls this after eviction storms so RSS drops.
  void ShrinkToFit() {
    if (size_ == 0) {
      std::vector<uint64_t>().swap(hashes_);
      std::vector<Slot>().swap(slots_);
      return;
    }
    std::size_t target = NormalizeCapacity(size_);
    if (target < hashes_.size()) Rehash(target);
  }

  /// Grows capacity so `n` entries fit without rehashing.
  void Reserve(std::size_t n) {
    std::size_t needed = NormalizeCapacity(n);
    if (needed > hashes_.size()) Rehash(needed);
  }

  Value* Find(const Key& key) {
    std::size_t idx = FindSlot(key);
    return idx == kNoSlot ? nullptr : &slots_[idx].value;
  }
  const Value* Find(const Key& key) const {
    std::size_t idx = FindSlot(key);
    return idx == kNoSlot ? nullptr : &slots_[idx].value;
  }
  bool Contains(const Key& key) const { return FindSlot(key) != kNoSlot; }

  /// Inserts `key` with a Value built from `args` unless present; returns
  /// the value slot and whether an insert happened (std::map::try_emplace
  /// contract).
  template <typename K, typename... Args>
  std::pair<Value*, bool> TryEmplace(K&& key, Args&&... args) {
    GrowIfNeeded();
    uint64_t h = HashOf(key);
    std::size_t mask = hashes_.size() - 1;
    std::size_t idx = static_cast<std::size_t>(h) & mask;
    while (hashes_[idx] != kEmpty) {
      if (hashes_[idx] == h && slots_[idx].key == key) {
        return {&slots_[idx].value, false};
      }
      idx = (idx + 1) & mask;
    }
    hashes_[idx] = h;
    slots_[idx].key = Key(std::forward<K>(key));
    slots_[idx].value = Value(std::forward<Args>(args)...);
    ++size_;
    return {&slots_[idx].value, true};
  }

  Value& operator[](const Key& key) { return *TryEmplace(key).first; }

  /// Removes `key`; returns whether it was present. Backward-shift deletion
  /// keeps every surviving entry reachable without tombstones.
  bool Erase(const Key& key) {
    std::size_t hole = FindSlot(key);
    if (hole == kNoSlot) return false;
    std::size_t mask = hashes_.size() - 1;
    std::size_t next = (hole + 1) & mask;
    while (hashes_[next] != kEmpty) {
      std::size_t home = static_cast<std::size_t>(hashes_[next]) & mask;
      // The entry at `next` may fill the hole iff its probe chain passes
      // through the hole: hole ∈ [home, next) in cyclic probe order.
      if (((hole - home) & mask) < ((next - home) & mask)) {
        hashes_[hole] = hashes_[next];
        slots_[hole] = std::move(slots_[next]);
        hole = next;
      }
      next = (next + 1) & mask;
    }
    hashes_[hole] = kEmpty;
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

  /// Visits every (key, value) pair in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < hashes_.size(); ++i) {
      if (hashes_[i] != kEmpty) fn(slots_[i].key, slots_[i].value);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (std::size_t i = 0; i < hashes_.size(); ++i) {
      if (hashes_[i] != kEmpty) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
  };

  static constexpr uint64_t kEmpty = 0;
  static constexpr std::size_t kNoSlot = SIZE_MAX;
  static constexpr std::size_t kMinCapacity = 16;

  template <typename K>
  uint64_t HashOf(const K& key) const {
    uint64_t h = Hash{}(key);
    return h == kEmpty ? uint64_t{1} : h;  // reserve 0 for empty slots
  }

  static std::size_t NormalizeCapacity(std::size_t n) {
    // Keep load factor at or below 3/4.
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;
    return cap;
  }

  template <typename K>
  std::size_t FindSlot(const K& key) const {
    if (hashes_.empty()) return kNoSlot;
    uint64_t h = HashOf(key);
    std::size_t mask = hashes_.size() - 1;
    std::size_t idx = static_cast<std::size_t>(h) & mask;
    while (hashes_[idx] != kEmpty) {
      if (hashes_[idx] == h && slots_[idx].key == key) return idx;
      idx = (idx + 1) & mask;
    }
    return kNoSlot;
  }

  void GrowIfNeeded() {
    if (hashes_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > hashes_.size() * 3) {
      Rehash(hashes_.size() * 2);
    }
  }

  void Rehash(std::size_t new_capacity) {
    GQC_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<uint64_t> old_hashes = std::move(hashes_);
    std::vector<Slot> old_slots = std::move(slots_);
    hashes_.assign(new_capacity, kEmpty);
    slots_.assign(new_capacity, Slot{});
    std::size_t mask = new_capacity - 1;
    for (std::size_t i = 0; i < old_hashes.size(); ++i) {
      if (old_hashes[i] == kEmpty) continue;
      // Stored hashes are reused verbatim — rehashing never re-reads keys.
      std::size_t idx = static_cast<std::size_t>(old_hashes[i]) & mask;
      while (hashes_[idx] != kEmpty) idx = (idx + 1) & mask;
      hashes_[idx] = old_hashes[i];
      slots_[idx] = std::move(old_slots[i]);
    }
  }

  std::vector<uint64_t> hashes_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

/// Set counterpart of FlatMap; same probing, storage, and guarantees.
template <typename Key, typename Hash = FlatHash<Key>>
class FlatSet {
 public:
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  std::size_t capacity() const { return map_.capacity(); }
  void Clear() { map_.Clear(); }
  void Reserve(std::size_t n) { map_.Reserve(n); }
  void ShrinkToFit() { map_.ShrinkToFit(); }

  bool Contains(const Key& key) const { return map_.Contains(key); }

  /// Returns true iff `key` was newly inserted.
  template <typename K>
  bool Insert(K&& key) {
    return map_.TryEmplace(std::forward<K>(key)).second;
  }

  bool Erase(const Key& key) { return map_.Erase(key); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach([&](const Key& k, const Monostate&) { fn(k); });
  }

 private:
  struct Monostate {};
  FlatMap<Key, Monostate, Hash> map_;
};

}  // namespace gqc

#endif  // GQC_UTIL_FLAT_MAP_H_
