#ifndef GQC_UTIL_INVARIANT_H_
#define GQC_UTIL_INVARIANT_H_

#include <optional>
#include <string>

namespace gqc {

/// Invariant-audit layer.
///
/// The paper's constructions (coils, frames, sparse countermodels, normal-form
/// TBoxes) carry structural invariants the type system cannot express, and a
/// latent violation corrupts a verdict silently instead of crashing. This
/// header provides the machinery to make those invariants machine-checkable:
///
///   GQC_DCHECK(cond)   — cheap local invariant; like assert, but tied to the
///                        GQC_AUDIT build option instead of NDEBUG, so audit
///                        builds keep full optimization while release builds
///                        pay nothing.
///   GQC_AUDIT(expr)    — module-boundary audit. `expr` is a call to one of
///                        the per-module Validate*() routines returning
///                        AuditResult; a non-nullopt result aborts with the
///                        violation message. Compiled out entirely (operand
///                        unevaluated) unless GQC_AUDIT is on.
///
/// The Validate*() routines themselves are ordinary always-compiled functions
/// (src/graph/validate.h, src/automata/validate.h, src/dl/validate.h,
/// src/frames/validate.h, src/core/validate.h), so tests exercise them on
/// corrupted fixtures in every build flavor; only the call sites are gated.
///
/// Enable with `cmake --preset audit` (or -DGQC_AUDIT=ON); tools/sanitize.sh
/// turns it on for sanitizer runs as well.

/// nullopt = invariant holds; otherwise a human-readable violation.
using AuditResult = std::optional<std::string>;

/// Shorthand for building a violation message in Validate*() routines.
inline AuditResult AuditViolation(std::string message) { return message; }

/// Prints the violated invariant (with source location) to stderr and aborts.
/// Invariant violations are programming errors, never user-input errors, so
/// there is no recovery path: a wrong verdict must not escape.
[[noreturn]] void InvariantFailure(const char* file, int line, const char* expr,
                                   const std::string& message);

/// True in builds configured with -DGQC_AUDIT=ON.
constexpr bool AuditEnabled() {
#ifdef GQC_AUDIT_ENABLED
  return true;
#else
  return false;
#endif
}

namespace internal {
inline void AuditCheck(const char* file, int line, const char* expr,
                       const AuditResult& status) {
  if (status.has_value()) InvariantFailure(file, line, expr, *status);
}
}  // namespace internal

}  // namespace gqc

#ifdef GQC_AUDIT_ENABLED
#define GQC_DCHECK(cond) \
  ((cond) ? (void)0 : ::gqc::InvariantFailure(__FILE__, __LINE__, #cond, ""))
#define GQC_AUDIT(expr) \
  ::gqc::internal::AuditCheck(__FILE__, __LINE__, #expr, (expr))
#else
// sizeof keeps the operand syntactically checked and its captures "used"
// (no -Wunused warnings in release) while generating no code.
#define GQC_DCHECK(cond) ((void)sizeof((cond) ? 1 : 0))
#define GQC_AUDIT(expr) ((void)sizeof(expr))
#endif

#endif  // GQC_UTIL_INVARIANT_H_
