#ifndef GQC_UTIL_BITSET_H_
#define GQC_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gqc {

/// A dynamically sized bitset used for label sets, type masks, and state sets.
///
/// Unlike std::vector<bool>, DynamicBitset supports fast word-level set
/// algebra (union, intersection, difference, subset tests) and is hashable,
/// which the type-elimination fixpoints rely on heavily.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  /// Creates a bitset with `size` bits, all cleared.
  explicit DynamicBitset(std::size_t size) : size_(size), words_(WordCount(size), 0) {}

  std::size_t size() const { return size_; }

  /// Grows (or shrinks) to `size` bits; newly added bits are cleared.
  void Resize(std::size_t size);

  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(std::size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Reset(std::size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Assign(std::size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  void Clear();
  /// Number of set bits.
  std::size_t Count() const;
  bool Any() const;
  bool None() const { return !Any(); }

  /// True if every set bit of *this is also set in `other` (sizes must match).
  bool IsSubsetOf(const DynamicBitset& other) const;
  /// True if *this and `other` share no set bit (sizes must match).
  bool IsDisjointWith(const DynamicBitset& other) const;

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  /// Removes all bits set in `other`.
  DynamicBitset& operator-=(const DynamicBitset& other);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator-(DynamicBitset a, const DynamicBitset& b) {
    a -= b;
    return a;
  }

  bool operator==(const DynamicBitset& other) const = default;

  /// Index of the first set bit at or after `from`, or size() if none.
  std::size_t FindNext(std::size_t from) const;
  /// Index of the first set bit, or size() if none.
  std::size_t FindFirst() const { return FindNext(0); }

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> ToIndices() const;

  /// "{0, 3, 17}"-style rendering, for diagnostics.
  std::string ToString() const;

  std::size_t Hash() const;

 private:
  static std::size_t WordCount(std::size_t bits) { return (bits + 63) / 64; }

  std::size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace gqc

template <>
struct std::hash<gqc::DynamicBitset> {
  std::size_t operator()(const gqc::DynamicBitset& b) const { return b.Hash(); }
};

#endif  // GQC_UTIL_BITSET_H_
