#include "src/util/arena.h"

#include <cstring>

namespace gqc {

std::string_view StringArena::Intern(std::string_view s) {
  if (s.empty()) return std::string_view{};
  if (blocks_.empty() ||
      blocks_.back().used + s.size() > blocks_.back().capacity) {
    Block block;
    block.capacity = s.size() > kBlockSize ? s.size() : kBlockSize;
    block.data = std::make_unique<char[]>(block.capacity);
    blocks_.push_back(std::move(block));
  }
  Block& block = blocks_.back();
  char* dst = block.data.get() + block.used;
  std::memcpy(dst, s.data(), s.size());
  block.used += s.size();
  bytes_ += s.size();
  return std::string_view(dst, s.size());
}

void StringArena::Clear() {
  blocks_.clear();
  bytes_ = 0;
}

}  // namespace gqc
