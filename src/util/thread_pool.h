#ifndef GQC_UTIL_THREAD_POOL_H_
#define GQC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gqc {

/// A work-stealing thread pool for the batch containment engine.
///
/// Each worker owns a deque: it pushes and pops its own work LIFO (hot
/// caches) and steals FIFO from siblings when idle (oldest tasks first, the
/// classic stealing discipline). Tasks submitted from outside the pool are
/// distributed round-robin.
///
/// A pool constructed with `concurrency` threads runs `concurrency - 1`
/// workers: the thread calling ParallelFor always participates, so total
/// parallelism equals `concurrency`. `concurrency <= 1` means no workers —
/// ParallelFor degrades to an inline loop, which keeps single-threaded runs
/// free of any synchronization and makes 1-thread vs N-thread comparisons
/// honest.
///
/// ParallelFor may be nested (a pair-level loop spawning a disjunct-level
/// loop): while waiting, the caller executes other pool tasks instead of
/// blocking, so workers never deadlock on their own subtasks.
class ThreadPool {
 public:
  /// `concurrency` = total threads that can run tasks (callers included).
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t concurrency);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the participating caller).
  std::size_t concurrency() const { return workers_.size() + 1; }

  /// Runs fn(0) .. fn(n-1), blocking until all complete. The calling thread
  /// participates; iterations are claimed from a shared atomic counter, so
  /// scheduling is dynamic but the set of executed iterations is exact.
  /// `fn` must not throw.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Enqueues one fire-and-forget task (used by ParallelFor internally;
  /// exposed for irregular work). `fn` must not throw.
  void Submit(std::function<void()> fn);

 private:
  void WorkerLoop(std::size_t self);
  /// Runs one queued task if any is available; `home` is the deque tried
  /// first (own deque for workers, round-robin start for callers).
  bool RunOneTask(std::size_t home);
  bool PopFrom(std::size_t queue, bool lifo, std::function<void()>* out);

  std::vector<std::unique_ptr<std::mutex>> queue_mus_;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  std::size_t rr_ = 0;  // round-robin cursor for external submissions
  std::vector<std::thread> workers_;
};

}  // namespace gqc

#endif  // GQC_UTIL_THREAD_POOL_H_
