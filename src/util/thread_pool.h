#ifndef GQC_UTIL_THREAD_POOL_H_
#define GQC_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/util/sync.h"

namespace gqc {

/// A work-stealing thread pool for the batch containment engine.
///
/// Each worker owns a deque: it pushes and pops its own work LIFO (hot
/// caches) and steals FIFO from siblings when idle (oldest tasks first, the
/// classic stealing discipline). Tasks submitted from outside the pool are
/// distributed round-robin.
///
/// A pool constructed with `concurrency` threads runs `concurrency - 1`
/// workers: the thread calling ParallelFor always participates, so total
/// parallelism equals `concurrency`. `concurrency <= 1` means no workers —
/// ParallelFor degrades to an inline loop, which keeps single-threaded runs
/// free of any synchronization and makes 1-thread vs N-thread comparisons
/// honest.
///
/// ParallelFor may be nested (a pair-level loop spawning a disjunct-level
/// loop): while waiting, the caller executes other pool tasks instead of
/// blocking, so workers never deadlock on their own subtasks.
///
/// Locking (DESIGN.md §10): wake_mu_ guards the stop flag and the
/// round-robin cursor; each worker deque has its own mutex inside its
/// WorkerQueue. The one sanctioned nesting is wake -> queue (a worker
/// re-scans every deque under the wake mutex before sleeping), which the
/// rank hierarchy (kLockRankPoolWake < kLockRankPoolQueue) pins.
class ThreadPool {
 public:
  /// `concurrency` = total threads that can run tasks (callers included).
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t concurrency);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the participating caller).
  std::size_t concurrency() const { return workers_.size() + 1; }

  /// Runs fn(0) .. fn(n-1), blocking until all complete. The calling thread
  /// participates; iterations are claimed from a shared atomic counter, so
  /// scheduling is dynamic but the set of executed iterations is exact.
  /// `fn` must not throw.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Enqueues one fire-and-forget task (used by ParallelFor internally;
  /// exposed for irregular work). `fn` must not throw.
  void Submit(std::function<void()> fn);

 private:
  /// One worker's deque and the mutex guarding it. Bundling the pair lets
  /// the static analysis tie each deque to its own lock even though the
  /// set of queues is sized at runtime.
  struct WorkerQueue {
    Mutex mu{kLockRankPoolQueue, "pool-queue"};
    std::deque<std::function<void()>> items GQC_GUARDED_BY(mu);
  };

  void WorkerLoop(std::size_t self);
  /// Runs one queued task if any is available; `home` is the deque tried
  /// first (own deque for workers, round-robin start for callers).
  bool RunOneTask(std::size_t home);
  bool PopFrom(std::size_t queue, bool lifo, std::function<void()>* out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  Mutex wake_mu_{kLockRankPoolWake, "pool-wake"};
  CondVar wake_cv_;
  bool stop_ GQC_GUARDED_BY(wake_mu_) = false;
  /// Round-robin cursor for external submissions.
  std::size_t rr_ GQC_GUARDED_BY(wake_mu_) = 0;
  std::vector<std::thread> workers_;
};

}  // namespace gqc

#endif  // GQC_UTIL_THREAD_POOL_H_
