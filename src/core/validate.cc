#include "src/core/validate.h"

#include <string>

#include "src/dl/model_check.h"
#include "src/graph/validate.h"
#include "src/query/eval.h"
#include "src/util/fingerprint.h"

namespace gqc {

AuditResult ValidateCacheKey(std::string_view key,
                             const std::vector<std::string_view>& parts) {
  std::optional<std::vector<std::string>> decoded = SplitKeyParts(key);
  if (!decoded.has_value()) {
    return AuditViolation("cache key is not a valid length-prefixed encoding");
  }
  if (decoded->size() != parts.size()) {
    return AuditViolation(
        "cache key decodes to " + std::to_string(decoded->size()) +
        " parts, built from " + std::to_string(parts.size()));
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if ((*decoded)[i] != parts[i]) {
      return AuditViolation("cache key part #" + std::to_string(i) +
                            " does not round-trip: possible key aliasing "
                            "between distinct cache inputs");
    }
  }
  return std::nullopt;
}

AuditResult ValidateCountermodel(const Graph& g, const Crpq& p, const Ucrpq& q,
                                 const NormalTBox& tbox) {
  if (auto v = ValidateGraph(g)) return v;
  if (!Satisfies(g, tbox)) {
    return AuditViolation("claimed countermodel does not satisfy the TBox");
  }
  if (!Matches(g, p)) {
    return AuditViolation(
        "claimed countermodel does not satisfy the left-hand query");
  }
  if (Matches(g, q)) {
    return AuditViolation(
        "claimed countermodel satisfies the right-hand query — it refutes "
        "nothing");
  }
  return std::nullopt;
}

AuditResult ValidateCountermodel(const Graph& g, const Ucrpq& p,
                                 const Ucrpq& q, const NormalTBox& tbox) {
  if (auto v = ValidateGraph(g)) return v;
  if (!Satisfies(g, tbox)) {
    return AuditViolation("claimed countermodel does not satisfy the TBox");
  }
  if (!Matches(g, p)) {
    return AuditViolation(
        "claimed countermodel does not satisfy the left-hand query");
  }
  if (Matches(g, q)) {
    return AuditViolation(
        "claimed countermodel satisfies the right-hand query — it refutes "
        "nothing");
  }
  return std::nullopt;
}

}  // namespace gqc
