#include "src/core/minimize.h"

#include "src/dl/model_check.h"
#include "src/query/eval.h"

namespace gqc {

Graph MinimizeWitness(Graph g, const std::function<bool(const Graph&)>& invariant) {
  bool changed = true;
  // lint: bounded(each sweep deletes a node, edge, or label or else terminates; witnesses are small)
  while (changed) {
    changed = false;
    // Drop nodes (largest id first so the remaining renaming is stable-ish).
    // lint: bounded(linear scan over witness nodes)
    for (NodeId v = static_cast<NodeId>(g.NodeCount()); v-- > 0;) {
      if (g.NodeCount() <= 1) break;
      std::vector<NodeId> keep;
      // lint: bounded(linear scan over witness nodes)
      for (NodeId u = 0; u < g.NodeCount(); ++u) {
        if (u != v) keep.push_back(u);
      }
      Graph candidate = g.InducedSubgraph(keep);
      if (invariant(candidate)) {
        g = std::move(candidate);
        changed = true;
      }
    }
    // Drop edges.
    // lint: bounded(linear scan over witness edges)
    for (const Edge& e : g.AllEdges()) {
      Graph candidate = g;
      candidate.RemoveEdge(e.from, e.role, e.to);
      if (invariant(candidate)) {
        g = std::move(candidate);
        changed = true;
      }
    }
    // Drop labels.
    // lint: bounded(linear scan over witness nodes)
    for (NodeId v = 0; v < g.NodeCount(); ++v) {
      // lint: bounded(labels of a single node)
      for (uint32_t id : g.Labels(v).ToIds()) {
        Graph candidate = g;
        candidate.RemoveLabel(v, id);
        if (invariant(candidate)) {
          g = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  return g;
}

Graph MinimizeCountermodel(const Graph& g, const Ucrpq& p, const Ucrpq& q,
                           const NormalTBox& tbox) {
  auto invariant = [&](const Graph& candidate) {
    return Satisfies(candidate, tbox) && Matches(candidate, p) &&
           !Matches(candidate, q);
  };
  if (!invariant(g)) return g;  // not a countermodel; leave untouched
  return MinimizeWitness(g, invariant);
}

}  // namespace gqc
