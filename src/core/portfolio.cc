#include "src/core/portfolio.h"

#include <memory>
#include <optional>
#include <utility>

#include "src/util/sync.h"

namespace gqc {

namespace {

/// Final Unknown when no strategy answered: attribute the most informative
/// guard (a real budget trip beats race-flavoured cancellation noise) and
/// keep the last substantive strategy note.
ContainmentResult ComposeUnknown(
    const std::vector<const Strategy*>& ran,
    const std::vector<std::unique_ptr<ResourceGuard>>& guards,
    std::vector<ContainmentResult>& results) {
  ContainmentResult out;
  out.verdict = Verdict::kUnknown;
  out.attr.method = ContainmentMethod::kDirectSearch;
  std::string note;
  // lint: bounded(one result per raced strategy)
  for (std::size_t i = 0; i < ran.size(); ++i) {
    if (!results[i].attr.note.empty()) note = std::move(results[i].attr.note);
  }
  const ResourceGuard* attributed = nullptr;
  for (const auto& guard : guards) {
    if (guard->exhausted() && guard->reason() != GuardResource::kCancelled) {
      attributed = guard.get();
      break;
    }
  }
  if (attributed == nullptr) {
    for (const auto& guard : guards) {
      if (guard->exhausted()) {
        attributed = guard.get();
        break;
      }
    }
  }
  out.attr.unknown = UnknownFromGuard(attributed);
  if (attributed != nullptr && attributed->exhausted()) {
    out.attr.note = attributed->Describe();
  } else if (!note.empty()) {
    out.attr.note = std::move(note);
  } else {
    out.attr.note = "no countermodel within budget; containment not certified";
  }
  return out;
}

}  // namespace

ContainmentResult RunPortfolio(const StrategyContext& ctx,
                               const PortfolioOptions& opts) {
  PipelineStats* stats = ctx.stats;
  if (stats) stats->disjuncts_total.fetch_add(1, std::memory_order_relaxed);

  // 0. Fact board: a memoized definite verdict for this exact disjunct, or a
  //    shared countermodel (G ⊨ T, G ⊭ Q in this scope) that matches p,
  //    answers without running any strategy.
  if (opts.board != nullptr) {
    if (!opts.disjunct_key.empty()) {
      std::optional<ContainmentResult> memo =
          opts.board->LookupResult(opts.disjunct_key, stats);
      if (memo.has_value()) {
        RecordRefutation(stats, *memo);
        return std::move(*memo);
      }
    }
    if (!opts.scope_key.empty()) {
      std::optional<Graph> shared =
          opts.board->FindRefutation(opts.scope_key, *ctx.p, stats);
      if (shared.has_value()) {
        ContainmentResult r;
        r.verdict = Verdict::kNotContained;
        r.attr.method = ContainmentMethod::kDirectSearch;
        r.attr.strategy = "fact-board";
        r.attr.note = "refuted by a countermodel shared on the fact board";
        r.countermodel = std::move(shared);
        RecordRefutation(stats, r);
        if (!opts.disjunct_key.empty()) {
          opts.board->PublishResult(opts.disjunct_key, r,
                                    opts.shared_concept_limit,
                                    opts.shared_role_limit, stats);
        }
        return r;
      }
    }
  }

  // 1. Preemption: expired deadline / cancelled batch skips the race.
  {
    ResourceGuard preempt(opts.budget, opts.has_deadline, opts.deadline);
    if (preempt.Recheck(GuardPhase::kSetup)) {
      ContainmentResult r;
      r.verdict = Verdict::kUnknown;
      r.attr.unknown = UnknownFromGuard(&preempt);
      r.attr.note = preempt.Describe();
      return r;
    }
  }

  const std::vector<const Strategy*>& pool_list =
      opts.strategies.empty() ? DefaultPortfolio() : opts.strategies;
  std::vector<const Strategy*> ran;
  ran.reserve(pool_list.size());
  // lint: bounded(one applicability check per registered strategy)
  for (const Strategy* s : pool_list) {
    if (s->Applicable(ctx)) ran.push_back(s);
  }
  std::vector<ContainmentResult> results(ran.size());
  std::vector<std::unique_ptr<ResourceGuard>> guards;
  guards.reserve(ran.size());
  if (ran.empty()) return ComposeUnknown(ran, guards, results);

  // 2. The race. Each strategy runs under its own fresh guard (full budget)
  //    plus the shared race token; the first completed definite verdict
  //    claims the win and cancels everyone else.
  CancellationToken race;
  // lint: bounded(one guard per raced strategy)
  for (std::size_t i = 0; i < ran.size(); ++i) {
    guards.push_back(std::make_unique<ResourceGuard>(
        opts.budget, opts.has_deadline, opts.deadline));
    guards.back()->AddCancellation(race);
  }
  // Local race state, bundled so the analysis ties the winner slot to its
  // mutex even though both live on this stack frame.
  struct RaceState {
    Mutex mu{kLockRankRaceWinner, "portfolio-winner"};
    std::optional<std::size_t> winner GQC_GUARDED_BY(mu);
  } race_state;
  auto claimed = [&race_state]() {
    MutexLock lock(&race_state.mu);
    return race_state.winner;
  };
  auto run_one = [&](std::size_t i) {
    ContainmentResult r = ran[i]->Run(ctx, guards[i].get());
    if (r.verdict != Verdict::kUnknown) {
      bool won = false;
      {
        MutexLock lock(&race_state.mu);
        if (!race_state.winner.has_value()) {
          race_state.winner = i;
          won = true;
        }
      }
      if (won) race.Cancel();
    }
    results[i] = std::move(r);
  };
  bool raced =
      opts.pool != nullptr && opts.pool->concurrency() > 1 && ran.size() > 1;
  if (raced) {
    if (stats) stats->portfolio_races.fetch_add(1, std::memory_order_relaxed);
    opts.pool->ParallelFor(ran.size(), run_one);
  } else {
    // Degenerate race: in order, first definite wins, later strategies are
    // never started (they count as neither cancelled nor inconclusive).
    // lint: bounded(in-order sweep over the raced strategies; each Run is guard-governed)
    for (std::size_t i = 0; i < ran.size() && !claimed().has_value(); ++i) {
      run_one(i);
    }
  }
  // The race is over (ParallelFor is a barrier; the sequential sweep is this
  // thread); one locked read fixes the winner for the attribution pass.
  const std::optional<std::size_t> winner = claimed();

  // 3. Attribution + stats. A loser whose guard was tripped by cancellation
  //    after the race token fired was a casualty of the race, not a genuine
  //    inconclusive run.
  // lint: bounded(one stats record per raced strategy)
  for (std::size_t i = 0; i < ran.size(); ++i) {
    if (!raced && winner.has_value() && i > *winner) break;  // never started
    if (stats) {
      stats->RecordGuard(*guards[i]);
      if (winner.has_value() && i == *winner) {
        stats->RecordStrategyWin(ran[i]->id());
      } else {
        bool race_cancelled =
            race.cancelled() &&
            guards[i]->reason() == GuardResource::kCancelled;
        stats->RecordStrategyLoss(ran[i]->id(), race_cancelled);
      }
    }
  }
  if (!winner.has_value()) return ComposeUnknown(ran, guards, results);

  ContainmentResult r = std::move(results[*winner]);
  r.attr.strategy = ran[*winner]->name();
  RecordRefutation(stats, r);

  // 4. Publish facts: the verdict memo, plus any verified countermodel that
  //    fits the shared (schema, Q) vocabulary layer — sibling disjuncts and
  //    later pairs in the same scope can be refuted by a single Matches().
  if (opts.board != nullptr) {
    if (!opts.scope_key.empty() && r.countermodel.has_value()) {
      opts.board->PublishCountermodel(opts.scope_key, *r.countermodel,
                                      opts.shared_concept_limit,
                                      opts.shared_role_limit, stats);
    }
    if (!opts.disjunct_key.empty()) {
      opts.board->PublishResult(opts.disjunct_key, r,
                                opts.shared_concept_limit,
                                opts.shared_role_limit, stats);
    }
  }
  return r;
}

}  // namespace gqc
