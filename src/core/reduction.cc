#include "src/core/reduction.h"

#include <algorithm>

#include "src/dl/transforms.h"
#include "src/entailment/alci_oneway.h"
#include "src/entailment/alcq_simple.h"
#include "src/entailment/witness_search.h"
#include "src/query/eval.h"

namespace gqc {

namespace {

/// Projects engine-level realizable masks onto the H0 search space; a stub
/// type over the H0 space is allowed iff some realizable engine mask agrees
/// with it on the shared support.
std::vector<uint64_t> ProjectRealizable(const TypeSpace& engine_space,
                                        const std::vector<uint64_t>& engine_masks,
                                        const TypeSpace& h0_space) {
  // Positions of h0 support concepts within the engine space. Concepts
  // unknown to the engine space are unconstrained there: both values must be
  // admitted; handle by enumerating completions of the missing bits.
  std::vector<std::size_t> engine_pos(h0_space.arity(), TypeSpace::npos);
  std::vector<std::size_t> missing;
  // lint: bounded(linear in the H0 support arity, capped by max_support_bits)
  for (std::size_t i = 0; i < h0_space.arity(); ++i) {
    engine_pos[i] = engine_space.PositionOf(h0_space.support()[i]);
    if (engine_pos[i] == TypeSpace::npos) missing.push_back(i);
  }
  std::vector<uint64_t> base;
  base.reserve(engine_masks.size());
  // lint: bounded(masks were enumerated under the guarded Tp fixpoint)
  for (uint64_t m : engine_masks) {
    uint64_t projected = 0;
    // lint: bounded(linear in the H0 support arity)
    for (std::size_t i = 0; i < h0_space.arity(); ++i) {
      if (engine_pos[i] != TypeSpace::npos && ((m >> engine_pos[i]) & 1)) {
        projected |= uint64_t{1} << i;
      }
    }
    base.push_back(projected);
  }
  std::sort(base.begin(), base.end());
  base.erase(std::unique(base.begin(), base.end()), base.end());
  if (missing.empty() || missing.size() > 12) return base;
  std::vector<uint64_t> out;
  out.reserve(base.size() << missing.size());
  // lint: bounded(one pass over the projected base masks)
  for (uint64_t m : base) {
    // lint: bounded(missing.size is capped at 12, so at most 4096 combinations)
    for (uint64_t combo = 0; combo < (uint64_t{1} << missing.size()); ++combo) {
      uint64_t mask = m;
      // lint: bounded(linear in missing, at most 12)
      for (std::size_t j = 0; j < missing.size(); ++j) {
        if ((combo >> j) & 1) mask |= uint64_t{1} << missing[j];
      }
      out.push_back(mask);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Result<TpClosure> ComputeTpClosure(const Ucrpq& q, const NormalTBox& tbox,
                                   bool alcq_case, Vocabulary* vocab,
                                   const ReductionOptions& options) {
  PhaseTimer timer(options.stats ? &options.stats->entailment_ns : nullptr);

  auto factorization = FactorizeSimpleUcrpq(q, vocab, options.factorize);
  if (!factorization.ok()) {
    return Result<TpClosure>::Error("factorization failed: " +
                                    factorization.error());
  }
  TpClosure closure;
  closure.factorization = std::move(factorization).value();
  closure.alcq_case = alcq_case;

  // Tp(T, Q̂): realizable types, computed by the matching engine. The
  // type-elimination fixpoints bill the shared guard under kEntailment.
  EngineLimits limits = options.countermodel.limits;
  limits.guard_phase = GuardPhase::kEntailment;
  if (alcq_case) {
    AlcqSimpleEngine engine(&closure.factorization, vocab, limits);
    auto set = engine.RealizableTypes(tbox);
    closure.engine_space = set.space;
    closure.engine_masks = std::move(set.masks);
    closure.engine_capped = engine.hit_cap();
  } else {
    AlciOnewayEngine engine(&closure.factorization, vocab, limits);
    auto set = engine.RealizableTypes(tbox);
    closure.engine_space = set.space;
    closure.engine_masks = std::move(set.masks);
    closure.engine_capped = engine.hit_cap();
  }
  return closure;
}

ReductionResult ContainmentViaEntailment(const Crpq& p, const Ucrpq& /*q*/,
                                         const NormalTBox& tbox,
                                         const TpClosure& closure,
                                         const ReductionOptions& options) {
  // Q itself is not consulted here: `closure` already carries its
  // factorization (Q̂) and Tp masks, computed by ComputeTpClosure(q, ...).
  PhaseTimer timer(options.stats ? &options.stats->reduction_ns : nullptr);
  ReductionResult result;
  const SimpleFactorization& f = closure.factorization;

  // H0 search space: T, Q̂ (with permissions), p.
  std::vector<uint32_t> ids = tbox.ConceptIds();
  // lint: bounded(mentioned concepts of Q-hat, linear in query size)
  for (uint32_t id : f.q_hat.MentionedConcepts()) ids.push_back(id);
  // lint: bounded(mentioned concepts of p, linear in query size)
  for (uint32_t id : p.MentionedConcepts()) ids.push_back(id);
  TypeSpace h0_space{std::move(ids)};
  if (h0_space.arity() > options.countermodel.limits.max_support_bits) {
    result.note = "H0 type space too large";
    return result;
  }

  std::vector<uint64_t> allowed =
      ProjectRealizable(closure.engine_space, closure.engine_masks, h0_space);
  if (allowed.empty() && closure.engine_capped) {
    result.note = "Tp computation capped";
    return result;
  }

  // Search for the central part H0: ⊨ p, ⊨ T (participation deferred at
  // stubs with Tp types), ⊭ Q̂, seeded from expansions of p and quotients.
  ExpansionSet expansions = CanonicalExpansions(p, options.countermodel.expansion);
  bool exhaustive = expansions.exhaustive;
  bool capped = closure.engine_capped;

  Ucrpq p_union;
  p_union.AddDisjunct(p);

  // The H0 central-part search bills the shared guard under kReduction.
  EngineLimits limits = options.countermodel.limits;
  limits.guard_phase = GuardPhase::kReduction;

  for (const Expansion& exp : expansions.expansions) {
    if (GuardExhausted(limits)) {
      capped = true;
      break;
    }
    std::vector<Graph> seeds =
        SatisfyingQuotients(exp.graph, p, options.countermodel.max_quotients);
    if (seeds.size() >= options.countermodel.max_quotients ||
        exp.graph.NodeCount() > 8) {
      capped = true;
    }
    // lint: bounded(seeds are capped by max_quotients; FindWitness polls the shared guard per step)
    for (const Graph& seed : seeds) {
      WitnessProblem problem;
      problem.space = &h0_space;
      problem.tbox = &tbox;
      problem.forbid = &f.q_hat;
      problem.require = &p_union;
      problem.seed = &seed;
      WitnessProblem::Deferral deferral;
      deferral.allowed_masks = &allowed;
      deferral.forbid_outgoing = closure.alcq_case;
      problem.deferral = deferral;
      WitnessResult w = FindWitness(problem, limits);
      if (w.answer == EngineAnswer::kYes) {
        result.countermodel_found = EngineAnswer::kYes;
        result.central_part = std::move(w.witness);
        return result;
      }
      if (w.answer == EngineAnswer::kUnknown) capped = true;
    }
  }
  result.countermodel_found =
      (exhaustive && !capped) ? EngineAnswer::kNo : EngineAnswer::kUnknown;
  return result;
}

ReductionResult ContainmentViaEntailment(const Crpq& p, const Ucrpq& q,
                                         const NormalTBox& tbox, bool alcq_case,
                                         Vocabulary* vocab,
                                         const ReductionOptions& options) {
  auto closure = ComputeTpClosure(q, tbox, alcq_case, vocab, options);
  if (!closure.ok()) {
    ReductionResult result;
    result.note = closure.error();
    return result;
  }
  return ContainmentViaEntailment(p, q, tbox, closure.value(), options);
}

}  // namespace gqc
