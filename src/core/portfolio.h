#ifndef GQC_CORE_PORTFOLIO_H_
#define GQC_CORE_PORTFOLIO_H_

#include <chrono>
#include <string>
#include <vector>

#include "src/core/factboard.h"
#include "src/core/strategy.h"
#include "src/util/thread_pool.h"

namespace gqc {

/// Options for one racing portfolio decision (one disjunct).
struct PortfolioOptions {
  /// Strategies to race; empty means DefaultPortfolio(). Inapplicable
  /// entries (Strategy::Applicable false) are skipped.
  std::vector<const Strategy*> strategies;
  /// Pool the race runs on; null (or concurrency 1) degrades to an in-order
  /// first-definite-wins sweep with the same per-strategy budgets — verdicts
  /// stay sound either way, only wall-clock changes.
  ThreadPool* pool = nullptr;

  /// Optional fact exchange. `scope_key` identifies the (schema, Q)
  /// vocabulary layer countermodels are shared under; `disjunct_key`
  /// memoizes this disjunct's definite verdict. Empty keys disable the
  /// respective sharing; a null board disables both. Keys carry their
  /// fingerprint (FpKey), built once by the caller, so the board probes
  /// without rehashing the canonical text.
  SharedFactBoard* board = nullptr;
  FpKey scope_key;
  FpKey disjunct_key;
  /// Shared base-layer symbol counts (ctx.vocab's (schema, Q) prefix);
  /// graphs using ids at or above these limits are never published.
  std::size_t shared_concept_limit = 0;
  std::size_t shared_role_limit = 0;

  /// Per-strategy budget: every racer gets a FRESH guard from this budget
  /// (plus the shared race-cancellation token), so each strategy sees at
  /// least the step/memory budget the sequential pipeline would have given
  /// it — which is what makes portfolio definite verdicts a superset of
  /// sequential ones (budget monotonicity + soundness).
  ResourceBudget budget;
  /// Absolute pair deadline shared by every racer (ignored unless
  /// `has_deadline`).
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
};

/// Decides one disjunct by racing the applicable strategies (gimsatul-style
/// portfolio): consult the fact board, then launch every applicable strategy
/// with its own guard; the first definite verdict cancels the rest through
/// the shared race token (ResourceGuard::AddCancellation) and becomes the
/// answer, with the winning strategy recorded in `Attribution::strategy`.
/// Verified countermodels and the definite verdict are published back to the
/// board for sibling disjuncts and later pairs.
///
/// Soundness under cancellation: losers unwind to kUnknown at their next
/// guard poll and are discarded — a definite verdict is only ever taken from
/// a strategy run that completed, and completed definite verdicts are exact
/// by the Strategy contract.
///
/// Records per-strategy win/cancelled/inconclusive tallies, guard spend, and
/// fact-board traffic into ctx.stats.
[[nodiscard]] ContainmentResult RunPortfolio(const StrategyContext& ctx,
                                             const PortfolioOptions& opts);

}  // namespace gqc

#endif  // GQC_CORE_PORTFOLIO_H_
