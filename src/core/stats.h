#ifndef GQC_CORE_STATS_H_
#define GQC_CORE_STATS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "src/core/strategy_id.h"
#include "src/util/guard.h"

namespace gqc {

/// Aggregated observability for the containment pipeline: per-phase wall
/// time, cache effectiveness, countermodel sizes, and verdict/method tallies.
///
/// One PipelineStats instance may be shared by many concurrent workers (the
/// batch engine threads one through every pair); every field is an atomic
/// counter updated with relaxed read-modify-writes, so recording is wait-free
/// and snapshots are approximate only while work is still in flight.
///
/// Concurrency contract (DESIGN.md §10): this struct is lock-free by design
/// — counters are independent, no invariant spans two fields, and relaxed
/// ordering is sufficient because readers only consume quiescent snapshots
/// (after a batch, or accepting in-flight skew). Every atomic access here
/// spells its memory order explicitly; the atomic-memory-order lint enforces
/// that repo-wide.
///
/// Exported as JSON by ToJson() — the schema is documented in DESIGN.md §
/// "Batch engine".
struct PipelineStats {
  // --- phase wall times (nanoseconds, summed across workers) ---
  std::atomic<uint64_t> parse_ns{0};        // schema/query text -> AST
  std::atomic<uint64_t> normalize_ns{0};    // TBox -> NormalTBox
  std::atomic<uint64_t> screen_ns{0};       // cheap exact screens (step 1)
  std::atomic<uint64_t> direct_ns{0};       // direct countermodel search (step 2)
  std::atomic<uint64_t> entailment_ns{0};   // Tp(T, Q̂) closure computation
  std::atomic<uint64_t> reduction_ns{0};    // §3 reduction H0 search (step 3)
  std::atomic<uint64_t> batch_wall_ns{0};   // end-to-end batch wall time

  // --- verdict tallies (one per decided pair) ---
  std::atomic<uint64_t> pairs_total{0};
  std::atomic<uint64_t> pairs_contained{0};
  std::atomic<uint64_t> pairs_not_contained{0};
  std::atomic<uint64_t> pairs_unknown{0};
  std::atomic<uint64_t> pairs_error{0};  // parse/setup failures

  // --- method tallies (which decision path answered) ---
  std::atomic<uint64_t> method_classical{0};
  std::atomic<uint64_t> method_direct{0};
  std::atomic<uint64_t> method_sparse{0};
  std::atomic<uint64_t> method_reduction{0};
  std::atomic<uint64_t> method_trivial{0};

  // --- work volume ---
  std::atomic<uint64_t> disjuncts_total{0};

  // --- strategy attribution (src/core/strategy.h) ---
  // Indexed by StrategyId. A "win" is a definite verdict credited to the
  // strategy (sequential or portfolio mode); "cancelled" counts portfolio
  // losers unwound by race cancellation after a sibling's definite verdict;
  // "inconclusive" counts completed runs that answered kUnknown.
  std::array<std::atomic<uint64_t>, kStrategyCount> strategy_wins{};
  std::array<std::atomic<uint64_t>, kStrategyCount> strategy_cancelled{};
  std::array<std::atomic<uint64_t>, kStrategyCount> strategy_inconclusive{};
  std::atomic<uint64_t> portfolio_races{0};  // disjuncts decided by racing

  // --- shared fact board (src/core/factboard.h) ---
  std::atomic<uint64_t> facts_published{0};  // countermodels/verdicts exported
  std::atomic<uint64_t> facts_consumed{0};   // decisions short-cut by a fact

  // --- cache effectiveness ---
  std::atomic<uint64_t> normal_tbox_hits{0};
  std::atomic<uint64_t> normal_tbox_misses{0};
  std::atomic<uint64_t> regex_hits{0};
  std::atomic<uint64_t> regex_misses{0};
  std::atomic<uint64_t> closure_hits{0};
  std::atomic<uint64_t> closure_misses{0};
  std::atomic<uint64_t> schema_ctx_hits{0};
  std::atomic<uint64_t> schema_ctx_misses{0};
  std::atomic<uint64_t> query_ctx_hits{0};
  std::atomic<uint64_t> query_ctx_misses{0};
  std::atomic<uint64_t> compile_memo_hits{0};
  std::atomic<uint64_t> compile_memo_misses{0};

  // --- cache lifecycle (long-running serving; DESIGN.md §12) ---
  std::atomic<uint64_t> cache_evictions{0};      // entries dropped by Evict()
  std::atomic<uint64_t> cache_evicted_bytes{0};  // estimated bytes released
  /// Gauge, not a counter: the owner (EngineCore) refreshes it from the live
  /// caches before every export, so snapshots show current residency.
  std::atomic<uint64_t> cache_retained_bytes{0};
  std::atomic<uint64_t> warmstart_loaded{0};     // contexts rebuilt from snapshot
  std::atomic<uint64_t> warmstart_hits{0};       // hits on warm-started contexts
  std::atomic<uint64_t> warmstart_rejected{0};   // corrupt/stale snapshots refused
  std::atomic<uint64_t> requests_shed{0};        // admission-control sheds (serve)

  // --- countermodel sizes (nodes, over refuted pairs) ---
  std::atomic<uint64_t> countermodel_count{0};
  std::atomic<uint64_t> countermodel_nodes_total{0};
  std::atomic<uint64_t> countermodel_nodes_max{0};

  // --- resource governance (one RecordGuard per guarded decision) ---
  std::atomic<uint64_t> guards_total{0};        // guarded decisions recorded
  std::atomic<uint64_t> budget_deadline{0};     // trips by resource
  std::atomic<uint64_t> budget_steps{0};
  std::atomic<uint64_t> budget_memory{0};
  std::atomic<uint64_t> budget_cancelled{0};
  std::atomic<uint64_t> pairs_preempted{0};     // skipped before any search ran
  /// Per-phase guard-step spend histogram: spend_hist[phase][b] counts
  /// decisions whose phase spend fell in bucket b = floor(log10(steps)) + 1
  /// (bucket 0 = zero steps), saturating at the last bucket (>= 10^6).
  static constexpr std::size_t kSpendBuckets = 8;
  std::array<std::array<std::atomic<uint64_t>, kSpendBuckets>, kGuardPhaseCount>
      spend_hist{};

  /// Records a countermodel of `nodes` nodes (updates count/total/max).
  void RecordCountermodel(uint64_t nodes);

  /// Records one finished guarded decision: budget-exhaustion tallies by trip
  /// reason plus the per-phase spend histogram.
  void RecordGuard(const ResourceGuard& guard);

  /// Tallies a pair that was preempted (deadline already past / batch
  /// cancelled before its first search).
  void RecordPreempted();

  /// Credits strategy `id` with a definite verdict.
  void RecordStrategyWin(StrategyId id);
  /// Tallies a completed strategy run that did not win: cancelled by the
  /// race (a sibling already answered) or genuinely inconclusive.
  void RecordStrategyLoss(StrategyId id, bool race_cancelled);

  /// Zeroes every counter.
  void Reset();

  /// Snapshot as a JSON object (single line). Derived figures included:
  /// per-phase milliseconds, cache hit rates, pairs/sec over batch_wall_ns.
  std::string ToJson() const;
};

/// RAII phase timer: adds the elapsed wall time to `*sink` on destruction.
/// A null sink makes it a no-op, so instrumented code pays nothing when no
/// stats are attached.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::atomic<uint64_t>* sink)
      : sink_(sink),
        start_(sink ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{}) {}
  ~PhaseTimer() {
    if (sink_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count(),
        std::memory_order_relaxed);
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::atomic<uint64_t>* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gqc

#endif  // GQC_CORE_STATS_H_
