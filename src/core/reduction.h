#ifndef GQC_CORE_REDUCTION_H_
#define GQC_CORE_REDUCTION_H_

#include "src/core/sparse.h"
#include "src/core/stats.h"
#include "src/query/factorize.h"
#include "src/util/result.h"

namespace gqc {

/// The §3 reduction of containment modulo schema to finite entailment, for
/// TBoxes with participation constraints:
///   p ⊑_T Q  iff  there is no finite graph H0 (the central part of a
///   star-like countermodel, Lemma 3.5) with H0 ⊨ p, H0 ⊨ T0 (participation
///   dropped at stub nodes), H0 ⊭ Q̂, where every node still violating a
///   participation constraint is a stub: its type is in Tp(T, Q̂) — realized
///   in some finite graph satisfying T and refuting Q — and it has exactly
///   one incident edge (and no outgoing edges in the ALCQ case).
///
/// Tp(T, Q̂) is computed by the §5/§6 entailment engines; the H0 search uses
/// the bounded witness search with the deferral policy.
struct ReductionResult {
  /// kYes: containment REFUTED (H0 in `central_part`); kNo: containment
  /// holds (exact when nothing was capped); kUnknown otherwise.
  EngineAnswer countermodel_found = EngineAnswer::kUnknown;
  std::optional<Graph> central_part;
  std::string note;
};

struct ReductionOptions {
  CountermodelOptions countermodel;
  FactorizeOptions factorize;
  /// Optional stats sink (entailment_ns / reduction_ns phases).
  PipelineStats* stats = nullptr;
};

/// The (T, Q)-dependent half of the reduction, independent of the left-hand
/// disjunct p: the factorization Q̂ of Q and the realizable-type set
/// Tp(T, Q̂) computed by the matching entailment engine. This is the
/// expensive, *reusable* part — one closure serves every disjunct of every P
/// checked against the same (T, Q), which is what the batch engine's
/// entailment-closure cache exploits.
///
/// The closure interns fresh permission/marker concepts into the vocabulary
/// it was computed with; it is valid in any vocabulary that extends that one
/// (same ids), which the engine guarantees by cloning vocabularies from the
/// closure's context.
struct TpClosure {
  SimpleFactorization factorization;
  TypeSpace engine_space{std::vector<uint32_t>{}};
  std::vector<uint64_t> engine_masks;
  /// True if the engine hit a resource cap while computing Tp — kNo answers
  /// downstream then degrade to kUnknown.
  bool engine_capped = false;
  /// Which engine computed the closure (stub discipline differs).
  bool alcq_case = true;
};

/// Computes the closure for connected simple UC2RPQ `q` against normalized
/// `tbox`. `alcq_case` selects the engine (§6 ALCQ vs §5 ALCI one-way).
/// Errors when the factorization fails (query not simple/connected, caps).
Result<TpClosure> ComputeTpClosure(const Ucrpq& q, const NormalTBox& tbox,
                                   bool alcq_case, Vocabulary* vocab,
                                   const ReductionOptions& options);

/// Runs the reduction for one connected disjunct p against connected simple
/// UC2RPQ q and a normalized TBox in a supported fragment (ALCQ, or ALCI
/// with one-way q), reusing a precomputed `closure` for (tbox, q). Does not
/// mutate any vocabulary — safe to call concurrently for different p against
/// one shared closure.
ReductionResult ContainmentViaEntailment(const Crpq& p, const Ucrpq& q,
                                         const NormalTBox& tbox,
                                         const TpClosure& closure,
                                         const ReductionOptions& options);

/// Convenience form computing the closure inline (the pre-batching entry
/// point). `alcq_case` selects the stub discipline (no outgoing edges) and
/// which engine computes Tp.
ReductionResult ContainmentViaEntailment(const Crpq& p, const Ucrpq& q,
                                         const NormalTBox& tbox, bool alcq_case,
                                         Vocabulary* vocab,
                                         const ReductionOptions& options);

}  // namespace gqc

#endif  // GQC_CORE_REDUCTION_H_
