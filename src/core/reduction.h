#ifndef GQC_CORE_REDUCTION_H_
#define GQC_CORE_REDUCTION_H_

#include "src/core/sparse.h"
#include "src/query/factorize.h"

namespace gqc {

/// The §3 reduction of containment modulo schema to finite entailment, for
/// TBoxes with participation constraints:
///   p ⊑_T Q  iff  there is no finite graph H0 (the central part of a
///   star-like countermodel, Lemma 3.5) with H0 ⊨ p, H0 ⊨ T0 (participation
///   dropped at stub nodes), H0 ⊭ Q̂, where every node still violating a
///   participation constraint is a stub: its type is in Tp(T, Q̂) — realized
///   in some finite graph satisfying T and refuting Q — and it has exactly
///   one incident edge (and no outgoing edges in the ALCQ case).
///
/// Tp(T, Q̂) is computed by the §5/§6 entailment engines; the H0 search uses
/// the bounded witness search with the deferral policy.
struct ReductionResult {
  /// kYes: containment REFUTED (H0 in `central_part`); kNo: containment
  /// holds (exact when nothing was capped); kUnknown otherwise.
  EngineAnswer countermodel_found = EngineAnswer::kUnknown;
  std::optional<Graph> central_part;
  std::string note;
};

struct ReductionOptions {
  CountermodelOptions countermodel;
  FactorizeOptions factorize;
};

/// Runs the reduction for one connected disjunct p against connected simple
/// UC2RPQ q and a normalized TBox in a supported fragment (ALCQ, or ALCI
/// with one-way q). `alcq_case` selects the stub discipline (no outgoing
/// edges) and which engine computes Tp.
ReductionResult ContainmentViaEntailment(const Crpq& p, const Ucrpq& q,
                                         const NormalTBox& tbox, bool alcq_case,
                                         Vocabulary* vocab,
                                         const ReductionOptions& options);

}  // namespace gqc

#endif  // GQC_CORE_REDUCTION_H_
