#ifndef GQC_CORE_LIFECYCLE_H_
#define GQC_CORE_LIFECYCLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/fingerprint.h"
#include "src/util/flat_map.h"

namespace gqc {

/// Cache-lifecycle primitives for long-running serving (DESIGN.md §12).
///
/// A batch run fills the shared caches and exits; a persistent server must
/// keep them *useful under a memory bound*. Every bounded cache attaches a
/// RetainMeta to each entry, scores entries by recency × recompute-cost
/// (the vlog GBGraph cache-retain discipline: drop what is cheap to rebuild
/// and cold, keep what is expensive and hot), and evicts the lowest-scoring
/// entries when over budget or when an explicit Evict(pressure) hook fires.
///
/// Eviction is *lifecycle only*: a cache stores pure functions of its keys,
/// so dropping an entry can never change a verdict — the next request
/// recomputes the identical value (the eviction-soundness test pins this).

/// Per-cache bounds. 0 = unbounded on that axis. Entry budgets are exact;
/// byte budgets compare against the cache's resident-size *estimates*
/// (documented per cache), so they bound growth, not precise RSS.
struct CacheBudget {
  std::size_t max_entries = 0;
  std::size_t max_bytes = 0;

  bool bounded() const { return max_entries > 0 || max_bytes > 0; }
};

/// Retain bookkeeping attached to every entry of a bounded cache.
struct RetainMeta {
  uint64_t touch = 0;     ///< owner's lifecycle tick at the last hit/insert
  uint64_t cost = 1;      ///< recompute cost (build wall ns, clamped >= 1)
  std::size_t bytes = 0;  ///< resident-size estimate
};

/// Retain score: recompute-cost discounted by age in ticks. Higher = more
/// worth keeping; Evict drops the lowest-scoring entries first. A just-hit
/// expensive entry maximizes the score; a cold cheap one minimizes it.
inline double RetainScore(uint64_t now_tick, const RetainMeta& m) {
  double age = static_cast<double>(now_tick - m.touch) + 1.0;
  return static_cast<double>(m.cost == 0 ? 1 : m.cost) / age;
}

/// A cached value plus its retain metadata.
template <typename V>
struct Retained {
  V value{};
  RetainMeta meta;
};

/// How many entries an Evict(pressure) pass drops: ceil(size * pressure),
/// clamped to [0, size]. pressure >= 1 empties the cache.
inline std::size_t EvictionCount(std::size_t size, double pressure) {
  if (size == 0 || pressure <= 0.0) return 0;
  if (pressure >= 1.0) return size;
  auto n = static_cast<std::size_t>(
      static_cast<double>(size) * pressure + 0.999999);
  return std::min(n, size);
}

/// Summed resident-size estimate of a retained FlatMap.
template <typename V, typename Hash>
std::size_t RetainedBytes(const FlatMap<FpKey, Retained<V>, Hash>& map) {
  std::size_t total = 0;
  map.ForEach([&](const FpKey&, const Retained<V>& r) {
    total += r.meta.bytes;
  });
  return total;
}

/// Drops the `drop` lowest-scoring entries of `map` (ties broken by key text
/// so eviction order is deterministic), adds the freed byte estimates to
/// `*bytes_freed` (may be null), shrinks the slot arrays, and returns the
/// number of entries dropped.
template <typename V, typename Hash>
std::size_t EvictLowestScore(FlatMap<FpKey, Retained<V>, Hash>* map,
                             uint64_t now_tick, std::size_t drop,
                             std::size_t* bytes_freed = nullptr) {
  drop = std::min(drop, map->size());
  if (drop == 0) return 0;
  std::vector<std::pair<double, const FpKey*>> scored;
  scored.reserve(map->size());
  map->ForEach([&](const FpKey& k, const Retained<V>& r) {
    scored.emplace_back(RetainScore(now_tick, r.meta), &k);
  });
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second->text() < b.second->text();
            });
  // Copy the doomed keys out first: Erase invalidates the pointers the
  // scoreboard borrows from the map's slots.
  std::vector<FpKey> doomed;
  doomed.reserve(drop);
  for (std::size_t i = 0; i < drop; ++i) doomed.push_back(*scored[i].second);
  for (const FpKey& key : doomed) {
    if (bytes_freed != nullptr) {
      if (const auto* r = map->Find(key)) *bytes_freed += r->meta.bytes;
    }
    map->Erase(key);
  }
  map->ShrinkToFit();
  return drop;
}

/// Entries to drop to bring (`entries`, `bytes`) back under `budget` with
/// slack: targets 7/8 of each bound so one insert does not immediately
/// re-trigger eviction. Returns 0 when within budget or unbounded.
inline std::size_t OverBudgetDropCount(const CacheBudget& budget,
                                       std::size_t entries,
                                       std::size_t bytes) {
  std::size_t drop = 0;
  if (budget.max_entries > 0 && entries > budget.max_entries) {
    std::size_t target = budget.max_entries - budget.max_entries / 8;
    drop = std::max(drop, entries - target);
  }
  if (budget.max_bytes > 0 && bytes > budget.max_bytes && entries > 0) {
    // Approximate bytes-per-entry to convert the byte overshoot into a
    // deterministic entry count.
    std::size_t per_entry = std::max<std::size_t>(1, bytes / entries);
    std::size_t target_bytes = budget.max_bytes - budget.max_bytes / 8;
    std::size_t excess = bytes - target_bytes;
    drop = std::max(drop, std::min(entries, (excess + per_entry - 1) / per_entry));
  }
  return drop;
}

}  // namespace gqc

#endif  // GQC_CORE_LIFECYCLE_H_
