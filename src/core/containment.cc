#include "src/core/containment.h"

#include <algorithm>
#include <utility>

#include "src/core/minimize.h"
#include "src/core/validate.h"
#include "src/graph/validate.h"
#include "src/dl/model_check.h"
#include "src/dl/normalize.h"
#include "src/query/eval.h"
#include "src/util/invariant.h"

namespace gqc {

void TallyPair(PipelineStats* stats, const ContainmentResult& r) {
  if (stats == nullptr) return;
  stats->pairs_total.fetch_add(1, std::memory_order_relaxed);
  switch (r.verdict) {
    case Verdict::kContained:
      stats->pairs_contained.fetch_add(1, std::memory_order_relaxed);
      break;
    case Verdict::kNotContained:
      stats->pairs_not_contained.fetch_add(1, std::memory_order_relaxed);
      break;
    case Verdict::kUnknown:
      stats->pairs_unknown.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  switch (r.method) {
    case ContainmentMethod::kClassical:
      stats->method_classical.fetch_add(1, std::memory_order_relaxed);
      break;
    case ContainmentMethod::kDirectSearch:
      stats->method_direct.fetch_add(1, std::memory_order_relaxed);
      break;
    case ContainmentMethod::kSparse:
      stats->method_sparse.fetch_add(1, std::memory_order_relaxed);
      break;
    case ContainmentMethod::kReduction:
      stats->method_reduction.fetch_add(1, std::memory_order_relaxed);
      break;
    case ContainmentMethod::kTrivial:
      stats->method_trivial.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

namespace {

void RecordRefutation(PipelineStats* stats, const ContainmentResult& r) {
  if (stats == nullptr || r.verdict != Verdict::kNotContained) return;
  uint64_t nodes = 0;
  if (r.countermodel.has_value()) {
    nodes = r.countermodel->NodeCount();
  } else if (r.central_part.has_value()) {
    nodes = r.central_part->NodeCount();
  }
  stats->RecordCountermodel(nodes);
}

/// True if the disjunct matches every graph with at least one node: no unary
/// atoms and every binary atom admits the empty word (e.g. pure reachability
/// queries like (r+s)*(x, y)).
bool MatchesAnyNonEmptyGraph(const Crpq& d) {
  if (!d.UnaryAtoms().empty() || d.VarCount() == 0) return false;
  return std::all_of(d.BinaryAtoms().begin(), d.BinaryAtoms().end(),
                     [](const BinaryAtom& a) { return a.allow_empty; });
}

/// Trip details for a kUnknown verdict. "caps" means a structural search cap
/// gave up, not a resource budget.
UnknownInfo MakeUnknownInfo(const ResourceGuard* guard) {
  UnknownInfo info;
  if (guard != nullptr && guard->exhausted()) {
    info.reason = GuardResourceName(guard->reason());
    info.phase = GuardPhaseName(guard->trip_phase());
  } else {
    info.reason = "caps";
  }
  if (guard != nullptr) info.steps = guard->steps_spent();
  return info;
}

}  // namespace

ContainmentChecker::ContainmentChecker(Vocabulary* vocab,
                                       ContainmentOptions options)
    : vocab_(vocab),
      options_(std::move(options)),
      caches_(std::make_unique<ContainmentCaches>()) {}

ContainmentResult ContainmentChecker::Decide(const Ucrpq& p, const Ucrpq& q,
                                             const TBox& schema) {
  if (options_.enable_caching) {
    std::shared_ptr<const NormalTBox> normalized =
        caches_->GetNormalized(schema, vocab_, options_.stats);
    return Decide(p, q, *normalized);
  }
  PipelineStats* stats = options_.stats;
  if (stats) stats->normal_tbox_misses.fetch_add(1, std::memory_order_relaxed);
  std::optional<NormalTBox> normalized;
  {
    PhaseTimer timer(stats ? &stats->normalize_ns : nullptr);
    normalized = Normalize(schema, vocab_);
  }
  return Decide(p, q, *normalized);
}

ContainmentResult ContainmentChecker::Decide(const Ucrpq& p, const Ucrpq& q,
                                             const NormalTBox& schema) {
  // P ⊑_T Q iff every disjunct of P is contained. Report the first
  // counterexample; a kUnknown disjunct makes the overall answer kUnknown
  // unless some other disjunct already refutes.
  //
  // The pair deadline is pinned once here and shared by every disjunct's
  // guard; step/memory budgets are per disjunct (fresh guard each) so budget
  // verdicts do not depend on how disjuncts are scheduled.
  const ResourceBudget& budget = options_.resources;
  bool has_deadline = budget.deadline_ms > 0;
  auto deadline = has_deadline
                      ? std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double, std::milli>(
                                    budget.deadline_ms))
                      : std::chrono::steady_clock::time_point{};
  std::vector<ContainmentResult> per_disjunct;
  per_disjunct.reserve(p.Disjuncts().size());
  for (const Crpq& disjunct : p.Disjuncts()) {
    ResourceGuard guard(budget, has_deadline, deadline);
    per_disjunct.push_back(
        DecideDisjunct(disjunct, q, schema, /*closure=*/nullptr, &guard));
    if (options_.stats != nullptr) options_.stats->RecordGuard(guard);
    if (per_disjunct.back().verdict == Verdict::kNotContained) break;
  }
  ContainmentResult combined = Combine(std::move(per_disjunct));
  TallyPair(options_.stats, combined);
  return combined;
}

ContainmentResult ContainmentChecker::Combine(
    std::vector<ContainmentResult> per_disjunct) {
  ContainmentResult combined;
  combined.verdict = Verdict::kContained;
  combined.method = ContainmentMethod::kTrivial;
  for (ContainmentResult& r : per_disjunct) {
    if (r.verdict == Verdict::kNotContained) return std::move(r);
    if (r.verdict == Verdict::kUnknown) {
      combined.verdict = Verdict::kUnknown;
      combined.method = r.method;
      combined.note = r.note;
      combined.unknown = std::move(r.unknown);
    } else if (combined.verdict == Verdict::kContained) {
      combined.method = r.method;
      if (combined.note.empty()) combined.note = r.note;
    }
  }
  return combined;
}

ContainmentResult ContainmentChecker::DecideEquivalence(const Ucrpq& p, const Ucrpq& q,
                                                        const NormalTBox& schema) {
  ContainmentResult forward = Decide(p, q, schema);
  if (forward.verdict == Verdict::kNotContained) {
    forward.note = "P ⋢_T Q; " + forward.note;
    return forward;
  }
  ContainmentResult backward = Decide(q, p, schema);
  if (backward.verdict == Verdict::kNotContained) {
    backward.note = "Q ⋢_T P; " + backward.note;
    return backward;
  }
  ContainmentResult combined;
  combined.verdict = (forward.verdict == Verdict::kContained &&
                      backward.verdict == Verdict::kContained)
                         ? Verdict::kContained
                         : Verdict::kUnknown;
  combined.method = forward.method;
  return combined;
}

ContainmentResult ContainmentChecker::DecideDisjunct(const Crpq& p, const Ucrpq& q,
                                                     const NormalTBox& schema,
                                                     const TpClosure* closure,
                                                     ResourceGuard* guard) {
  PipelineStats* stats = options_.stats;
  if (stats) stats->disjuncts_total.fetch_add(1, std::memory_order_relaxed);
  ContainmentResult result;

  // 0. Preemption: an already-expired deadline or a cancelled batch skips
  //    every phase — no searches run at all.
  if (guard != nullptr && guard->Recheck(GuardPhase::kSetup)) {
    result.verdict = Verdict::kUnknown;
    result.unknown = MakeUnknownInfo(guard);
    result.note = guard->Describe();
    return result;
  }

  // 1. Cheap exact screens. (a) Some disjunct of Q matches every non-empty
  //    graph, and any match of p requires a node.
  {
    PhaseTimer timer(stats ? &stats->screen_ns : nullptr);
    if (p.VarCount() > 0 &&
        std::any_of(q.Disjuncts().begin(), q.Disjuncts().end(),
                    MatchesAnyNonEmptyGraph)) {
      result.verdict = Verdict::kContained;
      result.method = ContainmentMethod::kTrivial;
      result.note = "a disjunct of Q matches every non-empty graph";
      return result;
    }
    //  (b) Classical containment (no schema) implies containment modulo any
    //  schema; the canonical-database test certifies the CQ-shaped cases.
    Ucrpq p_union;
    p_union.AddDisjunct(p);
    QueryContainmentResult classical = QueryContainment(p_union, q);
    if (classical.verdict == Verdict::kContained) {
      result.verdict = Verdict::kContained;
      result.method = ContainmentMethod::kClassical;
      result.note = "holds classically (schema-free)";
      return result;
    }
  }

  // 2. Direct bounded countermodel search against the full TBox. Also serves
  //    as the satisfiability screen: if p cannot be satisfied under T at all
  //    the expansion/quotient seeds all die and the answer is kNo.
  CountermodelOptions guarded = options_.countermodel;
  guarded.limits.guard = guard;
  guarded.limits.guard_phase = GuardPhase::kDirect;
  guarded.expansion.guard = guard;
  guarded.expansion.guard_phase = GuardPhase::kDirect;
  CountermodelSearchResult direct;
  {
    PhaseTimer timer(stats ? &stats->direct_ns : nullptr);
    direct = FindCountermodel(p, q, schema, guarded);
    if (direct.answer == EngineAnswer::kYes) {
      result.verdict = Verdict::kNotContained;
      result.method = ContainmentMethod::kDirectSearch;
      if (options_.minimize_countermodels && direct.witness.has_value()) {
        Ucrpq p_union;
        p_union.AddDisjunct(p);
        result.countermodel = MinimizeCountermodel(*direct.witness, p_union, q, schema);
      } else {
        result.countermodel = std::move(direct.witness);
      }
    }
  }
  if (result.verdict == Verdict::kNotContained) {
    // A kNotContained verdict must never escape with a witness that does not
    // actually refute containment (minimization included).
    if (result.countermodel.has_value()) {
      GQC_AUDIT(ValidateCountermodel(*result.countermodel, p, q, schema));
    }
    RecordRefutation(stats, result);
    return result;
  }
  bool participation = schema.HasParticipationConstraints();
  if (direct.answer == EngineAnswer::kNo) {
    // Exact: no countermodel exists (see FindCountermodel's completeness
    // conditions — exhaustive seeds, no budget caps).
    result.verdict = Verdict::kContained;
    result.method = participation ? ContainmentMethod::kDirectSearch
                                  : ContainmentMethod::kSparse;
    return result;
  }

  // 3. §3 reduction for the supported fragments. The (T, Q)-dependent Tp
  //    closure may be supplied by the caller (batch engine), come from the
  //    per-checker cache, or be computed inline — same answers either way.
  bool fragment_ok = q.IsSimple() && q.IsConnected() && p.IsConnected();
  bool alcq_case = !schema.UsesInverse();
  bool alci_case = !schema.UsesCounting() && q.IsOneWay();
  if (!options_.disable_reduction && participation && fragment_ok &&
      (alcq_case || alci_case)) {
    ReductionOptions opts;
    opts.countermodel = guarded;
    // The reduction's own expansion enumeration bills under kReduction; the
    // witness/entailment phases re-attribute themselves (see reduction.cc).
    opts.countermodel.expansion.guard_phase = GuardPhase::kReduction;
    opts.factorize = options_.factorize;
    opts.factorize.guard = guard;
    opts.stats = stats;
    ReductionResult red;
    if (closure != nullptr) {
      red = ContainmentViaEntailment(p, q, schema, *closure, opts);
    } else if (options_.enable_caching) {
      ContainmentCaches::ClosureEntry entry =
          caches_->GetClosure(q, schema, alcq_case, vocab_, opts);
      if (entry.closure != nullptr) {
        red = ContainmentViaEntailment(p, q, schema, *entry.closure, opts);
      } else {
        red.note = entry.error;
      }
    } else {
      red = ContainmentViaEntailment(p, q, schema, alcq_case, vocab_, opts);
    }
    if (red.countermodel_found == EngineAnswer::kYes) {
      result.verdict = Verdict::kNotContained;
      result.method = ContainmentMethod::kReduction;
      result.central_part = std::move(red.central_part);
      // The central part is not a full countermodel (stubs defer their
      // participation constraints; the semantic re-verification happens
      // inside the reduction), but it must at least be a well-formed graph.
      if (result.central_part.has_value()) {
        GQC_AUDIT(ValidateGraph(*result.central_part));
      }
      result.note = "countermodel is star-like; central part returned";
      RecordRefutation(stats, result);
      return result;
    }
    if (red.countermodel_found == EngineAnswer::kNo) {
      result.verdict = Verdict::kContained;
      result.method = ContainmentMethod::kReduction;
      return result;
    }
    result.note = red.note.empty() ? "reduction inconclusive" : red.note;
  }

  result.verdict = Verdict::kUnknown;
  result.method = ContainmentMethod::kDirectSearch;
  result.unknown = MakeUnknownInfo(guard);
  if (guard != nullptr && guard->exhausted()) {
    result.note = guard->Describe();
  } else if (result.note.empty()) {
    result.note = "no countermodel within budget; containment not certified";
  }
  return result;
}

}  // namespace gqc
