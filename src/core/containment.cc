#include "src/core/containment.h"

#include <utility>

#include "src/core/strategy.h"
#include "src/dl/normalize.h"

namespace gqc {

void TallyPair(PipelineStats* stats, const ContainmentResult& r) {
  if (stats == nullptr) return;
  stats->pairs_total.fetch_add(1, std::memory_order_relaxed);
  switch (r.verdict) {
    case Verdict::kContained:
      stats->pairs_contained.fetch_add(1, std::memory_order_relaxed);
      break;
    case Verdict::kNotContained:
      stats->pairs_not_contained.fetch_add(1, std::memory_order_relaxed);
      break;
    case Verdict::kUnknown:
      stats->pairs_unknown.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  switch (r.attr.method) {
    case ContainmentMethod::kClassical:
      stats->method_classical.fetch_add(1, std::memory_order_relaxed);
      break;
    case ContainmentMethod::kDirectSearch:
      stats->method_direct.fetch_add(1, std::memory_order_relaxed);
      break;
    case ContainmentMethod::kSparse:
      stats->method_sparse.fetch_add(1, std::memory_order_relaxed);
      break;
    case ContainmentMethod::kReduction:
      stats->method_reduction.fetch_add(1, std::memory_order_relaxed);
      break;
    case ContainmentMethod::kTrivial:
      stats->method_trivial.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

ContainmentChecker::ContainmentChecker(Vocabulary* vocab,
                                       ContainmentOptions options)
    : vocab_(vocab),
      options_(std::move(options)),
      caches_(std::make_unique<ContainmentCaches>()) {
  // Wire the shared compile memo into every downstream search unless the
  // caller supplied their own (the batch engine does, so its memo survives
  // across per-worker checkers). Caching off disables the memo too.
  if (options_.enable_caching &&
      options_.countermodel.limits.compile_memo == nullptr) {
    options_.countermodel.limits.compile_memo = caches_->compile_memo();
  }
}

ContainmentResult ContainmentChecker::Decide(const Ucrpq& p, const Ucrpq& q,
                                             const TBox& schema) {
  if (options_.enable_caching) {
    std::shared_ptr<const NormalTBox> normalized =
        caches_->GetNormalized(schema, vocab_, options_.stats);
    return Decide(p, q, *normalized);
  }
  PipelineStats* stats = options_.stats;
  if (stats) stats->normal_tbox_misses.fetch_add(1, std::memory_order_relaxed);
  std::optional<NormalTBox> normalized;
  {
    PhaseTimer timer(stats ? &stats->normalize_ns : nullptr);
    normalized = Normalize(schema, vocab_);
  }
  return Decide(p, q, *normalized);
}

ContainmentResult ContainmentChecker::Decide(const Ucrpq& p, const Ucrpq& q,
                                             const NormalTBox& schema) {
  // P ⊑_T Q iff every disjunct of P is contained. Report the first
  // counterexample; a kUnknown disjunct makes the overall answer kUnknown
  // unless some other disjunct already refutes.
  //
  // The pair deadline is pinned once here and shared by every disjunct's
  // guard; step/memory budgets are per disjunct (fresh guard each) so budget
  // verdicts do not depend on how disjuncts are scheduled.
  const ResourceBudget& budget = options_.resources;
  bool has_deadline = budget.deadline_ms > 0;
  auto deadline = has_deadline
                      ? std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double, std::milli>(
                                    budget.deadline_ms))
                      : std::chrono::steady_clock::time_point{};
  std::vector<ContainmentResult> per_disjunct;
  per_disjunct.reserve(p.Disjuncts().size());
  for (const Crpq& disjunct : p.Disjuncts()) {
    ResourceGuard guard(budget, has_deadline, deadline);
    per_disjunct.push_back(
        DecideDisjunct(disjunct, q, schema, /*closure=*/nullptr, &guard));
    if (options_.stats != nullptr) options_.stats->RecordGuard(guard);
    if (per_disjunct.back().verdict == Verdict::kNotContained) break;
  }
  ContainmentResult combined = Combine(std::move(per_disjunct));
  TallyPair(options_.stats, combined);
  return combined;
}

ContainmentResult ContainmentChecker::Combine(
    std::vector<ContainmentResult> per_disjunct) {
  ContainmentResult combined;
  combined.verdict = Verdict::kContained;
  combined.attr.method = ContainmentMethod::kTrivial;
  for (ContainmentResult& r : per_disjunct) {
    if (r.verdict == Verdict::kNotContained) return std::move(r);
    if (r.verdict == Verdict::kUnknown) {
      combined.verdict = Verdict::kUnknown;
      combined.attr = std::move(r.attr);
    } else if (combined.verdict == Verdict::kContained) {
      std::string note = std::move(combined.attr.note);
      combined.attr = r.attr;
      if (!note.empty()) combined.attr.note = std::move(note);
    }
  }
  return combined;
}

ContainmentResult ContainmentChecker::DecideEquivalence(const Ucrpq& p, const Ucrpq& q,
                                                        const NormalTBox& schema) {
  ContainmentResult forward = Decide(p, q, schema);
  if (forward.verdict == Verdict::kNotContained) {
    forward.attr.note = "P ⋢_T Q; " + forward.attr.note;
    return forward;
  }
  ContainmentResult backward = Decide(q, p, schema);
  if (backward.verdict == Verdict::kNotContained) {
    backward.attr.note = "Q ⋢_T P; " + backward.attr.note;
    return backward;
  }
  ContainmentResult combined;
  combined.verdict = (forward.verdict == Verdict::kContained &&
                      backward.verdict == Verdict::kContained)
                         ? Verdict::kContained
                         : Verdict::kUnknown;
  combined.attr.method = forward.attr.method;
  return combined;
}

ContainmentResult ContainmentChecker::DecideEquivalence(const Ucrpq& p,
                                                        const Ucrpq& q,
                                                        const TBox& schema) {
  if (options_.enable_caching) {
    std::shared_ptr<const NormalTBox> normalized =
        caches_->GetNormalized(schema, vocab_, options_.stats);
    return DecideEquivalence(p, q, *normalized);
  }
  PipelineStats* stats = options_.stats;
  if (stats) stats->normal_tbox_misses.fetch_add(1, std::memory_order_relaxed);
  std::optional<NormalTBox> normalized;
  {
    PhaseTimer timer(stats ? &stats->normalize_ns : nullptr);
    normalized = Normalize(schema, vocab_);
  }
  return DecideEquivalence(p, q, *normalized);
}

ContainmentResult ContainmentChecker::DecideDisjunct(const Crpq& p, const Ucrpq& q,
                                                     const NormalTBox& schema,
                                                     const TpClosure* closure,
                                                     ResourceGuard* guard) {
  PipelineStats* stats = options_.stats;
  if (stats) stats->disjuncts_total.fetch_add(1, std::memory_order_relaxed);
  ContainmentResult result;

  // 0. Preemption: an already-expired deadline or a cancelled batch skips
  //    every strategy — no searches run at all.
  if (guard != nullptr && guard->Recheck(GuardPhase::kSetup)) {
    result.verdict = Verdict::kUnknown;
    result.attr.unknown = UnknownFromGuard(guard);
    result.attr.note = guard->Describe();
    return result;
  }

  StrategyContext ctx;
  ctx.p = &p;
  ctx.q = &q;
  ctx.schema = &schema;
  ctx.closure = closure;
  ctx.vocab = vocab_;
  ctx.caches = caches_.get();
  ctx.options = &options_;
  ctx.stats = stats;
  // A caller-supplied closure is the engine's signal that this vocabulary is
  // shared read-only across concurrent disjunct decisions (see DecideDisjunct
  // contract); without one the checker owns the vocabulary exclusively.
  ctx.vocab_shared = closure != nullptr;

  // Sequential strategy runner: try each applicable strategy in order under
  // the ONE shared guard; the first definite verdict wins, kUnknown falls
  // through. With the default order this is step-for-step the former
  // hardwired pipeline (budget charges included), so verdicts and budget
  // trips are bit-identical to it.
  const std::vector<const Strategy*>& order =
      options_.strategies.empty() ? SequentialOrder() : options_.strategies;
  std::string pending_note;
  for (const Strategy* strategy : order) {
    if (!strategy->Applicable(ctx)) continue;
    ContainmentResult r = strategy->Run(ctx, guard);
    if (r.verdict != Verdict::kUnknown) {
      r.attr.strategy = strategy->name();
      if (stats) stats->RecordStrategyWin(strategy->id());
      RecordRefutation(stats, r);
      return r;
    }
    if (stats) stats->RecordStrategyLoss(strategy->id(), /*race_cancelled=*/false);
    if (!r.attr.note.empty()) pending_note = std::move(r.attr.note);
  }

  result.verdict = Verdict::kUnknown;
  result.attr.method = ContainmentMethod::kDirectSearch;
  result.attr.unknown = UnknownFromGuard(guard);
  if (guard != nullptr && guard->exhausted()) {
    result.attr.note = guard->Describe();
  } else if (!pending_note.empty()) {
    result.attr.note = std::move(pending_note);
  } else {
    result.attr.note = "no countermodel within budget; containment not certified";
  }
  return result;
}

}  // namespace gqc
