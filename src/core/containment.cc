#include "src/core/containment.h"

#include "src/core/minimize.h"

#include "src/dl/model_check.h"
#include <algorithm>

#include "src/dl/normalize.h"
#include "src/query/eval.h"

namespace gqc {

ContainmentResult ContainmentChecker::Decide(const Ucrpq& p, const Ucrpq& q,
                                             const TBox& schema) {
  return Decide(p, q, Normalize(schema, vocab_));
}

ContainmentResult ContainmentChecker::Decide(const Ucrpq& p, const Ucrpq& q,
                                             const NormalTBox& schema) {
  // P ⊑_T Q iff every disjunct of P is contained. Report the first
  // counterexample; a kUnknown disjunct makes the overall answer kUnknown
  // unless some other disjunct already refutes.
  ContainmentResult combined;
  combined.verdict = Verdict::kContained;
  combined.method = ContainmentMethod::kTrivial;
  for (const Crpq& disjunct : p.Disjuncts()) {
    ContainmentResult r = DecideDisjunct(disjunct, q, schema);
    if (r.verdict == Verdict::kNotContained) return r;
    if (r.verdict == Verdict::kUnknown) {
      combined.verdict = Verdict::kUnknown;
      combined.method = r.method;
      combined.note = r.note;
    } else if (combined.verdict == Verdict::kContained) {
      combined.method = r.method;
      if (combined.note.empty()) combined.note = r.note;
    }
  }
  return combined;
}

ContainmentResult ContainmentChecker::DecideEquivalence(const Ucrpq& p, const Ucrpq& q,
                                                        const NormalTBox& schema) {
  ContainmentResult forward = Decide(p, q, schema);
  if (forward.verdict == Verdict::kNotContained) {
    forward.note = "P ⋢_T Q; " + forward.note;
    return forward;
  }
  ContainmentResult backward = Decide(q, p, schema);
  if (backward.verdict == Verdict::kNotContained) {
    backward.note = "Q ⋢_T P; " + backward.note;
    return backward;
  }
  ContainmentResult combined;
  combined.verdict = (forward.verdict == Verdict::kContained &&
                      backward.verdict == Verdict::kContained)
                         ? Verdict::kContained
                         : Verdict::kUnknown;
  combined.method = forward.method;
  return combined;
}

namespace {

/// True if the disjunct matches every graph with at least one node: no unary
/// atoms and every binary atom admits the empty word (e.g. pure reachability
/// queries like (r+s)*(x, y)).
bool MatchesAnyNonEmptyGraph(const Crpq& d) {
  if (!d.UnaryAtoms().empty() || d.VarCount() == 0) return false;
  return std::all_of(d.BinaryAtoms().begin(), d.BinaryAtoms().end(),
                     [](const BinaryAtom& a) { return a.allow_empty; });
}

}  // namespace

ContainmentResult ContainmentChecker::DecideDisjunct(const Crpq& p, const Ucrpq& q,
                                                     const NormalTBox& schema) {
  ContainmentResult result;

  // 1. Cheap exact screens. (a) Some disjunct of Q matches every non-empty
  //    graph, and any match of p requires a node.
  if (p.VarCount() > 0 &&
      std::any_of(q.Disjuncts().begin(), q.Disjuncts().end(),
                  MatchesAnyNonEmptyGraph)) {
    result.verdict = Verdict::kContained;
    result.method = ContainmentMethod::kTrivial;
    result.note = "a disjunct of Q matches every non-empty graph";
    return result;
  }
  //    (b) Classical containment (no schema) implies containment modulo any
  //    schema; the canonical-database test certifies the CQ-shaped cases.
  {
    Ucrpq p_union;
    p_union.AddDisjunct(p);
    ClassicalContainmentResult classical = ClassicalContainment(p_union, q);
    if (classical.verdict == Verdict::kContained) {
      result.verdict = Verdict::kContained;
      result.method = ContainmentMethod::kClassical;
      result.note = "holds classically (schema-free)";
      return result;
    }
  }

  // 2. Direct bounded countermodel search against the full TBox. Also serves
  //    as the satisfiability screen: if p cannot be satisfied under T at all
  //    the expansion/quotient seeds all die and the answer is kNo.
  CountermodelSearchResult direct =
      FindCountermodel(p, q, schema, options_.countermodel);
  if (direct.answer == EngineAnswer::kYes) {
    result.verdict = Verdict::kNotContained;
    result.method = ContainmentMethod::kDirectSearch;
    if (options_.minimize_countermodels && direct.witness.has_value()) {
      Ucrpq p_union;
      p_union.AddDisjunct(p);
      result.countermodel = MinimizeCountermodel(*direct.witness, p_union, q, schema);
    } else {
      result.countermodel = std::move(direct.witness);
    }
    return result;
  }
  bool participation = schema.HasParticipationConstraints();
  if (direct.answer == EngineAnswer::kNo) {
    // Exact: no countermodel exists (see FindCountermodel's completeness
    // conditions — exhaustive seeds, no budget caps).
    result.verdict = Verdict::kContained;
    result.method = participation ? ContainmentMethod::kDirectSearch
                                  : ContainmentMethod::kSparse;
    return result;
  }

  // 3. §3 reduction for the supported fragments.
  bool fragment_ok = q.IsSimple() && q.IsConnected() && p.IsConnected();
  bool alcq_case = !schema.UsesInverse();
  bool alci_case = !schema.UsesCounting() && q.IsOneWay();
  if (!options_.disable_reduction && participation && fragment_ok &&
      (alcq_case || alci_case)) {
    ReductionOptions opts;
    opts.countermodel = options_.countermodel;
    opts.factorize = options_.factorize;
    ReductionResult red =
        ContainmentViaEntailment(p, q, schema, alcq_case, vocab_, opts);
    if (red.countermodel_found == EngineAnswer::kYes) {
      result.verdict = Verdict::kNotContained;
      result.method = ContainmentMethod::kReduction;
      result.central_part = std::move(red.central_part);
      result.note = "countermodel is star-like; central part returned";
      return result;
    }
    if (red.countermodel_found == EngineAnswer::kNo) {
      result.verdict = Verdict::kContained;
      result.method = ContainmentMethod::kReduction;
      return result;
    }
    result.note = red.note.empty() ? "reduction inconclusive" : red.note;
  }

  result.verdict = Verdict::kUnknown;
  result.method = ContainmentMethod::kDirectSearch;
  if (result.note.empty()) {
    result.note = "no countermodel within budget; containment not certified";
  }
  return result;
}

}  // namespace gqc
