#ifndef GQC_CORE_RESULT_H_
#define GQC_CORE_RESULT_H_

#include <optional>
#include <string>

#include "src/graph/graph.h"
#include "src/query/query_containment.h"

namespace gqc {

/// Which decision path produced a containment verdict.
enum class ContainmentMethod {
  kClassical,        // no schema: canonical-database test
  kDirectSearch,     // bounded countermodel search against the full TBox
  kSparse,           // Thm 3.2 path (no participation constraints)
  kReduction,        // §3 reduction to finite entailment (star-like models)
  kTrivial,          // e.g. P unsatisfiable under the schema
};

const char* ContainmentMethodName(ContainmentMethod m);

/// The outcome of a containment-modulo-schema query P ⊑_T Q.
struct ContainmentResult {
  Verdict verdict = Verdict::kUnknown;
  ContainmentMethod method = ContainmentMethod::kDirectSearch;

  /// For kNotContained via direct/sparse search: a finite graph G with
  /// G ⊨ T, G ⊨ P, G ⊭ Q, re-verified before being returned.
  std::optional<Graph> countermodel;

  /// For kNotContained via the §3 reduction: the central part H0 of the
  /// star-like countermodel (Lemma 3.5); the full countermodel additionally
  /// hangs a peripheral part off each participation-deferred stub.
  std::optional<Graph> central_part;

  std::string note;
};

}  // namespace gqc

#endif  // GQC_CORE_RESULT_H_
