#ifndef GQC_CORE_RESULT_H_
#define GQC_CORE_RESULT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/graph/graph.h"
#include "src/query/query_containment.h"

namespace gqc {

/// Which decision path produced a containment verdict.
enum class ContainmentMethod {
  kClassical,        // no schema: canonical-database test
  kDirectSearch,     // bounded countermodel search against the full TBox
  kSparse,           // Thm 3.2 path (no participation constraints)
  kReduction,        // §3 reduction to finite entailment (star-like models)
  kTrivial,          // e.g. P unsatisfiable under the schema
};

const char* ContainmentMethodName(ContainmentMethod m);

/// Why a verdict is kUnknown: which resource ran out (or which structural
/// cap was hit), in which pipeline phase, after how many charged steps.
/// This is the payload of the three-valued outcome — definite verdicts never
/// carry one.
struct UnknownInfo {
  /// "deadline" / "steps" / "memory" / "cancelled" for guard trips, "caps"
  /// when a structural search cap (not a resource budget) was the cause.
  std::string reason;
  /// Pipeline phase that spent the tripping step (GuardPhaseName).
  std::string phase;
  /// Guard steps charged by this decision when it gave up.
  uint64_t steps = 0;
};

/// Who answered, how, and — for kUnknown — why not. One attribution struct
/// serves both the checker-level ContainmentResult and the batch engine's
/// BatchOutcome, so the verdict surface cannot drift between the two.
struct Attribution {
  ContainmentMethod method = ContainmentMethod::kDirectSearch;
  /// Name of the winning Strategy (src/core/strategy.h); empty when the
  /// strategy layer never ran (parse errors, preempted pairs).
  std::string strategy;
  std::string note;
  /// Present exactly when the verdict is kUnknown: why the pipeline gave up.
  std::optional<UnknownInfo> unknown;

  /// Flattened views of the kUnknown details; empty for definite verdicts.
  std::string_view unknown_reason() const {
    return unknown.has_value() ? std::string_view(unknown->reason)
                               : std::string_view();
  }
  std::string_view unknown_phase() const {
    return unknown.has_value() ? std::string_view(unknown->phase)
                               : std::string_view();
  }
};

/// The outcome of a containment-modulo-schema query P ⊑_T Q.
struct ContainmentResult {
  Verdict verdict = Verdict::kUnknown;

  /// Method / winning strategy / note / kUnknown details.
  Attribution attr;

  /// For kNotContained via direct/sparse search: a finite graph G with
  /// G ⊨ T, G ⊨ P, G ⊭ Q, re-verified before being returned.
  std::optional<Graph> countermodel;

  /// For kNotContained via the §3 reduction: the central part H0 of the
  /// star-like countermodel (Lemma 3.5); the full countermodel additionally
  /// hangs a peripheral part off each participation-deferred stub.
  std::optional<Graph> central_part;
};

}  // namespace gqc

#endif  // GQC_CORE_RESULT_H_
