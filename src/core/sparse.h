#ifndef GQC_CORE_SPARSE_H_
#define GQC_CORE_SPARSE_H_

#include "src/core/result.h"
#include "src/dl/tbox.h"
#include "src/entailment/common.h"
#include "src/query/canonical.h"
#include "src/query/ucrpq.h"

namespace gqc {

/// Options for the countermodel searches.
struct CountermodelOptions {
  ExpansionOptions expansion;
  EngineLimits limits;
  /// Cap on node-merging quotients tried per expansion (the sparse-model
  /// argument needs quotients of canonical expansions as seeds).
  std::size_t max_quotients = 2000;
};

/// Outcome of a countermodel search for one disjunct p against (T, Q).
struct CountermodelSearchResult {
  /// kYes: countermodel found (in `witness`); kNo: none exists (exact — the
  /// seed space was exhaustive and no budget was hit); kUnknown otherwise.
  EngineAnswer answer = EngineAnswer::kUnknown;
  std::optional<Graph> witness;
};

/// Searches for a finite G with G ⊨ tbox, G ⊨ p, G ⊭ q, seeded from the
/// canonical expansions of p and their node-merging quotients, completing
/// labels and repairing participation constraints with the bounded witness
/// search (§3 / Thm 3.2 engineering substitute; see DESIGN.md).
///
/// When `tbox` has no participation constraints, minimal countermodels are
/// exactly label-completions of quotients of canonical expansions (every
/// model restricted to a match image stays a model), so with exhaustive
/// expansions kNo answers are exact — the Thm 3.2 path.
CountermodelSearchResult FindCountermodel(const Crpq& p, const Ucrpq& q,
                                          const NormalTBox& tbox,
                                          const CountermodelOptions& options);

/// Enumerates node-merging quotients of `g` that still satisfy `p` with the
/// merged variable assignment; includes `g` itself. Bounded by `max_out`.
std::vector<Graph> SatisfyingQuotients(const Graph& g, const Crpq& p,
                                       std::size_t max_out);

}  // namespace gqc

#endif  // GQC_CORE_SPARSE_H_
