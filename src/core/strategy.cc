#include "src/core/strategy.h"

#include <algorithm>
#include <utility>

#include "src/core/minimize.h"
#include "src/core/validate.h"
#include "src/graph/validate.h"
#include "src/util/invariant.h"

namespace gqc {

UnknownInfo UnknownFromGuard(const ResourceGuard* guard) {
  UnknownInfo info;
  if (guard != nullptr && guard->exhausted()) {
    info.reason = GuardResourceName(guard->reason());
    info.phase = GuardPhaseName(guard->trip_phase());
  } else {
    info.reason = "caps";
  }
  if (guard != nullptr) info.steps = guard->steps_spent();
  return info;
}

void RecordRefutation(PipelineStats* stats, const ContainmentResult& r) {
  if (stats == nullptr || r.verdict != Verdict::kNotContained) return;
  uint64_t nodes = 0;
  if (r.countermodel.has_value()) {
    nodes = r.countermodel->NodeCount();
  } else if (r.central_part.has_value()) {
    nodes = r.central_part->NodeCount();
  }
  stats->RecordCountermodel(nodes);
}

namespace {

/// True if the disjunct matches every graph with at least one node: no unary
/// atoms and every binary atom admits the empty word (e.g. pure reachability
/// queries like (r+s)*(x, y)).
bool MatchesAnyNonEmptyGraph(const Crpq& d) {
  if (!d.UnaryAtoms().empty() || d.VarCount() == 0) return false;
  return std::all_of(d.BinaryAtoms().begin(), d.BinaryAtoms().end(),
                     [](const BinaryAtom& a) { return a.allow_empty; });
}

/// Inconclusive sentinel: kUnknown with an optional note for the runner.
ContainmentResult Inconclusive(std::string note = "") {
  ContainmentResult r;
  r.verdict = Verdict::kUnknown;
  r.attr.note = std::move(note);
  return r;
}

/// The guarded search options every search-based strategy starts from: the
/// configured caps with this run's guard wired into both the witness-search
/// limits and the expansion enumeration.
CountermodelOptions GuardedCountermodelOptions(const StrategyContext& ctx,
                                               ResourceGuard* guard) {
  CountermodelOptions guarded = ctx.options->countermodel;
  guarded.limits.guard = guard;
  guarded.limits.guard_phase = GuardPhase::kDirect;
  guarded.expansion.guard = guard;
  guarded.expansion.guard_phase = GuardPhase::kDirect;
  return guarded;
}

/// Builds the kNotContained result for a witness found by a countermodel
/// search: optional 1-minimization, then the non-negotiable audit that the
/// returned graph actually refutes containment.
ContainmentResult RefutedByWitness(const StrategyContext& ctx,
                                   std::optional<Graph> witness) {
  ContainmentResult result;
  result.verdict = Verdict::kNotContained;
  result.attr.method = ContainmentMethod::kDirectSearch;
  if (ctx.options->minimize_countermodels && witness.has_value()) {
    Ucrpq p_union;
    p_union.AddDisjunct(*ctx.p);
    result.countermodel =
        MinimizeCountermodel(*witness, p_union, *ctx.q, *ctx.schema);
  } else {
    result.countermodel = std::move(witness);
  }
  if (result.countermodel.has_value()) {
    GQC_AUDIT(ValidateCountermodel(*result.countermodel, *ctx.p, *ctx.q,
                                   *ctx.schema));
  }
  return result;
}

// ---------------------------------------------------------------------------
// screen: cheap exact screens (trivial match-all + classical containment).
// ---------------------------------------------------------------------------

class ScreenStrategy final : public Strategy {
 public:
  StrategyId id() const override { return StrategyId::kScreen; }
  Cost cost() const override { return Cost::kCheap; }
  bool Applicable(const StrategyContext&) const override { return true; }
  ContainmentResult Run(const StrategyContext& ctx,
                        ResourceGuard* guard) const override;
};

ContainmentResult ScreenStrategy::Run(const StrategyContext& ctx,
                                      ResourceGuard* guard) const {
  if (guard != nullptr && guard->Recheck(GuardPhase::kScreen)) {
    return Inconclusive();
  }
  PhaseTimer timer(ctx.stats ? &ctx.stats->screen_ns : nullptr);
  ContainmentResult result;
  // (a) Some disjunct of Q matches every non-empty graph, and any match of p
  //     requires a node.
  if (ctx.p->VarCount() > 0 &&
      std::any_of(ctx.q->Disjuncts().begin(), ctx.q->Disjuncts().end(),
                  MatchesAnyNonEmptyGraph)) {
    result.verdict = Verdict::kContained;
    result.attr.method = ContainmentMethod::kTrivial;
    result.attr.note = "a disjunct of Q matches every non-empty graph";
    return result;
  }
  // (b) Classical containment (no schema) implies containment modulo any
  //     schema; the canonical-database test certifies the CQ-shaped cases.
  Ucrpq p_union;
  p_union.AddDisjunct(*ctx.p);
  QueryContainmentResult classical = QueryContainment(p_union, *ctx.q);
  if (classical.verdict == Verdict::kContained) {
    result.verdict = Verdict::kContained;
    result.attr.method = ContainmentMethod::kClassical;
    result.attr.note = "holds classically (schema-free)";
    return result;
  }
  return Inconclusive();
}

// ---------------------------------------------------------------------------
// direct: bounded countermodel search against the full TBox. Doubles as the
// satisfiability screen (an unsatisfiable p has no live seeds -> kNo) and,
// for TBoxes without participation constraints, as the exact Thm 3.2 path.
// ---------------------------------------------------------------------------

class DirectStrategy final : public Strategy {
 public:
  StrategyId id() const override { return StrategyId::kDirect; }
  Cost cost() const override { return Cost::kModerate; }
  bool Applicable(const StrategyContext&) const override { return true; }
  ContainmentResult Run(const StrategyContext& ctx,
                        ResourceGuard* guard) const override;
};

ContainmentResult DirectStrategy::Run(const StrategyContext& ctx,
                                      ResourceGuard* guard) const {
  // FindCountermodel polls the guard through the wired-in search limits.
  CountermodelOptions guarded = GuardedCountermodelOptions(ctx, guard);
  CountermodelSearchResult direct;
  {
    PhaseTimer timer(ctx.stats ? &ctx.stats->direct_ns : nullptr);
    direct = FindCountermodel(*ctx.p, *ctx.q, *ctx.schema, guarded);
    if (direct.answer == EngineAnswer::kYes) {
      return RefutedByWitness(ctx, std::move(direct.witness));
    }
  }
  if (direct.answer == EngineAnswer::kNo) {
    // Exact: no countermodel exists (see FindCountermodel's completeness
    // conditions — exhaustive seeds, no budget caps).
    ContainmentResult result;
    result.verdict = Verdict::kContained;
    result.attr.method = ctx.schema->HasParticipationConstraints()
                             ? ContainmentMethod::kDirectSearch
                             : ContainmentMethod::kSparse;
    return result;
  }
  return Inconclusive();
}

// ---------------------------------------------------------------------------
// witness: refutation-only deep witness search. Same engine as `direct` but
// tuned the opposite way — longer expansion words and a larger witness bound
// with only the canonical seed (no quotient enumeration) — so it reaches
// countermodels the direct strategy's breadth-first caps miss. Never trusts
// a kNo (its seed space is deliberately not exhaustive): only a found and
// verified countermodel counts, which makes it trivially sound and worth
// racing but useless sequentially.
// ---------------------------------------------------------------------------

class WitnessStrategy final : public Strategy {
 public:
  StrategyId id() const override { return StrategyId::kWitness; }
  Cost cost() const override { return Cost::kExpensive; }
  bool Applicable(const StrategyContext& ctx) const override {
    return ctx.p->VarCount() > 0;
  }
  ContainmentResult Run(const StrategyContext& ctx,
                        ResourceGuard* guard) const override;
};

ContainmentResult WitnessStrategy::Run(const StrategyContext& ctx,
                                       ResourceGuard* guard) const {
  // Deep variant of the guarded direct-search options; the guard polls
  // unchanged through the search limits.
  CountermodelOptions deep = GuardedCountermodelOptions(ctx, guard);
  deep.expansion.max_word_length += 2;
  deep.limits.max_witness_nodes += 6;
  deep.max_quotients = 1;  // canonical seed only; depth over breadth
  CountermodelSearchResult found;
  {
    PhaseTimer timer(ctx.stats ? &ctx.stats->direct_ns : nullptr);
    found = FindCountermodel(*ctx.p, *ctx.q, *ctx.schema, deep);
    if (found.answer == EngineAnswer::kYes) {
      ContainmentResult result = RefutedByWitness(ctx, std::move(found.witness));
      result.attr.note = "found by deep witness search";
      return result;
    }
  }
  // kNo is NOT exact here (seed space restricted on purpose): inconclusive.
  return Inconclusive();
}

// ---------------------------------------------------------------------------
// reduction: the full §3 reduction to finite entailment for the supported
// fragments (participation constraints + simple connected Q, ALCQ or
// one-way ALCI).
// ---------------------------------------------------------------------------

class ReductionStrategy final : public Strategy {
 public:
  StrategyId id() const override { return StrategyId::kReduction; }
  Cost cost() const override { return Cost::kExpensive; }
  bool Applicable(const StrategyContext& ctx) const override {
    if (ctx.options->disable_reduction) return false;
    if (!ctx.schema->HasParticipationConstraints()) return false;
    bool fragment_ok =
        ctx.q->IsSimple() && ctx.q->IsConnected() && ctx.p->IsConnected();
    if (!fragment_ok) return false;
    bool alcq_case = !ctx.schema->UsesInverse();
    bool alci_case = !ctx.schema->UsesCounting() && ctx.q->IsOneWay();
    if (!alcq_case && !alci_case) return false;
    // Computing a closure inline interns fresh concepts into the vocabulary;
    // under a shared vocabulary only a precomputed closure is usable.
    return ctx.closure != nullptr || !ctx.vocab_shared;
  }
  ContainmentResult Run(const StrategyContext& ctx,
                        ResourceGuard* guard) const override;
};

ContainmentResult ReductionStrategy::Run(const StrategyContext& ctx,
                                         ResourceGuard* guard) const {
  // The (T, Q)-dependent Tp closure may be supplied by the caller (batch
  // engine), come from the per-checker cache, or be computed inline — same
  // answers either way.
  ReductionOptions opts;
  opts.countermodel = GuardedCountermodelOptions(ctx, guard);
  // The reduction's own expansion enumeration bills under kReduction; the
  // witness/entailment phases re-attribute themselves (see reduction.cc).
  opts.countermodel.expansion.guard_phase = GuardPhase::kReduction;
  opts.factorize = ctx.options->factorize;
  opts.factorize.guard = guard;
  opts.stats = ctx.stats;
  bool alcq_case = !ctx.schema->UsesInverse();
  ReductionResult red;
  if (ctx.closure != nullptr) {
    red = ContainmentViaEntailment(*ctx.p, *ctx.q, *ctx.schema, *ctx.closure,
                                   opts);
  } else if (ctx.options->enable_caching && ctx.caches != nullptr) {
    ContainmentCaches::ClosureEntry entry =
        ctx.caches->GetClosure(*ctx.q, *ctx.schema, alcq_case, ctx.vocab, opts);
    if (entry.closure != nullptr) {
      red = ContainmentViaEntailment(*ctx.p, *ctx.q, *ctx.schema,
                                     *entry.closure, opts);
    } else {
      red.note = entry.error;
    }
  } else {
    red = ContainmentViaEntailment(*ctx.p, *ctx.q, *ctx.schema, alcq_case,
                                   ctx.vocab, opts);
  }
  if (red.countermodel_found == EngineAnswer::kYes) {
    ContainmentResult result;
    result.verdict = Verdict::kNotContained;
    result.attr.method = ContainmentMethod::kReduction;
    result.central_part = std::move(red.central_part);
    // The central part is not a full countermodel (stubs defer their
    // participation constraints; the semantic re-verification happens
    // inside the reduction), but it must at least be a well-formed graph.
    if (result.central_part.has_value()) {
      GQC_AUDIT(ValidateGraph(*result.central_part));
    }
    result.attr.note = "countermodel is star-like; central part returned";
    return result;
  }
  if (red.countermodel_found == EngineAnswer::kNo) {
    ContainmentResult result;
    result.verdict = Verdict::kContained;
    result.attr.method = ContainmentMethod::kReduction;
    return result;
  }
  return Inconclusive(red.note.empty() ? "reduction inconclusive" : red.note);
}

const ScreenStrategy kScreen;
const DirectStrategy kDirect;
const WitnessStrategy kWitness;
const ReductionStrategy kReduction;

}  // namespace

const std::vector<const Strategy*>& AllStrategies() {
  static const std::vector<const Strategy*> all = {&kScreen, &kDirect,
                                                   &kWitness, &kReduction};
  return all;
}

const std::vector<const Strategy*>& SequentialOrder() {
  static const std::vector<const Strategy*> order = {&kScreen, &kDirect,
                                                     &kReduction};
  return order;
}

const std::vector<const Strategy*>& DefaultPortfolio() {
  static const std::vector<const Strategy*> order = {&kScreen, &kDirect,
                                                     &kWitness, &kReduction};
  return order;
}

const Strategy* FindStrategy(std::string_view name) {
  // lint: bounded(one comparison per registered strategy)
  for (const Strategy* s : AllStrategies()) {
    if (name == s->name()) return s;
  }
  return nullptr;
}

Result<std::vector<const Strategy*>> ParseStrategyList(std::string_view csv) {
  using R = Result<std::vector<const Strategy*>>;
  std::vector<const Strategy*> out;
  // lint: bounded(consumes one comma-separated token of the flag per pass)
  while (!csv.empty()) {
    std::size_t comma = csv.find(',');
    std::string_view name = csv.substr(0, comma);
    csv = comma == std::string_view::npos ? std::string_view{}
                                          : csv.substr(comma + 1);
    if (name.empty()) return R::Error("strategies: empty name in list");
    const Strategy* s = FindStrategy(name);
    if (s == nullptr) {
      return R::Error("strategies: unknown strategy \"" + std::string(name) +
                      "\" (known: screen, direct, witness, reduction)");
    }
    if (std::find(out.begin(), out.end(), s) != out.end()) {
      return R::Error("strategies: duplicate strategy \"" + std::string(name) +
                      "\"");
    }
    out.push_back(s);
  }
  if (out.empty()) return R::Error("strategies: empty list");
  return out;
}

}  // namespace gqc
