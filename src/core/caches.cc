#include "src/core/caches.h"

#include "src/core/validate.h"
#include "src/dl/normalize.h"
#include "src/util/fingerprint.h"
#include "src/util/invariant.h"

namespace gqc {

std::shared_ptr<const NormalTBox> ContainmentCaches::GetNormalized(
    const TBox& tbox, Vocabulary* vocab, PipelineStats* stats) {
  FpKey key(tbox.ToString(*vocab));
  {
    MutexLock lock(&mu_);
    if (const auto* hit = normalized_.Find(key)) {
      if (stats) stats->normal_tbox_hits.fetch_add(1, std::memory_order_relaxed);
      return *hit;
    }
  }
  if (stats) stats->normal_tbox_misses.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const NormalTBox> built;
  {
    PhaseTimer timer(stats ? &stats->normalize_ns : nullptr);
    built = std::make_shared<const NormalTBox>(Normalize(tbox, vocab));
  }
  MutexLock lock(&mu_);
  auto [slot, inserted] = normalized_.TryEmplace(std::move(key));
  if (inserted) *slot = std::move(built);
  return *slot;
}

ContainmentCaches::ClosureEntry ContainmentCaches::GetClosure(
    const Ucrpq& q, const NormalTBox& tbox, bool alcq_case, Vocabulary* vocab,
    const ReductionOptions& options) {
  PipelineStats* stats = options.stats;
  const std::string tbox_part = tbox.ToString(*vocab);
  const std::string q_part = q.ToString(*vocab);
  const std::string_view engine_part = alcq_case ? "alcq" : "alci";
  FpKey key(JoinKeyParts(tbox_part, q_part, engine_part));
  // Closure verdicts are a pure function of (T, Q, engine); a key that does
  // not round-trip to exactly those parts could alias distinct inputs.
  GQC_AUDIT(ValidateCacheKey(key.text(), {tbox_part, q_part, engine_part}));
  {
    MutexLock lock(&mu_);
    if (const auto* hit = closures_.Find(key)) {
      if (stats) stats->closure_hits.fetch_add(1, std::memory_order_relaxed);
      return *hit;
    }
  }
  if (stats) stats->closure_misses.fetch_add(1, std::memory_order_relaxed);
  ClosureEntry entry;
  auto closure = ComputeTpClosure(q, tbox, alcq_case, vocab, options);
  if (closure.ok()) {
    entry.closure = std::make_shared<const TpClosure>(std::move(closure).value());
  } else {
    entry.error = closure.error();
  }
  // A closure whose build tripped a resource guard reflects the caller's
  // budget (or wall clock), not (T, Q) — caching it would degrade later,
  // better-funded calls. Return it uncached.
  const ResourceGuard* guard = options.countermodel.limits.guard;
  if (guard != nullptr && guard->exhausted()) return entry;
  MutexLock lock(&mu_);
  auto [slot, inserted] = closures_.TryEmplace(std::move(key));
  if (inserted) *slot = std::move(entry);
  return *slot;
}

void ContainmentCaches::Clear() {
  MutexLock lock(&mu_);
  normalized_.Clear();
  closures_.Clear();
}

std::size_t ContainmentCaches::normalized_count() const {
  MutexLock lock(&mu_);
  return normalized_.size();
}

std::size_t ContainmentCaches::closure_count() const {
  MutexLock lock(&mu_);
  return closures_.size();
}

}  // namespace gqc
