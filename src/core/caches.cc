#include "src/core/caches.h"

#include <chrono>

#include "src/core/validate.h"
#include "src/dl/normalize.h"
#include "src/util/fingerprint.h"
#include "src/util/invariant.h"

namespace gqc {

namespace {

uint64_t BuildCostNs(std::chrono::steady_clock::time_point start) {
  auto elapsed = std::chrono::steady_clock::now() - start;
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  return ns <= 0 ? 1 : static_cast<uint64_t>(ns);
}

std::size_t NormalizedBytes(std::size_t key_bytes, const NormalTBox& built) {
  // Key text + ~96 bytes per normalized CI (literal vectors + payload).
  return key_bytes + 96 * built.size() + 64;
}

std::size_t ClosureBytes(const FpKey& key,
                         const ContainmentCaches::ClosureEntry& entry) {
  std::size_t bytes = key.text().size() + entry.error.size() + 64;
  if (entry.closure != nullptr) {
    // Engine masks dominate; the factorization is charged at a flat rate.
    bytes += 8 * entry.closure->engine_masks.size() + 1024;
  }
  return bytes;
}

}  // namespace

std::shared_ptr<const NormalTBox> ContainmentCaches::GetNormalized(
    const TBox& tbox, Vocabulary* vocab, PipelineStats* stats) {
  FpKey key(tbox.ToString(*vocab));
  {
    MutexLock lock(&mu_);
    ++tick_;
    if (auto* hit = normalized_.Find(key)) {
      hit->meta.touch = tick_;
      if (stats) stats->normal_tbox_hits.fetch_add(1, std::memory_order_relaxed);
      return hit->value;
    }
  }
  if (stats) stats->normal_tbox_misses.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const NormalTBox> built;
  auto start = std::chrono::steady_clock::now();
  {
    PhaseTimer timer(stats ? &stats->normalize_ns : nullptr);
    built = std::make_shared<const NormalTBox>(Normalize(tbox, vocab));
  }
  uint64_t cost = BuildCostNs(start);
  std::size_t bytes = NormalizedBytes(key.text().size(), *built);
  MutexLock lock(&mu_);
  auto [slot, inserted] = normalized_.TryEmplace(std::move(key));
  if (!inserted) return slot->value;
  slot->value = built;
  slot->meta = {tick_, cost, bytes};
  // Enforcement may evict any entry (this one included) and rehash the
  // table; `slot` is dead after the call, so return the local ref.
  EnforceBudgetLocked();
  return built;
}

ContainmentCaches::ClosureEntry ContainmentCaches::GetClosure(
    const Ucrpq& q, const NormalTBox& tbox, bool alcq_case, Vocabulary* vocab,
    const ReductionOptions& options) {
  PipelineStats* stats = options.stats;
  const std::string tbox_part = tbox.ToString(*vocab);
  const std::string q_part = q.ToString(*vocab);
  const std::string_view engine_part = alcq_case ? "alcq" : "alci";
  FpKey key(JoinKeyParts(tbox_part, q_part, engine_part));
  // Closure verdicts are a pure function of (T, Q, engine); a key that does
  // not round-trip to exactly those parts could alias distinct inputs.
  GQC_AUDIT(ValidateCacheKey(key.text(), {tbox_part, q_part, engine_part}));
  {
    MutexLock lock(&mu_);
    ++tick_;
    if (auto* hit = closures_.Find(key)) {
      hit->meta.touch = tick_;
      if (stats) stats->closure_hits.fetch_add(1, std::memory_order_relaxed);
      return hit->value;
    }
  }
  if (stats) stats->closure_misses.fetch_add(1, std::memory_order_relaxed);
  ClosureEntry entry;
  auto start = std::chrono::steady_clock::now();
  auto closure = ComputeTpClosure(q, tbox, alcq_case, vocab, options);
  uint64_t cost = BuildCostNs(start);
  if (closure.ok()) {
    entry.closure = std::make_shared<const TpClosure>(std::move(closure).value());
  } else {
    entry.error = closure.error();
  }
  // A closure whose build tripped a resource guard reflects the caller's
  // budget (or wall clock), not (T, Q) — caching it would degrade later,
  // better-funded calls. Return it uncached.
  const ResourceGuard* guard = options.countermodel.limits.guard;
  if (guard != nullptr && guard->exhausted()) return entry;
  std::size_t bytes = ClosureBytes(key, entry);
  MutexLock lock(&mu_);
  auto [slot, inserted] = closures_.TryEmplace(std::move(key));
  if (!inserted) return slot->value;
  slot->value = entry;
  slot->meta = {tick_, cost, bytes};
  // Enforcement may evict this very entry and rehash; `slot` is dead after.
  EnforceBudgetLocked();
  return entry;
}

void ContainmentCaches::SetBudget(const CacheBudget& budget) {
  compile_memo_.SetBudget(budget);
  MutexLock lock(&mu_);
  budget_ = budget;
  EnforceBudgetLocked();
}

std::size_t ContainmentCaches::EnforceBudgetLocked() {
  if (!budget_.bounded()) return 0;
  std::size_t entries = normalized_.size() + closures_.size();
  std::size_t bytes = RetainedBytes(normalized_) + RetainedBytes(closures_);
  std::size_t drop = OverBudgetDropCount(budget_, entries, bytes);
  if (drop == 0) return 0;
  // Closures are the bulk of the bytes; evict them first, normalized TBoxes
  // only when closures alone cannot satisfy the drop.
  std::size_t from_closures = std::min(drop, closures_.size());
  std::size_t freed = EvictLowestScore(&closures_, tick_, from_closures);
  freed += EvictLowestScore(&normalized_, tick_, drop - from_closures);
  evicted_ += freed;
  return freed;
}

std::size_t ContainmentCaches::Evict(double pressure, PipelineStats* stats) {
  std::size_t freed = compile_memo_.Evict(pressure);
  std::size_t bytes_freed = 0;
  {
    MutexLock lock(&mu_);
    freed += EvictLowestScore(&normalized_, tick_,
                              EvictionCount(normalized_.size(), pressure),
                              &bytes_freed);
    freed += EvictLowestScore(&closures_, tick_,
                              EvictionCount(closures_.size(), pressure),
                              &bytes_freed);
    evicted_ += freed;
  }
  if (stats != nullptr && freed > 0) {
    stats->cache_evictions.fetch_add(freed, std::memory_order_relaxed);
    stats->cache_evicted_bytes.fetch_add(bytes_freed, std::memory_order_relaxed);
  }
  return freed;
}

std::size_t ContainmentCaches::retained_bytes() const {
  std::size_t total = compile_memo_.retained_bytes();
  MutexLock lock(&mu_);
  return total + RetainedBytes(normalized_) + RetainedBytes(closures_);
}

void ContainmentCaches::Clear() {
  compile_memo_.Clear();
  MutexLock lock(&mu_);
  normalized_.Clear();
  closures_.Clear();
  tick_ = 0;
}

std::size_t ContainmentCaches::normalized_count() const {
  MutexLock lock(&mu_);
  return normalized_.size();
}

std::size_t ContainmentCaches::closure_count() const {
  MutexLock lock(&mu_);
  return closures_.size();
}

}  // namespace gqc
