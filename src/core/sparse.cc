#include "src/core/sparse.h"

#include <algorithm>
#include <numeric>

#include "src/core/validate.h"
#include "src/entailment/witness_search.h"
#include "src/query/eval.h"
#include "src/util/invariant.h"

namespace gqc {

namespace {

/// Builds the quotient of `g` under the partition `block_of` (node -> block).
Graph Quotient(const Graph& g, const std::vector<uint32_t>& block_of,
               uint32_t blocks) {
  Graph out;
  // lint: bounded(linear in the block count of the at-most-8-node quotient)
  for (uint32_t b = 0; b < blocks; ++b) out.AddNode();
  // lint: bounded(linear in the at-most-8-node graph)
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    // lint: bounded(labels of a single node)
    for (uint32_t id : g.Labels(v).ToIds()) out.AddLabel(block_of[v], id);
  }
  g.ForEachEdge([&](const Edge& e) {
    out.AddEdge(block_of[e.from], e.role, block_of[e.to]);
  });
  return out;
}

}  // namespace

std::vector<Graph> SatisfyingQuotients(const Graph& g, const Crpq& p,
                                       std::size_t max_out) {
  std::vector<Graph> out;
  const std::size_t n = g.NodeCount();
  if (n == 0 || n > 8) {
    out.push_back(g);
    return out;
  }
  // Enumerate set partitions via restricted growth strings, coarsest block
  // id first per position so the identity partition (no merging) comes
  // first — it is the best seed and the only one kept when callers disable
  // quotients by setting max_out = 1.
  std::vector<uint32_t> rgs(n, 0);
  std::function<void(std::size_t, uint32_t)> recurse = [&](std::size_t i,
                                                           uint32_t max_used) {
    if (out.size() >= max_out) return;
    if (i == n) {
      Graph q = Quotient(g, rgs, max_used + 1);
      if (Matches(q, p)) out.push_back(std::move(q));
      return;
    }
    uint32_t highest = std::min<uint32_t>(max_used + 1, static_cast<uint32_t>(n - 1));
    // lint: bounded(n is at most 8, giving at most 4140 set partitions, further capped by max_out)
    for (uint32_t b = highest + 1; b-- > 0;) {
      rgs[i] = b;
      recurse(i + 1, std::max(max_used, b));
    }
  };
  if (n > 0) {
    rgs[0] = 0;
    recurse(1, 0);
  }
  return out;
}

CountermodelSearchResult FindCountermodel(const Crpq& p, const Ucrpq& q,
                                          const NormalTBox& tbox,
                                          const CountermodelOptions& options) {
  CountermodelSearchResult result;
  ExpansionSet expansions = CanonicalExpansions(p, options.expansion);
  bool exhaustive = expansions.exhaustive;

  Ucrpq p_union;
  p_union.AddDisjunct(p);

  // Support: T, p, q concepts.
  std::vector<uint32_t> ids = tbox.ConceptIds();
  // lint: bounded(mentioned concepts of q, linear in query size)
  for (uint32_t id : q.MentionedConcepts()) ids.push_back(id);
  // lint: bounded(mentioned concepts of p, linear in query size)
  for (uint32_t id : p.MentionedConcepts()) ids.push_back(id);
  TypeSpace space{std::move(ids)};

  bool capped = false;
  for (const Expansion& exp : expansions.expansions) {
    if (GuardExhausted(options.limits)) {
      capped = true;
      break;
    }
    std::vector<Graph> seeds =
        SatisfyingQuotients(exp.graph, p, options.max_quotients);
    if (seeds.size() >= options.max_quotients || exp.graph.NodeCount() > 8) {
      capped = true;
    }
    // lint: bounded(seeds are capped by max_quotients; FindWitness polls the shared guard per step)
    for (const Graph& seed : seeds) {
      WitnessProblem problem;
      problem.space = &space;
      problem.tbox = &tbox;
      problem.forbid = &q;
      problem.require = &p_union;
      problem.seed = &seed;
      WitnessResult w = FindWitness(problem, options.limits);
      if (w.answer == EngineAnswer::kYes) {
        result.answer = EngineAnswer::kYes;
        result.witness = std::move(w.witness);
        // The witness search claims G ⊨ T, G ⊨ p, G ⊭ q; re-check through
        // the independent model checker / evaluator before the claim
        // propagates into a kNotContained verdict.
        if (result.witness.has_value()) {
          GQC_AUDIT(ValidateCountermodel(*result.witness, p, q, tbox));
        }
        return result;
      }
      if (w.answer == EngineAnswer::kUnknown) capped = true;
    }
  }
  result.answer =
      (exhaustive && !capped) ? EngineAnswer::kNo : EngineAnswer::kUnknown;
  return result;
}

}  // namespace gqc
