#ifndef GQC_CORE_FACTBOARD_H_
#define GQC_CORE_FACTBOARD_H_

#include <optional>
#include <vector>

#include "src/core/lifecycle.h"
#include "src/core/result.h"
#include "src/core/stats.h"
#include "src/graph/graph.h"
#include "src/query/ucrpq.h"
#include "src/util/fingerprint.h"
#include "src/util/flat_map.h"
#include "src/util/sync.h"

namespace gqc {

/// Cross-strategy, cross-pair fact exchange for the portfolio runner — the
/// analogue of shared learned clauses in a racing SAT portfolio. Layered
/// *over* ContainmentCaches: the caches memoize pure (T, Q)-level state
/// (normalized TBoxes, Tp closures); the board shares facts discovered while
/// deciding individual disjuncts:
///
///  - verified countermodels, scoped by a (schema, Q) key: any graph G with
///    G ⊨ T, G ⊭ Q published under a scope refutes p ⊑_T Q for *every*
///    disjunct p it matches — one strategy's witness short-cuts sibling
///    disjuncts and later pairs against the same (T, Q);
///  - definite verdict memos keyed by a full (schema, Q, p) disjunct key —
///    refuted or certified disjuncts recurring across batch items are
///    answered without re-running any strategy.
///
/// Soundness contract: publishers only publish countermodels that were
/// re-verified (G ⊨ T and G ⊭ Q) and only definite verdicts; consumers only
/// reuse a countermodel after re-checking G ⊨ p for *their* p. Unknown
/// verdicts are never shared — they depend on the publisher's budget, not on
/// the instance.
///
/// Symbol-id safety: scope keys identify a (schema, Q) vocabulary layer, and
/// graphs are rejected at publish time unless every concept/role id they use
/// fits inside that shared base layer (`concept_limit`/`role_limit`). A
/// countermodel mentioning P-layer symbols would silently alias differently-
/// named symbols of another pair, so it stays private.
///
/// Lifecycle (DESIGN.md §12): like the other caches, the board is bounded
/// and evictable. Dropping an entry is always sound — a dropped fact is
/// merely re-derived by whichever strategy finds it next.
///
/// All operations are mutex-protected and safe from any thread; query
/// evaluation (the G ⊨ p re-check) runs outside the lock on copies.
class SharedFactBoard {
 public:
  /// Max countermodels retained per scope; later publishes are dropped
  /// (counted facts come from early, cheap refutations anyway).
  static constexpr std::size_t kMaxCountermodelsPerScope = 8;

  /// Publishes a verified countermodel for `scope_key` unless the scope is
  /// full or the graph uses symbol ids outside the shared base layer
  /// (ids must satisfy concept < concept_limit, role < role_limit).
  /// Returns true iff the graph was retained. Keys are FpKeys built once per
  /// decision, so board probes never rehash the canonical scope text.
  bool PublishCountermodel(const FpKey& scope_key, const Graph& g,
                           std::size_t concept_limit, std::size_t role_limit,
                           PipelineStats* stats);

  /// Searches the scope's published countermodels for one matching `p`
  /// (G ⊨ p re-checked here); a hit refutes p ⊑_T Q with that graph as
  /// witness. Matching runs on copies outside the board lock.
  std::optional<Graph> FindRefutation(const FpKey& scope_key,
                                      const Crpq& p, PipelineStats* stats) const;

  /// Memoizes a definite verdict for one disjunct key. Unknown verdicts and
  /// results carrying graphs that do not fit the shared base layer are
  /// stored with the graphs stripped (the verdict itself is id-free).
  void PublishResult(const FpKey& disjunct_key, ContainmentResult result,
                     std::size_t concept_limit, std::size_t role_limit,
                     PipelineStats* stats);

  /// Returns the memoized definite verdict for the key, if any.
  std::optional<ContainmentResult> LookupResult(const FpKey& disjunct_key,
                                                PipelineStats* stats) const;

  /// Bounds both tables (entries are scopes/verdicts; bytes are resident
  /// estimates; 0 = unbounded). Applies immediately and to later publishes.
  void SetBudget(const CacheBudget& budget);

  /// Drops ceil(size * pressure) lowest retain-score entries from each table
  /// and shrinks the backing arrays; returns entries dropped.
  std::size_t Evict(double pressure, PipelineStats* stats = nullptr);

  /// Summed resident-size estimates of every retained fact.
  std::size_t retained_bytes() const;

  void Clear();

  std::size_t countermodel_count() const;
  std::size_t result_count() const;

 private:
  std::size_t EnforceBudgetLocked() GQC_REQUIRES(mu_);

  mutable Mutex mu_{kLockRankFactBoard, "fact-board"};
  CacheBudget budget_ GQC_GUARDED_BY(mu_);
  /// tick_ and the tables are mutable so const lookups can refresh retain
  /// recency — logical constness: lookups never change what a key maps to.
  mutable uint64_t tick_ GQC_GUARDED_BY(mu_) = 0;
  mutable FlatMap<FpKey, Retained<std::vector<Graph>>, FpKeyHash>
      countermodels_ GQC_GUARDED_BY(mu_);
  mutable FlatMap<FpKey, Retained<ContainmentResult>, FpKeyHash>
      results_ GQC_GUARDED_BY(mu_);
};

/// True iff every concept/role id used by `g` (labels and edges) is below
/// the given limits — i.e. the graph is expressible in the shared (schema, Q)
/// base vocabulary layer and safe to reinterpret under any extension of it.
bool GraphFitsVocabulary(const Graph& g, std::size_t concept_limit,
                         std::size_t role_limit);

}  // namespace gqc

#endif  // GQC_CORE_FACTBOARD_H_
