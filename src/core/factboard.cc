#include "src/core/factboard.h"

#include <utility>

#include "src/query/eval.h"

namespace gqc {

bool GraphFitsVocabulary(const Graph& g, std::size_t concept_limit,
                         std::size_t role_limit) {
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    for (uint32_t concept_id : g.Labels(v).ToIds()) {
      if (concept_id >= concept_limit) return false;
    }
    for (const auto& [role_id, to] : g.OutEdges(v)) {
      (void)to;
      if (role_id >= role_limit) return false;
    }
  }
  return true;
}

bool SharedFactBoard::PublishCountermodel(const FpKey& scope_key,
                                          const Graph& g,
                                          std::size_t concept_limit,
                                          std::size_t role_limit,
                                          PipelineStats* stats) {
  if (!GraphFitsVocabulary(g, concept_limit, role_limit)) return false;
  {
    MutexLock lock(&mu_);
    std::vector<Graph>& scope = *countermodels_.TryEmplace(scope_key).first;
    if (scope.size() >= kMaxCountermodelsPerScope) return false;
    for (const Graph& have : scope) {
      if (have == g) return false;  // already published by a sibling
    }
    scope.push_back(g);
  }
  if (stats != nullptr) {
    stats->facts_published.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

std::optional<Graph> SharedFactBoard::FindRefutation(
    const FpKey& scope_key, const Crpq& p, PipelineStats* stats) const {
  std::vector<Graph> candidates;
  {
    MutexLock lock(&mu_);
    const std::vector<Graph>* scope = countermodels_.Find(scope_key);
    if (scope == nullptr) return std::nullopt;
    candidates = *scope;
  }
  for (Graph& g : candidates) {
    // The scope invariant gives G ⊨ T and G ⊭ Q; G ⊨ p completes the
    // countermodel for this disjunct.
    if (Matches(g, p)) {
      if (stats != nullptr) {
        stats->facts_consumed.fetch_add(1, std::memory_order_relaxed);
      }
      return std::move(g);
    }
  }
  return std::nullopt;
}

void SharedFactBoard::PublishResult(const FpKey& disjunct_key,
                                    ContainmentResult result,
                                    std::size_t concept_limit,
                                    std::size_t role_limit,
                                    PipelineStats* stats) {
  if (result.verdict == Verdict::kUnknown) return;
  if (result.countermodel.has_value() &&
      !GraphFitsVocabulary(*result.countermodel, concept_limit, role_limit)) {
    result.countermodel.reset();
  }
  if (result.central_part.has_value() &&
      !GraphFitsVocabulary(*result.central_part, concept_limit, role_limit)) {
    result.central_part.reset();
  }
  {
    MutexLock lock(&mu_);
    auto [slot, inserted] = results_.TryEmplace(disjunct_key);
    if (!inserted) return;  // first publisher wins; all definite agree anyway
    *slot = std::move(result);
  }
  if (stats != nullptr) {
    stats->facts_published.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<ContainmentResult> SharedFactBoard::LookupResult(
    const FpKey& disjunct_key, PipelineStats* stats) const {
  std::optional<ContainmentResult> out;
  {
    MutexLock lock(&mu_);
    const ContainmentResult* hit = results_.Find(disjunct_key);
    if (hit == nullptr) return std::nullopt;
    out = *hit;
  }
  if (stats != nullptr) {
    stats->facts_consumed.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

void SharedFactBoard::Clear() {
  MutexLock lock(&mu_);
  countermodels_.Clear();
  results_.Clear();
}

std::size_t SharedFactBoard::countermodel_count() const {
  MutexLock lock(&mu_);
  std::size_t n = 0;
  countermodels_.ForEach(
      [&](const FpKey&, const std::vector<Graph>& scope) { n += scope.size(); });
  return n;
}

std::size_t SharedFactBoard::result_count() const {
  MutexLock lock(&mu_);
  return results_.size();
}

}  // namespace gqc
