#include "src/core/factboard.h"

#include <utility>

#include "src/query/eval.h"

namespace gqc {

namespace {

std::size_t GraphBytes(const Graph& g) {
  std::size_t edges = 0;
  for (NodeId v = 0; v < g.NodeCount(); ++v) edges += g.OutEdges(v).size();
  return 64 + 48 * g.NodeCount() + 16 * edges;
}

std::size_t ResultBytes(const ContainmentResult& r) {
  std::size_t bytes = 128 + r.attr.note.size();
  if (r.countermodel.has_value()) bytes += GraphBytes(*r.countermodel);
  if (r.central_part.has_value()) bytes += GraphBytes(*r.central_part);
  return bytes;
}

}  // namespace

bool GraphFitsVocabulary(const Graph& g, std::size_t concept_limit,
                         std::size_t role_limit) {
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    for (uint32_t concept_id : g.Labels(v).ToIds()) {
      if (concept_id >= concept_limit) return false;
    }
    for (const auto& [role_id, to] : g.OutEdges(v)) {
      (void)to;
      if (role_id >= role_limit) return false;
    }
  }
  return true;
}

bool SharedFactBoard::PublishCountermodel(const FpKey& scope_key,
                                          const Graph& g,
                                          std::size_t concept_limit,
                                          std::size_t role_limit,
                                          PipelineStats* stats) {
  if (!GraphFitsVocabulary(g, concept_limit, role_limit)) return false;
  {
    MutexLock lock(&mu_);
    ++tick_;
    auto [slot, inserted] = countermodels_.TryEmplace(scope_key);
    if (inserted) slot->meta.bytes = scope_key.text().size() + 64;
    std::vector<Graph>& scope = slot->value;
    if (scope.size() >= kMaxCountermodelsPerScope) return false;
    for (const Graph& have : scope) {
      if (have == g) return false;  // already published by a sibling
    }
    scope.push_back(g);
    slot->meta.touch = tick_;
    slot->meta.bytes += GraphBytes(g);
    // A published countermodel short-cuts whole disjunct decisions; charge
    // its retain cost well above a verdict memo's.
    slot->meta.cost += 1000000;
    EnforceBudgetLocked();
  }
  if (stats != nullptr) {
    stats->facts_published.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

std::optional<Graph> SharedFactBoard::FindRefutation(
    const FpKey& scope_key, const Crpq& p, PipelineStats* stats) const {
  std::vector<Graph> candidates;
  {
    MutexLock lock(&mu_);
    ++tick_;
    auto* scope = countermodels_.Find(scope_key);
    if (scope == nullptr) return std::nullopt;
    scope->meta.touch = tick_;
    candidates = scope->value;
  }
  for (Graph& g : candidates) {
    // The scope invariant gives G ⊨ T and G ⊭ Q; G ⊨ p completes the
    // countermodel for this disjunct.
    if (Matches(g, p)) {
      if (stats != nullptr) {
        stats->facts_consumed.fetch_add(1, std::memory_order_relaxed);
      }
      return std::move(g);
    }
  }
  return std::nullopt;
}

void SharedFactBoard::PublishResult(const FpKey& disjunct_key,
                                    ContainmentResult result,
                                    std::size_t concept_limit,
                                    std::size_t role_limit,
                                    PipelineStats* stats) {
  if (result.verdict == Verdict::kUnknown) return;
  if (result.countermodel.has_value() &&
      !GraphFitsVocabulary(*result.countermodel, concept_limit, role_limit)) {
    result.countermodel.reset();
  }
  if (result.central_part.has_value() &&
      !GraphFitsVocabulary(*result.central_part, concept_limit, role_limit)) {
    result.central_part.reset();
  }
  {
    MutexLock lock(&mu_);
    ++tick_;
    auto [slot, inserted] = results_.TryEmplace(disjunct_key);
    if (!inserted) return;  // first publisher wins; all definite agree anyway
    std::size_t bytes = disjunct_key.text().size() + ResultBytes(result);
    slot->value = std::move(result);
    // Verdict memos replace whole strategy pipelines; keep a flat high cost
    // so recency drives eviction among them.
    slot->meta = {tick_, 100000, bytes};
    EnforceBudgetLocked();
  }
  if (stats != nullptr) {
    stats->facts_published.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<ContainmentResult> SharedFactBoard::LookupResult(
    const FpKey& disjunct_key, PipelineStats* stats) const {
  std::optional<ContainmentResult> out;
  {
    MutexLock lock(&mu_);
    ++tick_;
    auto* hit = results_.Find(disjunct_key);
    if (hit == nullptr) return std::nullopt;
    hit->meta.touch = tick_;
    out = hit->value;
  }
  if (stats != nullptr) {
    stats->facts_consumed.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

void SharedFactBoard::SetBudget(const CacheBudget& budget) {
  MutexLock lock(&mu_);
  budget_ = budget;
  EnforceBudgetLocked();
}

std::size_t SharedFactBoard::EnforceBudgetLocked() {
  if (!budget_.bounded()) return 0;
  std::size_t entries = countermodels_.size() + results_.size();
  std::size_t bytes = RetainedBytes(countermodels_) + RetainedBytes(results_);
  std::size_t drop = OverBudgetDropCount(budget_, entries, bytes);
  if (drop == 0) return 0;
  // Verdict memos outnumber countermodel scopes and recompute cheaply;
  // evict them first.
  std::size_t from_results = std::min(drop, results_.size());
  std::size_t freed = EvictLowestScore(&results_, tick_, from_results);
  freed += EvictLowestScore(&countermodels_, tick_, drop - from_results);
  return freed;
}

std::size_t SharedFactBoard::Evict(double pressure, PipelineStats* stats) {
  std::size_t bytes_freed = 0;
  std::size_t freed = 0;
  {
    MutexLock lock(&mu_);
    freed += EvictLowestScore(&countermodels_, tick_,
                              EvictionCount(countermodels_.size(), pressure),
                              &bytes_freed);
    freed += EvictLowestScore(&results_, tick_,
                              EvictionCount(results_.size(), pressure),
                              &bytes_freed);
  }
  if (stats != nullptr && freed > 0) {
    stats->cache_evictions.fetch_add(freed, std::memory_order_relaxed);
    stats->cache_evicted_bytes.fetch_add(bytes_freed, std::memory_order_relaxed);
  }
  return freed;
}

std::size_t SharedFactBoard::retained_bytes() const {
  MutexLock lock(&mu_);
  return RetainedBytes(countermodels_) + RetainedBytes(results_);
}

void SharedFactBoard::Clear() {
  MutexLock lock(&mu_);
  countermodels_.Clear();
  results_.Clear();
  tick_ = 0;
}

std::size_t SharedFactBoard::countermodel_count() const {
  MutexLock lock(&mu_);
  std::size_t n = 0;
  countermodels_.ForEach([&](const FpKey&, const Retained<std::vector<Graph>>& scope) {
    n += scope.value.size();
  });
  return n;
}

std::size_t SharedFactBoard::result_count() const {
  MutexLock lock(&mu_);
  return results_.size();
}

}  // namespace gqc
