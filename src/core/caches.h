#ifndef GQC_CORE_CACHES_H_
#define GQC_CORE_CACHES_H_

#include <memory>
#include <string>

#include "src/core/lifecycle.h"
#include "src/core/reduction.h"
#include "src/core/stats.h"
#include "src/dl/tbox.h"
#include "src/entailment/compile_memo.h"
#include "src/util/fingerprint.h"
#include "src/util/flat_map.h"
#include "src/util/sync.h"

namespace gqc {

/// Memoized immutable reasoning state shared across containment calls (and,
/// in the batch engine, across worker threads):
///
///  - normalized-TBox cache: canonical TBox serialization -> NormalTBox.
///    Normalization interns fresh concept names, so every repeated Decide
///    call on the same schema used to pay the normalization *and* grow the
///    vocabulary; with the cache both happen once.
///  - entailment-closure cache: (NormalTBox, Q, engine) -> TpClosure, the
///    factorization Q̂ plus the realizable-type set Tp(T, Q̂). This is the
///    dominant reusable cost of the §3 reduction: it is independent of the
///    left-hand disjunct p, so one closure serves every disjunct of every P
///    checked against the same (T, Q).
///  - compile memo: the per-solve word-mask compilations
///    (src/entailment/compile_memo.h), wired into every guarded search
///    through EngineLimits so microsecond-scale solves stop paying
///    recompilation.
///
/// Keys are exact canonical serializations carried as FpKeys: the flat maps
/// probe on the precomputed 64-bit fingerprint (an 8-byte compare per probe
/// step) and verify the canonical text only on a fingerprint match, so no
/// fingerprint collision can produce a wrong verdict (DESIGN.md §11).
///
/// Lifecycle (DESIGN.md §12): the caches are bounded and evictable for
/// long-running serving. SetBudget bounds entries/estimated bytes;
/// over-budget inserts and explicit Evict(pressure) calls drop the entries
/// with the lowest retain score (recency × recompute-cost, vlog-style) and
/// shrink the backing arrays. Eviction can never change a verdict — every
/// entry is a pure function of its key and is simply recomputed on the next
/// miss.
///
/// Lookup/insert is mutex-protected and safe from any thread. Values are
/// computed OUTSIDE the lock; on a miss the builder may intern fresh names
/// into the vocabulary, so concurrent misses sharing one Vocabulary must be
/// externally serialized (the checker is single-threaded per vocabulary; the
/// batch engine builds each context in a private vocabulary before sharing).
class ContainmentCaches {
 public:
  /// Normalized form of `tbox`, computing (and interning into `vocab`) on
  /// first use. Cached entries are keyed within one vocabulary — do not share
  /// one ContainmentCaches between checkers on different vocabularies.
  std::shared_ptr<const NormalTBox> GetNormalized(const TBox& tbox,
                                                  Vocabulary* vocab,
                                                  PipelineStats* stats);

  struct ClosureEntry {
    /// Null when the closure could not be built (factorization failure);
    /// `error` then carries the reason. Negative results are cached too.
    std::shared_ptr<const TpClosure> closure;
    std::string error;
  };

  /// Tp closure for (tbox, q) under the engine selected by `alcq_case`.
  ClosureEntry GetClosure(const Ucrpq& q, const NormalTBox& tbox, bool alcq_case,
                          Vocabulary* vocab, const ReductionOptions& options);

  /// The shared compile memo; callers wire it into EngineLimits.
  CompiledScopeMemo* compile_memo() { return &compile_memo_; }

  /// Bounds the normalized/closure tables (the memo takes the same budget);
  /// 0 = unbounded. Applies immediately and to every later insert.
  void SetBudget(const CacheBudget& budget);

  /// Drops ceil(size * pressure) lowest retain-score entries from each table
  /// (and the memo) and shrinks the backing arrays; returns entries dropped.
  /// Records evictions on `stats` when non-null.
  std::size_t Evict(double pressure, PipelineStats* stats = nullptr);

  /// Summed resident-size estimates of every retained entry.
  std::size_t retained_bytes() const;

  void Clear();

  std::size_t normalized_count() const;
  std::size_t closure_count() const;

 private:
  std::size_t EnforceBudgetLocked() GQC_REQUIRES(mu_);

  mutable Mutex mu_{kLockRankNormalizeCache, "normalize-cache"};
  CacheBudget budget_ GQC_GUARDED_BY(mu_);
  uint64_t tick_ GQC_GUARDED_BY(mu_) = 0;
  uint64_t evicted_ GQC_GUARDED_BY(mu_) = 0;
  FlatMap<FpKey, Retained<std::shared_ptr<const NormalTBox>>, FpKeyHash>
      normalized_ GQC_GUARDED_BY(mu_);
  FlatMap<FpKey, Retained<ClosureEntry>, FpKeyHash> closures_
      GQC_GUARDED_BY(mu_);
  CompiledScopeMemo compile_memo_;
};

}  // namespace gqc

#endif  // GQC_CORE_CACHES_H_
