#ifndef GQC_CORE_CACHES_H_
#define GQC_CORE_CACHES_H_

#include <memory>
#include <string>

#include "src/core/reduction.h"
#include "src/core/stats.h"
#include "src/dl/tbox.h"
#include "src/util/fingerprint.h"
#include "src/util/flat_map.h"
#include "src/util/sync.h"

namespace gqc {

/// Memoized immutable reasoning state shared across containment calls (and,
/// in the batch engine, across worker threads):
///
///  - normalized-TBox cache: canonical TBox serialization -> NormalTBox.
///    Normalization interns fresh concept names, so every repeated Decide
///    call on the same schema used to pay the normalization *and* grow the
///    vocabulary; with the cache both happen once.
///  - entailment-closure cache: (NormalTBox, Q, engine) -> TpClosure, the
///    factorization Q̂ plus the realizable-type set Tp(T, Q̂). This is the
///    dominant reusable cost of the §3 reduction: it is independent of the
///    left-hand disjunct p, so one closure serves every disjunct of every P
///    checked against the same (T, Q).
///
/// Keys are exact canonical serializations carried as FpKeys: the flat maps
/// probe on the precomputed 64-bit fingerprint (an 8-byte compare per probe
/// step) and verify the canonical text only on a fingerprint match, so no
/// fingerprint collision can produce a wrong verdict (DESIGN.md §11).
///
/// Lookup/insert is mutex-protected and safe from any thread. Values are
/// computed OUTSIDE the lock; on a miss the builder may intern fresh names
/// into the vocabulary, so concurrent misses sharing one Vocabulary must be
/// externally serialized (the checker is single-threaded per vocabulary; the
/// batch engine builds each context in a private vocabulary before sharing).
class ContainmentCaches {
 public:
  /// Normalized form of `tbox`, computing (and interning into `vocab`) on
  /// first use. Cached entries are keyed within one vocabulary — do not share
  /// one ContainmentCaches between checkers on different vocabularies.
  std::shared_ptr<const NormalTBox> GetNormalized(const TBox& tbox,
                                                  Vocabulary* vocab,
                                                  PipelineStats* stats);

  struct ClosureEntry {
    /// Null when the closure could not be built (factorization failure);
    /// `error` then carries the reason. Negative results are cached too.
    std::shared_ptr<const TpClosure> closure;
    std::string error;
  };

  /// Tp closure for (tbox, q) under the engine selected by `alcq_case`.
  ClosureEntry GetClosure(const Ucrpq& q, const NormalTBox& tbox, bool alcq_case,
                          Vocabulary* vocab, const ReductionOptions& options);

  void Clear();

  std::size_t normalized_count() const;
  std::size_t closure_count() const;

 private:
  mutable Mutex mu_{kLockRankNormalizeCache, "normalize-cache"};
  FlatMap<FpKey, std::shared_ptr<const NormalTBox>, FpKeyHash>
      normalized_ GQC_GUARDED_BY(mu_);
  FlatMap<FpKey, ClosureEntry, FpKeyHash> closures_ GQC_GUARDED_BY(mu_);
};

}  // namespace gqc

#endif  // GQC_CORE_CACHES_H_
