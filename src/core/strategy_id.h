#ifndef GQC_CORE_STRATEGY_ID_H_
#define GQC_CORE_STRATEGY_ID_H_

#include <cstddef>
#include <cstdint>

namespace gqc {

/// Identity of a registered decision strategy (src/core/strategy.h). The ids
/// are dense so per-strategy stats counters can live in fixed arrays; the
/// order here is also the default *sequential* priority order (cheapest
/// first), which is what keeps the sequential mode bit-identical to the
/// pre-strategy pipeline.
enum class StrategyId : uint8_t {
  kScreen = 0,   // cheap exact screens (trivial + classical containment)
  kDirect,       // direct bounded countermodel search against the full TBox
  kWitness,      // refutation-only deep witness search (portfolio extra)
  kReduction,    // full §3 reduction -> finite entailment
};
inline constexpr std::size_t kStrategyCount = 4;

inline const char* StrategyName(StrategyId id) {
  switch (id) {
    case StrategyId::kScreen:
      return "screen";
    case StrategyId::kDirect:
      return "direct";
    case StrategyId::kWitness:
      return "witness";
    case StrategyId::kReduction:
      return "reduction";
  }
  return "?";
}

}  // namespace gqc

#endif  // GQC_CORE_STRATEGY_ID_H_
