#ifndef GQC_CORE_MINIMIZE_H_
#define GQC_CORE_MINIMIZE_H_

#include <functional>

#include "src/dl/tbox.h"
#include "src/graph/graph.h"
#include "src/query/ucrpq.h"

namespace gqc {

/// Greedily shrinks a graph while `invariant` stays true: drops nodes, then
/// edges, then labels, iterating to a fixpoint. The result is 1-minimal
/// (no single removal preserves the invariant), not globally minimal.
Graph MinimizeWitness(Graph g, const std::function<bool(const Graph&)>& invariant);

/// Minimizes a containment countermodel: keeps G ⊨ tbox, G ⊨ p, G ⊭ q.
/// Smaller countermodels are dramatically easier to read; the containment
/// checker applies this before returning a witness.
Graph MinimizeCountermodel(const Graph& g, const Ucrpq& p, const Ucrpq& q,
                           const NormalTBox& tbox);

}  // namespace gqc

#endif  // GQC_CORE_MINIMIZE_H_
