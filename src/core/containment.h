#ifndef GQC_CORE_CONTAINMENT_H_
#define GQC_CORE_CONTAINMENT_H_

#include <memory>
#include <vector>

#include "src/core/caches.h"
#include "src/core/reduction.h"
#include "src/core/result.h"
#include "src/core/stats.h"
#include "src/dl/tbox.h"

namespace gqc {

class Strategy;

/// Options controlling the containment pipeline.
struct ContainmentOptions {
  CountermodelOptions countermodel;
  FactorizeOptions factorize;
  /// Resource budget per decision. Step/memory budgets apply to each
  /// disjunct decision independently (so budget verdicts are deterministic
  /// at any thread count); the deadline is pinned once per pair and shared
  /// by every disjunct; the cancellation token may be shared wider (the
  /// batch engine shares one per batch). Default: unlimited.
  ResourceBudget resources;
  /// Skip the (potentially expensive) §3 reduction and only run the direct
  /// bounded searches.
  bool disable_reduction = false;
  /// Shrink returned countermodels to 1-minimal witnesses (readability).
  bool minimize_countermodels = true;
  /// Memoize normalized TBoxes and Tp closures across calls (per checker;
  /// verdicts are identical with caching on or off — the caches store pure
  /// functions of their keys). Off = the pre-cache re-normalizing behavior.
  bool enable_caching = true;
  /// Optional observability sink: per-phase wall time, cache hit/miss
  /// counters, verdict/method tallies, countermodel sizes. May be shared by
  /// several checkers/threads (all counters are atomic).
  PipelineStats* stats = nullptr;
  /// Strategy order DecideDisjunct tries (src/core/strategy.h): first
  /// definite verdict wins, kUnknown falls through to the next. Empty means
  /// SequentialOrder() — screen, direct, reduction — which reproduces the
  /// former hardwired pipeline bit for bit. Entries must outlive the checker
  /// (the registered strategies are immortal singletons).
  std::vector<const Strategy*> strategies;
};

/// Records one decided pair into `stats` (verdict and method tallies);
/// no-op on a null sink. Called by Decide; the batch engine, which folds
/// disjunct results itself, calls it directly.
void TallyPair(PipelineStats* stats, const ContainmentResult& result);

/// Decides containment modulo schema, P ⊑_T Q over all finite graphs (§3).
///
/// Pipeline per connected disjunct p of P (P ⊑_T Q iff every disjunct is
/// contained):
///   1. Satisfiability screen: if p has no model satisfying T at all, the
///      disjunct is vacuously contained.
///   2. Direct countermodel search: seeds from canonical expansions of p and
///      their quotients, completed against the full TBox while avoiding Q.
///      A hit is a verified countermodel (kNotContained). For TBoxes without
///      participation constraints this search is also complete
///      (Theorem 3.2 path) when the expansion set is exhaustive.
///   3. With participation constraints and a supported fragment
///      (simple Q + ALCQ, or simple one-way Q + ALCI), the §3 reduction:
///      Tp(T, Q̂) via the entailment engines, then a star-like central-part
///      search with participation deferral (Lemma 3.5).
///   4. Otherwise: kUnknown (budgets in `options` control how hard 2 tries).
///
/// Definite answers are exact; kNotContained verdicts carry a re-verified
/// countermodel (or the central part when found via the reduction).
///
/// A checker is bound to one Vocabulary and is not itself thread-safe; the
/// batch engine (src/engine) runs one checker per worker over cloned
/// vocabularies and shares the memoized state via precomputed closures.
class ContainmentChecker {
 public:
  ContainmentChecker(Vocabulary* vocab, ContainmentOptions options = {});

  /// P, Q: UC2RPQs. `schema`: the TBox. Normalized on first use and (with
  /// `enable_caching`) memoized, so repeated calls against one schema pay
  /// normalization once.
  [[nodiscard]] ContainmentResult Decide(const Ucrpq& p, const Ucrpq& q,
                                         const TBox& schema);

  /// Same with a pre-normalized TBox.
  [[nodiscard]] ContainmentResult Decide(const Ucrpq& p, const Ucrpq& q,
                                         const NormalTBox& schema);

  /// Equivalence modulo schema: containment in both directions. Useful for
  /// schema-aware query rewriting (an atom may be dropped iff the rewritten
  /// query stays equivalent). kContained in the result means "equivalent";
  /// a countermodel (from whichever direction failed) refutes equivalence.
  [[nodiscard]] ContainmentResult DecideEquivalence(const Ucrpq& p,
                                                    const Ucrpq& q,
                                                    const NormalTBox& schema);

  /// Same against a raw TBox, normalizing (and, with `enable_caching`,
  /// memoizing) exactly like the Decide TBox overload — the two entry
  /// points stay symmetric.
  [[nodiscard]] ContainmentResult DecideEquivalence(const Ucrpq& p,
                                                    const Ucrpq& q,
                                                    const TBox& schema);

  /// Decides one connected disjunct p of P (advanced API — the unit of
  /// parallelism for the batch engine). When `closure` is non-null it must be
  /// the Tp closure of (schema, q) computed in a vocabulary this checker's
  /// vocabulary extends; the call is then read-only on the vocabulary and may
  /// run concurrently with other DecideDisjunct calls sharing it.
  ///
  /// `guard` (optional) governs this one decision: every potentially-
  /// exponential phase polls it, and a trip unwinds to Verdict::kUnknown with
  /// the trip details in `Attribution::unknown` — never to an abort or
  /// a wrong definite verdict. Callers that want per-pair deadlines construct
  /// one guard per disjunct against a shared absolute deadline (see Decide).
  [[nodiscard]] ContainmentResult DecideDisjunct(const Crpq& p, const Ucrpq& q,
                                   const NormalTBox& schema,
                                   const TpClosure* closure = nullptr,
                                   ResourceGuard* guard = nullptr);

  /// Folds per-disjunct results (in disjunct order) into the pair verdict,
  /// exactly as the sequential Decide loop does: the first kNotContained
  /// wins; any kUnknown poisons kContained. Exposed so parallel drivers
  /// reproduce sequential results bit-for-bit.
  [[nodiscard]] static ContainmentResult Combine(
      std::vector<ContainmentResult> per_disjunct);

  const ContainmentOptions& options() const { return options_; }

  /// The per-checker memoized state (normalized TBoxes, Tp closures).
  ContainmentCaches* caches() { return caches_.get(); }

 private:
  Vocabulary* vocab_;
  ContainmentOptions options_;
  std::unique_ptr<ContainmentCaches> caches_;
};

}  // namespace gqc

#endif  // GQC_CORE_CONTAINMENT_H_
