#ifndef GQC_CORE_CONTAINMENT_H_
#define GQC_CORE_CONTAINMENT_H_

#include "src/core/reduction.h"
#include "src/core/result.h"
#include "src/dl/tbox.h"

namespace gqc {

/// Options controlling the containment pipeline.
struct ContainmentOptions {
  CountermodelOptions countermodel;
  FactorizeOptions factorize;
  /// Skip the (potentially expensive) §3 reduction and only run the direct
  /// bounded searches.
  bool disable_reduction = false;
  /// Shrink returned countermodels to 1-minimal witnesses (readability).
  bool minimize_countermodels = true;
};

/// Decides containment modulo schema, P ⊑_T Q over all finite graphs (§3).
///
/// Pipeline per connected disjunct p of P (P ⊑_T Q iff every disjunct is
/// contained):
///   1. Satisfiability screen: if p has no model satisfying T at all, the
///      disjunct is vacuously contained.
///   2. Direct countermodel search: seeds from canonical expansions of p and
///      their quotients, completed against the full TBox while avoiding Q.
///      A hit is a verified countermodel (kNotContained). For TBoxes without
///      participation constraints this search is also complete
///      (Theorem 3.2 path) when the expansion set is exhaustive.
///   3. With participation constraints and a supported fragment
///      (simple Q + ALCQ, or simple one-way Q + ALCI), the §3 reduction:
///      Tp(T, Q̂) via the entailment engines, then a star-like central-part
///      search with participation deferral (Lemma 3.5).
///   4. Otherwise: kUnknown (budgets in `options` control how hard 2 tries).
///
/// Definite answers are exact; kNotContained verdicts carry a re-verified
/// countermodel (or the central part when found via the reduction).
class ContainmentChecker {
 public:
  ContainmentChecker(Vocabulary* vocab, ContainmentOptions options = {})
      : vocab_(vocab), options_(std::move(options)) {}

  /// P, Q: UC2RPQs. `schema`: the TBox (normalized internally).
  ContainmentResult Decide(const Ucrpq& p, const Ucrpq& q, const TBox& schema);

  /// Same with a pre-normalized TBox.
  ContainmentResult Decide(const Ucrpq& p, const Ucrpq& q, const NormalTBox& schema);

  /// Equivalence modulo schema: containment in both directions. Useful for
  /// schema-aware query rewriting (an atom may be dropped iff the rewritten
  /// query stays equivalent). kContained in the result means "equivalent";
  /// a countermodel (from whichever direction failed) refutes equivalence.
  ContainmentResult DecideEquivalence(const Ucrpq& p, const Ucrpq& q,
                                      const NormalTBox& schema);

 private:
  ContainmentResult DecideDisjunct(const Crpq& p, const Ucrpq& q,
                                   const NormalTBox& schema);

  Vocabulary* vocab_;
  ContainmentOptions options_;
};

}  // namespace gqc

#endif  // GQC_CORE_CONTAINMENT_H_
