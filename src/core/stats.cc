#include "src/core/stats.h"

#include "src/util/json.h"

namespace gqc {

void PipelineStats::RecordCountermodel(uint64_t nodes) {
  countermodel_count.fetch_add(1, std::memory_order_relaxed);
  countermodel_nodes_total.fetch_add(nodes, std::memory_order_relaxed);
  uint64_t prev = countermodel_nodes_max.load(std::memory_order_relaxed);
  while (prev < nodes && !countermodel_nodes_max.compare_exchange_weak(
                             prev, nodes, std::memory_order_relaxed)) {
  }
}

void PipelineStats::RecordGuard(const ResourceGuard& guard) {
  guards_total.fetch_add(1, std::memory_order_relaxed);
  switch (guard.reason()) {
    case GuardResource::kNone:
      break;
    case GuardResource::kDeadline:
      budget_deadline.fetch_add(1, std::memory_order_relaxed);
      break;
    case GuardResource::kSteps:
      budget_steps.fetch_add(1, std::memory_order_relaxed);
      break;
    case GuardResource::kMemory:
      budget_memory.fetch_add(1, std::memory_order_relaxed);
      break;
    case GuardResource::kCancelled:
      budget_cancelled.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  for (std::size_t p = 0; p < kGuardPhaseCount; ++p) {
    uint64_t steps = guard.steps_spent(static_cast<GuardPhase>(p));
    std::size_t bucket = 0;
    for (uint64_t s = steps; s > 0 && bucket + 1 < kSpendBuckets; s /= 10) {
      ++bucket;
    }
    spend_hist[p][bucket].fetch_add(1, std::memory_order_relaxed);
  }
}

void PipelineStats::RecordPreempted() {
  pairs_preempted.fetch_add(1, std::memory_order_relaxed);
}

void PipelineStats::RecordStrategyWin(StrategyId id) {
  strategy_wins[static_cast<std::size_t>(id)].fetch_add(
      1, std::memory_order_relaxed);
}

void PipelineStats::RecordStrategyLoss(StrategyId id, bool race_cancelled) {
  auto& arr = race_cancelled ? strategy_cancelled : strategy_inconclusive;
  arr[static_cast<std::size_t>(id)].fetch_add(1, std::memory_order_relaxed);
}

void PipelineStats::Reset() {
  for (std::atomic<uint64_t>* a :
       {&parse_ns, &normalize_ns, &screen_ns, &direct_ns, &entailment_ns,
        &reduction_ns, &batch_wall_ns, &pairs_total, &pairs_contained,
        &pairs_not_contained, &pairs_unknown, &pairs_error, &method_classical,
        &method_direct, &method_sparse, &method_reduction, &method_trivial,
        &disjuncts_total, &normal_tbox_hits, &normal_tbox_misses, &regex_hits,
        &regex_misses, &closure_hits, &closure_misses, &schema_ctx_hits,
        &schema_ctx_misses, &query_ctx_hits, &query_ctx_misses,
        &compile_memo_hits, &compile_memo_misses, &cache_evictions,
        &cache_evicted_bytes, &cache_retained_bytes, &warmstart_loaded,
        &warmstart_hits, &warmstart_rejected, &requests_shed,
        &countermodel_count, &countermodel_nodes_total, &countermodel_nodes_max,
        &guards_total, &budget_deadline, &budget_steps, &budget_memory,
        &budget_cancelled, &pairs_preempted, &portfolio_races,
        &facts_published, &facts_consumed}) {
    a->store(0, std::memory_order_relaxed);
  }
  for (auto* arr : {&strategy_wins, &strategy_cancelled,
                    &strategy_inconclusive}) {
    for (auto& a : *arr) a.store(0, std::memory_order_relaxed);
  }
  for (auto& phase : spend_hist) {
    for (auto& bucket : phase) bucket.store(0, std::memory_order_relaxed);
  }
}

namespace {

double Ms(const std::atomic<uint64_t>& ns) {
  return static_cast<double>(ns.load(std::memory_order_relaxed)) / 1e6;
}

uint64_t V(const std::atomic<uint64_t>& a) {
  return a.load(std::memory_order_relaxed);
}

void CacheEntry(JsonWriter* w, const char* name, uint64_t hits, uint64_t misses) {
  w->Key(name).BeginObject();
  w->Key("hits").UInt(hits);
  w->Key("misses").UInt(misses);
  uint64_t total = hits + misses;
  w->Key("hit_rate").Double(total == 0 ? 0.0
                                       : static_cast<double>(hits) /
                                             static_cast<double>(total));
  w->EndObject();
}

}  // namespace

std::string PipelineStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();

  w.Key("pairs").BeginObject();
  w.Key("total").UInt(V(pairs_total));
  w.Key("contained").UInt(V(pairs_contained));
  w.Key("not_contained").UInt(V(pairs_not_contained));
  w.Key("unknown").UInt(V(pairs_unknown));
  w.Key("errors").UInt(V(pairs_error));
  w.EndObject();

  w.Key("methods").BeginObject();
  w.Key("classical").UInt(V(method_classical));
  w.Key("direct_search").UInt(V(method_direct));
  w.Key("sparse").UInt(V(method_sparse));
  w.Key("reduction").UInt(V(method_reduction));
  w.Key("trivial").UInt(V(method_trivial));
  w.EndObject();

  w.Key("disjuncts").UInt(V(disjuncts_total));

  w.Key("strategies").BeginObject();
  for (std::size_t i = 0; i < kStrategyCount; ++i) {
    w.Key(StrategyName(static_cast<StrategyId>(i))).BeginObject();
    w.Key("wins").UInt(V(strategy_wins[i]));
    w.Key("cancelled").UInt(V(strategy_cancelled[i]));
    w.Key("inconclusive").UInt(V(strategy_inconclusive[i]));
    w.EndObject();
  }
  w.Key("portfolio_races").UInt(V(portfolio_races));
  w.EndObject();

  w.Key("fact_board").BeginObject();
  w.Key("published").UInt(V(facts_published));
  w.Key("consumed").UInt(V(facts_consumed));
  w.EndObject();

  w.Key("phases_ms").BeginObject();
  w.Key("parse").Double(Ms(parse_ns));
  w.Key("normalize").Double(Ms(normalize_ns));
  w.Key("screen").Double(Ms(screen_ns));
  w.Key("direct_search").Double(Ms(direct_ns));
  w.Key("entailment").Double(Ms(entailment_ns));
  w.Key("reduction").Double(Ms(reduction_ns));
  w.Key("batch_wall").Double(Ms(batch_wall_ns));
  w.EndObject();

  w.Key("caches").BeginObject();
  CacheEntry(&w, "normal_tbox", V(normal_tbox_hits), V(normal_tbox_misses));
  CacheEntry(&w, "regex", V(regex_hits), V(regex_misses));
  CacheEntry(&w, "closure", V(closure_hits), V(closure_misses));
  CacheEntry(&w, "schema_context", V(schema_ctx_hits), V(schema_ctx_misses));
  CacheEntry(&w, "query_context", V(query_ctx_hits), V(query_ctx_misses));
  CacheEntry(&w, "compile_memo", V(compile_memo_hits), V(compile_memo_misses));
  w.EndObject();

  w.Key("lifecycle").BeginObject();
  w.Key("evictions").UInt(V(cache_evictions));
  w.Key("evicted_bytes").UInt(V(cache_evicted_bytes));
  w.Key("retained_bytes").UInt(V(cache_retained_bytes));
  w.Key("warmstart_loaded").UInt(V(warmstart_loaded));
  w.Key("warmstart_hits").UInt(V(warmstart_hits));
  w.Key("warmstart_rejected").UInt(V(warmstart_rejected));
  w.Key("requests_shed").UInt(V(requests_shed));
  w.EndObject();

  w.Key("countermodels").BeginObject();
  w.Key("count").UInt(V(countermodel_count));
  w.Key("nodes_total").UInt(V(countermodel_nodes_total));
  w.Key("nodes_max").UInt(V(countermodel_nodes_max));
  w.EndObject();

  w.Key("resource_governance").BeginObject();
  w.Key("guards_total").UInt(V(guards_total));
  w.Key("budget_exhausted").BeginObject();
  w.Key("deadline").UInt(V(budget_deadline));
  w.Key("steps").UInt(V(budget_steps));
  w.Key("memory").UInt(V(budget_memory));
  w.Key("cancelled").UInt(V(budget_cancelled));
  w.EndObject();
  w.Key("pairs_preempted").UInt(V(pairs_preempted));
  // spend_hist buckets: [0, 1-9, 10-99, ..., >= 10^6] guard steps.
  w.Key("phase_spend_hist").BeginObject();
  for (std::size_t p = 0; p < kGuardPhaseCount; ++p) {
    w.Key(GuardPhaseName(static_cast<GuardPhase>(p))).BeginArray();
    for (std::size_t b = 0; b < kSpendBuckets; ++b) {
      w.UInt(V(spend_hist[p][b]));
    }
    w.EndArray();
  }
  w.EndObject();
  w.EndObject();

  w.Key("throughput").BeginObject();
  double wall_s = Ms(batch_wall_ns) / 1e3;
  w.Key("pairs_per_sec")
      .Double(wall_s > 0 ? static_cast<double>(V(pairs_total)) / wall_s : 0.0);
  w.EndObject();

  w.EndObject();
  return w.Take();
}

}  // namespace gqc
