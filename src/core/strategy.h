#ifndef GQC_CORE_STRATEGY_H_
#define GQC_CORE_STRATEGY_H_

#include <string_view>
#include <vector>

#include "src/core/containment.h"
#include "src/core/strategy_id.h"
#include "src/util/result.h"

namespace gqc {

/// Everything one strategy run may read. All pointers are non-owning; `p`,
/// `q`, `schema`, `options` are required, the rest are optional. The context
/// is shared read-only by every strategy racing one disjunct, so a Run
/// implementation must not mutate anything reachable from it except through
/// the explicitly thread-safe sinks (`stats`, `caches`).
struct StrategyContext {
  const Crpq* p = nullptr;            // the disjunct under decision
  const Ucrpq* q = nullptr;           // the right-hand query
  const NormalTBox* schema = nullptr; // normalized TBox
  /// Precomputed Tp(T, Q̂) closure, or null. When null and `vocab_shared` is
  /// false, the reduction strategy may compute one (interning fresh names
  /// into `vocab`).
  const TpClosure* closure = nullptr;
  Vocabulary* vocab = nullptr;
  /// Per-checker memo (normalized TBoxes, closures); may be null.
  ContainmentCaches* caches = nullptr;
  const ContainmentOptions* options = nullptr;
  PipelineStats* stats = nullptr;  // may be null
  /// True when `vocab` is shared read-only across concurrent decisions (the
  /// engine's disjunct parallelism and every portfolio race). Strategies
  /// must not intern symbols then; the closure-less reduction is
  /// inapplicable under a shared vocabulary.
  bool vocab_shared = false;
};

/// One pluggable decision procedure for a single connected disjunct p of P
/// against (T, Q). The four registered strategies re-express the stages of
/// the former hardwired pipeline (src/core/containment.cc):
///
///   screen     cheap exact screens (trivial match-all + classical)
///   direct     direct bounded countermodel search against the full TBox
///   witness    refutation-only deep witness search (portfolio extra)
///   reduction  full §3 reduction -> finite entailment
///
/// Contract for Run():
///  - a definite verdict (kContained / kNotContained) must be *exact* — the
///    portfolio runner publishes whichever definite verdict lands first and
///    cancels the rest, so two sound strategies can never disagree;
///  - kUnknown means "inconclusive, ask someone else" (attr.note may say
///    why); the runner composes the final Unknown attribution itself;
///  - every potentially-exponential loop must poll `guard` (Charge/Recheck)
///    and unwind to kUnknown when it trips — this is how race cancellation
///    reaches a losing strategy (enforced by the strategy-run-guard lint
///    rule, tools/lint/gqc_lint.py);
///  - implementations are stateless singletons: Run must be const and
///    re-entrant (one instance races itself across disjuncts and pairs).
class Strategy {
 public:
  /// Relative cost class, cheapest first; SequentialOrder() runs cheaper
  /// strategies before more expensive ones.
  enum class Cost { kCheap = 0, kModerate, kExpensive };

  virtual ~Strategy() = default;

  virtual StrategyId id() const = 0;
  const char* name() const { return StrategyName(id()); }
  virtual Cost cost() const = 0;

  /// True iff Run could possibly produce a definite verdict for this
  /// context (fragment checks, option gates). Must be cheap.
  virtual bool Applicable(const StrategyContext& ctx) const = 0;

  /// Decides the disjunct, or returns kUnknown. `guard` may be null
  /// (unlimited); when present it is private to this run.
  [[nodiscard]] virtual ContainmentResult Run(const StrategyContext& ctx,
                                              ResourceGuard* guard) const = 0;
};

/// The registered strategy singletons, in StrategyId order.
const std::vector<const Strategy*>& AllStrategies();

/// The sequential priority order: screen, direct, reduction — exactly the
/// former hardwired pipeline, so running these in order with one shared
/// guard reproduces the pre-strategy verdicts bit for bit. The witness
/// strategy is excluded (it re-searches the direct strategy's space more
/// deeply; only a concurrent race can win anything from it).
const std::vector<const Strategy*>& SequentialOrder();

/// Everything worth racing: screen, direct, witness, reduction.
const std::vector<const Strategy*>& DefaultPortfolio();

/// Looks up a strategy by its StrategyName; null if unknown.
const Strategy* FindStrategy(std::string_view name);

/// Parses a comma-separated strategy list ("screen,direct,reduction");
/// errors on unknown or duplicate names or an empty list.
Result<std::vector<const Strategy*>> ParseStrategyList(std::string_view csv);

/// Trip details for a kUnknown verdict: the guard's reason/phase when it
/// tripped, "caps" when the search gave up on a structural cap instead.
/// Null guard (or a live one) also means "caps".
UnknownInfo UnknownFromGuard(const ResourceGuard* guard);

/// Records countermodel-size stats for a kNotContained result (no-op
/// otherwise or on a null sink). Called by the runners when a refutation
/// becomes the disjunct verdict.
void RecordRefutation(PipelineStats* stats, const ContainmentResult& r);

}  // namespace gqc

#endif  // GQC_CORE_STRATEGY_H_
