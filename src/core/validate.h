#ifndef GQC_CORE_VALIDATE_H_
#define GQC_CORE_VALIDATE_H_

#include <string_view>
#include <vector>

#include "src/dl/tbox.h"
#include "src/graph/graph.h"
#include "src/query/ucrpq.h"
#include "src/util/invariant.h"

namespace gqc {

/// Cache-key completeness/encoding audit (src/core/caches.cc and the engine's
/// context maps): the composite key must decode back to exactly the parts it
/// was built from. A key that fails this could alias two distinct cache
/// inputs — and a cache collision in the closure cache silently corrupts
/// verdicts instead of crashing.
AuditResult ValidateCacheKey(std::string_view key,
                             const std::vector<std::string_view>& parts);

/// Full countermodel audit before a kNotContained verdict escapes: the
/// witness is a well-formed graph with G ⊨ T, G ⊨ p, G ⊭ Q. This re-checks
/// what the search already verified, by independent code paths (model check +
/// evaluator), so a corrupted witness cannot ride out on a stale claim.
AuditResult ValidateCountermodel(const Graph& g, const Crpq& p, const Ucrpq& q,
                                 const NormalTBox& tbox);

/// Same for whole-UCRPQ countermodels (G ⊨ P via some disjunct).
AuditResult ValidateCountermodel(const Graph& g, const Ucrpq& p,
                                 const Ucrpq& q, const NormalTBox& tbox);

}  // namespace gqc

#endif  // GQC_CORE_VALIDATE_H_
