#include "src/core/result.h"

namespace gqc {

const char* ContainmentMethodName(ContainmentMethod m) {
  switch (m) {
    case ContainmentMethod::kClassical:
      return "classical";
    case ContainmentMethod::kDirectSearch:
      return "direct-search";
    case ContainmentMethod::kSparse:
      return "sparse";
    case ContainmentMethod::kReduction:
      return "reduction";
    case ContainmentMethod::kTrivial:
      return "trivial";
  }
  return "?";
}

}  // namespace gqc
