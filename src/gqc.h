#ifndef GQC_GQC_H_
#define GQC_GQC_H_

/// Umbrella header: the stable public surface of the gqc library.
///
/// Everything an application needs to parse schemas and queries, decide
/// containment modulo schema (one pair or a parallel batch), check finite
/// entailment, evaluate queries over graphs, and print results:
///
///   Vocabulary                       symbol interning (graph/vocabulary.h)
///   ParseTBox / ParseSchema          schema text -> TBox
///   ParseUcrpq / ParseCrpq           query text -> UC2RPQ
///   ContainmentChecker               P ⊑_T Q for one vocabulary
///   Strategy / RunPortfolio          pluggable deciders and the racing
///                                    portfolio runner (strategy.h,
///                                    portfolio.h, factboard.h)
///   Engine / BatchItem / ...         parallel batch service with shared
///                                    caches and pipeline metrics
///   FiniteEntails                    G, T ⊨fin Q
///   QueryContainment                 schema-free containment
///   Matches                          query evaluation on a graph
///   ParseGraph / WriteGraph / ToDot  graph I/O
///   PgSchema                         programmatic PG-Schema construction
///   ComputeTpClosure                 Tp(T, Q̂) realizable-type sets (§3)
///   GenerateWorkload                 deterministic benchmark instances
///   Result<T>                        error handling used throughout
///
/// Internal layers (entailment engines, automata, frames, the §4 coil and
/// span machinery) have headers under src/ but are not part of this surface
/// and may change freely.

#include "src/core/containment.h"
#include "src/core/factboard.h"
#include "src/core/portfolio.h"
#include "src/core/strategy.h"
#include "src/dl/concept_parser.h"
#include "src/dl/normalize.h"
#include "src/engine/engine.h"
#include "src/entailment/entailment.h"
#include "src/graph/dot.h"
#include "src/graph/io.h"
#include "src/query/eval.h"
#include "src/query/parser.h"
#include "src/query/query_containment.h"
#include "src/schema/pg_schema.h"
#include "src/schema/schema_parser.h"
#include "src/schema/workload.h"
#include "src/util/json.h"
#include "src/util/result.h"

#endif  // GQC_GQC_H_
