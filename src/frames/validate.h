#ifndef GQC_FRAMES_VALIDATE_H_
#define GQC_FRAMES_VALIDATE_H_

#include "src/frames/abstract_frame.h"
#include "src/frames/concrete_frame.h"
#include "src/util/invariant.h"

namespace gqc {

/// Structural well-formedness of a concrete frame (§4): every component a
/// valid pointed graph, every frame edge between live components with a live
/// source node, no self-loop frame edges, and distinct edges out of the same
/// (component, source node) pair reaching distinct targets.
AuditResult ValidateConcreteFrame(const ConcreteFrame& frame);

/// Structural well-formedness of an abstract frame: consistent component
/// types (distinguished and allowed), edges between live components.
AuditResult ValidateAbstractFrame(const AbstractFrame& frame);

/// FrameCoil(F, n) output against its base frame (Lemma 4.3): a well-formed
/// frame that is locally isomorphic to F (equal local signatures — the
/// multiset of component/connector fingerprints).
AuditResult ValidateFrameCoil(const ConcreteFrame& base,
                              const ConcreteFrame& coil);

}  // namespace gqc

#endif  // GQC_FRAMES_VALIDATE_H_
