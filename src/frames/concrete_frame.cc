#include "src/frames/concrete_frame.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/frames/validate.h"
#include "src/graph/coil.h"
#include "src/graph/homomorphism.h"
#include "src/query/eval.h"
#include "src/util/invariant.h"

namespace gqc {

uint32_t ConcreteFrame::AddComponent(PointedGraph component) {
  components_.push_back(std::move(component));
  return static_cast<uint32_t>(components_.size() - 1);
}

void ConcreteFrame::AddEdge(uint32_t from, NodeId source_node, Role role,
                            uint32_t to) {
  GQC_DCHECK(from != to && "frames have no self-loops");
#ifdef GQC_AUDIT_ENABLED
  // lint: bounded(audit-only duplicate check, linear in the frame edges)
  for (const FrameEdge& e : edges_) {
    GQC_DCHECK(!(e.from == from && e.source_node == source_node &&
                 e.to == to) &&
               "edges with the same source node must have distinct targets");
  }
#endif
  edges_.push_back({from, source_node, role, to});
}

Graph ConcreteFrame::Assemble(std::vector<std::vector<NodeId>>* node_map) const {
  GQC_AUDIT(ValidateConcreteFrame(*this));
  Graph g;
  std::vector<std::vector<NodeId>> map(components_.size());
  // lint: bounded(one disjoint union per component)
  for (std::size_t f = 0; f < components_.size(); ++f) {
    NodeId offset = g.DisjointUnion(components_[f].graph);
    map[f].resize(components_[f].graph.NodeCount());
    // lint: bounded(linear in the component nodes)
    for (NodeId v = 0; v < components_[f].graph.NodeCount(); ++v) {
      map[f][v] = offset + v;
    }
  }
  // lint: bounded(linear in the frame edges)
  for (const FrameEdge& e : edges_) {
    NodeId src = map[e.from][e.source_node];
    NodeId dst = map[e.to][components_[e.to].point];
    g.AddEdge(src, e.role, dst);
  }
  if (node_map != nullptr) *node_map = std::move(map);
  return g;
}

PointedGraph ConcreteFrame::Connector(uint32_t f, NodeId v) const {
  PointedGraph out;
  NodeId center = out.graph.AddNode(components_[f].graph.Labels(v));
  out.point = center;
  // lint: bounded(linear in the frame edges)
  for (const FrameEdge& e : edges_) {
    if (e.from != f || e.source_node != v) continue;
    const PointedGraph& target = components_[e.to];
    NodeId w = out.graph.AddNode(target.graph.Labels(target.point));
    out.graph.AddEdge(center, e.role, w);
  }
  return out;
}

std::vector<PointedGraph> ConcreteFrame::AllConnectors() const {
  std::vector<PointedGraph> out;
  // lint: bounded(one connector per component node)
  for (uint32_t f = 0; f < components_.size(); ++f) {
    // lint: bounded(linear in the component nodes)
    for (NodeId v = 0; v < components_[f].graph.NodeCount(); ++v) {
      out.push_back(Connector(f, v));
    }
  }
  return out;
}

bool ConcreteFrame::RealizesType(const Type& t) const {
  return std::any_of(components_.begin(), components_.end(), [&](const PointedGraph& c) {
    return c.graph.HasType(c.point, t);
  });
}

bool ConcreteFrame::WeaklyRefutes(const Ucrpq& q_components,
                                  const Ucrpq& q_connectors) const {
  // lint: bounded(one query evaluation per component)
  for (const PointedGraph& c : components_) {
    if (Matches(c.graph, q_components)) return false;
  }
  // lint: bounded(one query evaluation per connector)
  for (const PointedGraph& c : AllConnectors()) {
    if (Matches(c.graph, q_connectors)) return false;
  }
  return true;
}

bool ConcreteFrame::ActuallyRefutes(const Ucrpq& q) const {
  return !Matches(Assemble(), q);
}

Graph ConcreteFrame::ShapeGraph(std::vector<std::size_t>* edge_of_role) const {
  Graph g;
  // lint: bounded(one node per component)
  for (std::size_t f = 0; f < components_.size(); ++f) g.AddNode();
  std::vector<std::size_t> roles;
  // lint: bounded(linear in the frame edges)
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    // Synthetic role id = frame edge index: unique per edge.
    g.AddEdge(edges_[i].from, static_cast<uint32_t>(i), edges_[i].to);
    roles.push_back(i);
  }
  if (edge_of_role != nullptr) *edge_of_role = std::move(roles);
  return g;
}

std::string ConcreteFrame::LocalSignature() const {
  // §4: locally isomorphic frames have equal *sets* of isomorphism types of
  // components and connectors (multiplicities do not matter).
  std::set<std::string> prints;
  // lint: bounded(one fingerprint per component)
  for (const PointedGraph& c : components_) {
    prints.insert("C:" + PointedFingerprint(c));
  }
  // lint: bounded(one fingerprint per connector)
  for (const PointedGraph& c : AllConnectors()) {
    prints.insert("K:" + PointedFingerprint(c));
  }
  std::string out;
  // lint: bounded(linear in the fingerprint set)
  for (const auto& p : prints) out += p + "\n";
  return out;
}

Result<ConcreteFrame> FrameCoil(const ConcreteFrame& frame, std::size_t n,
                                ResourceGuard* guard) {
  Graph shape = frame.ShapeGraph();
  Result<CoilResult> coil_or = Coil(shape, n, guard);
  if (!coil_or.ok()) return Result<ConcreteFrame>::Error(coil_or.error());
  const CoilResult& coil = coil_or.value();

  ConcreteFrame out;
  // Each coil node becomes a fresh copy of the base component.
  // lint: bounded(one component copy per coil node)
  for (NodeId u = 0; u < coil.graph.NodeCount(); ++u) {
    out.AddComponent(frame.Component(static_cast<uint32_t>(coil.base_node[u])));
  }
  // Each coil edge carries the synthetic role id = original frame-edge index.
  coil.graph.ForEachEdge([&](const Edge& e) {
    const ConcreteFrame::FrameEdge& base = frame.Edges()[e.role];
    out.AddEdge(e.from, base.source_node, base.role, e.to);
  });
  // Lemma 4.3: the frame coil is well-formed and locally isomorphic to its
  // base frame.
  GQC_AUDIT(ValidateFrameCoil(frame, out));
  return out;
}

}  // namespace gqc
