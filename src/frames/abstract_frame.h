#ifndef GQC_FRAMES_ABSTRACT_FRAME_H_
#define GQC_FRAMES_ABSTRACT_FRAME_H_

#include <cstdint>
#include <vector>

#include "src/dl/tbox.h"
#include "src/frames/concrete_frame.h"

namespace gqc {

/// An abstract component (§4): a symbolic specification (τ_f, T_f, Θ_f, Q_f)
/// of the pointed graphs a frame node may hold — distinguished type to
/// realize, TBox to satisfy, maximal types to respect, query to avoid.
struct AbstractComponent {
  Type distinguished;        // τ_f
  NormalTBox tbox;           // T_f
  std::vector<Type> allowed; // Θ_f
  Ucrpq avoid;               // Q_f
};

/// An abstract frame: like a concrete frame but with abstract components;
/// edges are labelled (type, role) and stand for edges out of every node of
/// that type. The engines realize abstract frames implicitly through their
/// fixpoints; this explicit form exists for tests and documentation of the
/// §4 notions.
class AbstractFrame {
 public:
  uint32_t AddComponent(AbstractComponent c);
  void AddEdge(uint32_t from, Type source_type, Role role, uint32_t to);

  std::size_t ComponentCount() const { return components_.size(); }
  const AbstractComponent& Component(uint32_t f) const { return components_[f]; }

  struct FrameEdge {
    uint32_t from;
    Type source_type;
    Role role;
    uint32_t to;
  };
  const std::vector<FrameEdge>& Edges() const { return edges_; }

  /// True if some component's distinguished type contains `t`.
  bool RealizesType(const Type& t) const;

  /// Checks that `witness` is a witnessing graph for component `f`
  /// (§4: respects Θ_f, distinguished node of type τ_f, satisfies T_f,
  /// avoids Q_f).
  bool IsWitness(uint32_t f, const PointedGraph& witness) const;

  /// Builds the concrete frame obtained by substituting `witnesses[f]` for
  /// each component and expanding each abstract edge over all nodes of its
  /// source type (§4, "represents"). Witnesses are not re-validated here.
  ConcreteFrame Represent(const std::vector<PointedGraph>& witnesses) const;

 private:
  std::vector<AbstractComponent> components_;
  std::vector<FrameEdge> edges_;
};

}  // namespace gqc

#endif  // GQC_FRAMES_ABSTRACT_FRAME_H_
