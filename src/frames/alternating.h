#ifndef GQC_FRAMES_ALTERNATING_H_
#define GQC_FRAMES_ALTERNATING_H_

#include <map>

#include "src/frames/concrete_frame.h"

namespace gqc {

/// §5's alternating-frame conditions, with `c_forward` the marker concept
/// (C→; its absence is C←):
///  - every component is all-forward or all-backward;
///  - every connector is directed: all edges run from backward nodes to
///    forward nodes, and the non-distinguished direction occurs only at the
///    distinguished node.
bool IsAlternating(const ConcreteFrame& frame, uint32_t c_forward);

/// §6's role-alternating conditions, with `markers` mapping each role name
/// id r in Σ_T to its marker concept C_r and `role_order` giving the cyclic
/// enumeration r_1 .. r_m:
///  - every component is uniformly marked with exactly one C_r (its banned
///    role) and none of its edges use that role;
///  - every connector is role-directed: the distinguished node is an
///    r_i-node, the remaining nodes are r_{i+1}-nodes, and all edges are
///    r_i-edges out of the distinguished node.
bool IsRoleAlternating(const ConcreteFrame& frame,
                       const std::map<uint32_t, uint32_t>& markers,
                       const std::vector<uint32_t>& role_order);

/// The §4/§6 span of a frame path machinery is analytic; what benchmarks and
/// tests need is the observable consequence: in an alternating frame every
/// component has only incoming or only outgoing frame edges. Checked here.
bool ComponentsAreDirectional(const ConcreteFrame& frame, uint32_t c_forward);

}  // namespace gqc

#endif  // GQC_FRAMES_ALTERNATING_H_
