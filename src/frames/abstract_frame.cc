#include "src/frames/abstract_frame.h"

#include <algorithm>

#include "src/dl/model_check.h"
#include "src/query/eval.h"

namespace gqc {

uint32_t AbstractFrame::AddComponent(AbstractComponent c) {
  components_.push_back(std::move(c));
  return static_cast<uint32_t>(components_.size() - 1);
}

void AbstractFrame::AddEdge(uint32_t from, Type source_type, Role role, uint32_t to) {
  edges_.push_back({from, std::move(source_type), role, to});
}

bool AbstractFrame::RealizesType(const Type& t) const {
  return std::any_of(components_.begin(), components_.end(),
                     [&](const AbstractComponent& c) {
                       return c.distinguished.Contains(t);
                     });
}

bool AbstractFrame::IsWitness(uint32_t f, const PointedGraph& witness) const {
  const AbstractComponent& c = components_[f];
  if (!witness.graph.HasType(witness.point, c.distinguished)) return false;
  if (!Satisfies(witness.graph, c.tbox)) return false;
  if (Matches(witness.graph, c.avoid)) return false;
  if (!c.allowed.empty()) {
    // lint: bounded(linear in the witness nodes)
    for (NodeId v = 0; v < witness.graph.NodeCount(); ++v) {
      bool ok = std::any_of(c.allowed.begin(), c.allowed.end(), [&](const Type& t) {
        return witness.graph.HasType(v, t);
      });
      if (!ok) return false;
    }
  }
  return true;
}

ConcreteFrame AbstractFrame::Represent(const std::vector<PointedGraph>& witnesses) const {
  ConcreteFrame out;
  // lint: bounded(one component per frame slot)
  for (std::size_t f = 0; f < components_.size(); ++f) {
    out.AddComponent(witnesses[f]);
  }
  // lint: bounded(linear in the frame edges)
  for (const FrameEdge& e : edges_) {
    const PointedGraph& w = witnesses[e.from];
    // lint: bounded(linear in the witness nodes)
    for (NodeId v = 0; v < w.graph.NodeCount(); ++v) {
      if (w.graph.HasType(v, e.source_type)) {
        out.AddEdge(e.from, v, e.role, e.to);
      }
    }
  }
  return out;
}

}  // namespace gqc
