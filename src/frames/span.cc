#include "src/frames/span.h"

#include <algorithm>
#include <deque>
#include <set>
#include <tuple>

namespace gqc {

namespace {

/// A position in the represented graph G_F: (frame node, component node).
struct Position {
  uint32_t f;
  NodeId v;
  auto operator<=>(const Position&) const = default;
};

/// One traversal step available to an R*-path, with the frame-edge balance
/// delta it incurs (0 for in-component steps, ±1 for frame edges).
struct Move {
  Position to;
  int delta;
};

/// Builds the R-step adjacency of G_F at the frame level of detail.
std::vector<std::vector<Move>> BuildMoves(const ConcreteFrame& frame,
                                          const std::vector<Role>& roles,
                                          std::vector<Position>* positions) {
  // Index positions densely.
  std::vector<std::size_t> offset(frame.ComponentCount() + 1, 0);
  // lint: bounded(one offset per component)
  for (uint32_t f = 0; f < frame.ComponentCount(); ++f) {
    offset[f + 1] = offset[f] + frame.Component(f).graph.NodeCount();
  }
  positions->clear();
  // lint: bounded(linear in the frame positions)
  for (uint32_t f = 0; f < frame.ComponentCount(); ++f) {
    // lint: bounded(linear in the component nodes)
    for (NodeId v = 0; v < frame.Component(f).graph.NodeCount(); ++v) {
      positions->push_back({f, v});
    }
  }
  auto index = [&](Position p) { return offset[p.f] + p.v; };

  std::vector<std::vector<Move>> moves(positions->size());
  // In-component steps.
  // lint: bounded(linear in the frame positions)
  for (uint32_t f = 0; f < frame.ComponentCount(); ++f) {
    const Graph& g = frame.Component(f).graph;
    // lint: bounded(linear in the component nodes)
    for (NodeId v = 0; v < g.NodeCount(); ++v) {
      // lint: bounded(linear in the role alphabet)
      for (Role r : roles) {
        // lint: bounded(linear in the successor list)
        for (NodeId w : g.Successors(v, r)) {
          moves[index({f, v})].push_back({{f, w}, 0});
        }
      }
    }
  }
  // Frame-edge steps: the assembled edge connects (e.from, e.source_node)
  // with (e.to, point of e.to); a step across it moves between the two
  // components, with balance +1 when moving from e.from to e.to.
  // lint: bounded(linear in the frame edges)
  for (const auto& e : frame.Edges()) {
    Position src{e.from, e.source_node};
    Position dst{e.to, frame.Component(e.to).point};
    // The concrete G_F edge direction: src --e.role--> dst for forward
    // roles, dst --name--> src for inverse roles.
    Position tail = e.role.is_inverse() ? dst : src;
    Position head = e.role.is_inverse() ? src : dst;
    uint32_t name = e.role.name_id();
    // lint: bounded(linear in the role alphabet)
    for (Role r : roles) {
      if (r.name_id() != name) continue;
      // Traversing with role r: forward r goes tail -> head, inverse r goes
      // head -> tail.
      Position from = r.is_inverse() ? head : tail;
      Position to = r.is_inverse() ? tail : head;
      int delta = (from.f == e.from) ? +1 : -1;
      moves[index(from)].push_back({to, delta});
    }
  }
  return moves;
}

}  // namespace

bool StarAtomSpanExceeds(const ConcreteFrame& frame, const std::vector<Role>& roles,
                         std::size_t k, ResourceGuard* guard) {
  std::vector<Position> positions;
  auto moves = BuildMoves(frame, roles, &positions);
  std::vector<std::size_t> offset(frame.ComponentCount() + 1, 0);
  // lint: bounded(one offset per component)
  for (uint32_t f = 0; f < frame.ComponentCount(); ++f) {
    offset[f + 1] = offset[f] + frame.Component(f).graph.NodeCount();
  }
  auto index = [&](Position p) { return offset[p.f] + p.v; };

  // State: (position, balance - min_balance, max_balance - balance); the
  // span so far is (bal - min) + (max - bal). Every prefix of a witnessing
  // path is a witnessing path (R* is prefix-closed), so the search may stop
  // as soon as any state exceeds k.
  struct State {
    std::size_t pos;
    int below;  // bal - min  >= 0
    int above;  // max - bal  >= 0
    auto operator<=>(const State&) const = default;
  };
  std::set<State> seen;
  std::deque<State> queue;
  // lint: bounded(one seed state per position)
  for (std::size_t p = 0; p < positions.size(); ++p) {
    State s{p, 0, 0};
    seen.insert(s);
    queue.push_back(s);
  }
  while (!queue.empty()) {
    // A guard trip returns true — "may exceed" is the conservative answer
    // (callers widen windows or refuse, never shrink them).
    if (guard != nullptr && guard->Charge(GuardPhase::kFrames)) return true;
    State s = queue.front();
    queue.pop_front();
    // lint: bounded(bounded by the move fan-out of one state)
    for (const Move& m : moves[s.pos]) {
      int below = s.below + m.delta;
      int above = s.above - m.delta;
      if (below < 0) below = 0;  // new minimum
      if (above < 0) above = 0;  // new maximum
      if (static_cast<std::size_t>(below + above) > k) return true;
      State next{index(m.to), below, above};
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return false;
}

std::size_t StarAtomSpan(const ConcreteFrame& frame, const std::vector<Role>& roles,
                         std::size_t cap, ResourceGuard* guard) {
  // lint: bounded(k is capped; each span check polls the guard internally)
  for (std::size_t k = 0; k <= cap; ++k) {
    if (!StarAtomSpanExceeds(frame, roles, k, guard)) return k;
  }
  return cap + 1;
}

}  // namespace gqc
