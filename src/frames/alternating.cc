#include "src/frames/alternating.h"

#include <algorithm>

namespace gqc {

namespace {

bool AllNodesMarked(const Graph& g, uint32_t concept_id, bool present) {
  // lint: bounded(linear in the graph nodes)
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    if (g.HasLabel(v, concept_id) != present) return false;
  }
  return true;
}

}  // namespace

bool IsAlternating(const ConcreteFrame& frame, uint32_t c_forward) {
  // Components: uniformly forward or uniformly backward.
  std::vector<bool> forward(frame.ComponentCount());
  // lint: bounded(one check per frame component)
  for (uint32_t f = 0; f < frame.ComponentCount(); ++f) {
    const Graph& g = frame.Component(f).graph;
    if (AllNodesMarked(g, c_forward, true)) {
      forward[f] = true;
    } else if (AllNodesMarked(g, c_forward, false)) {
      forward[f] = false;
    } else {
      return false;
    }
  }
  // Connectors directed: frame edges run from backward nodes to forward
  // nodes once edge direction is taken into account.
  // lint: bounded(linear in the frame edges)
  for (const auto& e : frame.Edges()) {
    bool src_forward = forward[e.from];
    bool dst_forward = forward[e.to];
    // The actual edge in G_F runs source -> target for forward roles and
    // target -> source for inverse roles.
    bool tail_forward = e.role.is_inverse() ? dst_forward : src_forward;
    bool head_forward = e.role.is_inverse() ? src_forward : dst_forward;
    if (tail_forward || !head_forward) return false;  // must be backward->forward
  }
  return true;
}

bool ComponentsAreDirectional(const ConcreteFrame& frame, uint32_t c_forward) {
  // In a graph represented by an alternating frame, forward components have
  // only incoming frame edges and backward components only outgoing ones.
  // lint: bounded(linear in the frame edges)
  for (const auto& e : frame.Edges()) {
    const Graph& src = frame.Component(e.from).graph;
    bool src_forward = src.HasLabel(e.source_node, c_forward);
    bool actual_outgoing = !e.role.is_inverse();
    if (src_forward && actual_outgoing) return false;
    if (!src_forward && !actual_outgoing) return false;
  }
  return true;
}

bool IsRoleAlternating(const ConcreteFrame& frame,
                       const std::map<uint32_t, uint32_t>& markers,
                       const std::vector<uint32_t>& role_order) {
  auto next_role = [&](uint32_t r) {
    auto it = std::find(role_order.begin(), role_order.end(), r);
    if (it == role_order.end()) return role_order.front();
    ++it;
    return it == role_order.end() ? role_order.front() : *it;
  };

  std::vector<uint32_t> banned(frame.ComponentCount(), UINT32_MAX);
  // lint: bounded(one check per frame component)
  for (uint32_t f = 0; f < frame.ComponentCount(); ++f) {
    const Graph& g = frame.Component(f).graph;
    // lint: bounded(one check per role marker)
    for (auto [role, marker] : markers) {
      if (AllNodesMarked(g, marker, true)) {
        if (banned[f] != UINT32_MAX) return false;  // two markers
        banned[f] = role;
      }
    }
    if (banned[f] == UINT32_MAX) return false;
    // No in-component edges with the banned role.
    bool clean = true;
    g.ForEachEdge([&](const Edge& e) {
      if (e.role == banned[f]) clean = false;
    });
    if (!clean) return false;
  }
  // lint: bounded(linear in the frame edges)
  for (const auto& e : frame.Edges()) {
    if (e.role.is_inverse()) return false;  // connectors are out-stars
    if (e.role.name_id() != banned[e.from]) return false;
    if (banned[e.to] != next_role(banned[e.from])) return false;
  }
  return true;
}

}  // namespace gqc
