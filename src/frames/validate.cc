#include "src/frames/validate.h"

#include <set>
#include <string>
#include <tuple>

#include "src/graph/validate.h"

namespace gqc {

AuditResult ValidateConcreteFrame(const ConcreteFrame& frame) {
  const std::size_t n = frame.ComponentCount();
  // lint: bounded(one check per component)
  for (uint32_t f = 0; f < n; ++f) {
    if (auto v = ValidatePointedGraph(frame.Component(f))) {
      return AuditViolation("component " + std::to_string(f) + ": " + *v);
    }
  }
  // Distinct edges out of the same (component, source node) pair must have
  // distinct targets (§4), so (from, source node, to) is unique.
  std::set<std::tuple<uint32_t, NodeId, uint32_t>> seen;
  // lint: bounded(linear in the frame edges)
  for (std::size_t i = 0; i < frame.Edges().size(); ++i) {
    const ConcreteFrame::FrameEdge& e = frame.Edges()[i];
    if (e.from >= n || e.to >= n) {
      return AuditViolation("frame edge #" + std::to_string(i) +
                            " references a component out of bounds (" +
                            std::to_string(e.from) + " -> " +
                            std::to_string(e.to) + ", component count " +
                            std::to_string(n) + ")");
    }
    if (e.from == e.to) {
      return AuditViolation("frame edge #" + std::to_string(i) +
                            " is a self-loop on component " +
                            std::to_string(e.from) +
                            " (§4 frames are self-loop-free)");
    }
    if (e.source_node >= frame.Component(e.from).graph.NodeCount()) {
      return AuditViolation("frame edge #" + std::to_string(i) +
                            " sources node " + std::to_string(e.source_node) +
                            " outside component " + std::to_string(e.from));
    }
    if (!seen.insert({e.from, e.source_node, e.to}).second) {
      return AuditViolation("frame edge #" + std::to_string(i) +
                            " reaches the same target as an earlier edge out "
                            "of (" +
                            std::to_string(e.from) + ", " +
                            std::to_string(e.source_node) +
                            ") — targets must be distinct (§4)");
    }
  }
  return std::nullopt;
}

AuditResult ValidateAbstractFrame(const AbstractFrame& frame) {
  const std::size_t n = frame.ComponentCount();
  // lint: bounded(one check per component)
  for (uint32_t f = 0; f < n; ++f) {
    const AbstractComponent& c = frame.Component(f);
    if (auto v = ValidateType(c.distinguished)) {
      return AuditViolation("abstract component " + std::to_string(f) +
                            " distinguished type: " + *v);
    }
    // lint: bounded(linear in the allowed types)
    for (std::size_t t = 0; t < c.allowed.size(); ++t) {
      if (auto v = ValidateType(c.allowed[t])) {
        return AuditViolation("abstract component " + std::to_string(f) +
                              " allowed type #" + std::to_string(t) + ": " +
                              *v);
      }
    }
  }
  // lint: bounded(linear in the frame edges)
  for (std::size_t i = 0; i < frame.Edges().size(); ++i) {
    const AbstractFrame::FrameEdge& e = frame.Edges()[i];
    if (e.from >= n || e.to >= n) {
      return AuditViolation("abstract frame edge #" + std::to_string(i) +
                            " references a component out of bounds");
    }
    if (auto v = ValidateType(e.source_type)) {
      return AuditViolation("abstract frame edge #" + std::to_string(i) +
                            " source type: " + *v);
    }
  }
  return std::nullopt;
}

AuditResult ValidateFrameCoil(const ConcreteFrame& base,
                              const ConcreteFrame& coil) {
  if (auto v = ValidateConcreteFrame(coil)) return v;
  if (base.ComponentCount() == 0) {
    return coil.ComponentCount() == 0
               ? AuditResult(std::nullopt)
               : AuditViolation("frame coil of an empty frame has components");
  }
  if (coil.LocalSignature() != base.LocalSignature()) {
    return AuditViolation(
        "frame coil is not locally isomorphic to its base frame (local "
        "signatures differ — Lemma 4.3 violated)");
  }
  return std::nullopt;
}

}  // namespace gqc
