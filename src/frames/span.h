#ifndef GQC_FRAMES_SPAN_H_
#define GQC_FRAMES_SPAN_H_

#include <vector>

#include "src/frames/concrete_frame.h"

namespace gqc {

/// The span machinery of §4/§6: an undirected path in G_F induces a path in
/// the frame F; its *span* is the maximum absolute difference between the
/// numbers of frame edges traversed forward and backward over any infix.
/// The span of a 2RPQ in F is the maximum span over witnessing paths
/// (Lemma 6.4 bounds it by |Σ_T| for simple non-reachability atoms in
/// role-alternating frames; §5 bounds it by 1 in alternating frames).

/// Decides whether some path witnessing the simple star atom R* (with
/// R = `roles`, possibly containing inverse roles) in G_F has span
/// exceeding `k`. Exact: explores (position, balance-window) states, whose
/// count is bounded because windows wider than k+1 terminate the search.
/// An optional `guard` (billed under kFrames) bounds the exploration; a trip
/// returns true — the conservative "may exceed" answer.
bool StarAtomSpanExceeds(const ConcreteFrame& frame, const std::vector<Role>& roles,
                         std::size_t k, ResourceGuard* guard = nullptr);

/// The exact maximal span of R*-witnessing paths in the frame, capped at
/// `cap` (returns cap + 1 if exceeded, and also on a guard trip — the
/// conservative over-estimate).
std::size_t StarAtomSpan(const ConcreteFrame& frame, const std::vector<Role>& roles,
                         std::size_t cap, ResourceGuard* guard = nullptr);

}  // namespace gqc

#endif  // GQC_FRAMES_SPAN_H_
