#ifndef GQC_FRAMES_CONCRETE_FRAME_H_
#define GQC_FRAMES_CONCRETE_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/query/ucrpq.h"
#include "src/util/guard.h"
#include "src/util/result.h"

namespace gqc {

/// A concrete frame (§4): a finite graph without self-loops whose nodes are
/// labelled with pointed graphs (components) and whose edges, labelled with
/// (source node, role) pairs, represent edges between components. Distinct
/// edges out of the same source node must have distinct targets.
class ConcreteFrame {
 public:
  /// Adds a component; returns its frame-node id.
  uint32_t AddComponent(PointedGraph component);

  /// Adds a frame edge from `from`'s node `source_node` over `role` to the
  /// distinguished node of `to`'s component. Inverse roles produce an edge
  /// pointing back into the component (a frame edge and the corresponding
  /// edge in the frame may have opposite directions, §4).
  void AddEdge(uint32_t from, NodeId source_node, Role role, uint32_t to);

  std::size_t ComponentCount() const { return components_.size(); }
  const PointedGraph& Component(uint32_t f) const { return components_[f]; }

  struct FrameEdge {
    uint32_t from;
    NodeId source_node;
    Role role;
    uint32_t to;
  };
  const std::vector<FrameEdge>& Edges() const { return edges_; }

  /// The represented graph G_F: the union of all components plus the frame
  /// edges (§4). `node_map` (optional) receives, per frame node, the mapping
  /// from component node ids to G_F node ids.
  Graph Assemble(std::vector<std::vector<NodeId>>* node_map = nullptr) const;

  /// The connector G_{f,v}: node v with its labels, plus one node per frame
  /// edge out of (f, v) holding the target component's distinguished node
  /// labels, joined by the edge's role (§4).
  PointedGraph Connector(uint32_t f, NodeId v) const;

  /// All connectors with at least the distinguished node (i.e. one per
  /// component node).
  std::vector<PointedGraph> AllConnectors() const;

  /// True if some component's distinguished node has type `t`.
  bool RealizesType(const Type& t) const;

  /// Weak refutation (§4): every component and every connector fails `q`
  /// (callers pass the factorized query Q̂, possibly with reachability atoms
  /// dropped for components vs connectors — hence two parameters).
  bool WeaklyRefutes(const Ucrpq& q_components, const Ucrpq& q_connectors) const;

  /// Actual refutation: the represented graph fails `q`.
  bool ActuallyRefutes(const Ucrpq& q) const;

  /// The frame's own shape as a graph: one node per component, one edge per
  /// frame edge; each frame edge gets a unique synthetic role id so that coil
  /// paths distinguish parallel frame edges. `edge_of_role` maps the
  /// synthetic role id back to the frame-edge index.
  Graph ShapeGraph(std::vector<std::size_t>* edge_of_role = nullptr) const;

  /// Local-isomorphism signature: the multiset of fingerprints of components
  /// and connectors. Locally isomorphic frames (§4) have equal signatures.
  std::string LocalSignature() const;

 private:
  std::vector<PointedGraph> components_;
  std::vector<FrameEdge> edges_;
};

/// The frame coil F_n (Lemma 4.3): Coil(F, n) with every coil node holding a
/// fresh copy of its component, locally isomorphic to F. Window `n` should
/// exceed (span bound) * (largest disjunct size) per Lemma 4.3. Errors when
/// n = 0 (see Coil). An optional `guard` (billed under kFrames) bounds the
/// construction; a trip yields an error, never a partial frame.
Result<ConcreteFrame> FrameCoil(const ConcreteFrame& frame, std::size_t n,
                                ResourceGuard* guard = nullptr);

}  // namespace gqc

#endif  // GQC_FRAMES_CONCRETE_FRAME_H_
