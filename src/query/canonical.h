#ifndef GQC_QUERY_CANONICAL_H_
#define GQC_QUERY_CANONICAL_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/query/ucrpq.h"
#include "src/util/guard.h"

namespace gqc {

/// A canonical expansion of a C2RPQ: one word chosen from each binary atom's
/// language, realized as a concrete graph of fresh path nodes. Expansions
/// satisfy the query by construction (post-checked when complement literals
/// could interfere) and are the seeds for countermodel searches and for the
/// classical containment test.
struct Expansion {
  Graph graph;
  /// query variable -> node realizing it.
  std::vector<NodeId> var_nodes;
};

struct ExpansionOptions {
  /// Maximum word length drawn from each atom's language.
  std::size_t max_word_length = 4;
  /// Global cap on the number of expansions generated.
  std::size_t max_expansions = 512;
  /// Optional resource guard; a trip stops enumeration with exhaustive=false
  /// (never a wrong "exhaustive"). Null = ungoverned.
  ResourceGuard* guard = nullptr;
  GuardPhase guard_phase = GuardPhase::kDirect;
};

struct ExpansionSet {
  std::vector<Expansion> expansions;
  /// True if every word of every atom's language was covered (no star was
  /// truncated and the cap was not hit), making the set exhaustive.
  bool exhaustive = false;
};

/// Enumerates canonical expansions of `q` up to the option bounds.
ExpansionSet CanonicalExpansions(const Crpq& q, const ExpansionOptions& options);

/// Enumerates the words of length <= max_len in the language of the atom
/// (a, s, t), as symbol sequences; sets *complete to false if longer words
/// exist. The empty word is included iff allow_empty or s == t.
std::vector<std::vector<Symbol>> AtomWords(const Semiautomaton& a, uint32_t s,
                                           uint32_t t, bool allow_empty,
                                           std::size_t max_len, bool* complete);

}  // namespace gqc

#endif  // GQC_QUERY_CANONICAL_H_
