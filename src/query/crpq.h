#ifndef GQC_QUERY_CRPQ_H_
#define GQC_QUERY_CRPQ_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/automata/regex.h"
#include "src/automata/semiautomaton.h"
#include "src/graph/vocabulary.h"

namespace gqc {

/// A unary atom A(x) or Ā(x) with A in Γ (§2).
struct UnaryAtom {
  uint32_t var;
  Literal literal;
};

/// A binary 2RPQ atom A_{start,end}(y, z) over a shared semiautomaton (§2).
/// `allow_empty` admits the pair π(y) = π(z) via the empty word; it is true
/// for atoms with start == end (length-0 runs) and for nullable regexes.
/// `regex` is provenance when the atom came from a parsed regular expression
/// (null for atoms synthesized by factorization); `simple` caches the
/// paper's "simple" shape (r or (r1+...+rk)*) when applicable.
struct BinaryAtom {
  uint32_t y;
  uint32_t z;
  uint32_t start;
  uint32_t end;
  bool allow_empty = false;
  RegexPtr regex;
  std::optional<SimpleShape> simple;
};

/// A conjunctive two-way regular path query (C2RPQ, §2): a conjunction of
/// unary atoms and 2RPQ atoms over variables 0 .. var_count-1, interpreted
/// with all variables existentially quantified (Boolean semantics).
class Crpq {
 public:
  Crpq() : automaton_(std::make_shared<Semiautomaton>()) {}
  explicit Crpq(std::shared_ptr<const Semiautomaton> automaton)
      : automaton_(std::move(automaton)) {}

  /// Adds a variable; `name` is for printing only.
  uint32_t AddVar(std::string name = "");
  std::size_t VarCount() const { return var_names_.size(); }
  const std::string& VarName(uint32_t v) const { return var_names_[v]; }

  void AddUnary(uint32_t var, Literal literal) { unary_.push_back({var, literal}); }
  void AddBinary(BinaryAtom atom) { binary_.push_back(std::move(atom)); }

  const std::vector<UnaryAtom>& UnaryAtoms() const { return unary_; }
  const std::vector<BinaryAtom>& BinaryAtoms() const { return binary_; }

  const Semiautomaton& Automaton() const { return *automaton_; }
  const std::shared_ptr<const Semiautomaton>& SharedAutomaton() const {
    return automaton_;
  }
  void SetAutomaton(std::shared_ptr<const Semiautomaton> a) { automaton_ = std::move(a); }

  /// Number of atoms; the paper's |q| size measure for sparsity bounds.
  std::size_t Size() const { return unary_.size() + binary_.size(); }

  /// Variables connected through binary atoms (§3 assumes connected queries).
  bool IsConnected() const;

  /// No inverse roles anywhere in the atoms' languages. Conservative: checks
  /// the symbols reachable in the shared automaton between each atom's states.
  bool IsOneWay() const;
  /// No node-label tests in the atoms' languages (same convention).
  bool IsTestFree() const;
  /// Every binary atom has a simple shape (§2: r or (r1+...+rn)*).
  bool IsSimple() const;

  /// All concept ids mentioned (unary atoms + test symbols + simple shapes).
  std::vector<uint32_t> MentionedConcepts() const;
  /// All role name ids mentioned.
  std::vector<uint32_t> MentionedRoles() const;

  std::string ToString(const Vocabulary& vocab) const;

 private:
  /// Symbols on automaton transitions lying on some path start -> end.
  std::vector<Symbol> AtomSymbols(const BinaryAtom& atom) const;

  std::shared_ptr<const Semiautomaton> automaton_;
  std::vector<std::string> var_names_;
  std::vector<UnaryAtom> unary_;
  std::vector<BinaryAtom> binary_;
};

}  // namespace gqc

#endif  // GQC_QUERY_CRPQ_H_
