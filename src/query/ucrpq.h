#ifndef GQC_QUERY_UCRPQ_H_
#define GQC_QUERY_UCRPQ_H_

#include <string>
#include <vector>

#include "src/query/crpq.h"

namespace gqc {

/// A union of C2RPQs (§2), represented as a set of disjuncts. Disjuncts may
/// share one semiautomaton (as in the paper) or own separate ones; evaluation
/// goes through each disjunct's automaton reference.
class Ucrpq {
 public:
  Ucrpq() = default;
  explicit Ucrpq(std::vector<Crpq> disjuncts) : disjuncts_(std::move(disjuncts)) {}

  void AddDisjunct(Crpq q) { disjuncts_.push_back(std::move(q)); }

  const std::vector<Crpq>& Disjuncts() const { return disjuncts_; }
  std::vector<Crpq>& MutableDisjuncts() { return disjuncts_; }
  std::size_t size() const { return disjuncts_.size(); }
  bool empty() const { return disjuncts_.empty(); }

  /// A UC2RPQ is connected if every disjunct is (§3 terminology).
  bool IsConnected() const;
  bool IsOneWay() const;
  bool IsTestFree() const;
  bool IsSimple() const;

  /// Union of the disjuncts' mentioned concepts / roles.
  std::vector<uint32_t> MentionedConcepts() const;
  std::vector<uint32_t> MentionedRoles() const;

  std::string ToString(const Vocabulary& vocab) const;

 private:
  std::vector<Crpq> disjuncts_;
};

}  // namespace gqc

#endif  // GQC_QUERY_UCRPQ_H_
