#ifndef GQC_QUERY_QUERY_CONTAINMENT_H_
#define GQC_QUERY_QUERY_CONTAINMENT_H_

#include <optional>

#include "src/query/canonical.h"
#include "src/query/ucrpq.h"

namespace gqc {

/// Three-valued answers for bounded decision procedures: definite answers are
/// exact (witness-checked); kUnknown means the configured search budget was
/// exhausted without a definite answer.
enum class Verdict { kContained, kNotContained, kUnknown };

const char* VerdictName(Verdict v);

struct QueryContainmentResult {
  Verdict verdict = Verdict::kUnknown;
  /// For kNotContained: a finite graph satisfying P but not Q.
  std::optional<Graph> counterexample;
};

struct QueryContainmentOptions {
  ExpansionOptions expansion;
};

/// Classical *schema-free* containment P ⊑ Q over all finite graphs — NO
/// TBox is consulted. For containment **modulo a schema** use
/// `gqc::ContainmentChecker` (src/core/containment.h), which runs this test
/// only as its first exact screen (containment without a schema implies
/// containment under every schema).
///
/// Decided via the canonical-database method: P ⊑ Q iff every canonical
/// expansion of every disjunct of P satisfies Q. Exact for finite languages
/// (e.g. CQs) within the word-length bound; otherwise kNotContained answers
/// are exact and kContained degrades to kUnknown when the expansion set is
/// not exhaustive.
[[nodiscard]] QueryContainmentResult QueryContainment(
    const Ucrpq& p, const Ucrpq& q, const QueryContainmentOptions& options = {});

}  // namespace gqc

#endif  // GQC_QUERY_QUERY_CONTAINMENT_H_
