#include "src/query/canonical.h"

#include <algorithm>
#include <numeric>

#include "src/query/eval.h"

namespace gqc {

namespace {

/// Union-find over query variables, for empty-word atom unification.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

namespace {

/// Distinct runs can spell the same word; canonical databases are per word.
void DedupWords(std::vector<std::vector<Symbol>>* words) {
  std::sort(words->begin(), words->end());
  words->erase(std::unique(words->begin(), words->end()), words->end());
}

}  // namespace

std::vector<std::vector<Symbol>> AtomWords(const Semiautomaton& a, uint32_t s,
                                           uint32_t t, bool allow_empty,
                                           std::size_t max_len, bool* complete) {
  std::vector<std::vector<Symbol>> words;
  if (allow_empty || s == t) words.push_back({});
  *complete = true;

  // BFS over (state, word) up to max_len; bounded by the total output.
  struct Item {
    uint32_t state;
    std::vector<Symbol> word;
  };
  constexpr std::size_t kFrontierCap = 100000;
  std::vector<Item> frontier{{s, {}}};
  for (std::size_t len = 1; len <= max_len + 1; ++len) {
    std::vector<Item> next;
    for (const Item& item : frontier) {
      for (const auto& [sym, q2] : a.Out(item.state)) {
        Item ext{q2, item.word};
        ext.word.push_back(sym);
        if (q2 == t) {
          if (len > max_len) {
            *complete = false;  // longer word exists beyond the cut-off
            DedupWords(&words);
            return words;
          }
          words.push_back(ext.word);
        }
        next.push_back(std::move(ext));
        if (next.size() > kFrontierCap) {
          *complete = false;
          DedupWords(&words);
          return words;
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  DedupWords(&words);
  return words;
}

ExpansionSet CanonicalExpansions(const Crpq& q, const ExpansionOptions& options) {
  ExpansionSet result;
  result.exhaustive = true;

  // Words per atom.
  std::vector<std::vector<std::vector<Symbol>>> atom_words;
  for (const auto& atom : q.BinaryAtoms()) {
    bool complete = true;
    atom_words.push_back(AtomWords(q.Automaton(), atom.start, atom.end,
                                   atom.allow_empty, options.max_word_length,
                                   &complete));
    if (!complete) result.exhaustive = false;
    if (atom_words.back().empty()) {
      // Unsatisfiable atom: no expansions at all.
      result.expansions.clear();
      return result;
    }
  }

  // Cartesian product with a global cap.
  std::vector<std::size_t> choice(atom_words.size(), 0);
  while (true) {
    if (result.expansions.size() >= options.max_expansions) {
      result.exhaustive = false;
      break;
    }
    // One guard step per expansion built; a trip degrades to a non-exhaustive
    // set, which downstream folds into kUnknown rather than a wrong kNo.
    if (options.guard != nullptr && options.guard->Charge(options.guard_phase)) {
      result.exhaustive = false;
      break;
    }
    // Build the expansion for the current choice vector.
    UnionFind uf(q.VarCount());
    for (std::size_t i = 0; i < atom_words.size(); ++i) {
      // A word without role letters keeps the path at one node: y = z.
      const auto& word = atom_words[i][choice[i]];
      bool has_role = std::any_of(word.begin(), word.end(),
                                  [](Symbol s) { return s.is_role(); });
      if (!has_role) uf.Union(q.BinaryAtoms()[i].y, q.BinaryAtoms()[i].z);
    }
    Expansion exp;
    std::vector<NodeId> class_node(q.VarCount(), kNoNode);
    exp.var_nodes.assign(q.VarCount(), kNoNode);
    for (uint32_t v = 0; v < q.VarCount(); ++v) {
      uint32_t root = uf.Find(v);
      if (class_node[root] == kNoNode) class_node[root] = exp.graph.AddNode();
      exp.var_nodes[v] = class_node[root];
    }
    for (const auto& atom : q.UnaryAtoms()) {
      if (!atom.literal.is_negative()) {
        exp.graph.AddLabel(exp.var_nodes[atom.var], atom.literal.concept_id());
      }
    }
    for (std::size_t i = 0; i < atom_words.size(); ++i) {
      const auto& word = atom_words[i][choice[i]];
      const BinaryAtom& atom = q.BinaryAtoms()[i];
      NodeId cur = exp.var_nodes[atom.y];
      NodeId target = exp.var_nodes[atom.z];
      // Count role letters to know where the path must land on `target`.
      std::size_t role_letters = 0;
      for (Symbol sym : word) role_letters += sym.is_role() ? 1 : 0;
      std::size_t roles_seen = 0;
      for (Symbol sym : word) {
        if (sym.is_test()) {
          if (!sym.literal().is_negative()) {
            exp.graph.AddLabel(cur, sym.literal().concept_id());
          }
          continue;
        }
        ++roles_seen;
        NodeId nxt = roles_seen == role_letters ? target : exp.graph.AddNode();
        exp.graph.AddEdge(cur, sym.role(), nxt);
        cur = nxt;
      }
    }
    // Post-check: complement tests can make an expansion fail to satisfy q
    // (e.g. a [!A] test on a node another atom labels A); keep only genuine
    // canonical databases.
    if (Matches(exp.graph, q)) result.expansions.push_back(std::move(exp));

    // Advance the choice vector.
    std::size_t i = 0;
    for (; i < choice.size(); ++i) {
      if (++choice[i] < atom_words[i].size()) break;
      choice[i] = 0;
    }
    if (i == choice.size()) break;
    if (choice.empty()) break;
  }
  return result;
}

}  // namespace gqc
