#include "src/query/factorize.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "src/automata/semiautomaton.h"
#include "src/query/eval.h"
#include "src/util/invariant.h"

namespace gqc {

namespace {

// ---------------------------------------------------------------------------
// Internal representation of simple pointed C2RPQs.
//
// Variables are dense ids; factors keep their contact point in `point`
// (always 0 for generated factors). Edge atoms are forward-normalized
// (an inverse single-role atom r-(y, z) is stored as r(z, y)); star atoms
// reference interned role sets and are orientation-normalized during
// canonicalization (R*(y, z) and R̄*(z, y) are the same constraint).
// ---------------------------------------------------------------------------

struct SEdge {
  uint32_t y, z;
  uint32_t role;  // forward role name id
  auto operator<=>(const SEdge&) const = default;
};

struct SStar {
  uint32_t y, z;
  uint32_t set_id;  // interned role set
  auto operator<=>(const SStar&) const = default;
};

struct SUnary {
  uint32_t var;
  Literal lit;
  auto operator<=>(const SUnary&) const = default;
};

struct SPointed {
  uint32_t var_count = 0;
  uint32_t point = 0;
  std::vector<SUnary> unary;
  std::vector<SEdge> edges;
  std::vector<SStar> stars;

  std::size_t AtomCount() const { return unary.size() + edges.size() + stars.size(); }
};

/// Interns sorted role sets and their reversals.
class RoleSetInterner {
 public:
  uint32_t Intern(std::vector<Role> roles) {
    std::sort(roles.begin(), roles.end());
    roles.erase(std::unique(roles.begin(), roles.end()), roles.end());
    auto it = ids_.find(roles);
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(sets_.size());
    sets_.push_back(roles);
    ids_.emplace(std::move(roles), id);
    return id;
  }

  uint32_t ReversedOf(uint32_t id) {
    std::vector<Role> rev;
    for (Role r : sets_[id]) rev.push_back(r.Reversed());
    return Intern(std::move(rev));
  }

  const std::vector<Role>& Get(uint32_t id) const { return sets_[id]; }
  std::size_t size() const { return sets_.size(); }

 private:
  std::vector<std::vector<Role>> sets_;
  std::map<std::vector<Role>, uint32_t> ids_;
};

// ---------------------------------------------------------------------------
// Canonicalization: serialize minimal over variable permutations with the
// point pinned to position 0. Factors are small (few variables), so brute
// force is fine; guarded by an assertion.
// ---------------------------------------------------------------------------

using CanonicalKey = std::vector<uint64_t>;

CanonicalKey SerializeUnder(const SPointed& p, const std::vector<uint32_t>& perm,
                            RoleSetInterner* sets) {
  CanonicalKey key;
  key.push_back(p.var_count);
  std::vector<uint64_t> items;
  for (const auto& u : p.unary) {
    items.push_back((uint64_t{1} << 60) | (uint64_t{perm[u.var]} << 32) |
                    u.lit.code());
  }
  key.push_back(items.size());
  std::sort(items.begin(), items.end());
  key.insert(key.end(), items.begin(), items.end());

  items.clear();
  for (const auto& e : p.edges) {
    items.push_back((uint64_t{2} << 60) | (uint64_t{perm[e.y]} << 40) |
                    (uint64_t{perm[e.z]} << 20) | e.role);
  }
  std::sort(items.begin(), items.end());
  key.insert(key.end(), items.begin(), items.end());

  items.clear();
  for (const auto& s : p.stars) {
    // Orientation-normalize: R*(y, z) == reversed(R)*(z, y).
    uint64_t a = (uint64_t{3} << 60) | (uint64_t{perm[s.y]} << 40) |
                 (uint64_t{perm[s.z]} << 20) | s.set_id;
    uint64_t b = (uint64_t{3} << 60) | (uint64_t{perm[s.z]} << 40) |
                 (uint64_t{perm[s.y]} << 20) | sets->ReversedOf(s.set_id);
    items.push_back(std::min(a, b));
  }
  std::sort(items.begin(), items.end());
  key.insert(key.end(), items.begin(), items.end());
  return key;
}

CanonicalKey Canonicalize(const SPointed& p, RoleSetInterner* sets) {
  GQC_DCHECK(p.var_count <= 9 && "factor too large to canonicalize");
  std::vector<uint32_t> order;
  for (uint32_t v = 0; v < p.var_count; ++v) {
    if (v != p.point) order.push_back(v);
  }
  CanonicalKey best;
  std::vector<uint32_t> perm(p.var_count);
  do {
    perm[p.point] = 0;
    for (std::size_t i = 0; i < order.size(); ++i) perm[order[i]] = i + 1;
    CanonicalKey key = SerializeUnder(p, perm, sets);
    if (best.empty() || key < best) best = key;
  } while (std::next_permutation(order.begin(), order.end()));
  if (best.empty()) best = SerializeUnder(p, perm, sets);  // 1-var query
  return best;
}

/// Cleans a pointed query in place: dedup atoms, drop trivial stars
/// (y == z, which the empty path satisfies). Returns false if a variable
/// carries contradictory unary literals (the query is unsatisfiable).
bool Tidy(SPointed* p) {
  auto& stars = p->stars;
  stars.erase(std::remove_if(stars.begin(), stars.end(),
                             [](const SStar& s) { return s.y == s.z; }),
              stars.end());
  std::sort(p->unary.begin(), p->unary.end());
  p->unary.erase(std::unique(p->unary.begin(), p->unary.end()), p->unary.end());
  std::sort(p->edges.begin(), p->edges.end());
  p->edges.erase(std::unique(p->edges.begin(), p->edges.end()), p->edges.end());
  std::sort(stars.begin(), stars.end());
  stars.erase(std::unique(stars.begin(), stars.end()), stars.end());
  for (std::size_t i = 0; i + 1 < p->unary.size(); ++i) {
    if (p->unary[i].var == p->unary[i + 1].var &&
        p->unary[i].lit == p->unary[i + 1].lit.Complemented()) {
      return false;
    }
  }
  return true;
}

bool IsConnectedToPoint(const SPointed& p) {
  if (p.var_count <= 1) return true;
  std::vector<std::vector<uint32_t>> adj(p.var_count);
  auto link = [&](uint32_t a, uint32_t b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  for (const auto& e : p.edges) link(e.y, e.z);
  for (const auto& s : p.stars) link(s.y, s.z);
  std::vector<bool> seen(p.var_count, false);
  std::deque<uint32_t> queue{p.point};
  seen[p.point] = true;
  std::size_t count = 1;
  while (!queue.empty()) {
    uint32_t v = queue.front();
    queue.pop_front();
    for (uint32_t w : adj[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++count;
        queue.push_back(w);
      }
    }
  }
  return count == p.var_count;
}

// ---------------------------------------------------------------------------
// The factorizer.
// ---------------------------------------------------------------------------

enum class Where : uint8_t { kOut, kIn, kShared };

class Factorizer {
 public:
  Factorizer(Vocabulary* vocab, const FactorizeOptions& options)
      : vocab_(vocab), options_(options) {}

  Result<SimpleFactorization> Run(const Ucrpq& q) {
    // Convert and seed.
    for (const Crpq& disjunct : q.Disjuncts()) {
      if (!disjunct.IsConnected()) {
        return Result<SimpleFactorization>::Error("factorize: query not connected");
      }
      auto sq = Convert(disjunct);
      if (!sq.ok()) return Result<SimpleFactorization>::Error(sq.error());
      for (uint32_t x = 0; x < sq.value().var_count; ++x) {
        SPointed seed = sq.value();
        seed.point = x;
        if (!EnumeratePeripheralFactors(seed, /*mark_full=*/true)) {
          return CapError();
        }
      }
    }

    // Closure: factors of factors.
    while (!worklist_.empty()) {
      std::size_t idx = worklist_.front();
      worklist_.pop_front();
      SPointed factor = factors_[idx];
      if (!EnumeratePeripheralFactors(factor, /*mark_full=*/false)) {
        return CapError();
      }
    }

    // Central factors and disjunct emission.
    for (std::size_t idx = 0; idx < factors_.size(); ++idx) {
      EnumerateCentralFactors(idx);
      if (guard_tripped_) return CapError();
      if (disjuncts_.size() > options_.max_disjuncts) {
        return Result<SimpleFactorization>::Error("factorize: disjunct cap exceeded");
      }
    }

    return Emit();
  }

 private:
  /// Charges one guard step; remembers the trip so Run can surface it as a
  /// budget error rather than a structural-cap error.
  bool ChargeGuard() {
    if (options_.guard != nullptr && options_.guard->Charge(options_.guard_phase)) {
      guard_tripped_ = true;
      return true;
    }
    return false;
  }

  Result<SimpleFactorization> CapError() const {
    if (guard_tripped_) {
      return Result<SimpleFactorization>::Error(
          "factorize: resource budget exhausted");
    }
    return Result<SimpleFactorization>::Error(
        "factorize: factor cap exceeded (" +
        std::to_string(options_.max_factors) + ")");
  }

  // --- conversion ---------------------------------------------------------

  Result<SPointed> Convert(const Crpq& q) {
    SPointed out;
    out.var_count = static_cast<uint32_t>(q.VarCount());
    for (const auto& u : q.UnaryAtoms()) out.unary.push_back({u.var, u.literal});
    for (const auto& b : q.BinaryAtoms()) {
      if (!b.simple.has_value()) {
        return Result<SPointed>::Error("factorize: query is not simple");
      }
      if (b.simple->starred) {
        out.stars.push_back({b.y, b.z, sets_.Intern(b.simple->roles)});
      } else {
        Role r = b.simple->roles[0];
        if (r.is_inverse()) {
          out.edges.push_back({b.z, b.y, r.name_id()});
        } else {
          out.edges.push_back({b.y, b.z, r.name_id()});
        }
      }
    }
    Tidy(&out);
    return out;
  }

  // --- factor registry -----------------------------------------------------

  /// Registers a factor; returns its index, or SIZE_MAX if the cap was hit.
  std::size_t AddFactor(SPointed f, bool is_full_of_seed) {
    CanonicalKey key = Canonicalize(f, &sets_);
    auto it = factor_ids_.find(key);
    if (it != factor_ids_.end()) {
      if (is_full_of_seed) factor_is_full_[it->second] = true;
      return it->second;
    }
    if (factors_.size() >= options_.max_factors) return SIZE_MAX;
    std::size_t idx = factors_.size();
    factors_.push_back(std::move(f));
    factor_is_full_.push_back(is_full_of_seed);
    factor_labels_.push_back(vocab_->FreshConcept("perm"));
    factor_ids_.emplace(std::move(key), idx);
    worklist_.push_back(idx);
    return idx;
  }

  // --- peripheral factor enumeration ---------------------------------------

  /// Enumerates the peripheral factors of (p, p.point) over all single-part
  /// placements and per-atom choices. Returns false if the factor cap is hit.
  bool EnumeratePeripheralFactors(const SPointed& p, bool mark_full) {
    const uint32_t n = p.var_count;
    std::vector<Where> place(n, Where::kOut);
    return ForEachPlacement(place, 0, n, p, mark_full);
  }

  bool ForEachPlacement(std::vector<Where>& place, uint32_t v, uint32_t n,
                        const SPointed& p, bool mark_full) {
    if (v == n) return RealizePlacement(place, p, mark_full);
    for (Where w : {Where::kOut, Where::kIn, Where::kShared}) {
      if (v == p.point && w == Where::kIn) continue;  // point is central-side
      place[v] = w;
      if (!ForEachPlacement(place, v + 1, n, p, mark_full)) return false;
    }
    place[v] = Where::kOut;
    return true;
  }

  /// Builds factors for a fixed placement, enumerating per-atom choices.
  bool RealizePlacement(const std::vector<Where>& place, const SPointed& p,
                        bool mark_full) {
    // Variable mapping into the factor: contact = 0, kIn vars dense from 1.
    std::vector<uint32_t> map(p.var_count, UINT32_MAX);
    uint32_t next = 1;
    bool any_inside = false;
    for (uint32_t v = 0; v < p.var_count; ++v) {
      if (place[v] == Where::kIn) {
        map[v] = next++;
        any_inside = true;
      } else if (place[v] == Where::kShared) {
        map[v] = 0;
        any_inside = true;
      }
    }
    if (!any_inside) return true;  // empty factor

    // Choice atoms: edges with both endpoints shared (inside vs outside) and
    // stars with both endpoints strictly inside (direct vs via contact).
    std::vector<std::size_t> choice_edges, choice_stars;
    for (std::size_t i = 0; i < p.edges.size(); ++i) {
      const SEdge& e = p.edges[i];
      Where wy = place[e.y], wz = place[e.z];
      // Cross edges between a part interior and the outside cannot exist.
      if ((wy == Where::kIn && wz == Where::kOut) ||
          (wy == Where::kOut && wz == Where::kIn)) {
        return true;  // invalid placement, no factor
      }
      if (wy == Where::kShared && wz == Where::kShared) choice_edges.push_back(i);
    }
    for (std::size_t i = 0; i < p.stars.size(); ++i) {
      if (place[p.stars[i].y] == Where::kIn && place[p.stars[i].z] == Where::kIn) {
        choice_stars.push_back(i);
      }
    }

    bool all_vars_inside = std::none_of(place.begin(), place.end(),
                                        [](Where w) { return w == Where::kOut; });

    const std::size_t combos = std::size_t{1} << (choice_edges.size() + choice_stars.size());
    for (std::size_t combo = 0; combo < combos; ++combo) {
      if (ChargeGuard()) return false;
      SPointed f;
      f.var_count = next;
      f.point = 0;
      // "Full" means the factor is the entire query p: every variable is
      // inside and every atom is realized entirely inside.
      bool full = all_vars_inside;

      for (const auto& u : p.unary) {
        if (place[u.var] != Where::kOut) f.unary.push_back({map[u.var], u.lit});
      }
      std::size_t bit = 0;
      for (std::size_t i = 0; i < p.edges.size(); ++i) {
        const SEdge& e = p.edges[i];
        Where wy = place[e.y], wz = place[e.z];
        if (wy == Where::kOut || wz == Where::kOut) continue;  // edge lives outside
        if (wy == Where::kShared && wz == Where::kShared) {
          bool inside = (combo >> bit) & 1;
          ++bit;
          if (inside) {
            f.edges.push_back({map[e.y], map[e.z], e.role});
          } else {
            full = false;
          }
          continue;
        }
        f.edges.push_back({map[e.y], map[e.z], e.role});
      }
      for (std::size_t i = 0; i < p.stars.size(); ++i) {
        const SStar& s = p.stars[i];
        Where wy = place[s.y], wz = place[s.z];
        bool y_in = wy != Where::kOut, z_in = wz != Where::kOut;
        if (y_in && z_in) {
          if (wy == Where::kIn && wz == Where::kIn) {
            bool direct = !((combo >> bit) & 1);
            ++bit;
            if (direct) {
              f.stars.push_back({map[s.y], map[s.z], s.set_id});
            } else {
              // Path exits through the contact and re-enters.
              f.stars.push_back({map[s.y], 0, s.set_id});
              f.stars.push_back({0, map[s.z], s.set_id});
              full = false;
            }
          } else {
            f.stars.push_back({map[s.y], map[s.z], s.set_id});
          }
        } else if (y_in && !z_in) {
          if (wy == Where::kIn) f.stars.push_back({map[s.y], 0, s.set_id});
        } else if (!y_in && z_in) {
          if (wz == Where::kIn) f.stars.push_back({0, map[s.z], s.set_id});
        }
        // Both out: witnessed outside (detours into the part are pointless
        // for simple queries).
      }

      if (!Tidy(&f)) continue;            // unsatisfiable
      if (f.AtomCount() == 0) continue;   // trivial
      if (!IsConnectedToPoint(f)) continue;
      std::size_t idx = AddFactor(std::move(f), mark_full && full);
      if (idx == SIZE_MAX) return false;
    }
    return true;
  }

  // --- central factor enumeration ------------------------------------------

  /// Placement of one variable for central factors: central, or
  /// (part index, interior/shared).
  struct CPlace {
    bool central = true;
    uint32_t part = 0;
    bool shared = false;
  };

  void EnumerateCentralFactors(std::size_t factor_idx) {
    const SPointed& f = factors_[factor_idx];
    std::vector<CPlace> place(f.var_count);
    RecurseCentral(place, 0, 0, factor_idx);
  }

  void RecurseCentral(std::vector<CPlace>& place, uint32_t v, uint32_t parts_used,
                      std::size_t factor_idx) {
    const SPointed& f = factors_[factor_idx];
    if (disjuncts_.size() > options_.max_disjuncts) return;
    if (guard_tripped_ || ChargeGuard()) return;
    if (v == f.var_count) {
      RealizeCentral(place, parts_used, factor_idx);
      return;
    }
    // Central.
    place[v] = {true, 0, false};
    RecurseCentral(place, v + 1, parts_used, factor_idx);
    // Existing or one new part; parts appear in first-use order to avoid
    // enumerating symmetric partitions. The point may only be shared.
    for (uint32_t j = 0; j < std::min(parts_used + 1, f.var_count); ++j) {
      for (bool shared : {false, true}) {
        if (v == f.point && !shared) continue;
        place[v] = {false, j, shared};
        RecurseCentral(place, v + 1, std::max(parts_used, j + 1), factor_idx);
      }
    }
  }

  void RealizeCentral(const std::vector<CPlace>& place, uint32_t parts_used,
                      std::size_t factor_idx) {
    const SPointed& f = factors_[factor_idx];

    // Each part needs at least one interior variable (shared-only parts are
    // redundant: the shared node's labels are visible centrally).
    std::vector<bool> has_interior(parts_used, false);
    for (uint32_t v = 0; v < f.var_count; ++v) {
      if (!place[v].central && !place[v].shared) has_interior[place[v].part] = true;
    }
    for (uint32_t j = 0; j < parts_used; ++j) {
      if (!has_interior[j]) return;
    }

    // Variable mapping for the central factor: central vars keep identity
    // (renumbered), each part j gets contact var c_j.
    std::vector<uint32_t> central_map(f.var_count, UINT32_MAX);
    uint32_t next = 0;
    std::vector<uint32_t> contact(parts_used, UINT32_MAX);
    for (uint32_t v = 0; v < f.var_count; ++v) {
      if (place[v].central) central_map[v] = next++;
    }
    for (uint32_t j = 0; j < parts_used; ++j) contact[j] = next++;
    auto cmap = [&](uint32_t v) {
      return place[v].central ? central_map[v] : contact[place[v].part];
    };

    // Validity: no atom may cross between a part interior and elsewhere.
    auto region = [&](uint32_t v) -> int {
      if (place[v].central || place[v].shared) return -1;  // central-visible
      return static_cast<int>(place[v].part);
    };

    SPointed central;
    central.var_count = next;
    central.point = cmap(f.point);

    // Per-part peripheral content, assembled with the same rules as
    // EnumeratePeripheralFactors (without choice atoms: choices only affect
    // which part-side factor is referenced, and every variant is already in
    // the closure — we pick the canonical "direct" variant).
    std::vector<SPointed> part_factors(parts_used);
    std::vector<std::vector<uint32_t>> part_map(parts_used,
                                                std::vector<uint32_t>(f.var_count,
                                                                      UINT32_MAX));
    for (uint32_t j = 0; j < parts_used; ++j) {
      part_factors[j].point = 0;
      uint32_t pn = 1;
      for (uint32_t v = 0; v < f.var_count; ++v) {
        if (!place[v].central && place[v].part == j) {
          part_map[j][v] = place[v].shared ? 0 : pn++;
        }
      }
      part_factors[j].var_count = pn;
    }

    for (const auto& u : f.unary) {
      if (place[u.var].central || place[u.var].shared) {
        central.unary.push_back({cmap(u.var), u.lit});
      }
      if (!place[u.var].central) {
        uint32_t j = place[u.var].part;
        part_factors[j].unary.push_back({part_map[j][u.var], u.lit});
      }
    }

    for (const auto& e : f.edges) {
      int ry = region(e.y), rz = region(e.z);
      if (ry != rz && ry != -1 && rz != -1) return;  // interior-to-interior cross
      if (ry == -1 && rz == -1) {
        // Both central-visible. If both are shared nodes of the same part the
        // edge could live inside that part instead; the inside variant is
        // covered by the placement where those variables are interior.
        central.edges.push_back({cmap(e.y), cmap(e.z), e.role});
      } else if (ry == rz) {
        uint32_t j = static_cast<uint32_t>(ry);
        part_factors[j].edges.push_back({part_map[j][e.y], part_map[j][e.z], e.role});
      } else {
        // One endpoint interior to part j, other central-visible: the edge
        // must be inside part j, so the central-visible endpoint must be the
        // shared node of part j.
        uint32_t j = static_cast<uint32_t>(ry == -1 ? rz : ry);
        uint32_t other = ry == -1 ? e.y : e.z;
        // The central-visible endpoint must be the shared node of part j.
        if (place[other].central || place[other].part != j) return;  // invalid
        part_factors[j].edges.push_back(
            {part_map[j][e.y], part_map[j][e.z], e.role});
      }
    }

    for (const auto& s : f.stars) {
      int ry = region(s.y), rz = region(s.z);
      if (ry == -1 && rz == -1) {
        central.stars.push_back({cmap(s.y), cmap(s.z), s.set_id});
      } else if (ry == rz) {
        uint32_t j = static_cast<uint32_t>(ry);
        part_factors[j].stars.push_back(
            {part_map[j][s.y], part_map[j][s.z], s.set_id});
      } else {
        // Interior endpoint(s) contribute prefix/suffix within their part;
        // the middle runs centrally between the contacts / central vars.
        if (ry != -1) {
          uint32_t j = static_cast<uint32_t>(ry);
          part_factors[j].stars.push_back({part_map[j][s.y], 0, s.set_id});
        }
        if (rz != -1) {
          uint32_t j = static_cast<uint32_t>(rz);
          part_factors[j].stars.push_back({0, part_map[j][s.z], s.set_id});
        }
        central.stars.push_back({cmap(s.y), cmap(s.z), s.set_id});
      }
    }

    // Resolve part factors to permissions.
    std::vector<uint32_t> permissions;
    for (uint32_t j = 0; j < parts_used; ++j) {
      if (!Tidy(&part_factors[j])) return;  // unsatisfiable part content
      if (part_factors[j].AtomCount() == 0) return;  // redundant part
      if (!IsConnectedToPoint(part_factors[j])) return;
      CanonicalKey key = Canonicalize(part_factors[j], &sets_);
      auto it = factor_ids_.find(key);
      if (it == factor_ids_.end()) return;  // beyond the closure cap: skip
      permissions.push_back(factor_labels_[it->second]);
    }

    // Assemble the disjunct: central structure + part permissions at the
    // contacts + the missing permission of f at the point.
    for (uint32_t j = 0; j < parts_used; ++j) {
      central.unary.push_back({contact[j], Literal::Positive(permissions[j])});
    }
    Literal missing = Literal::Negative(factor_labels_[factor_idx]);
    central.unary.push_back({central.point, missing});
    if (!Tidy(&central)) return;  // e.g. C_f(y) ∧ C̄_f(y)
    if (!IsConnectedToPoint(central)) return;

    CanonicalKey key = Canonicalize(central, &sets_);
    if (disjunct_keys_.insert(key).second) {
      disjuncts_.push_back(std::move(central));
    }
  }

  // --- emission -------------------------------------------------------------

  Result<SimpleFactorization> Emit() {
    // Full-query permission disjuncts: C_{q,x}(x).
    for (std::size_t i = 0; i < factors_.size(); ++i) {
      if (!factor_is_full_[i]) continue;
      SPointed d;
      d.var_count = 1;
      d.point = 0;
      d.unary.push_back({0, Literal::Positive(factor_labels_[i])});
      CanonicalKey key = Canonicalize(d, &sets_);
      if (disjunct_keys_.insert(key).second) disjuncts_.push_back(std::move(d));
    }

    // Build the shared automaton for all disjuncts.
    auto automaton = std::make_shared<Semiautomaton>();
    std::map<uint32_t, std::pair<uint32_t, uint32_t>> edge_states;  // role -> (s, t)
    std::map<uint32_t, uint32_t> star_states;                       // set id -> state
    auto edge_pair = [&](uint32_t role) {
      auto it = edge_states.find(role);
      if (it != edge_states.end()) return it->second;
      uint32_t s = automaton->AddState();
      uint32_t t = automaton->AddState();
      automaton->AddTransition(s, Symbol::FromRole(Role::Forward(role)), t);
      return edge_states.emplace(role, std::make_pair(s, t)).first->second;
    };
    auto star_state = [&](uint32_t set_id) {
      auto it = star_states.find(set_id);
      if (it != star_states.end()) return it->second;
      uint32_t s = automaton->AddState();
      for (Role r : sets_.Get(set_id)) {
        automaton->AddTransition(s, Symbol::FromRole(r), s);
      }
      return star_states.emplace(set_id, s).first->second;
    };

    SimpleFactorization out;
    std::shared_ptr<const Semiautomaton> frozen = automaton;
    auto convert = [&](const SPointed& d) {
      Crpq q(frozen);
      for (uint32_t v = 0; v < d.var_count; ++v) q.AddVar();
      for (const auto& u : d.unary) q.AddUnary(u.var, u.lit);
      for (const auto& e : d.edges) {
        auto [s, t] = edge_pair(e.role);
        BinaryAtom atom;
        atom.y = e.y;
        atom.z = e.z;
        atom.start = s;
        atom.end = t;
        atom.allow_empty = false;
        atom.regex = Regex::RoleSym(Role::Forward(e.role));
        atom.simple = GetSimpleShape(atom.regex);
        q.AddBinary(std::move(atom));
      }
      for (const auto& s : d.stars) {
        uint32_t state = star_state(s.set_id);
        BinaryAtom atom;
        atom.y = s.y;
        atom.z = s.z;
        atom.start = state;
        atom.end = state;
        atom.allow_empty = true;
        std::vector<RegexPtr> syms;
        for (Role r : sets_.Get(s.set_id)) syms.push_back(Regex::RoleSym(r));
        atom.regex = Regex::Star(Regex::Union(std::move(syms)));
        atom.simple = GetSimpleShape(atom.regex);
        q.AddBinary(std::move(atom));
      }
      return q;
    };

    for (const SPointed& d : disjuncts_) {
      out.q_hat.AddDisjunct(convert(d));
    }
    for (std::size_t i = 0; i < factors_.size(); ++i) {
      SimpleFactorization::Factor f;
      f.query = convert(factors_[i]);
      f.point = factors_[i].point;
      f.permission = factor_labels_[i];
      f.is_full = factor_is_full_[i];
      out.factors.push_back(std::move(f));
    }

    out.permission_concepts = factor_labels_;
    for (std::size_t i = 0; i < factors_.size(); ++i) {
      if (factor_is_full_[i]) out.full_query_permissions.push_back(factor_labels_[i]);
    }
    out.factor_count = factors_.size();
    return out;
  }

  Vocabulary* vocab_;
  FactorizeOptions options_;
  RoleSetInterner sets_;

  std::vector<SPointed> factors_;
  std::vector<bool> factor_is_full_;
  std::vector<uint32_t> factor_labels_;
  std::map<CanonicalKey, std::size_t> factor_ids_;
  std::deque<std::size_t> worklist_;

  std::vector<SPointed> disjuncts_;
  std::set<CanonicalKey> disjunct_keys_;
  bool guard_tripped_ = false;
};

}  // namespace

Result<SimpleFactorization> FactorizeSimpleUcrpq(const Ucrpq& q, Vocabulary* vocab,
                                                 const FactorizeOptions& options) {
  if (!q.IsSimple()) {
    return Result<SimpleFactorization>::Error("factorize: query is not simple");
  }
  return Factorizer(vocab, options).Run(q);
}

Graph ApplyTrueLabelling(const Graph& g, const SimpleFactorization& f) {
  Graph out = g;
  for (const auto& factor : f.factors) {
    for (NodeId v = 0; v < g.NodeCount(); ++v) {
      if (MatchesAt(out, factor.query, factor.point, v)) {
        // Permissions are fresh labels not mentioned by any factor query, so
        // adding them does not change subsequent matches.
        out.AddLabel(v, factor.permission);
      }
    }
  }
  return out;
}

bool IsReachabilityAtom(const BinaryAtom& atom, const std::vector<uint32_t>& sigma0) {
  if (!atom.simple.has_value() || !atom.simple->starred) return false;
  auto has = [&](bool inverse) {
    for (uint32_t r : sigma0) {
      Role needle = inverse ? Role::Inverse(r) : Role::Forward(r);
      if (std::find(atom.simple->roles.begin(), atom.simple->roles.end(), needle) ==
          atom.simple->roles.end()) {
        return false;
      }
    }
    return true;
  };
  if (sigma0.empty()) return false;
  return has(false) || has(true);
}

Ucrpq DropReachabilityAtoms(const Ucrpq& q, const std::vector<uint32_t>& sigma0) {
  Ucrpq out;
  for (const Crpq& d : q.Disjuncts()) {
    Crpq nd(d.SharedAutomaton());
    for (uint32_t v = 0; v < d.VarCount(); ++v) nd.AddVar(d.VarName(v));
    for (const auto& u : d.UnaryAtoms()) nd.AddUnary(u.var, u.literal);
    for (const auto& b : d.BinaryAtoms()) {
      if (!IsReachabilityAtom(b, sigma0)) nd.AddBinary(b);
    }
    out.AddDisjunct(std::move(nd));
  }
  return out;
}

}  // namespace gqc
