#include "src/query/query_containment.h"

#include "src/query/eval.h"

namespace gqc {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kContained:
      return "contained";
    case Verdict::kNotContained:
      return "not-contained";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "?";
}

QueryContainmentResult QueryContainment(
    const Ucrpq& p, const Ucrpq& q, const QueryContainmentOptions& options) {
  QueryContainmentResult result;
  bool exhaustive = true;
  for (const Crpq& disjunct : p.Disjuncts()) {
    ExpansionSet set = CanonicalExpansions(disjunct, options.expansion);
    exhaustive = exhaustive && set.exhaustive;
    for (const Expansion& exp : set.expansions) {
      if (!Matches(exp.graph, q)) {
        // Exact counterexample: the expansion satisfies P (by construction)
        // but not Q, and containment is over all finite graphs.
        result.verdict = Verdict::kNotContained;
        result.counterexample = exp.graph;
        return result;
      }
    }
  }
  result.verdict = exhaustive ? Verdict::kContained : Verdict::kUnknown;
  return result;
}

}  // namespace gqc
