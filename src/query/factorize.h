#ifndef GQC_QUERY_FACTORIZE_H_
#define GQC_QUERY_FACTORIZE_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/query/ucrpq.h"
#include "src/util/guard.h"
#include "src/util/result.h"

namespace gqc {

/// Query factorization (§3, Lemma 3.7): given a connected UC2RPQ Q, builds a
/// UC2RPQ Q̂ over fresh "permission" node labels C_{p,y} such that
///   (1) Q̂ is factorized: it holds in a star-like graph iff it holds in one
///       of its parts, and
///   (2) Q holds in G iff Q̂ holds in every extension of G by placements of
///       the fresh labels.
///
/// This implementation is exact for *simple* UC2RPQs (atoms r or
/// (r1+...+rn)*), the class required by Theorem 3.4(2) and the §6 engine.
/// For simple queries the paper notes that detours into peripheral parts are
/// pointless, so no automaton shortcuts are needed and all factors remain
/// simple.
///
/// A unary factor of a pointed query (p, x) is a pointed query that can be
/// matched inside one peripheral part of a star-like graph, touching the rest
/// of the graph only through the shared "contact" node. Factors are closed
/// under factorization; the closure is computed by a worklist over canonical
/// forms. Q̂ consists of
///   - C_{q,x}(x) for the full-query factors (a node claiming a complete
///     match of some disjunct), and
///   - p' ∧ C̄_p(y') for every factor p and central factor p' of p (local
///     structure plus peripheral permissions imply a match of p at y', but
///     the permission label is missing).
struct SimpleFactorization {
  /// The factorized query Q̂.
  Ucrpq q_hat;
  /// All fresh permission concept ids introduced (part of Γ₀ downstream).
  std::vector<uint32_t> permission_concepts;
  /// Permission concept ids of full-query factors (one per (q, x)).
  std::vector<uint32_t> full_query_permissions;
  /// Number of distinct factors in the closure.
  std::size_t factor_count = 0;

  /// The factor closure itself: pointed queries with their permission labels.
  /// The "true labelling" of a graph G labels node v with `permission` iff
  /// (query, point) matches at v; it is the canonical witness for condition
  /// (2) of Lemma 3.7 and is used by tests and the containment reduction.
  struct Factor {
    Crpq query;
    uint32_t point = 0;
    uint32_t permission = 0;
    bool is_full = false;
  };
  std::vector<Factor> factors;
};

/// Adds the true labelling of `g` under the factorization: each node v gets
/// permission C_f exactly when factor f matches at v. Returns the labelled
/// copy.
Graph ApplyTrueLabelling(const Graph& g, const SimpleFactorization& f);

struct FactorizeOptions {
  /// Cap on the number of distinct factors (hence permission labels); the
  /// type spaces of the entailment engines are exponential in this number.
  std::size_t max_factors = 24;
  /// Cap on generated Q̂ disjuncts.
  std::size_t max_disjuncts = 4096;
  /// Optional resource guard; a trip makes factorization return an error
  /// (folded into kUnknown downstream). Null = ungoverned.
  ResourceGuard* guard = nullptr;
  GuardPhase guard_phase = GuardPhase::kFactorize;
};

/// Factorizes a connected simple UC2RPQ. Errors if the query is not simple,
/// not connected, or the caps are exceeded.
Result<SimpleFactorization> FactorizeSimpleUcrpq(const Ucrpq& q, Vocabulary* vocab,
                                                 const FactorizeOptions& options = {});

/// Q̂ mod Σ0 (§6): drops every Σ0-reachability atom — a simple star atom
/// (r1+...+rk)* whose role set contains all of Σ0 forwards or all of Σ0
/// backwards — from each disjunct. `sigma0` holds role name ids.
Ucrpq DropReachabilityAtoms(const Ucrpq& q, const std::vector<uint32_t>& sigma0);

/// True if the atom is a Σ0-reachability atom.
bool IsReachabilityAtom(const BinaryAtom& atom, const std::vector<uint32_t>& sigma0);

}  // namespace gqc

#endif  // GQC_QUERY_FACTORIZE_H_
