#ifndef GQC_QUERY_EVAL_H_
#define GQC_QUERY_EVAL_H_

#include <optional>
#include <utility>
#include <vector>

#include "src/graph/graph.h"
#include "src/query/ucrpq.h"

namespace gqc {

/// Query evaluation over finite graphs (§2 match semantics). Each binary
/// atom's relation is materialized by product reachability; the conjunction
/// is then solved by backtracking over variables.

/// Finds a match of `q` in `g`, optionally with some variables pinned to
/// specific nodes. Returns the full variable assignment, or std::nullopt.
std::optional<std::vector<NodeId>> FindMatch(
    const Graph& g, const Crpq& q,
    const std::vector<std::pair<uint32_t, NodeId>>& pinned = {});

/// G ⊨ q.
bool Matches(const Graph& g, const Crpq& q);

/// G ⊨ Q for a union of C2RPQs.
bool Matches(const Graph& g, const Ucrpq& q);

/// Pointed match (§3): (q, x) matches in g at node v.
bool MatchesAt(const Graph& g, const Crpq& q, uint32_t var, NodeId v);

/// All nodes v such that (q, var) matches at v.
std::vector<NodeId> MatchNodes(const Graph& g, const Crpq& q, uint32_t var);

}  // namespace gqc

#endif  // GQC_QUERY_EVAL_H_
