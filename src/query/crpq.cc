#include "src/query/crpq.h"

#include <algorithm>
#include <deque>
#include <set>

namespace gqc {

uint32_t Crpq::AddVar(std::string name) {
  uint32_t id = static_cast<uint32_t>(var_names_.size());
  if (name.empty()) {
    name = "v";
    name += std::to_string(id);
  }
  var_names_.push_back(std::move(name));
  return id;
}

bool Crpq::IsConnected() const {
  if (VarCount() <= 1) return true;
  std::vector<std::vector<uint32_t>> adj(VarCount());
  for (const auto& b : binary_) {
    adj[b.y].push_back(b.z);
    adj[b.z].push_back(b.y);
  }
  std::vector<bool> seen(VarCount(), false);
  std::deque<uint32_t> queue{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!queue.empty()) {
    uint32_t u = queue.front();
    queue.pop_front();
    for (uint32_t v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        queue.push_back(v);
      }
    }
  }
  return count == VarCount();
}

std::vector<Symbol> Crpq::AtomSymbols(const BinaryAtom& atom) const {
  // Symbols on transitions that lie on some path from atom.start to atom.end.
  auto reach = automaton_->ReachableStates(atom.start);
  auto coreach = automaton_->CoReachableStates(atom.end);
  std::set<Symbol> symbols;
  for (uint32_t s = 0; s < automaton_->StateCount(); ++s) {
    if (!reach[s]) continue;
    for (const auto& [sym, t] : automaton_->Out(s)) {
      if (coreach[t]) symbols.insert(sym);
    }
  }
  return std::vector<Symbol>(symbols.begin(), symbols.end());
}

bool Crpq::IsOneWay() const {
  for (const auto& b : binary_) {
    if (b.regex != nullptr) {
      if (!gqc::IsOneWay(b.regex)) return false;
      continue;
    }
    for (Symbol s : AtomSymbols(b)) {
      if (s.is_role() && s.role().is_inverse()) return false;
    }
  }
  return true;
}

bool Crpq::IsTestFree() const {
  for (const auto& b : binary_) {
    if (b.regex != nullptr) {
      if (!gqc::IsTestFree(b.regex)) return false;
      continue;
    }
    for (Symbol s : AtomSymbols(b)) {
      if (s.is_test()) return false;
    }
  }
  return true;
}

bool Crpq::IsSimple() const {
  return std::all_of(binary_.begin(), binary_.end(),
                     [](const BinaryAtom& b) { return b.simple.has_value(); });
}

std::vector<uint32_t> Crpq::MentionedConcepts() const {
  std::set<uint32_t> ids;
  for (const auto& u : unary_) ids.insert(u.literal.concept_id());
  for (const auto& b : binary_) {
    for (Symbol s : AtomSymbols(b)) {
      if (s.is_test()) ids.insert(s.literal().concept_id());
    }
  }
  return std::vector<uint32_t>(ids.begin(), ids.end());
}

std::vector<uint32_t> Crpq::MentionedRoles() const {
  std::set<uint32_t> ids;
  for (const auto& b : binary_) {
    for (Symbol s : AtomSymbols(b)) {
      if (s.is_role()) ids.insert(s.role().name_id());
    }
  }
  return std::vector<uint32_t>(ids.begin(), ids.end());
}

std::string Crpq::ToString(const Vocabulary& vocab) const {
  std::string out;
  bool first = true;
  for (const auto& u : unary_) {
    if (!first) out += ", ";
    first = false;
    out += vocab.LiteralString(u.literal) + "(" + var_names_[u.var] + ")";
  }
  for (const auto& b : binary_) {
    if (!first) out += ", ";
    first = false;
    std::string body = b.regex != nullptr
                           ? RegexToString(b.regex, vocab)
                           : "A[" + std::to_string(b.start) + "," +
                                 std::to_string(b.end) + "]";
    out += "(" + body + ")(" + var_names_[b.y] + ", " + var_names_[b.z] + ")";
  }
  if (first) out = "true";
  return out;
}

}  // namespace gqc
