#ifndef GQC_QUERY_PARSER_H_
#define GQC_QUERY_PARSER_H_

#include <string_view>

#include "src/automata/compile_cache.h"
#include "src/query/ucrpq.h"
#include "src/util/result.h"

namespace gqc {

/// Parses the textual UC2RPQ syntax used by examples and tests. Grammar:
///
///   ucrpq := crpq (';' crpq)*                 -- union of disjuncts
///   crpq  := [head ':-'] atom (',' atom)*
///   head  := IDENT '(' var (',' var)* ')'     -- ignored (Boolean semantics)
///   atom  := '!'? IDENT '(' var ')'           -- unary literal, e.g. !Premium(x)
///          | IDENT '-'? '(' var ',' var ')'   -- binary single-role shorthand
///          | '(' regex ')' '(' var ',' var ')'-- binary with a full regex
///
/// Example:
///   q(x,y) :- Customer(x), (owns . earns)(x, z), RetailCompany(z),
///             (partof*)(z, y)
///
/// All disjuncts share one semiautomaton, as in the paper's representation.
///
/// `regex_cache`, when non-null, memoizes regex -> semiautomaton compilation
/// across parses (workloads reuse a small set of path expressions); `stats`
/// receives its hit/miss counters. Parsed queries are identical with or
/// without a cache.
Result<Ucrpq> ParseUcrpq(std::string_view text, Vocabulary* vocab,
                         RegexCompileCache* regex_cache = nullptr,
                         PipelineStats* stats = nullptr);

/// Convenience: parses a query expected to be a single C2RPQ.
Result<Crpq> ParseCrpq(std::string_view text, Vocabulary* vocab,
                       RegexCompileCache* regex_cache = nullptr,
                       PipelineStats* stats = nullptr);

}  // namespace gqc

#endif  // GQC_QUERY_PARSER_H_
