#include "src/query/parser.h"

#include <cctype>
#include <map>

#include "src/automata/regex_parser.h"

namespace gqc {

namespace {

class QueryParser {
 public:
  QueryParser(std::string_view text, Vocabulary* vocab,
              RegexCompileCache* regex_cache, PipelineStats* stats)
      : text_(text), vocab_(vocab), regex_cache_(regex_cache), stats_(stats) {}

  Result<Ucrpq> Parse() {
    auto automaton = std::make_shared<Semiautomaton>();
    Ucrpq result;
    while (true) {
      auto crpq = ParseDisjunct(automaton.get());
      if (!crpq.ok()) return Result<Ucrpq>::Error(crpq.error());
      result.AddDisjunct(std::move(crpq.value()));
      SkipSpace();
      if (!Consume(';')) break;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Result<Ucrpq>::Error("query: trailing input at position " +
                                  std::to_string(pos_));
    }
    // Freeze the shared automaton into every disjunct.
    std::shared_ptr<const Semiautomaton> frozen = automaton;
    for (Crpq& q : result.MutableDisjuncts()) q.SetAutomaton(frozen);
    return result;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseIdent() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Result<std::string>::Error("query: expected identifier at position " +
                                        std::to_string(start));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Extracts the balanced "(...)" starting at the current '('; returns the
  /// inner text and advances past the closing ')'.
  Result<std::string> ParseBalancedParens() {
    if (!Consume('(')) {
      return Result<std::string>::Error("query: expected '('");
    }
    std::size_t start = pos_;
    int depth = 1;
    while (pos_ < text_.size() && depth > 0) {
      if (text_[pos_] == '(') ++depth;
      if (text_[pos_] == ')') --depth;
      ++pos_;
    }
    if (depth != 0) {
      return Result<std::string>::Error("query: unbalanced parentheses");
    }
    return std::string(text_.substr(start, pos_ - 1 - start));
  }

  Result<Crpq> ParseDisjunct(Semiautomaton* automaton) {
    Crpq q;
    std::map<std::string, uint32_t> vars;
    auto var_id = [&](const std::string& name) {
      auto it = vars.find(name);
      if (it != vars.end()) return it->second;
      uint32_t id = q.AddVar(name);
      vars.emplace(name, id);
      return id;
    };

    // Optional head "name(v1, ..., vk) :-": detect by scanning for ":-"
    // before the first ',' at depth 0.
    DetectAndSkipHead();

    bool first_atom = true;
    while (true) {
      if (!first_atom && !Consume(',')) break;
      first_atom = false;
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Result<Crpq>::Error("query: expected atom");
      }
      if (Peek('(')) {
        // Regex binary atom: ( regex )( y , z ), allowing postfix '*' or '^+'
        // after the closing parenthesis, e.g. (partof-)*(z, y).
        auto regex_text = ParseBalancedParens();
        if (!regex_text.ok()) return Result<Crpq>::Error(regex_text.error());
        auto regex = ParseRegex(regex_text.value(), vocab_);
        if (!regex.ok()) return Result<Crpq>::Error(regex.error());
        while (true) {
          if (Consume('*')) {
            regex = Regex::Star(regex.value());
          } else if (Peek('^')) {
            ++pos_;
            if (!Consume('+')) {
              return Result<Crpq>::Error("query: expected '+' after '^'");
            }
            regex = Regex::Plus(regex.value());
          } else {
            break;
          }
        }
        auto atom_vars = ParseVarPair();
        if (!atom_vars.ok()) return Result<Crpq>::Error(atom_vars.error());
        uint32_t y = var_id(atom_vars.value().first);
        uint32_t z = var_id(atom_vars.value().second);
        AddRegexAtom(&q, automaton, regex.value(), y, z);
        continue;
      }
      bool negated = Consume('!');
      auto name = ParseIdent();
      if (!name.ok()) return Result<Crpq>::Error(name.error());
      bool inverse = !negated && Consume('-');
      if (!Consume('(')) {
        return Result<Crpq>::Error("query: expected '(' after atom name");
      }
      auto v1 = ParseIdent();
      if (!v1.ok()) return Result<Crpq>::Error(v1.error());
      if (Consume(',')) {
        // Binary shorthand: role(y, z).
        if (negated) {
          return Result<Crpq>::Error("query: '!' applies to unary atoms only");
        }
        auto v2 = ParseIdent();
        if (!v2.ok()) return Result<Crpq>::Error(v2.error());
        if (!Consume(')')) return Result<Crpq>::Error("query: expected ')'");
        uint32_t role = vocab_->RoleId(name.value());
        RegexPtr regex =
            Regex::RoleSym(inverse ? Role::Inverse(role) : Role::Forward(role));
        uint32_t y = var_id(v1.value());
        uint32_t z = var_id(v2.value());
        AddRegexAtom(&q, automaton, regex, y, z);
      } else {
        if (!Consume(')')) return Result<Crpq>::Error("query: expected ')'");
        if (inverse) {
          return Result<Crpq>::Error("query: unary atoms cannot be inverted");
        }
        uint32_t concept_id = vocab_->ConceptId(name.value());
        q.AddUnary(var_id(v1.value()), negated ? Literal::Negative(concept_id)
                                               : Literal::Positive(concept_id));
      }
      SkipSpace();
    }
    return q;
  }

  void DetectAndSkipHead() {
    std::size_t probe = pos_;
    int depth = 0;
    while (probe + 1 < text_.size()) {
      char c = text_[probe];
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (depth == 0 && c == ':' && text_[probe + 1] == '-') {
        pos_ = probe + 2;
        return;
      }
      if (depth == 0 && (c == ',' || c == ';')) return;  // no head
      ++probe;
    }
  }

  Result<std::pair<std::string, std::string>> ParseVarPair() {
    using R = Result<std::pair<std::string, std::string>>;
    if (!Consume('(')) return R::Error("query: expected '(' before variables");
    auto v1 = ParseIdent();
    if (!v1.ok()) return R::Error(v1.error());
    if (!Consume(',')) return R::Error("query: expected ','");
    auto v2 = ParseIdent();
    if (!v2.ok()) return R::Error(v2.error());
    if (!Consume(')')) return R::Error("query: expected ')'");
    return std::make_pair(v1.value(), v2.value());
  }

  void AddRegexAtom(Crpq* q, Semiautomaton* automaton, const RegexPtr& regex,
                    uint32_t y, uint32_t z) {
    CompiledRef ref = regex_cache_ != nullptr
                          ? regex_cache_->CompileInto(regex, automaton, stats_)
                          : CompileRegexInto(regex, automaton);
    BinaryAtom atom;
    atom.y = y;
    atom.z = z;
    atom.start = ref.start;
    atom.end = ref.end;
    atom.allow_empty = ref.nullable;
    atom.regex = regex;
    atom.simple = GetSimpleShape(regex);
    q->AddBinary(std::move(atom));
  }

  std::string_view text_;
  Vocabulary* vocab_;
  RegexCompileCache* regex_cache_;
  PipelineStats* stats_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Ucrpq> ParseUcrpq(std::string_view text, Vocabulary* vocab,
                         RegexCompileCache* regex_cache, PipelineStats* stats) {
  return QueryParser(text, vocab, regex_cache, stats).Parse();
}

Result<Crpq> ParseCrpq(std::string_view text, Vocabulary* vocab,
                       RegexCompileCache* regex_cache, PipelineStats* stats) {
  auto u = ParseUcrpq(text, vocab, regex_cache, stats);
  if (!u.ok()) return Result<Crpq>::Error(u.error());
  if (u.value().size() != 1) {
    return Result<Crpq>::Error("query: expected a single C2RPQ, got a union");
  }
  return u.value().Disjuncts()[0];
}

}  // namespace gqc
