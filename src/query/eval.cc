#include "src/query/eval.h"

#include <algorithm>
#include <map>

#include "src/automata/product.h"

namespace gqc {

namespace {

/// Materialized binary-atom relations plus candidate filtering and a
/// backtracking join.
class Evaluator {
 public:
  Evaluator(const Graph& g, const Crpq& q) : g_(g), q_(q) {}

  std::optional<std::vector<NodeId>> Find(
      const std::vector<std::pair<uint32_t, NodeId>>& pinned) {
    const std::size_t vars = q_.VarCount();
    const std::size_t nodes = g_.NodeCount();
    if (nodes == 0) return std::nullopt;

    // Candidate sets per variable, from unary atoms and pins.
    candidates_.assign(vars, DynamicBitset(nodes));
    for (auto& c : candidates_) {
      for (std::size_t v = 0; v < nodes; ++v) c.Set(v);
    }
    for (const auto& [var, node] : pinned) {
      if (node >= nodes) return std::nullopt;
      DynamicBitset only(nodes);
      only.Set(node);
      candidates_[var] &= only;
    }
    for (const auto& atom : q_.UnaryAtoms()) {
      for (std::size_t v = 0; v < nodes; ++v) {
        if (!g_.SatisfiesLiteral(static_cast<NodeId>(v), atom.literal)) {
          candidates_[atom.var].Reset(v);
        }
      }
    }
    for (const auto& c : candidates_) {
      if (c.None()) return std::nullopt;
    }

    // Materialize binary relations (dedup by state signature).
    relations_.clear();
    relations_.reserve(q_.BinaryAtoms().size());
    std::map<std::tuple<uint32_t, uint32_t, bool>, std::size_t> cache;
    for (const auto& atom : q_.BinaryAtoms()) {
      auto key = std::make_tuple(atom.start, atom.end, atom.allow_empty);
      auto it = cache.find(key);
      if (it == cache.end()) {
        relation_store_.push_back(
            AtomRelation(g_, q_.Automaton(), atom.start, atom.end, atom.allow_empty));
        it = cache.emplace(key, relation_store_.size() - 1).first;
      }
      relations_.push_back(it->second);
    }

    // Semi-join filtering: shrink candidates via each atom's relation, then
    // backtrack. One filtering pass is enough for correctness; repeat to a
    // small fixpoint for pruning power.
    for (int round = 0; round < 3; ++round) {
      bool changed = false;
      for (std::size_t i = 0; i < q_.BinaryAtoms().size(); ++i) {
        changed |= SemiJoin(i);
      }
      if (!changed) break;
      for (const auto& c : candidates_) {
        if (c.None()) return std::nullopt;
      }
    }

    assignment_.assign(vars, kNoNode);
    order_ = VarOrder();
    if (Assign(0)) return assignment_;
    return std::nullopt;
  }

 private:
  /// Restricts candidates of the atom's endpoints to nodes with at least one
  /// partner in the relation. Returns true if anything shrank.
  bool SemiJoin(std::size_t atom_idx) {
    const BinaryAtom& atom = q_.BinaryAtoms()[atom_idx];
    const auto& rel = relation_store_[relations_[atom_idx]];
    const std::size_t nodes = g_.NodeCount();
    bool changed = false;
    DynamicBitset new_y(nodes), new_z(nodes);
    for (std::size_t u = 0; u < nodes; ++u) {
      if (!candidates_[atom.y].Test(u)) continue;
      DynamicBitset targets = rel[u] & candidates_[atom.z];
      if (targets.Any()) {
        new_y.Set(u);
        new_z |= targets;
      }
    }
    if (!(new_y == candidates_[atom.y])) {
      candidates_[atom.y] = new_y;
      changed = true;
    }
    DynamicBitset z = candidates_[atom.z] & new_z;
    if (!(z == candidates_[atom.z])) {
      candidates_[atom.z] = z;
      changed = true;
    }
    return changed;
  }

  /// Variables ordered so each one (past the first per component) touches an
  /// earlier variable through some atom.
  std::vector<uint32_t> VarOrder() const {
    const std::size_t vars = q_.VarCount();
    std::vector<std::vector<uint32_t>> adj(vars);
    for (const auto& atom : q_.BinaryAtoms()) {
      adj[atom.y].push_back(atom.z);
      adj[atom.z].push_back(atom.y);
    }
    std::vector<uint32_t> order;
    std::vector<bool> seen(vars, false);
    for (uint32_t start = 0; start < vars; ++start) {
      if (seen[start]) continue;
      std::vector<uint32_t> queue{start};
      seen[start] = true;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        uint32_t u = queue[i];
        order.push_back(u);
        for (uint32_t v : adj[u]) {
          if (!seen[v]) {
            seen[v] = true;
            queue.push_back(v);
          }
        }
      }
    }
    return order;
  }

  bool ConsistentAt(uint32_t var, NodeId node) const {
    for (std::size_t i = 0; i < q_.BinaryAtoms().size(); ++i) {
      const BinaryAtom& atom = q_.BinaryAtoms()[i];
      const auto& rel = relation_store_[relations_[i]];
      NodeId y = atom.y == var ? node : assignment_[atom.y];
      NodeId z = atom.z == var ? node : assignment_[atom.z];
      if (atom.y != var && atom.z != var) continue;
      if (y != kNoNode && z != kNoNode && !rel[y].Test(z)) return false;
    }
    return true;
  }

  bool Assign(std::size_t idx) {
    if (idx == order_.size()) return true;
    uint32_t var = order_[idx];
    const DynamicBitset& cand = candidates_[var];
    for (std::size_t v = cand.FindFirst(); v < cand.size(); v = cand.FindNext(v + 1)) {
      NodeId node = static_cast<NodeId>(v);
      if (!ConsistentAt(var, node)) continue;
      assignment_[var] = node;
      if (Assign(idx + 1)) return true;
      assignment_[var] = kNoNode;
    }
    return false;
  }

  const Graph& g_;
  const Crpq& q_;
  std::vector<DynamicBitset> candidates_;
  std::vector<std::vector<DynamicBitset>> relation_store_;
  std::vector<std::size_t> relations_;  // atom index -> store index
  std::vector<NodeId> assignment_;
  std::vector<uint32_t> order_;
};

}  // namespace

std::optional<std::vector<NodeId>> FindMatch(
    const Graph& g, const Crpq& q,
    const std::vector<std::pair<uint32_t, NodeId>>& pinned) {
  return Evaluator(g, q).Find(pinned);
}

bool Matches(const Graph& g, const Crpq& q) { return FindMatch(g, q).has_value(); }

bool Matches(const Graph& g, const Ucrpq& q) {
  return std::any_of(q.Disjuncts().begin(), q.Disjuncts().end(),
                     [&](const Crpq& d) { return Matches(g, d); });
}

bool MatchesAt(const Graph& g, const Crpq& q, uint32_t var, NodeId v) {
  return FindMatch(g, q, {{var, v}}).has_value();
}

std::vector<NodeId> MatchNodes(const Graph& g, const Crpq& q, uint32_t var) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.NodeCount(); ++v) {
    if (MatchesAt(g, q, var, v)) out.push_back(v);
  }
  return out;
}

}  // namespace gqc
