#include "src/query/ucrpq.h"

#include <algorithm>
#include <set>

namespace gqc {

bool Ucrpq::IsConnected() const {
  return std::all_of(disjuncts_.begin(), disjuncts_.end(),
                     [](const Crpq& q) { return q.IsConnected(); });
}

bool Ucrpq::IsOneWay() const {
  return std::all_of(disjuncts_.begin(), disjuncts_.end(),
                     [](const Crpq& q) { return q.IsOneWay(); });
}

bool Ucrpq::IsTestFree() const {
  return std::all_of(disjuncts_.begin(), disjuncts_.end(),
                     [](const Crpq& q) { return q.IsTestFree(); });
}

bool Ucrpq::IsSimple() const {
  return std::all_of(disjuncts_.begin(), disjuncts_.end(),
                     [](const Crpq& q) { return q.IsSimple(); });
}

std::vector<uint32_t> Ucrpq::MentionedConcepts() const {
  std::set<uint32_t> ids;
  for (const auto& q : disjuncts_) {
    for (uint32_t id : q.MentionedConcepts()) ids.insert(id);
  }
  return std::vector<uint32_t>(ids.begin(), ids.end());
}

std::vector<uint32_t> Ucrpq::MentionedRoles() const {
  std::set<uint32_t> ids;
  for (const auto& q : disjuncts_) {
    for (uint32_t id : q.MentionedRoles()) ids.insert(id);
  }
  return std::vector<uint32_t>(ids.begin(), ids.end());
}

std::string Ucrpq::ToString(const Vocabulary& vocab) const {
  std::string out;
  for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i) out += " ; ";
    out += disjuncts_[i].ToString(vocab);
  }
  return out;
}

}  // namespace gqc
