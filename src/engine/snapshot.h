#ifndef GQC_ENGINE_SNAPSHOT_H_
#define GQC_ENGINE_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "src/core/result.h"
#include "src/engine/engine_core.h"

namespace gqc {

/// Disk persistence for cache warmth (DESIGN.md §12).
///
/// A snapshot stores ONLY the canonical context keys (schema texts and
/// (schema, Q) text pairs) — never the computed values. Warm-start replays
/// the keys through the ordinary context builders, so every warmed entry is
/// recomputed from scratch by the same code a live request would run. A
/// corrupt or adversarial snapshot therefore cannot alter any verdict: the
/// worst it can do is fail verification (rejected below) or warm an
/// irrelevant key (wasted work, bounded by the cache budget).
///
/// Wire format (little-endian):
///   magic   8 bytes  "GQCSNAP1"
///   u32     number of schema records
///   record* u32 byte length + raw bytes (schema text)
///   u32     number of query records
///   record* two length-prefixed records (schema text, Q text)
///   u64     FNV-1a fingerprint of every byte above
/// Decoding verifies the magic, every length (no record may run past the
/// buffer), and the trailing fingerprint; any mismatch rejects the whole
/// snapshot with an error (never a partial load).

/// Serializes keys into the snapshot wire format.
std::string EncodeSnapshot(const EngineCore::SnapshotKeys& keys);

/// Parses and verifies a snapshot; errors on any structural or fingerprint
/// mismatch.
Result<EngineCore::SnapshotKeys> DecodeSnapshot(std::string_view bytes);

/// Exports `core`'s context keys to `path` (overwrites). Errors on I/O
/// failure.
Result<bool> SaveSnapshot(const EngineCore& core, const std::string& path);

/// Loads, verifies, and warm-starts `core` from `path`. Returns the number
/// of contexts loaded; errors on I/O failure or a corrupt snapshot (the
/// core is left untouched in that case, and stats().warmstart_rejected is
/// bumped when `count_rejected` is true).
Result<uint64_t> LoadSnapshot(EngineCore* core, const std::string& path,
                              bool count_rejected = true);

}  // namespace gqc

#endif  // GQC_ENGINE_SNAPSHOT_H_
