#include "src/engine/engine.h"

#include <utility>

namespace gqc {

Engine::Engine(EngineOptions options) : core_(std::move(options)) {}

BatchOutcome Engine::DecideOne(const BatchItem& item) {
  EngineCore::ControlHandle handle;
  EngineCore::BatchControl control = core_.StartControl(&handle);
  BatchOutcome outcome = core_.DecidePair(item, control);
  core_.FinishControl(handle);
  return outcome;
}

std::vector<BatchOutcome> Engine::DecideBatch(const std::vector<BatchItem>& items) {
  PhaseTimer timer(&core_.stats().batch_wall_ns);
  EngineCore::ControlHandle handle;
  EngineCore::BatchControl control = core_.StartControl(&handle);
  std::vector<BatchOutcome> outcomes(items.size());
  core_.pool().ParallelFor(items.size(), [&](std::size_t i) {
    outcomes[i] = core_.DecidePair(items[i], control);
  });
  core_.FinishControl(handle);
  return outcomes;
}

}  // namespace gqc
