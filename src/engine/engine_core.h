#ifndef GQC_ENGINE_ENGINE_CORE_H_
#define GQC_ENGINE_ENGINE_CORE_H_

#include <chrono>
#include <list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/automata/compile_cache.h"
#include "src/core/containment.h"
#include "src/core/factboard.h"
#include "src/core/lifecycle.h"
#include "src/entailment/compile_memo.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"

namespace gqc {

/// Options for the batch containment engine.
struct EngineOptions {
  /// Total threads deciding pairs (callers included); 0 means
  /// hardware_concurrency, 1 means fully sequential (no pool overhead).
  std::size_t threads = 1;
  /// Per-pair pipeline options. The `stats` field is ignored — the engine
  /// threads its own PipelineStats through every phase. The `strategies`
  /// list (empty = mode default) selects the strategy order in sequential
  /// mode and the racing pool in portfolio mode.
  ContainmentOptions containment;
  /// Also parallelize across the disjuncts of one P (when its Tp closure is
  /// precomputed, so disjunct decisions are read-only on the pair state).
  bool parallel_disjuncts = true;
  /// Portfolio mode: decide each disjunct by racing the applicable
  /// strategies on the pool (first definite verdict cancels the rest) with
  /// fact sharing through the engine's SharedFactBoard, instead of running
  /// them in sequential priority order. Definite verdicts are identical to
  /// sequential mode wherever sequential mode reaches one (each racer gets
  /// a fresh per-strategy budget, so the portfolio can only answer more);
  /// wall-clock and Unknown attributions differ.
  bool portfolio = false;
  /// Wall-clock deadline for one whole DecideBatch call (0 = none). Pinned
  /// when the batch starts; pairs reaching the front of the queue after it
  /// passes are preempted (Unknown, no searches run). Each pair's effective
  /// deadline is the tighter of this and `containment.resources.deadline_ms`.
  double batch_timeout_ms = 0;
};

/// One containment question, as text. `schema_text` uses the concept syntax
/// (lines with "<=") or the PG-Schema surface syntax, auto-detected; empty
/// means the empty schema. Queries use the UC2RPQ syntax (src/query/parser.h).
struct BatchItem {
  std::string id;
  std::string schema_text;
  std::string p_text;
  std::string q_text;
};

/// The engine's answer for one item. `ok` is false on parse/setup failures
/// (`error` says why); otherwise `verdict` and `attr` are exactly the
/// checker-level ContainmentResult surface (method, winning strategy, note,
/// kUnknown details — one shared Attribution struct, so the two cannot
/// drift), and `countermodel_nodes` is the size of the returned countermodel
/// (or central part), 0 when there is none.
struct BatchOutcome {
  std::string id;
  bool ok = false;
  std::string error;
  Verdict verdict = Verdict::kUnknown;
  Attribution attr;
  uint64_t countermodel_nodes = 0;
  double wall_ms = 0.0;
};

/// The per-pair decision core of the batch engine: context assembly,
/// strategy/portfolio dispatch, guards, cancellation, stats — everything
/// *below* batch orchestration. The Engine facade (src/engine/engine.h)
/// layers batch fan-out on top; the serving layer (src/serve) layers
/// sessions and admission on top of the same core. Both reuse the one
/// decision path, so a pair's verdict cannot depend on which front end
/// asked (DecidePair is a pure function of the item texts given the pinned
/// options; see the determinism contract on Engine).
///
/// Shared memoized state, all keyed by exact input text (or exact canonical
/// serializations below the text level):
///   - schema contexts: schema text -> (vocabulary, normalized TBox)
///   - query contexts: (schema text, Q text) -> (vocabulary, parsed Q, and —
///     when the §3 reduction applies to (T, Q) — the Tp(T, Q̂) closure)
///   - a regex -> semiautomaton compile cache shared across all parses
///   - a compile memo for the per-solve word-mask compilations
///   - the portfolio fact board
///
/// Lifecycle (DESIGN.md §12): every table above is bounded by
/// SetCacheBudget, evictable via Evict(pressure), and measurable via
/// retained_bytes(). Context keys can be exported (ExportSnapshotKeys) and
/// re-imported (WarmStart) to persist cache warmth across process restarts;
/// only *keys* are persisted — values are recomputed on load, so a snapshot
/// can never alter a verdict.
class EngineCore {
 public:
  explicit EngineCore(EngineOptions options = {});

  /// Schema text -> parsed + normalized schema in its own vocabulary.
  struct SchemaContext {
    Vocabulary vocab;
    NormalTBox tbox;
    std::string error;  // non-empty: parse failed, other fields invalid
    /// Rebuilt from a warm-start snapshot (hits count as warmstart_hits).
    bool warm = false;
  };

  /// (schema text, Q text) -> Q parsed in a copy of the schema vocabulary,
  /// plus the precomputed Tp closure when the reduction applies to (T, Q).
  struct QueryContext {
    std::shared_ptr<const SchemaContext> schema;
    Vocabulary vocab;
    Ucrpq q;
    /// Reduction would run for some disjunct of some P (participation
    /// constraints present, Q in a supported fragment).
    bool reduction_applicable = false;
    std::shared_ptr<const TpClosure> closure;  // null if N/A or failed
    std::string error;  // non-empty: parse failed, other fields invalid
    bool warm = false;
  };

  /// Per-batch (or per-request) resource control: the deadline pinned at
  /// start plus the cancellation token CancelAll reaches.
  struct BatchControl {
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    CancellationToken cancel;
  };

  using ControlHandle = std::list<CancellationToken>::iterator;

  /// Decides one pair under `control`. Callable concurrently with itself.
  BatchOutcome DecidePair(const BatchItem& item, const BatchControl& control);

  /// Pins a deadline from options().batch_timeout_ms and registers the
  /// control's token with CancelAll; `handle` receives the registration to
  /// pass to FinishControl.
  BatchControl StartControl(ControlHandle* handle) GQC_EXCLUDES(cancel_mu_);
  /// Same, but with an explicit wall-clock budget for this control
  /// (serving: per-request deadlines). timeout_ms <= 0 means
  /// options().batch_timeout_ms.
  BatchControl StartControl(double timeout_ms, ControlHandle* handle)
      GQC_EXCLUDES(cancel_mu_);
  void FinishControl(ControlHandle handle) GQC_EXCLUDES(cancel_mu_);

  /// Cancels every in-flight control: their pairs unwind to
  /// Unknown("cancelled") at the next guard poll. Sticky per control only —
  /// controls started after the call are unaffected. Safe from any thread.
  void CancelAll() GQC_EXCLUDES(cancel_mu_);

  std::shared_ptr<const SchemaContext> GetSchemaContext(
      const std::string& schema_text) GQC_EXCLUDES(ctx_mu_);
  /// `guard` (optional) governs the closure build on a context miss; a
  /// context whose closure build tripped the guard reflects that caller's
  /// budget, not (schema, Q), and is returned uncached.
  std::shared_ptr<const QueryContext> GetQueryContext(
      const std::string& schema_text, const std::string& q_text,
      ResourceGuard* guard) GQC_EXCLUDES(ctx_mu_);

  /// Bounds every memoized table (context maps, regex cache, fact board,
  /// compile memo) — the budget applies to each table separately, not to
  /// their sum. 0 = unbounded.
  void SetCacheBudget(const CacheBudget& budget);

  /// Drops ceil(size * pressure) lowest retain-score entries from every
  /// table and shrinks the backing arrays. Returns entries dropped; records
  /// lifecycle counters on stats().
  std::size_t Evict(double pressure);

  /// Summed resident-size estimates across every memoized table.
  std::size_t retained_bytes() const;

  /// Canonical keys of the memoized contexts, for snapshot persistence
  /// (src/engine/snapshot.h). Deterministic order (sorted by key text).
  struct SnapshotKeys {
    std::vector<std::string> schemas;
    /// (schema text, Q text) pairs.
    std::vector<std::pair<std::string, std::string>> queries;
  };
  SnapshotKeys ExportSnapshotKeys() const GQC_EXCLUDES(ctx_mu_);

  /// Rebuilds contexts for the given keys (values recomputed from scratch —
  /// a snapshot carries no values, so warm-start cannot alter verdicts) and
  /// marks them warm. Returns the number of contexts loaded; already-present
  /// contexts are left untouched and not counted.
  std::size_t WarmStart(const SnapshotKeys& keys);

  /// Total threads the core decides pairs with.
  std::size_t threads() const { return pool_.concurrency(); }
  ThreadPool& pool() { return pool_; }
  RegexCompileCache& regex_cache() { return regex_cache_; }
  const EngineOptions& options() const { return options_; }

  PipelineStats& stats() { return stats_; }
  const PipelineStats& stats() const { return stats_; }
  /// Refreshes the lifecycle gauges/memo counters, then exports the stats.
  std::string StatsJson();

  /// Copies the compile-memo counters and the retained-bytes gauge into
  /// stats() (they live in their owners between exports).
  void RefreshLifecycleGauges();

  /// Drops memoized contexts and zeroes the stats (for measurement runs).
  void ResetState();

 private:
  std::shared_ptr<const SchemaContext> BuildSchemaContext(
      const std::string& schema_text, bool warm);
  std::shared_ptr<const QueryContext> BuildQueryContext(
      const std::string& schema_text, const std::string& q_text,
      ResourceGuard* guard, bool warm);
  std::size_t EnforceCtxBudgetLocked() GQC_REQUIRES(ctx_mu_);

  EngineOptions options_;
  PipelineStats stats_;
  ThreadPool pool_;
  RegexCompileCache regex_cache_;
  /// Portfolio-mode fact exchange: countermodels and definite verdicts
  /// shared across strategies, disjuncts, and pairs (cleared by ResetState).
  SharedFactBoard facts_;
  /// Per-solve compiled-artifact memo, wired into every downstream search
  /// through EngineLimits (unless the caller supplied their own).
  CompiledScopeMemo compile_memo_;

  /// Guards the memoized context maps; values are computed outside the lock
  /// (a racing double-miss builds the identical context; first insert wins).
  /// Mutable so const inspection (retained_bytes, ExportSnapshotKeys) locks.
  mutable Mutex ctx_mu_{kLockRankEngineContext, "engine-ctx"};
  CacheBudget ctx_budget_ GQC_GUARDED_BY(ctx_mu_);
  uint64_t ctx_tick_ GQC_GUARDED_BY(ctx_mu_) = 0;
  FlatMap<FpKey, Retained<std::shared_ptr<const SchemaContext>>, FpKeyHash>
      schema_ctxs_ GQC_GUARDED_BY(ctx_mu_);
  FlatMap<FpKey, Retained<std::shared_ptr<const QueryContext>>, FpKeyHash>
      query_ctxs_ GQC_GUARDED_BY(ctx_mu_);

  /// Guards the registry of in-flight control cancellation tokens (the list
  /// CancelAll walks); the tokens themselves are wait-free once copied out.
  Mutex cancel_mu_{kLockRankEngineCancel, "engine-cancel"};
  std::list<CancellationToken> active_controls_ GQC_GUARDED_BY(cancel_mu_);
};

/// Parses one JSON-lines batch item: a flat object with string fields
/// "id", "schema", "p", "q" ("id" and "schema" optional).
Result<BatchItem> ParseBatchItemJson(std::string_view json_line);

/// Serializes an outcome as one JSON line (no trailing newline).
std::string OutcomeToJson(const BatchOutcome& outcome);

}  // namespace gqc

#endif  // GQC_ENGINE_ENGINE_CORE_H_
