#include "src/engine/snapshot.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/util/fingerprint.h"

namespace gqc {

namespace {

constexpr std::string_view kMagic = "GQCSNAP1";

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendRecord(std::string* out, std::string_view text) {
  AppendU32(out, static_cast<uint32_t>(text.size()));
  out->append(text);
}

/// Cursor over the snapshot bytes; every read checks bounds so a truncated
/// or length-corrupted snapshot fails cleanly instead of reading past the
/// buffer.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* v) {
    if (bytes_.size() - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (bytes_.size() - pos_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadRecord(std::string* text) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (bytes_.size() - pos_ < len) return false;
    text->assign(bytes_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  std::size_t pos() const { return pos_; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string EncodeSnapshot(const EngineCore::SnapshotKeys& keys) {
  std::string out;
  out.append(kMagic);
  AppendU32(&out, static_cast<uint32_t>(keys.schemas.size()));
  // lint: bounded(linear in the snapshot keys)
  for (const std::string& s : keys.schemas) AppendRecord(&out, s);
  AppendU32(&out, static_cast<uint32_t>(keys.queries.size()));
  // lint: bounded(linear in the snapshot keys)
  for (const auto& [schema, q] : keys.queries) {
    AppendRecord(&out, schema);
    AppendRecord(&out, q);
  }
  AppendU64(&out, Fnv1a64(out));
  return out;
}

Result<EngineCore::SnapshotKeys> DecodeSnapshot(std::string_view bytes) {
  using R = Result<EngineCore::SnapshotKeys>;
  if (bytes.size() < kMagic.size() + 8 ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    return R::Error("snapshot: bad magic (not a GQCSNAP1 snapshot)");
  }
  // Verify the trailing fingerprint over everything before it, FIRST: a
  // corrupt body must never even be parsed into keys.
  std::string_view body = bytes.substr(0, bytes.size() - 8);
  Reader tail(bytes.substr(bytes.size() - 8));
  uint64_t stored_fp = 0;
  (void)tail.ReadU64(&stored_fp);
  if (Fnv1a64(body) != stored_fp) {
    return R::Error("snapshot: fingerprint mismatch (corrupt or truncated)");
  }

  Reader r(body.substr(kMagic.size()));
  EngineCore::SnapshotKeys keys;
  uint32_t n_schemas = 0;
  if (!r.ReadU32(&n_schemas)) return R::Error("snapshot: truncated schema count");
  keys.schemas.reserve(n_schemas);
  // lint: bounded(linear in the snapshot records)
  for (uint32_t i = 0; i < n_schemas; ++i) {
    std::string s;
    if (!r.ReadRecord(&s)) return R::Error("snapshot: truncated schema record");
    keys.schemas.push_back(std::move(s));
  }
  uint32_t n_queries = 0;
  if (!r.ReadU32(&n_queries)) return R::Error("snapshot: truncated query count");
  keys.queries.reserve(n_queries);
  // lint: bounded(linear in the snapshot records)
  for (uint32_t i = 0; i < n_queries; ++i) {
    std::string schema;
    std::string q;
    if (!r.ReadRecord(&schema) || !r.ReadRecord(&q)) {
      return R::Error("snapshot: truncated query record");
    }
    keys.queries.emplace_back(std::move(schema), std::move(q));
  }
  if (r.pos() != body.size() - kMagic.size()) {
    return R::Error("snapshot: trailing garbage after records");
  }
  return keys;
}

Result<bool> SaveSnapshot(const EngineCore& core, const std::string& path) {
  std::string bytes = EncodeSnapshot(core.ExportSnapshotKeys());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Result<bool>::Error("snapshot: cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Result<bool>::Error("snapshot: write failed for " + path);
  return true;
}

Result<uint64_t> LoadSnapshot(EngineCore* core, const std::string& path,
                              bool count_rejected) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Result<uint64_t>::Error("snapshot: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = std::move(buf).str();
  auto keys = DecodeSnapshot(bytes);
  if (!keys.ok()) {
    if (count_rejected) {
      core->stats().warmstart_rejected.fetch_add(1, std::memory_order_relaxed);
    }
    return Result<uint64_t>::Error(keys.error());
  }
  return static_cast<uint64_t>(core->WarmStart(keys.value()));
}

}  // namespace gqc
