#include "src/engine/engine_core.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <utility>

#include "src/core/portfolio.h"
#include "src/core/validate.h"
#include "src/dl/concept_parser.h"
#include "src/dl/normalize.h"
#include "src/query/parser.h"
#include "src/schema/schema_parser.h"
#include "src/util/fingerprint.h"
#include "src/util/invariant.h"
#include "src/util/json.h"

namespace gqc {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

uint64_t NsSince(std::chrono::steady_clock::time_point start) {
  auto elapsed = std::chrono::steady_clock::now() - start;
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  return ns <= 0 ? 1 : static_cast<uint64_t>(ns);
}

std::size_t VocabBytes(const Vocabulary& vocab) {
  // Interned name strings + id tables, at a flat per-symbol rate.
  return 48 * (vocab.concept_count() + vocab.role_count());
}

}  // namespace

EngineCore::EngineCore(EngineOptions options)
    : options_(std::move(options)), pool_(options_.threads) {
  // Wire the core-lifetime compile memo into every downstream search (the
  // ContainmentCheckers DecidePair creates are per pair, so a per-checker
  // memo would never see a second solve). Callers may pre-wire their own.
  if (options_.containment.countermodel.limits.compile_memo == nullptr) {
    options_.containment.countermodel.limits.compile_memo = &compile_memo_;
  }
}

std::shared_ptr<const EngineCore::SchemaContext> EngineCore::BuildSchemaContext(
    const std::string& schema_text, bool warm) {
  auto ctx = std::make_shared<SchemaContext>();
  ctx->warm = warm;
  Result<TBox> parsed = [&] {
    PhaseTimer timer(&stats_.parse_ns);
    std::string_view trimmed = Trim(schema_text);
    if (trimmed.empty() || trimmed == "-") return Result<TBox>(TBox{});
    // Same auto-detection as the CLI: concept syntax has "<=" inclusions,
    // the PG-Schema surface syntax does not.
    if (schema_text.find("<=") != std::string::npos) {
      return ParseTBox(schema_text, &ctx->vocab);
    }
    return ParseSchema(schema_text, &ctx->vocab);
  }();
  if (!parsed.ok()) {
    ctx->error = "schema: " + parsed.error();
  } else {
    PhaseTimer timer(&stats_.normalize_ns);
    ctx->tbox = Normalize(parsed.value(), &ctx->vocab);
  }
  return ctx;
}

std::shared_ptr<const EngineCore::SchemaContext> EngineCore::GetSchemaContext(
    const std::string& schema_text) {
  FpKey key(schema_text);
  {
    MutexLock lock(&ctx_mu_);
    ++ctx_tick_;
    if (auto* hit = schema_ctxs_.Find(key)) {
      hit->meta.touch = ctx_tick_;
      stats_.schema_ctx_hits.fetch_add(1, std::memory_order_relaxed);
      if (hit->value->warm) {
        stats_.warmstart_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return hit->value;
    }
  }
  stats_.schema_ctx_misses.fetch_add(1, std::memory_order_relaxed);

  // Built outside the lock: on a racing double-miss both threads build the
  // identical context (it is a pure function of the text) and the first
  // insert wins, so determinism is unaffected.
  auto build_start = std::chrono::steady_clock::now();
  auto ctx = BuildSchemaContext(schema_text, /*warm=*/false);
  uint64_t cost = NsSince(build_start);
  std::size_t bytes = schema_text.size() + 96 * ctx->tbox.size() +
                      VocabBytes(ctx->vocab) + 128;

  MutexLock lock(&ctx_mu_);
  auto [slot, inserted] = schema_ctxs_.TryEmplace(std::move(key));
  if (!inserted) return slot->value;
  slot->value = ctx;
  slot->meta = {ctx_tick_, cost, bytes};
  // Enforcement may evict this very entry and rehash the table; `slot` is
  // dead after the call, so return the local ref.
  EnforceCtxBudgetLocked();
  return ctx;
}

std::shared_ptr<const EngineCore::QueryContext> EngineCore::BuildQueryContext(
    const std::string& schema_text, const std::string& q_text,
    ResourceGuard* guard, bool warm) {
  auto schema_ctx = GetSchemaContext(schema_text);
  auto ctx = std::make_shared<QueryContext>();
  ctx->warm = warm;
  ctx->schema = schema_ctx;
  if (!schema_ctx->error.empty()) {
    ctx->error = schema_ctx->error;
    return ctx;
  }
  // Layer Q's symbols on a private copy of the schema vocabulary; every
  // pair against this (T, Q) then copies the result, so symbol ids are a
  // deterministic function of (schema text, Q text) alone.
  ctx->vocab = schema_ctx->vocab;
  Result<Ucrpq> q = [&] {
    PhaseTimer timer(&stats_.parse_ns);
    return ParseUcrpq(q_text, &ctx->vocab, &regex_cache_, &stats_);
  }();
  if (!q.ok()) {
    ctx->error = "q: " + q.error();
  } else {
    ctx->q = std::move(q).value();
    const NormalTBox& tbox = schema_ctx->tbox;
    bool alcq_case = !tbox.UsesInverse();
    bool alci_case = !tbox.UsesCounting() && ctx->q.IsOneWay();
    ctx->reduction_applicable = !options_.containment.disable_reduction &&
                                tbox.HasParticipationConstraints() &&
                                ctx->q.IsSimple() && ctx->q.IsConnected() &&
                                (alcq_case || alci_case);
    if (ctx->reduction_applicable) {
      ReductionOptions ropts;
      ropts.countermodel = options_.containment.countermodel;
      ropts.countermodel.limits.guard = guard;
      ropts.factorize = options_.containment.factorize;
      ropts.factorize.guard = guard;
      ropts.stats = &stats_;
      stats_.closure_misses.fetch_add(1, std::memory_order_relaxed);
      auto closure = ComputeTpClosure(ctx->q, tbox, alcq_case, &ctx->vocab, ropts);
      if (closure.ok()) {
        ctx->closure =
            std::make_shared<const TpClosure>(std::move(closure).value());
      }
      // On failure the closure stays null; pairs fall back to the checker's
      // sequential path, which reproduces the same failure note.
    }
  }
  // Vocabulary layering: Q's context must extend the schema context (same
  // ids for every schema symbol, new ids appended), or disjunct decisions
  // sharing the closure would disagree about symbol identity.
  GQC_DCHECK(ctx->vocab.concept_count() >= schema_ctx->vocab.concept_count());
  GQC_DCHECK(ctx->vocab.role_count() >= schema_ctx->vocab.role_count());
  return ctx;
}

std::shared_ptr<const EngineCore::QueryContext> EngineCore::GetQueryContext(
    const std::string& schema_text, const std::string& q_text,
    ResourceGuard* guard) {
  std::string key_text = JoinKeyParts(schema_text, q_text);
  // Pair verdicts are a pure function of (schema text, Q text) given the
  // engine's pinned options; the composite key must round-trip to exactly
  // those parts or two distinct contexts could alias.
  GQC_AUDIT(ValidateCacheKey(key_text, {schema_text, q_text}));
  FpKey key(std::move(key_text));
  {
    MutexLock lock(&ctx_mu_);
    ++ctx_tick_;
    if (auto* hit = query_ctxs_.Find(key)) {
      hit->meta.touch = ctx_tick_;
      stats_.query_ctx_hits.fetch_add(1, std::memory_order_relaxed);
      if (hit->value->closure != nullptr) {
        stats_.closure_hits.fetch_add(1, std::memory_order_relaxed);
      }
      if (hit->value->warm) {
        stats_.warmstart_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return hit->value;
    }
  }
  stats_.query_ctx_misses.fetch_add(1, std::memory_order_relaxed);

  auto build_start = std::chrono::steady_clock::now();
  auto ctx = BuildQueryContext(schema_text, q_text, guard, /*warm=*/false);
  uint64_t cost = NsSince(build_start);

  // A context whose closure build tripped the caller's guard reflects that
  // caller's budget (or the batch deadline), not (schema, Q); caching it
  // would degrade later, better-funded pairs. Return it uncached.
  if (guard != nullptr && guard->exhausted()) return ctx;

  std::size_t bytes = key.text().size() + VocabBytes(ctx->vocab) + 256;
  if (ctx->closure != nullptr) {
    bytes += 8 * ctx->closure->engine_masks.size() + 1024;
  }
  MutexLock lock(&ctx_mu_);
  auto [slot, inserted] = query_ctxs_.TryEmplace(std::move(key));
  if (!inserted) return slot->value;
  slot->value = ctx;
  slot->meta = {ctx_tick_, cost, bytes};
  // Enforcement may evict this very entry and rehash; `slot` is dead after.
  EnforceCtxBudgetLocked();
  return ctx;
}

BatchOutcome EngineCore::DecidePair(const BatchItem& item,
                                    const BatchControl& control) {
  auto start = std::chrono::steady_clock::now();
  BatchOutcome out;
  out.id = item.id;

  // Effective pair deadline: the tighter of the per-pair budget deadline
  // (relative to now) and the batch deadline (absolute, pinned at batch
  // start). Pinned once here and shared by every guard of this pair; step
  // and memory budgets stay per disjunct.
  ResourceBudget budget = options_.containment.resources;
  budget.cancel = control.cancel;
  bool has_deadline = control.has_deadline;
  auto deadline = control.deadline;
  if (budget.deadline_ms > 0) {
    auto pair_deadline =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(budget.deadline_ms));
    if (!has_deadline || pair_deadline < deadline) deadline = pair_deadline;
    has_deadline = true;
  }

  // Preemption: a cancelled batch or an already-passed deadline skips the
  // pair entirely — no parsing, no searches — but still yields a (tallied)
  // Unknown outcome so completed batches always account for every item.
  bool cancelled = control.cancel.cancelled();
  if (cancelled || (has_deadline && start >= deadline)) {
    out.ok = true;
    out.verdict = Verdict::kUnknown;
    out.attr.unknown.emplace();
    out.attr.unknown->reason = cancelled ? "cancelled" : "deadline";
    out.attr.unknown->phase = GuardPhaseName(GuardPhase::kSetup);
    out.attr.note = cancelled ? "preempted: batch cancelled before decision"
                              : "preempted: deadline passed before decision";
    stats_.RecordPreempted();
    ContainmentResult preempted;
    preempted.verdict = Verdict::kUnknown;
    TallyPair(&stats_, preempted);
    out.wall_ms = MsSince(start);
    return out;
  }

  // The setup guard spans context assembly (including a Tp-closure build on
  // a context miss); each disjunct decision below gets its own fresh guard.
  ResourceGuard setup_guard(budget, has_deadline, deadline);
  std::shared_ptr<const QueryContext> qctx =
      GetQueryContext(item.schema_text, item.q_text, &setup_guard);
  if (setup_guard.exhausted()) stats_.RecordGuard(setup_guard);
  if (!qctx->error.empty()) {
    out.error = qctx->error;
    stats_.pairs_error.fetch_add(1, std::memory_order_relaxed);
    out.wall_ms = MsSince(start);
    return out;
  }

  // Per-pair vocabulary: a copy of the (schema, Q) context layer; P's
  // symbols intern into the copy, never into shared state.
  Vocabulary vocab = qctx->vocab;
  Result<Ucrpq> p = [&] {
    PhaseTimer timer(&stats_.parse_ns);
    return ParseUcrpq(item.p_text, &vocab, &regex_cache_, &stats_);
  }();
  if (!p.ok()) {
    out.error = "p: " + p.error();
    stats_.pairs_error.fetch_add(1, std::memory_order_relaxed);
    out.wall_ms = MsSince(start);
    return out;
  }

  ContainmentOptions copts = options_.containment;
  copts.stats = &stats_;
  ContainmentChecker checker(&vocab, copts);
  const NormalTBox& tbox = qctx->schema->tbox;
  const TpClosure* closure = qctx->closure.get();
  const std::vector<Crpq>& disjuncts = p.value().Disjuncts();

  std::vector<ContainmentResult> per_disjunct;
  if (options_.portfolio) {
    // Portfolio mode: each disjunct is decided by racing the applicable
    // strategies (src/core/portfolio.h), sharing facts through the engine
    // board. Every strategy is read-only on the pair vocabulary
    // (vocab_shared; the closure-less reduction gates itself out), so
    // disjunct- and strategy-level parallelism both nest freely on the pool.
    const FpKey scope_key(JoinKeyParts(item.schema_text, item.q_text));
    const ContainmentOptions& copts_ref = checker.options();
    auto decide_one = [&](std::size_t i) {
      StrategyContext sctx;
      sctx.p = &disjuncts[i];
      sctx.q = &qctx->q;
      sctx.schema = &tbox;
      sctx.closure = closure;
      sctx.vocab = &vocab;
      sctx.caches = checker.caches();
      sctx.options = &copts_ref;
      sctx.stats = &stats_;
      sctx.vocab_shared = true;
      PortfolioOptions popts;
      popts.strategies = copts_ref.strategies;
      popts.pool = &pool_;
      popts.board = &facts_;
      popts.scope_key = scope_key;
      popts.disjunct_key =
          FpKey(JoinKeyParts(scope_key.text(), disjuncts[i].ToString(vocab)));
      popts.shared_concept_limit = qctx->vocab.concept_count();
      popts.shared_role_limit = qctx->vocab.role_count();
      popts.budget = budget;
      popts.has_deadline = has_deadline;
      popts.deadline = deadline;
      per_disjunct[i] = RunPortfolio(sctx, popts);
    };
    per_disjunct.resize(disjuncts.size());
    if (options_.parallel_disjuncts && disjuncts.size() > 1 &&
        pool_.concurrency() > 1) {
      pool_.ParallelFor(disjuncts.size(), decide_one);
    } else {
      for (std::size_t i = 0; i < disjuncts.size(); ++i) {
        decide_one(i);
        if (per_disjunct[i].verdict == Verdict::kNotContained) {
          per_disjunct.resize(i + 1);
          break;
        }
      }
    }
    ContainmentResult combined =
        ContainmentChecker::Combine(std::move(per_disjunct));
    TallyPair(&stats_, combined);
    out.ok = true;
    out.verdict = combined.verdict;
    out.attr = std::move(combined.attr);
    if (combined.countermodel.has_value()) {
      out.countermodel_nodes = combined.countermodel->NodeCount();
    } else if (combined.central_part.has_value()) {
      out.countermodel_nodes = combined.central_part->NodeCount();
    }
    out.wall_ms = MsSince(start);
    return out;
  }
  // Disjunct-level parallelism requires every DecideDisjunct call to be
  // read-only on the shared pair vocabulary, which holds exactly when the
  // closure is precomputed (or the reduction cannot trigger for this Q).
  bool parallel = options_.parallel_disjuncts && disjuncts.size() > 1 &&
                  pool_.concurrency() > 1 &&
                  (closure != nullptr || !qctx->reduction_applicable);
  if (parallel) {
    per_disjunct.resize(disjuncts.size());
    // One guard per disjunct (fresh step/memory counters, shared absolute
    // deadline + token) keeps budget verdicts independent of scheduling.
    std::vector<std::unique_ptr<ResourceGuard>> guards;
    guards.reserve(disjuncts.size());
    for (std::size_t i = 0; i < disjuncts.size(); ++i) {
      guards.push_back(
          std::make_unique<ResourceGuard>(budget, has_deadline, deadline));
    }
    pool_.ParallelFor(disjuncts.size(), [&](std::size_t i) {
      per_disjunct[i] = checker.DecideDisjunct(disjuncts[i], qctx->q, tbox,
                                               closure, guards[i].get());
    });
    for (const auto& guard : guards) stats_.RecordGuard(*guard);
  } else {
    per_disjunct.reserve(disjuncts.size());
    for (const Crpq& d : disjuncts) {
      ResourceGuard guard(budget, has_deadline, deadline);
      per_disjunct.push_back(
          checker.DecideDisjunct(d, qctx->q, tbox, closure, &guard));
      stats_.RecordGuard(guard);
      if (per_disjunct.back().verdict == Verdict::kNotContained) break;
    }
  }
  ContainmentResult combined = ContainmentChecker::Combine(std::move(per_disjunct));
  TallyPair(&stats_, combined);

  out.ok = true;
  out.verdict = combined.verdict;
  out.attr = std::move(combined.attr);
  if (combined.countermodel.has_value()) {
    out.countermodel_nodes = combined.countermodel->NodeCount();
  } else if (combined.central_part.has_value()) {
    out.countermodel_nodes = combined.central_part->NodeCount();
  }
  out.wall_ms = MsSince(start);
  return out;
}

EngineCore::BatchControl EngineCore::StartControl(ControlHandle* handle) {
  return StartControl(options_.batch_timeout_ms, handle);
}

EngineCore::BatchControl EngineCore::StartControl(double timeout_ms,
                                                  ControlHandle* handle) {
  if (timeout_ms <= 0) timeout_ms = options_.batch_timeout_ms;
  BatchControl control;
  if (timeout_ms > 0) {
    control.has_deadline = true;
    control.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(timeout_ms));
  }
  MutexLock lock(&cancel_mu_);
  *handle = active_controls_.insert(active_controls_.end(), control.cancel);
  return control;
}

void EngineCore::FinishControl(ControlHandle handle) {
  MutexLock lock(&cancel_mu_);
  active_controls_.erase(handle);
}

void EngineCore::CancelAll() {
  MutexLock lock(&cancel_mu_);
  for (CancellationToken& token : active_controls_) token.Cancel();
}

void EngineCore::SetCacheBudget(const CacheBudget& budget) {
  regex_cache_.SetBudget(budget);
  facts_.SetBudget(budget);
  compile_memo_.SetBudget(budget);
  MutexLock lock(&ctx_mu_);
  ctx_budget_ = budget;
  EnforceCtxBudgetLocked();
}

std::size_t EngineCore::EnforceCtxBudgetLocked() {
  if (!ctx_budget_.bounded()) return 0;
  std::size_t entries = schema_ctxs_.size() + query_ctxs_.size();
  std::size_t bytes = RetainedBytes(schema_ctxs_) + RetainedBytes(query_ctxs_);
  std::size_t drop = OverBudgetDropCount(ctx_budget_, entries, bytes);
  if (drop == 0) return 0;
  // Query contexts dominate (closures) and depend on schema contexts, so
  // evict them first; schema contexts go only when that is not enough.
  std::size_t from_queries = std::min(drop, query_ctxs_.size());
  std::size_t bytes_freed = 0;
  std::size_t freed = EvictLowestScore(&query_ctxs_, ctx_tick_, from_queries,
                                       &bytes_freed);
  freed += EvictLowestScore(&schema_ctxs_, ctx_tick_, drop - from_queries,
                            &bytes_freed);
  stats_.cache_evictions.fetch_add(freed, std::memory_order_relaxed);
  stats_.cache_evicted_bytes.fetch_add(bytes_freed, std::memory_order_relaxed);
  return freed;
}

std::size_t EngineCore::Evict(double pressure) {
  std::size_t freed = 0;
  freed += regex_cache_.Evict(pressure, &stats_);
  freed += facts_.Evict(pressure, &stats_);
  std::size_t memo_freed = compile_memo_.Evict(pressure);
  stats_.cache_evictions.fetch_add(memo_freed, std::memory_order_relaxed);
  freed += memo_freed;
  {
    MutexLock lock(&ctx_mu_);
    std::size_t bytes_freed = 0;
    std::size_t n = 0;
    n += EvictLowestScore(&schema_ctxs_, ctx_tick_,
                          EvictionCount(schema_ctxs_.size(), pressure),
                          &bytes_freed);
    n += EvictLowestScore(&query_ctxs_, ctx_tick_,
                          EvictionCount(query_ctxs_.size(), pressure),
                          &bytes_freed);
    stats_.cache_evictions.fetch_add(n, std::memory_order_relaxed);
    stats_.cache_evicted_bytes.fetch_add(bytes_freed, std::memory_order_relaxed);
    freed += n;
  }
  RefreshLifecycleGauges();
  return freed;
}

std::size_t EngineCore::retained_bytes() const {
  std::size_t total = regex_cache_.retained_bytes() + facts_.retained_bytes() +
                      compile_memo_.retained_bytes();
  MutexLock lock(&ctx_mu_);
  return total + RetainedBytes(schema_ctxs_) + RetainedBytes(query_ctxs_);
}

EngineCore::SnapshotKeys EngineCore::ExportSnapshotKeys() const {
  SnapshotKeys keys;
  {
    MutexLock lock(&ctx_mu_);
    schema_ctxs_.ForEach(
        [&](const FpKey& k, const Retained<std::shared_ptr<const SchemaContext>>& r) {
          // Contexts that failed to parse are not worth re-warming.
          if (r.value->error.empty()) keys.schemas.push_back(k.text());
        });
    query_ctxs_.ForEach(
        [&](const FpKey& k, const Retained<std::shared_ptr<const QueryContext>>& r) {
          if (!r.value->error.empty()) return;
          auto parts = SplitKeyParts(k.text());
          if (parts.has_value() && parts->size() == 2) {
            keys.queries.emplace_back(std::move((*parts)[0]),
                                      std::move((*parts)[1]));
          }
        });
  }
  std::sort(keys.schemas.begin(), keys.schemas.end());
  std::sort(keys.queries.begin(), keys.queries.end());
  return keys;
}

std::size_t EngineCore::WarmStart(const SnapshotKeys& keys) {
  std::size_t loaded = 0;
  for (const std::string& schema_text : keys.schemas) {
    FpKey key(schema_text);
    {
      MutexLock lock(&ctx_mu_);
      if (schema_ctxs_.Find(key) != nullptr) continue;
    }
    auto build_start = std::chrono::steady_clock::now();
    auto ctx = BuildSchemaContext(schema_text, /*warm=*/true);
    uint64_t cost = NsSince(build_start);
    std::size_t bytes = schema_text.size() + 96 * ctx->tbox.size() +
                        VocabBytes(ctx->vocab) + 128;
    MutexLock lock(&ctx_mu_);
    ++ctx_tick_;
    auto [slot, inserted] = schema_ctxs_.TryEmplace(std::move(key));
    if (inserted) {
      slot->value = std::move(ctx);
      slot->meta = {ctx_tick_, cost, bytes};
      EnforceCtxBudgetLocked();
      ++loaded;
    }
  }
  for (const auto& [schema_text, q_text] : keys.queries) {
    FpKey key(JoinKeyParts(schema_text, q_text));
    {
      MutexLock lock(&ctx_mu_);
      if (query_ctxs_.Find(key) != nullptr) continue;
    }
    auto build_start = std::chrono::steady_clock::now();
    auto ctx = BuildQueryContext(schema_text, q_text, /*guard=*/nullptr,
                                 /*warm=*/true);
    uint64_t cost = NsSince(build_start);
    std::size_t bytes = key.text().size() + VocabBytes(ctx->vocab) + 256;
    if (ctx->closure != nullptr) {
      bytes += 8 * ctx->closure->engine_masks.size() + 1024;
    }
    MutexLock lock(&ctx_mu_);
    ++ctx_tick_;
    auto [slot, inserted] = query_ctxs_.TryEmplace(std::move(key));
    if (inserted) {
      slot->value = std::move(ctx);
      slot->meta = {ctx_tick_, cost, bytes};
      EnforceCtxBudgetLocked();
      ++loaded;
    }
  }
  stats_.warmstart_loaded.fetch_add(loaded, std::memory_order_relaxed);
  return loaded;
}

void EngineCore::RefreshLifecycleGauges() {
  stats_.compile_memo_hits.store(compile_memo_.hits(),
                                 std::memory_order_relaxed);
  stats_.compile_memo_misses.store(compile_memo_.misses(),
                                   std::memory_order_relaxed);
  stats_.cache_retained_bytes.store(retained_bytes(),
                                    std::memory_order_relaxed);
}

std::string EngineCore::StatsJson() {
  RefreshLifecycleGauges();
  return stats_.ToJson();
}

void EngineCore::ResetState() {
  {
    MutexLock lock(&ctx_mu_);
    schema_ctxs_.Clear();
    query_ctxs_.Clear();
    ctx_tick_ = 0;
  }
  regex_cache_.Clear();
  facts_.Clear();
  compile_memo_.Clear();
  stats_.Reset();
}

Result<BatchItem> ParseBatchItemJson(std::string_view json_line) {
  auto fields = ParseFlatJsonObject(json_line);
  if (!fields.ok()) return Result<BatchItem>::Error("batch item: " + fields.error());
  BatchItem item;
  bool have_p = false;
  bool have_q = false;
  for (const JsonField& f : fields.value()) {
    if (f.key == "id") {
      item.id = f.value;
    } else if (f.key == "schema") {
      item.schema_text = f.value;
    } else if (f.key == "p") {
      item.p_text = f.value;
      have_p = true;
    } else if (f.key == "q") {
      item.q_text = f.value;
      have_q = true;
    } else {
      return Result<BatchItem>::Error("batch item: unknown field \"" + f.key + "\"");
    }
  }
  if (!have_p || !have_q) {
    return Result<BatchItem>::Error("batch item: fields \"p\" and \"q\" are required");
  }
  return item;
}

std::string OutcomeToJson(const BatchOutcome& outcome) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id").String(outcome.id);
  w.Key("ok").Bool(outcome.ok);
  if (!outcome.ok) {
    w.Key("error").String(outcome.error);
  } else {
    w.Key("verdict").String(VerdictName(outcome.verdict));
    w.Key("method").String(ContainmentMethodName(outcome.attr.method));
    if (!outcome.attr.strategy.empty()) {
      w.Key("strategy").String(outcome.attr.strategy);
    }
    if (!outcome.attr.note.empty()) w.Key("note").String(outcome.attr.note);
    if (outcome.attr.unknown.has_value()) {
      w.Key("unknown_reason").String(outcome.attr.unknown->reason);
      w.Key("unknown_phase").String(outcome.attr.unknown->phase);
    }
    if (outcome.countermodel_nodes > 0) {
      w.Key("countermodel_nodes").UInt(outcome.countermodel_nodes);
    }
  }
  w.Key("wall_ms").Double(outcome.wall_ms);
  w.EndObject();
  return w.Take();
}

}  // namespace gqc
