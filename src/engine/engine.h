#ifndef GQC_ENGINE_ENGINE_H_
#define GQC_ENGINE_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/engine/engine_core.h"

namespace gqc {

/// Batch containment service: decides many (P, Q) pairs against their
/// schemas, in parallel, with shared memoized state and pipeline metrics.
///
/// Engine is the *batch orchestration* layer over EngineCore
/// (src/engine/engine_core.h): it owns batch fan-out, per-batch controls,
/// and input-order result collection, while the core owns the per-pair
/// decision path and every memoized table. The serving front end
/// (src/serve) is a sibling layer over the same core.
///
/// Parallelism: pair-level across the batch on a work-stealing pool, plus
/// disjunct-level inside a pair (a nested ParallelFor; the waiting thread
/// helps run other tasks, so nesting cannot deadlock).
///
/// Determinism: each pair's decision is a pure function of its three texts.
/// Vocabularies are layered — schema symbols first, then Q's, then the
/// closure's fresh concepts, then P's, each layer built once per distinct
/// text and copied, never mutated concurrently — so verdicts are identical
/// for any thread count and any interleaving (1-thread and N-thread runs of
/// the same batch agree bit for bit).
///
/// The engine's PipelineStats aggregates per-phase wall times, cache hit
/// rates, verdict/method tallies, and countermodel sizes across the batch;
/// StatsJson() exports the snapshot (schema documented in DESIGN.md).
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// Decides one item (callable concurrently with itself).
  [[nodiscard]] BatchOutcome DecideOne(const BatchItem& item);

  /// Decides a batch; outcomes are returned in input order. Adds the
  /// end-to-end wall time to stats().batch_wall_ns. With `batch_timeout_ms`
  /// (or after CancelAll) pairs not yet started are preempted and in-flight
  /// pairs unwind at their next guard poll — every item still gets an
  /// outcome, and already-completed verdicts are unaffected.
  [[nodiscard]] std::vector<BatchOutcome> DecideBatch(
      const std::vector<BatchItem>& items);

  /// Cancels every in-flight DecideBatch (and DecideOne) on this engine:
  /// their pairs unwind to Unknown("cancelled") at the next guard poll.
  /// Sticky per batch only — batches started after the call are unaffected.
  /// Safe from any thread.
  void CancelAll() { core_.CancelAll(); }

  /// Total threads the engine decides pairs with.
  std::size_t threads() const { return core_.threads(); }

  PipelineStats& stats() { return core_.stats(); }
  const PipelineStats& stats() const { return core_.stats(); }
  std::string StatsJson() { return core_.StatsJson(); }

  /// The layered decision core (session/serving layers build on it
  /// directly; batch callers rarely need it).
  EngineCore& core() { return core_; }
  const EngineCore& core() const { return core_; }

  /// Drops memoized contexts and zeroes the stats (for measurement runs).
  void ResetState() { core_.ResetState(); }

  /// Parses one JSON-lines batch item: a flat object with string fields
  /// "id", "schema", "p", "q" ("id" and "schema" optional).
  static Result<BatchItem> ParseBatchItemJson(std::string_view json_line) {
    return gqc::ParseBatchItemJson(json_line);
  }

  /// Serializes an outcome as one JSON line (no trailing newline).
  static std::string OutcomeToJson(const BatchOutcome& outcome) {
    return gqc::OutcomeToJson(outcome);
  }

 private:
  EngineCore core_;
};

}  // namespace gqc

#endif  // GQC_ENGINE_ENGINE_H_
