#ifndef GQC_ENGINE_ENGINE_H_
#define GQC_ENGINE_ENGINE_H_

#include <chrono>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/automata/compile_cache.h"
#include "src/core/containment.h"
#include "src/core/factboard.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"

namespace gqc {

/// Options for the batch containment engine.
struct EngineOptions {
  /// Total threads deciding pairs (callers included); 0 means
  /// hardware_concurrency, 1 means fully sequential (no pool overhead).
  std::size_t threads = 1;
  /// Per-pair pipeline options. The `stats` field is ignored — the engine
  /// threads its own PipelineStats through every phase. The `strategies`
  /// list (empty = mode default) selects the strategy order in sequential
  /// mode and the racing pool in portfolio mode.
  ContainmentOptions containment;
  /// Also parallelize across the disjuncts of one P (when its Tp closure is
  /// precomputed, so disjunct decisions are read-only on the pair state).
  bool parallel_disjuncts = true;
  /// Portfolio mode: decide each disjunct by racing the applicable
  /// strategies on the pool (first definite verdict cancels the rest) with
  /// fact sharing through the engine's SharedFactBoard, instead of running
  /// them in sequential priority order. Definite verdicts are identical to
  /// sequential mode wherever sequential mode reaches one (each racer gets
  /// a fresh per-strategy budget, so the portfolio can only answer more);
  /// wall-clock and Unknown attributions differ.
  bool portfolio = false;
  /// Wall-clock deadline for one whole DecideBatch call (0 = none). Pinned
  /// when the batch starts; pairs reaching the front of the queue after it
  /// passes are preempted (Unknown, no searches run). Each pair's effective
  /// deadline is the tighter of this and `containment.resources.deadline_ms`.
  double batch_timeout_ms = 0;
};

/// One containment question, as text. `schema_text` uses the concept syntax
/// (lines with "<=") or the PG-Schema surface syntax, auto-detected; empty
/// means the empty schema. Queries use the UC2RPQ syntax (src/query/parser.h).
struct BatchItem {
  std::string id;
  std::string schema_text;
  std::string p_text;
  std::string q_text;
};

/// The engine's answer for one item. `ok` is false on parse/setup failures
/// (`error` says why); otherwise `verdict` and `attr` are exactly the
/// checker-level ContainmentResult surface (method, winning strategy, note,
/// kUnknown details — one shared Attribution struct, so the two cannot
/// drift), and `countermodel_nodes` is the size of the returned countermodel
/// (or central part), 0 when there is none.
struct BatchOutcome {
  std::string id;
  bool ok = false;
  std::string error;
  Verdict verdict = Verdict::kUnknown;
  Attribution attr;
  uint64_t countermodel_nodes = 0;
  double wall_ms = 0.0;
};

/// Batch containment service: decides many (P, Q) pairs against their
/// schemas, in parallel, with shared memoized state and pipeline metrics.
///
/// Parallelism: pair-level across the batch on a work-stealing pool, plus
/// disjunct-level inside a pair (a nested ParallelFor; the waiting thread
/// helps run other tasks, so nesting cannot deadlock).
///
/// Shared immutable state, all keyed by exact input text (or exact canonical
/// serializations below the text level):
///   - schema contexts: schema text -> (vocabulary, normalized TBox)
///   - query contexts: (schema text, Q text) -> (vocabulary, parsed Q, and —
///     when the §3 reduction applies to (T, Q) — the Tp(T, Q̂) closure)
///   - a regex -> semiautomaton compile cache shared across all parses
///
/// Determinism: each pair's decision is a pure function of its three texts.
/// Vocabularies are layered — schema symbols first, then Q's, then the
/// closure's fresh concepts, then P's, each layer built once per distinct
/// text and copied, never mutated concurrently — so verdicts are identical
/// for any thread count and any interleaving (1-thread and N-thread runs of
/// the same batch agree bit for bit).
///
/// The engine's PipelineStats aggregates per-phase wall times, cache hit
/// rates, verdict/method tallies, and countermodel sizes across the batch;
/// StatsJson() exports the snapshot (schema documented in DESIGN.md).
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// Decides one item (callable concurrently with itself).
  [[nodiscard]] BatchOutcome DecideOne(const BatchItem& item);

  /// Decides a batch; outcomes are returned in input order. Adds the
  /// end-to-end wall time to stats().batch_wall_ns. With `batch_timeout_ms`
  /// (or after CancelAll) pairs not yet started are preempted and in-flight
  /// pairs unwind at their next guard poll — every item still gets an
  /// outcome, and already-completed verdicts are unaffected.
  [[nodiscard]] std::vector<BatchOutcome> DecideBatch(
      const std::vector<BatchItem>& items);

  /// Cancels every in-flight DecideBatch (and DecideOne) on this engine:
  /// their pairs unwind to Unknown("cancelled") at the next guard poll.
  /// Sticky per batch only — batches started after the call are unaffected.
  /// Safe from any thread.
  void CancelAll();

  /// Total threads the engine decides pairs with.
  std::size_t threads() const { return pool_.concurrency(); }

  PipelineStats& stats() { return stats_; }
  const PipelineStats& stats() const { return stats_; }
  std::string StatsJson() const { return stats_.ToJson(); }

  /// Drops memoized contexts and zeroes the stats (for measurement runs).
  void ResetState();

  /// Parses one JSON-lines batch item: a flat object with string fields
  /// "id", "schema", "p", "q" ("id" and "schema" optional).
  static Result<BatchItem> ParseBatchItemJson(std::string_view json_line);

  /// Serializes an outcome as one JSON line (no trailing newline).
  static std::string OutcomeToJson(const BatchOutcome& outcome);

 private:
  /// Schema text -> parsed + normalized schema in its own vocabulary.
  struct SchemaContext {
    Vocabulary vocab;
    NormalTBox tbox;
    std::string error;  // non-empty: parse failed, other fields invalid
  };

  /// (schema text, Q text) -> Q parsed in a copy of the schema vocabulary,
  /// plus the precomputed Tp closure when the reduction applies to (T, Q).
  struct QueryContext {
    std::shared_ptr<const SchemaContext> schema;
    Vocabulary vocab;
    Ucrpq q;
    /// Reduction would run for some disjunct of some P (participation
    /// constraints present, Q in a supported fragment).
    bool reduction_applicable = false;
    std::shared_ptr<const TpClosure> closure;  // null if N/A or failed
    std::string error;  // non-empty: parse failed, other fields invalid
  };

  /// Per-DecideBatch (or DecideOne) resource control: the batch deadline
  /// pinned at start plus the cancellation token CancelAll reaches.
  struct BatchControl {
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    CancellationToken cancel;
  };

  std::shared_ptr<const SchemaContext> GetSchemaContext(
      const std::string& schema_text) GQC_EXCLUDES(ctx_mu_);
  /// `guard` (optional) governs the closure build on a context miss; a
  /// context whose closure build tripped the guard reflects that caller's
  /// budget, not (schema, Q), and is returned uncached.
  std::shared_ptr<const QueryContext> GetQueryContext(
      const std::string& schema_text, const std::string& q_text,
      ResourceGuard* guard) GQC_EXCLUDES(ctx_mu_);
  BatchOutcome DecidePair(const BatchItem& item, const BatchControl& control);
  /// Pins the batch deadline and registers the control's token with
  /// CancelAll; `handle` receives the registration to pass to FinishControl.
  BatchControl StartControl(std::list<CancellationToken>::iterator* handle);
  void FinishControl(std::list<CancellationToken>::iterator handle);

  EngineOptions options_;
  PipelineStats stats_;
  ThreadPool pool_;
  RegexCompileCache regex_cache_;
  /// Portfolio-mode fact exchange: countermodels and definite verdicts
  /// shared across strategies, disjuncts, and pairs (cleared by ResetState).
  SharedFactBoard facts_;

  /// Guards the memoized context maps; values are computed outside the lock
  /// (a racing double-miss builds the identical context; first insert wins).
  Mutex ctx_mu_{kLockRankEngineContext, "engine-ctx"};
  std::unordered_map<std::string, std::shared_ptr<const SchemaContext>>
      schema_ctxs_ GQC_GUARDED_BY(ctx_mu_);
  std::unordered_map<std::string, std::shared_ptr<const QueryContext>>
      query_ctxs_ GQC_GUARDED_BY(ctx_mu_);

  /// Guards the registry of in-flight batch cancellation tokens (the list
  /// CancelAll walks); the tokens themselves are wait-free once copied out.
  Mutex cancel_mu_{kLockRankEngineCancel, "engine-cancel"};
  std::list<CancellationToken> active_controls_ GQC_GUARDED_BY(cancel_mu_);
};

}  // namespace gqc

#endif  // GQC_ENGINE_ENGINE_H_
