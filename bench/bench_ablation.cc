// Design-choice ablations (DESIGN.md §5): what each pipeline ingredient buys.
//  - quotient seeding: merging expansion nodes is what finds countermodels
//    that identify query variables (without it, at-most instances degrade);
//  - the §3 reduction: star-like countermodels beyond the direct search;
//  - countermodel minimization: cost and effect on witness size.

#include <benchmark/benchmark.h>

#include "src/core/containment.h"
#include "src/dl/concept_parser.h"
#include "src/query/parser.h"

namespace {

using namespace gqc;

// Instance whose countermodel requires merging two query variables: with
// quotient seeding it is found; without, the pipeline reports unknown.
void BM_Ablation_QuotientSeeding(benchmark::State& state) {
  bool quotients = state.range(0) == 1;
  std::string verdict;
  for (auto _ : state) {
    Vocabulary vocab;
    auto schema = ParseTBox("A <= atmost 1 r.Any\ntop <= Any", &vocab);
    auto p = ParseUcrpq("A(x), r(x, y), r(x, z), B(y)", &vocab);
    auto q = ParseUcrpq("r(x, y), B(y), C(y)", &vocab);
    ContainmentOptions options;
    if (!quotients) options.countermodel.max_quotients = 1;
    ContainmentChecker checker(&vocab, options);
    verdict = VerdictName(checker.Decide(p.value(), q.value(), schema.value()).verdict);
  }
  state.SetLabel(std::string(quotients ? "with quotients: " : "without: ") + verdict);
}
BENCHMARK(BM_Ablation_QuotientSeeding)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Reduction on/off over a participation instance. On small instances the
// direct search already decides, so the expected shape here is *agreement*
// at comparable cost; the reduction's reach beyond the direct search shows
// on instances whose peripheral witnesses exceed the chase node budget.
void BM_Ablation_Reduction(benchmark::State& state) {
  bool reduction = state.range(0) == 1;
  std::string verdict;
  for (auto _ : state) {
    Vocabulary vocab;
    auto schema = ParseTBox("A <= exists r.B", &vocab);
    auto p = ParseUcrpq("A(x)", &vocab);
    auto q = ParseUcrpq("r(x, y), C(y)", &vocab);
    ContainmentOptions options;
    options.disable_reduction = !reduction;
    ContainmentChecker checker(&vocab, options);
    verdict = VerdictName(checker.Decide(p.value(), q.value(), schema.value()).verdict);
  }
  state.SetLabel(std::string(reduction ? "reduction on: " : "reduction off: ") +
                 verdict);
}
BENCHMARK(BM_Ablation_Reduction)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Minimization: witness size with and without. The chase already produces
// near-minimal witnesses, so the expected shape is equal sizes at a small
// overhead — minimization is insurance for the seeded and reduction paths.
void BM_Ablation_Minimization(benchmark::State& state) {
  bool minimize = state.range(0) == 1;
  std::size_t nodes = 0;
  for (auto _ : state) {
    Vocabulary vocab;
    auto schema = ParseTBox("A <= exists r.B\nA <= exists r.C", &vocab);
    auto p = ParseUcrpq("A(x)", &vocab);
    auto q = ParseUcrpq("r(x, y), D(y)", &vocab);
    ContainmentOptions options;
    options.minimize_countermodels = minimize;
    ContainmentChecker checker(&vocab, options);
    auto r = checker.Decide(p.value(), q.value(), schema.value());
    if (r.countermodel.has_value()) nodes = r.countermodel->NodeCount();
  }
  state.counters["witness_nodes"] = static_cast<double>(nodes);
  state.SetLabel(minimize ? "minimized" : "raw");
}
BENCHMARK(BM_Ablation_Minimization)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace
