// Serve: steady-state request latency of the serving layer, cold vs warm
// caches vs snapshot warm-start. Drives Server::HandleRequestLine in-process
// (the socket loop is a thin transport; the decision path, admission gate,
// and session bookkeeping are all exercised), so the numbers isolate the
// serving stack from kernel socket noise.
//
//   ServeCold       fresh server per iteration — every request builds its
//                   contexts from scratch (worst case, first-request latency)
//   ServeWarm       one long-lived server — steady state after the caches
//                   filled (the latency a persistent deployment sees)
//   ServeWarmStart  fresh server per iteration, warm-started from a snapshot
//                   of the workload's context keys (restart recovery cost)
//
// The cold/warm gap is what the cache lifecycle preserves under eviction
// pressure; the warm-start column is what a restart buys back from disk.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/engine/snapshot.h"
#include "src/gqc.h"
#include "src/serve/server.h"

namespace {

using namespace gqc;

std::vector<std::string> RequestLines(std::size_t count, uint64_t seed) {
  WorkloadOptions options;
  options.seed = seed;
  std::vector<std::string> lines;
  std::size_t i = 0;
  for (const WorkloadInstance& inst : GenerateWorkload(options, count)) {
    BatchItem item;
    item.id = std::to_string(i++);
    item.schema_text = inst.schema_text;
    item.p_text = inst.p_text;
    item.q_text = inst.q_text;
    JsonWriter w;
    w.BeginObject();
    w.Key("id").String(item.id);
    w.Key("schema").String(item.schema_text);
    w.Key("p").String(item.p_text);
    w.Key("q").String(item.q_text);
    w.EndObject();
    lines.push_back(w.Take());
  }
  return lines;
}

serve::ServeOptions BenchOptions() {
  serve::ServeOptions options;
  options.engine.threads = 1;  // per-request latency, not fan-out throughput
  // Safety net, matching a realistic deployment: an unexpectedly hard
  // generated instance sheds to Unknown instead of wedging the bench.
  options.request_deadline_ms = 250;
  return options;
}

void DriveAll(serve::Server* server, const std::vector<std::string>& lines) {
  auto session = server->OpenSession("bench");
  for (const std::string& line : lines) {
    std::string response = server->HandleRequestLine(line, session.get());
    benchmark::DoNotOptimize(response.data());
  }
  server->CloseSession(session->id);
}

void BM_ServeCold(benchmark::State& state) {
  std::vector<std::string> lines =
      RequestLines(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    serve::Server server(BenchOptions());
    DriveAll(&server, lines);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lines.size()));
}
BENCHMARK(BM_ServeCold)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_ServeWarm(benchmark::State& state) {
  std::vector<std::string> lines =
      RequestLines(static_cast<std::size_t>(state.range(0)), 7);
  serve::Server server(BenchOptions());
  DriveAll(&server, lines);  // fill the caches once, unmeasured
  for (auto _ : state) {
    DriveAll(&server, lines);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lines.size()));
  server.core().RefreshLifecycleGauges();
  state.counters["retained_kb"] = static_cast<double>(
      server.core().retained_bytes() / 1024);
}
BENCHMARK(BM_ServeWarm)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_ServeWarmStart(benchmark::State& state) {
  std::vector<std::string> lines =
      RequestLines(static_cast<std::size_t>(state.range(0)), 7);
  // One unmeasured run exports the workload's context keys to a snapshot.
  std::string path = "/tmp/gqc_bench_serve.snap";
  {
    serve::Server seed_server(BenchOptions());
    DriveAll(&seed_server, lines);
    auto saved = SaveSnapshot(seed_server.core(), path);
    if (!saved.ok()) state.SkipWithError(saved.error().c_str());
  }
  serve::ServeOptions options = BenchOptions();
  options.snapshot_path = path;
  uint64_t loaded = 0;
  for (auto _ : state) {
    state.PauseTiming();
    serve::Server server(options);  // constructor replays the snapshot keys
    loaded = server.warmstart_loaded();
    state.ResumeTiming();
    DriveAll(&server, lines);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lines.size()));
  state.counters["warmstart_loaded"] = static_cast<double>(loaded);
  std::remove(path.c_str());
}
BENCHMARK(BM_ServeWarmStart)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace
