// E2: coil construction (§4) — size and time scaling in the base-graph size
// and the window n, plus a per-run verification of Property 1 (h_G is a
// surjective homomorphism). Expected shape: node count = |Paths(G,n)|·(n+1),
// growing geometrically in n for graphs with branching.

#include <benchmark/benchmark.h>

#include "src/graph/coil.h"
#include "src/graph/generators.h"
#include "src/graph/homomorphism.h"

namespace {

using namespace gqc;

void BM_E2_CoilCycle(benchmark::State& state) {
  Vocabulary vocab;
  uint32_t r = vocab.RoleId("r");
  std::size_t nodes = static_cast<std::size_t>(state.range(0));
  std::size_t window = static_cast<std::size_t>(state.range(1));
  Graph g = CycleGraph(nodes, r);
  std::size_t coil_nodes = 0;
  for (auto _ : state) {
    CoilResult coil = Coil(g, window).value();
    coil_nodes = coil.graph.NodeCount();
    benchmark::DoNotOptimize(coil);
  }
  state.counters["coil_nodes"] = static_cast<double>(coil_nodes);
}
BENCHMARK(BM_E2_CoilCycle)
    ->ArgsProduct({{8, 16, 32, 64}, {1, 2, 4, 6}})
    ->Unit(benchmark::kMicrosecond);

void BM_E2_CoilRandom(benchmark::State& state) {
  Vocabulary vocab;
  RandomGraphOptions opts;
  opts.nodes = static_cast<std::size_t>(state.range(0));
  opts.edge_probability = 0.15;
  opts.roles = {vocab.RoleId("r"), vocab.RoleId("s")};
  opts.concepts = {vocab.ConceptId("A")};
  Graph g = RandomGraph(opts);
  std::size_t window = static_cast<std::size_t>(state.range(1));
  std::size_t coil_nodes = 0;
  bool property1 = true;
  for (auto _ : state) {
    CoilResult coil = Coil(g, window).value();
    coil_nodes = coil.graph.NodeCount();
    property1 = property1 && IsHomomorphism(coil.graph, g, coil.base_node);
    benchmark::DoNotOptimize(coil);
  }
  state.counters["coil_nodes"] = static_cast<double>(coil_nodes);
  state.counters["property1_holds"] = property1 ? 1 : 0;
}
BENCHMARK(BM_E2_CoilRandom)
    ->ArgsProduct({{8, 12, 16}, {1, 2, 3}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
