// E5: the §6 entailment engine — realizable-type-set computation (Tp(T, Q̂))
// versus the number of concept names, counting bound, and role count.
// Expected shape: doubly-exponential worst case; the sweep shows the
// type-space enumeration dominating as concepts are added, and the recursion
// depth growing with the role count.

#include <benchmark/benchmark.h>

#include <string>

#include "src/dl/concept_parser.h"
#include "src/dl/normalize.h"
#include "src/entailment/alcq_simple.h"
#include "src/query/factorize.h"
#include "src/query/parser.h"

namespace {

using namespace gqc;

void BM_E5_ConceptSweep(benchmark::State& state) {
  // T: A0 ⊑ ∃r.A1, plus k inert concept names added via Boolean CIs.
  int extra = static_cast<int>(state.range(0));
  std::string text = "A0 <= exists r.A1";
  for (int i = 0; i < extra; ++i) {
    text += "\nB" + std::to_string(i) + " <= B" + std::to_string(i);
  }
  std::size_t realizable = 0;
  bool capped = false;
  for (auto _ : state) {
    Vocabulary vocab;
    auto tbox = ParseTBox(text, &vocab);
    NormalTBox nf = Normalize(tbox.value(), &vocab);
    auto q = ParseUcrpq("Avoid(x)", &vocab);
    auto f = FactorizeSimpleUcrpq(q.value(), &vocab);
    AlcqSimpleEngine engine(&f.value(), &vocab);
    auto set = engine.RealizableTypes(nf);
    realizable = set.masks.size();
    capped = engine.hit_cap();
    state.counters["fixpoint_iters"] =
        static_cast<double>(engine.stats().fixpoint_iterations);
    state.counters["types_enumerated"] =
        static_cast<double>(engine.stats().types_enumerated);
    benchmark::DoNotOptimize(set);
  }
  state.counters["realizable_types"] = static_cast<double>(realizable);
  state.counters["capped"] = capped ? 1 : 0;
}
BENCHMARK(BM_E5_ConceptSweep)->DenseRange(0, 6, 2)->Unit(benchmark::kMillisecond);

void BM_E5_CountingBoundSweep(benchmark::State& state) {
  // T: A ⊑ ≥n r.B ∧ ≤n r.B for growing n: the counting vocabulary grows
  // linearly with n and connector search effort with n as well.
  int n = static_cast<int>(state.range(0));
  std::string text = "A <= atleast " + std::to_string(n) + " r.B\nA <= atmost " +
                     std::to_string(n) + " r.B";
  std::size_t realizable = 0;
  bool capped = false;
  for (auto _ : state) {
    Vocabulary vocab;
    auto tbox = ParseTBox(text, &vocab);
    NormalTBox nf = Normalize(tbox.value(), &vocab);
    auto q = ParseUcrpq("Avoid(x)", &vocab);
    auto f = FactorizeSimpleUcrpq(q.value(), &vocab);
    AlcqSimpleEngine engine(&f.value(), &vocab);
    auto set = engine.RealizableTypes(nf);
    realizable = set.masks.size();
    capped = engine.hit_cap();
    state.counters["connector_searches"] =
        static_cast<double>(engine.stats().connector_searches);
    benchmark::DoNotOptimize(set);
  }
  state.counters["realizable_types"] = static_cast<double>(realizable);
  state.counters["capped"] = capped ? 1 : 0;
}
BENCHMARK(BM_E5_CountingBoundSweep)->DenseRange(1, 3, 1)->Unit(benchmark::kMillisecond);

void BM_E5_QueryInteraction(benchmark::State& state) {
  // The query to refute interacts with the fixpoint: a query that the TBox
  // forces (kills all types with A) vs one it does not.
  bool forced = state.range(0) == 1;
  std::string query = forced ? "A(x), r(x, y), B(y)" : "C(x), r(x, y), C(y)";
  std::size_t realizable = 0;
  for (auto _ : state) {
    Vocabulary vocab;
    auto tbox = ParseTBox("A <= exists r.B", &vocab);
    NormalTBox nf = Normalize(tbox.value(), &vocab);
    auto q = ParseUcrpq(query, &vocab);
    auto f = FactorizeSimpleUcrpq(q.value(), &vocab);
    AlcqSimpleEngine engine(&f.value(), &vocab);
    auto set = engine.RealizableTypes(nf);
    realizable = set.masks.size();
    benchmark::DoNotOptimize(set);
  }
  state.counters["realizable_types"] = static_cast<double>(realizable);
  state.SetLabel(forced ? "query forced by TBox (A-types must die)"
                        : "query independent of TBox");
}
BENCHMARK(BM_E5_QueryInteraction)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
