// E6: end-to-end containment — "who wins" with and without a schema, and a
// constraint-ablation sweep. Expected shape: schemas make strictly more
// containments hold; dropping the responsible constraint flips the verdict
// back to not-contained (the crossover).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/core/containment.h"
#include "src/dl/concept_parser.h"
#include "src/engine/engine.h"
#include "src/query/parser.h"

namespace {

using namespace gqc;

// Family: chain typing constraints top ⊑ ∀ri.Li for i < k; query pair asks
// whether the last label is forced.
void BM_E6_TypingChain(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::string schema_text;
  std::string p_text = "Start(x0)";
  std::string q_text = "Start(x0)";
  for (int i = 0; i < k; ++i) {
    std::string role = "r" + std::to_string(i);
    std::string label = "L" + std::to_string(i);
    schema_text += "top <= forall " + role + "." + label + "\n";
    p_text += ", " + role + "(x" + std::to_string(i) + ", x" + std::to_string(i + 1) + ")";
    q_text += ", " + role + "(x" + std::to_string(i) + ", x" + std::to_string(i + 1) + ")";
  }
  q_text += ", L" + std::to_string(k - 1) + "(x" + std::to_string(k) + ")";

  std::string with_schema, without_schema;
  for (auto _ : state) {
    Vocabulary vocab;
    auto schema = ParseTBox(schema_text, &vocab);
    auto p = ParseUcrpq(p_text, &vocab);
    auto q = ParseUcrpq(q_text, &vocab);
    ContainmentChecker checker(&vocab);
    with_schema = VerdictName(checker.Decide(p.value(), q.value(), schema.value()).verdict);
    TBox empty;
    without_schema = VerdictName(checker.Decide(p.value(), q.value(), empty).verdict);
  }
  state.SetLabel("with schema: " + with_schema + " / without: " + without_schema);
}
BENCHMARK(BM_E6_TypingChain)->DenseRange(1, 4, 1)->Unit(benchmark::kMillisecond);

// Ablation: drop the one load-bearing constraint and watch the verdict flip.
void BM_E6_Ablation(benchmark::State& state) {
  bool keep_constraint = state.range(0) == 1;
  std::string schema_text = "A <= exists owns.Card\n";
  if (keep_constraint) schema_text += "top <= forall owns.Card\n";
  std::string verdict;
  for (auto _ : state) {
    Vocabulary vocab;
    auto schema = ParseTBox(schema_text, &vocab);
    auto p = ParseUcrpq("owns(x, y)", &vocab);
    auto q = ParseUcrpq("owns(x, y), Card(y)", &vocab);
    ContainmentChecker checker(&vocab);
    verdict = VerdictName(checker.Decide(p.value(), q.value(), schema.value()).verdict);
  }
  state.SetLabel(std::string(keep_constraint ? "typing kept: " : "typing dropped: ") +
                 verdict);
}
BENCHMARK(BM_E6_Ablation)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Participation ablation: the reduction/search must build witnesses.
void BM_E6_ParticipationAblation(benchmark::State& state) {
  bool keep = state.range(0) == 1;
  std::string schema_text = keep ? "A <= exists owns.Card\n" : "A <= A\n";
  std::string verdict;
  for (auto _ : state) {
    Vocabulary vocab;
    auto schema = ParseTBox(schema_text, &vocab);
    auto p = ParseUcrpq("A(x)", &vocab);
    auto q = ParseUcrpq("owns(x, y)", &vocab);
    ContainmentChecker checker(&vocab);
    verdict = VerdictName(checker.Decide(p.value(), q.value(), schema.value()).verdict);
  }
  state.SetLabel(std::string(keep ? "participation kept: " : "dropped: ") + verdict);
}
BENCHMARK(BM_E6_ParticipationAblation)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Checker-level memoization: repeated Decide calls against one schema with
// the normalized-TBox and Tp-closure caches on vs off. Counters expose the
// hit rates; verdicts are identical either way.
void BM_E6_CheckerCaching(benchmark::State& state) {
  bool caching = state.range(0) == 1;
  Vocabulary vocab;
  // Participation constraint + fragment-eligible Q: the §3 reduction (and so
  // the closure cache) is on the path.
  auto schema = ParseTBox("A <= exists owns.Card\ntop <= forall owns.Card", &vocab);
  auto p = ParseUcrpq("A(x), owns(x, y)", &vocab);
  auto q = ParseUcrpq("owns(x, y), Card(y)", &vocab);

  PipelineStats stats;
  ContainmentOptions options;
  options.enable_caching = caching;
  options.stats = &stats;
  ContainmentChecker checker(&vocab, options);
  std::string verdict;
  for (auto _ : state) {
    auto r = checker.Decide(p.value(), q.value(), schema.value());
    verdict = VerdictName(r.verdict);
    benchmark::DoNotOptimize(r);
  }
  auto rate = [](uint64_t hits, uint64_t misses) {
    return hits + misses == 0 ? 0.0 : static_cast<double>(hits) / (hits + misses);
  };
  state.counters["normal_tbox_hit_rate"] = rate(stats.normal_tbox_hits, stats.normal_tbox_misses);
  state.counters["closure_hit_rate"] = rate(stats.closure_hits, stats.closure_misses);
  state.counters["normalize_ms_total"] = static_cast<double>(stats.normalize_ns) * 1e-6;
  state.counters["entailment_ms_total"] = static_cast<double>(stats.entailment_ns) * 1e-6;
  state.SetLabel(std::string(caching ? "caching on: " : "caching off: ") + verdict);
}
BENCHMARK(BM_E6_CheckerCaching)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Sequential pipeline vs racing strategy portfolio on hard pairs — the
// instances where the winning strategy is NOT the one the sequential order
// tries first. Deep participation chains force countermodels near (or past)
// the default search caps: the direct strategy grinds through quotient seeds
// for hundreds of milliseconds (and at depth 13 gives up entirely) while the
// deep witness racer walks straight down the chain in single-digit
// milliseconds. The contained pair rides along to show the race does not
// slow down instances the sequential order already handles well (the winner
// just cancels the rest). Argument: 0 = sequential, 1 = portfolio.
const std::vector<BatchItem>& HardPairs() {
  static const std::vector<BatchItem>* items = [] {
    auto* out = new std::vector<BatchItem>;
    // Participation chains A0 ⊑ ∃r0.A1 ⊑ ... of depth k: P = A0(x) is not
    // contained in Q = B(x), but every countermodel carries the full chain.
    for (int k : {10, 11, 12, 13}) {
      BatchItem item;
      item.id = "deep-chain-" + std::to_string(k);
      for (int i = 0; i < k; ++i) {
        item.schema_text += "A" + std::to_string(i) + " <= exists r" +
                            std::to_string(i) + ".A" + std::to_string(i + 1) +
                            "\n";
      }
      item.p_text = "A0(x)";
      item.q_text = "B(x)";
      out->push_back(std::move(item));
    }
    // A contained pair (participation + typing): direct and reduction both
    // certify in comparable time, so the race is roughly a wash here.
    BatchItem contained;
    contained.id = "contained-typing";
    contained.schema_text = "A <= exists r.B\ntop <= forall r.B\n";
    contained.p_text = "A(x), r(x, y)";
    contained.q_text = "r(x, y), B(y)";
    out->push_back(std::move(contained));
    return out;
  }();
  return *items;
}

void BM_E6_SequentialVsPortfolio(benchmark::State& state) {
  bool portfolio = state.range(0) == 1;
  const std::vector<BatchItem>& items = HardPairs();
  std::size_t definite = 0;
  for (auto _ : state) {
    EngineOptions options;
    options.threads = 8;
    options.portfolio = portfolio;
    Engine engine(options);
    std::vector<BatchOutcome> out = engine.DecideBatch(items);
    definite = 0;
    for (const BatchOutcome& o : out) {
      if (o.ok && o.verdict != Verdict::kUnknown) ++definite;
    }
    benchmark::DoNotOptimize(out);
  }
  state.counters["definite"] = static_cast<double>(definite);
  state.counters["pairs"] = static_cast<double>(items.size());
  state.SetLabel(portfolio ? "portfolio (racing)" : "sequential order");
}
BENCHMARK(BM_E6_SequentialVsPortfolio)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
