// E1: the paper's Example 1.1 (Fig. 1). Regenerates the containment matrix
// for q1/q2 with and without the credit-card schema, plus the exactly-decided
// miniature. Expected shape (EXPERIMENTS.md):
//   - without schema: q2 ⊑ q1 (no counterexample), q1 ⋢ q2 (counterexample),
//   - with schema: no counterexample in either direction (q1 ≡_S q2),
//   - miniature partner ⊑_S partner ∧ RetailCompany: contained (exact).

#include <benchmark/benchmark.h>

#include "src/core/containment.h"
#include "src/query/parser.h"
#include "src/schema/pg_schema.h"

namespace {

using namespace gqc;

struct Setup {
  Vocabulary vocab;
  Ucrpq q1, q2, mini_p, mini_q;
  TBox schema;
  TBox empty;

  Setup() {
    schema = CreditCardSchema(&vocab);
    q1 = ParseUcrpq("(owns . earns . partner . (partof-)*)(x, y)", &vocab).value();
    q2 = ParseUcrpq(
             "(owns . earns . partner)(x, z), RetailCompany(z), (partof-)*(z, y)",
             &vocab)
             .value();
    mini_p = ParseUcrpq("partner(x, y)", &vocab).value();
    mini_q = ParseUcrpq("partner(x, y), RetailCompany(y)", &vocab).value();
  }
};

void BM_E1_q1_in_q2_no_schema(benchmark::State& state) {
  Setup s;
  std::string verdict;
  for (auto _ : state) {
    ContainmentChecker checker(&s.vocab);
    verdict = VerdictName(checker.Decide(s.q1, s.q2, s.empty).verdict);
  }
  state.SetLabel("q1⊑q2 no-schema: " + verdict + " (expect not-contained)");
}
BENCHMARK(BM_E1_q1_in_q2_no_schema)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_E1_q2_in_q1_no_schema(benchmark::State& state) {
  Setup s;
  std::string verdict;
  for (auto _ : state) {
    ContainmentChecker checker(&s.vocab);
    verdict = VerdictName(checker.Decide(s.q2, s.q1, s.empty).verdict);
  }
  state.SetLabel("q2⊑q1 no-schema: " + verdict + " (expect contained/unknown)");
}
BENCHMARK(BM_E1_q2_in_q1_no_schema)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_E1_q1_in_q2_with_schema(benchmark::State& state) {
  Setup s;
  std::string verdict;
  for (auto _ : state) {
    ContainmentChecker checker(&s.vocab);
    verdict = VerdictName(checker.Decide(s.q1, s.q2, s.schema).verdict);
  }
  state.SetLabel("q1⊑_S q2: " + verdict + " (expect no counterexample)");
}
BENCHMARK(BM_E1_q1_in_q2_with_schema)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_E1_miniature_exact(benchmark::State& state) {
  Setup s;
  std::string verdict;
  for (auto _ : state) {
    ContainmentChecker checker(&s.vocab);
    verdict = VerdictName(checker.Decide(s.mini_p, s.mini_q, s.schema).verdict);
  }
  state.SetLabel("partner⊑_S partner∧Retail: " + verdict + " (expect contained)");
}
BENCHMARK(BM_E1_miniature_exact)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_E1_miniature_no_schema(benchmark::State& state) {
  Setup s;
  std::string verdict;
  for (auto _ : state) {
    ContainmentChecker checker(&s.vocab);
    verdict = VerdictName(checker.Decide(s.mini_p, s.mini_q, s.empty).verdict);
  }
  state.SetLabel("partner⊑ partner∧Retail: " + verdict + " (expect not-contained)");
}
BENCHMARK(BM_E1_miniature_no_schema)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
