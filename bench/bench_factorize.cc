// E4: factorization Q̂ (Lemma 3.7) — output size (factors, permission labels,
// disjuncts) versus input size, for simple query families. Expected shape:
// exponential growth in the number of variables/atoms (the paper computes Q̂
// in exponential time with polynomial-size disjuncts).

#include <benchmark/benchmark.h>

#include <string>

#include "src/query/factorize.h"
#include "src/query/parser.h"

namespace {

using namespace gqc;

/// Path-shaped simple query with k single-edge atoms:
/// A(x0), r(x0,x1), ..., r(x_{k-1},x_k), B(x_k).
std::string PathQuery(int k) {
  std::string q = "A(x0)";
  for (int i = 0; i < k; ++i) {
    q += ", r(x" + std::to_string(i) + ", x" + std::to_string(i + 1) + ")";
  }
  q += ", B(x" + std::to_string(k) + ")";
  return q;
}

/// Star-reachability query with k unary-labelled stops:
/// A0(x0), (r*)(x0,x1), A1(x1), ... (all star atoms).
std::string StarQuery(int k) {
  std::string q = "A0(x0)";
  for (int i = 0; i < k; ++i) {
    q += ", (r*)(x" + std::to_string(i) + ", x" + std::to_string(i + 1) + ")";
    q += ", A" + std::to_string(i + 1) + "(x" + std::to_string(i + 1) + ")";
  }
  return q;
}

void RunFactorize(benchmark::State& state, const std::string& text) {
  FactorizeOptions options;
  options.max_factors = 512;       // measure true growth, not the cap
  options.max_disjuncts = 100000;
  std::size_t factors = 0, disjuncts = 0;
  bool ok = true;
  for (auto _ : state) {
    Vocabulary vocab;
    auto q = ParseUcrpq(text, &vocab);
    auto f = FactorizeSimpleUcrpq(q.value(), &vocab, options);
    ok = f.ok();
    if (ok) {
      factors = f.value().factor_count;
      disjuncts = f.value().q_hat.size();
    }
    benchmark::DoNotOptimize(f);
  }
  state.counters["factors"] = static_cast<double>(factors);
  state.counters["qhat_disjuncts"] = static_cast<double>(disjuncts);
  state.counters["ok"] = ok ? 1 : 0;
}

void BM_E4_PathQueries(benchmark::State& state) {
  RunFactorize(state, PathQuery(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_E4_PathQueries)->DenseRange(1, 3, 1)->Unit(benchmark::kMillisecond);

void BM_E4_StarQueries(benchmark::State& state) {
  RunFactorize(state, StarQuery(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_E4_StarQueries)->DenseRange(1, 3, 1)->Unit(benchmark::kMillisecond);

void BM_E4_UnionGrowth(benchmark::State& state) {
  std::string text = StarQuery(1);
  for (int i = 1; i < state.range(0); ++i) text += " ; " + StarQuery(1);
  RunFactorize(state, text);
}
BENCHMARK(BM_E4_UnionGrowth)->DenseRange(1, 4, 1)->Unit(benchmark::kMillisecond);

}  // namespace
