// E8: the simple-query restriction (§1: query logs are dominated by simple
// queries, and simple UC2RPQs + ALCQ is decidable, Thm 3.4(2)). Compares a
// mixed workload of simple vs concatenation queries: how many instances each
// pipeline stage decides, and at what cost. Expected shape: simple queries
// are decided exactly (screen/reduction paths), concatenation queries fall
// back to bounded search more often.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/core/containment.h"
#include "src/dl/concept_parser.h"
#include "src/query/parser.h"

namespace {

using namespace gqc;

struct Case {
  std::string p, q;
};

const std::vector<Case>& SimpleWorkload() {
  static const std::vector<Case> cases = {
      {"owns(x, y)", "owns(x, y), Card(y)"},
      {"A(x)", "owns(x, y)"},
      {"owns(x, y), Card(y)", "owns(x, y)"},
      {"A(x), owns(x, y)", "((owns + uses)*)(x, y)"},
      {"A(x), ((owns + uses)*)(x, y), Card(y)", "((owns + uses)*)(x, y)"},
  };
  return cases;
}

const std::vector<Case>& ConcatWorkload() {
  static const std::vector<Case> cases = {
      {"(owns . uses)(x, y)", "(owns . uses)(x, y), Card(y)"},
      {"A(x), (owns . uses)(x, y)", "(owns . (uses)*)(x, y)"},
      {"(owns . owns)(x, y)", "owns(x, z)"},
      {"(owns . uses . owns)(x, y)", "(owns . uses)(x, z)"},
      {"A(x), (owns . uses)(x, y), Card(y)", "(owns . uses . uses)(x, y)"},
  };
  return cases;
}

void RunWorkload(benchmark::State& state, const std::vector<Case>& cases) {
  int decided = 0, unknown = 0;
  for (auto _ : state) {
    decided = unknown = 0;
    for (const Case& c : cases) {
      Vocabulary vocab;
      auto schema = ParseTBox(
          "top <= forall owns.Card\nA <= exists owns.Card", &vocab);
      auto p = ParseUcrpq(c.p, &vocab);
      auto q = ParseUcrpq(c.q, &vocab);
      ContainmentChecker checker(&vocab);
      auto r = checker.Decide(p.value(), q.value(), schema.value());
      (r.verdict == Verdict::kUnknown ? unknown : decided) += 1;
    }
  }
  state.counters["decided"] = decided;
  state.counters["unknown"] = unknown;
  state.SetLabel(std::to_string(decided) + "/" +
                 std::to_string(decided + unknown) + " decided exactly");
}

void BM_E8_SimpleQueries(benchmark::State& state) {
  RunWorkload(state, SimpleWorkload());
}
BENCHMARK(BM_E8_SimpleQueries)->Unit(benchmark::kMillisecond);

void BM_E8_ConcatenationQueries(benchmark::State& state) {
  RunWorkload(state, ConcatWorkload());
}
BENCHMARK(BM_E8_ConcatenationQueries)->Unit(benchmark::kMillisecond);

}  // namespace
