// E7: the Theorem 3.2 path — participation-free TBoxes decided through
// sparse countermodels (expansion quotients + label completion) versus the
// same instances with a participation constraint added (which routes through
// witness construction / the §3 reduction). Expected shape: the
// participation-free path is exact and fast; participation adds witness
// construction cost.

#include <benchmark/benchmark.h>

#include "src/core/containment.h"
#include "src/dl/concept_parser.h"
#include "src/query/parser.h"

namespace {

using namespace gqc;

void RunPair(benchmark::State& state, const std::string& schema_text,
             const std::string& p_text, const std::string& q_text) {
  std::string verdict, method;
  for (auto _ : state) {
    Vocabulary vocab;
    auto schema = ParseTBox(schema_text, &vocab);
    auto p = ParseUcrpq(p_text, &vocab);
    auto q = ParseUcrpq(q_text, &vocab);
    ContainmentChecker checker(&vocab);
    auto r = checker.Decide(p.value(), q.value(), schema.value());
    verdict = VerdictName(r.verdict);
    method = ContainmentMethodName(r.attr.method);
  }
  state.SetLabel(verdict + " via " + method);
}

void BM_E7_NoParticipationContained(benchmark::State& state) {
  RunPair(state,
          "top <= forall r.B\nB <= C",
          "r(x, y)", "r(x, y), C(y)");
}
BENCHMARK(BM_E7_NoParticipationContained)->Unit(benchmark::kMillisecond);

void BM_E7_NoParticipationRefuted(benchmark::State& state) {
  RunPair(state,
          "top <= forall r.B",
          "r(x, y)", "r(x, y), C(y)");
}
BENCHMARK(BM_E7_NoParticipationRefuted)->Unit(benchmark::kMillisecond);

void BM_E7_WithParticipationContained(benchmark::State& state) {
  RunPair(state,
          "A <= exists r.B\ntop <= forall r.B",
          "A(x)", "r(x, y), B(y)");
}
BENCHMARK(BM_E7_WithParticipationContained)->Unit(benchmark::kMillisecond);

void BM_E7_WithParticipationRefuted(benchmark::State& state) {
  RunPair(state,
          "A <= exists r.B",
          "A(x)", "r(x, y), C(y)");
}
BENCHMARK(BM_E7_WithParticipationRefuted)->Unit(benchmark::kMillisecond);

// At-most sweep: the quotient search must merge witnesses as the bound
// tightens.
void BM_E7_AtMostSweep(benchmark::State& state) {
  int bound = static_cast<int>(state.range(0));
  RunPair(state,
          "A <= exists r.B\nA <= atmost " + std::to_string(bound) +
              " r.Any\ntop <= Any",
          "A(x), r(x, y), C(y)", "r(x, y), B(y), C(y)");
}
BENCHMARK(BM_E7_AtMostSweep)->DenseRange(1, 3, 1)->Unit(benchmark::kMillisecond);

}  // namespace
