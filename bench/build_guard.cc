// Build-type guard linked into every benchmark binary (bench/CMakeLists.txt).
//
// The committed BENCH_*.json baselines are produced from optimized builds;
// numbers from a -O0/assert-enabled build are not comparable and must never
// be recorded as baselines (tools/bench_diff.py compares against them). The
// guard refuses to run benchmarks unless this translation unit was compiled
// with optimizations and NDEBUG, matching the `library_build_type` context
// Google Benchmark reports for its own library build.
//
// Escape hatch: GQC_BENCH_ALLOW_DEBUG=1 runs anyway (for smoke-testing the
// bench code itself), loudly warns, and tags the JSON context with
// gqc_build_type=debug so a debug run can never masquerade as a baseline.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

namespace {

#if defined(NDEBUG) && defined(__OPTIMIZE__)
constexpr bool kOptimizedBuild = true;
#else
constexpr bool kOptimizedBuild = false;
#endif

struct BenchBuildGuard {
  BenchBuildGuard() {
    benchmark::AddCustomContext("gqc_build_type",
                                kOptimizedBuild ? "release" : "debug");
    if (kOptimizedBuild) return;
    if (std::getenv("GQC_BENCH_ALLOW_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "WARNING: running benchmarks from an UNOPTIMIZED build "
                   "(GQC_BENCH_ALLOW_DEBUG is set); results are tagged "
                   "gqc_build_type=debug and must not be committed as "
                   "baselines.\n");
      return;
    }
    std::fprintf(stderr,
                 "ERROR: this benchmark binary was built without "
                 "optimizations (missing NDEBUG/__OPTIMIZE__). Build with "
                 "-DCMAKE_BUILD_TYPE=Release, or set GQC_BENCH_ALLOW_DEBUG=1 "
                 "to run anyway for smoke-testing.\n");
    std::exit(1);
  }
};

const BenchBuildGuard kGuard;

}  // namespace
