// E3: query evaluation scaling — G ⊨ q via product reachability plus join,
// over growing graphs and query families. Expected shape: near-linear in
// |V|·|E| per atom for the RPQ part; the join adds a small polynomial factor.

#include <benchmark/benchmark.h>

#include "src/graph/generators.h"
#include "src/query/eval.h"
#include "src/query/parser.h"

namespace {

using namespace gqc;

void BM_E3_RpqOnCycle(benchmark::State& state) {
  Vocabulary vocab;
  uint32_t r = vocab.RoleId("r");
  Graph g = CycleGraph(static_cast<std::size_t>(state.range(0)), r);
  Crpq q = ParseCrpq("(r*)(x, y)", &vocab).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matches(g, q));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_E3_RpqOnCycle)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_E3_ConcatenationOnRandom(benchmark::State& state) {
  Vocabulary vocab;
  RandomGraphOptions opts;
  opts.nodes = static_cast<std::size_t>(state.range(0));
  opts.edge_probability = 4.0 / static_cast<double>(opts.nodes);
  opts.roles = {vocab.RoleId("r"), vocab.RoleId("s")};
  opts.concepts = {vocab.ConceptId("A"), vocab.ConceptId("B")};
  Graph g = RandomGraph(opts);
  Crpq q = ParseCrpq("(r . s . (r + s)*)(x, y), B(y)", &vocab).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matches(g, q));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_E3_ConcatenationOnRandom)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_E3_ConjunctiveJoin(benchmark::State& state) {
  Vocabulary vocab;
  RandomGraphOptions opts;
  opts.nodes = static_cast<std::size_t>(state.range(0));
  opts.edge_probability = 4.0 / static_cast<double>(opts.nodes);
  opts.roles = {vocab.RoleId("r"), vocab.RoleId("s")};
  opts.concepts = {vocab.ConceptId("A")};
  Graph g = RandomGraph(opts);
  Crpq q = ParseCrpq("r(x, y), s(y, z), r(z, w), A(w)", &vocab).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matches(g, q));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_E3_ConjunctiveJoin)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_E3_TwoWayOnTree(benchmark::State& state) {
  Vocabulary vocab;
  uint32_t r = vocab.RoleId("r");
  Graph g = BalancedTree(static_cast<std::size_t>(state.range(0)), 2, r);
  Crpq q = ParseCrpq("((r- + r)*)(x, y)", &vocab).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matches(g, q));
  }
  state.counters["nodes"] = static_cast<double>(g.NodeCount());
}
BENCHMARK(BM_E3_TwoWayOnTree)->DenseRange(3, 8, 1);

}  // namespace
