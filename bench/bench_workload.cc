// E9: randomized workloads — decision coverage and verdict distribution of
// the full pipeline over generated schema/query-pair instances, split by
// query class (simple vs concatenation), plus batch-engine throughput:
// pairs/sec across a thread sweep over one >= 200-item batch, with cache hit
// rates and a bit-identical-verdicts check against the 1-thread baseline.
// Each engine benchmark prints the engine's pipeline-stats JSON (per-phase
// timings, cache hit rates) for its last run.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/gqc.h"

namespace {

using namespace gqc;

void RunWorkloadBench(benchmark::State& state, bool simple) {
  WorkloadOptions options;
  options.simple_queries = simple;
  options.query_atoms = static_cast<std::size_t>(state.range(0));
  options.seed = 1000;

  int contained = 0, refuted = 0, unknown = 0;
  for (auto _ : state) {
    contained = refuted = unknown = 0;
    for (const WorkloadInstance& inst : GenerateWorkload(options, 20)) {
      Vocabulary vocab;
      auto schema = ParseTBox(inst.schema_text, &vocab);
      auto p = ParseUcrpq(inst.p_text, &vocab);
      auto q = ParseUcrpq(inst.q_text, &vocab);
      if (!schema.ok() || !p.ok() || !q.ok()) continue;
      ContainmentChecker checker(&vocab);
      switch (checker.Decide(p.value(), q.value(), schema.value()).verdict) {
        case Verdict::kContained:
          ++contained;
          break;
        case Verdict::kNotContained:
          ++refuted;
          break;
        case Verdict::kUnknown:
          ++unknown;
          break;
      }
    }
  }
  state.counters["contained"] = contained;
  state.counters["not_contained"] = refuted;
  state.counters["unknown"] = unknown;
}

void BM_E9_SimpleWorkload(benchmark::State& state) {
  RunWorkloadBench(state, /*simple=*/true);
}
BENCHMARK(BM_E9_SimpleWorkload)->DenseRange(1, 2, 1)->Unit(benchmark::kMillisecond);

void BM_E9_ConcatWorkload(benchmark::State& state) {
  RunWorkloadBench(state, /*simple=*/false);
}
BENCHMARK(BM_E9_ConcatWorkload)->DenseRange(1, 2, 1)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------- batch engine

/// The shared benchmark batch: 125 generated instances, each twice (repeated
/// (schema, Q) pairs are the realistic shape — query logs re-check rewrites
/// against one schema — and exercise the context caches).
const std::vector<BatchItem>& EngineBatch() {
  static const std::vector<BatchItem>* items = [] {
    WorkloadOptions options;
    options.seed = 1000;
    options.query_atoms = 2;
    auto* out = new std::vector<BatchItem>;
    std::vector<WorkloadInstance> instances = GenerateWorkload(options, 125);
    for (int copy = 0; copy < 2; ++copy) {
      for (std::size_t i = 0; i < instances.size(); ++i) {
        BatchItem item;
        item.id = std::to_string(copy) + ":" + std::to_string(i);
        item.schema_text = instances[i].schema_text;
        item.p_text = instances[i].p_text;
        item.q_text = instances[i].q_text;
        out->push_back(std::move(item));
      }
    }
    return out;
  }();
  return *items;
}

/// 1-thread verdicts, the reference every other thread count must reproduce.
const std::vector<BatchOutcome>& BaselineOutcomes() {
  static const std::vector<BatchOutcome>* base = [] {
    EngineOptions options;
    options.threads = 1;
    Engine engine(options);
    return new std::vector<BatchOutcome>(engine.DecideBatch(EngineBatch()));
  }();
  return *base;
}

void BM_EngineBatch(benchmark::State& state) {
  const std::vector<BatchItem>& items = EngineBatch();
  const std::vector<BatchOutcome>& baseline = BaselineOutcomes();

  EngineOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  std::string stats_json;
  for (auto _ : state) {
    Engine engine(options);  // cold caches every iteration: honest scaling
    std::vector<BatchOutcome> out = engine.DecideBatch(items);
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].verdict != baseline[i].verdict || out[i].ok != baseline[i].ok ||
          out[i].attr.method != baseline[i].attr.method || out[i].attr.note != baseline[i].attr.note) {
        state.SkipWithError("verdicts diverge from the 1-thread baseline");
        return;
      }
    }
    stats_json = engine.StatsJson();
    const PipelineStats& s = engine.stats();
    auto rate = [](uint64_t hits, uint64_t misses) {
      return hits + misses == 0 ? 0.0 : static_cast<double>(hits) / (hits + misses);
    };
    state.counters["query_ctx_hit_rate"] = rate(s.query_ctx_hits, s.query_ctx_misses);
    state.counters["regex_hit_rate"] = rate(s.regex_hits, s.regex_misses);
    state.counters["closure_hit_rate"] = rate(s.closure_hits, s.closure_misses);
  }
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(items.size()) * state.iterations(),
      benchmark::Counter::kIsRate);
  std::fprintf(stderr, "BM_EngineBatch/threads:%ld stats %s\n",
               static_cast<long>(state.range(0)), stats_json.c_str());
}
BENCHMARK(BM_EngineBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// The same batch through the racing strategy portfolio. Definite verdicts
// must agree with the sequential 1-thread baseline wherever that baseline is
// definite (the portfolio may additionally resolve baseline unknowns via the
// deep witness racer — counted in `extra_definite`). Counters expose the
// per-strategy win split and fact-board traffic.
void BM_EngineBatchPortfolio(benchmark::State& state) {
  const std::vector<BatchItem>& items = EngineBatch();
  const std::vector<BatchOutcome>& baseline = BaselineOutcomes();

  EngineOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  options.portfolio = true;
  std::size_t extra_definite = 0;
  std::string stats_json;
  for (auto _ : state) {
    Engine engine(options);  // cold caches every iteration: honest scaling
    std::vector<BatchOutcome> out = engine.DecideBatch(items);
    extra_definite = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].ok != baseline[i].ok) {
        state.SkipWithError("item availability diverges from the baseline");
        return;
      }
      if (!out[i].ok) continue;
      if (baseline[i].verdict != Verdict::kUnknown) {
        if (out[i].verdict != baseline[i].verdict) {
          state.SkipWithError("definite verdicts diverge from the baseline");
          return;
        }
      } else if (out[i].verdict != Verdict::kUnknown) {
        ++extra_definite;
      }
    }
    stats_json = engine.StatsJson();
    const PipelineStats& s = engine.stats();
    for (std::size_t i = 0; i < kStrategyCount; ++i) {
      state.counters[std::string("wins_") +
                     StrategyName(static_cast<StrategyId>(i))] =
          static_cast<double>(s.strategy_wins[i].load());
    }
    state.counters["facts_consumed"] = static_cast<double>(s.facts_consumed.load());
  }
  state.counters["extra_definite"] = static_cast<double>(extra_definite);
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(items.size()) * state.iterations(),
      benchmark::Counter::kIsRate);
  std::fprintf(stderr, "BM_EngineBatchPortfolio/threads:%ld stats %s\n",
               static_cast<long>(state.range(0)), stats_json.c_str());
}
BENCHMARK(BM_EngineBatchPortfolio)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
