// E9: randomized workloads — decision coverage and verdict distribution of
// the full pipeline over generated schema/query-pair instances, split by
// query class (simple vs concatenation). Expected shape: high exact-decision
// rates on small instances; the simple class keeps more of the exact
// machinery applicable as instances grow.

#include <benchmark/benchmark.h>

#include "src/core/containment.h"
#include "src/dl/concept_parser.h"
#include "src/query/parser.h"
#include "src/schema/workload.h"

namespace {

using namespace gqc;

void RunWorkloadBench(benchmark::State& state, bool simple) {
  WorkloadOptions options;
  options.simple_queries = simple;
  options.query_atoms = static_cast<std::size_t>(state.range(0));
  options.seed = 1000;

  int contained = 0, refuted = 0, unknown = 0;
  for (auto _ : state) {
    contained = refuted = unknown = 0;
    for (const WorkloadInstance& inst : GenerateWorkload(options, 20)) {
      Vocabulary vocab;
      auto schema = ParseTBox(inst.schema_text, &vocab);
      auto p = ParseUcrpq(inst.p_text, &vocab);
      auto q = ParseUcrpq(inst.q_text, &vocab);
      if (!schema.ok() || !p.ok() || !q.ok()) continue;
      ContainmentChecker checker(&vocab);
      switch (checker.Decide(p.value(), q.value(), schema.value()).verdict) {
        case Verdict::kContained:
          ++contained;
          break;
        case Verdict::kNotContained:
          ++refuted;
          break;
        case Verdict::kUnknown:
          ++unknown;
          break;
      }
    }
  }
  state.counters["contained"] = contained;
  state.counters["not_contained"] = refuted;
  state.counters["unknown"] = unknown;
}

void BM_E9_SimpleWorkload(benchmark::State& state) {
  RunWorkloadBench(state, /*simple=*/true);
}
BENCHMARK(BM_E9_SimpleWorkload)->DenseRange(1, 2, 1)->Unit(benchmark::kMillisecond);

void BM_E9_ConcatWorkload(benchmark::State& state) {
  RunWorkloadBench(state, /*simple=*/false);
}
BENCHMARK(BM_E9_ConcatWorkload)->DenseRange(1, 2, 1)->Unit(benchmark::kMillisecond);

}  // namespace
