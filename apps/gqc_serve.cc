// gqc_serve: JSON-lines containment server over the layered engine core.
//
//   gqc_serve [--port N] [--threads N] [--portfolio]
//             [--deadline-ms X] [--max-inflight N] [--max-queue N]
//             [--cache-entries N] [--cache-mb N] [--snapshot PATH]
//
// Listens on loopback; prints "GQC_SERVE_READY port=<port>" on stdout once
// accepting. One flat JSON object per line in, one per line out (protocol in
// src/serve/server.h). SIGTERM/SIGINT drain gracefully: in-flight requests
// finish, queued ones are answered "draining", the snapshot (if configured)
// is saved, and the process exits 0.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/serve/server.h"

namespace {

volatile std::sig_atomic_t g_drain = 0;

void OnSignal(int) { g_drain = 1; }

gqc::serve::Server* g_server = nullptr;

}  // namespace

int main(int argc, char** argv) {
  gqc::serve::ServeOptions options;
  options.engine.threads = 0;  // hardware concurrency
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gqc_serve: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--threads") {
      options.engine.threads = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--portfolio") {
      options.engine.portfolio = true;
    } else if (arg == "--deadline-ms") {
      options.request_deadline_ms = std::atof(next());
    } else if (arg == "--max-inflight") {
      options.admission.max_in_flight = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--max-queue") {
      options.admission.max_queue = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--cache-entries") {
      options.cache_budget.max_entries = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--cache-mb") {
      options.cache_budget.max_bytes =
          static_cast<std::size_t>(std::atoi(next())) * 1024 * 1024;
    } else if (arg == "--snapshot") {
      options.snapshot_path = next();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: gqc_serve [--port N] [--threads N] [--portfolio]\n"
          "                 [--deadline-ms X] [--max-inflight N] [--max-queue N]\n"
          "                 [--cache-entries N] [--cache-mb N] [--snapshot PATH]\n");
      return 0;
    } else {
      std::fprintf(stderr, "gqc_serve: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  gqc::serve::Server server(std::move(options));
  auto listening = server.Listen();
  if (!listening.ok()) {
    std::fprintf(stderr, "gqc_serve: %s\n", listening.error().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  std::printf("GQC_SERVE_READY port=%u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  if (server.warmstart_loaded() > 0) {
    std::fprintf(stderr, "gqc_serve: warm-started %llu contexts\n",
                 static_cast<unsigned long long>(server.warmstart_loaded()));
  }

  // The signal handler only flips a flag; this watcher forwards it to the
  // server's atomic so Run()'s poll tick notices within 100ms.
  std::thread watcher([&server] {
    // lint: bounded(one iteration per 50ms until drain)
    while (!g_drain && !server.drain_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.RequestDrain();
  });

  server.Run();
  g_drain = 1;  // stop the watcher if drain came from elsewhere
  watcher.join();
  std::fprintf(stderr, "%s\n", server.core().StatsJson().c_str());
  return 0;
}
