#!/usr/bin/env bash
# Run the engine / thread-pool / budget tests under ThreadSanitizer.
#
# The batch engine (src/engine) is the one concurrent subsystem: a
# work-stealing thread pool plus mutex-guarded context caches shared across
# worker threads, resource guards (deadlines, step budgets, cancellation
# tokens) polled concurrently by disjunct-level workers, and the racing
# strategy portfolio (per-strategy guards cancelled through a shared race
# token, with the mutex-guarded fact board exchanging countermodels between
# racers). This script builds the tsan preset and runs every EngineTest.* /
# ThreadPoolTest.* / BudgetTest.* / PortfolioTest.* / StrategyTest.* /
# FactBoardTest.* / SyncTest.* / FlatContainerTest.* case under it (SyncTest
# is the dedicated
# multi-threaded stress file: sync-primitive contracts, fact-board/cache
# hammering from 8 threads, CancelAll storms), so data races in the pool,
# the caches, the guards, the race bookkeeping, the board, or the atomic
# stats counters surface as hard failures.
#
# Usage:
#   tools/sanitize.sh            # TSan over the engine tests (the default)
#   tools/sanitize.sh --all      # TSan over the full suite (slow)
#   tools/sanitize.sh --asan     # ASan+UBSan over the full suite instead
#
# Both presets configure with GQC_AUDIT=ON (see CMakePresets.json), so the
# sanitizer runs also execute every GQC_DCHECK / GQC_AUDIT validator: an
# invariant violation surfaces as an abort with the violated check, not as
# whatever memory error it would eventually cause.
#
# Exits non-zero on any sanitizer report or test failure.

set -euo pipefail
cd "$(dirname "$0")/.."

preset=tsan
filter='^(EngineTest|ThreadPoolTest|BudgetTest|PortfolioTest|StrategyTest|FactBoardTest|SyncTest|FlatContainerTest)\.'
for arg in "$@"; do
  case "$arg" in
    --all) filter='.*' ;;
    --asan) preset=asan-ubsan; filter='.*' ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"

# halt_on_error makes the first race fail the test instead of just logging.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"
export ASAN_OPTIONS="detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1 ${UBSAN_OPTIONS:-}"
# Shrink the workload-driven engine batches: race coverage needs many threads,
# not many items, and the full batches blow the ctest timeout under TSan's
# ~10x slowdown. Override by exporting a different value (0 = full size).
export GQC_ENGINE_TEST_ITEMS="${GQC_ENGINE_TEST_ITEMS:-6}"

# The slow label (exhaustive brute-force sweeps) is excluded: those tests
# are single-threaded enumeration loops with nothing for a sanitizer to
# find, and TSan's slowdown would multiply their already-long runtime.
ctest --preset "$preset" -R "$filter" -LE slow --timeout 3600
