#!/usr/bin/env python3
"""Compare a fresh Google Benchmark JSON against a committed baseline.

Usage:
  tools/bench_diff.py BASELINE.json FRESH.json [--threshold 1.10] [--min-ns 1000]

Prints a per-benchmark table of real_time deltas (fresh / baseline; ratios
below 1.0 are speedups) and exits nonzero if any benchmark regressed past the
threshold. Benchmarks present on only one side are reported but do not fail
the run (suites grow and shrink across PRs).

A note on noise: real_time on a loaded or frequency-scaled machine can swing
by tens of percent. The tool surfaces the benchmark library's own context
(cpu_scaling_enabled, load average when present) as a sanity note; treat
single-digit-percent deltas as noise unless reproduced.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    ctx = doc.get("context", {})
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue  # compare raw iterations, not mean/median/stddev rows
        name = b.get("name")
        if name is None or "real_time" not in b:
            continue
        rows[name] = {
            "real_time": float(b["real_time"]),
            "time_unit": b.get("time_unit", "ns"),
        }
    return ctx, rows


UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(row):
    return row["real_time"] * UNIT_NS.get(row["time_unit"], 1.0)


def context_notes(label, ctx):
    notes = []
    build = ctx.get("gqc_build_type") or ctx.get("library_build_type")
    if build and "debug" in str(build):
        notes.append(f"{label}: built in DEBUG mode ({build}) — numbers are not baseline-grade")
    if ctx.get("cpu_scaling_enabled"):
        notes.append(f"{label}: cpu frequency scaling is enabled — expect noisy timings")
    load_avg = ctx.get("load_avg")
    if isinstance(load_avg, list) and load_avg and load_avg[0] > ctx.get("num_cpus", 1):
        notes.append(
            f"{label}: load average {load_avg[0]:.2f} exceeds cpu count "
            f"{ctx.get('num_cpus')} — the machine was busy during the run"
        )
    return notes


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=1.10,
                    help="fail if fresh/baseline real_time exceeds this ratio "
                         "(default 1.10 = 10%% regression)")
    ap.add_argument("--min-ns", type=float, default=1000.0,
                    help="ignore benchmarks faster than this in the baseline "
                         "(sub-microsecond timings are dominated by noise)")
    args = ap.parse_args()

    base_ctx, base = load(args.baseline)
    fresh_ctx, fresh = load(args.fresh)

    for note in context_notes("baseline", base_ctx) + context_notes("fresh", fresh_ctx):
        print(f"note: {note}")

    shared = sorted(set(base) & set(fresh))
    only_base = sorted(set(base) - set(fresh))
    only_fresh = sorted(set(fresh) - set(base))

    width = max((len(n) for n in shared), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  {'ratio':>7}")
    regressions = []
    speedups = 0
    for name in shared:
        b_ns, f_ns = to_ns(base[name]), to_ns(fresh[name])
        if b_ns < args.min_ns:
            print(f"{name:<{width}}  {b_ns:>10.0f}ns  {f_ns:>10.0f}ns    skip (below --min-ns)")
            continue
        ratio = f_ns / b_ns if b_ns > 0 else float("inf")
        flag = ""
        if ratio > args.threshold:
            flag = "  REGRESSION"
            regressions.append((name, ratio))
        elif ratio < 1.0 / args.threshold:
            flag = "  improved"
            speedups += 1
        print(f"{name:<{width}}  {b_ns:>10.0f}ns  {f_ns:>10.0f}ns  {ratio:>7.3f}{flag}")

    for name in only_base:
        print(f"only in baseline: {name}")
    for name in only_fresh:
        print(f"only in fresh:    {name}")

    print(f"\n{len(shared)} compared, {speedups} improved, {len(regressions)} regressed "
          f"(threshold {args.threshold:.2f}x)")
    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"worst regression: {worst[0]} at {worst[1]:.3f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
