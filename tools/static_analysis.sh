#!/usr/bin/env bash
# The repo's static-analysis gate. Runs, in order:
#
#   1. a warnings-as-errors build (-Wall -Wextra -Wpedantic -Werror) that
#      also exports compile_commands.json,
#   2. the domain lint self-tests (each rule must fire on its bad fixture
#      and stay silent on the good one),
#   3. the domain lint over src/ (guard polling, Result discipline, banned
#      assert()/std::sto*, raw sync primitives, implicit atomic memory
#      orders, header self-sufficiency — see tools/lint/),
#   4. clang-tidy over src/**/*.cc with the curated .clang-tidy profile,
#      any finding treated as an error,
#   5. a clang++ -Wthread-safety -Werror=thread-safety build of the library
#      (Clang's Thread Safety Analysis over the gqc::Mutex capability
#      annotations in src/util/sync.h — the GCC build of layer 1 compiles
#      the annotations away, so this is the only layer that checks them).
#
# clang-tidy results are cached per file content hash under
# ${GQC_TIDY_CACHE:-.cache/clang-tidy}: an unchanged file with an unchanged
# profile is not re-analyzed. CI persists that directory between runs.
#
# Layers 4 and 5 need LLVM tooling. If clang-tidy / clang++ is not installed
# (e.g. the minimal dev container), the corresponding layer is skipped with a
# notice and the gate still passes — the compiler and lint layers run
# everywhere, the clang layers wherever the binaries exist.
#
# Usage:
#   tools/static_analysis.sh             # full gate
#   tools/static_analysis.sh --no-build  # reuse an existing build dir
#
# Exits non-zero on the first failing layer.

set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$PWD"

BUILD_DIR="${GQC_SA_BUILD_DIR:-$ROOT/build-sa}"
TS_BUILD_DIR="${GQC_TS_BUILD_DIR:-$ROOT/build-threadsafety}"
CACHE_DIR="${GQC_TIDY_CACHE:-$ROOT/.cache/clang-tidy}"
JOBS="$(nproc)"

run_build=1
for arg in "$@"; do
  case "$arg" in
    --no-build) run_build=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

skipped_layers=""

echo "== [1/5] warnings-as-errors build =="
if [[ "$run_build" == 1 ]]; then
  cmake -S "$ROOT" -B "$BUILD_DIR" -DGQC_WERROR=ON \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  cmake --build "$BUILD_DIR" -j "$JOBS"
else
  echo "   (skipped: --no-build)"
fi

echo "== [2/5] lint self-tests =="
python3 tools/lint/gqc_lint.py --selftest

echo "== [3/5] domain lint over src/ =="
python3 tools/lint/gqc_lint.py

echo "== [4/5] clang-tidy =="
TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      TIDY="$candidate"
      break
    fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "   clang-tidy not installed; skipping the tidy layer."
  skipped_layers="$skipped_layers tidy"
elif [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "   missing $BUILD_DIR/compile_commands.json (run without --no-build)" >&2
  exit 1
else
  mkdir -p "$CACHE_DIR"
  # Cache key ingredients shared by every file: the profile and the tidy
  # binary's own version (a new clang-tidy can introduce new findings).
  profile_hash="$({ cat .clang-tidy; "$TIDY" --version; } | sha256sum | cut -d' ' -f1)"

  failed=0
  analyzed=0
  cached=0
  while IFS= read -r file; do
    key="$(cat "$file" | sha256sum | cut -d' ' -f1)-$profile_hash"
    marker="$CACHE_DIR/${key}.ok"
    if [[ -f "$marker" ]]; then
      cached=$((cached + 1))
      continue
    fi
    analyzed=$((analyzed + 1))
    if "$TIDY" -p "$BUILD_DIR" -warnings-as-errors='*' -quiet "$file"; then
      touch "$marker"
    else
      failed=1
    fi
  done < <(find src -name '*.cc' | sort)

  echo "   clang-tidy: $analyzed analyzed, $cached cache hits"
  if [[ "$failed" != 0 ]]; then
    echo "static_analysis: FAIL (clang-tidy findings above)" >&2
    exit 1
  fi
fi

echo "== [5/5] clang thread-safety analysis =="
CLANGXX="${CLANGXX:-}"
if [[ -z "$CLANGXX" ]]; then
  for candidate in clang++ clang++-18 clang++-17 clang++-16 clang++-15 \
                   clang++-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CLANGXX="$candidate"
      break
    fi
  done
fi
if [[ -z "$CLANGXX" ]]; then
  echo "   clang++ not installed; skipping the thread-safety layer."
  skipped_layers="$skipped_layers thread-safety"
else
  # Library target only: the analysis is about src/; CMakeLists adds
  # -Wthread-safety -Werror=thread-safety whenever the compiler is Clang.
  cmake -S "$ROOT" -B "$TS_BUILD_DIR" -DGQC_WERROR=ON \
        -DCMAKE_CXX_COMPILER="$CLANGXX" >/dev/null
  cmake --build "$TS_BUILD_DIR" -j "$JOBS" --target gqc
fi

if [[ -n "$skipped_layers" ]]; then
  echo "static_analysis: PASS (skipped:$skipped_layers)"
else
  echo "static_analysis: PASS"
fi
