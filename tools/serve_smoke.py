#!/usr/bin/env python3
"""Smoke test for gqc_serve: boot, drive ~100 mixed requests, drain.

Usage: serve_smoke.py /path/to/gqc_serve

Asserts:
  * the server prints the GQC_SERVE_READY handshake and accepts connections;
  * decide requests return well-formed outcome lines with stable verdicts
    (the same pair always gets the same verdict across the run);
  * over-deadline requests come back kUnknown (deadline), never a flipped
    definite verdict;
  * malformed lines get {"ok":false,...} without killing the connection;
  * stats/ping/evict respond; and
  * SIGTERM drains gracefully: every in-flight request is answered and the
    process exits 0.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

SCHEMA = "A <= exists r.B\ntop <= forall r.B"

# Small UCRPQ pairs over the schema above; mix of contained / not / self.
PAIRS = [
    ("q0", "A(x), r(x, y), B(y)", "A(x), r(x, y)"),
    ("q1", "A(x), r(x, y)", "A(x), r(x, y), B(y)"),
    ("q2", "r(x, y)", "r(x, y); s(x, y)"),
    ("q3", "A(x)", "B(x)"),
    ("q4", "A(x), r(x, y), r(y, z)", "r(x, y)"),
]


class Client:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.buf = b""

    def request(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode())
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise RuntimeError("server closed connection mid-request")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def close(self):
        self.sock.close()


def fail(msg):
    print("serve_smoke: FAIL: " + msg, file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: serve_smoke.py /path/to/gqc_serve")
    binary = sys.argv[1]

    proc = subprocess.Popen(
        [binary, "--port", "0", "--max-inflight", "2", "--max-queue", "4"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
    )
    try:
        ready = proc.stdout.readline().decode().strip()
        if not ready.startswith("GQC_SERVE_READY port="):
            fail("bad handshake line: %r" % ready)
        port = int(ready.split("=", 1)[1])

        client = Client(port)

        # Warm-up + protocol sanity.
        pong = client.request({"op": "ping"})
        if not (pong.get("ok") and pong.get("pong")):
            fail("ping: %r" % pong)
        bad = client.request({"op": "no-such-op"})
        if bad.get("ok") is not False:
            fail("unknown op accepted: %r" % bad)

        # ~100 mixed requests on one connection; verdicts must be stable.
        verdicts = {}
        decided = 0
        for i in range(90):
            qid, p, q = PAIRS[i % len(PAIRS)]
            req = {"id": "%s-%d" % (qid, i), "schema": SCHEMA, "p": p, "q": q}
            if i % 9 == 7:
                # Over-deadline: must shed to unknown, never flip a verdict.
                req["deadline_ms"] = "0.0001"
            resp = client.request(req)
            if not resp.get("ok"):
                fail("decide %s errored: %r" % (req["id"], resp))
            verdict = resp.get("verdict")
            if verdict not in ("contained", "not-contained", "unknown"):
                fail("decide %s: bad verdict %r" % (req["id"], verdict))
            decided += 1
            if verdict != "unknown":
                prev = verdicts.setdefault(qid, verdict)
                if prev != verdict:
                    fail("verdict flip for %s: %s vs %s" % (qid, prev, verdict))
            if i % 25 == 13:
                st = client.request({"op": "stats"})
                if not st.get("ok") or "serve" not in st or "engine" not in st:
                    fail("stats: %r" % st)

        # Every non-degenerate pair must have produced a definite verdict at
        # least once (deadlines only hit 1-in-9 requests).
        for qid, _, _ in PAIRS:
            if qid not in verdicts:
                fail("pair %s never produced a definite verdict" % qid)

        # Malformed JSON must not kill the connection.
        client.sock.sendall(b"{this is not json\n")
        client.buf = b""
        while b"\n" not in client.buf:
            client.buf += client.sock.recv(65536)
        line, client.buf = client.buf.split(b"\n", 1)
        err = json.loads(line)
        if err.get("ok") is not False:
            fail("malformed line accepted: %r" % err)
        pong = client.request({"op": "ping"})
        if not pong.get("pong"):
            fail("connection dead after malformed line")

        ev = client.request({"op": "evict", "pressure": "1.0"})
        if not ev.get("ok"):
            fail("evict: %r" % ev)

        # A few extra connections so drain has multiple handlers to join.
        extras = [Client(port) for _ in range(3)]
        for i, c in enumerate(extras):
            resp = c.request(
                {"id": "x%d" % i, "schema": SCHEMA,
                 "p": PAIRS[0][1], "q": PAIRS[0][2]})
            if not resp.get("ok"):
                fail("extra conn decide: %r" % resp)

        # Graceful drain: SIGTERM, then the process must exit 0 on its own.
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        if rc != 0:
            fail("drain exit code %d (want 0)" % rc)

        client.close()
        for c in extras:
            c.close()
        print("serve_smoke: OK (%d requests decided, clean drain)" % decided)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()
