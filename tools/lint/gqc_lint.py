#!/usr/bin/env python3
"""gqc_lint — domain-aware lint rules the compiler cannot enforce.

Rules (see DESIGN.md for the catalogue, rationale, and suppression syntax):

  guard-poll      every loop in the exponential-phase files must poll a
                  ResourceGuard somewhere in its body, or carry a
                  `// lint: bounded(<why>)` annotation explaining why the
                  iteration count is harmless.
  strategy-run-guard  every `ContainmentResult <Class>::Run(...)` definition
                  (the Strategy interface of src/core/strategy.h) must poll
                  or wire its ResourceGuard parameter — racing cancellation
                  reaches losing strategies only through guard polls — and
                  every loop inside such a body must poll/wire the guard or
                  carry `// lint: bounded(<why>)`.
  result-unchecked  `.value()` on a Result/optional must be preceded by a
                  visible ok()/has_value() check on the same variable, or
                  carry `// lint: checked(<why>)`.
  raw-assert      `assert(` is banned in src/ — use GQC_DCHECK/GQC_AUDIT
                  (src/util/invariant.h) so checks follow the audit build
                  flavor instead of NDEBUG.
  raw-sto         `std::sto*` is banned — it throws on overflow and consults
                  the locale; use gqc::ParseUint32 (src/util/parse_num.h).
  raw-sync-primitive  `std::mutex` / `std::lock_guard` / `std::condition_variable`
                  (and friends) are banned outside src/util/sync.h — use
                  gqc::Mutex/MutexLock/CondVar so every lock carries its
                  thread-safety capability and lock-order rank.
  atomic-memory-order  every std::atomic load/store/RMW must spell its
                  std::memory_order explicitly; a bare `.load()` silently
                  defaults to seq_cst, hiding the intended (and usually
                  cheaper) ordering contract.
  hot-path-container  node-based ordered containers (std::set/std::map and
                  their multi variants) are banned in the entailment fixpoint
                  files and the containment caches — the hot paths use dense
                  type-index bitsets, MaskIndex, and the open-addressing
                  FlatMap/FlatSet (DESIGN.md §11). Genuinely cold code
                  escapes with `// lint: cold(<why>)`.
  header-self-contained  every header in src/ must compile on its own
                  (IWYU-lite; catches headers leaning on transitive includes).

Exit status: 0 clean, 1 findings, 2 infrastructure error.

Suppressions are per-line comments of the form `// lint: <tag>(<reason>)`
placed on the offending line or the line directly above; the reason is
mandatory so each waiver documents itself.
"""

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys
import tempfile

# --------------------------------------------------------------------------
# Configuration

# Files implementing the (worst-case double-exponential) decision phases:
# any unguarded loop here is a potential unbounded burn that bypasses the
# ResourceGuard budget discipline.
EXPO_FILE_PATTERNS = [
    r"src/core/reduction\.cc$",
    r"src/core/sparse\.cc$",
    r"src/core/minimize\.cc$",
    r"src/core/strategy\.cc$",
    r"src/core/portfolio\.cc$",
    r"src/entailment/[^/]+\.cc$",
    r"src/frames/[^/]+\.cc$",
]

# A loop "polls" if its body mentions one of these guard entry points
# (directly or via a helper named after the guard protocol).
GUARD_POLL_RE = re.compile(
    r"\b(?:Charge|ChargeMemory|Recheck|GuardCharge|GuardExhausted|OutOfBudget"
    r"|CheckDeadline)\s*\("
    r"|\bexhausted\s*\("
)

# Identifier-based checks that sanction a later `.value()` on the same name.
CHECK_TOKEN_TEMPLATES = [
    r"\b{id}\s*\.\s*ok\s*\(",
    r"\b{id}\s*\.\s*has_value\s*\(",
    r"if\s*\(\s*{id}\s*\)",
    r"if\s*\(\s*!\s*{id}\s*\)",
    r"(?:ASSERT|EXPECT)_TRUE\s*\(\s*{id}",
    r"(?:ASSERT|EXPECT)_FALSE\s*\(\s*!\s*{id}",
    r"return\s+!?{id}\s*;",
    r"!\s*{id}\s*\.\s*ok\s*\(",
]

# How far back (in lines) a check may sit from the `.value()` it sanctions.
CHECK_WINDOW_LINES = 60

RAW_ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
RAW_STO_RE = re.compile(r"std\s*::\s*sto[a-z]+\b")
# Files allowed to use std::sto* (checked wrappers live here).
RAW_STO_SANCTIONED = [r"src/util/parse_num\.h$"]

# Raw standard-library synchronization primitives. Longer alternatives first
# so e.g. `recursive_mutex` is not half-matched as `mutex`.
RAW_SYNC_RE = re.compile(
    r"std\s*::\s*(?:recursive_timed_mutex|recursive_mutex|timed_mutex"
    r"|shared_timed_mutex|shared_mutex|mutex|lock_guard|scoped_lock"
    r"|unique_lock|shared_lock|condition_variable_any|condition_variable)\b"
)
# The annotated wrappers are built on the raw primitives here (and only here).
RAW_SYNC_SANCTIONED = [r"src/util/sync\.h$"]

# std::atomic member operations that take an optional std::memory_order.
# `.clear()`, `.wait()`, `.notify_*()` are deliberately absent: those names
# collide with containers and condition variables far more often than they
# appear on atomics in this codebase.
ATOMIC_CALL_RE = re.compile(
    r"(?:\.|->)\s*(?P<op>load|store|exchange|fetch_add|fetch_sub|fetch_and"
    r"|fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong"
    r"|test_and_set)\s*\("
)

# Hot-path files where node-based ordered containers are banned: the §6/App-B
# fixpoint kernels and the caches keyed by canonical strings. Word-boundary
# after set/map keeps std::set_intersection and friends out of scope.
HOT_PATH_FILE_PATTERNS = [
    r"src/entailment/[^/]+\.(?:h|cc)$",
    r"src/core/caches\.(?:h|cc)$",
    # The serving layer sits on every request's path: its session registry
    # and admission bookkeeping must stay on the flat containers too.
    r"src/serve/[^/]+\.(?:h|cc)$",
]
HOT_PATH_CONTAINER_RE = re.compile(r"std\s*::\s*(?:multiset|multimap|set|map)\b")

VALUE_CALL_RE = re.compile(
    r"(?:std\s*::\s*move\s*\(\s*)?"
    r"(?P<base>[A-Za-z_][A-Za-z0-9_]*(?:\s*(?:\.|->)\s*[A-Za-z_][A-Za-z0-9_]*)*)"
    r"\s*\)?\s*\.\s*value\s*\(\s*\)"
)

ANNOTATION_RE = re.compile(r"//\s*lint:\s*(?P<tag>[a-z-]+)\s*(?:\((?P<why>[^)]*)\))?")

HEADER_EXEMPT_PATTERNS = []  # every header must stand alone


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Lexical preprocessing

def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving offsets.

    Newlines inside block comments survive so line numbers stay aligned.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            j = min(j, n - 1)
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_annotations(text):
    """Maps line number -> set of suppression tags on that line."""
    result = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for m in ANNOTATION_RE.finditer(line):
            result.setdefault(lineno, set()).add(m.group("tag"))
    return result


def suppressed(annotations, lineno, tag):
    return tag in annotations.get(lineno, set()) or tag in annotations.get(
        lineno - 1, set()
    )


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def match_paren(text, open_pos, open_ch="(", close_ch=")"):
    """Offset just past the matching close bracket, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def loop_body_span(stripped, header_end):
    """Span of a loop body starting after the loop header.

    Returns (start, end) offsets; handles `{...}` bodies and single
    statements (terminated by `;` at depth zero).
    """
    i = header_end
    n = len(stripped)
    while i < n and stripped[i] in " \t\n":
        i += 1
    if i >= n:
        return (header_end, header_end)
    if stripped[i] == "{":
        end = match_paren(stripped, i, "{", "}")
        return (i, n if end == -1 else end)
    # Single-statement body: up to the first `;` at bracket depth zero.
    depth = 0
    j = i
    while j < n:
        c = stripped[j]
        if c in "({[":
            depth += 1
        elif c in ")}]":
            depth -= 1
        elif c == ";" and depth == 0:
            return (i, j + 1)
        j += 1
    return (i, n)


# --------------------------------------------------------------------------
# Rules

LOOP_HEAD_RE = re.compile(r"(?<![A-Za-z0-9_])(for|while)\s*\(")
DO_HEAD_RE = re.compile(r"(?<![A-Za-z0-9_])do\s*\{")


def rule_guard_poll(path, text, stripped, annotations, treat_as_expo=False):
    rel = path.replace("\\", "/")
    if not treat_as_expo and not any(
        re.search(p, rel) for p in EXPO_FILE_PATTERNS
    ):
        return []
    findings = []

    def check_loop(head_pos, body_span, kind):
        lineno = line_of(stripped, head_pos)
        if suppressed(annotations, lineno, "bounded"):
            return
        body = stripped[body_span[0] : body_span[1]]
        if GUARD_POLL_RE.search(body):
            return
        findings.append(
            Finding(
                "guard-poll",
                path,
                lineno,
                f"{kind} loop in exponential-phase file neither polls a "
                "ResourceGuard nor carries `// lint: bounded(<why>)`",
            )
        )

    for m in LOOP_HEAD_RE.finditer(stripped):
        cond_end = match_paren(stripped, m.end() - 1)
        if cond_end == -1:
            continue
        # `do { ... } while (cond);` — the trailing while is not a loop head.
        after = stripped[cond_end:].lstrip()
        if m.group(1) == "while" and after.startswith(";"):
            continue
        check_loop(m.start(), loop_body_span(stripped, cond_end), m.group(1))
    for m in DO_HEAD_RE.finditer(stripped):
        brace = stripped.find("{", m.start())
        end = match_paren(stripped, brace, "{", "}")
        if end == -1:
            end = len(stripped)
        check_loop(m.start(), (brace, end), "do")
    return findings


# Out-of-line Strategy::Run definition: `ContainmentResult <Class>::Run(`.
# Keeping Run definitions out-of-line is part of the Strategy idiom so this
# rule can see them (a Run defined inline in a class body will not match and
# review must catch it; the in-tree strategies all follow the idiom).
STRATEGY_RUN_RE = re.compile(
    r"ContainmentResult\s+[A-Za-z_][A-Za-z0-9_]*\s*::\s*Run\s*\("
)
# The guard is "used" if the body polls the protocol (GUARD_POLL_RE) or
# wires/forwards the `guard` parameter into a guarded callee's options.
GUARD_WIRE_RE = re.compile(r"\bguard\b")


def rule_strategy_run_guard(path, text, stripped, annotations):
    """Strategy::Run bodies must poll/wire their guard, including in loops.

    Racing cancellation (PortfolioRunner's first-definite-wins token) reaches
    a losing strategy only through its ResourceGuard: a Run implementation
    that never polls or forwards the guard cannot be cancelled and turns the
    race into a wait-for-slowest. Loops inside Run are held to the guard-poll
    discipline of the exponential-phase files regardless of which file the
    strategy lives in.
    """
    findings = []
    for m in STRATEGY_RUN_RE.finditer(stripped):
        params_end = match_paren(stripped, stripped.index("(", m.start()))
        if params_end == -1:
            continue
        # Skip declarations (`... Run(...) const;`) — only definitions with a
        # brace body are checked.
        body_start = params_end
        n = len(stripped)
        while body_start < n and stripped[body_start] not in "{;":
            body_start += 1
        if body_start >= n or stripped[body_start] == ";":
            continue
        body_end = match_paren(stripped, body_start, "{", "}")
        if body_end == -1:
            body_end = n
        body = stripped[body_start:body_end]
        lineno = line_of(stripped, m.start())
        if not (GUARD_POLL_RE.search(body) or GUARD_WIRE_RE.search(body)):
            findings.append(
                Finding(
                    "strategy-run-guard",
                    path,
                    lineno,
                    "Strategy::Run implementation neither polls nor wires its "
                    "ResourceGuard — race cancellation cannot reach it",
                )
            )
            continue

        def check_loop(head_pos, body_span, kind):
            loop_line = line_of(stripped, head_pos)
            if suppressed(annotations, loop_line, "bounded"):
                return
            loop_body = stripped[body_span[0] : body_span[1]]
            if GUARD_POLL_RE.search(loop_body) or GUARD_WIRE_RE.search(loop_body):
                return
            findings.append(
                Finding(
                    "strategy-run-guard",
                    path,
                    loop_line,
                    f"{kind} loop inside Strategy::Run neither polls/wires the "
                    "guard nor carries `// lint: bounded(<why>)`",
                )
            )

        for lm in LOOP_HEAD_RE.finditer(stripped, body_start, body_end):
            cond_end = match_paren(stripped, lm.end() - 1)
            if cond_end == -1 or cond_end > body_end:
                continue
            after = stripped[cond_end:].lstrip()
            if lm.group(1) == "while" and after.startswith(";"):
                continue
            check_loop(lm.start(), loop_body_span(stripped, cond_end), lm.group(1))
        for dm in DO_HEAD_RE.finditer(stripped, body_start, body_end):
            brace = stripped.find("{", dm.start())
            end = match_paren(stripped, brace, "{", "}")
            if end == -1:
                end = body_end
            check_loop(dm.start(), (brace, end), "do")
    return findings


def rule_result_unchecked(path, text, stripped, annotations):
    findings = []
    lines = stripped.splitlines()
    for m in VALUE_CALL_RE.finditer(stripped):
        lineno = line_of(stripped, m.start())
        if suppressed(annotations, lineno, "checked"):
            continue
        base = re.sub(r"\s+", "", m.group("base"))
        # Chained call like `Foo(x).value()` has no variable to have checked.
        window = "\n".join(lines[max(0, lineno - 1 - CHECK_WINDOW_LINES) : lineno])
        base_re = re.escape(base)
        ok = any(
            re.search(t.format(id=base_re), window) for t in CHECK_TOKEN_TEMPLATES
        )
        if not ok:
            findings.append(
                Finding(
                    "result-unchecked",
                    path,
                    lineno,
                    f"`.value()` on `{base}` with no visible ok()/has_value() "
                    f"check in the preceding {CHECK_WINDOW_LINES} lines "
                    "(annotate `// lint: checked(<why>)` if guarded elsewhere)",
                )
            )
    return findings


def rule_raw_assert(path, text, stripped, annotations):
    findings = []
    for m in RAW_ASSERT_RE.finditer(stripped):
        lineno = line_of(stripped, m.start())
        if suppressed(annotations, lineno, "raw-assert"):
            continue
        findings.append(
            Finding(
                "raw-assert",
                path,
                lineno,
                "raw assert() — use GQC_DCHECK/GQC_AUDIT from "
                "src/util/invariant.h instead",
            )
        )
    return findings


def rule_raw_sto(path, text, stripped, annotations):
    rel = path.replace("\\", "/")
    if any(re.search(p, rel) for p in RAW_STO_SANCTIONED):
        return []
    findings = []
    for m in RAW_STO_RE.finditer(stripped):
        lineno = line_of(stripped, m.start())
        if suppressed(annotations, lineno, "raw-sto"):
            continue
        findings.append(
            Finding(
                "raw-sto",
                path,
                lineno,
                f"`{m.group(0)}` throws on overflow and is locale-dependent — "
                "use gqc::ParseUint32 (src/util/parse_num.h)",
            )
        )
    return findings


def rule_raw_sync_primitive(path, text, stripped, annotations):
    rel = path.replace("\\", "/")
    if any(re.search(p, rel) for p in RAW_SYNC_SANCTIONED):
        return []
    findings = []
    for m in RAW_SYNC_RE.finditer(stripped):
        lineno = line_of(stripped, m.start())
        if suppressed(annotations, lineno, "raw-sync"):
            continue
        primitive = re.sub(r"\s+", "", m.group(0))
        findings.append(
            Finding(
                "raw-sync-primitive",
                path,
                lineno,
                f"raw `{primitive}` — use gqc::Mutex / MutexLock / CondVar "
                "(src/util/sync.h) so the lock carries a thread-safety "
                "capability and a lock-order rank",
            )
        )
    return findings


def rule_atomic_memory_order(path, text, stripped, annotations):
    findings = []
    for m in ATOMIC_CALL_RE.finditer(stripped):
        lineno = line_of(stripped, m.start())
        if suppressed(annotations, lineno, "memory-order"):
            continue
        open_pos = m.end() - 1
        close_pos = match_paren(stripped, open_pos)
        if close_pos == -1:
            close_pos = stripped.find("\n", open_pos)
            if close_pos == -1:
                close_pos = len(stripped)
        args = stripped[open_pos + 1 : close_pos]
        if "memory_order" in args:
            continue
        findings.append(
            Finding(
                "atomic-memory-order",
                path,
                lineno,
                f"atomic `.{m.group('op')}()` without an explicit "
                "std::memory_order — a bare call defaults to seq_cst; spell "
                "the intended ordering (or annotate "
                "`// lint: memory-order(<why>)` for a non-atomic receiver)",
            )
        )
    return findings


def rule_hot_path_container(path, text, stripped, annotations, treat_as_hot=False):
    """Ban std::set/std::map (and multi variants) in the hot-path files.

    The fixpoint kernels operate on dense type indices (DynamicBitset,
    MaskIndex) and the caches on fingerprinted flat tables; a node-based
    ordered container reintroduces per-element allocation and pointer-chasing
    on exactly the paths the bench baselines measure. Cold setup code that
    genuinely wants ordering documents itself with `// lint: cold(<why>)`.
    """
    rel = path.replace("\\", "/")
    if not treat_as_hot and not any(
        re.search(p, rel) for p in HOT_PATH_FILE_PATTERNS
    ):
        return []
    findings = []
    for m in HOT_PATH_CONTAINER_RE.finditer(stripped):
        lineno = line_of(stripped, m.start())
        if suppressed(annotations, lineno, "cold"):
            continue
        container = re.sub(r"\s+", "", m.group(0))
        findings.append(
            Finding(
                "hot-path-container",
                path,
                lineno,
                f"`{container}` in a hot-path file — use DynamicBitset/"
                "MaskIndex over type indices or FlatMap/FlatSet "
                "(DESIGN.md §11); annotate `// lint: cold(<why>)` only for "
                "setup code off the fixpoint/cache paths",
            )
        )
    return findings


def check_header_self_contained(repo, header, std):
    """Compiles `#include "<header>"` alone; returns a Finding or None."""
    rel = os.path.relpath(header, repo).replace("\\", "/")
    tu = f'#include "{rel}"\n'
    with tempfile.NamedTemporaryFile(
        "w", suffix=".cc", delete=False, dir=tempfile.gettempdir()
    ) as f:
        f.write(tu)
        tmp = f.name
    try:
        proc = subprocess.run(
            [
                os.environ.get("CXX", "g++"),
                f"-std={std}",
                "-fsyntax-only",
                "-I",
                repo,
                tmp,
            ],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            first = next(
                (l for l in proc.stderr.splitlines() if "error:" in l),
                proc.stderr.strip().splitlines()[0] if proc.stderr.strip() else "?",
            )
            return Finding(
                "header-self-contained",
                rel,
                1,
                f"header does not compile standalone: {first.strip()}",
            )
    finally:
        os.unlink(tmp)
    return None


# --------------------------------------------------------------------------
# Driver

TEXT_RULES = {
    "guard-poll": rule_guard_poll,
    "strategy-run-guard": rule_strategy_run_guard,
    "result-unchecked": rule_result_unchecked,
    "raw-assert": rule_raw_assert,
    "raw-sto": rule_raw_sto,
    "raw-sync-primitive": rule_raw_sync_primitive,
    "atomic-memory-order": rule_atomic_memory_order,
    "hot-path-container": rule_hot_path_container,
}
ALL_RULES = list(TEXT_RULES) + ["header-self-contained"]


def gather_sources(repo, subdirs=("src",), exts=(".h", ".cc")):
    out = []
    for sub in subdirs:
        root = os.path.join(repo, sub)
        for dirpath, _dirs, files in os.walk(root):
            for name in sorted(files):
                if name.endswith(exts):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


def run_text_rules(repo, files, rules, treat_as_expo=False, treat_as_hot=False):
    findings = []
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        stripped = strip_comments_and_strings(text)
        annotations = collect_annotations(text)
        rel = os.path.relpath(path, repo)
        for rule in rules:
            fn = TEXT_RULES[rule]
            if rule == "guard-poll":
                findings.extend(
                    fn(rel, text, stripped, annotations, treat_as_expo=treat_as_expo)
                )
            elif rule == "hot-path-container":
                findings.extend(
                    fn(rel, text, stripped, annotations, treat_as_hot=treat_as_hot)
                )
            else:
                findings.extend(fn(rel, text, stripped, annotations))
    return findings


def run_header_rule(repo, headers, std, jobs):
    findings = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(check_header_self_contained, repo, h, std) for h in headers
        ]
        for fut in futures:
            result = fut.result()
            if result is not None:
                findings.append(result)
    return findings


# --------------------------------------------------------------------------
# Self-test

def selftest(repo):
    """Each rule must fire on its bad fixture and stay silent on the good one."""
    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
    failures = []

    def expect(rule, fixture, should_fire, **kwargs):
        path = os.path.join(fixtures, fixture)
        if rule == "header-self-contained":
            finding = check_header_self_contained(repo, path, "c++20")
            fired = finding is not None
        else:
            found = run_text_rules(repo, [path], [rule], **kwargs)
            fired = any(f.rule == rule for f in found)
        verdict = "ok" if fired == should_fire else "FAIL"
        want = "fires" if should_fire else "silent"
        print(f"  [{verdict}] {rule:<22} {want:<6} on {fixture}")
        if fired != should_fire:
            failures.append((rule, fixture))

    expect("guard-poll", "guard_poll_bad.cc", True, treat_as_expo=True)
    expect("guard-poll", "guard_poll_good.cc", False, treat_as_expo=True)
    expect("strategy-run-guard", "strategy_run_bad.cc", True)
    expect("strategy-run-guard", "strategy_run_good.cc", False)
    expect("result-unchecked", "result_unchecked_bad.cc", True)
    expect("result-unchecked", "result_unchecked_good.cc", False)
    expect("raw-assert", "raw_assert_bad.cc", True)
    expect("raw-assert", "raw_assert_good.cc", False)
    expect("raw-sto", "raw_sto_bad.cc", True)
    expect("raw-sto", "raw_sto_good.cc", False)
    expect("raw-sync-primitive", "raw_sync_bad.cc", True)
    expect("raw-sync-primitive", "raw_sync_good.cc", False)
    expect("atomic-memory-order", "atomic_order_bad.cc", True)
    expect("atomic-memory-order", "atomic_order_good.cc", False)
    expect("hot-path-container", "hot_path_container_bad.cc", True, treat_as_hot=True)
    expect("hot-path-container", "hot_path_container_good.cc", False, treat_as_hot=True)
    expect("header-self-contained", "header_bad.h", True)
    expect("header-self-contained", "header_good.h", False)

    if failures:
        print(f"selftest: {len(failures)} rule checks FAILED", file=sys.stderr)
        return 1
    print("selftest: all rules fire and pass as expected")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help="files to lint (default: src/)")
    parser.add_argument("--repo", default=None, help="repository root")
    parser.add_argument(
        "--rules",
        default=",".join(ALL_RULES),
        help=f"comma-separated rules to run (default: all = {','.join(ALL_RULES)})",
    )
    parser.add_argument(
        "--skip-compile",
        action="store_true",
        help="skip the compile-based header-self-contained rule",
    )
    parser.add_argument("--std", default="c++20", help="C++ standard for header checks")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    parser.add_argument("--selftest", action="store_true", help="run fixture self-tests")
    args = parser.parse_args()

    repo = os.path.abspath(
        args.repo
        or os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
    )

    if args.selftest:
        return selftest(repo)

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in ALL_RULES]
    if unknown:
        print(f"gqc_lint: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.paths:
        files = [os.path.abspath(p) for p in args.paths]
    else:
        files = gather_sources(repo)

    text_rules = [r for r in rules if r in TEXT_RULES]
    findings = run_text_rules(repo, files, text_rules)

    if "header-self-contained" in rules and not args.skip_compile:
        headers = [f for f in files if f.endswith(".h")]
        findings.extend(run_header_rule(repo, headers, args.std, args.jobs))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        counts = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        print(f"gqc_lint: {len(findings)} finding(s) ({summary})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
