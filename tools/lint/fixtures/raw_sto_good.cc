// Fixture: numeric parsing via the sanctioned checked helper.
// Rule `raw-sto` must stay silent.
#include <optional>
#include <string_view>

namespace gqc {
std::optional<unsigned> ParseUint32(std::string_view text);
}

unsigned ParsePort(std::string_view text) {
  auto port = gqc::ParseUint32(text);
  return port.has_value() ? port.value() : 0;
}
