// Fixture: well-behaved Strategy::Run implementations. Rule
// `strategy-run-guard` must stay silent: every Run polls or wires its guard
// and every loop inside a Run body polls, wires, or is annotated bounded.
struct StrategyContext;
struct ResourceGuard {
  bool Recheck(int phase);
  bool Charge(int phase, unsigned steps = 1);
};
struct ContainmentResult {
  int verdict = 0;
};
struct SearchOptions {
  ResourceGuard* guard = nullptr;
};

struct PollingStrategy {
  ContainmentResult Run(const StrategyContext& ctx, ResourceGuard* guard) const;
};

ContainmentResult PollingStrategy::Run(const StrategyContext& /*ctx*/,
                                       ResourceGuard* guard) const {
  ContainmentResult r;
  if (guard != nullptr && guard->Recheck(0)) return r;
  int total = 0;
  for (int i = 0; i < 1000000; ++i) {
    if (guard != nullptr && guard->Charge(0)) break;  // polls each iteration
    total += i;
  }
  // lint: bounded(fixed 4-entry method table)
  for (int k = 0; k < 4; ++k) total += k;
  r.verdict = total > 0 ? 1 : 0;
  return r;
}

struct WiringStrategy {
  ContainmentResult Run(const StrategyContext& ctx, ResourceGuard* guard) const;
  ContainmentResult Search(const SearchOptions& options) const;
};

// Wires the guard into the callee's options — the search polls it inside.
ContainmentResult WiringStrategy::Run(const StrategyContext& /*ctx*/,
                                      ResourceGuard* guard) const {
  SearchOptions options;
  options.guard = guard;
  return Search(options);
}

// Out-of-class declaration followed by something else must not confuse the
// definition matcher.
struct DeclaredOnly {
  ContainmentResult Run(const StrategyContext& ctx, ResourceGuard* guard) const;
};
