// Fixture: raw standard-library synchronization outside src/util/sync.h.
// Rule `raw-sync-primitive` must fire.
#include <condition_variable>
#include <mutex>

struct Queue {
  std::mutex mu;
  std::condition_variable cv;
};

void Touch(Queue& q) {
  std::lock_guard<std::mutex> lock(q.mu);
  q.cv.notify_one();
}
