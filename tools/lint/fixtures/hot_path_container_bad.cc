// Fixture: node-based ordered containers on a (simulated) hot-path file.
// Rule `hot-path-container` must fire on each of these.
#include <map>
#include <set>

std::set<unsigned long> Frontier() {
  std::set<unsigned long> psi;
  psi.insert(3);
  return psi;
}

int CountMarkers(const std::map<int, int>& markers) {
  std::multiset<int> bag(markers.size(), 0);
  std::multimap<int, int> rebuilt(markers.begin(), markers.end());
  return static_cast<int>(bag.size() + rebuilt.size());
}
