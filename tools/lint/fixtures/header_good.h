#ifndef GQC_TOOLS_LINT_FIXTURES_HEADER_GOOD_H_
#define GQC_TOOLS_LINT_FIXTURES_HEADER_GOOD_H_

// Fixture: self-sufficient header. Rule `header-self-contained` must stay
// silent.

#include <string>

inline std::string Greeting() { return "hello"; }

#endif  // GQC_TOOLS_LINT_FIXTURES_HEADER_GOOD_H_
