#ifndef GQC_TOOLS_LINT_FIXTURES_HEADER_BAD_H_
#define GQC_TOOLS_LINT_FIXTURES_HEADER_BAD_H_

// Fixture: uses std::string without including <string>; compiles only when
// the includer happens to provide it transitively.
// Rule `header-self-contained` must fire.

inline std::string Greeting() { return "hello"; }

#endif  // GQC_TOOLS_LINT_FIXTURES_HEADER_BAD_H_
