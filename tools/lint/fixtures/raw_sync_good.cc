// Fixture: synchronization through the annotated wrappers.
// Rule `raw-sync-primitive` must stay silent.
namespace gqc {
class Mutex {
 public:
  void Lock();
  void Unlock();
};
class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};
}  // namespace gqc

struct Queue {
  gqc::Mutex mu;
};

void Touch(Queue& q) { gqc::MutexLock lock(&q.mu); }
