// Fixture: hot-path file using the sanctioned structures, plus the two
// legitimate escapes. Rule `hot-path-container` must stay silent.
#include <algorithm>
#include <cstdint>
#include <vector>

// std::set_intersection is an algorithm, not a container — the word boundary
// in the rule regex must not flag it.
std::vector<uint64_t> Intersect(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Cold setup code may keep an ordered container with a documented waiver.
#include <set>
// lint: cold(one-time vocabulary dump for diagnostics, never on the fixpoint path)
std::set<int> SortedDiagnosticIds(const std::vector<int>& ids) {
  return std::set<int>(ids.begin(), ids.end());  // lint: cold(diagnostics only)
}
