// Fixture: atomic operations with explicit orderings (including an argument
// list that wraps onto a continuation line, and a suppressed non-atomic
// receiver that happens to share a method name).
// Rule `atomic-memory-order` must stay silent.
#include <atomic>
#include <cstdint>

std::atomic<uint64_t> counter{0};
std::atomic<uint16_t> packed{0};

struct Tape {
  void store(int slot);
};

uint64_t Bump(Tape& tape) {
  counter.fetch_add(1, std::memory_order_relaxed);
  uint16_t expected = 0;
  packed.compare_exchange_strong(expected, 7, std::memory_order_acq_rel,
                                 std::memory_order_acquire);
  tape.store(3);  // lint: memory-order(Tape::store is not an atomic)
  return counter.load(std::memory_order_acquire);
}
