// Fixture: atomic operations leaning on the implicit seq_cst default.
// Rule `atomic-memory-order` must fire.
#include <atomic>

std::atomic<int> counter{0};

int Bump() {
  counter.fetch_add(1);
  counter.store(5);
  return counter.load();
}
