// Fixture: every `.value()` is preceded by a check on the same variable or
// carries an annotation. Rule `result-unchecked` must stay silent.
#include <string>

struct Parsed { std::string text; };

template <typename T>
struct Result {
  bool ok() const;
  const T& value() const;
};

Result<Parsed> Parse(const std::string& text);
Result<Parsed> ParseKnownGood();

std::string Convert(const std::string& text) {
  auto parsed = Parse(text);
  if (!parsed.ok()) return "";
  return parsed.value().text;
}

std::string ConvertTrusted() {
  auto parsed = ParseKnownGood();
  // lint: checked(input is a compiled-in literal; Parse cannot fail on it)
  return parsed.value().text;
}
