// Fixture: no raw assert(). GQC_DCHECK, gtest ASSERT_* macros, and
// static_assert are all fine. Rule `raw-assert` must stay silent.
#define GQC_DCHECK(cond) ((void)sizeof((cond) ? 1 : 0))
#define ASSERT_TRUE(cond) ((void)(cond))

static_assert(sizeof(int) >= 4, "ILP32 or wider");

int Clamp(int x) {
  GQC_DCHECK(x >= 0);
  ASSERT_TRUE(x >= 0);
  // A comment mentioning assert(x) must not trip the rule either.
  const char* doc = "call assert(x) here";  // nor a string literal
  return doc != nullptr ? x : 0;
}
