// Fixture: `.value()` with no visible ok()/has_value() check on the same
// variable and no `// lint: checked` annotation. Rule `result-unchecked`
// must fire.
#include <string>

struct Parsed { std::string text; };

template <typename T>
struct Result {
  bool ok() const;
  const T& value() const;
};

Result<Parsed> Parse(const std::string& text);

std::string Convert(const std::string& text) {
  auto parsed = Parse(text);
  return parsed.value().text;  // never branched on parsed.ok()
}
