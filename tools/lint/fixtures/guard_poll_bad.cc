// Fixture: a loop in an exponential-phase file that never polls the guard
// and carries no `// lint: bounded` annotation. Rule `guard-poll` must fire.
int Search(int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    total += i * i;  // unbounded work, no Charge()/Recheck() in sight
  }
  while (total > 0) total -= 1;  // single-statement body, also unguarded
  return total;
}
