// Fixture: every loop either polls the guard or is annotated as bounded.
// Rule `guard-poll` must stay silent.
struct Guard {
  bool Charge(int phase, unsigned steps = 1);
  bool exhausted() const;
};

int Search(Guard* guard, int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    if (guard->Charge(0)) break;  // polls: passes directly
    total += i;
  }
  // Outer loop passes because its body contains a polling inner loop.
  while (total > 0) {
    for (int j = 0; j < 4; ++j) {
      if (guard->Charge(0)) return total;
      total -= 1;
    }
  }
  // lint: bounded(iterates over a fixed 3-element table)
  for (int k = 0; k < 3; ++k) total += k;
  do {  // lint: bounded(runs exactly once; the condition is constant-false)
    total += 1;
  } while (false);
  return total;
}
