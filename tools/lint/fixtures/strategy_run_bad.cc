// Fixture: Strategy::Run implementations that break the guard discipline.
// Rule `strategy-run-guard` must fire twice: once for a Run that ignores its
// guard entirely (race cancellation can never reach it), once for an
// exponential loop inside an otherwise-wired Run that neither polls nor
// carries `// lint: bounded`.
struct StrategyContext;
struct ResourceGuard;
struct ContainmentResult {
  int verdict = 0;
};

struct DeafStrategy {
  ContainmentResult Run(const StrategyContext& ctx, ResourceGuard* guard) const;
};

// No poll, no wiring: the guard parameter is dead and the racing portfolio
// cannot cancel this strategy.
ContainmentResult DeafStrategy::Run(const StrategyContext& /*ctx*/,
                                    ResourceGuard* /*ignored*/) const {
  ContainmentResult r;
  r.verdict = 2;
  return r;
}

struct LeakyStrategy {
  ContainmentResult Run(const StrategyContext& ctx, ResourceGuard* guard) const;
  bool Poll(ResourceGuard* guard) const;
};

ContainmentResult LeakyStrategy::Run(const StrategyContext& /*ctx*/,
                                     ResourceGuard* guard) const {
  ContainmentResult r;
  if (Poll(guard)) return r;  // the body wires the guard once...
  int total = 0;
  for (int i = 0; i < 1000000; ++i) {
    total += i * i;  // ...but this loop burns unguarded and unannotated
  }
  r.verdict = total > 0 ? 1 : 0;
  return r;
}
