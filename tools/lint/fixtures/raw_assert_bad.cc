// Fixture: raw assert() outside the sanctioned invariant layer.
// Rule `raw-assert` must fire.
#include <cassert>

int Clamp(int x) {
  assert(x >= 0);
  return x > 10 ? 10 : x;
}
