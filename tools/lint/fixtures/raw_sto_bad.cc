// Fixture: std::sto* conversion outside the sanctioned helper.
// Rule `raw-sto` must fire.
#include <string>

unsigned ParsePort(const std::string& text) {
  return static_cast<unsigned>(std::stoul(text));
}
