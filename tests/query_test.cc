#include <gtest/gtest.h>

#include "src/automata/regex_parser.h"
#include "src/graph/generators.h"
#include "src/graph/homomorphism.h"
#include "src/query/canonical.h"
#include "src/query/query_containment.h"
#include "src/query/eval.h"
#include "src/query/parser.h"

namespace gqc {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  Crpq Q(const std::string& text) {
    auto r = ParseCrpq(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
  }
  Ucrpq U(const std::string& text) {
    auto r = ParseUcrpq(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
  }

  Vocabulary vocab_;
};

TEST_F(QueryTest, RegexParserShapes) {
  auto r = ParseRegex("owns . (earns + partof-)* . [Premium]", &vocab_);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(RegexSize(r.value()), 4u);
  EXPECT_FALSE(IsOneWay(r.value()));
  EXPECT_FALSE(IsTestFree(r.value()));
  EXPECT_FALSE(IsNullable(r.value()));

  auto star = ParseRegex("(a + b-)*", &vocab_);
  ASSERT_TRUE(star.ok());
  EXPECT_TRUE(IsNullable(star.value()));
  auto shape = GetSimpleShape(star.value());
  ASSERT_TRUE(shape.has_value());
  EXPECT_TRUE(shape->starred);
  EXPECT_EQ(shape->roles.size(), 2u);

  auto plus = ParseRegex("r^+", &vocab_);
  ASSERT_TRUE(plus.ok());
  EXPECT_FALSE(IsNullable(plus.value()));
  EXPECT_FALSE(GetSimpleShape(plus.value()).has_value()) << "r+ is not simple";
}

TEST_F(QueryTest, RegexParserErrors) {
  EXPECT_FALSE(ParseRegex("a..b", &vocab_).ok());
  EXPECT_FALSE(ParseRegex("(a", &vocab_).ok());
  EXPECT_FALSE(ParseRegex("", &vocab_).ok());
  EXPECT_FALSE(ParseRegex("a b", &vocab_).ok());
}

TEST_F(QueryTest, ParseCrpqBasics) {
  Crpq q = Q("q(x, y) :- Customer(x), owns(x, y), !Closed(y)");
  EXPECT_EQ(q.VarCount(), 2u);
  EXPECT_EQ(q.UnaryAtoms().size(), 2u);
  EXPECT_EQ(q.BinaryAtoms().size(), 1u);
  EXPECT_TRUE(q.IsConnected());
  EXPECT_TRUE(q.IsSimple());
  EXPECT_TRUE(q.IsOneWay());
}

TEST_F(QueryTest, ParseUnionAndClassification) {
  Ucrpq u = U("a(x, y) ; (r . s)(x, y), B(y)");
  EXPECT_EQ(u.size(), 2u);
  EXPECT_TRUE(u.IsConnected());
  EXPECT_FALSE(u.IsSimple()) << "concatenation is not simple";
  EXPECT_TRUE(u.IsOneWay());
  EXPECT_TRUE(u.IsTestFree());
}

TEST_F(QueryTest, DisconnectedQueryDetected) {
  Crpq q = Q("A(x), B(y)");
  EXPECT_FALSE(q.IsConnected());
}

TEST_F(QueryTest, EvalSingleEdge) {
  uint32_t r = vocab_.RoleId("r");
  Graph g = PathGraph(3, r);
  EXPECT_TRUE(Matches(g, Q("r(x, y)")));
  EXPECT_TRUE(Matches(g, Q("(r.r)(x, y)")));
  EXPECT_FALSE(Matches(g, Q("(r.r.r)(x, y)")));
}

TEST_F(QueryTest, EvalStarIncludesEmptyPath) {
  Graph g;
  g.AddNode();
  EXPECT_TRUE(Matches(g, Q("(r*)(x, y)"))) << "empty word matches r* on one node";
  EXPECT_FALSE(Matches(g, Q("(r^+)(x, y)")));
}

TEST_F(QueryTest, EvalInverseRoles) {
  uint32_t r = vocab_.RoleId("r");
  Graph g = PathGraph(3, r);
  EXPECT_TRUE(Matches(g, Q("r-(y, x)")));
  // Forward then backward: x -> y -> x' with shared middle.
  EXPECT_TRUE(Matches(g, Q("(r . r-)(x, z)")));
}

TEST_F(QueryTest, EvalNodeTests) {
  uint32_t r = vocab_.RoleId("r");
  uint32_t a = vocab_.ConceptId("A");
  Graph g = PathGraph(3, r);
  g.AddLabel(1, a);
  EXPECT_TRUE(Matches(g, Q("(r . [A] . r)(x, y)")));
  EXPECT_FALSE(Matches(g, Q("([A] . r . [A])(x, y)")));
  EXPECT_TRUE(Matches(g, Q("([!A] . r . [A])(x, y)")));
}

TEST_F(QueryTest, EvalConjunctionJoin) {
  uint32_t r = vocab_.RoleId("r");
  uint32_t s = vocab_.RoleId("s");
  Graph g;
  NodeId n0 = g.AddNode(), n1 = g.AddNode(), n2 = g.AddNode();
  g.AddEdge(n0, r, n1);
  g.AddEdge(n1, s, n2);
  EXPECT_TRUE(Matches(g, Q("r(x, y), s(y, z)")));
  EXPECT_FALSE(Matches(g, Q("r(x, y), s(x, z)"))) << "s starts only at n1";
}

TEST_F(QueryTest, EvalUnaryFiltersJoin) {
  uint32_t r = vocab_.RoleId("r");
  uint32_t a = vocab_.ConceptId("A");
  Graph g = PathGraph(4, r);
  g.AddLabel(2, a);
  EXPECT_TRUE(Matches(g, Q("A(x), r(x, y)")));
  EXPECT_FALSE(Matches(g, Q("A(x), r(y, x), A(y)")));
}

TEST_F(QueryTest, PointedMatch) {
  uint32_t r = vocab_.RoleId("r");
  Graph g = PathGraph(3, r);
  Crpq q = Q("(r.r)(x, y)");
  EXPECT_TRUE(MatchesAt(g, q, 0, 0));
  EXPECT_FALSE(MatchesAt(g, q, 0, 1));
  EXPECT_EQ(MatchNodes(g, q, 1), std::vector<NodeId>{2});
}

TEST_F(QueryTest, MatchesOnCycleUnbounded) {
  uint32_t r = vocab_.RoleId("r");
  Graph g = CycleGraph(4, r);
  EXPECT_TRUE(Matches(g, Q("(r.r.r.r.r.r.r.r.r)(x, y)")))
      << "paths may wind around the cycle";
}

TEST_F(QueryTest, HomomorphismPreservesMatches) {
  // If G -> G' and G |= q (positive q), then G' |= q.
  uint32_t r = vocab_.RoleId("r");
  Graph path = PathGraph(4, r);
  Graph cycle = CycleGraph(4, r);
  Crpq q = Q("(r.r.r)(x, y)");
  ASSERT_TRUE(Matches(path, q));
  ASSERT_TRUE(FindHomomorphism(path, cycle).has_value());
  EXPECT_TRUE(Matches(cycle, q));
}

TEST_F(QueryTest, CanonicalExpansionsOfCq) {
  Crpq q = Q("A(x), r(x, y), s(y, z)");
  ExpansionSet set = CanonicalExpansions(q, {});
  ASSERT_EQ(set.expansions.size(), 1u);
  EXPECT_TRUE(set.exhaustive);
  const Expansion& e = set.expansions[0];
  EXPECT_EQ(e.graph.NodeCount(), 3u);
  EXPECT_TRUE(Matches(e.graph, q));
}

TEST_F(QueryTest, CanonicalExpansionsOfStarTruncated) {
  Crpq q = Q("(r*)(x, y)");
  ExpansionOptions opts;
  opts.max_word_length = 3;
  ExpansionSet set = CanonicalExpansions(q, opts);
  EXPECT_FALSE(set.exhaustive);
  // Words: eps, r, rr, rrr -> 4 expansions.
  EXPECT_EQ(set.expansions.size(), 4u);
  for (const auto& e : set.expansions) EXPECT_TRUE(Matches(e.graph, q));
}

TEST_F(QueryTest, CanonicalExpansionEmptyWordMergesVars) {
  Crpq q = Q("A(x), (r*)(x, y), B(y)");
  ExpansionOptions opts;
  opts.max_word_length = 1;
  ExpansionSet set = CanonicalExpansions(q, opts);
  // eps-expansion: one node with A and B; r-expansion: two nodes.
  ASSERT_EQ(set.expansions.size(), 2u);
  EXPECT_EQ(set.expansions[0].graph.NodeCount(), 1u);
  EXPECT_EQ(set.expansions[1].graph.NodeCount(), 2u);
}

TEST_F(QueryTest, QueryContainmentCqExact) {
  // r(x,y), s(y,z) is contained in r(x,y') but not vice versa.
  Ucrpq p = U("r(x, y), s(y, z)");
  Ucrpq q = U("r(x, y)");
  EXPECT_EQ(QueryContainment(p, q).verdict, Verdict::kContained);
  auto back = QueryContainment(q, p);
  EXPECT_EQ(back.verdict, Verdict::kNotContained);
  ASSERT_TRUE(back.counterexample.has_value());
  EXPECT_TRUE(Matches(*back.counterexample, q));
  EXPECT_FALSE(Matches(*back.counterexample, p));
}

TEST_F(QueryTest, QueryContainmentWithStars) {
  // Paper Example 1.1 without schema: q2 ⊆ q1.
  Ucrpq q1 = U("(owns . earns . partner . (partof-)*)(x, y)");
  Ucrpq q2 = U("(owns . earns . partner)(x, z), RetailCompany(z), (partof-)*(z, y)");
  QueryContainmentOptions opts;
  opts.expansion.max_word_length = 5;
  auto r12 = QueryContainment(q2, q1, opts);
  // Stars make the expansion set non-exhaustive, so the bounded procedure
  // cannot certify containment outright, but it must find no counterexample.
  EXPECT_NE(r12.verdict, Verdict::kNotContained);
  auto r21 = QueryContainment(q1, q2, opts);
  EXPECT_EQ(r21.verdict, Verdict::kNotContained) << "q1 not ⊆ q2 without schema";
}

TEST_F(QueryTest, QueryContainmentUnionOnRight) {
  Ucrpq p = U("a(x, y)");
  Ucrpq q = U("a(x, y) ; b(x, y)");
  EXPECT_EQ(QueryContainment(p, q).verdict, Verdict::kContained);
  EXPECT_EQ(QueryContainment(q, p).verdict, Verdict::kNotContained);
}

}  // namespace
}  // namespace gqc
