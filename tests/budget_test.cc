// Resource-budget soundness suite (tentpole acceptance tests):
//   (a) tiny budgets yield Unknown — never a crash, never a wrong definite
//       verdict (checked against an unlimited-budget reference run),
//   (b) verdicts for a fixed (seed, budget) are deterministic across runs
//       and thread counts,
//   (c) growing the budget never flips a definite verdict: definite at B
//       implies the same definite at 2B (Unknown at B may stay Unknown or
//       become definite at 2B).
// Suite name "BudgetTest" is load-bearing: tools/sanitize.sh runs it under
// TSan by that filter.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/containment.h"
#include "src/dl/concept_parser.h"
#include "src/engine/engine.h"
#include "src/query/parser.h"
#include "src/schema/workload.h"

namespace gqc {
namespace {

std::size_t TestBatchSize(std::size_t full) {
  const char* env = std::getenv("GQC_ENGINE_TEST_ITEMS");
  if (env == nullptr) return full;
  std::size_t cap = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  return cap == 0 ? full : std::min(cap, full);
}

std::vector<BatchItem> WorkloadItems(std::size_t count, uint64_t seed,
                                     const WorkloadOptions& base = {}) {
  WorkloadOptions wopts = base;
  wopts.seed = seed;
  std::vector<WorkloadInstance> instances = GenerateWorkload(wopts, count);
  std::vector<BatchItem> items;
  items.reserve(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    BatchItem item;
    item.id = std::to_string(i);
    item.schema_text = instances[i].schema_text;
    item.p_text = instances[i].p_text;
    item.q_text = instances[i].q_text;
    items.push_back(std::move(item));
  }
  return items;
}

std::vector<BatchOutcome> RunWithBudget(const std::vector<BatchItem>& items,
                                        uint64_t max_steps,
                                        std::size_t threads = 1) {
  EngineOptions opts;
  opts.threads = threads;
  opts.containment.resources.max_steps = max_steps;
  Engine engine(opts);
  return engine.DecideBatch(items);
}

// (a) Tiny budgets degrade soundly: every definite verdict under any budget
// matches the unlimited-budget reference; the rest are Unknown.
TEST(BudgetTest, TinyBudgetsNeverMisanswer) {
  std::vector<BatchItem> items = WorkloadItems(TestBatchSize(40), 11);
  std::vector<BatchOutcome> reference = RunWithBudget(items, /*max_steps=*/0);

  for (uint64_t budget : {uint64_t{1}, uint64_t{16}, uint64_t{256},
                          uint64_t{4096}, uint64_t{65536}}) {
    std::vector<BatchOutcome> out = RunWithBudget(items, budget);
    ASSERT_EQ(out.size(), reference.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      SCOPED_TRACE("budget " + std::to_string(budget) + " item " +
                   items[i].id);
      EXPECT_EQ(out[i].ok, reference[i].ok);
      if (!out[i].ok) continue;
      if (out[i].verdict != Verdict::kUnknown) {
        // A definite verdict under a starvation budget must be the true one.
        EXPECT_EQ(out[i].verdict, reference[i].verdict);
      } else {
        EXPECT_FALSE(out[i].attr.unknown_reason().empty());
      }
    }
  }

  // The smallest budget must actually bite on this workload: at least one
  // pair gives up with a step-budget trip (otherwise the test tests nothing).
  std::vector<BatchOutcome> starved = RunWithBudget(items, 1);
  EXPECT_TRUE(std::any_of(starved.begin(), starved.end(),
                          [](const BatchOutcome& o) {
                            return o.attr.unknown_reason() == "steps";
                          }));
}

// (b) Fixed seed + fixed step budget => identical outcomes, across repeated
// runs and across thread counts (step budgets are per disjunct decision, so
// scheduling cannot change where they trip).
TEST(BudgetTest, FixedSeedAndBudgetIsDeterministic) {
  std::vector<BatchItem> items = WorkloadItems(TestBatchSize(30), 7);
  for (uint64_t budget : {uint64_t{64}, uint64_t{4096}}) {
    std::vector<BatchOutcome> first = RunWithBudget(items, budget, 1);
    std::vector<BatchOutcome> again = RunWithBudget(items, budget, 1);
    std::vector<BatchOutcome> threaded = RunWithBudget(items, budget, 8);
    ASSERT_EQ(first.size(), again.size());
    ASSERT_EQ(first.size(), threaded.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      SCOPED_TRACE("budget " + std::to_string(budget) + " item " +
                   items[i].id);
      for (const std::vector<BatchOutcome>* other : {&again, &threaded}) {
        EXPECT_EQ(first[i].verdict, (*other)[i].verdict);
        EXPECT_EQ(first[i].attr.note, (*other)[i].attr.note);
        EXPECT_EQ(first[i].attr.unknown_reason(), (*other)[i].attr.unknown_reason());
        EXPECT_EQ(first[i].attr.unknown_phase(), (*other)[i].attr.unknown_phase());
        EXPECT_EQ(first[i].countermodel_nodes, (*other)[i].countermodel_nodes);
      }
    }
  }
}

// (c) Budget monotonicity: a definite verdict at budget B is reproduced at
// 2B — the guard trips no earlier, so the (deterministic) search runs the
// identical step sequence to the same conclusion. Unknown at B may stay
// Unknown or turn definite, never "definite at B, different definite at 2B".
TEST(BudgetTest, DoublingBudgetNeverFlipsDefiniteVerdicts) {
  std::vector<BatchItem> items = WorkloadItems(TestBatchSize(30), 13);
  uint64_t budget = 32;
  std::vector<BatchOutcome> prev = RunWithBudget(items, budget);
  for (int round = 0; round < 6; ++round) {
    budget *= 2;
    std::vector<BatchOutcome> next = RunWithBudget(items, budget);
    ASSERT_EQ(prev.size(), next.size());
    for (std::size_t i = 0; i < prev.size(); ++i) {
      SCOPED_TRACE("budget " + std::to_string(budget) + " item " +
                   items[i].id);
      if (prev[i].ok && prev[i].verdict != Verdict::kUnknown) {
        EXPECT_EQ(next[i].verdict, prev[i].verdict);
      }
    }
    prev = std::move(next);
  }
}

// Blow-up instances (larger type pool, more constraints and atoms) finish
// promptly under a finite step budget instead of running for minutes, and
// the budget trips are visible in the pipeline stats JSON.
TEST(BudgetTest, BlowUpInstancesReturnPromptlyUnderBudget) {
  WorkloadOptions heavy;
  heavy.node_types = 4;
  heavy.roles = 3;
  heavy.schema_constraints = 6;
  heavy.query_atoms = 4;
  std::vector<BatchItem> items = WorkloadItems(TestBatchSize(12), 5, heavy);

  EngineOptions opts;
  opts.threads = 1;
  opts.containment.resources.max_steps = 20000;
  Engine engine(opts);
  std::vector<BatchOutcome> out = engine.DecideBatch(items);
  ASSERT_EQ(out.size(), items.size());
  for (const BatchOutcome& o : out) {
    if (!o.ok) continue;  // parse failures are not this test's concern
    if (o.verdict == Verdict::kUnknown) {
      EXPECT_FALSE(o.attr.unknown_reason().empty()) << o.id;
    }
  }
  EXPECT_EQ(engine.stats().pairs_total.load(), items.size());
  std::string json = engine.StatsJson();
  EXPECT_NE(json.find("\"resource_governance\""), std::string::npos);
  EXPECT_NE(json.find("\"budget_exhausted\""), std::string::npos);
  EXPECT_NE(json.find("\"phase_spend_hist\""), std::string::npos);
}

// The checker-level API (no engine) honors the same budget contract and
// reports the trip through ContainmentResult::unknown.
TEST(BudgetTest, CheckerLevelBudgetReportsTripDetails) {
  Vocabulary vocab;
  auto tbox = ParseTBox(
      "A <= exists r.A\nA <= exists s.B\nB <= exists r.A\n"
      "top <= forall r.A\n",
      &vocab);
  ASSERT_TRUE(tbox.ok()) << tbox.error();
  auto p = ParseUcrpq("A(x), ((r + s)*)(x, y), B(y)", &vocab);
  auto q = ParseUcrpq("B(x), (r*)(x, y), A(y)", &vocab);
  ASSERT_TRUE(p.ok() && q.ok());

  ContainmentOptions options;
  options.resources.max_steps = 5;
  ContainmentChecker checker(&vocab, options);
  ContainmentResult r = checker.Decide(p.value(), q.value(), tbox.value());
  if (r.verdict == Verdict::kUnknown) {
    ASSERT_TRUE(r.attr.unknown.has_value());
    EXPECT_FALSE(r.attr.unknown->reason.empty());
    if (r.attr.unknown->reason == "steps") {
      EXPECT_FALSE(r.attr.unknown->phase.empty());
      EXPECT_FALSE(r.attr.note.empty());
    }
  }
}

// Racing soundness: the portfolio under starvation budgets and full racing
// (8 threads, every strategy cancelled by whoever wins first) never returns
// a wrong definite verdict. Same contract as (a), with cancellation in the
// mix: losers unwind to kUnknown at a guard poll and are discarded, so a
// definite answer only ever comes from a completed, exact strategy run.
TEST(BudgetTest, PortfolioRacingNeverWrongDefinite) {
  std::vector<BatchItem> items = WorkloadItems(TestBatchSize(40), 11);
  std::vector<BatchOutcome> reference = RunWithBudget(items, /*max_steps=*/0);

  for (uint64_t budget : {uint64_t{16}, uint64_t{512}, uint64_t{16384}}) {
    EngineOptions opts;
    opts.threads = 8;
    opts.portfolio = true;
    opts.containment.resources.max_steps = budget;
    Engine engine(opts);
    std::vector<BatchOutcome> out = engine.DecideBatch(items);
    ASSERT_EQ(out.size(), reference.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      SCOPED_TRACE("budget " + std::to_string(budget) + " item " +
                   items[i].id);
      EXPECT_EQ(out[i].ok, reference[i].ok);
      if (!out[i].ok) continue;
      if (out[i].verdict != Verdict::kUnknown) {
        // The deep witness strategy may answer where even the unlimited
        // sequential reference gave up, so only compare when the reference
        // is definite too.
        if (reference[i].verdict != Verdict::kUnknown) {
          EXPECT_EQ(out[i].verdict, reference[i].verdict);
        }
        EXPECT_FALSE(out[i].attr.strategy.empty());
      } else {
        EXPECT_FALSE(out[i].attr.unknown_reason().empty());
      }
    }
  }
}

// Cancellation through the budget's token is honored at the checker level:
// a pre-cancelled decision is preempted without searching.
TEST(BudgetTest, PreCancelledTokenPreemptsDecision) {
  Vocabulary vocab;
  auto tbox = ParseTBox("A <= exists r.B\n", &vocab);
  ASSERT_TRUE(tbox.ok());
  auto p = ParseUcrpq("A(x), r(x, y)", &vocab);
  auto q = ParseUcrpq("B(x)", &vocab);
  ASSERT_TRUE(p.ok() && q.ok());

  ContainmentOptions options;
  options.resources.cancel.Cancel();
  PipelineStats stats;
  options.stats = &stats;
  ContainmentChecker checker(&vocab, options);
  ContainmentResult r = checker.Decide(p.value(), q.value(), tbox.value());
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  ASSERT_TRUE(r.attr.unknown.has_value());
  EXPECT_EQ(r.attr.unknown->reason, "cancelled");
  EXPECT_EQ(stats.budget_cancelled.load(), stats.guards_total.load());
}

}  // namespace
}  // namespace gqc
