#include <gtest/gtest.h>

#include <random>

#include "src/graph/generators.h"
#include "src/query/eval.h"
#include "src/query/factorize.h"
#include "src/query/parser.h"

namespace gqc {
namespace {

/// A star-like graph assembled from known parts, for condition (1) checks.
struct StarLike {
  Graph whole;
  std::vector<Graph> parts;  // parts[0] is the central part
  /// parts[i] node -> whole node, to re-extract parts after relabelling.
  std::vector<std::vector<NodeId>> node_maps;
};

/// Glues each peripheral part to the central part at one node; the shared
/// node is central node (i % central size) merged with peripheral node 0.
/// Label sets of the glued nodes are unioned so they agree in both parts, and
/// the part snapshots are taken afterwards so shared labels match.
StarLike MakeStarLike(Graph central, std::vector<Graph> peripherals) {
  StarLike out;
  // First compute the union label sets for shared nodes.
  for (std::size_t i = 0; i < peripherals.size(); ++i) {
    NodeId central_node = static_cast<NodeId>(i % central.NodeCount());
    for (uint32_t l : peripherals[i].Labels(0).ToIds()) {
      central.AddLabel(central_node, l);
    }
    for (uint32_t l : central.Labels(central_node).ToIds()) {
      peripherals[i].AddLabel(0, l);
    }
  }
  out.whole = central;
  std::vector<NodeId> central_map(central.NodeCount());
  for (NodeId v = 0; v < central.NodeCount(); ++v) central_map[v] = v;
  out.node_maps.push_back(std::move(central_map));
  for (std::size_t i = 0; i < peripherals.size(); ++i) {
    NodeId central_node = static_cast<NodeId>(i % central.NodeCount());
    const Graph& p = peripherals[i];
    // Append nodes 1..n-1 of the peripheral; node 0 is the shared node.
    std::vector<NodeId> map(p.NodeCount(), kNoNode);
    map[0] = central_node;
    for (NodeId v = 1; v < p.NodeCount(); ++v) {
      map[v] = out.whole.AddNode(p.Labels(v));
    }
    p.ForEachEdge([&](const Edge& e) {
      out.whole.AddEdge(map[e.from], e.role, map[e.to]);
    });
    out.node_maps.push_back(std::move(map));
  }
  out.parts = peripherals;
  out.parts.insert(out.parts.begin(), central);
  return out;
}

/// Copies node labels from the (relabelled) whole graph back into the parts.
void SyncPartLabels(StarLike* star) {
  for (std::size_t i = 0; i < star->parts.size(); ++i) {
    for (NodeId v = 0; v < star->parts[i].NodeCount(); ++v) {
      NodeId w = star->node_maps[i][v];
      for (uint32_t l : star->whole.Labels(w).ToIds()) {
        star->parts[i].AddLabel(v, l);
      }
    }
  }
}

class FactorizeTest : public ::testing::Test {
 protected:
  Ucrpq U(const std::string& text) {
    auto r = ParseUcrpq(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
  }

  SimpleFactorization F(const std::string& text) {
    auto r = FactorizeSimpleUcrpq(U(text), &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return std::move(r.value());
  }

  Vocabulary vocab_;
};

TEST_F(FactorizeTest, RejectsNonSimple) {
  Ucrpq q = U("(r.s)(x, y)");
  EXPECT_FALSE(FactorizeSimpleUcrpq(q, &vocab_).ok());
}

TEST_F(FactorizeTest, SingleUnaryAtomQuery) {
  SimpleFactorization f = F("A(x)");
  EXPECT_GE(f.factor_count, 1u);
  ASSERT_FALSE(f.full_query_permissions.empty());
  // Condition (2), left to right, with the true labelling: a graph with an
  // A-node gets the full permission, so Q̂ matches every labelling that has
  // it; and a deficient labelling (no labels at all) is caught by the
  // deficiency disjunct A(y) ∧ C̄(y).
  uint32_t a = vocab_.FindConcept("A");
  Graph g;
  g.AddLabel(g.AddNode(), a);
  EXPECT_TRUE(Matches(g, f.q_hat)) << "unlabelled graph has a deficiency";
  Graph labelled = ApplyTrueLabelling(g, f);
  EXPECT_TRUE(Matches(labelled, f.q_hat)) << "full permission present";
  // A graph without A, truly labelled: no match of Q̂.
  Graph empty;
  empty.AddNode();
  EXPECT_FALSE(Matches(ApplyTrueLabelling(empty, f), f.q_hat));
}

TEST_F(FactorizeTest, FactorsOfStarPathQuery) {
  // The simple analogue of Example 3.6: A(x), (r*)(x,y), B(y).
  SimpleFactorization f = F("A(x), (r*)(x, y), B(y)");
  EXPECT_GE(f.factor_count, 3u);
  // Expect factors playing the roles of C_A ("A reaches the contact") and
  // C_B ("the contact reaches B").
  uint32_t a = vocab_.FindConcept("A");
  uint32_t b = vocab_.FindConcept("B");
  uint32_t r = vocab_.FindRole("r");
  bool has_ca_like = false, has_cb_like = false;
  for (const auto& factor : f.factors) {
    // C_A-like ("reachable from an A-node", including the A-node itself, as
    // in Example 3.6): on the path 0 -> 1 with A at node 1, it matches at 1
    // but not at 0.
    Graph path = PathGraph(2, r);
    path.AddLabel(1, a);
    if (MatchesAt(path, factor.query, factor.point, 1) &&
        !MatchesAt(path, factor.query, factor.point, 0)) {
      has_ca_like = true;
    }
    // C_B-like ("can reach a B-node"): with B at node 0, matches at 0 but
    // not at 1.
    Graph path2 = PathGraph(2, r);
    path2.AddLabel(0, b);
    if (MatchesAt(path2, factor.query, factor.point, 0) &&
        !MatchesAt(path2, factor.query, factor.point, 1)) {
      has_cb_like = true;
    }
  }
  EXPECT_TRUE(has_ca_like);
  EXPECT_TRUE(has_cb_like);
}

TEST_F(FactorizeTest, Condition2TrueLabellingRefutes) {
  // If G does not satisfy Q, the true labelling must not satisfy Q̂.
  SimpleFactorization f = F("A(x), (r*)(x, y), B(y)");
  uint32_t a = vocab_.FindConcept("A");
  uint32_t b = vocab_.FindConcept("B");
  uint32_t r = vocab_.FindRole("r");

  // Path where B is not reachable from A.
  Graph g = PathGraph(3, r);
  g.AddLabel(2, a);  // A at the end
  g.AddLabel(0, b);  // B at the start
  Ucrpq q = U("A(x), (r*)(x, y), B(y)");
  ASSERT_FALSE(Matches(g, q));
  EXPECT_FALSE(Matches(ApplyTrueLabelling(g, f), f.q_hat));

  // Flip the labels: now Q matches and every labelling must satisfy Q̂.
  Graph h = PathGraph(3, r);
  h.AddLabel(0, a);
  h.AddLabel(2, b);
  ASSERT_TRUE(Matches(h, q));
  EXPECT_TRUE(Matches(h, f.q_hat)) << "unlabelled";
  EXPECT_TRUE(Matches(ApplyTrueLabelling(h, f), f.q_hat)) << "true labelling";
}

TEST_F(FactorizeTest, Condition2RandomLabellings) {
  // When Q matches G, every random permission labelling satisfies Q̂.
  SimpleFactorization f = F("A(x), (r*)(x, y), B(y)");
  uint32_t a = vocab_.FindConcept("A");
  uint32_t b = vocab_.FindConcept("B");
  uint32_t r = vocab_.FindRole("r");
  Graph g = PathGraph(4, r);
  g.AddLabel(0, a);
  g.AddLabel(3, b);
  ASSERT_TRUE(Matches(g, U("A(x), (r*)(x, y), B(y)")));

  std::mt19937 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    Graph labelled = g;
    for (NodeId v = 0; v < g.NodeCount(); ++v) {
      for (uint32_t p : f.permission_concepts) {
        if (rng() % 2) labelled.AddLabel(v, p);
      }
    }
    EXPECT_TRUE(Matches(labelled, f.q_hat)) << "trial " << trial;
  }
}

TEST_F(FactorizeTest, Condition1FactorizedOnStarLike) {
  // Q̂ holds in a star-like graph iff it holds in one of its parts, for
  // randomized parts and labellings.
  SimpleFactorization f = F("A(x), (r*)(x, y), B(y)");
  uint32_t a = vocab_.FindConcept("A");
  uint32_t b = vocab_.FindConcept("B");
  uint32_t r = vocab_.FindRole("r");

  std::vector<uint32_t> all_labels{a, b};
  all_labels.insert(all_labels.end(), f.permission_concepts.begin(),
                    f.permission_concepts.end());

  std::mt19937 rng(13);
  int star_matches = 0, star_misses = 0;
  for (int trial = 0; trial < 60; ++trial) {
    auto random_graph = [&](std::size_t nodes, bool with_permissions) {
      Graph g;
      for (std::size_t i = 0; i < nodes; ++i) g.AddNode();
      for (NodeId u = 0; u < nodes; ++u) {
        for (NodeId v = 0; v < nodes; ++v) {
          if (rng() % 4 == 0) g.AddEdge(u, r, v);
        }
        if (rng() % 3 == 0) g.AddLabel(u, a);
        if (rng() % 3 == 0) g.AddLabel(u, b);
        if (with_permissions) {
          for (uint32_t l : f.permission_concepts) {
            if (rng() % 4 == 0) g.AddLabel(u, l);
          }
        }
      }
      return g;
    };
    // Half of the trials use random permission labels; the other half use
    // the true labelling of the assembled star (which refutes Q̂ whenever Q
    // does not match, exercising the negative direction).
    bool random_labels = trial % 2 == 0;
    StarLike star = MakeStarLike(random_graph(2 + rng() % 2, random_labels),
                                 {random_graph(2 + rng() % 2, random_labels),
                                  random_graph(1 + rng() % 2, random_labels)});
    if (!random_labels) {
      star.whole = ApplyTrueLabelling(star.whole, f);
      SyncPartLabels(&star);
    }
    bool whole = Matches(star.whole, f.q_hat);
    bool any_part = false;
    for (const Graph& part : star.parts) {
      any_part = any_part || Matches(part, f.q_hat);
    }
    EXPECT_EQ(whole, any_part) << "trial " << trial;
    (whole ? star_matches : star_misses) += 1;
  }
  // Sanity: the property must have been exercised in both directions.
  EXPECT_GT(star_matches, 0);
  EXPECT_GT(star_misses, 0);
}

TEST_F(FactorizeTest, ReachabilityAtomDetection) {
  Ucrpq q = U("((r + s)*)(x, y), r(y, z)");
  const Crpq& d = q.Disjuncts()[0];
  uint32_t r = vocab_.FindRole("r");
  uint32_t s = vocab_.FindRole("s");
  EXPECT_TRUE(IsReachabilityAtom(d.BinaryAtoms()[0], {r}));
  EXPECT_TRUE(IsReachabilityAtom(d.BinaryAtoms()[0], {r, s}));
  EXPECT_FALSE(IsReachabilityAtom(d.BinaryAtoms()[1], {r}));
  uint32_t t = vocab_.RoleId("t");
  EXPECT_FALSE(IsReachabilityAtom(d.BinaryAtoms()[0], {r, t}));

  Ucrpq dropped = DropReachabilityAtoms(q, {r, s});
  EXPECT_EQ(dropped.Disjuncts()[0].BinaryAtoms().size(), 1u);
}

TEST_F(FactorizeTest, ReachabilityAtomInverseDirection) {
  Ucrpq q = U("((r- + s-)*)(x, y)");
  uint32_t r = vocab_.FindRole("r");
  uint32_t s = vocab_.FindRole("s");
  EXPECT_TRUE(IsReachabilityAtom(q.Disjuncts()[0].BinaryAtoms()[0], {r, s}))
      << "backwards closure counts";
}

TEST_F(FactorizeTest, EdgeAtomQueryFactorization) {
  // Single-edge query with labels on both sides.
  SimpleFactorization f = F("A(x), r(x, y), B(y)");
  uint32_t a = vocab_.FindConcept("A");
  uint32_t b = vocab_.FindConcept("B");
  uint32_t r = vocab_.FindRole("r");
  Ucrpq q = U("A(x), r(x, y), B(y)");

  Graph g;
  NodeId u = g.AddNode(), v = g.AddNode();
  g.AddLabel(u, a);
  g.AddLabel(v, b);
  g.AddEdge(u, r, v);
  ASSERT_TRUE(Matches(g, q));
  EXPECT_TRUE(Matches(ApplyTrueLabelling(g, f), f.q_hat));

  Graph h = g;
  h.RemoveEdge(u, r, v);
  ASSERT_FALSE(Matches(h, q));
  EXPECT_FALSE(Matches(ApplyTrueLabelling(h, f), f.q_hat));
}

}  // namespace
}  // namespace gqc
