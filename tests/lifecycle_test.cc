#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/lifecycle.h"
#include "src/engine/engine.h"
#include "src/engine/snapshot.h"
#include "src/schema/workload.h"

namespace gqc {
namespace {

// ------------------------------------------------------------ unit: policies

TEST(LifecycleTest, RetainScorePrefersHotAndExpensive) {
  RetainMeta hot_expensive{/*touch=*/100, /*cost=*/1000, /*bytes=*/0};
  RetainMeta hot_cheap{/*touch=*/100, /*cost=*/10, /*bytes=*/0};
  RetainMeta cold_expensive{/*touch=*/1, /*cost=*/1000, /*bytes=*/0};
  uint64_t now = 100;
  EXPECT_GT(RetainScore(now, hot_expensive), RetainScore(now, hot_cheap));
  EXPECT_GT(RetainScore(now, hot_expensive), RetainScore(now, cold_expensive));
  // Zero cost is clamped, never a zero score.
  RetainMeta zero{/*touch=*/100, /*cost=*/0, /*bytes=*/0};
  EXPECT_GT(RetainScore(now, zero), 0.0);
}

TEST(LifecycleTest, EvictionCountIsCeilClamped) {
  EXPECT_EQ(EvictionCount(0, 0.5), 0u);
  EXPECT_EQ(EvictionCount(10, 0.0), 0u);
  EXPECT_EQ(EvictionCount(10, -1.0), 0u);
  EXPECT_EQ(EvictionCount(10, 1.0), 10u);
  EXPECT_EQ(EvictionCount(10, 2.0), 10u);
  EXPECT_EQ(EvictionCount(10, 0.5), 5u);
  EXPECT_EQ(EvictionCount(10, 0.01), 1u);  // ceil, not floor
  EXPECT_EQ(EvictionCount(3, 0.34), 2u);
}

TEST(LifecycleTest, OverBudgetDropCountTargetsSlack) {
  CacheBudget unbounded;
  EXPECT_EQ(OverBudgetDropCount(unbounded, 1000, 1 << 30), 0u);

  CacheBudget entries{/*max_entries=*/64, /*max_bytes=*/0};
  EXPECT_EQ(OverBudgetDropCount(entries, 64, 0), 0u);  // at budget: fine
  // One over: drop down to 7/8 of the bound (56), not just back to 64.
  EXPECT_EQ(OverBudgetDropCount(entries, 65, 0), 65u - 56u);

  CacheBudget bytes{/*max_entries=*/0, /*max_bytes=*/8192};
  EXPECT_EQ(OverBudgetDropCount(bytes, 16, 8192), 0u);
  // 16 entries x 1024 bytes, budget 8192: target is 7168, excess 9216,
  // per-entry 1024 -> drop 9 entries.
  EXPECT_EQ(OverBudgetDropCount(bytes, 16, 16 * 1024), 9u);
  // Byte overshoot can never ask for more entries than exist.
  EXPECT_LE(OverBudgetDropCount(bytes, 4, 1 << 28), 4u);
}

TEST(LifecycleTest, EvictLowestScoreDropsColdCheapFirstDeterministically) {
  FlatMap<FpKey, Retained<int>, FpKeyHash> map;
  auto put = [&](const std::string& key, uint64_t touch, uint64_t cost,
                 std::size_t bytes, int value) {
    auto slot = map.TryEmplace(FpKey(key), Retained<int>{});
    slot.first->value = value;
    slot.first->meta = RetainMeta{touch, cost, bytes};
  };
  put("cold-cheap", 1, 10, 100, 1);
  put("cold-expensive", 1, 100000, 100, 2);
  put("hot-cheap", 99, 10, 100, 3);
  put("hot-expensive", 99, 100000, 100, 4);

  std::size_t freed = 0;
  EXPECT_EQ(EvictLowestScore(&map, /*now_tick=*/100, /*drop=*/2, &freed), 2u);
  EXPECT_EQ(freed, 200u);
  EXPECT_EQ(map.size(), 2u);
  // The cold-cheap and hot-cheap entries score lowest; the expensive ones
  // must survive.
  EXPECT_NE(map.Find(FpKey("cold-expensive")), nullptr);
  EXPECT_NE(map.Find(FpKey("hot-expensive")), nullptr);
  EXPECT_EQ(map.Find(FpKey("cold-cheap")), nullptr);

  // Dropping more than the size is clamped; empty map is a no-op.
  EXPECT_EQ(EvictLowestScore(&map, 100, 10), 2u);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(EvictLowestScore(&map, 100, 1), 0u);
}

// --------------------------------------------------- eviction soundness (e2e)

std::vector<BatchItem> WorkloadBatch(std::size_t count, uint64_t seed) {
  WorkloadOptions wopts;
  wopts.seed = seed;
  std::vector<WorkloadInstance> instances = GenerateWorkload(wopts, count);
  std::vector<BatchItem> items;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    BatchItem item;
    item.id = std::to_string(i);
    item.schema_text = instances[i].schema_text;
    item.p_text = instances[i].p_text;
    item.q_text = instances[i].q_text;
    items.push_back(std::move(item));
  }
  return items;
}

void ExpectSameOutcomes(const std::vector<BatchOutcome>& base,
                        const std::vector<BatchOutcome>& out) {
  ASSERT_EQ(base.size(), out.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].id, out[i].id);
    EXPECT_EQ(base[i].ok, out[i].ok) << "item " << i;
    EXPECT_EQ(base[i].error, out[i].error) << "item " << i;
    EXPECT_EQ(base[i].verdict, out[i].verdict) << "item " << i;
    EXPECT_EQ(base[i].attr.method, out[i].attr.method) << "item " << i;
    EXPECT_EQ(base[i].attr.note, out[i].attr.note) << "item " << i;
    EXPECT_EQ(base[i].countermodel_nodes, out[i].countermodel_nodes)
        << "item " << i;
  }
}

TEST(LifecycleTest, EvictionNeverChangesVerdicts) {
  std::vector<BatchItem> items = WorkloadBatch(24, 7);

  EngineOptions opts;
  opts.threads = 1;
  Engine baseline(opts);
  std::vector<BatchOutcome> expected = baseline.DecideBatch(items);

  // A brutally tight budget (every table capped at 2 entries) forces
  // eviction churn on nearly every pair; interleaved full-pressure Evict
  // calls empty the caches mid-run. Verdicts must not move.
  Engine bounded(opts);
  bounded.core().SetCacheBudget(CacheBudget{/*max_entries=*/2, /*max_bytes=*/0});
  std::vector<BatchOutcome> first = bounded.DecideBatch(items);
  ExpectSameOutcomes(expected, first);

  bounded.core().Evict(/*pressure=*/1.0);
  std::vector<BatchOutcome> second = bounded.DecideBatch(items);
  ExpectSameOutcomes(expected, second);

  bounded.core().RefreshLifecycleGauges();
  EXPECT_GT(bounded.stats().cache_evictions.load(), 0u)
      << "tight budget should actually have evicted";
}

TEST(LifecycleTest, ByteBudgetBoundsRetainedBytes) {
  std::vector<BatchItem> items = WorkloadBatch(20, 13);
  EngineOptions opts;
  opts.threads = 1;
  Engine engine(opts);
  constexpr std::size_t kBudget = 64 * 1024;
  engine.core().SetCacheBudget(CacheBudget{0, kBudget});
  (void)engine.DecideBatch(items);
  // Each table is individually bounded by kBudget; the eviction slack (7/8)
  // keeps steady state strictly under the bound per table.
  // 6 tables share the budget separately: ctx maps count as one table here.
  EXPECT_LT(engine.core().retained_bytes(), 8 * kBudget);

  std::size_t before = engine.core().retained_bytes();
  engine.core().Evict(1.0);
  EXPECT_LT(engine.core().retained_bytes(), before);
  EXPECT_EQ(engine.core().retained_bytes(), 0u);
}

// ----------------------------------------------------------------- snapshots

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  EngineCore::SnapshotKeys keys;
  keys.schemas = {"", "A <= exists r.B", "A <= forall s.C\nB <= A"};
  keys.queries = {{"A <= exists r.B", "A(x), r(x, y)"},
                  {"", "r(x, y); s(x, y)"}};
  std::string bytes = EncodeSnapshot(keys);
  auto decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().schemas, keys.schemas);
  EXPECT_EQ(decoded.value().queries, keys.queries);
}

TEST(SnapshotTest, CorruptionIsRejectedNeverPartiallyLoaded) {
  EngineCore::SnapshotKeys keys;
  keys.schemas = {"A <= exists r.B"};
  keys.queries = {{"A <= exists r.B", "A(x)"}};
  std::string bytes = EncodeSnapshot(keys);

  // Flip one payload byte: the trailing fingerprint no longer matches.
  std::string flipped = bytes;
  flipped[10] ^= 0x40;
  EXPECT_FALSE(DecodeSnapshot(flipped).ok());

  // Truncations anywhere are structural errors.
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, bytes.size() - 1}) {
    EXPECT_FALSE(DecodeSnapshot(std::string_view(bytes).substr(0, cut)).ok())
        << "cut at " << cut;
  }

  // Trailing garbage is rejected (the format is self-delimiting).
  EXPECT_FALSE(DecodeSnapshot(bytes + "x").ok());

  // Wrong magic.
  std::string magic = bytes;
  magic[0] = 'X';
  EXPECT_FALSE(DecodeSnapshot(magic).ok());
}

TEST(SnapshotTest, WarmStartRoundTripThroughDisk) {
  std::vector<BatchItem> items = WorkloadBatch(12, 29);
  EngineOptions opts;
  opts.threads = 1;

  Engine first(opts);
  std::vector<BatchOutcome> expected = first.DecideBatch(items);
  EngineCore::SnapshotKeys keys = first.core().ExportSnapshotKeys();
  EXPECT_FALSE(keys.schemas.empty());
  EXPECT_FALSE(keys.queries.empty());

  std::string path = testing::TempDir() + "/gqc_lifecycle_snapshot.bin";
  auto saved = SaveSnapshot(first.core(), path);
  ASSERT_TRUE(saved.ok()) << saved.error();

  // A fresh process: loads the snapshot, rebuilds the contexts, and the
  // first batch must (a) hit the warmed entries and (b) agree bit-for-bit.
  Engine second(opts);
  auto loaded = LoadSnapshot(&second.core(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value(), keys.schemas.size() + keys.queries.size());
  EXPECT_EQ(second.stats().warmstart_loaded.load(), loaded.value());

  std::vector<BatchOutcome> warmed = second.DecideBatch(items);
  ExpectSameOutcomes(expected, warmed);
  EXPECT_GT(second.stats().warmstart_hits.load(), 0u)
      << "warm-started contexts should serve the repeat batch";

  // Corrupt the file on disk: the load is rejected, the core untouched.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "GQCSNAP1 this is not a valid snapshot body";
  }
  Engine third(opts);
  auto rejected = LoadSnapshot(&third.core(), path);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(third.stats().warmstart_rejected.load(), 1u);
  EXPECT_EQ(third.core().ExportSnapshotKeys().schemas.size(), 0u);
  std::vector<BatchOutcome> cold = third.DecideBatch(items);
  ExpectSameOutcomes(expected, cold);

  std::remove(path.c_str());
}

// -------------------------------------------------------------- compile memo

TEST(LifecycleTest, CompileMemoIsHitAndVerdictNeutral) {
  std::vector<BatchItem> items = WorkloadBatch(16, 41);
  // Duplicate the batch so the second half replays identical solves.
  std::vector<BatchItem> doubled = items;
  doubled.insert(doubled.end(), items.begin(), items.end());

  EngineOptions opts;
  opts.threads = 1;
  Engine memoized(opts);
  std::vector<BatchOutcome> out = memoized.DecideBatch(doubled);
  memoized.core().RefreshLifecycleGauges();
  // Any solve that compiled an artifact in the first half must be served by
  // the memo in the duplicated half (no compilations => trivially nothing
  // to hit, e.g. when every pair short-circuits before a witness search).
  if (memoized.stats().compile_memo_misses.load() > 0) {
    EXPECT_GT(memoized.stats().compile_memo_hits.load(), 0u);
  }

  // The memo must at least serve the duplicated half, and a memoized run
  // must agree with a fresh engine deciding the plain batch.
  Engine fresh(opts);
  std::vector<BatchOutcome> expected = fresh.DecideBatch(items);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(out[i].verdict, expected[i].verdict) << "item " << i;
    EXPECT_EQ(out[i].verdict, out[items.size() + i].verdict)
        << "repeat of item " << i;
  }

  // Evicting the memo mid-stream must not change anything either.
  Engine churned(opts);
  churned.core().SetCacheBudget(CacheBudget{2, 0});
  std::vector<BatchOutcome> churn_out = churned.DecideBatch(doubled);
  for (std::size_t i = 0; i < doubled.size(); ++i) {
    EXPECT_EQ(churn_out[i].verdict, out[i].verdict) << "item " << i;
  }
}

}  // namespace
}  // namespace gqc
