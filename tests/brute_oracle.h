// Shared helpers for the differential-oracle suites: a deterministic
// small-instance generator and a brute-force small-model enumerator that is
// independent of every search/entailment component under test (it only uses
// the Graph container, the TBox model checker, and query evaluation).
//
// The brute-force oracle decides "is a node of type τ realized in some
// finite model of T refuting Q?" restricted to models with at most
// `max_nodes` nodes. Its YES answers are definite (it returns the model);
// its NO answers only claim "no such model with <= max_nodes nodes", so a
// search engine's YES with a larger witness does not contradict it — but a
// search YES whose witness fits the bound, or any engine NO against a
// brute-force YES, is a real bug.

#ifndef GQC_TESTS_BRUTE_ORACLE_H_
#define GQC_TESTS_BRUTE_ORACLE_H_

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "src/dl/model_check.h"
#include "src/dl/tbox.h"
#include "src/graph/graph.h"
#include "src/query/eval.h"
#include "src/query/ucrpq.h"

namespace gqc {
namespace testing_oracle {

struct GeneratedInstance {
  std::string tbox_text;
  std::string query_text;
  std::string tau_concept;
};

/// Deterministic small-instance generator over concepts {A, B, C} and the
/// role r: a few CIs of mixed shapes plus a simple query.
inline GeneratedInstance Generate(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](std::initializer_list<const char*> xs) {
    auto it = xs.begin();
    std::advance(it, rng() % xs.size());
    return std::string(*it);
  };
  GeneratedInstance out;
  int cis = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < cis; ++i) {
    switch (rng() % 4) {
      case 0:
        out.tbox_text += pick({"A", "B", "C"}) + " <= " + pick({"A", "B", "C"}) + "\n";
        break;
      case 1:
        out.tbox_text +=
            pick({"A", "B"}) + " <= exists r." + pick({"B", "C"}) + "\n";
        break;
      case 2:
        out.tbox_text +=
            "top <= forall r." + pick({"B", "C"}) + "\n";
        break;
      case 3:
        out.tbox_text += pick({"A", "B"}) + " and " + pick({"B", "C"}) +
                         " <= bottom\n";
        break;
    }
  }
  switch (rng() % 4) {
    case 0:
      out.query_text = pick({"A", "B", "C"}) + "(x)";
      break;
    case 1:
      out.query_text = "r(x, y), " + pick({"A", "B", "C"}) + "(y)";
      break;
    case 2:
      out.query_text = pick({"A", "B"}) + "(x), r(x, y)";
      break;
    case 3:
      out.query_text = "(r*)(x, y), " + pick({"B", "C"}) + "(y)";
      break;
  }
  out.tau_concept = pick({"A", "B", "C"});
  return out;
}

struct BruteForceAnswer {
  /// True: a model with <= max_nodes nodes realizes tau, satisfies the TBox,
  /// and refutes the query (returned in `model`). False: no such model of
  /// that size exists — says nothing about larger models.
  bool found = false;
  std::optional<Graph> model;
};

/// Exhaustively enumerates every graph with 1..max_nodes nodes, node labels
/// drawn from `concepts`, and directed `role_id` edges (self-loops allowed).
/// Node 0 is pinned to carry type `tau` — sound, since realization is
/// invariant under node renaming, so every pointed model is isomorphic to
/// one realizing tau at node 0.
inline BruteForceAnswer BruteForceRealizable(const Type& tau, const TBox& tbox,
                                             const Ucrpq& q,
                                             const std::vector<uint32_t>& concepts,
                                             uint32_t role_id,
                                             std::size_t max_nodes) {
  for (std::size_t n = 1; n <= max_nodes; ++n) {
    const std::size_t label_masks = std::size_t{1} << concepts.size();
    const std::size_t edge_slots = n * n;
    const std::size_t edge_masks = std::size_t{1} << edge_slots;
    std::vector<std::size_t> labeling(n, 0);
    while (true) {
      Graph labels_only;
      for (std::size_t v = 0; v < n; ++v) {
        NodeId id = labels_only.AddNode();
        for (std::size_t c = 0; c < concepts.size(); ++c) {
          if (labeling[v] & (std::size_t{1} << c)) {
            labels_only.AddLabel(id, concepts[c]);
          }
        }
      }
      if (labels_only.HasType(0, tau)) {
        for (std::size_t em = 0; em < edge_masks; ++em) {
          Graph g = labels_only;
          for (std::size_t slot = 0; slot < edge_slots; ++slot) {
            if (em & (std::size_t{1} << slot)) {
              g.AddEdge(static_cast<NodeId>(slot / n), role_id,
                        static_cast<NodeId>(slot % n));
            }
          }
          if (!Satisfies(g, tbox)) continue;
          if (Matches(g, q)) continue;
          return {true, std::move(g)};
        }
      }
      // Next labeling (mixed-radix counter over label_masks^n).
      std::size_t v = 0;
      while (v < n && ++labeling[v] == label_masks) labeling[v++] = 0;
      if (v == n) break;
    }
  }
  return {false, std::nullopt};
}

/// Independent validity check for a claimed witness: realizes tau somewhere,
/// satisfies the TBox (TBox or NormalTBox — whichever the claimant completed
/// against), refutes the query. Extra labels from normalization-fresh
/// concepts cannot affect any of the three checks.
template <typename AnyTbox>
bool IsValidWitness(const Graph& g, const Type& tau, const AnyTbox& tbox,
                    const Ucrpq& q) {
  bool realizes = false;
  for (NodeId v = 0; v < g.NodeCount() && !realizes; ++v) {
    realizes = g.HasType(v, tau);
  }
  return realizes && Satisfies(g, tbox) && !Matches(g, q);
}

}  // namespace testing_oracle
}  // namespace gqc

#endif  // GQC_TESTS_BRUTE_ORACLE_H_
