// Corrupted-fixture coverage for the invariant-audit layer: each Validate()
// routine must trip on a deliberately broken structure and stay silent on a
// healthy one. The validators are always compiled (only the GQC_AUDIT call
// sites are build-flavor gated), so these tests run in every build flavor.

#include <gtest/gtest.h>

#include "src/automata/regex_parser.h"
#include "src/automata/validate.h"
#include "src/core/validate.h"
#include "src/dl/concept_parser.h"
#include "src/dl/normalize.h"
#include "src/dl/validate.h"
#include "src/frames/concrete_frame.h"
#include "src/frames/validate.h"
#include "src/graph/coil.h"
#include "src/graph/generators.h"
#include "src/graph/validate.h"
#include "src/query/parser.h"
#include "src/util/fingerprint.h"

namespace gqc {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  Ucrpq U(const std::string& text) {
    auto r = ParseUcrpq(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
  }

  Crpq C(const std::string& text) {
    auto r = ParseCrpq(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
  }

  Vocabulary vocab_;
};

// ----------------------------------------------------------------- graphs

TEST_F(AuditTest, WellFormedGraphPasses) {
  uint32_t r = vocab_.RoleId("r");
  Graph g = CycleGraph(3, r);
  g.AddLabel(0, vocab_.ConceptId("A"));
  EXPECT_FALSE(ValidateGraph(g).has_value());
  EXPECT_FALSE(ValidateGraph(g, vocab_).has_value());
}

TEST_F(AuditTest, UninternedLabelTripsGraphValidator) {
  Graph g;
  NodeId v = g.AddNode();
  g.AddLabel(v, 12345);  // never interned in vocab_
  auto violation = ValidateGraph(g, vocab_);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("label"), std::string::npos) << *violation;
}

TEST_F(AuditTest, UninternedRoleTripsGraphValidator) {
  Graph g;
  NodeId u = g.AddNode();
  NodeId v = g.AddNode();
  g.AddEdge(u, 999, v);  // role id 999 never interned
  auto violation = ValidateGraph(g, vocab_);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("role"), std::string::npos) << *violation;
}

TEST_F(AuditTest, PointOutOfBoundsTripsPointedGraphValidator) {
  PointedGraph pg;
  pg.graph.AddNode();
  pg.point = 7;  // only node 0 exists
  EXPECT_TRUE(ValidatePointedGraph(pg).has_value());
  pg.point = 0;
  EXPECT_FALSE(ValidatePointedGraph(pg).has_value());
}

// -------------------------------------------------------------- automata

TEST_F(AuditTest, SemiautomatonWithinAlphabetPasses) {
  uint32_t r = vocab_.RoleId("r");
  Semiautomaton a;
  uint32_t s0 = a.AddState();
  uint32_t s1 = a.AddState();
  a.AddTransition(s0, Symbol::FromRole(Role::Forward(r)), s1);
  std::vector<Symbol> alphabet{Symbol::FromRole(Role::Forward(r))};
  EXPECT_FALSE(ValidateSemiautomaton(a).has_value());
  EXPECT_FALSE(ValidateSemiautomaton(a, alphabet).has_value());
}

TEST_F(AuditTest, OutOfAlphabetTransitionTripsValidator) {
  uint32_t r = vocab_.RoleId("r");
  uint32_t s = vocab_.RoleId("s");
  Semiautomaton a;
  uint32_t s0 = a.AddState();
  uint32_t s1 = a.AddState();
  a.AddTransition(s0, Symbol::FromRole(Role::Forward(s)), s1);
  // The declared alphabet only contains r; the s-transition is a leak.
  std::vector<Symbol> alphabet{Symbol::FromRole(Role::Forward(r))};
  auto violation = ValidateSemiautomaton(a, alphabet);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("alphabet"), std::string::npos) << *violation;
}

TEST_F(AuditTest, UninternedSymbolTripsVocabularyValidator) {
  Semiautomaton a;
  uint32_t s0 = a.AddState();
  uint32_t s1 = a.AddState();
  a.AddTransition(s0, Symbol::FromRole(Role::Forward(4242)), s1);
  EXPECT_TRUE(ValidateSemiautomaton(a, vocab_).has_value());
}

// -------------------------------------------------------------------- dl

TEST_F(AuditTest, NormalizedTBoxPasses) {
  auto tbox = ParseTBox(
      "A <= exists r.B\n"
      "B and C <= forall r.A\n"
      "top <= atmost 2 r.C\n",
      &vocab_);
  ASSERT_TRUE(tbox.ok()) << tbox.error();
  NormalTBox normal = Normalize(tbox.value(), &vocab_);
  EXPECT_FALSE(ValidateNormalTBox(normal).has_value());
  EXPECT_FALSE(ValidateNormalTBox(normal, vocab_).has_value());
}

TEST_F(AuditTest, AtLeastZeroTripsNormalFormValidator) {
  // ≥0 r.B is ⊤ and must have been rewritten away by Normalize; a surviving
  // n = 0 at-least is an un-normalized axiom.
  NormalCi ci;
  ci.kind = NormalCi::Kind::kAtLeast;
  ci.lhs = {Literal::Positive(vocab_.ConceptId("A"))};
  ci.role = Role::Forward(vocab_.RoleId("r"));
  ci.n = 0;
  ci.rhs_lit = Literal::Positive(vocab_.ConceptId("B"));
  NormalTBox tbox;
  tbox.Add(ci);
  auto violation = ValidateNormalTBox(tbox);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("at-least"), std::string::npos) << *violation;
}

TEST_F(AuditTest, ForallWithBooleanRhsTripsNormalFormValidator) {
  // A ⊑ ∀r.B must carry its filler in rhs_lit; a populated Boolean rhs
  // means the CI mixes two normal forms.
  NormalCi ci;
  ci.kind = NormalCi::Kind::kForall;
  ci.lhs = {Literal::Positive(vocab_.ConceptId("A"))};
  ci.role = Role::Forward(vocab_.RoleId("r"));
  ci.rhs_lit = Literal::Positive(vocab_.ConceptId("B"));
  ci.rhs = {Literal::Positive(vocab_.ConceptId("C"))};
  NormalTBox tbox;
  tbox.Add(ci);
  EXPECT_TRUE(ValidateNormalTBox(tbox).has_value());
}

// ------------------------------------------------------------------ coils

TEST_F(AuditTest, FreshCoilPasses) {
  uint32_t r = vocab_.RoleId("r");
  Graph g = CycleGraph(3, r);
  auto coil = Coil(g, 2);
  ASSERT_TRUE(coil.ok()) << coil.error();
  EXPECT_FALSE(ValidateCoil(g, coil.value()).has_value());
}

TEST_F(AuditTest, CorruptedCoilLevelTripsValidator) {
  uint32_t r = vocab_.RoleId("r");
  Graph g = CycleGraph(3, r);
  auto coil = Coil(g, 2);
  ASSERT_TRUE(coil.ok()) << coil.error();
  CoilResult broken = coil.value();
  ASSERT_FALSE(broken.level.empty());
  // Push one node's level outside {0, ..., n}: the ℓ' ≡ ℓ+1 (mod n+1)
  // discipline of Property 1 cannot hold any more.
  broken.level[0] = static_cast<uint32_t>(broken.n) + 5;
  EXPECT_TRUE(ValidateCoil(g, broken).has_value());
}

TEST_F(AuditTest, CorruptedCoilHomomorphismTripsValidator) {
  uint32_t r = vocab_.RoleId("r");
  Graph g = PathGraph(3, r);
  auto coil = Coil(g, 2);
  ASSERT_TRUE(coil.ok()) << coil.error();
  CoilResult broken = coil.value();
  ASSERT_GE(broken.base_node.size(), 2u);
  // Remap one coil node to a different base node: h_G stops being a
  // homomorphism (or the labels stop matching the path's last node).
  broken.base_node[1] = broken.base_node[1] == 0 ? 1 : 0;
  EXPECT_TRUE(ValidateCoil(g, broken).has_value());
}

// ----------------------------------------------------------------- frames

TEST_F(AuditTest, WellFormedFramePasses) {
  uint32_t r = vocab_.RoleId("r");
  ConcreteFrame frame;
  uint32_t f0 = frame.AddComponent({PathGraph(2, r), 0});
  uint32_t f1 = frame.AddComponent({PathGraph(1, r), 0});
  frame.AddEdge(f0, 1, Role::Forward(r), f1);
  EXPECT_FALSE(ValidateConcreteFrame(frame).has_value());
}

TEST_F(AuditTest, FrameEdgeToMissingComponentTripsValidator) {
  uint32_t r = vocab_.RoleId("r");
  ConcreteFrame frame;
  uint32_t f0 = frame.AddComponent({PathGraph(2, r), 0});
  // Component 5 does not exist; the edge dangles.
  frame.AddEdge(f0, 0, Role::Forward(r), 5);
  auto violation = ValidateConcreteFrame(frame);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("edge"), std::string::npos) << *violation;
}

TEST_F(AuditTest, FrameComponentWithBadPointTripsValidator) {
  uint32_t r = vocab_.RoleId("r");
  ConcreteFrame frame;
  PointedGraph bad{PathGraph(2, r), 9};  // point outside the 2-node graph
  frame.AddComponent(std::move(bad));
  EXPECT_TRUE(ValidateConcreteFrame(frame).has_value());
}

TEST_F(AuditTest, FrameCoilLocalSignatureMismatchTripsValidator) {
  uint32_t r = vocab_.RoleId("r");
  ConcreteFrame base;
  base.AddComponent({PathGraph(2, r), 0});

  // A structurally valid frame that is NOT locally isomorphic to `base`
  // (different component shape), passed off as its coil.
  ConcreteFrame impostor;
  impostor.AddComponent({CycleGraph(3, r), 0});
  auto violation = ValidateFrameCoil(base, impostor);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("signature"), std::string::npos) << *violation;

  // The genuine FrameCoil passes.
  auto coil = FrameCoil(base, 2);
  ASSERT_TRUE(coil.ok()) << coil.error();
  EXPECT_FALSE(ValidateFrameCoil(base, coil.value()).has_value());
}

// ------------------------------------------------------------- cache keys

TEST_F(AuditTest, CacheKeyRoundTripPasses) {
  std::string key = JoinKeyParts("schema text", "q(x) :- A(x)");
  EXPECT_FALSE(ValidateCacheKey(key, {"schema text", "q(x) :- A(x)"}).has_value());
}

TEST_F(AuditTest, CacheKeyPartMismatchTrips) {
  std::string key = JoinKeyParts("alpha", "beta");
  EXPECT_TRUE(ValidateCacheKey(key, {"alpha", "gamma"}).has_value());
  EXPECT_TRUE(ValidateCacheKey(key, {"alpha"}).has_value());
}

TEST_F(AuditTest, MalformedCacheKeyTrips) {
  EXPECT_TRUE(ValidateCacheKey("no-length-prefix", {"no-length-prefix"}).has_value());
  // Declared length overruns the payload.
  EXPECT_FALSE(SplitKeyParts("13:hello, world").has_value());
  auto parts = SplitKeyParts(JoinKeyParts("a", "", "c"));
  ASSERT_TRUE(parts.has_value());
  EXPECT_EQ(*parts, (std::vector<std::string>{"a", "", "c"}));
  EXPECT_FALSE(SplitKeyParts("999:short").has_value());
}

// ----------------------------------------------------------- countermodels

TEST_F(AuditTest, GenuineCountermodelPasses) {
  auto tbox_src = ParseTBox("A <= exists r.B", &vocab_);
  ASSERT_TRUE(tbox_src.ok());
  NormalTBox tbox = Normalize(tbox_src.value(), &vocab_);

  // G: an A-node with an r-edge to a B-node. Satisfies T, matches p, and
  // does not match q = C(x).
  Graph g;
  NodeId a = g.AddNode();
  NodeId b = g.AddNode();
  g.AddLabel(a, vocab_.ConceptId("A"));
  g.AddLabel(b, vocab_.ConceptId("B"));
  g.AddEdge(a, vocab_.RoleId("r"), b);

  EXPECT_FALSE(ValidateCountermodel(g, C("A(x)"), U("C(x)"), tbox).has_value());
}

TEST_F(AuditTest, StaleCountermodelTrips) {
  NormalTBox empty_tbox;
  Graph g;
  NodeId v = g.AddNode();
  g.AddLabel(v, vocab_.ConceptId("A"));

  // Claims to refute p ⊑ q but actually satisfies q: not a countermodel.
  EXPECT_TRUE(ValidateCountermodel(g, C("A(x)"), U("A(x)"), empty_tbox).has_value());
  // Claims to witness p but does not match it.
  EXPECT_TRUE(ValidateCountermodel(g, C("B(x)"), U("C(x)"), empty_tbox).has_value());
}

}  // namespace
}  // namespace gqc
