// Deterministic parser robustness tests: random byte soup and mutated valid
// inputs must never crash the parsers, only return errors (or, for mutations
// that stay valid, parse successfully). Also checks that parsed objects are
// usable (evaluation does not crash on parsed queries).

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "src/automata/regex_parser.h"
#include "src/dl/concept_parser.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/query/eval.h"
#include "src/query/parser.h"
#include "src/schema/schema_parser.h"

namespace gqc {
namespace {

std::string RandomSoup(std::mt19937_64* rng, std::size_t max_len) {
  static const char alphabet[] =
      "abcXYZ013 ._-+*()[]<>=!,;:^#\n\tforall exists atmost";
  std::size_t len = (*rng)() % max_len;
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out += alphabet[(*rng)() % (sizeof(alphabet) - 1)];
  }
  return out;
}

std::string Mutate(std::string text, std::mt19937_64* rng) {
  if (text.empty()) return text;
  switch ((*rng)() % 3) {
    case 0:  // delete a char
      text.erase((*rng)() % text.size(), 1);
      break;
    case 1:  // duplicate a char
      text.insert((*rng)() % text.size(), 1, text[(*rng)() % text.size()]);
      break;
    case 2:  // flip a char
      text[(*rng)() % text.size()] = "()*+.,"[(*rng)() % 6];
      break;
  }
  return text;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, ParsersNeverCrash) {
  std::mt19937_64 rng(GetParam());
  Vocabulary vocab;
  for (int i = 0; i < 50; ++i) {
    std::string soup = RandomSoup(&rng, 60);
    // Any of these may fail; none may crash or corrupt the vocabulary.
    (void)ParseRegex(soup, &vocab);
    (void)ParseUcrpq(soup, &vocab);
    (void)ParseConcept(soup, &vocab);
    (void)ParseTBox(soup, &vocab);
    (void)ParseGraph(soup, &vocab);
    (void)ParseSchema(soup, &vocab);
  }
}

TEST_P(FuzzTest, MutatedQueriesParseOrFailCleanly) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  Vocabulary vocab;
  uint32_t r = vocab.RoleId("r");
  Graph g = CycleGraph(3, r);
  std::string base = "A(x), (r . (s + t)*)(x, y), !B(y)";
  for (int i = 0; i < 60; ++i) {
    std::string mutated = Mutate(base, &rng);
    auto q = ParseUcrpq(mutated, &vocab);
    if (q.ok()) {
      // Whatever parsed must be evaluable.
      (void)Matches(g, q.value());
    } else {
      EXPECT_FALSE(q.error().empty());
    }
  }
}

TEST_P(FuzzTest, MutatedTBoxesParseOrFailCleanly) {
  std::mt19937_64 rng(GetParam() * 131 + 3);
  Vocabulary vocab;
  std::string base =
      "Customer <= exists owns.CredCard\nPremCC <= atmost 3 earns.RwrdProg";
  for (int i = 0; i < 60; ++i) {
    std::string mutated = Mutate(base, &rng);
    auto t = ParseTBox(mutated, &vocab);
    if (!t.ok()) {
      EXPECT_FALSE(t.error().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace gqc
