// Deterministic parser robustness tests: random byte soup and mutated valid
// inputs must never crash the parsers, only return errors (or, for mutations
// that stay valid, parse successfully). Also checks that parsed objects are
// usable (evaluation does not crash on parsed queries).

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "src/automata/regex_parser.h"
#include "src/dl/concept_parser.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/query/eval.h"
#include "src/query/parser.h"
#include "src/schema/schema_parser.h"

namespace gqc {
namespace {

std::string RandomSoup(std::mt19937_64* rng, std::size_t max_len) {
  // Printable syntax fragments plus hostile bytes: embedded NULs, stray
  // UTF-8 continuation bytes, multi-byte sequences split mid-character,
  // 0xFF/0xFE (never valid in UTF-8), and a DEL. Parsers must treat all of
  // these as ordinary (rejectable) input — never crash, hang, or read past
  // the buffer. std::string carries NULs fine; the parsers must not assume
  // C-string termination.
  static const char printable[] =
      "abcXYZ013 ._-+*()[]<>=!,;:^#\n\tforall exists atmost";
  static const char hostile[] = {
      '\0',                              // embedded NUL
      '\x80', '\xbf',                    // lone continuation bytes
      '\xc3', '\xa9',                    // U+00E9 as two bytes (valid pair)
      '\xc3',                            // truncated 2-byte sequence
      '\xe2', '\x82',                    // truncated 3-byte sequence (of €)
      '\xf0', '\x9f', '\x92', '\xa9',    // U+1F4A9, full 4-byte sequence
      '\xff', '\xfe',                    // bytes never valid in UTF-8
      '\x7f',                            // DEL
  };
  std::size_t len = (*rng)() % max_len;
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    // ~1 in 4 bytes hostile, the rest printable syntax fragments.
    if ((*rng)() % 4 == 0) {
      out += hostile[(*rng)() % sizeof(hostile)];
    } else {
      out += printable[(*rng)() % (sizeof(printable) - 1)];
    }
  }
  return out;
}

std::string Mutate(std::string text, std::mt19937_64* rng) {
  if (text.empty()) return text;
  switch ((*rng)() % 3) {
    case 0:  // delete a char
      text.erase((*rng)() % text.size(), 1);
      break;
    case 1:  // duplicate a char
      text.insert((*rng)() % text.size(), 1, text[(*rng)() % text.size()]);
      break;
    case 2:  // flip a char
      text[(*rng)() % text.size()] = "()*+.,"[(*rng)() % 6];
      break;
  }
  return text;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, ParsersNeverCrash) {
  std::mt19937_64 rng(GetParam());
  Vocabulary vocab;
  for (int i = 0; i < 50; ++i) {
    std::string soup = RandomSoup(&rng, 60);
    // Any of these may fail; none may crash or corrupt the vocabulary.
    (void)ParseRegex(soup, &vocab);
    (void)ParseUcrpq(soup, &vocab);
    (void)ParseConcept(soup, &vocab);
    (void)ParseTBox(soup, &vocab);
    (void)ParseGraph(soup, &vocab);
    (void)ParseSchema(soup, &vocab);
  }
}

TEST_P(FuzzTest, MutatedQueriesParseOrFailCleanly) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  Vocabulary vocab;
  uint32_t r = vocab.RoleId("r");
  Graph g = CycleGraph(3, r);
  std::string base = "A(x), (r . (s + t)*)(x, y), !B(y)";
  for (int i = 0; i < 60; ++i) {
    std::string mutated = Mutate(base, &rng);
    auto q = ParseUcrpq(mutated, &vocab);
    if (q.ok()) {
      // Whatever parsed must be evaluable.
      (void)Matches(g, q.value());
    } else {
      EXPECT_FALSE(q.error().empty());
    }
  }
}

// Valid inputs with hostile bytes spliced into the middle: the parsers must
// fail cleanly (or parse, if the splice landed in a skippable position) and
// never crash — in particular an embedded NUL must not truncate the scan.
TEST_P(FuzzTest, SplicedHostileBytesFailCleanly) {
  std::mt19937_64 rng(GetParam() * 257 + 11);
  Vocabulary vocab;
  const std::string bases[] = {
      "A(x), (r . (s + t)*)(x, y), !B(y)",
      "Customer <= exists owns.CredCard",
      "node 0 A B\nnode 1\nedge 0 r 1",
  };
  const std::string splices[] = {
      std::string(1, '\0'),              // NUL
      std::string("\xc3\xa9"),           // é
      std::string("\xf0\x9f\x92\xa9"),   // 4-byte emoji
      std::string("\xff"),               // invalid byte
      std::string(1, '\0') + "B(x)",     // NUL followed by more syntax
  };
  for (const std::string& base : bases) {
    for (const std::string& splice : splices) {
      for (int i = 0; i < 8; ++i) {
        std::string text = base;
        text.insert(rng() % (text.size() + 1), splice);
        auto q = ParseUcrpq(text, &vocab);
        if (!q.ok()) { EXPECT_FALSE(q.error().empty()); }
        auto t = ParseTBox(text, &vocab);
        if (!t.ok()) { EXPECT_FALSE(t.error().empty()); }
        auto g = ParseGraph(text, &vocab);
        if (!g.ok()) { EXPECT_FALSE(g.error().empty()); }
        auto s = ParseSchema(text, &vocab);
        if (!s.ok()) { EXPECT_FALSE(s.error().empty()); }
      }
    }
  }
}

TEST_P(FuzzTest, MutatedTBoxesParseOrFailCleanly) {
  std::mt19937_64 rng(GetParam() * 131 + 3);
  Vocabulary vocab;
  std::string base =
      "Customer <= exists owns.CredCard\nPremCC <= atmost 3 earns.RwrdProg";
  for (int i = 0; i < 60; ++i) {
    std::string mutated = Mutate(base, &rng);
    auto t = ParseTBox(mutated, &vocab);
    if (!t.ok()) {
      EXPECT_FALSE(t.error().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace gqc
