#include <gtest/gtest.h>

#include "src/automata/product.h"
#include "src/automata/regex_parser.h"
#include "src/automata/semiautomaton.h"
#include "src/graph/generators.h"

namespace gqc {
namespace {

class AutomataTest : public ::testing::Test {
 protected:
  RegexPtr R(const std::string& text) {
    auto r = ParseRegex(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
  }

  /// Language membership via a one-word graph: build a path spelling `word`
  /// and test whether the atom connects its endpoints.
  bool Accepts(const CompiledRegex& c, const std::vector<Symbol>& word) {
    Graph g;
    NodeId cur = g.AddNode();
    NodeId start = cur;
    for (Symbol s : word) {
      if (s.is_test()) {
        if (!s.literal().is_negative()) g.AddLabel(cur, s.literal().concept_id());
        continue;
      }
      NodeId nxt = g.AddNode();
      g.AddEdge(cur, s.role(), nxt);
      cur = nxt;
    }
    return AtomHolds(g, c.automaton, c.start, c.end, c.nullable, start, cur);
  }

  Symbol Sym(const std::string& role) {
    return Symbol::FromRole(Role::Forward(vocab_.RoleId(role)));
  }

  Vocabulary vocab_;
};

TEST_F(AutomataTest, CompileSingleSymbol) {
  CompiledRegex c = CompileRegex(R("r"));
  EXPECT_FALSE(c.nullable);
  EXPECT_TRUE(Accepts(c, {Sym("r")}));
  EXPECT_FALSE(Accepts(c, {}));
  EXPECT_FALSE(Accepts(c, {Sym("r"), Sym("r")}));
  EXPECT_FALSE(Accepts(c, {Sym("s")}));
}

TEST_F(AutomataTest, CompileConcatenationAndUnion) {
  CompiledRegex c = CompileRegex(R("r . (s + t)"));
  EXPECT_TRUE(Accepts(c, {Sym("r"), Sym("s")}));
  EXPECT_TRUE(Accepts(c, {Sym("r"), Sym("t")}));
  EXPECT_FALSE(Accepts(c, {Sym("r")}));
  EXPECT_FALSE(Accepts(c, {Sym("s"), Sym("r")}));
}

TEST_F(AutomataTest, CompileStarNullable) {
  CompiledRegex c = CompileRegex(R("(r . s)*"));
  EXPECT_TRUE(c.nullable);
  EXPECT_TRUE(Accepts(c, {}));
  EXPECT_TRUE(Accepts(c, {Sym("r"), Sym("s")}));
  EXPECT_TRUE(Accepts(c, {Sym("r"), Sym("s"), Sym("r"), Sym("s")}));
  EXPECT_FALSE(Accepts(c, {Sym("r")}));
}

TEST_F(AutomataTest, CompilePlus) {
  CompiledRegex c = CompileRegex(R("r^+"));
  EXPECT_FALSE(c.nullable);
  EXPECT_TRUE(Accepts(c, {Sym("r")}));
  EXPECT_TRUE(Accepts(c, {Sym("r"), Sym("r"), Sym("r")}));
  EXPECT_FALSE(Accepts(c, {}));
}

TEST_F(AutomataTest, TestSymbolsConsumeNoEdge) {
  CompiledRegex c = CompileRegex(R("[A] . r . [!B]"));
  Graph g;
  NodeId a = g.AddNode();
  NodeId b = g.AddNode();
  g.AddLabel(a, vocab_.ConceptId("A"));
  g.AddEdge(a, vocab_.RoleId("r"), b);
  EXPECT_TRUE(AtomHolds(g, c.automaton, c.start, c.end, c.nullable, a, b));
  g.AddLabel(b, vocab_.ConceptId("B"));
  EXPECT_FALSE(AtomHolds(g, c.automaton, c.start, c.end, c.nullable, a, b));
}

TEST_F(AutomataTest, InverseRoleTraversal) {
  CompiledRegex c = CompileRegex(R("r- . r"));
  Graph g;
  // u <- r - m - r -> w: from u, r- goes to m? No: u's r-inverse successors
  // are nodes with an edge INTO u. Build m -> u and m -> w.
  NodeId u = g.AddNode(), m = g.AddNode(), w = g.AddNode();
  uint32_t r = vocab_.RoleId("r");
  g.AddEdge(m, r, u);
  g.AddEdge(m, r, w);
  EXPECT_TRUE(AtomHolds(g, c.automaton, c.start, c.end, c.nullable, u, w));
  EXPECT_TRUE(AtomHolds(g, c.automaton, c.start, c.end, c.nullable, u, u))
      << "the path may return to its origin";
  EXPECT_FALSE(AtomHolds(g, c.automaton, c.start, c.end, c.nullable, m, w));
}

TEST_F(AutomataTest, DisjointUnionOffsetsStates) {
  Semiautomaton a;
  uint32_t s0 = a.AddState();
  uint32_t s1 = a.AddState();
  a.AddTransition(s0, Sym("r"), s1);
  Semiautomaton b;
  uint32_t t0 = b.AddState();
  b.AddTransition(t0, Sym("s"), t0);
  uint32_t offset = a.DisjointUnion(b);
  EXPECT_EQ(offset, 2u);
  EXPECT_EQ(a.StateCount(), 3u);
  EXPECT_EQ(a.Out(offset).size(), 1u);
  EXPECT_EQ(a.Out(offset)[0].second, offset);
}

TEST_F(AutomataTest, ReversedSemiautomaton) {
  CompiledRegex c = CompileRegex(R("r . s"));
  Semiautomaton rev = c.automaton.Reversed();
  // In the reversed automaton, a run from end to start reads the word
  // backwards over the same symbols.
  Graph g;
  NodeId x = g.AddNode(), y = g.AddNode(), z = g.AddNode();
  g.AddEdge(x, vocab_.RoleId("r"), y);
  g.AddEdge(y, vocab_.RoleId("s"), z);
  // Original: x --(r.s)--> z.
  EXPECT_TRUE(AtomHolds(g, c.automaton, c.start, c.end, false, x, z));
  // Reversed transitions: a run from c.end to c.start exists over the path
  // read backwards; on the graph this means starting at z following edges
  // backwards — which our role-based product cannot do directly, so we
  // check the structural property instead:
  EXPECT_EQ(rev.TransitionCount(), c.automaton.TransitionCount());
  EXPECT_EQ(rev.In(c.start).size(), c.automaton.Out(c.start).size());
}

TEST_F(AutomataTest, ReachableAndCoReachable) {
  CompiledRegex c = CompileRegex(R("r . s"));
  auto reach = c.automaton.ReachableStates(c.start);
  auto coreach = c.automaton.CoReachableStates(c.end);
  EXPECT_TRUE(reach[c.end]);
  EXPECT_TRUE(coreach[c.start]);
}

TEST_F(AutomataTest, AtomRelationOnCycle) {
  CompiledRegex c = CompileRegex(R("r . r"));
  Graph g = CycleGraph(4, vocab_.RoleId("r"));
  auto rel = AtomRelation(g, c.automaton, c.start, c.end, c.nullable);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_TRUE(rel[u].Test((u + 2) % 4));
    EXPECT_FALSE(rel[u].Test((u + 1) % 4));
  }
}

TEST_F(AutomataTest, EmptyWordOnlyWhenStartEqualsEndOrNullable) {
  // Atom with distinct states and non-nullable language: no diagonal.
  CompiledRegex c = CompileRegex(R("r"));
  Graph g;
  NodeId v = g.AddNode();
  EXPECT_FALSE(AtomHolds(g, c.automaton, c.start, c.end, c.nullable, v, v));
  // Same state pair: empty run allowed by definition (§2).
  EXPECT_TRUE(AtomHolds(g, c.automaton, c.start, c.start, false, v, v));
}

}  // namespace
}  // namespace gqc
