#include <gtest/gtest.h>

#include "src/dl/concept_parser.h"
#include "src/dl/model_check.h"
#include "src/dl/normalize.h"
#include "src/dl/transforms.h"
#include "src/dl/types.h"
#include "src/graph/generators.h"

namespace gqc {
namespace {

class DlTest : public ::testing::Test {
 protected:
  ConceptPtr C(const std::string& text) {
    auto r = ParseConcept(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
  }
  TBox T(const std::string& text) {
    auto r = ParseTBox(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
  }

  Vocabulary vocab_;
};

TEST_F(DlTest, ParseAndPrintConcepts) {
  ConceptPtr c = C("Customer and exists owns.(CredCard and not Closed)");
  EXPECT_EQ(c->kind, ConceptKind::kAnd);
  ConceptPtr q = C("atmost 3 earns.RwrdProg");
  EXPECT_EQ(q->kind, ConceptKind::kAtMost);
  EXPECT_EQ(q->n, 3u);
  ConceptPtr inv = C("exists owns-.Customer");
  EXPECT_TRUE(ConceptUsesInverse(inv));
  EXPECT_FALSE(ConceptUsesInverse(c));
}

TEST_F(DlTest, ParseTBoxAndFragments) {
  TBox alc = T("Customer <= exists owns.CredCard\nCredCard <= not Customer");
  EXPECT_EQ(alc.Fragment(), DlFragment::kAlc);
  TBox alci = T("CredCard <= exists owns-.Customer");
  EXPECT_EQ(alci.Fragment(), DlFragment::kAlci);
  TBox alcq = T("PremCC <= atmost 3 earns.RwrdProg");
  EXPECT_EQ(alcq.Fragment(), DlFragment::kAlcq);
  TBox alcqi = T("PremCC <= atmost 3 earns.RwrdProg\nCredCard <= exists owns-.Customer");
  EXPECT_EQ(alcqi.Fragment(), DlFragment::kAlcqi);
}

TEST_F(DlTest, CountingOnLhsDetected) {
  // atleast 2 on the left of ⊑ is counting after NNF of the implication.
  TBox t = T("atleast 2 owns.CredCard <= Rich");
  EXPECT_TRUE(t.UsesCounting());
  TBox e = T("exists owns.CredCard <= Owner");
  EXPECT_FALSE(e.UsesCounting());
}

TEST_F(DlTest, NnfPushesNegation) {
  ConceptPtr c = C("not (A and exists r.B)");
  ConceptPtr nnf = ToNnf(c);
  EXPECT_EQ(nnf->kind, ConceptKind::kOr);
  // ¬∃r.B = ∀r.¬B (stays in ALC).
  EXPECT_EQ(nnf->children[1]->kind, ConceptKind::kForall);
  EXPECT_EQ(nnf->children[1]->children[0]->kind, ConceptKind::kNot);
  // ¬≤2 = ≥3.
  ConceptPtr n = ToNnf(C("not atmost 2 r.B"));
  EXPECT_EQ(n->kind, ConceptKind::kAtLeast);
  EXPECT_EQ(n->n, 3u);
}

TEST_F(DlTest, ConceptExtension) {
  uint32_t owns = vocab_.RoleId("owns");
  uint32_t cust = vocab_.ConceptId("Customer");
  uint32_t card = vocab_.ConceptId("CredCard");
  Graph g;
  NodeId alice = g.AddNode();
  NodeId visa = g.AddNode();
  NodeId amex = g.AddNode();
  g.AddLabel(alice, cust);
  g.AddLabel(visa, card);
  g.AddLabel(amex, card);
  g.AddEdge(alice, owns, visa);
  g.AddEdge(alice, owns, amex);

  auto ext = ConceptExtension(g, C("exists owns.CredCard"));
  EXPECT_TRUE(ext.Test(alice));
  EXPECT_FALSE(ext.Test(visa));
  auto two = ConceptExtension(g, C("atleast 2 owns.CredCard"));
  EXPECT_TRUE(two.Test(alice));
  auto atmost1 = ConceptExtension(g, C("atmost 1 owns.CredCard"));
  EXPECT_FALSE(atmost1.Test(alice));
  EXPECT_TRUE(atmost1.Test(visa)) << "no successors satisfies atmost";
  auto inv = ConceptExtension(g, C("exists owns-.Customer"));
  EXPECT_TRUE(inv.Test(visa));
  EXPECT_FALSE(inv.Test(alice));
  auto forall = ConceptExtension(g, C("forall owns.CredCard"));
  EXPECT_TRUE(forall.Test(alice));
  g.AddEdge(alice, owns, alice);
  auto forall2 = ConceptExtension(g, C("forall owns.CredCard"));
  EXPECT_FALSE(forall2.Test(alice));
}

TEST_F(DlTest, SatisfiesTBox) {
  TBox t = T("Customer <= exists owns.CredCard\nCustomer and CredCard <= bottom");
  uint32_t owns = vocab_.FindRole("owns");
  uint32_t cust = vocab_.FindConcept("Customer");
  uint32_t card = vocab_.FindConcept("CredCard");
  Graph g;
  NodeId alice = g.AddNode();
  NodeId visa = g.AddNode();
  g.AddLabel(alice, cust);
  g.AddLabel(visa, card);
  EXPECT_FALSE(Satisfies(g, t)) << "alice owns nothing yet";
  g.AddEdge(alice, owns, visa);
  EXPECT_TRUE(Satisfies(g, t));
  g.AddLabel(visa, cust);
  EXPECT_FALSE(Satisfies(g, t)) << "disjointness violated";
}

TEST_F(DlTest, NormalizationConservative) {
  TBox t = T(
      "Customer <= exists owns.(CredCard and not Closed)\n"
      "PremCC <= atmost 3 earns.RwrdProg\n"
      "Company <= Partner or not exists partof.Company");
  NormalTBox nf = Normalize(t, &vocab_);
  // Every normal CI is in one of the four shapes by construction; check the
  // model relationship on a few graphs: G ⊨ nf implies G ⊨ t.
  uint32_t owns = vocab_.FindRole("owns");
  uint32_t cust = vocab_.FindConcept("Customer");
  uint32_t card = vocab_.FindConcept("CredCard");

  Graph g;
  NodeId alice = g.AddNode();
  NodeId visa = g.AddNode();
  g.AddLabel(alice, cust);
  g.AddLabel(visa, card);
  g.AddEdge(alice, owns, visa);
  EXPECT_TRUE(Satisfies(g, t));
  // The graph does not carry the fresh normalization labels, so it need not
  // satisfy nf; but any graph that does satisfy nf must satisfy t.
  Graph h = g;  // labels absent: nf likely fails, which is fine.
  if (Satisfies(h, nf)) {
    EXPECT_TRUE(Satisfies(h, t));
  }
  // Violating t must violate nf too (contrapositive of conservativity).
  Graph bad;
  bad.AddLabel(bad.AddNode(), cust);  // customer owning nothing
  EXPECT_FALSE(Satisfies(bad, t));
  EXPECT_FALSE(Satisfies(bad, nf));
}

TEST_F(DlTest, NormalFormShapes) {
  TBox t = T("A <= exists r.(B or C)\nnot A <= forall r.(B and not C)");
  NormalTBox nf = Normalize(t, &vocab_);
  for (const auto& ci : nf.Cis()) {
    if (ci.kind == NormalCi::Kind::kAtLeast) {
      EXPECT_GE(ci.n, 1u);
    }
  }
  EXPECT_TRUE(nf.HasParticipationConstraints());
}

TEST_F(DlTest, DropParticipation) {
  TBox t = T("A <= exists r.B\nA <= forall r.B\nA <= atmost 2 r.B");
  NormalTBox nf = Normalize(t, &vocab_);
  NormalTBox t0 = DropParticipationConstraints(nf);
  EXPECT_FALSE(t0.HasParticipationConstraints());
  EXPECT_LT(t0.size(), nf.size());
}

TEST_F(DlTest, ForwardBackwardRestriction) {
  TBox t = T("A <= exists r.B\nB <= exists r-.A\nA <= forall r-.C\nC <= forall r.D");
  NormalTBox nf = Normalize(t, &vocab_);
  NormalTBox fwd = ForwardRestriction(nf);
  EXPECT_FALSE(fwd.UsesInverse());
  NormalTBox bwd = BackwardRestriction(nf);
  for (const auto& ci : bwd.Cis()) {
    if (ci.kind != NormalCi::Kind::kBoolean) {
      EXPECT_TRUE(ci.role.is_inverse());
    }
  }
}

TEST_F(DlTest, FlippedForallEquivalent) {
  // A ⊑ ∀r⁻.B ≡ ¬B ⊑ ∀r.¬A: check on concrete graphs.
  TBox orig = T("A <= forall r-.B");
  NormalTBox nf = Normalize(orig, &vocab_);
  NormalTBox fwd = ForwardRestriction(nf);
  uint32_t r = vocab_.FindRole("r");
  uint32_t a = vocab_.FindConcept("A");
  uint32_t b = vocab_.FindConcept("B");
  for (int labels = 0; labels < 16; ++labels) {
    Graph g;
    NodeId u = g.AddNode(), v = g.AddNode();
    g.AddEdge(u, r, v);
    if (labels & 1) g.AddLabel(u, a);
    if (labels & 2) g.AddLabel(u, b);
    if (labels & 4) g.AddLabel(v, a);
    if (labels & 8) g.AddLabel(v, b);
    EXPECT_EQ(Satisfies(g, nf), Satisfies(g, fwd))
        << "disagree on labels=" << labels;
  }
}

TEST_F(DlTest, CountingVocabularyAndTn) {
  TBox t = T("A <= atleast 2 r.B\nA <= atmost 3 r.B");
  NormalTBox nf = ForallsToAtMost(Normalize(t, &vocab_));
  CountingVocabulary cv = MakeCountingVocabulary(nf, &vocab_);
  ASSERT_EQ(cv.pairs.size(), 1u);
  EXPECT_EQ(cv.big_n, 4u);
  EXPECT_EQ(cv.pairs[0].labels.size(), 5u);

  NormalTBox tn = MakeTn(cv);
  // A graph with a node with exactly 2 r-successors in B: the unique correct
  // labelling has C_0, C_1, C_2 and not C_3, C_4.
  uint32_t r = vocab_.FindRole("r");
  uint32_t b = vocab_.FindConcept("B");
  Graph g;
  NodeId u = g.AddNode();
  for (int i = 0; i < 2; ++i) {
    NodeId w = g.AddNode();
    g.AddLabel(w, b);
    g.AddEdge(u, r, w);
    // Successor labelling: C_0 only.
    g.AddLabel(w, cv.pairs[0].labels[0]);
  }
  for (uint32_t i = 0; i <= 2; ++i) g.AddLabel(u, cv.pairs[0].labels[i]);
  EXPECT_TRUE(Satisfies(g, tn));
  g.AddLabel(u, cv.pairs[0].labels[3]);
  EXPECT_FALSE(Satisfies(g, tn)) << "claiming 3 successors with only 2";
}

TEST_F(DlTest, TeSplitsCounts) {
  // T: A ⊑ ≥2 r.B. With the label C_1 promising one frame successor, a node
  // with a single in-component successor satisfies T_e.
  TBox t = T("A <= atleast 2 r.B");
  NormalTBox nf = ForallsToAtMost(Normalize(t, &vocab_));
  CountingVocabulary cv = MakeCountingVocabulary(nf, &vocab_);
  // Model-check T_e as a general TBox: graphs under test do not carry the
  // fresh names a normalization pass would introduce.
  TBox te = MakeTe(nf, cv);

  uint32_t r = vocab_.FindRole("r");
  uint32_t a = vocab_.FindConcept("A");
  uint32_t b = vocab_.FindConcept("B");
  Graph g;
  NodeId u = g.AddNode();
  NodeId w = g.AddNode();
  g.AddLabel(u, a);
  g.AddLabel(w, b);
  g.AddEdge(u, r, w);
  // Without any counting labels: T_e unsatisfied (only one successor).
  EXPECT_FALSE(Satisfies(g, te));
  // Promise one more via C_1.
  g.AddLabel(u, cv.pairs[0].labels[0]);
  g.AddLabel(u, cv.pairs[0].labels[1]);
  g.AddLabel(w, cv.pairs[0].labels[0]);
  EXPECT_TRUE(Satisfies(g, te));
}

TEST_F(DlTest, EnumerateTypes) {
  TBox t = T("A <= B\nA and C <= bottom");
  NormalTBox nf = Normalize(t, &vocab_);
  std::vector<std::vector<uint32_t>> groups{nf.ConceptIds()};
  TypeSpace space = MakeSupport(groups);
  auto types = EnumerateLocallyConsistentTypes(space, nf);
  // Every returned mask satisfies: A -> B, not (A and C).
  std::size_t pa = space.PositionOf(vocab_.FindConcept("A"));
  std::size_t pb = space.PositionOf(vocab_.FindConcept("B"));
  std::size_t pc = space.PositionOf(vocab_.FindConcept("C"));
  ASSERT_NE(pa, TypeSpace::npos);
  for (uint64_t mask : types) {
    bool a = (mask >> pa) & 1, b = (mask >> pb) & 1, c = (mask >> pc) & 1;
    EXPECT_TRUE(!a || b);
    EXPECT_FALSE(a && c);
  }
  EXPECT_FALSE(types.empty());
}

TEST_F(DlTest, NodeSatisfiesIsPerNode) {
  TBox t = T("A <= exists r.B");
  NormalTBox nf = Normalize(t, &vocab_);
  uint32_t a = vocab_.FindConcept("A");
  Graph g;
  NodeId u = g.AddNode();
  NodeId v = g.AddNode();
  g.AddLabel(u, a);
  g.AddLabel(v, a);
  g.AddEdge(u, vocab_.FindRole("r"), v);
  // Needs B on the successor; both nodes violate, but differently.
  EXPECT_FALSE(NodeSatisfies(g, u, nf));
  EXPECT_FALSE(NodeSatisfies(g, v, nf));
  g.AddLabel(v, vocab_.FindConcept("B"));
  EXPECT_TRUE(NodeSatisfies(g, u, nf));
  EXPECT_FALSE(NodeSatisfies(g, v, nf)) << "v has label A but no r-successor";
}

}  // namespace
}  // namespace gqc
