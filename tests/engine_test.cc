#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/schema/workload.h"
#include "src/util/json.h"
#include "src/util/thread_pool.h"

namespace gqc {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::vector<std::size_t> order;
  pool.ParallelFor(5, [&](std::size_t i) { order.push_back(i); });
  // No workers: the caller runs all iterations, in order.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 16;
  std::atomic<int> total{0};
  pool.ParallelFor(kOuter, [&](std::size_t) {
    pool.ParallelFor(kInner, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), static_cast<int>(kOuter * kInner));
}

TEST(ThreadPoolTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(3);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

// -------------------------------------------------------------------- Engine

/// Batch size for the workload-driven tests, clamped by GQC_ENGINE_TEST_ITEMS
/// when set. Sanitizer runs (tools/sanitize.sh) shrink the batches this way —
/// TSan's ~10x slowdown makes the full batches blow the ctest timeout, and
/// race coverage needs many threads, not many items.
std::size_t TestBatchSize(std::size_t full) {
  const char* env = std::getenv("GQC_ENGINE_TEST_ITEMS");
  if (env == nullptr) return full;
  std::size_t cap = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  return cap == 0 ? full : std::min(cap, full);
}

std::vector<BatchItem> WorkloadItems(std::size_t count, uint64_t seed) {
  WorkloadOptions wopts;
  wopts.seed = seed;
  std::vector<WorkloadInstance> instances = GenerateWorkload(wopts, count);
  std::vector<BatchItem> items;
  items.reserve(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    BatchItem item;
    item.id = std::to_string(i);
    item.schema_text = instances[i].schema_text;
    item.p_text = instances[i].p_text;
    item.q_text = instances[i].q_text;
    items.push_back(std::move(item));
  }
  return items;
}

TEST(EngineTest, OneAndEightThreadsAgreeBitForBit) {
  std::vector<BatchItem> items = WorkloadItems(TestBatchSize(60), 11);

  EngineOptions opts1;
  opts1.threads = 1;
  Engine sequential(opts1);
  std::vector<BatchOutcome> base = sequential.DecideBatch(items);

  EngineOptions opts8;
  opts8.threads = 8;
  Engine parallel(opts8);
  std::vector<BatchOutcome> out = parallel.DecideBatch(items);

  ASSERT_EQ(base.size(), out.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].id, out[i].id);
    EXPECT_EQ(base[i].ok, out[i].ok) << "item " << i;
    EXPECT_EQ(base[i].error, out[i].error) << "item " << i;
    EXPECT_EQ(base[i].verdict, out[i].verdict) << "item " << i;
    EXPECT_EQ(base[i].attr.method, out[i].attr.method) << "item " << i;
    EXPECT_EQ(base[i].attr.note, out[i].attr.note) << "item " << i;
    EXPECT_EQ(base[i].countermodel_nodes, out[i].countermodel_nodes)
        << "item " << i;
  }
  EXPECT_EQ(sequential.stats().pairs_total.load(),
            parallel.stats().pairs_total.load());
}

TEST(EngineTest, RepeatedSchemasAndQueriesHitTheCaches) {
  std::vector<BatchItem> items = WorkloadItems(TestBatchSize(20), 3);
  // Duplicate the batch: every second copy must hit the (schema, Q) context
  // caches instead of re-parsing and re-normalizing.
  std::vector<BatchItem> doubled = items;
  doubled.insert(doubled.end(), items.begin(), items.end());

  EngineOptions opts;
  opts.threads = 1;
  Engine engine(opts);
  std::vector<BatchOutcome> out = engine.DecideBatch(doubled);
  ASSERT_EQ(out.size(), doubled.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(out[i].verdict, out[items.size() + i].verdict) << "item " << i;
  }

  const PipelineStats& stats = engine.stats();
  EXPECT_GE(stats.query_ctx_hits.load(), items.size());
  EXPECT_EQ(stats.query_ctx_misses.load(), items.size());
  // Workload queries reuse a small pool of path regexes.
  EXPECT_GT(stats.regex_hits.load(), 0u);
}

TEST(EngineTest, DistinctQueriesAgainstOneSchemaShareTheSchemaContext) {
  const std::string schema = "A <= exists r.B\ntop <= forall r.B";
  std::vector<BatchItem> items;
  for (const char* q : {"A(x)", "B(x)", "r(x, y)"}) {
    BatchItem item;
    item.id = q;
    item.schema_text = schema;
    item.p_text = "A(x), r(x, y), B(y)";
    item.q_text = q;
    items.push_back(std::move(item));
  }
  Engine engine;
  (void)engine.DecideBatch(items);
  const PipelineStats& stats = engine.stats();
  // Three distinct (schema, Q) contexts, but the schema parsed once.
  EXPECT_EQ(stats.query_ctx_misses.load(), 3u);
  EXPECT_EQ(stats.schema_ctx_misses.load(), 1u);
  EXPECT_EQ(stats.schema_ctx_hits.load(), 2u);
}

TEST(EngineTest, ResetStateClearsCachesAndStats) {
  std::vector<BatchItem> items = WorkloadItems(5, 19);
  Engine engine;
  (void)engine.DecideBatch(items);
  ASSERT_GT(engine.stats().pairs_total.load(), 0u);
  engine.ResetState();
  EXPECT_EQ(engine.stats().pairs_total.load(), 0u);
  EXPECT_EQ(engine.stats().schema_ctx_hits.load(), 0u);
  // After reset, the same batch repopulates from scratch (all misses again).
  (void)engine.DecideBatch(items);
  EXPECT_EQ(engine.stats().query_ctx_misses.load(), items.size());
}

TEST(EngineTest, ErrorItemsAreReportedNotFatal) {
  BatchItem bad;
  bad.id = "bad";
  bad.schema_text = "A <= exists r.";  // malformed concept syntax
  bad.p_text = "A(x)";
  bad.q_text = "A(x)";
  BatchItem good;
  good.id = "good";
  good.p_text = "r(x, y)";
  good.q_text = "r(x, y); s(x, y)";

  Engine engine;
  std::vector<BatchOutcome> out = engine.DecideBatch({bad, good});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].ok);
  EXPECT_FALSE(out[0].error.empty());
  EXPECT_TRUE(out[1].ok);
  EXPECT_EQ(out[1].verdict, Verdict::kContained);
  EXPECT_EQ(engine.stats().pairs_error.load(), 1u);
}

TEST(EngineTest, BatchItemJsonRoundTrip) {
  auto item = Engine::ParseBatchItemJson(
      R"js({"id": "i-1", "schema": "A <= exists r.B\ntop <= forall r.B",)js"
      R"js( "p": "A(x), r(x, y)", "q": "r(x, \"y\")"})js");
  ASSERT_TRUE(item.ok()) << item.error();
  EXPECT_EQ(item.value().id, "i-1");
  EXPECT_EQ(item.value().schema_text, "A <= exists r.B\ntop <= forall r.B");
  EXPECT_EQ(item.value().p_text, "A(x), r(x, y)");
  EXPECT_EQ(item.value().q_text, "r(x, \"y\")");

  EXPECT_FALSE(Engine::ParseBatchItemJson(R"js({"id": "x"})js").ok());
  EXPECT_FALSE(
      Engine::ParseBatchItemJson(R"js({"p": "A(x)", "q": "B(x)", "zz": 1})js").ok());
  EXPECT_FALSE(Engine::ParseBatchItemJson("not json").ok());
}

TEST(EngineTest, OutcomeJsonIsParseableAndComplete) {
  BatchOutcome outcome;
  outcome.id = "pair \"7\"";
  outcome.ok = true;
  outcome.verdict = Verdict::kNotContained;
  outcome.attr.method = ContainmentMethod::kDirectSearch;
  outcome.attr.note = "line1\nline2";
  outcome.countermodel_nodes = 3;
  outcome.wall_ms = 1.5;

  std::string json = Engine::OutcomeToJson(outcome);
  auto fields = ParseFlatJsonObject(json);
  ASSERT_TRUE(fields.ok()) << fields.error() << "\n" << json;
  std::string id, verdict, note, nodes;
  for (const JsonField& f : fields.value()) {
    if (f.key == "id") id = f.value;
    if (f.key == "verdict") verdict = f.value;
    if (f.key == "note") note = f.value;
    if (f.key == "countermodel_nodes") nodes = f.value;
  }
  EXPECT_EQ(id, "pair \"7\"");
  EXPECT_EQ(verdict, VerdictName(Verdict::kNotContained));
  EXPECT_EQ(note, "line1\nline2");
  EXPECT_EQ(nodes, "3");
}

// Outcome JSON carries the winning strategy when one is attributed (always
// under --portfolio for definite verdicts) and omits the key when the
// strategy layer never ran.
TEST(EngineTest, OutcomeJsonCarriesWinningStrategy) {
  BatchOutcome outcome;
  outcome.id = "p";
  outcome.ok = true;
  outcome.verdict = Verdict::kContained;
  outcome.attr.method = ContainmentMethod::kReduction;
  outcome.attr.strategy = "reduction";
  EXPECT_NE(Engine::OutcomeToJson(outcome).find("\"strategy\":\"reduction\""),
            std::string::npos);
  outcome.attr.strategy.clear();
  EXPECT_EQ(Engine::OutcomeToJson(outcome).find("\"strategy\""),
            std::string::npos);

  // End to end: a portfolio batch attributes every definite outcome.
  std::vector<BatchItem> items = WorkloadItems(TestBatchSize(10), 17);
  EngineOptions opts;
  opts.threads = 4;
  opts.portfolio = true;
  // Finite budget: keeps the deep witness racer from exhausting its seed
  // space on instances that end Unknown anyway.
  opts.containment.resources.max_steps = 20000;
  Engine engine(opts);
  std::vector<BatchOutcome> out = engine.DecideBatch(items);
  ASSERT_EQ(out.size(), items.size());
  bool any_definite = false;
  for (const BatchOutcome& o : out) {
    if (!o.ok || o.verdict == Verdict::kUnknown) continue;
    any_definite = true;
    EXPECT_FALSE(o.attr.strategy.empty()) << o.id;
    EXPECT_NE(Engine::OutcomeToJson(o).find("\"strategy\""), std::string::npos)
        << o.id;
  }
  EXPECT_TRUE(any_definite);
}

// ------------------------------------------------- deadlines / cancellation

// A batch whose deadline has already passed when pairs reach the front of
// the queue yields all-Unknown outcomes without running a single search, at
// 1 and at 8 threads, and the stats still account for every item.
TEST(EngineTest, ExpiredBatchDeadlinePreemptsEveryPair) {
  std::vector<BatchItem> items = WorkloadItems(TestBatchSize(12), 31);
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    EngineOptions opts;
    opts.threads = threads;
    // One nanosecond: pinned at batch start, guaranteed past by the time any
    // pair begins.
    opts.batch_timeout_ms = 1e-6;
    Engine engine(opts);
    std::vector<BatchOutcome> out = engine.DecideBatch(items);
    ASSERT_EQ(out.size(), items.size());
    for (const BatchOutcome& o : out) {
      EXPECT_TRUE(o.ok) << o.id;
      EXPECT_EQ(o.verdict, Verdict::kUnknown) << o.id;
      EXPECT_EQ(o.attr.unknown_reason(), "deadline") << o.id;
      EXPECT_NE(o.attr.note.find("preempted"), std::string::npos) << o.id;
    }
    const PipelineStats& stats = engine.stats();
    EXPECT_EQ(stats.pairs_preempted.load(), items.size());
    EXPECT_EQ(stats.pairs_total.load(), items.size());
    EXPECT_EQ(stats.pairs_unknown.load(), items.size());
    // No guarded decision ever started — nothing was parsed or searched.
    EXPECT_EQ(stats.guards_total.load(), 0u);
    EXPECT_EQ(stats.disjuncts_total.load(), 0u);
  }
}

// CancelAll during a running batch: every item still gets an outcome, every
// definite verdict matches an uncancelled reference run (completed work is
// never thrown away or corrupted), and the verdict tallies sum to the item
// count. Exercised at 1 and 8 threads.
TEST(EngineTest, CancelAllMidBatchLeavesCompletedVerdictsIntact) {
  std::vector<BatchItem> items = WorkloadItems(TestBatchSize(40), 11);

  EngineOptions ref_opts;
  ref_opts.threads = 1;
  Engine reference(ref_opts);
  std::vector<BatchOutcome> ref = reference.DecideBatch(items);

  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    EngineOptions opts;
    opts.threads = threads;
    Engine engine(opts);
    std::vector<BatchOutcome> out;
    std::thread worker(
        [&] { out = engine.DecideBatch(items); });
    // Let some pairs complete, then cancel mid-flight. If the batch already
    // finished, the assertions below still hold (just with no cancellations).
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    engine.CancelAll();
    worker.join();

    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      SCOPED_TRACE("item " + items[i].id);
      EXPECT_EQ(out[i].ok, ref[i].ok);
      if (!out[i].ok) continue;
      if (out[i].verdict != Verdict::kUnknown) {
        // Completed before the cancellation: must be the true verdict. (The
        // note may legitimately differ — with several disjuncts, the first
        // refuting disjunct in disjunct order can change when an earlier one
        // was cancelled mid-decision.)
        EXPECT_EQ(out[i].verdict, ref[i].verdict);
      } else if (out[i].attr.unknown_reason() != "cancelled") {
        // Unknown for a non-cancellation reason must be Unknown in the
        // reference too (cancellation never invents other Unknowns).
        EXPECT_EQ(ref[i].verdict, Verdict::kUnknown);
      }
    }
    const PipelineStats& stats = engine.stats();
    EXPECT_EQ(stats.pairs_total.load() + stats.pairs_error.load(),
              items.size());
    EXPECT_EQ(stats.pairs_contained.load() + stats.pairs_not_contained.load() +
                  stats.pairs_unknown.load(),
              stats.pairs_total.load());

    // A batch started after CancelAll is unaffected (tokens are per batch).
    std::vector<BatchOutcome> fresh = engine.DecideBatch(items);
    ASSERT_EQ(fresh.size(), items.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      if (!fresh[i].ok) continue;
      if (fresh[i].verdict != Verdict::kUnknown) {
        EXPECT_EQ(fresh[i].verdict, ref[i].verdict) << "item " << items[i].id;
      }
    }
  }
}

TEST(EngineTest, StatsJsonExports) {
  std::vector<BatchItem> items = WorkloadItems(4, 23);
  Engine engine;
  (void)engine.DecideBatch(items);
  std::string json = engine.StatsJson();
  EXPECT_NE(json.find("\"pairs\""), std::string::npos);
  EXPECT_NE(json.find("\"phases_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"caches\""), std::string::npos);
  EXPECT_NE(json.find("\"throughput\""), std::string::npos);
}

}  // namespace
}  // namespace gqc
