#include <gtest/gtest.h>

#include "src/core/minimize.h"
#include "src/dl/concept_parser.h"
#include "src/dl/model_check.h"
#include "src/dl/normalize.h"
#include "src/graph/io.h"
#include "src/query/eval.h"
#include "src/query/parser.h"
#include "src/schema/schema_parser.h"

namespace gqc {
namespace {

class IoTest : public ::testing::Test {
 protected:
  Vocabulary vocab_;
};

TEST_F(IoTest, ParseGraphBasics) {
  auto g = ParseGraph(
      "# a small instance\n"
      "node alice Customer Premium\n"
      "node visa CredCard\n"
      "edge alice owns visa\n"
      "edge alice owns amex\n",  // amex implicitly created
      &vocab_);
  ASSERT_TRUE(g.ok()) << g.error();
  EXPECT_EQ(g.value().graph.NodeCount(), 3u);
  EXPECT_EQ(g.value().graph.EdgeCount(), 2u);
  NodeId alice = g.value().Find("alice");
  ASSERT_NE(alice, kNoNode);
  EXPECT_TRUE(g.value().graph.HasLabel(alice, vocab_.FindConcept("Customer")));
  EXPECT_TRUE(g.value().graph.HasLabel(alice, vocab_.FindConcept("Premium")));
  EXPECT_EQ(g.value().Find("nobody"), kNoNode);
}

TEST_F(IoTest, ParseGraphErrors) {
  EXPECT_FALSE(ParseGraph("node\n", &vocab_).ok());
  EXPECT_FALSE(ParseGraph("edge a owns\n", &vocab_).ok());
  EXPECT_FALSE(ParseGraph("vertex a\n", &vocab_).ok());
}

TEST_F(IoTest, GraphRoundTrip) {
  auto g = ParseGraph(
      "node a A\n"
      "node b B\n"
      "edge a r b\n"
      "edge b s a\n",
      &vocab_);
  ASSERT_TRUE(g.ok());
  std::string text = WriteGraph(g.value().graph, vocab_, &g.value().nodes);
  auto reparsed = ParseGraph(text, &vocab_);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_EQ(reparsed.value().graph.NodeCount(), g.value().graph.NodeCount());
  EXPECT_EQ(reparsed.value().graph.EdgeCount(), g.value().graph.EdgeCount());
  // Same queries match.
  auto q = ParseUcrpq("A(x), r(x, y), s(y, x)", &vocab_);
  EXPECT_TRUE(Matches(g.value().graph, q.value()));
  EXPECT_TRUE(Matches(reparsed.value().graph, q.value()));
}

TEST_F(IoTest, ParseSchemaSurfaceSyntax) {
  auto schema = ParseSchema(
      "# credit cards\n"
      "node Customer\n"
      "node CredCard\n"
      "subtype PremCC CredCard\n"
      "disjoint Customer CredCard\n"
      "edge owns Customer -> CredCard\n"
      "participation Customer owns CredCard min 1\n"
      "cardinality PremCC earns RwrdProg max 3\n"
      "key owns Customer -> CredCard\n",
      &vocab_);
  ASSERT_TRUE(schema.ok()) << schema.error();
  NormalTBox nf = Normalize(schema.value(), &vocab_);
  EXPECT_TRUE(nf.HasParticipationConstraints());
  EXPECT_TRUE(nf.UsesCounting());
  EXPECT_TRUE(nf.UsesInverse()) << "edge typing and keys use inverse roles";

  // Check the compiled semantics on a concrete instance.
  Graph g;
  NodeId alice = g.AddNode();
  NodeId visa = g.AddNode();
  g.AddLabel(alice, vocab_.FindConcept("Customer"));
  g.AddLabel(visa, vocab_.FindConcept("CredCard"));
  g.AddEdge(alice, vocab_.FindRole("owns"), visa);
  EXPECT_TRUE(Satisfies(g, schema.value()));
  // A second owner of the same card violates the key.
  NodeId bob = g.AddNode();
  g.AddLabel(bob, vocab_.FindConcept("Customer"));
  g.AddEdge(bob, vocab_.FindRole("owns"), visa);
  EXPECT_FALSE(Satisfies(g, schema.value()));
}

TEST_F(IoTest, ParseSchemaAvoidInverseOption) {
  auto schema = ParseSchema(
      "option avoid_inverse\n"
      "edge owns Customer -> CredCard\n",
      &vocab_);
  ASSERT_TRUE(schema.ok()) << schema.error();
  EXPECT_FALSE(schema.value().UsesInverse());
}

TEST_F(IoTest, ParseSchemaErrors) {
  EXPECT_FALSE(ParseSchema("edge owns Customer CredCard\n", &vocab_).ok())
      << "missing arrow";
  EXPECT_FALSE(ParseSchema("participation A owns B max 1\n", &vocab_).ok())
      << "participation uses min";
  EXPECT_FALSE(ParseSchema("option frobnicate\n", &vocab_).ok());
  EXPECT_FALSE(ParseSchema("frobnicate A\n", &vocab_).ok());
}

TEST_F(IoTest, MinimizeCountermodelShrinks) {
  // A deliberately bloated countermodel for r(x,y) ⊑ r(x,y) ∧ B(y).
  auto tbox = ParseTBox("A <= A", &vocab_);
  NormalTBox nf = Normalize(tbox.value(), &vocab_);
  auto p = ParseUcrpq("r(x, y)", &vocab_);
  auto q = ParseUcrpq("r(x, y), B(y)", &vocab_);

  Graph bloated;
  uint32_t r = vocab_.FindRole("r");
  NodeId a = bloated.AddNode(), b = bloated.AddNode();
  bloated.AddEdge(a, r, b);
  // Extra junk: labels, nodes, edges (no B anywhere, so q stays refuted).
  for (int i = 0; i < 4; ++i) {
    NodeId extra = bloated.AddNode();
    bloated.AddLabel(extra, vocab_.ConceptId("Junk" + std::to_string(i)));
    bloated.AddEdge(a, r, extra);
  }
  ASSERT_TRUE(Matches(bloated, p.value()));
  ASSERT_FALSE(Matches(bloated, q.value()));

  Graph minimal = MinimizeCountermodel(bloated, p.value(), q.value(), nf);
  EXPECT_EQ(minimal.NodeCount(), 2u);
  EXPECT_EQ(minimal.EdgeCount(), 1u);
  EXPECT_TRUE(Matches(minimal, p.value()));
  EXPECT_FALSE(Matches(minimal, q.value()));
  std::size_t labels = 0;
  for (NodeId v = 0; v < minimal.NodeCount(); ++v) {
    labels += minimal.Labels(v).Count();
  }
  EXPECT_EQ(labels, 0u) << "no label is needed for this countermodel";
}

TEST_F(IoTest, MinimizeKeepsInvariantWitnesses) {
  // With a schema in play, minimization must not break satisfaction.
  auto tbox = ParseTBox("A <= exists r.B", &vocab_);
  NormalTBox nf = Normalize(tbox.value(), &vocab_);
  auto p = ParseUcrpq("A(x)", &vocab_);
  auto q = ParseUcrpq("C(x)", &vocab_);

  Graph g;
  uint32_t r = vocab_.FindRole("r");
  NodeId a = g.AddNode(), w = g.AddNode(), extra = g.AddNode();
  g.AddLabel(a, vocab_.FindConcept("A"));
  g.AddLabel(w, vocab_.FindConcept("B"));
  g.AddLabel(extra, vocab_.FindConcept("B"));
  g.AddEdge(a, r, w);
  g.AddEdge(a, r, extra);

  Graph minimal = MinimizeCountermodel(g, p.value(), q.value(), nf);
  EXPECT_TRUE(Satisfies(minimal, nf));
  EXPECT_TRUE(Matches(minimal, p.value()));
  EXPECT_EQ(minimal.NodeCount(), 2u) << "one witness suffices, the other goes";
}

}  // namespace
}  // namespace gqc
