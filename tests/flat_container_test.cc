// Property tests for the hot-path data structures (DESIGN.md §11): the
// open-addressing FlatMap/FlatSet are exercised against std reference
// containers under randomized insert/erase/clear/iterate churn (the erase
// path uses backward-shift deletion, which a forced-collision hasher pins
// down explicitly), MaskIndex and DynamicBitset kernels are checked against
// naive set algebra, and the flat-container-backed shared caches are
// hammered from 8 threads (FlatContainerTest is in the tools/sanitize.sh
// TSan filter — the containers themselves are not thread-safe; the point is
// that the existing cache mutexes still cover every probe).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/automata/compile_cache.h"
#include "src/automata/regex_parser.h"
#include "src/core/caches.h"
#include "src/core/factboard.h"
#include "src/dl/concept_parser.h"
#include "src/dl/types.h"
#include "src/query/parser.h"
#include "src/util/arena.h"
#include "src/util/bitset.h"
#include "src/util/fingerprint.h"
#include "src/util/flat_map.h"
#include "src/util/interner.h"

namespace gqc {
namespace {

// -------------------------------------------------- FlatMap vs reference

TEST(FlatContainerTest, MapMatchesReferenceUnderChurn) {
  std::mt19937_64 rng(0xC0FFEEu);
  FlatMap<uint64_t, int> flat;
  std::unordered_map<uint64_t, int> ref;
  // Small key universe so inserts, duplicate inserts, hits, and misses all
  // occur; periodic Clear() exercises the rebuild-from-empty path.
  std::uniform_int_distribution<uint64_t> key_dist(0, 255);
  for (int step = 0; step < 20000; ++step) {
    uint64_t key = key_dist(rng);
    switch (step % 5) {
      case 0:
      case 1: {  // insert-if-absent
        auto [slot, inserted] = flat.TryEmplace(key, step);
        auto [it, ref_inserted] = ref.try_emplace(key, step);
        ASSERT_EQ(inserted, ref_inserted);
        ASSERT_EQ(*slot, it->second);
        break;
      }
      case 2: {  // overwrite via operator[]
        flat[key] = step;
        ref[key] = step;
        break;
      }
      case 3: {  // erase
        ASSERT_EQ(flat.Erase(key), ref.erase(key) == 1);
        break;
      }
      case 4: {  // lookup
        int* found = flat.Find(key);
        auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found != nullptr) {
          ASSERT_EQ(*found, it->second);
        }
        break;
      }
    }
    if (step % 4096 == 4095) {
      flat.Clear();
      ref.clear();
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Full-content comparison via iteration, both directions.
  std::size_t visited = 0;
  flat.ForEach([&](uint64_t k, int v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << "flat map holds unexpected key " << k;
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatContainerTest, StringMapMatchesReferenceUnderChurn) {
  std::mt19937_64 rng(0xBEEFu);
  FlatMap<std::string, uint64_t> flat;
  std::unordered_map<std::string, uint64_t> ref;
  std::uniform_int_distribution<int> key_dist(0, 127);
  for (int step = 0; step < 8000; ++step) {
    std::string key = "key-" + std::to_string(key_dist(rng));
    if (step % 3 == 0) {
      ASSERT_EQ(flat.Erase(key), ref.erase(key) == 1);
    } else {
      auto [slot, inserted] = flat.TryEmplace(key, step);
      auto [it, ref_inserted] = ref.try_emplace(key, step);
      ASSERT_EQ(inserted, ref_inserted);
      ASSERT_EQ(*slot, it->second);
    }
    ASSERT_EQ(flat.size(), ref.size());
    ASSERT_EQ(flat.Contains(key), ref.count(key) == 1);
  }
}

TEST(FlatContainerTest, SetMatchesReferenceUnderChurn) {
  std::mt19937_64 rng(0xFEEDu);
  FlatSet<uint64_t> flat;
  std::set<uint64_t> ref;
  std::uniform_int_distribution<uint64_t> key_dist(0, 511);
  for (int step = 0; step < 20000; ++step) {
    uint64_t key = key_dist(rng);
    if (step % 3 == 0) {
      ASSERT_EQ(flat.Erase(key), ref.erase(key) == 1);
    } else {
      ASSERT_EQ(flat.Insert(key), ref.insert(key).second);
    }
    ASSERT_EQ(flat.size(), ref.size());
    ASSERT_EQ(flat.Contains(key), ref.count(key) == 1);
  }
  std::vector<uint64_t> flat_keys;
  flat.ForEach([&](uint64_t k) { flat_keys.push_back(k); });
  std::sort(flat_keys.begin(), flat_keys.end());
  EXPECT_EQ(flat_keys, std::vector<uint64_t>(ref.begin(), ref.end()));
}

TEST(FlatContainerTest, ShrinkToFitReleasesCapacityAndKeepsEntries) {
  FlatMap<uint64_t, int> flat;
  for (uint64_t k = 0; k < 1000; ++k) flat.TryEmplace(k, static_cast<int>(k));
  std::size_t grown = flat.capacity();
  // Erase/Clear deliberately retain capacity; only ShrinkToFit gives it back.
  for (uint64_t k = 10; k < 1000; ++k) flat.Erase(k);
  EXPECT_EQ(flat.capacity(), grown);
  flat.ShrinkToFit();
  EXPECT_LT(flat.capacity(), grown);
  EXPECT_EQ(flat.size(), 10u);
  for (uint64_t k = 0; k < 10; ++k) {
    int* found = flat.Find(k);
    ASSERT_NE(found, nullptr) << "key " << k << " lost by shrink rehash";
    EXPECT_EQ(*found, static_cast<int>(k));
  }
  // Shrinking an already-tight map is a no-op; an emptied map frees all.
  std::size_t tight = flat.capacity();
  flat.ShrinkToFit();
  EXPECT_EQ(flat.capacity(), tight);
  flat.Clear();
  flat.ShrinkToFit();
  EXPECT_EQ(flat.capacity(), 0u);
  // And the empty-shrunk map still accepts inserts.
  EXPECT_TRUE(flat.TryEmplace(uint64_t{42}, 42).second);
  EXPECT_NE(flat.Find(uint64_t{42}), nullptr);
}

TEST(FlatContainerTest, SetShrinkToFitMirrorsMap) {
  FlatSet<uint64_t> flat;
  for (uint64_t k = 0; k < 500; ++k) flat.Insert(k);
  for (uint64_t k = 5; k < 500; ++k) flat.Erase(k);
  std::size_t before = flat.capacity();
  flat.ShrinkToFit();
  EXPECT_LT(flat.capacity(), before);
  for (uint64_t k = 0; k < 5; ++k) EXPECT_TRUE(flat.Contains(k));
  EXPECT_EQ(flat.size(), 5u);
}

// Forces every key into one probe chain so Erase must backward-shift later
// entries across the hole (a tombstone-free open table that fails to do this
// loses reachable keys — exactly the bug class this pins down).
struct CollidingHash {
  uint64_t operator()(const uint64_t&) const { return 7; }
};

TEST(FlatContainerTest, BackwardShiftKeepsChainReachable) {
  FlatMap<uint64_t, int, CollidingHash> flat;
  for (uint64_t k = 0; k < 9; ++k) flat.TryEmplace(k, static_cast<int>(k));
  // Erase from the middle, the head, and the tail of the chain; every
  // surviving key must stay findable after each shift.
  for (uint64_t gone : {uint64_t{4}, uint64_t{0}, uint64_t{8}}) {
    ASSERT_TRUE(flat.Erase(gone));
    ASSERT_FALSE(flat.Contains(gone));
  }
  EXPECT_EQ(flat.size(), 6u);
  for (uint64_t k : {1u, 2u, 3u, 5u, 6u, 7u}) {
    int* found = flat.Find(k);
    ASSERT_NE(found, nullptr) << "key " << k << " lost after backward shift";
    EXPECT_EQ(*found, static_cast<int>(k));
  }
  for (uint64_t k : {0u, 4u, 8u}) EXPECT_EQ(flat.Find(k), nullptr);
}

TEST(FlatContainerTest, FingerprintedKeysProbeByFingerprint) {
  FlatMap<FpKey, int, FpKeyHash> flat;
  // FpKey equality is fingerprint-then-text; two distinct texts must land in
  // distinct entries even after growth rehashes (stored hashes are reused).
  for (int i = 0; i < 200; ++i) {
    flat.TryEmplace(FpKey("scope/" + std::to_string(i)), i);
  }
  EXPECT_EQ(flat.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    int* found = flat.Find(FpKey("scope/" + std::to_string(i)));
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, i);
  }
  EXPECT_EQ(flat.Find(FpKey("scope/200")), nullptr);
}

TEST(FlatContainerTest, VectorKeysSupportVisitedSets) {
  // The witness search keys its visited set on frontier signatures
  // (vector<uint64_t>); dedup must be exact, not hash-only.
  FlatSet<std::vector<uint64_t>> visited;
  EXPECT_TRUE(visited.Insert(std::vector<uint64_t>{1, 2, 3}));
  EXPECT_FALSE(visited.Insert(std::vector<uint64_t>{1, 2, 3}));
  EXPECT_TRUE(visited.Insert(std::vector<uint64_t>{1, 2}));
  EXPECT_TRUE(visited.Insert(std::vector<uint64_t>{}));
  EXPECT_FALSE(visited.Insert(std::vector<uint64_t>{}));
  EXPECT_EQ(visited.size(), 3u);
}

// ------------------------------------------------------ interning layers

TEST(FlatContainerTest, ArenaKeepsViewsStableAcrossGrowth) {
  StringArena arena;
  std::vector<std::string_view> views;
  std::vector<std::string> expected;
  for (int i = 0; i < 5000; ++i) {
    expected.push_back("symbol-" + std::to_string(i));
    views.push_back(arena.Intern(expected.back()));
  }
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(views[i], expected[i]) << "arena view " << i << " moved";
  }
}

TEST(FlatContainerTest, InternerCopyIsIndependent) {
  Interner a;
  uint32_t x = a.Intern("alpha");
  uint32_t y = a.Intern("beta");
  Interner b = a;  // deep copy: rebuilt arena + index
  EXPECT_EQ(b.Intern("alpha"), x);
  EXPECT_EQ(b.Intern("beta"), y);
  uint32_t z_b = b.Intern("gamma");
  uint32_t z_a = a.Intern("gamma");
  EXPECT_EQ(z_a, z_b);  // same insertion order, same ids
  EXPECT_EQ(a.NameOf(x), "alpha");
  EXPECT_EQ(b.NameOf(z_b), "gamma");
}

// ------------------------------------------------- index/bitset kernels

TEST(FlatContainerTest, MaskIndexRoundTripsAndRejectsStrangers) {
  std::vector<uint64_t> masks = {0, 3, 4, 9, 17, 1u << 20};
  MaskIndex index(masks);
  ASSERT_EQ(index.size(), masks.size());
  for (std::size_t i = 0; i < masks.size(); ++i) {
    EXPECT_EQ(index.MaskAt(i), masks[i]);
    EXPECT_EQ(index.IndexOf(masks[i]), i);
  }
  for (uint64_t stranger : {1u, 5u, 18u, 1u << 19}) {
    EXPECT_EQ(index.IndexOf(stranger), MaskIndex::npos);
  }
}

TEST(FlatContainerTest, BitsetAlgebraMatchesSetAlgebra) {
  std::mt19937_64 rng(0xABCDu);
  constexpr std::size_t kBits = 300;  // multiple words + a partial tail word
  std::uniform_int_distribution<std::size_t> bit_dist(0, kBits - 1);
  DynamicBitset a(kBits), b(kBits);
  std::set<std::size_t> ra, rb;
  for (int i = 0; i < 120; ++i) {
    std::size_t bit = bit_dist(rng);
    a.Set(bit);
    ra.insert(bit);
    bit = bit_dist(rng);
    b.Set(bit);
    rb.insert(bit);
  }
  DynamicBitset inter = a & b;
  DynamicBitset uni = a | b;
  DynamicBitset diff = a - b;
  std::vector<std::size_t> r_inter, r_uni, r_diff;
  std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::back_inserter(r_inter));
  std::set_union(ra.begin(), ra.end(), rb.begin(), rb.end(),
                 std::back_inserter(r_uni));
  std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                      std::back_inserter(r_diff));
  auto indices = [](const DynamicBitset& s) {
    return s.ToIndices();
  };
  EXPECT_EQ(indices(inter), r_inter);
  EXPECT_EQ(indices(uni), r_uni);
  EXPECT_EQ(indices(diff), r_diff);
  EXPECT_EQ(inter.Count(), r_inter.size());
  EXPECT_TRUE(inter.IsSubsetOf(a));
  EXPECT_TRUE(inter.IsSubsetOf(b));
  EXPECT_TRUE(diff.IsDisjointWith(b));
  // FindNext walks exactly the reference order.
  std::vector<std::size_t> walked;
  for (std::size_t i = uni.FindFirst(); i < uni.size(); i = uni.FindNext(i + 1)) {
    walked.push_back(i);
  }
  EXPECT_EQ(walked, r_uni);
}

// ------------------------------------------- 8-thread shared-cache stress

// The flat containers replaced std::unordered_map inside these shared
// components; the components' own mutexes must still serialize every probe
// and rehash. Run under TSan via tools/sanitize.sh.

TEST(FlatContainerTest, RegexCacheStress) {
  RegexCompileCache cache;
  Vocabulary vocab;
  std::vector<RegexPtr> regexes;
  for (int i = 0; i < 4; ++i) {
    auto parsed = ParseRegex("r" + std::to_string(i) + "*", &vocab);
    ASSERT_TRUE(parsed.ok());
    regexes.push_back(parsed.value());
  }
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        Semiautomaton target;
        CompiledRef ref = cache.CompileInto(regexes[(t + i) % regexes.size()],
                                            &target, nullptr);
        // r* accepts the empty word; a torn cache entry would break this.
        EXPECT_TRUE(ref.nullable);
        if (i % 64 == 63 && t == 0) cache.Clear();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), regexes.size());
}

TEST(FlatContainerTest, FactBoardStress) {
  SharedFactBoard board;
  Vocabulary vocab;
  uint32_t a = vocab.ConceptId("A");
  auto p = ParseCrpq("A(x)", &vocab);
  ASSERT_TRUE(p.ok());
  Graph g;
  NodeId n = g.AddNode();
  g.AddLabel(n, a);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ContainmentResult definite;
      definite.verdict = Verdict::kNotContained;
      for (int i = 0; i < 200; ++i) {
        FpKey scope("scope-" + std::to_string((t + i) % 4));
        FpKey disjunct(scope.text() + "/d-" + std::to_string(i % 2));
        (void)board.PublishCountermodel(scope, g, /*concept_limit=*/8,
                                        /*role_limit=*/8, nullptr);
        std::optional<Graph> refutation =
            board.FindRefutation(scope, p.value(), nullptr);
        if (refutation.has_value()) {
          EXPECT_EQ(refutation->NodeCount(), 1u);
        }
        board.PublishResult(disjunct, definite, 8, 8, nullptr);
        std::optional<ContainmentResult> memo =
            board.LookupResult(disjunct, nullptr);
        if (memo.has_value()) {
          EXPECT_EQ(memo->verdict, Verdict::kNotContained);
        }
        (void)board.countermodel_count();
        if (i % 64 == 63 && t == 0) board.Clear();
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(FlatContainerTest, ContainmentCachesStress) {
  ContainmentCaches caches;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Thread-private, structurally identical vocabulary: the cache key is
      // the canonical TBox text, so all threads hit the same flat-map entry
      // while interning stays thread-local (the cache's documented contract).
      Vocabulary vocab;
      auto tbox = ParseTBox("A <= exists r.A\n", &vocab);
      ASSERT_TRUE(tbox.ok());
      for (int i = 0; i < 100; ++i) {
        auto normalized = caches.GetNormalized(tbox.value(), &vocab, nullptr);
        ASSERT_NE(normalized, nullptr);
        (void)caches.normalized_count();
        if (i % 32 == 31 && t == 0) caches.Clear();
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace gqc
