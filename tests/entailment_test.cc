#include <gtest/gtest.h>

#include "src/dl/concept_parser.h"
#include "src/dl/model_check.h"
#include "src/dl/normalize.h"
#include "src/entailment/entailment.h"
#include "src/entailment/witness_search.h"
#include "src/query/eval.h"
#include "src/query/parser.h"

namespace gqc {
namespace {

class EntailmentTest : public ::testing::Test {
 protected:
  NormalTBox T(const std::string& text) {
    auto r = ParseTBox(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return Normalize(r.value(), &vocab_);
  }
  Ucrpq U(const std::string& text) {
    auto r = ParseUcrpq(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
  }
  Type Tau(const std::string& name) {
    Type t;
    t.AddLiteral(Literal::Positive(vocab_.ConceptId(name)));
    return t;
  }

  /// Asserts that the dispatched engine and the bounded witness search agree
  /// whenever both are definite, and returns the engine answer.
  EngineAnswer Realize(const Type& tau, const NormalTBox& tbox, const Ucrpq& q,
                       EnginePath expected_path) {
    EntailmentResult result = TypeRealizable(tau, tbox, q, &vocab_);
    EXPECT_EQ(result.path, expected_path)
        << "dispatched to " << EnginePathName(result.path);

    // Cross-validate with the bounded search.
    std::vector<uint32_t> ids = tbox.ConceptIds();
    for (Literal l : tau.Literals()) ids.push_back(l.concept_id());
    for (uint32_t id : q.MentionedConcepts()) ids.push_back(id);
    TypeSpace space{std::move(ids)};
    WitnessProblem problem;
    problem.space = &space;
    problem.tbox = &tbox;
    problem.tau = tau;
    problem.forbid = &q;
    WitnessResult w = FindWitness(problem, EngineLimits{});
    if (result.answer != EngineAnswer::kUnknown && w.answer != EngineAnswer::kUnknown) {
      EXPECT_EQ(result.answer, w.answer) << "engine disagrees with bounded search";
    }
    return result.answer;
  }

  Vocabulary vocab_;
};

TEST_F(EntailmentTest, NoRolesSingleNode) {
  NormalTBox t = T("A <= B");
  EXPECT_EQ(Realize(Tau("A"), t, U("C(x)"), EnginePath::kAlcqSimple),
            EngineAnswer::kYes);
  // Refuting B(x) while realizing A is impossible: A forces B.
  EXPECT_EQ(Realize(Tau("A"), t, U("B(x)"), EnginePath::kAlcqSimple),
            EngineAnswer::kNo);
}

TEST_F(EntailmentTest, AlcqCycleModelExists) {
  // A ⊑ ∃r.A admits finite models (an r-cycle); refuting a harmless query
  // is possible, refuting "there is an r-edge" is not.
  NormalTBox t = T("A <= exists r.A");
  EXPECT_EQ(Realize(Tau("A"), t, U("B(x)"), EnginePath::kAlcqSimple),
            EngineAnswer::kYes);
  EXPECT_EQ(Realize(Tau("A"), t, U("r(x, y)"), EnginePath::kAlcqSimple),
            EngineAnswer::kNo);
}

TEST_F(EntailmentTest, AlcqStarReachabilityUnavoidable) {
  // (r*)(x, y) matches every non-empty graph via the empty path.
  NormalTBox t = T("A <= B");
  EXPECT_EQ(Realize(Tau("A"), t, U("(r*)(x, y)"), EnginePath::kAlcqSimple),
            EngineAnswer::kNo);
}

TEST_F(EntailmentTest, AlcqParticipationForcesQuery) {
  // Every model with an A-node has an r-successor in B, so the pattern
  // A(x), r(x,y), B(y) cannot be refuted while realizing A; realizing ¬A can.
  NormalTBox t = T("A <= exists r.B");
  Ucrpq q = U("A(x), r(x, y), B(y)");
  EXPECT_EQ(Realize(Tau("A"), t, q, EnginePath::kAlcqSimple), EngineAnswer::kNo);
  Type not_a;
  not_a.AddLiteral(Literal::Negative(vocab_.ConceptId("A")));
  EXPECT_EQ(Realize(not_a, t, q, EnginePath::kAlcqSimple), EngineAnswer::kYes);
}

TEST_F(EntailmentTest, AlcqChainTwoSteps) {
  // A needs B-successor, B needs C-successor; the 3-node pattern is forced.
  // The 3-variable query's factor closure pushes the type space over the
  // default cap, so the exact engine may honestly answer kUnknown here — but
  // it must never answer kYes, and the bounded search decides kNo.
  NormalTBox t = T("A <= exists r.B\nB <= exists r.C");
  Ucrpq q = U("A(x), r(x, y), r(y, z), C(z)");
  EXPECT_NE(Realize(Tau("A"), t, q, EnginePath::kAlcqSimple), EngineAnswer::kYes)
      << "B-successor of A must have a C-successor";
  // Refuting a D-pattern is easy.
  EXPECT_EQ(Realize(Tau("A"), t, U("D(x)"), EnginePath::kAlcqSimple),
            EngineAnswer::kYes);
}

TEST_F(EntailmentTest, AlcqCountingAtLeastTwo) {
  NormalTBox t = T("A <= atleast 2 r.B");
  // Can refute "two B's via r from one node"? No: counting forces it...
  // but the query cannot count either; r(x,y), B(y) alone is forced.
  EXPECT_EQ(Realize(Tau("A"), t, U("A(x), r(x, y), B(y)"), EnginePath::kAlcqSimple),
            EngineAnswer::kNo);
  EXPECT_EQ(Realize(Tau("A"), t, U("C(x)"), EnginePath::kAlcqSimple),
            EngineAnswer::kYes);
}

TEST_F(EntailmentTest, AlcqAtMostBlocksWitness) {
  // A wants an r-successor in B, but at-most-0 forbids them: unsatisfiable
  // with an A node, so *every* query is vacuously avoided... except that
  // realizing A itself is impossible — answer must be kNo even for a
  // trivially refutable query.
  NormalTBox t = T("A <= exists r.B\nA <= atmost 0 r.B");
  EXPECT_EQ(Realize(Tau("A"), t, U("C(x)"), EnginePath::kAlcqSimple),
            EngineAnswer::kNo);
  // A type not containing A is fine.
  Type not_a;
  not_a.AddLiteral(Literal::Negative(vocab_.ConceptId("A")));
  EXPECT_EQ(Realize(not_a, t, U("C(x)"), EnginePath::kAlcqSimple),
            EngineAnswer::kYes);
}

TEST_F(EntailmentTest, AlcqDisjointnessPropagation) {
  // r-successors are always B; query asks for an r-successor that is not B.
  NormalTBox t = T("top <= forall r.B\nA <= exists r.C");
  EXPECT_EQ(Realize(Tau("A"), t, U("r(x, y), !B(y)"), EnginePath::kAlcqSimple),
            EngineAnswer::kYes)
      << "wait: this should be refutable since all successors are B";
  EXPECT_EQ(Realize(Tau("A"), t, U("r(x, y), B(y)"), EnginePath::kAlcqSimple),
            EngineAnswer::kNo);
}

TEST_F(EntailmentTest, AlciInverseParticipation) {
  // Every B has an incoming r-edge from an A.
  NormalTBox t = T("B <= exists r-.A");
  Ucrpq q = U("A(x), r(x, y), B(y)");
  EXPECT_EQ(Realize(Tau("B"), t, q, EnginePath::kAlciOneway), EngineAnswer::kNo);
  EXPECT_EQ(Realize(Tau("B"), t, U("C(x)"), EnginePath::kAlciOneway),
            EngineAnswer::kYes);
}

TEST_F(EntailmentTest, AlciForwardAndBackward) {
  // A chain in both directions: A needs a forward r to B, B needs a backward
  // s from C.
  NormalTBox t = T("A <= exists r.B\nB <= exists s-.C");
  EXPECT_EQ(Realize(Tau("A"), t, U("C(x), s(x, y), B(y)"), EnginePath::kAlciOneway),
            EngineAnswer::kNo);
  EXPECT_EQ(Realize(Tau("A"), t, U("D(x)"), EnginePath::kAlciOneway),
            EngineAnswer::kYes);
}

TEST_F(EntailmentTest, NonSimpleFallsBackToBoundedSearch) {
  NormalTBox t = T("A <= exists r.B");
  EntailmentResult result = TypeRealizable(Tau("A"), t, U("(r.r)(x, y)"), &vocab_);
  EXPECT_EQ(result.path, EnginePath::kBoundedSearch);
  EXPECT_EQ(result.answer, EngineAnswer::kYes) << "A -> B with single edge refutes r.r";
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(Satisfies(*result.witness, t));
}

TEST_F(EntailmentTest, FiniteEntailmentWithAbox) {
  // ABox: a single A-node; TBox forces an r-successor in B. Entailed:
  // r(x, y). Not entailed: B(y), r(y, x) backwards... r edge from B back.
  NormalTBox t = T("A <= exists r.B");
  Graph abox;
  abox.AddLabel(abox.AddNode(), vocab_.ConceptId("A"));

  EntailmentResult e1 = FiniteEntails(abox, t, U("r(x, y)"), &vocab_);
  EXPECT_EQ(e1.answer, EngineAnswer::kYes);

  EntailmentResult e2 = FiniteEntails(abox, t, U("r(x, y), r(y, x)"), &vocab_);
  EXPECT_EQ(e2.answer, EngineAnswer::kNo);
  ASSERT_TRUE(e2.witness.has_value());
  EXPECT_TRUE(Satisfies(*e2.witness, t));
  EXPECT_FALSE(Matches(*e2.witness, U("r(x, y), r(y, x)")));
}

TEST_F(EntailmentTest, FiniteVsUnrestrictedEntailmentGap) {
  // The classic finite-model effect: functionality of r⁻ plus B ⊑ ∃r.B
  // forces, in FINITE models, an r-cycle through B... with A disjoint from
  // B and A ⊑ ∃r.B, every finite model must close the B-chain into a cycle,
  // so B(x) ∧ r(x,y) ∧ B(y) is finitely entailed from a B-seed.
  NormalTBox t = T("B <= exists r.B\nB <= atmost 1 r-.B");
  Graph abox;
  abox.AddLabel(abox.AddNode(), vocab_.ConceptId("B"));
  // In finite models the B-successors must eventually revisit a B node,
  // giving an edge between two B nodes.
  EntailmentResult e = FiniteEntails(abox, t, U("B(x), r(x, y), B(y)"), &vocab_);
  EXPECT_EQ(e.answer, EngineAnswer::kYes);
}

TEST_F(EntailmentTest, WitnessSearchRespectsTheta) {
  NormalTBox t = T("A <= exists r.B");
  std::vector<uint32_t> ids = t.ConceptIds();
  TypeSpace space{std::move(ids)};
  WitnessProblem problem;
  problem.space = &space;
  problem.tbox = &t;
  problem.tau = Tau("A");
  // Θ forbids B entirely: A's witness cannot exist.
  Type no_b;
  no_b.AddLiteral(Literal::Negative(vocab_.ConceptId("B")));
  problem.theta = {no_b};
  WitnessResult w = FindWitness(problem, EngineLimits{});
  EXPECT_EQ(w.answer, EngineAnswer::kNo);
}

}  // namespace
}  // namespace gqc
