// Tests that exercise the §3 reduction machinery itself (Tp computation +
// star-like central-part search with participation deferral), by starving
// the direct chase of nodes so it cannot answer.

#include <gtest/gtest.h>

#include "src/core/containment.h"
#include "src/core/reduction.h"
#include "src/dl/concept_parser.h"
#include "src/dl/model_check.h"
#include "src/dl/normalize.h"
#include "src/query/eval.h"
#include "src/query/parser.h"

namespace gqc {
namespace {

class ReductionTest : public ::testing::Test {
 protected:
  NormalTBox T(const std::string& text) {
    auto r = ParseTBox(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return Normalize(r.value(), &vocab_);
  }
  Ucrpq U(const std::string& text) {
    auto r = ParseUcrpq(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
  }

  Vocabulary vocab_;
};

TEST_F(ReductionTest, StubsAnswerWhereChaseCannot) {
  // T: every B has an r-successor in B. Q forbids self loops and 2-cycles,
  // so any concrete countermodel needs an r-cycle of length >= 3 through B.
  // With the chase starved to 2 nodes, the direct search caps out; the
  // reduction still answers: the central part is a single B node plus a
  // deferred stub whose type Tp certifies as realizable (by the engine, with
  // no node bound).
  NormalTBox tbox = T("B <= exists r.B");
  Ucrpq p = U("B(x)");
  Ucrpq q = U("r(x, x) ; r(x, y), r(y, x)");

  ContainmentOptions starved;
  starved.countermodel.limits.max_witness_nodes = 2;
  ContainmentChecker checker(&vocab_, starved);
  auto with_reduction = checker.Decide(p, q, tbox);
  EXPECT_EQ(with_reduction.verdict, Verdict::kNotContained);
  EXPECT_EQ(with_reduction.attr.method, ContainmentMethod::kReduction);
  ASSERT_TRUE(with_reduction.central_part.has_value());
  // The central part satisfies p, avoids the factorized query implicitly
  // (checked in the pipeline); its participation gaps are at stubs.
  EXPECT_TRUE(Matches(*with_reduction.central_part, p));

  // With the reduction disabled, the starved pipeline cannot answer.
  ContainmentOptions no_reduction = starved;
  no_reduction.disable_reduction = true;
  ContainmentChecker blind(&vocab_, no_reduction);
  EXPECT_EQ(blind.Decide(p, q, tbox).verdict, Verdict::kUnknown);

  // Sanity: with a normal budget, a concrete countermodel (3-cycle) exists.
  ContainmentChecker normal(&vocab_);
  auto direct = normal.Decide(p, q, tbox);
  EXPECT_EQ(direct.verdict, Verdict::kNotContained);
  if (direct.countermodel.has_value()) {
    EXPECT_TRUE(Satisfies(*direct.countermodel,
                          T("B <= exists r.B")));  // fresh normalize is fine
    EXPECT_FALSE(Matches(*direct.countermodel, q));
    EXPECT_GE(direct.countermodel->NodeCount(), 3u);
  }
}

TEST_F(ReductionTest, ReductionCertifiesContainmentExactly) {
  // Star-free p, participation schema, containment holds: the reduction's
  // kNo (no central part exists) certifies it even when the direct chase is
  // starved below the witness size.
  NormalTBox tbox = T("A <= exists r.B\ntop <= forall r.B");
  Ucrpq p = U("A(x), r(x, y)");
  Ucrpq q = U("r(x, y), B(y)");

  ContainmentOptions starved;
  starved.countermodel.limits.max_witness_nodes = 1;
  ContainmentChecker checker(&vocab_, starved);
  auto r = checker.Decide(p, q, tbox);
  // p itself requires 2 nodes... which exceeds the chase budget, but the
  // classical screen already certifies nothing (q adds B(y)); the typing
  // constraint makes it contained. Whether the starved pipeline proves it
  // depends on the reduction's H0 search (also node-capped), so accept
  // contained-or-unknown but never a countermodel.
  EXPECT_NE(r.verdict, Verdict::kNotContained);

  ContainmentChecker normal(&vocab_);
  EXPECT_EQ(normal.Decide(p, q, tbox).verdict, Verdict::kContained);
}

TEST_F(ReductionTest, DirectReductionApi) {
  // ContainmentViaEntailment exposed directly: a refutable instance.
  NormalTBox tbox = T("A <= exists r.B");
  auto p = ParseCrpq("A(x)", &vocab_);
  Ucrpq q = U("C(x)");
  ReductionOptions options;
  ReductionResult res =
      ContainmentViaEntailment(p.value(), q, tbox, /*alcq_case=*/true, &vocab_,
                               options);
  EXPECT_EQ(res.countermodel_found, EngineAnswer::kYes);
  ASSERT_TRUE(res.central_part.has_value());
  EXPECT_TRUE(Matches(*res.central_part, U("A(x)")));
  EXPECT_FALSE(Matches(*res.central_part, q));
}

TEST_F(ReductionTest, DirectReductionApiContained) {
  // And a contained instance: A(x) ⊑ B(x) under A ⊑ B with a participation
  // CI forcing the reduction shape.
  NormalTBox tbox = T("A <= B\nA <= exists r.B");
  auto p = ParseCrpq("A(x)", &vocab_);
  Ucrpq q = U("B(x)");
  ReductionOptions options;
  ReductionResult res =
      ContainmentViaEntailment(p.value(), q, tbox, /*alcq_case=*/true, &vocab_,
                               options);
  EXPECT_EQ(res.countermodel_found, EngineAnswer::kNo);
}

}  // namespace
}  // namespace gqc
