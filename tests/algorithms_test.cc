#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"

namespace gqc {
namespace {

class AlgorithmsTest : public ::testing::Test {
 protected:
  Vocabulary vocab_;
};

TEST_F(AlgorithmsTest, DirectedVsUndirectedDistances) {
  uint32_t r = vocab_.RoleId("r");
  Graph g = PathGraph(4, r);
  auto directed = DirectedDistances(g, 3);
  EXPECT_EQ(directed[3], 0u);
  EXPECT_EQ(directed[0], SIZE_MAX) << "no directed path backwards";
  auto undirected = UndirectedDistances(g, 3);
  EXPECT_EQ(undirected[0], 3u);
}

TEST_F(AlgorithmsTest, ReachableFromRespectsDirection) {
  uint32_t r = vocab_.RoleId("r");
  Graph g = PathGraph(4, r);
  EXPECT_EQ(ReachableFrom(g, 1).size(), 3u);
  EXPECT_EQ(ReachableFrom(g, 3).size(), 1u);
}

TEST_F(AlgorithmsTest, SccCondensationOrder) {
  uint32_t r = vocab_.RoleId("r");
  // Two 2-cycles joined by a bridge: {0,1} -> {2,3}.
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode();
  g.AddEdge(0, r, 1);
  g.AddEdge(1, r, 0);
  g.AddEdge(2, r, 3);
  g.AddEdge(3, r, 2);
  g.AddEdge(1, r, 2);
  std::size_t count = 0;
  auto scc = StronglyConnectedComponents(g, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(scc[0], scc[1]);
  EXPECT_EQ(scc[2], scc[3]);
  EXPECT_NE(scc[0], scc[2]);
  // Tarjan emits SCCs in reverse topological order: the sink {2,3} first.
  EXPECT_LT(scc[2], scc[0]);
}

TEST_F(AlgorithmsTest, SelfLoopSingletonScc) {
  uint32_t r = vocab_.RoleId("r");
  Graph g;
  NodeId a = g.AddNode();
  NodeId b = g.AddNode();
  g.AddEdge(a, r, a);
  g.AddEdge(a, r, b);
  std::size_t count = 0;
  auto scc = StronglyConnectedComponents(g, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_NE(scc[a], scc[b]);
}

TEST_F(AlgorithmsTest, SparsityOfTreesPlusChords) {
  uint32_t r = vocab_.RoleId("r");
  Graph g = BalancedTree(3, 2, r);  // 15 nodes, 14 edges
  EXPECT_TRUE(IsCSparse(g, -1));
  // Add c+1 chords: still c-sparse for that c but not below.
  g.AddEdge(7, r, 8);
  g.AddEdge(9, r, 10);
  EXPECT_TRUE(IsCSparse(g, 1));
  EXPECT_FALSE(IsCSparse(g, 0));
}

TEST_F(AlgorithmsTest, EmptyAndSingletonGraphs) {
  Graph empty;
  EXPECT_TRUE(IsConnected(empty));
  EXPECT_FALSE(IsUndirectedTree(empty));
  Graph single;
  single.AddNode();
  EXPECT_TRUE(IsConnected(single));
  EXPECT_TRUE(IsUndirectedTree(single));
}

}  // namespace
}  // namespace gqc
