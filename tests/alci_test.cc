// Focused tests for the §5 engine (ALCI + one-way simple queries):
// alternating frames must supply forward witnesses in components and
// backward witnesses in connectors. Cross-validated against the bounded
// witness search throughout.

#include <gtest/gtest.h>

#include "src/dl/concept_parser.h"
#include "src/dl/normalize.h"
#include "src/entailment/alci_oneway.h"
#include "src/entailment/witness_search.h"
#include "src/query/factorize.h"
#include "src/query/parser.h"

namespace gqc {
namespace {

class AlciTest : public ::testing::Test {
 protected:
  NormalTBox T(const std::string& text) {
    auto r = ParseTBox(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return Normalize(r.value(), &vocab_);
  }
  Ucrpq U(const std::string& text) {
    auto r = ParseUcrpq(text, &vocab_);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.value();
  }
  Type Tau(const std::string& name, bool negative = false) {
    Type t;
    uint32_t id = vocab_.ConceptId(name);
    t.AddLiteral(negative ? Literal::Negative(id) : Literal::Positive(id));
    return t;
  }

  EngineAnswer Run(const Type& tau, const NormalTBox& tbox, const Ucrpq& q,
                   bool* capped = nullptr) {
    auto f = FactorizeSimpleUcrpq(q, &vocab_);
    EXPECT_TRUE(f.ok()) << f.error();
    AlciOnewayEngine engine(&f.value(), &vocab_);
    EngineAnswer answer = engine.TypeRealizable(tau, tbox);
    if (capped != nullptr) *capped = engine.hit_cap();

    // Cross-validate with the bounded search when both are definite.
    std::vector<uint32_t> ids = tbox.ConceptIds();
    for (Literal l : tau.Literals()) ids.push_back(l.concept_id());
    for (uint32_t id : q.MentionedConcepts()) ids.push_back(id);
    TypeSpace space{std::move(ids)};
    WitnessProblem problem;
    problem.space = &space;
    problem.tbox = &tbox;
    problem.tau = tau;
    problem.forbid = &q;
    WitnessResult w = FindWitness(problem, EngineLimits{});
    if (answer != EngineAnswer::kUnknown && w.answer != EngineAnswer::kUnknown) {
      EXPECT_EQ(answer, w.answer) << "engine disagrees with bounded search";
    }
    return answer;
  }

  Vocabulary vocab_;
};

TEST_F(AlciTest, InverseParticipationChain) {
  // Every B has an incoming edge from an A; realizing B while refuting the
  // pattern is impossible.
  NormalTBox t = T("B <= exists r-.A");
  EXPECT_EQ(Run(Tau("B"), t, U("A(x), r(x, y), B(y)")), EngineAnswer::kNo);
  EXPECT_EQ(Run(Tau("B"), t, U("D(x)")), EngineAnswer::kYes);
}

TEST_F(AlciTest, InverseTypingConstraint) {
  // ⊤ ⊑ ∀r⁻.A: every edge source is an A. Refuting "an edge out of a
  // non-A" is vacuous (contained); refuting "an edge out of an A" requires
  // an edge-free model.
  NormalTBox t = T("top <= forall r-.A");
  EXPECT_EQ(Run(Tau("B"), t, U("!A(x), r(x, y)")), EngineAnswer::kYes)
      << "such a pattern never occurs under T, any model refutes it";
  EXPECT_EQ(Run(Tau("B"), t, U("r(x, y)")), EngineAnswer::kYes)
      << "an isolated B-node refutes it";
}

TEST_F(AlciTest, MixedDirections) {
  // A needs an outgoing r to B; B needs an incoming s from C.
  NormalTBox t = T("A <= exists r.B\nB <= exists s-.C");
  EXPECT_EQ(Run(Tau("A"), t, U("C(x), s(x, y)")), EngineAnswer::kNo);
  EXPECT_EQ(Run(Tau("A"), t, U("C(x), r(x, y)")), EngineAnswer::kYes)
      << "the C node sends s, not r";
}

TEST_F(AlciTest, BackwardChainTwoLevels) {
  // C ⊑ ∃r⁻.B and B ⊑ ∃r⁻.A: realizing C forces a 2-step incoming chain,
  // so the A-pattern cannot be refuted. The engine's bounded productivity
  // substitute may cap out on the two-level chain (answering kUnknown), but
  // it must never answer kYes here.
  NormalTBox t = T("C <= exists r-.B\nB <= exists r-.A");
  EXPECT_NE(Run(Tau("C"), t, U("A(x), r(x, y)")), EngineAnswer::kYes);
  EXPECT_NE(Run(Tau("C"), t, U("B(x), r(x, y)")), EngineAnswer::kYes);
  EXPECT_EQ(Run(Tau("C"), t, U("C(x), r(x, y)")), EngineAnswer::kYes)
      << "nothing forces C to have outgoing edges";
}

TEST_F(AlciTest, ForallsAcrossDirections) {
  // Inverse forall restricts sources, forward forall restricts targets.
  NormalTBox t = T("A <= exists r.B\ntop <= forall r.B\ntop <= forall r-.A");
  EXPECT_EQ(Run(Tau("A"), t, U("r(x, y), !B(y)")), EngineAnswer::kYes);
  EXPECT_EQ(Run(Tau("A"), t, U("!A(x), r(x, y)")), EngineAnswer::kYes);
  EXPECT_EQ(Run(Tau("A"), t, U("A(x), r(x, y), B(y)")), EngineAnswer::kNo);
}

TEST_F(AlciTest, StarQueryOverInverseSchema) {
  NormalTBox t = T("B <= exists r-.A");
  // (r*) from an A reaches a B? Not forced: A -> B edge exists but the
  // realized type could avoid A... realizing B forces an incoming A-edge,
  // and then A(x), (r*)(x,y), B(y) matches via the single edge.
  EXPECT_EQ(Run(Tau("B"), t, U("A(x), (r*)(x, y), B(y)")), EngineAnswer::kNo);
}

}  // namespace
}  // namespace gqc
